package redi

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/discovery"
	"redi/internal/obs"
	"redi/internal/rng"
	"redi/internal/serve"
	"redi/internal/synth"
)

// serveBenchRows is the resident size for the serving-layer benchmarks:
// large enough that a from-scratch index rebuild dominates a per-batch
// incremental advance by a wide margin.
const serveBenchRows = 20000

const serveBenchBatch = 500

func serveBenchSeed(b *testing.B) *dataset.Dataset {
	b.Helper()
	return synth.Generate(synth.DefaultPopulation(serveBenchRows), rng.New(1)).Data
}

func serveBenchBatches(b *testing.B, n int) []*dataset.Dataset {
	b.Helper()
	out := make([]*dataset.Dataset, n)
	for i := range out {
		out[i] = synth.Generate(synth.DefaultPopulation(serveBenchBatch), rng.New(uint64(100+i))).Data
	}
	return out
}

// rebuildIndexes is the no-resident-state baseline: what a server without
// incremental maintenance pays after every ingest batch to serve the next
// audit/tailor/discovery request — a full group index, coverage space, and
// LSH build over all resident rows.
func rebuildIndexes(d *dataset.Dataset, sens []string, threshold int) int {
	g := d.GroupBy(sens...)
	sp := coverage.NewSpace(d, sens, threshold)
	lsh, err := discovery.NewIncrementalLSH(128)
	if err != nil {
		panic(err)
	}
	schema := d.Schema()
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		if a.Kind != dataset.Categorical {
			continue
		}
		_, dict := d.Codes(a.Name)
		lsh.Upsert(discovery.ColumnRef{Table: "resident", Column: a.Name}, dict)
	}
	return g.NumGroups() + sp.NumAttrs() + lsh.NumColumns()
}

// BenchmarkIngestIncremental measures one ingest batch advancing the
// resident store's indexes in place (groups, coverage bitmaps, LSH band
// tables) plus the copy-on-write snapshot refresh.
func BenchmarkIngestIncremental(b *testing.B) {
	store, err := serve.NewStore(serveBenchSeed(b), serve.StoreConfig{Threshold: 25})
	if err != nil {
		b.Fatal(err)
	}
	batches := serveBenchBatches(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.Ingest(batches[i%len(batches)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestRebuild measures the same batch sequence with the
// baseline strategy: append, then rebuild every index from scratch over
// all resident rows. The incremental path must beat this by >=5x at the
// benchmark geometry (20k seed rows, 500-row batches).
func BenchmarkIngestRebuild(b *testing.B) {
	live := serveBenchSeed(b)
	sens := []string{"race", "sex"}
	batches := serveBenchBatches(b, 32)
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := live.AppendDataset(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
		sink += rebuildIndexes(live, sens, 25)
	}
	if sink == 0 {
		b.Fatal("rebuild produced no indexes")
	}
}

// discardWriter is a minimal http.ResponseWriter for driving handlers.
type discardWriter struct {
	code int
	hdr  http.Header
	buf  bytes.Buffer
}

func (w *discardWriter) Header() http.Header         { return w.hdr }
func (w *discardWriter) WriteHeader(code int)        { w.code = code }
func (w *discardWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

// BenchmarkServeAuditP99 drives /audit through the full service stack —
// admission queue, handler, incremental coverage walk — and reports the
// p50/p99 request latency from the service's own runtime histogram, i.e.
// exactly what /metrics exports as redi_serve_latency_audit_quantile.
func BenchmarkServeAuditP99(b *testing.B) {
	reg := obs.NewRegistry()
	svc, err := serve.NewService(serveBenchSeed(b), serve.Config{
		StoreConfig: serve.StoreConfig{Threshold: 25, Obs: reg},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	req, err := http.NewRequest("GET", "http://bench/audit?threshold=25&maxnull=0.2", strings.NewReader(""))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := &discardWriter{code: http.StatusOK, hdr: http.Header{}}
		svc.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("audit status %d: %s", w.code, w.buf.String())
		}
	}
	b.StopTimer()
	hist := reg.Report().RuntimeHistograms["serve.latency.audit"]
	if q := hist.Quantiles; q != nil {
		b.ReportMetric(q["p50"], "p50-µs")
		b.ReportMetric(q["p99"], "p99-µs")
	}
}
