module redi

go 1.22
