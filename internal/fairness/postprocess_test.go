package fairness

import (
	"math"
	"testing"

	"redi/internal/rng"
)

func TestThresholdForRate(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// Selecting the top 30% should threshold at the 70th percentile.
	th := thresholdForRate(scores, 0.3)
	selected := 0
	for _, s := range scores {
		if s >= th {
			selected++
		}
	}
	if selected != 3 {
		t.Fatalf("threshold %v selects %d of 10, want 3", th, selected)
	}
	if thresholdForRate(nil, 0.5) != 0.5 {
		t.Fatal("empty scores should default")
	}
	if th := thresholdForRate(scores, 0); th <= 1.0 {
		t.Fatalf("rate 0 threshold = %v, should exceed max score", th)
	}
	if th := thresholdForRate(scores, 1); th != 0.1 {
		t.Fatalf("rate 1 threshold = %v, want min score", th)
	}
}

func TestParityThresholdsEqualizeSelection(t *testing.T) {
	dTrain, dTest := trainTest(t, 4000, 30)
	m, err := TrainLogistic(dTrain.X, dTrain.Y, nil, LogisticConfig{}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	base := Evaluate(m, dTest)
	gt, err := FitParityThresholds(m, dTest, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	post := EvaluateWithThresholds(m, gt, dTest)
	if post.DemographicParityDiff > base.DemographicParityDiff {
		t.Fatalf("post-processing increased DP gap: %v -> %v",
			base.DemographicParityDiff, post.DemographicParityDiff)
	}
	// Every sufficiently large group's selection rate should be near the
	// target.
	for _, g := range post.Groups {
		if g.N > 200 && math.Abs(g.PositiveRate-0.5) > 0.1 {
			t.Fatalf("group %s selection rate %v, want ~0.5", g.Key, g.PositiveRate)
		}
	}
}

func TestEqualOpportunityThresholds(t *testing.T) {
	dTrain, dTest := trainTest(t, 4000, 40)
	m, err := TrainLogistic(dTrain.X, dTrain.Y, nil, LogisticConfig{}, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	base := Evaluate(m, dTest)
	gt, err := FitEqualOpportunityThresholds(m, dTest, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	post := EvaluateWithThresholds(m, gt, dTest)
	// TPR spread should not worsen, and large groups should sit near the
	// 0.8 target.
	if post.EqualizedOddsDiff > base.EqualizedOddsDiff+0.05 {
		t.Fatalf("EO worsened: %v -> %v", base.EqualizedOddsDiff, post.EqualizedOddsDiff)
	}
	for _, g := range post.Groups {
		if g.N > 300 && !math.IsNaN(g.TPR) && math.Abs(g.TPR-0.8) > 0.15 {
			t.Fatalf("group %s TPR %v, want ~0.8", g.Key, g.TPR)
		}
	}
}

func TestFitThresholdsEmpty(t *testing.T) {
	m := ConstantModel(1)
	if _, err := FitParityThresholds(m, &Design{}, 0.5); err == nil {
		t.Fatal("empty design accepted")
	}
	if _, err := FitEqualOpportunityThresholds(m, &Design{}, 0.5); err == nil {
		t.Fatal("empty design accepted")
	}
}

func TestPredictWithGroupDefault(t *testing.T) {
	gt := &GroupThresholds{ByGroup: []float64{0.9}, Default: 0.5}
	m := thresholdModel(0) // Score(x) = x[0]
	// Group 0 uses 0.9, unknown group uses the 0.5 default.
	if gt.PredictWithGroup(m, []float64{0.7}, 0) != 0 {
		t.Fatal("group threshold ignored")
	}
	if gt.PredictWithGroup(m, []float64{0.7}, -1) != 1 {
		t.Fatal("default threshold ignored")
	}
}
