package fairness

import (
	"errors"
	"sort"
)

// This file implements post-processing fairness interventions (the
// "later steps of responsible AI" of tutorial §2.3 that data-side fixes
// are traded against): per-group decision thresholds fitted on held-out
// scores to equalize selection rates (demographic parity) or true-positive
// rates (equal opportunity).

// GroupThresholds are per-group decision thresholds over model scores,
// aligned with the group index used to fit them. Rows outside any group
// use Default.
type GroupThresholds struct {
	ByGroup []float64
	Default float64
}

// PredictWithGroup applies the model under the thresholds: positive iff
// the score reaches the row's group threshold.
func (gt *GroupThresholds) PredictWithGroup(m Model, x []float64, group int) int {
	th := gt.Default
	if group >= 0 && group < len(gt.ByGroup) {
		th = gt.ByGroup[group]
	}
	if m.Score(x) >= th {
		return 1
	}
	return 0
}

// FitParityThresholds chooses, for each group, the score threshold whose
// selection rate is closest to targetRate — the demographic-parity
// post-processing intervention. Groups without examples keep the default
// 0.5. It returns an error on an empty design.
func FitParityThresholds(m Model, d *Design, targetRate float64) (*GroupThresholds, error) {
	if d.Len() == 0 {
		return nil, errors.New("fairness: empty design")
	}
	k := 0
	if d.Groups != nil {
		k = d.Groups.NumGroups()
	}
	gt := &GroupThresholds{ByGroup: make([]float64, k), Default: 0.5}
	scores := make([][]float64, k)
	for i, x := range d.X {
		if gi := d.GroupIx[i]; gi >= 0 && gi < k {
			scores[gi] = append(scores[gi], m.Score(x))
		}
	}
	for g := 0; g < k; g++ {
		gt.ByGroup[g] = thresholdForRate(scores[g], targetRate)
	}
	return gt, nil
}

// FitEqualOpportunityThresholds chooses per-group thresholds whose
// true-positive rate is closest to targetTPR (equal opportunity). Groups
// without positive examples keep the default.
func FitEqualOpportunityThresholds(m Model, d *Design, targetTPR float64) (*GroupThresholds, error) {
	if d.Len() == 0 {
		return nil, errors.New("fairness: empty design")
	}
	k := 0
	if d.Groups != nil {
		k = d.Groups.NumGroups()
	}
	gt := &GroupThresholds{ByGroup: make([]float64, k), Default: 0.5}
	posScores := make([][]float64, k)
	for i, x := range d.X {
		if d.Y[i] != 1 {
			continue
		}
		if gi := d.GroupIx[i]; gi >= 0 && gi < k {
			posScores[gi] = append(posScores[gi], m.Score(x))
		}
	}
	for g := 0; g < k; g++ {
		gt.ByGroup[g] = thresholdForRate(posScores[g], targetTPR)
	}
	return gt, nil
}

// thresholdForRate returns the threshold selecting a fraction closest to
// rate of the given scores (0.5 when scores is empty). Selecting the top
// fraction means thresholding at the (1-rate) quantile.
func thresholdForRate(scores []float64, rate float64) float64 {
	if len(scores) == 0 {
		return 0.5
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	if rate <= 0 {
		return sorted[len(sorted)-1] + 1e-9
	}
	if rate >= 1 {
		return sorted[0]
	}
	idx := int(float64(len(sorted)) * (1 - rate))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// EvaluateWithThresholds mirrors Evaluate but applies the per-group
// thresholds instead of the model's own 0.5 cut.
func EvaluateWithThresholds(m Model, gt *GroupThresholds, d *Design) Report {
	return evaluatePred(d, func(i int) int {
		return gt.PredictWithGroup(m, d.X[i], d.GroupIx[i])
	})
}
