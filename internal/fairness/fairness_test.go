package fairness

import (
	"math"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

func trainTest(t *testing.T, rows int, seed uint64) (*Design, *Design) {
	t.Helper()
	p := synth.Generate(synth.DefaultPopulation(rows), rng.New(seed))
	prob, err := InferProblem(p.Data)
	if err != nil {
		t.Fatal(err)
	}
	train, test := p.Data.Split(rng.New(seed+1), 0.7)
	dTrain, err := BuildDesign(train, prob)
	if err != nil {
		t.Fatal(err)
	}
	dTest, err := BuildDesign(test, prob)
	if err != nil {
		t.Fatal(err)
	}
	means, scales := dTrain.Standardize()
	dTest.ApplyStandardize(means, scales)
	return dTrain, dTest
}

func TestInferProblem(t *testing.T) {
	p := synth.Generate(synth.DefaultPopulation(10), rng.New(1))
	prob, err := InferProblem(p.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Features) != 4 || prob.Label != "label" || len(prob.Sensitive) != 2 {
		t.Fatalf("problem = %+v", prob)
	}
	// A dataset with no target errors out.
	d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "x", Kind: dataset.Numeric, Role: dataset.Feature}))
	if _, err := InferProblem(d); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestBuildDesignSkipsNulls(t *testing.T) {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Numeric, Role: dataset.Feature},
		dataset.Attribute{Name: "label", Kind: dataset.Categorical, Role: dataset.Target},
	))
	d.MustAppendRow(dataset.Num(1), dataset.Cat("pos"))
	d.MustAppendRow(dataset.NullValue(dataset.Numeric), dataset.Cat("neg"))
	d.MustAppendRow(dataset.Num(2), dataset.NullValue(dataset.Categorical))
	des, err := BuildDesign(d, Problem{Features: []string{"x"}, Label: "label", Positive: "pos"})
	if err != nil {
		t.Fatal(err)
	}
	if des.Len() != 1 || des.Y[0] != 1 || des.Rows[0] != 0 {
		t.Fatalf("design = %+v", des)
	}
}

func TestLogisticLearnsSeparableData(t *testing.T) {
	r := rng.New(2)
	var X [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			X = append(X, []float64{r.Normal(2, 0.5)})
			y = append(y, 1)
		} else {
			X = append(X, []float64{r.Normal(-2, 0.5)})
			y = append(y, 0)
		}
	}
	m, err := TrainLogistic(X, y, nil, LogisticConfig{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Fatalf("logistic accuracy on separable data = %v", acc)
	}
	if m.Score([]float64{3}) < 0.9 || m.Score([]float64{-3}) > 0.1 {
		t.Fatalf("scores not calibrated: %v %v", m.Score([]float64{3}), m.Score([]float64{-3}))
	}
}

func TestLogisticErrors(t *testing.T) {
	if _, err := TrainLogistic(nil, nil, nil, LogisticConfig{}, rng.New(1)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := TrainLogistic([][]float64{{1}}, []int{1}, []float64{1, 2}, LogisticConfig{}, rng.New(1)); err == nil {
		t.Fatal("weight mismatch accepted")
	}
}

func TestGaussianNBLearns(t *testing.T) {
	r := rng.New(4)
	var X [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			X = append(X, []float64{r.Normal(1.5, 1), r.Normal(-1, 1)})
			y = append(y, 1)
		} else {
			X = append(X, []float64{r.Normal(-1.5, 1), r.Normal(1, 1)})
			y = append(y, 0)
		}
	}
	m, err := TrainGaussianNB(X, y)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.9 {
		t.Fatalf("NB accuracy = %v", acc)
	}
}

func TestGaussianNBOneClass(t *testing.T) {
	if _, err := TrainGaussianNB([][]float64{{1}, {2}}, []int{1, 1}); err == nil {
		t.Fatal("single-class input accepted")
	}
}

func TestModelsBeatConstantOnSynthetic(t *testing.T) {
	dTrain, dTest := trainTest(t, 3000, 10)
	m, err := TrainLogistic(dTrain.X, dTrain.Y, nil, LogisticConfig{}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(m, dTest)
	base := Evaluate(ConstantModel(1), dTest)
	if rep.Accuracy <= base.Accuracy {
		t.Fatalf("logistic (%v) no better than constant (%v)", rep.Accuracy, base.Accuracy)
	}
	if rep.Accuracy < 0.75 {
		t.Fatalf("logistic accuracy = %v, want >= 0.75 on synthetic task", rep.Accuracy)
	}
}

func TestEvaluateGroupMetrics(t *testing.T) {
	// A hand-built design where the model favors group 0.
	d := &Design{
		X:       [][]float64{{1}, {1}, {0}, {0}},
		Y:       []int{1, 0, 1, 0},
		GroupIx: []int{0, 0, 1, 1},
	}
	gd := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "g", Kind: dataset.Categorical}))
	gd.MustAppendRow(dataset.Cat("a"))
	gd.MustAppendRow(dataset.Cat("b"))
	d.Groups = gd.GroupBy("g")

	// Model: predict 1 iff x > 0.5 — selects group 0 always, group 1 never.
	m := thresholdModel(0.5)
	rep := Evaluate(m, d)
	if rep.N != 4 {
		t.Fatalf("N = %d", rep.N)
	}
	if rep.DemographicParityDiff != 1 {
		t.Fatalf("DP diff = %v, want 1", rep.DemographicParityDiff)
	}
	if rep.DisparateImpact != 0 {
		t.Fatalf("DI = %v, want 0", rep.DisparateImpact)
	}
	if rep.EqualizedOddsDiff != 1 {
		t.Fatalf("EO diff = %v, want 1", rep.EqualizedOddsDiff)
	}
	if rep.Accuracy != 0.5 {
		t.Fatalf("accuracy = %v", rep.Accuracy)
	}
}

type thresholdModel float64

func (t thresholdModel) Score(x []float64) float64 { return x[0] }
func (t thresholdModel) Predict(x []float64) int {
	if x[0] > float64(t) {
		return 1
	}
	return 0
}

func TestEvaluateEmptyGroup(t *testing.T) {
	gd := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "g", Kind: dataset.Categorical}))
	gd.MustAppendRow(dataset.Cat("a"))
	gd.MustAppendRow(dataset.Cat("b"))
	groups := gd.GroupBy("g")
	d := &Design{
		X:       [][]float64{{1}},
		Y:       []int{1},
		GroupIx: []int{0},
		Groups:  groups,
	}
	rep := Evaluate(thresholdModel(0.5), d)
	if len(rep.Groups) != 2 {
		t.Fatalf("groups = %d", len(rep.Groups))
	}
	if !math.IsNaN(rep.Groups[1].Accuracy) {
		t.Fatal("empty group should have NaN accuracy")
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation: AUC = 1.
	d := &Design{
		X: [][]float64{{0.9}, {0.8}, {0.2}, {0.1}},
		Y: []int{1, 1, 0, 0},
	}
	d.GroupIx = []int{-1, -1, -1, -1}
	if auc := AUC(thresholdModel(0), d); auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
	// Inverted: AUC = 0.
	d.Y = []int{0, 0, 1, 1}
	if auc := AUC(thresholdModel(0), d); auc != 0 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
	// All ties: AUC = 0.5.
	tied := &Design{
		X:       [][]float64{{0.5}, {0.5}, {0.5}, {0.5}},
		Y:       []int{1, 0, 1, 0},
		GroupIx: []int{-1, -1, -1, -1},
	}
	if auc := AUC(thresholdModel(0), tied); auc != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
	// Single class: NaN.
	oneClass := &Design{X: [][]float64{{1}}, Y: []int{1}, GroupIx: []int{-1}}
	if auc := AUC(thresholdModel(0), oneClass); !math.IsNaN(auc) {
		t.Fatalf("one-class AUC = %v, want NaN", auc)
	}
}

func TestAUCOnTrainedModel(t *testing.T) {
	dTrain, dTest := trainTest(t, 3000, 60)
	m, err := TrainLogistic(dTrain.X, dTrain.Y, nil, LogisticConfig{}, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(m, dTest); auc < 0.8 {
		t.Fatalf("trained AUC = %v, want >= 0.8", auc)
	}
}

func TestReweighBalances(t *testing.T) {
	// Group 0: 80% positive; group 1: 20% positive.
	var y, gi []int
	for i := 0; i < 100; i++ {
		g := 0
		if i >= 50 {
			g = 1
		}
		pos := 0
		if (g == 0 && i%10 < 8) || (g == 1 && i%10 < 2) {
			pos = 1
		}
		y = append(y, pos)
		gi = append(gi, g)
	}
	w := Reweigh(y, gi, 2)
	// Weighted positive rate should be equal across groups.
	rate := func(g int) float64 {
		num, den := 0.0, 0.0
		for i := range y {
			if gi[i] == g {
				den += w[i]
				if y[i] == 1 {
					num += w[i]
				}
			}
		}
		return num / den
	}
	if math.Abs(rate(0)-rate(1)) > 1e-9 {
		t.Fatalf("weighted rates differ: %v vs %v", rate(0), rate(1))
	}
}

func TestReweighDegenerate(t *testing.T) {
	if w := Reweigh(nil, nil, 2); w != nil {
		t.Fatal("empty reweigh should be nil")
	}
	w := Reweigh([]int{1, 0}, []int{-1, -1}, 2)
	if w[0] != 1 || w[1] != 1 {
		t.Fatalf("ungrouped weights = %v", w)
	}
}

func TestReweighReducesParityGap(t *testing.T) {
	// Build a population where the label correlates with group, train
	// with and without reweighing, and check the DP gap shrinks.
	dTrain, dTest := trainTest(t, 4000, 20)
	plain, err := TrainLogistic(dTrain.X, dTrain.Y, nil, LogisticConfig{}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	w := Reweigh(dTrain.Y, dTrain.GroupIx, dTrain.Groups.NumGroups())
	weighted, err := TrainLogistic(dTrain.X, dTrain.Y, w, LogisticConfig{}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	repPlain := Evaluate(plain, dTest)
	repW := Evaluate(weighted, dTest)
	if repW.DemographicParityDiff > repPlain.DemographicParityDiff+0.05 {
		t.Fatalf("reweighing increased DP gap: %v -> %v",
			repPlain.DemographicParityDiff, repW.DemographicParityDiff)
	}
}

func TestStandardize(t *testing.T) {
	d := &Design{X: [][]float64{{1, 5}, {3, 5}}}
	means, scales := d.Standardize()
	if means[0] != 2 || scales[1] != 1 {
		t.Fatalf("means=%v scales=%v", means, scales)
	}
	if d.X[0][0] != -1 || d.X[1][0] != 1 {
		t.Fatalf("standardized X = %v", d.X)
	}
	if d.X[0][1] != 0 {
		t.Fatalf("constant feature should map to 0: %v", d.X)
	}
}
