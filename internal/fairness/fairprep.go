package fairness

import (
	"errors"
	"fmt"
	"math"

	"redi/internal/rng"
)

// This file is REDI's FairPrep (Schelter et al., EDBT 2020): a study
// harness that evaluates fairness-enhancing interventions under a fixed,
// leakage-free protocol — per seed, fresh train/validation/test splits; the
// intervention may only fit on train and tune on validation; metrics are
// reported on test with mean and standard deviation across seeds.

// Predictor is a trained model plus optional per-group thresholds.
type Predictor struct {
	M  Model
	GT *GroupThresholds
}

// Evaluate scores the predictor on a design, applying thresholds when
// present.
func (p Predictor) Evaluate(d *Design) Report {
	if p.GT != nil {
		return EvaluateWithThresholds(p.M, p.GT, d)
	}
	return Evaluate(p.M, d)
}

// Intervention trains a predictor under one fairness-enhancing strategy.
// It may fit on train and tune on val, never on test.
type Intervention struct {
	Name  string
	Train func(train, val *Design, r *rng.RNG) (Predictor, error)
}

// Baseline trains plain logistic regression with no intervention.
func Baseline(cfg LogisticConfig) Intervention {
	return Intervention{
		Name: "baseline",
		Train: func(train, _ *Design, r *rng.RNG) (Predictor, error) {
			m, err := TrainLogistic(train.X, train.Y, nil, cfg, r)
			return Predictor{M: m}, err
		},
	}
}

// ReweighIntervention trains with Kamiran–Calders reweighing (a
// pre-processing intervention).
func ReweighIntervention(cfg LogisticConfig) Intervention {
	return Intervention{
		Name: "reweigh",
		Train: func(train, _ *Design, r *rng.RNG) (Predictor, error) {
			k := 0
			if train.Groups != nil {
				k = train.Groups.NumGroups()
			}
			w := Reweigh(train.Y, train.GroupIx, k)
			m, err := TrainLogistic(train.X, train.Y, w, cfg, r)
			return Predictor{M: m}, err
		},
	}
}

// ParityPostProcess trains plain logistic regression and fits per-group
// thresholds on the validation split to equalize selection rates.
func ParityPostProcess(cfg LogisticConfig, targetRate float64) Intervention {
	return Intervention{
		Name: "parity-threshold",
		Train: func(train, val *Design, r *rng.RNG) (Predictor, error) {
			m, err := TrainLogistic(train.X, train.Y, nil, cfg, r)
			if err != nil {
				return Predictor{}, err
			}
			gt, err := FitParityThresholds(m, val, targetRate)
			return Predictor{M: m, GT: gt}, err
		},
	}
}

// EqOppPostProcess fits per-group thresholds on validation to equalize
// true-positive rates.
func EqOppPostProcess(cfg LogisticConfig, targetTPR float64) Intervention {
	return Intervention{
		Name: "eqopp-threshold",
		Train: func(train, val *Design, r *rng.RNG) (Predictor, error) {
			m, err := TrainLogistic(train.X, train.Y, nil, cfg, r)
			if err != nil {
				return Predictor{}, err
			}
			gt, err := FitEqualOpportunityThresholds(m, val, targetTPR)
			return Predictor{M: m, GT: gt}, err
		},
	}
}

// StudyConfig drives an intervention study. Data must return fresh
// train/validation/test designs for a seed; the harness guarantees each
// intervention sees the same splits at the same seed.
type StudyConfig struct {
	Seeds []uint64
	Data  func(seed uint64) (train, val, test *Design, err error)
}

// Metric aggregates a metric's mean and standard deviation across seeds.
type Metric struct {
	Mean, Std float64
}

func summarize(xs []float64) Metric {
	if len(xs) == 0 {
		return Metric{Mean: math.NaN(), Std: math.NaN()}
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return Metric{Mean: m, Std: math.Sqrt(v / float64(len(xs)))}
}

// StudyRow is one intervention's aggregated study outcome.
type StudyRow struct {
	Intervention string
	Accuracy     Metric
	DPDiff       Metric
	EODiff       Metric
	AccuracyGap  Metric
}

// RunStudy evaluates every intervention across every seed and returns one
// aggregated row per intervention, in input order.
func RunStudy(cfg StudyConfig, interventions []Intervention) ([]StudyRow, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("fairness: study needs at least one seed")
	}
	if len(interventions) == 0 {
		return nil, errors.New("fairness: study needs at least one intervention")
	}
	acc := make([][]float64, len(interventions))
	dp := make([][]float64, len(interventions))
	eo := make([][]float64, len(interventions))
	gap := make([][]float64, len(interventions))
	for _, seed := range cfg.Seeds {
		train, val, test, err := cfg.Data(seed)
		if err != nil {
			return nil, fmt.Errorf("fairness: data for seed %d: %w", seed, err)
		}
		for ii, iv := range interventions {
			p, err := iv.Train(train, val, rng.New(seed*2654435761+uint64(ii)))
			if err != nil {
				return nil, fmt.Errorf("fairness: %s at seed %d: %w", iv.Name, seed, err)
			}
			rep := p.Evaluate(test)
			acc[ii] = append(acc[ii], rep.Accuracy)
			dp[ii] = append(dp[ii], rep.DemographicParityDiff)
			eo[ii] = append(eo[ii], rep.EqualizedOddsDiff)
			gap[ii] = append(gap[ii], rep.AccuracyGap)
		}
	}
	rows := make([]StudyRow, len(interventions))
	for ii, iv := range interventions {
		rows[ii] = StudyRow{
			Intervention: iv.Name,
			Accuracy:     summarize(acc[ii]),
			DPDiff:       summarize(dp[ii]),
			EODiff:       summarize(eo[ii]),
			AccuracyGap:  summarize(gap[ii]),
		}
	}
	return rows, nil
}
