package fairness

import (
	"math"
	"sort"

	"redi/internal/dataset"
)

// GroupReport holds the per-group slice of an evaluation.
type GroupReport struct {
	Key      dataset.GroupKey
	N        int
	Accuracy float64
	// PositiveRate is P(ŷ=1) within the group (selection rate).
	PositiveRate float64
	// TPR and FPR are the true- and false-positive rates within the
	// group (NaN when the group has no positives / negatives).
	TPR float64
	FPR float64
}

// Report is the outcome of evaluating a model on labeled, group-indexed
// data.
type Report struct {
	N        int
	Accuracy float64
	Groups   []GroupReport
	// DemographicParityDiff is the max-min spread of group selection
	// rates; 0 is perfectly demographic-parity fair.
	DemographicParityDiff float64
	// EqualizedOddsDiff is the larger of the TPR and FPR max-min
	// spreads; 0 satisfies equalized odds.
	EqualizedOddsDiff float64
	// DisparateImpact is the min/max ratio of group selection rates;
	// the "80% rule" flags values below 0.8. 1 when all rates are zero.
	DisparateImpact float64
	// AccuracyGap is the max-min spread of per-group accuracies.
	AccuracyGap float64
}

// Evaluate scores the model on the design's examples and computes overall
// and per-group metrics. Rows with GroupIx < 0 count toward overall metrics
// only.
func Evaluate(m Model, d *Design) Report {
	return evaluatePred(d, func(i int) int { return m.Predict(d.X[i]) })
}

// evaluatePred computes the report for an arbitrary per-row predictor,
// shared by Evaluate and EvaluateWithThresholds.
func evaluatePred(d *Design, predict func(i int) int) Report {
	var rep Report
	k := 0
	if d.Groups != nil {
		k = d.Groups.NumGroups()
	}
	type acc struct {
		n, correct, predPos float64
		pos, tp, neg, fp    float64
	}
	groups := make([]acc, k)
	var overall acc
	for i := range d.X {
		pred := predict(i)
		y := d.Y[i]
		upd := func(a *acc) {
			a.n++
			if pred == y {
				a.correct++
			}
			if pred == 1 {
				a.predPos++
			}
			if y == 1 {
				a.pos++
				if pred == 1 {
					a.tp++
				}
			} else {
				a.neg++
				if pred == 1 {
					a.fp++
				}
			}
		}
		upd(&overall)
		if gi := d.GroupIx[i]; gi >= 0 && gi < k {
			upd(&groups[gi])
		}
	}
	rep.N = int(overall.n)
	if overall.n > 0 {
		rep.Accuracy = overall.correct / overall.n
	}

	rate := func(num, den float64) float64 {
		if den == 0 {
			return math.NaN()
		}
		return num / den
	}
	minPR, maxPR := math.Inf(1), math.Inf(-1)
	minTPR, maxTPR := math.Inf(1), math.Inf(-1)
	minFPR, maxFPR := math.Inf(1), math.Inf(-1)
	minAcc, maxAcc := math.Inf(1), math.Inf(-1)
	seen := false
	for gi := 0; gi < k; gi++ {
		a := groups[gi]
		gr := GroupReport{Key: d.Groups.Key(gi), N: int(a.n)}
		if a.n == 0 {
			gr.Accuracy = math.NaN()
			gr.PositiveRate = math.NaN()
			gr.TPR = math.NaN()
			gr.FPR = math.NaN()
			rep.Groups = append(rep.Groups, gr)
			continue
		}
		seen = true
		gr.Accuracy = a.correct / a.n
		gr.PositiveRate = a.predPos / a.n
		gr.TPR = rate(a.tp, a.pos)
		gr.FPR = rate(a.fp, a.neg)
		rep.Groups = append(rep.Groups, gr)

		minPR = math.Min(minPR, gr.PositiveRate)
		maxPR = math.Max(maxPR, gr.PositiveRate)
		minAcc = math.Min(minAcc, gr.Accuracy)
		maxAcc = math.Max(maxAcc, gr.Accuracy)
		if !math.IsNaN(gr.TPR) {
			minTPR = math.Min(minTPR, gr.TPR)
			maxTPR = math.Max(maxTPR, gr.TPR)
		}
		if !math.IsNaN(gr.FPR) {
			minFPR = math.Min(minFPR, gr.FPR)
			maxFPR = math.Max(maxFPR, gr.FPR)
		}
	}
	if !seen {
		rep.DisparateImpact = 1
		return rep
	}
	rep.DemographicParityDiff = maxPR - minPR
	rep.AccuracyGap = maxAcc - minAcc
	tprSpread, fprSpread := 0.0, 0.0
	if !math.IsInf(minTPR, 1) {
		tprSpread = maxTPR - minTPR
	}
	if !math.IsInf(minFPR, 1) {
		fprSpread = maxFPR - minFPR
	}
	rep.EqualizedOddsDiff = math.Max(tprSpread, fprSpread)
	if maxPR == 0 {
		rep.DisparateImpact = 1
	} else {
		rep.DisparateImpact = minPR / maxPR
	}
	return rep
}

// AUC returns the area under the ROC curve of the model's scores on the
// design: the probability that a random positive outranks a random
// negative, with ties counted half. It returns NaN when either class is
// absent.
func AUC(m Model, d *Design) float64 {
	scores := make([]float64, d.Len())
	for i, x := range d.X {
		scores[i] = m.Score(x)
	}
	ranks := rankAll(scores)
	var rankSumPos, nPos, nNeg float64
	for i, y := range d.Y {
		if y == 1 {
			nPos++
			rankSumPos += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	// Mann–Whitney U statistic.
	u := rankSumPos - nPos*(nPos+1)/2
	return u / (nPos * nNeg)
}

// rankAll returns 1-based fractional ranks with average tie handling.
func rankAll(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Insertion-free: sort by score.
	sortByScore(idx, xs)
	ranks := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func sortByScore(idx []int, xs []float64) {
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
}

// Reweigh computes the reweighing intervention of Kamiran & Calders: each
// example gets weight P(group)·P(label) / P(group, label), which makes
// group and label statistically independent in the weighted data. Rows with
// group -1 get weight 1. k is the number of groups.
func Reweigh(y, groupIx []int, k int) []float64 {
	n := float64(len(y))
	if n == 0 {
		return nil
	}
	groupN := make([]float64, k)
	labelN := [2]float64{}
	joint := make([][2]float64, k)
	for i := range y {
		labelN[y[i]]++
		if gi := groupIx[i]; gi >= 0 && gi < k {
			groupN[gi]++
			joint[gi][y[i]]++
		}
	}
	w := make([]float64, len(y))
	for i := range y {
		gi := groupIx[i]
		if gi < 0 || gi >= k || joint[gi][y[i]] == 0 {
			w[i] = 1
			continue
		}
		w[i] = (groupN[gi] / n) * (labelN[y[i]] / n) / (joint[gi][y[i]] / n)
	}
	return w
}
