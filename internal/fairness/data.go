// Package fairness provides the stdlib-only machine-learning substrate and
// the fairness metrics used to audit integrated data (tutorial §2.3 and
// FairPrep, EDBT 2020): logistic regression and Gaussian naive Bayes
// learners, per-group evaluation, demographic parity / equalized odds /
// disparate impact, and the reweighing pre-processing intervention.
package fairness

import (
	"errors"
	"fmt"
	"math"

	"redi/internal/dataset"
)

// Problem identifies the learning task carried by a dataset: which
// attributes are features, which is the binary label, and which sensitive
// attributes define the groups audited for fairness.
type Problem struct {
	Features  []string
	Label     string
	Positive  string // label value treated as the positive class
	Sensitive []string
	// Encoder optionally appends one-hot indicators of categorical
	// attributes to the feature vector. Fit it once (on a reference
	// dataset that covers all values) and reuse it for train and test
	// so dimensions agree.
	Encoder *OneHotEncoder
}

// OneHotEncoder maps categorical attribute values to indicator positions.
// Values unseen at fitting time encode as all-zeros for their attribute.
type OneHotEncoder struct {
	Attrs  []string
	vocab  []map[string]int
	offset []int
	dim    int
}

// NewOneHotEncoder fits an encoder on d's domains for the given
// categorical attributes.
func NewOneHotEncoder(d *dataset.Dataset, attrs []string) *OneHotEncoder {
	e := &OneHotEncoder{Attrs: append([]string(nil), attrs...)}
	for _, a := range attrs {
		m := map[string]int{}
		for _, v := range d.Domain(a) {
			m[v] = len(m)
		}
		e.vocab = append(e.vocab, m)
		e.offset = append(e.offset, e.dim)
		e.dim += len(m)
	}
	return e
}

// Dim returns the number of indicator columns the encoder produces.
func (e *OneHotEncoder) Dim() int { return e.dim }

// Encode writes the indicators for row of d into dst (which must have
// length Dim). Nulls and unseen values leave their attribute's block zero.
func (e *OneHotEncoder) Encode(d *dataset.Dataset, row int, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for ai, a := range e.Attrs {
		v := d.Value(row, a)
		if v.Null {
			continue
		}
		if j, ok := e.vocab[ai][v.Cat]; ok {
			dst[e.offset[ai]+j] = 1
		}
	}
}

// InferProblem derives a Problem from a schema's attribute roles: numeric
// Feature attributes become features, the single Target attribute the
// label, and Sensitive attributes the group definition. The positive class
// defaults to "pos". It returns an error if there is no numeric feature or
// not exactly one target.
func InferProblem(d *dataset.Dataset) (Problem, error) {
	p := Problem{Positive: "pos"}
	s := d.Schema()
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		if a.Role == dataset.Feature && a.Kind == dataset.Numeric {
			p.Features = append(p.Features, a.Name)
		}
	}
	if len(p.Features) == 0 {
		return p, errors.New("fairness: no numeric feature attributes")
	}
	targets := s.ByRole(dataset.Target)
	if len(targets) != 1 {
		return p, fmt.Errorf("fairness: want exactly one target attribute, have %d", len(targets))
	}
	p.Label = targets[0]
	p.Sensitive = s.ByRole(dataset.Sensitive)
	return p, nil
}

// Design is the materialized learning input: the feature matrix, binary
// labels, the group index of each row (the gid from Groups.ByRow; -1 when a
// sensitive attribute is null), and the rows of the source dataset each
// example came from.
type Design struct {
	X       [][]float64
	Y       []int
	GroupIx []int
	Groups  *dataset.Groups
	Rows    []int
}

// BuildDesign extracts the learning input for p from d, skipping rows with
// a null feature or label. It returns an error if no usable rows remain.
func BuildDesign(d *dataset.Dataset, p Problem) (*Design, error) {
	var groups *dataset.Groups
	if len(p.Sensitive) > 0 {
		groups = d.GroupBy(p.Sensitive...)
	}
	des := &Design{Groups: groups}
	extra := 0
	if p.Encoder != nil {
		extra = p.Encoder.Dim()
	}
	for r := 0; r < d.NumRows(); r++ {
		lv := d.Value(r, p.Label)
		if lv.Null {
			continue
		}
		x := make([]float64, len(p.Features)+extra)
		ok := true
		for j, f := range p.Features {
			v := d.Value(r, f)
			if v.Null || v.Kind != dataset.Numeric {
				ok = false
				break
			}
			x[j] = v.Num
		}
		if !ok {
			continue
		}
		if p.Encoder != nil {
			p.Encoder.Encode(d, r, x[len(p.Features):])
		}
		des.X = append(des.X, x)
		if lv.Cat == p.Positive {
			des.Y = append(des.Y, 1)
		} else {
			des.Y = append(des.Y, 0)
		}
		if groups != nil {
			des.GroupIx = append(des.GroupIx, int(groups.ByRow[r]))
		} else {
			des.GroupIx = append(des.GroupIx, -1)
		}
		des.Rows = append(des.Rows, r)
	}
	if len(des.X) == 0 {
		return nil, errors.New("fairness: no usable rows")
	}
	return des, nil
}

// Len returns the number of examples.
func (d *Design) Len() int { return len(d.X) }

// Standardize rescales every feature to zero mean and unit variance in
// place and returns the fitted means and scales so that test data can be
// transformed identically (ApplyStandardize). Constant features get scale 1.
func (d *Design) Standardize() (means, scales []float64) {
	if d.Len() == 0 {
		return nil, nil
	}
	k := len(d.X[0])
	means = make([]float64, k)
	scales = make([]float64, k)
	for j := 0; j < k; j++ {
		sum := 0.0
		for _, x := range d.X {
			sum += x[j]
		}
		means[j] = sum / float64(d.Len())
		v := 0.0
		for _, x := range d.X {
			dd := x[j] - means[j]
			v += dd * dd
		}
		scales[j] = math.Sqrt(v / float64(d.Len()))
		if scales[j] == 0 {
			scales[j] = 1
		}
	}
	d.ApplyStandardize(means, scales)
	return means, scales
}

// ApplyStandardize transforms the design's features with previously fitted
// parameters.
func (d *Design) ApplyStandardize(means, scales []float64) {
	for _, x := range d.X {
		for j := range x {
			x[j] = (x[j] - means[j]) / scales[j]
		}
	}
}
