package fairness

import (
	"errors"
	"math"

	"redi/internal/rng"
)

// Model is a binary classifier over float64 feature vectors.
type Model interface {
	// Score returns the model's estimate of P(y=1 | x).
	Score(x []float64) float64
	// Predict returns the hard 0/1 prediction.
	Predict(x []float64) int
}

// LogisticConfig parameterizes logistic-regression training.
type LogisticConfig struct {
	Epochs int     // full passes over the data (default 50)
	LR     float64 // learning rate (default 0.1)
	L2     float64 // L2 regularization strength (default 1e-4)
}

func (c LogisticConfig) withDefaults() LogisticConfig {
	if c.Epochs == 0 {
		c.Epochs = 50
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	return c
}

// Logistic is an L2-regularized logistic-regression classifier trained by
// SGD with per-example weights (so that reweighing interventions compose
// with it).
type Logistic struct {
	Weights []float64
	Bias    float64
}

// TrainLogistic fits a logistic regression on (X, y) with optional
// per-example weights w (nil means uniform). Examples are visited in a
// random order derived from r each epoch. It returns an error on empty or
// inconsistent input.
func TrainLogistic(X [][]float64, y []int, w []float64, cfg LogisticConfig, r *rng.RNG) (*Logistic, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("fairness: bad training input")
	}
	if w != nil && len(w) != len(X) {
		return nil, errors.New("fairness: weight length mismatch")
	}
	cfg = cfg.withDefaults()
	k := len(X[0])
	m := &Logistic{Weights: make([]float64, k)}
	n := len(X)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR / (1 + 0.1*float64(epoch))
		perm := r.Perm(n)
		for _, i := range perm {
			p := m.Score(X[i])
			g := p - float64(y[i])
			if w != nil {
				g *= w[i]
			}
			for j, xj := range X[i] {
				m.Weights[j] -= lr * (g*xj + cfg.L2*m.Weights[j])
			}
			m.Bias -= lr * g
		}
	}
	return m, nil
}

// Score implements Model.
func (m *Logistic) Score(x []float64) float64 {
	z := m.Bias
	for j, wj := range m.Weights {
		z += wj * x[j]
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict implements Model.
func (m *Logistic) Predict(x []float64) int {
	if m.Score(x) >= 0.5 {
		return 1
	}
	return 0
}

// GaussianNB is a Gaussian naive Bayes classifier: features are modeled as
// independent normals within each class.
type GaussianNB struct {
	Prior [2]float64   // log class priors
	Mean  [2][]float64 // per-class feature means
	Var   [2][]float64 // per-class feature variances (floored)
}

// TrainGaussianNB fits the classifier. It returns an error when either
// class is absent (priors would be degenerate).
func TrainGaussianNB(X [][]float64, y []int) (*GaussianNB, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("fairness: bad training input")
	}
	k := len(X[0])
	var counts [2]float64
	m := &GaussianNB{}
	for c := 0; c < 2; c++ {
		m.Mean[c] = make([]float64, k)
		m.Var[c] = make([]float64, k)
	}
	for i, x := range X {
		c := y[i]
		counts[c]++
		for j, v := range x {
			m.Mean[c][j] += v
		}
	}
	if counts[0] == 0 || counts[1] == 0 {
		return nil, errors.New("fairness: a class is absent from the training data")
	}
	for c := 0; c < 2; c++ {
		for j := range m.Mean[c] {
			m.Mean[c][j] /= counts[c]
		}
	}
	for i, x := range X {
		c := y[i]
		for j, v := range x {
			d := v - m.Mean[c][j]
			m.Var[c][j] += d * d
		}
	}
	const varFloor = 1e-6
	for c := 0; c < 2; c++ {
		for j := range m.Var[c] {
			m.Var[c][j] = m.Var[c][j]/counts[c] + varFloor
		}
		m.Prior[c] = math.Log(counts[c] / float64(len(X)))
	}
	return m, nil
}

func (m *GaussianNB) logLikelihood(c int, x []float64) float64 {
	ll := m.Prior[c]
	for j, v := range x {
		d := v - m.Mean[c][j]
		ll += -0.5*math.Log(2*math.Pi*m.Var[c][j]) - d*d/(2*m.Var[c][j])
	}
	return ll
}

// Score implements Model.
func (m *GaussianNB) Score(x []float64) float64 {
	l0 := m.logLikelihood(0, x)
	l1 := m.logLikelihood(1, x)
	// Softmax over the two log-joint terms.
	mx := math.Max(l0, l1)
	e0 := math.Exp(l0 - mx)
	e1 := math.Exp(l1 - mx)
	return e1 / (e0 + e1)
}

// Predict implements Model.
func (m *GaussianNB) Predict(x []float64) int {
	if m.Score(x) >= 0.5 {
		return 1
	}
	return 0
}

// ConstantModel always predicts the same class; the degenerate baseline.
type ConstantModel int

// Score implements Model.
func (c ConstantModel) Score([]float64) float64 { return float64(c) }

// Predict implements Model.
func (c ConstantModel) Predict([]float64) int { return int(c) }
