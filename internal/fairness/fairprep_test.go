package fairness

import (
	"math"
	"testing"

	"redi/internal/rng"
	"redi/internal/synth"
)

func studyData(seed uint64) (train, val, test *Design, err error) {
	cfg := synth.DefaultPopulation(4000)
	p := synth.Generate(cfg, rng.New(seed))
	prob, err := InferProblem(p.Data)
	if err != nil {
		return nil, nil, nil, err
	}
	r := rng.New(seed + 1)
	trainD, rest := p.Data.Split(r, 0.6)
	valD, testD := rest.Split(r, 0.5)
	if train, err = BuildDesign(trainD, prob); err != nil {
		return nil, nil, nil, err
	}
	if val, err = BuildDesign(valD, prob); err != nil {
		return nil, nil, nil, err
	}
	if test, err = BuildDesign(testD, prob); err != nil {
		return nil, nil, nil, err
	}
	means, scales := train.Standardize()
	val.ApplyStandardize(means, scales)
	test.ApplyStandardize(means, scales)
	return train, val, test, nil
}

func TestRunStudy(t *testing.T) {
	rows, err := RunStudy(StudyConfig{
		Seeds: []uint64{1, 2, 3},
		Data:  studyData,
	}, []Intervention{
		Baseline(LogisticConfig{Epochs: 20}),
		ReweighIntervention(LogisticConfig{Epochs: 20}),
		ParityPostProcess(LogisticConfig{Epochs: 20}, 0.5),
		EqOppPostProcess(LogisticConfig{Epochs: 20}, 0.85),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]StudyRow{}
	for _, r := range rows {
		byName[r.Intervention] = r
		if math.IsNaN(r.Accuracy.Mean) || r.Accuracy.Mean < 0.6 {
			t.Fatalf("%s accuracy = %+v", r.Intervention, r.Accuracy)
		}
		if r.Accuracy.Std < 0 || math.IsNaN(r.Accuracy.Std) {
			t.Fatalf("%s accuracy std = %+v", r.Intervention, r.Accuracy)
		}
	}
	base := byName["baseline"]
	parity := byName["parity-threshold"]
	// The parity post-process must reduce the DP gap vs baseline.
	if parity.DPDiff.Mean >= base.DPDiff.Mean {
		t.Fatalf("parity thresholds did not reduce DP: %v -> %v",
			base.DPDiff.Mean, parity.DPDiff.Mean)
	}
	eqopp := byName["eqopp-threshold"]
	if eqopp.EODiff.Mean > base.EODiff.Mean+0.05 {
		t.Fatalf("eqopp thresholds worsened EO: %v -> %v",
			base.EODiff.Mean, eqopp.EODiff.Mean)
	}
}

func TestRunStudyValidation(t *testing.T) {
	if _, err := RunStudy(StudyConfig{}, []Intervention{Baseline(LogisticConfig{})}); err == nil {
		t.Fatal("no seeds accepted")
	}
	if _, err := RunStudy(StudyConfig{Seeds: []uint64{1}, Data: studyData}, nil); err == nil {
		t.Fatal("no interventions accepted")
	}
}

func TestSummarize(t *testing.T) {
	m := summarize([]float64{1, 3})
	if m.Mean != 2 || m.Std != 1 {
		t.Fatalf("summarize = %+v", m)
	}
	if empty := summarize(nil); !math.IsNaN(empty.Mean) {
		t.Fatalf("empty summarize = %+v", empty)
	}
}
