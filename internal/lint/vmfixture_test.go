package lint

import "testing"

// The predicate VM's evaluation shapes — a bytecode loop writing a
// sp-indexed boolean stack, word-accumulate fill kernels, and dictionary
// binding at compile time — must pass the determinism analyzers with zero
// //redi:allow annotations. This fixture distills those shapes (from
// dataset's predvm.go/predcompile.go) and pins that MapOrder and ParCapture
// stay silent on them.
const vmFixtureSrc = `package fixture

import "redi/internal/parallel"

type instr struct {
	op   int
	a, b int32
}

// bindDict is the compile-time shape: build a value→code index from a
// dictionary slice (per-key map writes, no map iteration).
func bindDict(dict []string) map[string]int32 {
	index := make(map[string]int32, len(dict))
	for i, s := range dict {
		index[s] = int32(i)
	}
	return index
}

// evalRow is the row VM shape: a stack machine over fixed-width bytecode,
// writing a sp-indexed local stack.
func evalRow(code []instr, codes []int32, row int) bool {
	var st [32]bool
	sp := 0
	for i := range code {
		in := &code[i]
		switch in.op {
		case 0:
			st[sp] = codes[row] == in.b
			sp++
		case 1:
			sp--
			st[sp-1] = st[sp-1] && st[sp]
		case 2:
			st[sp-1] = !st[sp-1]
		}
	}
	return st[0]
}

// fillEq is the vectorized leaf shape: accumulate each 64-row word in a
// register and assign it, fully overwriting dst.
func fillEq(dst []uint64, codes []int32, code int32) {
	n := len(codes)
	for wi := range dst {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		var w uint64
		for i := base; i < end; i++ {
			if codes[i] == code {
				w |= 1 << uint(i-base)
			}
		}
		dst[wi] = w
	}
}

// countMatches is the parallel-driver shape: per-shard match counts land in
// shard-local accumulators, never in captured state.
func countMatches(code []instr, codes []int32) int {
	partial := parallel.MapChunks(parallel.Auto, len(codes), func(shard, lo, hi int) int {
		local := 0
		for row := lo; row < hi; row++ {
			if evalRow(code, codes, row) {
				local++
			}
		}
		return local
	})
	total := 0
	for _, p := range partial {
		total += p
	}
	return total
}
`

func TestVMEvalLoopPassesDeterminismAnalyzers(t *testing.T) {
	files := map[string]string{"fix.go": vmFixtureSrc}
	wantFindings(t, runFixture(t, MapOrder, fixturePkg, files), 0, "")
	wantFindings(t, runFixture(t, ParCapture, fixturePkg, files), 0, "")
}
