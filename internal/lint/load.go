package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked unit of analysis.
type Package struct {
	// Module is the module path the package belongs to.
	Module string
	// Path is the package's import path (external test packages get a
	// "_test"-suffixed last element).
	Path string
	// Name is the package name from the source.
	Name string
	Fset *token.FileSet
	// Files are the parsed files in sorted filename order, so analysis
	// output is stable regardless of directory-listing order.
	Files []*ast.File
	// Types and Info come from the type checker. Type errors do not abort
	// loading — analyzers degrade to syntactic fallbacks — but are kept in
	// TypeErrors for the driver's -debug output.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-local imports are type-checked from source by
// the loader itself, and standard-library imports go through go/importer's
// source importer (GOROOT source, no pre-built export data needed).
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string

	std    types.ImporterFrom // lookup-backed gc importer, set once exports are warmed
	stdDef types.ImporterFrom // default gc export-data importer (per-import resolution)
	stdSrc types.ImporterFrom // source importer, last resort
	// exports maps std import paths to export-data files, filled by one
	// batched `go list -export -deps` run: the default gc importer resolves
	// export data per import (a subprocess each on toolchains without
	// pre-built .a files), which dominated the full-repo wall clock.
	exports map[string]string
	// stdCache memoizes standard-library imports: the gc importer re-reads
	// export data per call, and redilint imports the same handful of std
	// packages from every package in the module.
	stdCache map[string]*types.Package
	imports  map[string]*types.Package // module-local import cache (no test files)
	loading  map[string]bool           // cycle guard for module-local imports
}

// NewLoader builds a loader for the module rooted at modRoot (a directory
// containing go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:     fset,
		ModPath:  modPath,
		ModRoot:  abs,
		stdCache: map[string]*types.Package{},
		imports:  map[string]*types.Package{},
		loading:  map[string]bool{},
	}
	// Standard-library imports prefer compiled export data over
	// type-checking the stdlib from source (net/http: ~0.2s vs several
	// seconds). Load() additionally warms a path→export-file map with one
	// batched `go list` so the common case never spawns a per-import
	// subprocess; the chain degrades gracefully on toolchains without
	// export data.
	l.exports = map[string]string{}
	if gc, ok := importer.ForCompiler(fset, "gc", nil).(types.ImporterFrom); ok {
		l.stdDef = gc
	}
	l.stdSrc = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// warmStdExports resolves export-data files for the given stdlib roots (and
// all their transitive dependencies) with a single `go list -export -deps`
// invocation, then rebuilds the gc importer around a direct-file lookup.
// Best-effort: on any failure the loader keeps its slower fallback chain.
func (l *Loader) warmStdExports(roots []string) {
	if len(roots) == 0 {
		return
	}
	sort.Strings(roots)
	args := append([]string{"list", "-e", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}"}, roots...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModRoot
	out, err := cmd.Output()
	if err != nil {
		return
	}
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if ok && file != "" {
			l.exports[path] = file
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if f, ok := l.exports[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	if gc, ok := importer.ForCompiler(l.Fset, "gc", lookup).(types.ImporterFrom); ok {
		l.std = gc
	}
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// Load resolves package patterns relative to the module root and returns
// the matched packages in sorted import-path order. Supported patterns are
// Go-tool style: "./..." and "./dir/..." for subtrees, "./dir" (or "dir")
// for a single package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		} else if pat == "..." {
			rec, pat = true, "."
		}
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !rec {
			dirs[dir] = true
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	// Scan every matched directory up front, then type-check units in
	// dependency order so each unit's own Types can serve as the import
	// surface for later units. Without this, every module-local package gets
	// type-checked twice — once as a unit, once (minus test files) when
	// another package imports it — which roughly doubles the full-repo run.
	type entry struct {
		dir  string
		path string
		bp   *build.Package
	}
	var entries []*entry
	byPath := map[string]*entry{}
	for _, dir := range sorted {
		bp, err := build.Default.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("lint: scanning %s: %w", dir, err)
		}
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		e := &entry{dir: dir, path: path, bp: bp}
		entries = append(entries, e)
		byPath[path] = e
	}
	// Warm the stdlib export-data map once, for the union of every scanned
	// package's non-module imports (transitive deps come along via -deps).
	stdRoots := map[string]bool{}
	for _, e := range entries {
		for _, imp := range [][]string{e.bp.Imports, e.bp.TestImports, e.bp.XTestImports} {
			for _, p := range imp {
				if p != "C" && p != "unsafe" && p != l.ModPath && !strings.HasPrefix(p, l.ModPath+"/") {
					stdRoots[p] = true
				}
			}
		}
	}
	roots := make([]string, 0, len(stdRoots))
	for p := range stdRoots {
		roots = append(roots, p)
	}
	sort.Strings(roots)
	l.warmStdExports(roots)

	const (
		visiting = 1
		done     = 2
	)
	state := map[*entry]int{}
	var order []*entry
	var visit func(*entry)
	visit = func(e *entry) {
		if state[e] != 0 {
			return // done, or a test-import cycle: the importLocal fallback covers it
		}
		state[e] = visiting
		deps := append(append([]string{}, e.bp.Imports...), e.bp.TestImports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[e] = done
		order = append(order, e)
	}
	for _, e := range entries {
		visit(e)
	}

	units := map[*entry][]*Package{}
	for _, e := range order {
		us, err := l.loadUnits(e.dir, e.path, e.bp)
		if err != nil {
			return nil, err
		}
		units[e] = us
	}
	// Emit in the original sorted-directory order regardless of
	// dependency-visit order, so output stays stable.
	var pkgs []*Package
	for _, e := range entries {
		pkgs = append(pkgs, units[e]...)
	}
	return pkgs, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// loadUnits type-checks the analysis units of one pre-scanned directory:
// the package including its in-package test files, plus (when present) the
// external _test package. The base unit's Types is registered as the
// package's import surface before the external test unit (which imports it)
// is checked, and before any later unit in the caller's dependency order
// needs it. The registered surface includes in-package test declarations —
// importers can only gain symbols from that, never lose them.
func (l *Loader) loadUnits(dir, importPath string, bp *build.Package) ([]*Package, error) {
	var units []*Package
	if files := append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...); len(files) > 0 {
		pkg, err := l.check(importPath, dir, files)
		if err != nil {
			return nil, err
		}
		if pkg.Types != nil {
			pkg.Types.MarkComplete()
			if _, ok := l.imports[importPath]; !ok {
				l.imports[importPath] = pkg.Types
			}
		}
		units = append(units, pkg)
	}
	if len(bp.XTestGoFiles) > 0 {
		pkg, err := l.check(importPath+"_test", dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		units = append(units, pkg)
	}
	return units, nil
}

// check parses the named files of dir and type-checks them as one package.
func (l *Loader) check(importPath, dir string, names []string) (*Package, error) {
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		// SkipObjectResolution: go/types does its own name resolution; the
		// legacy ast.Object scopes would be pure overhead.
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	return l.typecheck(importPath, files), nil
}

// PackageFromSource type-checks in-memory sources as one package — the
// fixture path used by analyzer tests. files maps a synthetic filename
// (e.g. "fix.go", "fix_test.go") to Go source.
func (l *Loader) PackageFromSource(importPath string, files map[string]string) (*Package, error) {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing fixture %s: %w", name, err)
		}
		parsed = append(parsed, f)
	}
	return l.typecheck(importPath, parsed), nil
}

// typecheck runs the type checker over parsed files, tolerating type
// errors: analysis wants maximal information, not a build gate.
func (l *Loader) typecheck(importPath string, files []*ast.File) *Package {
	pkg := &Package{
		Module: l.ModPath,
		Path:   importPath,
		Fset:   l.Fset,
		Files:  files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	if len(files) > 0 {
		pkg.Name = files[0].Name.Name
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg
}

// Import implements types.Importer: module-local paths are type-checked
// from source by the loader (without test files), anything else is
// delegated to the standard library's source importer. Unresolvable
// imports degrade to an empty placeholder package so the enclosing
// type-check can continue.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		return l.importLocal(path)
	}
	if pkg, ok := l.stdCache[path]; ok {
		return pkg, nil
	}
	for _, imp := range []types.ImporterFrom{l.std, l.stdDef} {
		if imp == nil {
			continue
		}
		if pkg, err := imp.ImportFrom(path, l.ModRoot, 0); err == nil {
			l.stdCache[path] = pkg
			return pkg, nil
		}
	}
	pkg, err := l.stdSrc.ImportFrom(path, l.ModRoot, 0)
	if err != nil {
		return l.placeholder(path), nil
	}
	l.stdCache[path] = pkg
	return pkg, nil
}

// importLocal type-checks a module-local package for use as an import.
// Test files are excluded: importers only see the package's export
// surface. Cycles (possible only through malformed code) break by
// returning a placeholder.
func (l *Loader) importLocal(path string) (*types.Package, error) {
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return l.placeholder(path), nil
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(path, l.ModPath)
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return l.placeholder(path), nil
	}
	pkg, err := l.check(path, dir, append([]string{}, bp.GoFiles...))
	if err != nil {
		return l.placeholder(path), nil
	}
	if pkg.Types != nil {
		pkg.Types.MarkComplete()
	}
	l.imports[path] = pkg.Types
	return pkg.Types, nil
}

// placeholder stands in for an unresolvable import; the resulting type
// errors are tolerated by typecheck.
func (l *Loader) placeholder(path string) *types.Package {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	return pkg
}
