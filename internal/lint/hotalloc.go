package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc keeps allocation out of declared hot paths. A body is hot when
// its function carries a `//redi:hotpath` annotation (the VM eval loops and
// fill kernels in internal/dataset opt in this way) or when it is a closure
// handed to parallel.For/Map/MapChunks (worker bodies run once per element
// or chunk). Inside a hot body the rule flags the alloc-bearing constructs
// that profiling has repeatedly caught sneaking into kernels:
//
//   - any fmt.* call (formatting allocates and takes interface arguments)
//   - string concatenation (+ / += on strings builds garbage per row)
//   - map and slice composite literals (per-iteration heap allocation)
//   - interface boxing of numerics: passing an int/float argument where the
//     callee takes an interface — the conversion heap-allocates on most
//     values and is invisible at the call site
//
// The rule is about steady-state per-element work; one-time setup belongs
// outside the annotated function, and genuinely cold diagnostics inside a
// hot body carry a //redi:allow hotalloc with the reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//redi:hotpath functions and parallel worker closures must not use fmt, string concat, map/slice literals, or box numerics into interfaces",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if !isInternalPkg(pass) {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		// A closure nested in an annotated function is seen twice (outer walk
		// + parallel-arg walk); dedup by position.
		reported := map[token.Pos]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil && isHotpathAnnotated(d.Doc) {
					checkHotBody(pass, d.Body, "//redi:hotpath function "+d.Name.Name, reported)
				}
			case *ast.CallExpr:
				if fl := parallelWorkerArg(pass, file, d); fl != nil {
					sel := d.Fun.(*ast.SelectorExpr)
					checkHotBody(pass, fl.Body, "parallel."+sel.Sel.Name+" worker closure", reported)
				}
			}
			return true
		})
	}
}

// parallelWorkerArg returns the closure literal passed to a
// parallel.For/Map/MapChunks call, or nil.
func parallelWorkerArg(pass *Pass, file *ast.File, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !parallelEntrypoints[sel.Sel.Name] {
		return nil
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok || pass.pkgNamePath(file, pkgID) != pass.Module+"/internal/parallel" {
		return nil
	}
	for _, arg := range call.Args {
		if fl, ok := arg.(*ast.FuncLit); ok {
			return fl
		}
	}
	return nil
}

// isHotpathAnnotated reports whether the doc comment carries //redi:hotpath.
func isHotpathAnnotated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//redi:hotpath") {
			return true
		}
	}
	return false
}

// checkHotBody walks one hot body (including nested closures — they are
// created, and almost always invoked, in the hot context) and reports
// alloc-bearing constructs.
func checkHotBody(pass *Pass, body *ast.BlockStmt, where string, reported map[token.Pos]bool) {
	report := func(pos token.Pos, msg string) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, "%s in %s; hot bodies run per row/element and must not allocate", msg, where)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isPkgCall(pass, e, "fmt") {
				report(e.Pos(), "fmt call")
				return true // don't double-report its boxed arguments
			}
			checkBoxedArgs(pass, e, report)
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(exprType(pass, e.X)) {
				report(e.OpPos, "string concatenation")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isString(exprType(pass, e.Lhs[0])) {
				report(e.TokPos, "string concatenation")
			}
		case *ast.CompositeLit:
			switch coreType(pass, e).(type) {
			case *types.Map:
				report(e.Pos(), "map literal")
			case *types.Slice:
				report(e.Pos(), "slice literal")
			}
		}
		return true
	})
}

// isPkgCall reports whether call is <pkg>.<anything>(...) for the named
// standard-library package.
func isPkgCall(pass *Pass, call *ast.CallExpr, pkgPath string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pn, ok := identObj(pass, id).(*types.PkgName); ok {
		return pn.Imported().Path() == pkgPath
	}
	return false
}

// checkBoxedArgs flags numeric arguments passed in interface-typed
// parameter slots.
func checkBoxedArgs(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	sig, ok := exprType(pass, call.Fun).(*types.Signature)
	if !ok {
		return // conversion or builtin, not a function call
	}
	if call.Ellipsis != token.NoPos {
		return // spread of an existing slice does not box per element here
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if b, ok := basicOf(exprType(pass, arg)); ok && b.Info()&(types.IsInteger|types.IsFloat|types.IsComplex) != 0 {
			report(arg.Pos(), "numeric value boxed into interface argument")
		}
	}
}
