package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for range` loops over map-typed values, in non-test files
// of algorithm packages (<module>/internal/...), whose body leaks Go's
// randomized iteration order into order-sensitive state. This is the
// ResolveEntities bug class PR 1 fixed by hand: cluster representatives
// depended on which block happened to be visited first.
//
// A loop is flagged when its body, relative to state declared outside the
// loop, does any of:
//
//   - append into a slice (unless the slice is passed to sort/slices
//     immediately after the loop — the sanctioned collect-then-sort idiom);
//   - op-assign (+= -= *= /=) into a float, where summation order changes
//     the low bits;
//   - string concatenation (+= or s = s + ...);
//   - plain assignment whose right-hand side mentions the loop's key or
//     value variable — last-writer-wins, so the surviving value is whichever
//     the iterator happened to visit last.
//
// Two shapes are exempt because they are provably order-free: writes into
// an element indexed by the loop's key variable (map keys are distinct, so
// the writes are per-iteration disjoint), and single max/min tracking —
// `if v > best { best = v }` — where the guard compares exactly the
// assigned pair (max/min is commutative; only argmax-style tuple updates
// tie-break on iteration order and stay flagged).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not leak into order-sensitive state in algorithm packages",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !strings.HasPrefix(pass.Path, pass.Module+"/internal/") {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkMapRanges(pass, fn.Body)
			return true
		})
	}
}

// checkMapRanges walks one function body looking for map ranges; body is
// also the scope against which "after the loop" is resolved for the
// collect-then-sort exemption.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := coreType(pass, rs.X).(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rs)
		return true
	})
}

func checkMapRangeBody(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	keyObj := rangeVarObj(pass, rs.Key)
	valObj := rangeVarObj(pass, rs.Value)
	safeMaxMin := maxMinAssignments(rs.Body)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE || safeMaxMin[st] {
				return true
			}
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					rhs = st.Rhs[0]
				}
				checkWrite(pass, fnBody, rs, keyObj, valObj, st.Tok, lhs, rhs)
			}
		case *ast.IncDecStmt:
			// ++/-- is integer-or-float; only floats are order-sensitive,
			// and those are vanishingly rare — treat like an int op-assign.
			return true
		}
		return true
	})
}

// checkWrite classifies one assignment inside a map-range body.
func checkWrite(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, keyObj, valObj types.Object, tok token.Token, lhs, rhs ast.Expr) {
	base := baseIdent(lhs)
	if base == nil || base.Name == "_" {
		return
	}
	obj := identObj(pass, base)
	if obj == nil || declaredWithin(pass, obj, rs) {
		return // loop-local state; order cannot escape
	}
	// Writes keyed by the loop's key variable are per-iteration disjoint:
	// map keys are distinct, so every iteration touches its own element.
	if ix, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil && mentionsObj(pass, ix.Index, keyObj) {
		return
	}
	what := types.ExprString(lhs)
	switch tok {
	case token.ASSIGN:
		if isAppendCall(pass, lhs, rhs) {
			if sortedAfter(pass, fnBody, rs, lhs) {
				return // collect-then-sort idiom
			}
			pass.Reportf(lhs.Pos(), "append into %s inside a map range leaks iteration order; iterate sorted keys or sort %s before use", what, what)
			return
		}
		if isStringConcat(pass, lhs, rhs) {
			pass.Reportf(lhs.Pos(), "string concatenation into %s inside a map range depends on iteration order; iterate sorted keys", what)
			return
		}
		if mentionsEither(pass, rhs, keyObj, valObj) {
			pass.Reportf(lhs.Pos(), "assignment to %s from the loop's key/value inside a map range is last-writer-wins under randomized iteration order; iterate sorted keys", what)
		}
	case token.ADD_ASSIGN:
		t := exprType(pass, lhs)
		switch {
		case isFloat(t):
			pass.Reportf(lhs.Pos(), "floating-point accumulation into %s inside a map range is order-sensitive (float addition is not associative); iterate sorted keys", what)
		case isString(t):
			pass.Reportf(lhs.Pos(), "string concatenation into %s inside a map range depends on iteration order; iterate sorted keys", what)
		}
	case token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if isFloat(exprType(pass, lhs)) {
			pass.Reportf(lhs.Pos(), "floating-point accumulation into %s inside a map range is order-sensitive; iterate sorted keys", what)
		}
	}
}

// maxMinAssignments collects assignments of the order-free max/min
// tracking shape: a single `L = R` directly guarded by a comparison of L
// and R (`if R > L { L = R }` and operator/operand variants). The guard
// makes the final value the extremum of all visited values, which is
// independent of visit order; anything assigning additional state in the
// same statement (argmax tracking) does not qualify.
func maxMinAssignments(body *ast.BlockStmt) map[*ast.AssignStmt]bool {
	out := map[*ast.AssignStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cond.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		cx, cy := types.ExprString(cond.X), types.ExprString(cond.Y)
		for _, st := range ifStmt.Body.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			l, r := types.ExprString(as.Lhs[0]), types.ExprString(as.Rhs[0])
			if (l == cx && r == cy) || (l == cy && r == cx) {
				out[as] = true
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether, after the range statement, the enclosing
// function body passes lhs (textually identical expression) as the first
// argument of a sort or slices call — the sanctioned collect-then-sort
// idiom.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, lhs ast.Expr) bool {
	want := types.ExprString(lhs)
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		path := pass.pkgNamePath(fileOf(pass, call.Pos()), pkgID)
		if path != "sort" && path != "slices" {
			return true
		}
		if types.ExprString(call.Args[0]) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// --- small helpers -------------------------------------------------------

// coreType returns the underlying type of e, or nil without type info.
func coreType(pass *Pass, e ast.Expr) types.Type {
	t := exprType(pass, e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func exprType(pass *Pass, e ast.Expr) types.Type {
	if pass.Info == nil {
		return nil
	}
	return pass.Info.TypeOf(e)
}

// baseIdent strips selectors, indexing, derefs, and parens down to the
// root identifier of an assignable expression.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if pass.Info == nil {
		return nil
	}
	if obj := pass.Info.ObjectOf(id); obj != nil {
		return obj
	}
	return nil
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(pass *Pass, obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return identObj(pass, id)
}

// mentionsObj reports whether expr references obj.
func mentionsObj(pass *Pass, expr ast.Expr, obj types.Object) bool {
	if expr == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObj(pass, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func mentionsEither(pass *Pass, expr ast.Expr, a, b types.Object) bool {
	return mentionsObj(pass, expr, a) || mentionsObj(pass, expr, b)
}

// isAppendCall reports the `x = append(x, ...)` accumulation shape.
func isAppendCall(pass *Pass, lhs, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if obj := identObj(pass, fn); obj != nil {
		if _, builtin := obj.(*types.Builtin); !builtin {
			return false // locally shadowed append
		}
	}
	return types.ExprString(call.Args[0]) == types.ExprString(lhs)
}

// isStringConcat reports the `s = s + ...` shape (ADD_ASSIGN is handled by
// the caller via type inspection).
func isStringConcat(pass *Pass, lhs, rhs ast.Expr) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD || !isString(exprType(pass, lhs)) {
		return false
	}
	return types.ExprString(bin.X) == types.ExprString(lhs)
}

func isFloat(t types.Type) bool {
	b, ok := basicOf(t)
	return ok && b.Info()&types.IsFloat != 0
}

func isString(t types.Type) bool {
	b, ok := basicOf(t)
	return ok && b.Info()&types.IsString != 0
}

func basicOf(t types.Type) (*types.Basic, bool) {
	if t == nil {
		return nil, false
	}
	b, ok := t.Underlying().(*types.Basic)
	return b, ok
}

// fileOf returns the file of the pass containing pos.
func fileOf(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}
