package lint

import "testing"

// BenchmarkRedilint pins the full-repo lint run — load, type-check, and all
// eight analyzers over every package — which CI executes on every push. The
// budget is ~2s per cold run (currently ~0.5s): one batched `go list
// -export -deps` maps every stdlib import to its export-data file up front,
// dependency-ordered unit checking type-checks each module package once,
// and the per-loader stdlib/module caches absorb repeat imports.
func BenchmarkRedilint(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("module root: %v", err)
	}
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(root)
		if err != nil {
			b.Fatalf("loader: %v", err)
		}
		pkgs, err := l.Load("./...")
		if err != nil {
			b.Fatalf("load: %v", err)
		}
		findings := 0
		for _, pkg := range pkgs {
			findings += len(Run(pkg, All()...))
		}
		if findings != 0 {
			b.Fatalf("tree has %d findings; sweep before benchmarking", findings)
		}
	}
}
