package lint

import (
	"go/ast"
	"go/token"
)

// This file is the lint framework's intraprocedural analysis engine: a
// lightweight control-flow graph over go/ast function bodies plus a generic
// forward-dataflow fixpoint. PR 2's analyzers were per-node AST walks; the
// invariants added since (pooled-scratch ownership, the deterministic/runtime
// obs class split, mutex-guarded captures) are *flow* properties — "on all
// paths", "never reaches" — that need path structure. The CFG stays
// deliberately small: basic blocks of statements in source order, edges for
// branches and loops, an Exit block that models function return (with
// deferred calls replayed into it), and nothing interprocedural.
//
// Shapes handled: if/else, for (all three clauses), range, switch (incl.
// fallthrough and tagless), type switch, select, labeled statements,
// break/continue (labeled and bare), goto, return, and defer. A call to
// panic terminates its path without reaching Exit: pooled scratch lost on a
// panicking path is not a leak worth flagging, and no result flows out of
// it. Statements the builder does not recognize are appended to the current
// block, so analyses degrade to straight-line conservatism rather than
// missing code.

// Block is one basic block: statements (and loop/branch header nodes) that
// execute in sequence, followed by edges to every possible successor.
type Block struct {
	// Index is the block's creation order, stable across runs.
	Index int
	// Nodes are the block's AST nodes in execution order: statements,
	// plus branch/loop conditions and case guards in the blocks that
	// evaluate them. Every node appears in exactly one block, so walking
	// each block's subtrees visits each expression once.
	Nodes []ast.Node
	// Succs are the possible successor blocks in a deterministic order
	// (then before else, case order, loop body before loop exit).
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit models function return. Every return statement and the body's
	// fallthrough end edge into it; deferred calls are replayed inside it
	// (innermost-last registration runs first, per Go's LIFO defer order).
	Exit *Block
	// Blocks lists every block in creation order, Entry first, Exit last.
	Blocks []*Block
}

// BuildCFG constructs the control-flow graph of a function body. It never
// fails: unrecognized statements land in the current block unchanged.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	exit := b.newBlock()
	b.cfg.Exit = exit
	if b.cur != nil {
		b.edge(b.cur, exit)
	}
	for _, ret := range b.returns {
		b.edge(ret, exit)
	}
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	// Deferred calls run on the way out, last registration first.
	for i := len(b.defers) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, b.defers[i])
	}
	return b.cfg
}

// Reachable returns the set of blocks reachable from Entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return seen
}

// preds returns the predecessor lists of every block.
func (g *CFG) preds() map[*Block][]*Block {
	p := map[*Block][]*Block{}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			p[s] = append(p[s], blk)
		}
	}
	return p
}

// Forward runs a forward dataflow analysis to fixpoint and returns each
// block's in-state. entry seeds the Entry block; unreachable blocks keep
// top. join folds a predecessor's out-state into a block's in-state (union
// for may-analyses, intersection for must-analyses); transfer folds one
// block's nodes over a state and must not mutate its argument's aliases
// observable by eq; eq decides convergence.
func Forward[S any](g *CFG, entry S, top S, join func(S, S) S, transfer func(*Block, S) S, eq func(S, S) bool) map[*Block]S {
	in := map[*Block]S{}
	for _, blk := range g.Blocks {
		in[blk] = top
	}
	in[g.Entry] = entry
	preds := g.preds()
	// Worklist seeded in block order; block indexes keep iteration
	// deterministic so analyses converge identically run to run.
	work := append([]*Block(nil), g.Blocks...)
	inWork := make([]bool, len(g.Blocks))
	for i := range inWork {
		inWork[i] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false
		state := in[blk]
		if blk != g.Entry {
			state = top
			first := true
			for _, p := range preds[blk] {
				out := transfer(p, in[p])
				if first {
					state = out
					first = false
				} else {
					state = join(state, out)
				}
			}
			if first {
				continue // unreachable: keep top, nothing to propagate
			}
		}
		if eq(state, in[blk]) && blk != g.Entry {
			continue
		}
		in[blk] = state
		for _, s := range blk.Succs {
			if !inWork[s.Index] {
				inWork[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// --- builder -------------------------------------------------------------

type pendingGoto struct {
	from  *Block
	label string
}

// loopFrame records where break and continue jump for one enclosing loop,
// switch, or select statement.
type loopFrame struct {
	label       string
	breakTarget *Block
	continueTgt *Block // nil for switch/select frames
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *Block // nil while control cannot reach the next statement
	frames  []loopFrame
	labels  map[string]*Block
	gotos   []pendingGoto
	returns []*Block
	defers  []ast.Node
	// pendingLabel holds a label whose statement is about to be built, so
	// `outer: for ...` attaches "outer" to the loop's frame.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// startBlock begins a new block with an edge from the current one (when
// live) and makes it current.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// add appends a node to the current block, reviving a dead position into a
// fresh unreachable block so the node is never lost to analyses.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, st := range list {
		b.stmt(st)
	}
}

// takeLabel consumes the pending label for the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is both a goto target and (for loops/switches) the
		// name break/continue statements refer to.
		target := b.startBlock()
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.returns = append(b.returns, b.cur)
		}
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s.Call)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		// then branch
		b.cur = b.newBlock()
		b.edge(condBlk, b.cur)
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		// else branch (or fallthrough to after)
		if s.Else != nil {
			b.cur = b.newBlock()
			b.edge(condBlk, b.cur)
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		// The header block carries only the condition — the part that
		// re-evaluates on the back edge. The ForStmt node itself must NOT
		// land in any block: its subtree contains the whole body, which
		// would double into the header for subtree-walking analyses.
		head := b.startBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, continueTgt: post})
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after) // condition can be false
		}
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		// s.X evaluates once before the loop; the header block stays empty
		// (the RangeStmt node would duplicate the body subtree) and only
		// anchors the back edge and the key/value rebind point.
		b.add(s.X)
		head := b.startBlock()
		after := b.newBlock()
		b.edge(head, after) // range can be empty or exhausted
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: after, continueTgt: head})
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(cc ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			c := cc.(*ast.CaseClause)
			var guards []ast.Node
			for _, e := range c.List {
				guards = append(guards, e)
			}
			return guards, c.Body, c.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, func(cc ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			c := cc.(*ast.CaseClause)
			var guards []ast.Node
			for _, e := range c.List {
				guards = append(guards, e)
			}
			return guards, c.Body, c.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.switchClauses(label, s.Body.List, func(cc ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			c := cc.(*ast.CommClause)
			var guards []ast.Node
			if c.Comm != nil {
				guards = append(guards, c.Comm)
			}
			return guards, c.Body, c.Comm == nil
		})

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// panic leaves the function without producing a result; the
			// path ends here rather than at Exit.
			b.cur = nil
		}

	default:
		// Assignments, declarations, sends, go statements, inc/dec, empty
		// statements: straight-line, no control flow.
		b.add(st)
	}
}

// switchClauses builds the shared switch/type-switch/select shape: a head
// that may branch to each clause, clauses that run to a common after block,
// and (for switch) fallthrough edges to the next clause's body.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, split func(ast.Stmt) ([]ast.Node, []ast.Stmt, bool)) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTarget: after})
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	bodyStmts := make([][]ast.Stmt, len(clauses))
	for i, cc := range clauses {
		guards, body, isDefault := split(cc)
		if isDefault {
			hasDefault = true
		}
		blk := b.newBlock()
		blk.Nodes = append(blk.Nodes, guards...)
		b.edge(head, blk)
		bodies[i] = blk
		bodyStmts[i] = body
	}
	for i := range clauses {
		b.cur = bodies[i]
		list := bodyStmts[i]
		fallsThrough := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				list = list[:n-1]
			}
		}
		b.stmtList(list)
		if b.cur != nil {
			if fallsThrough && i+1 < len(bodies) {
				b.edge(b.cur, bodies[i+1])
			} else {
				b.edge(b.cur, after)
			}
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// branch wires break/continue/goto edges. Fallthrough is consumed by
// switchClauses; one reaching here (malformed code) ends the path.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.add(s)
	if b.cur == nil {
		return
	}
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.edge(b.cur, f.breakTarget)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.continueTgt != nil && (label == "" || f.label == label) {
				b.edge(b.cur, f.continueTgt)
				break
			}
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
	}
	b.cur = nil
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
