package lint

import "testing"

const fixturePkg = "redi/internal/fixture"

func TestMapOrderFlagsUnsortedAppend(t *testing.T) {
	diags := runFixture(t, MapOrder, fixturePkg, map[string]string{
		"fix.go": `package fixture

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	})
	wantFindings(t, diags, 1, "append into out")
}

func TestMapOrderFlagsFloatAccumulation(t *testing.T) {
	diags := runFixture(t, MapOrder, fixturePkg, map[string]string{
		"fix.go": `package fixture

func total(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}
`,
	})
	wantFindings(t, diags, 1, "floating-point accumulation")
}

func TestMapOrderFlagsStringConcat(t *testing.T) {
	diags := runFixture(t, MapOrder, fixturePkg, map[string]string{
		"fix.go": `package fixture

func render(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	t := ""
	for k := range m {
		t = t + k
	}
	return s + t
}
`,
	})
	wantFindings(t, diags, 2, "string concatenation")
}

func TestMapOrderFlagsLastWriterWins(t *testing.T) {
	diags := runFixture(t, MapOrder, fixturePkg, map[string]string{
		"fix.go": `package fixture

func argmax(m map[string]float64) (string, float64) {
	best, bestV := "", 0.0
	for k, v := range m {
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best, bestV
}
`,
	})
	// The tuple update tie-breaks on iteration order: both assignments
	// flag.
	wantFindings(t, diags, 2, "last-writer-wins")
}

func TestMapOrderSuppressedByAllow(t *testing.T) {
	diags := runFixture(t, MapOrder, fixturePkg, map[string]string{
		"fix.go": `package fixture

func collect(m map[string]int) []string {
	var out []string
	//redi:allow maporder order handed to caller who sorts
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	})
	// The annotation sits above the range line; the finding is on the
	// append line, so suppression must be placed there instead.
	wantFindings(t, diags, 1, "append into out")

	diags = runFixture(t, MapOrder, fixturePkg, map[string]string{
		"fix.go": `package fixture

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //redi:allow maporder order handed to caller who sorts
	}
	return out
}
`,
	})
	wantFindings(t, diags, 0, "")
}

func TestMapOrderCleanPatterns(t *testing.T) {
	diags := runFixture(t, MapOrder, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "sort"

// Sanctioned shapes: collect-then-sort, per-key map writes, int counters,
// and single guarded max/min tracking.
func clean(m map[string]float64) (int, float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below
	}
	sort.Strings(keys)

	inverted := map[string]float64{}
	n := 0
	for k, v := range m {
		inverted[k] = -v // distinct keys: per-iteration disjoint
		n++
	}

	best := 0.0
	for _, v := range m {
		if v > best {
			best = v // max is order-free
		}
	}
	return n, best
}
`,
	})
	wantFindings(t, diags, 0, "")
}

// The dense group-ID substrate writes per-group aggregates into gid-indexed
// slices. When the gid is derived from the map-range key, the writes are
// per-iteration disjoint (distinct keys -> distinct gids), so the
// key-indexed-write exemption must keep them clean — this is the
// debias.PostStratify / needVec idiom after the gid refactor.
func TestMapOrderAllowsGIDIndexedSliceWrites(t *testing.T) {
	diags := runFixture(t, MapOrder, fixturePkg, map[string]string{
		"fix.go": `package fixture

func factors(population map[string]float64, gid map[string]int) []float64 {
	out := make([]float64, len(gid))
	for k, share := range population {
		out[gid[k]] = share // gid lookup mentions the key: disjoint writes
	}
	return out
}
`,
	})
	wantFindings(t, diags, 0, "")

	// Control: the same write indexed by something unrelated to the key
	// is last-writer-wins and must still flag.
	diags = runFixture(t, MapOrder, fixturePkg, map[string]string{
		"fix.go": `package fixture

func clobber(population map[string]float64) []float64 {
	out := make([]float64, 1)
	for _, share := range population {
		out[0] = share
	}
	return out
}
`,
	})
	wantFindings(t, diags, 1, "last-writer-wins")
}

func TestMapOrderSkipsTestFilesAndForeignPackages(t *testing.T) {
	src := map[string]string{
		"fix_test.go": `package fixture

func collectForTest(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	}
	wantFindings(t, runFixture(t, MapOrder, fixturePkg, src), 0, "")

	// Same code in a non-algorithm package (cmd/) is out of scope.
	cmdSrc := map[string]string{
		"main.go": `package main

func collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func main() {}
`,
	}
	wantFindings(t, runFixture(t, MapOrder, "redi/cmd/fixture", cmdSrc), 0, "")
}
