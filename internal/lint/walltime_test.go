package lint

import "testing"

func TestWallTimeFlagsClockReads(t *testing.T) {
	diags := runFixture(t, WallTime, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "time"

func stamp() (time.Time, time.Duration) {
	start := time.Now()
	return start, time.Since(start)
}
`,
	})
	wantFindings(t, diags, 2, "wall-clock")
}

func TestWallTimeResolvesRenamedImport(t *testing.T) {
	diags := runFixture(t, WallTime, fixturePkg, map[string]string{
		"fix.go": `package fixture

import clock "time"

func stamp() clock.Time { return clock.Now() }
`,
	})
	wantFindings(t, diags, 1, "time.Now")
}

func TestWallTimeSuppressedByAllow(t *testing.T) {
	diags := runFixture(t, WallTime, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "time"

//redi:allow walltime injectable clock seam, overridden in tests
var now = time.Now

func stamp() time.Time { return now() }
`,
	})
	wantFindings(t, diags, 0, "")
}

func TestWallTimeExemptPaths(t *testing.T) {
	src := map[string]string{
		"fix.go": `package fixture

import "time"

func stamp() time.Time { return time.Now() }
`,
	}
	// cmd/ binaries may time themselves.
	wantFindings(t, runFixture(t, WallTime, "redi/cmd/fixture", src), 0, "")
	// internal/experiments is the sanctioned experiment-timing allowlist.
	wantFindings(t, runFixture(t, WallTime, "redi/internal/experiments", src), 0, "")
}

// TestWallTimeObsSeamIsAnnotationScoped pins the rule for internal/obs,
// which hosts the module's single clock seam: the annotated seam
// declaration passes, but obs has no path-level exemption, so any other
// wall-clock read in the package still fires.
func TestWallTimeObsSeamIsAnnotationScoped(t *testing.T) {
	// The seam as obs declares it: one annotated var, everything else
	// reads the clock through it.
	wantFindings(t, runFixture(t, WallTime, "redi/internal/obs", map[string]string{
		"fix.go": `package obs

import "time"

var now = time.Now //redi:allow walltime single injectable clock seam

func Now() time.Time { return now() }
`,
	}), 0, "")
	// A bare time.Now elsewhere in obs is NOT sanctioned.
	wantFindings(t, runFixture(t, WallTime, "redi/internal/obs", map[string]string{
		"fix.go": `package obs

import "time"

func sneakyStamp() time.Time { return time.Now() }
`,
	}), 1, "time.Now")
}

func TestWallTimeCleanFile(t *testing.T) {
	diags := runFixture(t, WallTime, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "time"

// Taking a duration as input (rather than measuring one) is fine.
func within(elapsed, budget time.Duration) bool { return elapsed < budget }
`,
	})
	wantFindings(t, diags, 0, "")
}

// TestWallTimeFlagsPagerTiming pins that I/O-adjacent code gets no special
// treatment: timing a read-at page fetch with the wall clock still fires —
// page-fetch durations belong in obs spans behind the injectable seam, not
// inline in the pager.
func TestWallTimeFlagsPagerTiming(t *testing.T) {
	diags := runFixture(t, WallTime, fixturePkg, map[string]string{
		"fix.go": `package fixture

import (
	"os"
	"time"
)

func fetch(f *os.File, buf []byte, off int64) (time.Duration, error) {
	start := time.Now()
	_, err := f.ReadAt(buf, off)
	return time.Since(start), err
}
`,
	})
	wantFindings(t, diags, 2, "wall-clock")
}
