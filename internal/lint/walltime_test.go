package lint

import "testing"

func TestWallTimeFlagsClockReads(t *testing.T) {
	diags := runFixture(t, WallTime, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "time"

func stamp() (time.Time, time.Duration) {
	start := time.Now()
	return start, time.Since(start)
}
`,
	})
	wantFindings(t, diags, 2, "wall-clock")
}

func TestWallTimeResolvesRenamedImport(t *testing.T) {
	diags := runFixture(t, WallTime, fixturePkg, map[string]string{
		"fix.go": `package fixture

import clock "time"

func stamp() clock.Time { return clock.Now() }
`,
	})
	wantFindings(t, diags, 1, "time.Now")
}

func TestWallTimeSuppressedByAllow(t *testing.T) {
	diags := runFixture(t, WallTime, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "time"

//redi:allow walltime injectable clock seam, overridden in tests
var now = time.Now

func stamp() time.Time { return now() }
`,
	})
	wantFindings(t, diags, 0, "")
}

func TestWallTimeExemptPaths(t *testing.T) {
	src := map[string]string{
		"fix.go": `package fixture

import "time"

func stamp() time.Time { return time.Now() }
`,
	}
	// cmd/ binaries may time themselves.
	wantFindings(t, runFixture(t, WallTime, "redi/cmd/fixture", src), 0, "")
	// internal/experiments is the sanctioned experiment-timing allowlist.
	wantFindings(t, runFixture(t, WallTime, "redi/internal/experiments", src), 0, "")
}

func TestWallTimeCleanFile(t *testing.T) {
	diags := runFixture(t, WallTime, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "time"

// Taking a duration as input (rather than measuring one) is fine.
func within(elapsed, budget time.Duration) bool { return elapsed < budget }
`,
	})
	wantFindings(t, diags, 0, "")
}
