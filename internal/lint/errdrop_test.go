package lint

import "testing"

func TestErrDropTruePositive(t *testing.T) {
	diags := runFixture(t, ErrDrop, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "strconv"

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

func drop(w interface{ Write([]byte) (int, error) }) {
	fallible()             // dropped single error
	pair()                 // dropped (int, error)
	w.Write([]byte("x"))   // dropped method error
	_ = strconv.Itoa(1)    // no error result anywhere
}
`,
	})
	wantFindings(t, diags, 3, "discards its error result")
}

func TestErrDropSuppressed(t *testing.T) {
	diags := runFixture(t, ErrDrop, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

func fallible() error { return nil }

func drop() {
	//redi:allow errdrop best-effort cleanup, failure changes nothing downstream
	fallible()
}
`,
	})
	wantFindings(t, diags, 0, "")
}

func TestErrDropCleanShapes(t *testing.T) {
	diags := runFixture(t, ErrDrop, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

func fallible() error { return nil }

func pure() int { return 1 }

func clean() error {
	if err := fallible(); err != nil {
		return err
	}
	_ = fallible()
	pure()
	return fallible()
}
`,
	})
	wantFindings(t, diags, 0, "")
}

// TestErrDropInfallibleSinks pins the documented-contract exemption:
// strings.Builder/bytes.Buffer writes and fmt.Fprint* into them cannot
// fail, so dropping their error is not a finding — but the same fmt call
// into an arbitrary io.Writer is.
func TestErrDropInfallibleSinks(t *testing.T) {
	diags := runFixture(t, ErrDrop, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

func render(w io.Writer) string {
	var sb strings.Builder
	var buf bytes.Buffer
	sb.WriteString("a")
	sb.WriteByte('b')
	buf.WriteRune('c')
	fmt.Fprintf(&sb, "%d", 1)
	fmt.Fprintln(&buf, "x")
	fmt.Fprintf(w, "real writer can fail") // the one real finding
	return sb.String() + buf.String()
}
`,
	})
	wantFindings(t, diags, 1, "discards its error result")
}

// TestErrDropFileAndMmapPaths pins the rule on the out-of-core substrate's
// I/O idioms: a statement-level Close or Munmap that drops its error fires;
// the deferred forms colfile actually uses (errors routed via named
// returns, or deliberate //redi:allow on unmap-during-close) do not.
func TestErrDropFileAndMmapPaths(t *testing.T) {
	diags := runFixture(t, ErrDrop, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import (
	"os"
	"syscall"
)

func pager(path string, mapped []byte) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	f.Close()               // finding: error silently gone
	syscall.Munmap(mapped)  // finding: unmap failure invisible
	defer f.Close()         // deferred calls are out of scope by design
	//redi:allow errdrop unmap failure at close leaves only a dead mapping, nothing downstream reads it
	syscall.Munmap(mapped)
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}
`,
	})
	wantFindings(t, diags, 2, "discards its error result")
}
