package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statement-level calls in internal/ non-test files whose
// error result vanishes: `f()` where f returns an error is a silent failure
// path, invisible in audits and impossible to reproduce from output. The
// rule only fires on expression statements — assigning the error away with
// `_ = f()` is explicit (the author visibly chose to drop it), and deferred
// calls are deliberately out of scope (a deferred error has no local
// consumer; routing it anywhere is a design decision, not a lint fix).
//
// Calls whose error is impossible by documented contract are exempt:
// methods on strings.Builder and bytes.Buffer always return a nil error,
// and fmt.Fprint* only propagates its writer's error, so printing into one
// of those two types cannot fail either. Everything else that is genuinely
// uncheckable carries //redi:allow errdrop with the reason.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "statement-level calls must not silently discard error results; use _ = or //redi:allow errdrop <reason>",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	if !isInternalPkg(pass) {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if n := droppedErrorResults(pass, call); n > 0 && !isInfallibleCall(pass, call) {
				pass.Reportf(st.Pos(), "call discards its error result; handle it, assign it to _ explicitly, or //redi:allow errdrop with a reason")
			}
			return true
		})
	}
}

// isInfallibleCall reports whether the call's error result is nil by
// documented contract: strings.Builder/bytes.Buffer methods, or fmt.Fprint*
// whose destination's static type is one of those sinks.
func isInfallibleCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if t := exprType(pass, sel.X); isInfallibleSink(t) {
		return true
	}
	if isPkgCall(pass, call, "fmt") && strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
		return isInfallibleSink(exprType(pass, call.Args[0]))
	}
	return false
}

// isInfallibleSink reports whether t is strings.Builder or bytes.Buffer
// (possibly behind a pointer), the two stdlib writers that never error.
func isInfallibleSink(t types.Type) bool {
	return isNamedType(t, "strings", "Builder") || isNamedType(t, "bytes", "Buffer")
}

// droppedErrorResults counts error-typed results of the call.
func droppedErrorResults(pass *Pass, call *ast.CallExpr) int {
	t := exprType(pass, call)
	if t == nil {
		return 0
	}
	errType := types.Universe.Lookup("error").Type()
	count := 0
	switch r := t.(type) {
	case *types.Tuple:
		for i := 0; i < r.Len(); i++ {
			if types.Identical(r.At(i).Type(), errType) {
				count++
			}
		}
	default:
		if types.Identical(t, errType) {
			count++
		}
	}
	return count
}
