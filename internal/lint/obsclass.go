package lint

import (
	"go/ast"
	"go/types"
)

// ObsClass enforces the deterministic/runtime observability class split from
// PR 5 structurally: a value derived from the runtime class — obs.Now(),
// Gauge.Value(), Span.End(), or the Value() of a handle created by
// Registry.RuntimeCounter/RuntimeHistogram — must never flow into the
// arguments of a deterministic-class sink (Counter.Add / Histogram.Observe /
// ShardedCounter.Add on a handle created by Registry.Counter/Histogram).
// Deterministic counters are the Snapshot surface whose bytes must be
// bit-identical across runs and worker counts; one wall-clock-derived
// increment silently breaks that contract for every consumer.
//
// The analysis is intraprocedural and taint-style: handles are classified by
// their creation call inside the function (det: r.Counter/r.Histogram;
// runtime: r.RuntimeCounter/r.RuntimeHistogram), taint seeds at runtime-class
// reads and propagates through assignments to fixpoint, and sink arguments
// are checked for taint. Handles that arrive as parameters or live in struct
// fields are unclassified and therefore not sinks — a deliberate
// false-negative bias that keeps the rule quiet on code it cannot prove
// wrong. Taint does cross closure boundaries within one declaration, since
// closures share the enclosing scope.
var ObsClass = &Analyzer{
	Name: "obsclass",
	Doc:  "runtime-class observability values (obs.Now, gauges, runtime counters) must not flow into deterministic-class Counter.Add/Histogram.Observe",
	Run:  runObsClass,
}

func runObsClass(pass *Pass) {
	if !isInternalPkg(pass) {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkObsFlow(pass, fn.Body)
			}
			return true
		})
	}
}

// obsHandles classifies Counter/Histogram handles created in this body by
// the Registry method that made them.
type obsHandles struct {
	det     map[types.Object]bool // r.Counter / r.Histogram results
	runtime map[types.Object]bool // r.RuntimeCounter / r.RuntimeHistogram results
}

func checkObsFlow(pass *Pass, body *ast.BlockStmt) {
	h := classifyHandles(pass, body)
	tainted := taintFixpoint(pass, body, h)
	// Sink check: deterministic-handle Add/Observe whose argument carries
	// runtime taint.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, recv := obsMethod(pass, call)
		if sel == "" {
			return true
		}
		isSink := (sel == "Add" || sel == "Observe") &&
			(isObsType(pass, recv, "Counter") || isObsType(pass, recv, "Histogram") || isObsType(pass, recv, "ShardedCounter"))
		if !isSink {
			return true
		}
		base := baseIdent(call.Fun.(*ast.SelectorExpr).X)
		if base == nil || !h.det[identObj(pass, base)] {
			return true // unclassified or runtime handle: not a det sink
		}
		for _, arg := range call.Args {
			if exprRuntimeTainted(pass, arg, h, tainted) {
				pass.Reportf(arg.Pos(), "runtime-class observability value flows into deterministic counter/histogram %s.%s; deterministic snapshots must stay bit-identical across runs — record it on a Runtime* handle instead", base.Name, sel)
			}
		}
		return true
	})
}

// classifyHandles finds `c := r.Counter(...)`-style bindings and sorts them
// into deterministic vs runtime class by the Registry method name.
func classifyHandles(pass *Pass, body *ast.BlockStmt) *obsHandles {
	h := &obsHandles{det: map[types.Object]bool{}, runtime: map[types.Object]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, recv := obsMethod(pass, call)
			if !isObsType(pass, recv, "Registry") {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := identObj(pass, id)
			if obj == nil {
				continue
			}
			switch sel {
			case "Counter", "Histogram":
				h.det[obj] = true
			case "RuntimeCounter", "RuntimeHistogram":
				h.runtime[obj] = true
			}
		}
		return true
	})
	return h
}

// taintFixpoint propagates runtime taint through assignments: any LHS whose
// RHS carries taint becomes tainted, to fixpoint.
func taintFixpoint(pass *Pass, body *ast.BlockStmt, h *obsHandles) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) || !exprRuntimeTainted(pass, rhs, h, tainted) {
					continue
				}
				base := baseIdent(as.Lhs[i])
				if base == nil || base.Name == "_" {
					continue
				}
				obj := identObj(pass, base)
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// exprRuntimeTainted reports whether evaluating expr can observe a
// runtime-class value: a tainted identifier, obs.Now(), Gauge.Value(),
// Span.End(), or Value() on a runtime-classified handle.
func exprRuntimeTainted(pass *Pass, expr ast.Expr, h *obsHandles, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			if tainted[identObj(pass, e)] {
				found = true
			}
		case *ast.CallExpr:
			if isRuntimeSourceCall(pass, e, h) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isRuntimeSourceCall reports whether call reads the runtime observability
// class.
func isRuntimeSourceCall(pass *Pass, call *ast.CallExpr, h *obsHandles) bool {
	// obs.Now() — the module's one wall-clock seam.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkg, ok := sel.X.(*ast.Ident); ok && sel.Sel.Name == "Now" {
			if obj := identObj(pass, pkg); obj != nil {
				if pn, ok := obj.(*types.PkgName); ok && pn.Imported().Path() == pass.Module+"/internal/obs" {
					return true
				}
			}
		}
	}
	sel, recv := obsMethod(pass, call)
	switch {
	case sel == "Value" && isObsType(pass, recv, "Gauge"):
		return true
	case sel == "End" && isObsType(pass, recv, "Span"):
		return true
	case sel == "Duration" && isTraceType(pass, recv, "Span"):
		// A trace span's wall-clock duration is runtime-class by
		// construction; it may never feed a deterministic sink.
		return true
	case sel == "Quantile" && isObsType(pass, recv, "Histogram"):
		// Quantile estimates are interpolated float reads meant for latency
		// reporting — runtime-class by definition, whatever the handle's
		// class, so they may never feed a deterministic sink.
		return true
	case sel == "Value" && (isObsType(pass, recv, "Counter") || isObsType(pass, recv, "Histogram")):
		// Runtime-classified handle reads are tainted; det and unclassified
		// reads are not.
		if s, ok := call.Fun.(*ast.SelectorExpr); ok {
			if base := baseIdent(s.X); base != nil {
				return h.runtime[identObj(pass, base)]
			}
		}
	}
	return false
}

// obsMethod returns the selector name and receiver type if call is a method
// call; otherwise ("", nil).
func obsMethod(pass *Pass, call *ast.CallExpr) (string, types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	return sel.Sel.Name, exprType(pass, sel.X)
}

// isObsType reports whether t is <module>/internal/obs.<name>.
func isObsType(pass *Pass, t types.Type, name string) bool {
	return isModuleType(pass, t, "/internal/obs", name)
}
