package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment: //redi:allow <rule> <reason>.
const allowPrefix = "redi:allow"

// collectAllows scans every comment of every file for //redi:allow
// annotations. A well-formed annotation (rule name plus a non-empty reason)
// suppresses diagnostics of that rule on the comment's own line and on the
// line immediately below it, covering both trailing and standalone styles:
//
//	m := rand.Int() //redi:allow randsource seeding the fixture generator
//
//	//redi:allow maporder result is fully sorted below
//	for k, v := range m { ... }
//
// A malformed annotation (no rule, or no reason) suppresses nothing and is
// returned as a diagnostic itself, so silent escape hatches cannot creep in.
func collectAllows(fset *token.FileSet, files []*ast.File) (map[string]map[int][]string, []Diagnostic) {
	allow := map[string]map[int][]string{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "//redi:allow needs a rule name and a reason: //redi:allow <rule> <why this site is exempt>",
					})
					continue
				}
				rule := fields[0]
				byLine := allow[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					allow[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], rule)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], rule)
			}
		}
	}
	return allow, malformed
}
