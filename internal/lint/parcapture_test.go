package lint

import "testing"

func TestParCaptureFlagsCapturedWrite(t *testing.T) {
	diags := runFixture(t, ParCapture, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "redi/internal/parallel"

func sum(xs []float64) float64 {
	total := 0.0
	parallel.For(parallel.Auto, len(xs), func(i int) {
		total += xs[i]
	})
	return total
}
`,
	})
	wantFindings(t, diags, 1, "writes captured total")
}

func TestParCaptureFlagsSharedIndexWrite(t *testing.T) {
	diags := runFixture(t, ParCapture, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "redi/internal/parallel"

func tally(xs []int) []int {
	counts := make([]int, 2)
	parallel.For(parallel.Auto, len(xs), func(i int) {
		counts[xs[i]%2]++ // index derives from captured xs, not only from i
	})
	return counts
}
`,
	})
	wantFindings(t, diags, 1, "writes captured")
}

func TestParCaptureSuppressedByAllow(t *testing.T) {
	diags := runFixture(t, ParCapture, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "redi/internal/parallel"

func last(xs []int) int {
	var v int
	parallel.For(0, len(xs), func(i int) {
		v = xs[i] //redi:allow parcapture serial call site, workers pinned to 0
	})
	return v
}
`,
	})
	wantFindings(t, diags, 0, "")
}

// TestParCaptureBranchOnlyLock pins the CFG must-analysis: a Lock taken on
// just one branch does not guard a write after the merge point (the old
// any-lock-earlier-in-the-source check accepted this), while a lock that
// dominates the write does.
func TestParCaptureBranchOnlyLock(t *testing.T) {
	diags := runFixture(t, ParCapture, fixturePkg, map[string]string{
		"fix.go": `package fixture

import (
	"sync"

	"redi/internal/parallel"
)

func branchLock(xs []float64) float64 {
	var mu sync.Mutex
	total := 0.0
	parallel.For(parallel.Auto, len(xs), func(i int) {
		if i%2 == 0 {
			mu.Lock()
			mu.Unlock()
		}
		total += xs[i] // NOT guarded: the odd-i path never locked
	})
	return total
}

func dominatingLock(xs []float64) float64 {
	var mu sync.Mutex
	total := 0.0
	parallel.For(parallel.Auto, len(xs), func(i int) {
		mu.Lock()
		if i%2 == 0 {
			total += xs[i]
		} else {
			total -= xs[i]
		}
		mu.Unlock()
	})
	return total
}
`,
	})
	wantFindings(t, diags, 1, "writes captured total")
}

func TestParCaptureCleanPatterns(t *testing.T) {
	diags := runFixture(t, ParCapture, fixturePkg, map[string]string{
		"fix.go": `package fixture

import (
	"sync"

	"redi/internal/parallel"
)

// Index-disjoint element writes keyed by the closure's own index are the
// sanctioned result channel.
func double(xs []float64) []float64 {
	out := make([]float64, len(xs))
	parallel.For(parallel.Auto, len(xs), func(i int) {
		out[i] = xs[i] * 2
	})
	return out
}

// Mutex-guarded writes are the sanctioned shared-state escape hatch.
func guarded(xs []float64) float64 {
	var mu sync.Mutex
	total := 0.0
	parallel.For(parallel.Auto, len(xs), func(i int) {
		mu.Lock()
		defer mu.Unlock()
		total += xs[i]
	})
	return total
}

// Per-shard accumulators in MapChunks are closure-local: nothing captured
// is written.
func shardSum(xs []float64) []float64 {
	return parallel.MapChunks(parallel.Auto, len(xs), func(shard, lo, hi int) float64 {
		local := 0.0
		for i := lo; i < hi; i++ {
			local += xs[i]
		}
		return local
	})
}
`,
	})
	wantFindings(t, diags, 0, "")
}
