package lint

import "testing"

func TestRandSourceFlagsImport(t *testing.T) {
	diags := runFixture(t, RandSource, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "math/rand"

func roll() int { return rand.Int() }
`,
	})
	wantFindings(t, diags, 1, "math/rand")

	diags = runFixture(t, RandSource, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "math/rand/v2"

func roll() int { return rand.Int() }
`,
	})
	wantFindings(t, diags, 1, "math/rand/v2")
}

func TestRandSourceSuppressedByAllow(t *testing.T) {
	diags := runFixture(t, RandSource, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "math/rand" //redi:allow randsource benchmarking against the stdlib generator

func roll() int { return rand.Int() }
`,
	})
	wantFindings(t, diags, 0, "")
}

func TestRandSourceCleanAndExemptPackages(t *testing.T) {
	diags := runFixture(t, RandSource, fixturePkg, map[string]string{
		"fix.go": `package fixture

import "redi/internal/rng"

func roll(r *rng.RNG) float64 { return r.Float64() }
`,
	})
	wantFindings(t, diags, 0, "")

	// internal/rng itself is the sanctioned home of math/rand.
	diags = runFixture(t, RandSource, "redi/internal/rng", map[string]string{
		"fix.go": `package rng

import "math/rand"

var _ = rand.Int
`,
	})
	wantFindings(t, diags, 0, "")
}
