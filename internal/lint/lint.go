// Package lint is REDI's in-tree static-analysis framework: a small
// go/analysis-style harness, built purely on the standard library's
// go/parser + go/ast + go/types, that mechanizes the determinism contract
// of internal/parallel (see DESIGN.md "Determinism lint").
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics at file:line:column positions. Any diagnostic can be
// suppressed at its source line with an explicit, justified annotation:
//
//	//redi:allow <rule> <reason>
//
// placed either on the offending line or on the line directly above it.
// The reason is mandatory — a bare "//redi:allow maporder" does not
// suppress anything and is itself reported, so every escape hatch in the
// tree documents why the rule does not apply.
//
// The four shipped analyzers (maporder, randsource, walltime, parcapture)
// encode the PR-1 contract: parallel output bit-identical to serial,
// seeded RNG only, stable merge order, no wall-clock reads on algorithm
// paths. cmd/redilint is the driver that loads ./... and exits non-zero
// on any finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:column reporting.
type Diagnostic struct {
	// Analyzer is the rule name (usable in //redi:allow annotations).
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static-analysis rule.
type Analyzer struct {
	// Name identifies the rule in diagnostics and //redi:allow comments.
	Name string
	// Doc is a one-line description of what the rule enforces.
	Doc string
	// Run inspects the package held by the pass and reports findings via
	// pass.Reportf.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Fset positions every file of the package.
	Fset *token.FileSet
	// Module is the module path ("redi"); analyzers use it to scope rules
	// to module-local package subtrees such as <module>/internal/.
	Module string
	// Path is the package's import path. External test packages carry a
	// "_test" suffix on the last element.
	Path string
	// Files are the package's parsed files, in load order.
	Files []*ast.File
	// Pkg is the type-checked package (possibly incomplete if the source
	// had type errors; analyzers must tolerate nil type info).
	Pkg *types.Package
	// Info holds the type-checker's recorded facts for Files.
	Info *types.Info

	allow map[string]map[int][]string // filename -> line -> allowed rules
	out   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an in-scope //redi:allow
// annotation for this analyzer suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, rule := range p.allow[position.Filename][position.Line] {
		if rule == p.Analyzer.Name {
			return
		}
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ImportName returns the name under which the file imports path ("" if it
// does not): the explicit local name if renamed, otherwise the path's last
// element.
func ImportName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// pkgNamePath resolves an identifier used as a package qualifier to the
// imported package's path, or "" if id is not a package name. It prefers
// type-checker facts and falls back to matching the file's import table,
// so analyzers stay useful on packages with type errors.
func (p *Pass) pkgNamePath(file *ast.File, id *ast.Ident) string {
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return "" // resolved to a non-package object (shadowed)
		}
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if ImportName(file, path) == id.Name {
			return path
		}
	}
	return ""
}

// All returns the full determinism-contract rule set in stable order: the
// four syntactic rules from PR 2 plus the four CFG/dataflow rules.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, RandSource, WallTime, ParCapture, PoolCheck, ObsClass, TraceClass, HotAlloc, ErrDrop}
}

// Run executes each analyzer over pkg and returns the surviving
// diagnostics sorted by position then rule name.
func Run(pkg *Package, analyzers ...*Analyzer) []Diagnostic {
	var out []Diagnostic
	allow, malformed := collectAllows(pkg.Fset, pkg.Files)
	out = append(out, malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Module:   pkg.Module,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			allow:    allow,
			out:      &out,
		}
		a.Run(pass)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].Pos.Filename != ds[b].Pos.Filename {
			return ds[a].Pos.Filename < ds[b].Pos.Filename
		}
		if ds[a].Pos.Line != ds[b].Pos.Line {
			return ds[a].Pos.Line < ds[b].Pos.Line
		}
		if ds[a].Pos.Column != ds[b].Pos.Column {
			return ds[a].Pos.Column < ds[b].Pos.Column
		}
		return ds[a].Analyzer < ds[b].Analyzer
	})
}
