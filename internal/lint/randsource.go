package lint

import (
	"strings"
)

// RandSource flags math/rand (and math/rand/v2) imports anywhere outside
// <module>/internal/rng. The determinism contract requires every random
// draw to come from a seeded, shard-splittable stream (rng.New,
// rng.Split); a stray math/rand import is either an unseeded global
// source or a second seeding discipline drifting from the sanctioned one.
var RandSource = &Analyzer{
	Name: "randsource",
	Doc:  "math/rand may only be imported by internal/rng; use rng.New/rng.Split elsewhere",
	Run:  runRandSource,
}

func runRandSource(pass *Pass) {
	rngPath := pass.Module + "/internal/rng"
	if pass.Path == rngPath || pass.Path == rngPath+"_test" {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s outside internal/rng bypasses the seeded-RNG discipline; draw from rng.New or rng.Split instead", path)
			}
		}
	}
}
