package lint

import (
	"strings"
	"testing"
)

// newTestLoader builds a loader rooted at this module, so fixtures can
// import real module packages (redi/internal/parallel) and the standard
// library.
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	return l
}

// runFixture type-checks in-memory fixture files as package pkgPath and
// runs one analyzer over them.
func runFixture(t *testing.T, a *Analyzer, pkgPath string, files map[string]string) []Diagnostic {
	t.Helper()
	l := newTestLoader(t)
	pkg, err := l.PackageFromSource(pkgPath, files)
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return Run(pkg, a)
}

// wantFindings asserts the number of diagnostics and that each message
// contains the given fragment.
func wantFindings(t *testing.T, diags []Diagnostic, n int, fragment string) {
	t.Helper()
	if len(diags) != n {
		t.Fatalf("got %d findings, want %d: %v", len(diags), n, diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, fragment) {
			t.Fatalf("finding %q does not mention %q", d.Message, fragment)
		}
	}
}

func TestMalformedAllowIsReported(t *testing.T) {
	diags := runFixture(t, RandSource, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "math/rand" //redi:allow randsource

var _ = rand.Int
`,
	})
	// The bare annotation suppresses nothing and is itself flagged, so
	// both the malformed-allow and the randsource finding surface.
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed allow + randsource): %v", len(diags), diags)
	}
	if diags[0].Analyzer != "allow" && diags[1].Analyzer != "allow" {
		t.Fatalf("no malformed-allow diagnostic in %v", diags)
	}
}

// TestLoadModule smoke-checks the driver path: the whole module loads and
// every analyzer runs without panicking. It intentionally does not assert
// zero findings — the tree's cleanliness is CI's job via cmd/redilint.
func TestLoadModule(t *testing.T) {
	l := newTestLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("only %d packages loaded from ./...", len(pkgs))
	}
	for _, pkg := range pkgs {
		Run(pkg, All()...)
	}
}
