package lint

import "testing"

func TestObsClassTaintReachesDetSink(t *testing.T) {
	diags := runFixture(t, ObsClass, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/obs"

func direct(r *obs.Registry) {
	c := r.Counter("rows")
	g := r.Gauge("load")
	c.Add(int64(g.Value())) // runtime gauge into det counter
}

func transitive(r *obs.Registry) {
	h := r.Histogram("lat", obs.ExpBounds(1, 8))
	start := obs.Now()
	elapsed := obs.Now().Sub(start).Nanoseconds()
	h.Observe(elapsed) // wall-clock duration into det histogram
}

func runtimeCounterRead(r *obs.Registry) {
	rc := r.RuntimeCounter("dispatches")
	c := r.Counter("work")
	c.Add(rc.Value()) // runtime counter value into det counter
}
`,
	})
	wantFindings(t, diags, 3, "runtime-class observability value flows into deterministic")
}

// Quantile estimates are runtime-class regardless of which histogram they
// are read from: interpolated floats may never feed the deterministic
// snapshot surface.
func TestObsClassQuantileIsRuntime(t *testing.T) {
	diags := runFixture(t, ObsClass, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/obs"

func fromRuntimeHist(r *obs.Registry) {
	lat := r.RuntimeHistogram("lat", obs.ExpBounds(1, 8))
	c := r.Counter("slow_requests")
	c.Add(int64(lat.Quantile(0.99))) // latency quantile into det counter
}

func fromDetHist(r *obs.Registry) {
	h := r.Histogram("sizes", obs.ExpBounds(1, 8))
	c := r.Counter("median_size")
	c.Add(int64(h.Quantile(0.5))) // even det-handle quantiles are estimates
}

func transitiveQuantile(r *obs.Registry) {
	lat := r.RuntimeHistogram("lat", obs.ExpBounds(1, 8))
	p99 := lat.Quantile(0.99)
	h := r.Histogram("work", obs.ExpBounds(1, 8))
	h.Observe(int64(p99)) // via a local
}
`,
	})
	wantFindings(t, diags, 3, "runtime-class observability value flows into deterministic")
}

func TestObsClassSuppressed(t *testing.T) {
	diags := runFixture(t, ObsClass, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/obs"

func direct(r *obs.Registry) {
	c := r.Counter("rows")
	g := r.Gauge("load")
	//redi:allow obsclass test-only fixture exercising the suppression path
	c.Add(int64(g.Value()))
}
`,
	})
	wantFindings(t, diags, 0, "")
}

func TestObsClassCleanShapes(t *testing.T) {
	diags := runFixture(t, ObsClass, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/obs"

// Deterministic data into deterministic counters: fine.
func det(r *obs.Registry, rows []int) {
	c := r.Counter("rows")
	c.Add(int64(len(rows)))
	c.Inc()
}

// Runtime values into runtime-class handles: that is what they are for.
func runtime(r *obs.Registry) {
	rc := r.RuntimeCounter("ticks")
	rh := r.RuntimeHistogram("lat", obs.ExpBounds(1, 8))
	start := obs.Now()
	rc.Add(1)
	rh.Observe(obs.Now().Sub(start).Nanoseconds())
	g := r.Gauge("load")
	g.Set(g.Value() + 1)
}

// Reading a deterministic counter back is not taint.
func readback(r *obs.Registry) {
	c := r.Counter("a")
	d := r.Counter("b")
	d.Add(c.Value())
}
`,
	})
	wantFindings(t, diags, 0, "")
}
