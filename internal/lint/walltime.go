package lint

import (
	"go/ast"
	"strings"
)

// WallTime flags time.Now and time.Since on algorithm paths. Wall-clock
// reads make output depend on when and how fast the code ran — the exact
// dependence the parallel layer's bit-identical contract forbids. The
// sanctioned homes for timing are the cmd/ binaries and the
// experiment-timing allowlist (internal/experiments reports wall time per
// EXPERIMENTS.md); everything else should take durations as inputs or go
// through an injectable clock seam.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "time.Now/time.Since only in cmd/ and the experiment-timing allowlist",
	Run:  runWallTime,
}

// wallTimeAllowed lists the packages sanctioned to read the wall clock,
// relative to the module path. cmd/... is allowed wholesale.
//
// internal/obs is deliberately NOT on this list even though it hosts the
// module's one injectable clock seam: the seam is sanctioned by its
// //redi:allow annotation alone, scoped to that single declaration, so a
// second bare time.Now creeping into obs still fires. Path entries here
// exempt a whole package; the annotation exempts one line.
var wallTimeAllowed = []string{
	"/internal/experiments",
}

func runWallTime(pass *Pass) {
	if strings.HasPrefix(pass.Path, pass.Module+"/cmd/") {
		return
	}
	for _, suffix := range wallTimeAllowed {
		allowed := pass.Module + suffix
		if pass.Path == allowed || pass.Path == allowed+"_test" {
			return
		}
	}
	for _, file := range pass.Files {
		if ImportName(file, "time") == "" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Now" && sel.Sel.Name != "Since") {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || pass.pkgNamePath(file, id) != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s outside cmd/ and the experiment-timing allowlist makes output depend on wall-clock; inject a clock or take durations as input", sel.Sel.Name)
			return true
		})
	}
}
