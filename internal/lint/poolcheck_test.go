package lint

import "testing"

// --- true positives -------------------------------------------------------

func TestPoolCheckMissingPutOnPath(t *testing.T) {
	diags := runFixture(t, PoolCheck, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/bitmap"

func leaky(p *bitmap.Pool, c bool) {
	b := p.Get()
	b.Set(1)
	if c {
		return // leaks b
	}
	p.Put(b)
}
`,
	})
	wantFindings(t, diags, 1, "not returned to the pool on every path")
}

func TestPoolCheckUseAfterPut(t *testing.T) {
	diags := runFixture(t, PoolCheck, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/bitmap"

func stale(p *bitmap.Pool) {
	b := p.Get()
	p.Put(b)
	b.Set(1)
}
`,
	})
	wantFindings(t, diags, 1, "used after being returned to the pool")
}

func TestPoolCheckDoublePut(t *testing.T) {
	diags := runFixture(t, PoolCheck, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/bitmap"

func twice(p *bitmap.Pool) {
	b := p.Get()
	p.Put(b)
	p.Put(b)
}
`,
	})
	wantFindings(t, diags, 1, "returned to the pool twice")
}

func TestPoolCheckEscapeByReturn(t *testing.T) {
	diags := runFixture(t, PoolCheck, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/bitmap"

func escape(p *bitmap.Pool) bitmap.Bitmap {
	b := p.Get()
	return b
}
`,
	})
	wantFindings(t, diags, 1, "escapes the function (returned)")
}

func TestPoolCheckEscapeThroughLocalStruct(t *testing.T) {
	// The coverage rowSet idiom: storing the handle into a local struct and
	// returning the struct is still an escape — alias tracking follows the
	// handle through the container.
	diags := runFixture(t, PoolCheck, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/bitmap"

type rowSet struct {
	a     bitmap.Bitmap
	owned bool
}

func childSet(p *bitmap.Pool) rowSet {
	dst := p.Get()
	rs := rowSet{a: dst, owned: true}
	return rs
}
`,
	})
	wantFindings(t, diags, 1, "escapes the function (returned)")
}

func TestPoolCheckEscapeByClosureCapture(t *testing.T) {
	diags := runFixture(t, PoolCheck, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/bitmap"

var sink func()

func capture(p *bitmap.Pool) {
	b := p.Get()
	sink = func() { b.Set(1) }
	p.Put(b)
}
`,
	})
	wantFindings(t, diags, 1, "captured by a closure")
}

func TestPoolCheckInlineGet(t *testing.T) {
	diags := runFixture(t, PoolCheck, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/bitmap"

func inline(p *bitmap.Pool, a, b bitmap.Bitmap) int {
	return bitmap.And(p.Get(), a, b)
}
`,
	})
	wantFindings(t, diags, 1, "used inline")
}

// --- suppressed -----------------------------------------------------------

func TestPoolCheckSuppressed(t *testing.T) {
	diags := runFixture(t, PoolCheck, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/bitmap"

// Deliberate ownership transfer, caller releases via releaseSet.
func handoff(p *bitmap.Pool) bitmap.Bitmap {
	b := p.Get()
	//redi:allow poolcheck ownership transfers to the caller, released by releaseSet
	return b
}
`,
	})
	wantFindings(t, diags, 0, "")
}

// --- clean ----------------------------------------------------------------

func TestPoolCheckCleanShapes(t *testing.T) {
	diags := runFixture(t, PoolCheck, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "redi/internal/bitmap"

// Straight-line Get/use/Put.
func straight(p *bitmap.Pool, a, c bitmap.Bitmap) int {
	b := p.Get()
	n := bitmap.And(b, a, c)
	p.Put(b)
	return n
}

// Deferred Put covers every return, including the early one.
func deferred(p *bitmap.Pool, cond bool) int {
	b := p.Get()
	defer p.Put(b)
	if cond {
		return 0
	}
	b.Set(2)
	return b.Count()
}

// Put on each branch independently.
func branches(p *bitmap.Pool, cond bool) int {
	b := p.Get()
	n := 0
	if cond {
		n = b.Count()
		p.Put(b)
		return n
	}
	p.Put(b)
	return n
}

// Get/Put fully inside a loop body is balanced per iteration.
func looped(p *bitmap.Pool, rounds int) {
	for i := 0; i < rounds; i++ {
		b := p.Get()
		b.Set(i)
		p.Put(b)
	}
}

// Reassigning the variable to non-pooled memory after Put ends tracking:
// the later use touches the fresh bitmap, not the pooled one.
func reused(p *bitmap.Pool) {
	b := p.Get()
	p.Put(b)
	b = bitmap.New(64)
	b.Set(1)
}
`,
	})
	wantFindings(t, diags, 0, "")
}
