package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// buildTestCFG parses src (a file body containing func f), finds f, and
// builds its CFG.
func buildTestCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_fixture.go", "package p\n\nfunc mark(string) {}\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "f" {
			return BuildCFG(fn.Body)
		}
	}
	t.Fatal("no func f in fixture")
	return nil
}

// reachableMarks returns the sorted set of mark("...") literals appearing in
// blocks reachable from entry — the oracle the shape tests compare against.
func reachableMarks(g *CFG) []string {
	seen := map[string]bool{}
	reach := g.Reachable()
	for blk := range reach {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok {
						seen[strings.Trim(lit.Value, `"`)] = true
					}
				}
				return true
			})
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func wantMarks(t *testing.T, g *CFG, want ...string) {
	t.Helper()
	got := reachableMarks(g)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("reachable marks = %v, want %v", got, want)
	}
}

func TestCFGIfShapes(t *testing.T) {
	g := buildTestCFG(t, `
func f(c bool) {
	mark("top")
	if c {
		mark("then")
		return
	} else {
		mark("else")
	}
	mark("after")
}`)
	wantMarks(t, g, "top", "then", "else", "after")
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	g := buildTestCFG(t, `
func f() {
	mark("live")
	return
	mark("dead")
}`)
	wantMarks(t, g, "live")
}

func TestCFGForLoop(t *testing.T) {
	g := buildTestCFG(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		mark("body")
		if i == 2 {
			continue
		}
		mark("tail")
	}
	mark("after")
}`)
	wantMarks(t, g, "body", "tail", "after")
}

func TestCFGInfiniteLoopWithoutBreak(t *testing.T) {
	g := buildTestCFG(t, `
func f() {
	for {
		mark("body")
	}
	mark("after")
}`)
	// A condition-free loop with no break never falls through.
	wantMarks(t, g, "body")
	if g.Reachable()[g.Exit] {
		t.Fatal("exit should be unreachable past for{}")
	}
}

func TestCFGInfiniteLoopWithBreak(t *testing.T) {
	g := buildTestCFG(t, `
func f(c bool) {
	for {
		if c {
			break
		}
		mark("body")
	}
	mark("after")
}`)
	wantMarks(t, g, "body", "after")
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildTestCFG(t, `
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for {
			mark("inner")
			break outer
		}
		mark("unreached")
	}
	mark("after")
}`)
	// The inner loop has no normal exit; only `break outer` leaves it, so
	// the outer loop's tail never runs.
	wantMarks(t, g, "inner", "after")
}

func TestCFGRange(t *testing.T) {
	g := buildTestCFG(t, `
func f(xs []int) {
	for _, x := range xs {
		if x == 0 {
			continue
		}
		mark("body")
	}
	mark("after")
}`)
	wantMarks(t, g, "body", "after")
}

func TestCFGSwitch(t *testing.T) {
	g := buildTestCFG(t, `
func f(x int) {
	switch x {
	case 1:
		mark("one")
		fallthrough
	case 2:
		mark("two")
	default:
		mark("def")
		return
	}
	mark("after")
}`)
	wantMarks(t, g, "one", "two", "def", "after")
}

func TestCFGSwitchAllReturn(t *testing.T) {
	g := buildTestCFG(t, `
func f(x int) {
	switch x {
	case 1:
		return
	default:
		return
	}
	mark("dead")
}`)
	wantMarks(t, g)
}

func TestCFGTypeSwitchAndSelect(t *testing.T) {
	g := buildTestCFG(t, `
func f(v any, ch chan int) {
	switch v.(type) {
	case int:
		mark("int")
	case string:
		mark("string")
	}
	select {
	case <-ch:
		mark("recv")
	default:
		mark("none")
	}
	mark("after")
}`)
	wantMarks(t, g, "int", "string", "recv", "none", "after")
}

func TestCFGGoto(t *testing.T) {
	g := buildTestCFG(t, `
func f(c bool) {
	if c {
		goto done
	}
	mark("middle")
done:
	mark("done")
}`)
	wantMarks(t, g, "middle", "done")

	g = buildTestCFG(t, `
func f() {
	goto skip
	mark("dead")
skip:
	mark("live")
}`)
	wantMarks(t, g, "live")
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	g := buildTestCFG(t, `
func f(c bool) {
	if !c {
		panic("boom")
	}
	mark("after")
}`)
	wantMarks(t, g, "after")
	// Exit is reachable only through the non-panicking path.
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable")
	}

	g = buildTestCFG(t, `
func f() {
	panic("always")
	mark("dead")
}`)
	wantMarks(t, g)
	if g.Reachable()[g.Exit] {
		t.Fatal("exit should be unreachable past an unconditional panic")
	}
}

// TestCFGDeferReplay pins defer semantics: deferred calls replay in the
// Exit block in LIFO order, so all-paths analyses see them on every
// function exit.
func TestCFGDeferReplay(t *testing.T) {
	g := buildTestCFG(t, `
func f() {
	defer mark("first")
	defer mark("second")
	mark("body")
}`)
	var order []string
	for _, n := range g.Exit.Nodes {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				order = append(order, strings.Trim(lit.Value, `"`))
			}
		}
	}
	if strings.Join(order, ",") != "second,first" {
		t.Fatalf("exit defers = %v, want [second first]", order)
	}
}

// TestForwardMustAnalysis exercises the generic fixpoint with a tiny
// must-analysis: "mark(\"flag\") has executed on every path". The branch
// that skips the flag must force the join to false at the merge point.
func TestForwardMustAnalysis(t *testing.T) {
	g := buildTestCFG(t, `
func f(c bool) {
	if c {
		mark("flag")
	}
	mark("merge")
}`)
	hasFlag := func(blk *Block, s bool) bool {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Value == `"flag"` {
							s = true
						}
					}
				}
				return true
			})
		}
		return s
	}
	in := Forward(g, false, true,
		func(a, b bool) bool { return a && b },
		hasFlag,
		func(a, b bool) bool { return a == b })
	// Find the block containing mark("merge"): its in-state must be false
	// (one path skipped the flag).
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if lit, ok := x.(*ast.BasicLit); ok && lit.Value == `"merge"` {
					found = true
				}
				return true
			})
			if found {
				if in[blk] {
					t.Fatal("must-analysis claims flag set on all paths; the else path skips it")
				}
				return
			}
		}
	}
	t.Fatal("merge block not found")
}
