package lint

import "testing"

func TestHotAllocAnnotatedFunction(t *testing.T) {
	diags := runFixture(t, HotAlloc, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "fmt"

func sink(v any) { _ = v }

//redi:hotpath
func evalRow(codes []int32, names []string) string {
	out := ""
	for i, c := range codes {
		out += names[c]                  // string concat
		pair := []int32{c, int32(i)}     // slice literal
		m := map[int32]bool{c: true}     // map literal
		_ = pair
		_ = m
		sink(c)                          // numeric boxed into interface
		fmt.Println(c)                   // fmt in hot path
	}
	return out
}
`,
	})
	wantFindings(t, diags, 5, "hot bodies run per row/element and must not allocate")
}

func TestHotAllocParallelClosure(t *testing.T) {
	diags := runFixture(t, HotAlloc, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import (
	"fmt"

	"redi/internal/parallel"
)

func work(out []string, in []int) {
	parallel.For(0, len(in), 0, func(i int) {
		out[i] = fmt.Sprint(in[i])
	})
}
`,
	})
	wantFindings(t, diags, 1, "fmt call in parallel.For worker closure")
}

func TestHotAllocSuppressed(t *testing.T) {
	diags := runFixture(t, HotAlloc, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import "fmt"

//redi:hotpath
func evalRow(codes []int32) {
	for _, c := range codes {
		if c < 0 {
			//redi:allow hotalloc cold corrupt-data diagnostic, unreachable on verified programs
			panic(fmt.Sprintf("bad code %d", c))
		}
	}
}
`,
	})
	wantFindings(t, diags, 0, "")
}

func TestHotAllocCleanShapes(t *testing.T) {
	diags := runFixture(t, HotAlloc, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import (
	"fmt"

	"redi/internal/parallel"
)

// Not annotated: fmt and literals are fine in cold code.
func cold(xs []int) string {
	s := fmt.Sprint(xs)
	m := map[int]bool{1: true}
	_ = m
	return s + "!"
}

//redi:hotpath
func kernel(dst, a, b []uint64) int {
	n := 0
	for i := range dst {
		dst[i] = a[i] & b[i]
		if dst[i] != 0 {
			n++
		}
	}
	return n
}

// Worker closure doing pure index-disjoint arithmetic.
func work(out, in []int) {
	parallel.For(0, len(in), 0, func(i int) {
		out[i] = in[i] * 2
	})
}

// Boxing a non-numeric (string) is not flagged by this rule.
func sink(v any) { _ = v }

//redi:hotpath
func strings_ok(names []string) {
	for _, n := range names {
		sink(n)
	}
}
`,
	})
	wantFindings(t, diags, 0, "")
}
