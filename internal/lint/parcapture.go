package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParCapture flags closures handed to the deterministic parallel layer
// (parallel.For, parallel.Map, parallel.MapChunks) that write to captured
// variables. Under the contract, a worker closure may only communicate
// results through:
//
//   - index-disjoint element writes — assigning to an element of a
//     captured slice or map indexed by a variable the closure itself owns
//     (its index/shard parameter or a local derived from one), so no two
//     workers touch the same element; or
//   - mutex-guarded state — writes that happen after a .Lock()/.RLock()
//     call inside the closure.
//
// Anything else is a data race at workers > 1 and, even when "benign", a
// completion-order dependence that breaks bit-identical replay.
var ParCapture = &Analyzer{
	Name: "parcapture",
	Doc:  "closures given to parallel.For/Map/MapChunks may only write index-disjoint or mutex-guarded state",
	Run:  runParCapture,
}

// parallelEntrypoints are the fork-join helpers whose closure arguments
// run concurrently.
var parallelEntrypoints = map[string]bool{"For": true, "Map": true, "MapChunks": true}

func runParCapture(pass *Pass) {
	parallelPath := pass.Module + "/internal/parallel"
	for _, file := range pass.Files {
		if ImportName(file, parallelPath) == "" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !parallelEntrypoints[sel.Sel.Name] {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || pass.pkgNamePath(file, pkgID) != parallelPath {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					checkWorkerClosure(pass, sel.Sel.Name, fl)
				}
			}
			return true
		})
	}
}

func checkWorkerClosure(pass *Pass, entry string, fl *ast.FuncLit) {
	lockPositions := lockCalls(fl)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			if st != fl {
				return true // nested closures inherit the same capture rules via their writes
			}
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				checkClosureWrite(pass, entry, fl, lockPositions, lhs)
			}
		case *ast.IncDecStmt:
			checkClosureWrite(pass, entry, fl, lockPositions, st.X)
		}
		return true
	})
}

func checkClosureWrite(pass *Pass, entry string, fl *ast.FuncLit, locks []token.Pos, lhs ast.Expr) {
	base := baseIdent(lhs)
	if base == nil || base.Name == "_" {
		return
	}
	obj := identObj(pass, base)
	if obj == nil {
		return // unresolved; stay quiet rather than guess
	}
	if declaredWithin(pass, obj, fl) {
		return // closure-local state
	}
	// Index-disjoint element write: the element index is owned by this
	// closure invocation (parameter or closure-local), so no two workers
	// can collide on it.
	if ix, ok := lhs.(*ast.IndexExpr); ok && indexOwnedByClosure(pass, fl, ix.Index) {
		return
	}
	// Mutex-guarded: a .Lock()/.RLock() call precedes the write inside the
	// closure body.
	for _, lp := range locks {
		if lp < lhs.Pos() {
			return
		}
	}
	pass.Reportf(lhs.Pos(), "closure passed to parallel.%s writes captured %s; only index-disjoint element writes keyed by the closure's own index, or mutex-guarded state, stay deterministic at workers > 1", entry, types.ExprString(lhs))
}

// indexOwnedByClosure reports whether every identifier in an index
// expression is declared inside the closure (parameters included). A
// constant index or one computed from captured state can collide across
// workers and does not qualify.
func indexOwnedByClosure(pass *Pass, fl *ast.FuncLit, index ast.Expr) bool {
	sawIdent := false
	owned := true
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := identObj(pass, id)
		if obj == nil {
			return true
		}
		if _, isConst := obj.(*types.Const); isConst {
			return true // named constants are worker-independent but shared
		}
		sawIdent = true
		if !declaredWithin(pass, obj, fl) {
			owned = false
		}
		return owned
	})
	return sawIdent && owned
}

// lockCalls collects the positions of .Lock()/.RLock() calls inside the
// closure.
func lockCalls(fl *ast.FuncLit) []token.Pos {
	var out []token.Pos
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}
