package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ParCapture flags closures handed to the deterministic parallel layer
// (parallel.For, parallel.Map, parallel.MapChunks) that write to captured
// variables. Under the contract, a worker closure may only communicate
// results through:
//
//   - index-disjoint element writes — assigning to an element of a
//     captured slice or map indexed by a variable the closure itself owns
//     (its index/shard parameter or a local derived from one), so no two
//     workers touch the same element; or
//   - mutex-guarded state — writes that happen after a .Lock()/.RLock()
//     call inside the closure.
//
// Anything else is a data race at workers > 1 and, even when "benign", a
// completion-order dependence that breaks bit-identical replay.
var ParCapture = &Analyzer{
	Name: "parcapture",
	Doc:  "closures given to parallel.For/Map/MapChunks may only write index-disjoint or mutex-guarded state",
	Run:  runParCapture,
}

// parallelEntrypoints are the fork-join helpers whose closure arguments
// run concurrently.
var parallelEntrypoints = map[string]bool{"For": true, "Map": true, "MapChunks": true}

func runParCapture(pass *Pass) {
	parallelPath := pass.Module + "/internal/parallel"
	for _, file := range pass.Files {
		if ImportName(file, parallelPath) == "" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !parallelEntrypoints[sel.Sel.Name] {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || pass.pkgNamePath(file, pkgID) != parallelPath {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					checkWorkerClosure(pass, sel.Sel.Name, fl)
				}
			}
			return true
		})
	}
}

func checkWorkerClosure(pass *Pass, entry string, fl *ast.FuncLit) {
	guard := newLockOracle(fl)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			if st != fl {
				return true // nested closures inherit the same capture rules via their writes
			}
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				checkClosureWrite(pass, entry, fl, guard, lhs)
			}
		case *ast.IncDecStmt:
			checkClosureWrite(pass, entry, fl, guard, st.X)
		}
		return true
	})
}

func checkClosureWrite(pass *Pass, entry string, fl *ast.FuncLit, guard *lockOracle, lhs ast.Expr) {
	base := baseIdent(lhs)
	if base == nil || base.Name == "_" {
		return
	}
	obj := identObj(pass, base)
	if obj == nil {
		return // unresolved; stay quiet rather than guess
	}
	if declaredWithin(pass, obj, fl) {
		return // closure-local state
	}
	// Index-disjoint element write: the element index is owned by this
	// closure invocation (parameter or closure-local), so no two workers
	// can collide on it.
	if ix, ok := lhs.(*ast.IndexExpr); ok && indexOwnedByClosure(pass, fl, ix.Index) {
		return
	}
	// Mutex-guarded: a Lock is held on EVERY path reaching the write (a
	// must-analysis over the closure CFG — a lock on one branch no longer
	// blesses writes on the other, which the old any-lock-before-this-
	// position check accepted).
	if guard.lockedAt(lhs.Pos()) {
		return
	}
	pass.Reportf(lhs.Pos(), "closure passed to parallel.%s writes captured %s; only index-disjoint element writes keyed by the closure's own index, or mutex-guarded state, stay deterministic at workers > 1", entry, types.ExprString(lhs))
}

// lockOracle answers "is a mutex provably held here?" for positions inside
// one closure body, backed by a must-locked forward dataflow over the lint
// CFG: .Lock()/.RLock() sets the state, .Unlock()/.RUnlock() clears it, and
// paths merge with AND so only writes dominated by a lock qualify.
type lockOracle struct {
	g  *CFG
	in map[*Block]bool
}

func newLockOracle(fl *ast.FuncLit) *lockOracle {
	g := BuildCFG(fl.Body)
	in := Forward(g, false, true,
		func(a, b bool) bool { return a && b },
		func(blk *Block, s bool) bool { return replayLockEvents(blk, s, token.Pos(1)<<62) },
		func(a, b bool) bool { return a == b })
	return &lockOracle{g: g, in: in}
}

func (o *lockOracle) lockedAt(pos token.Pos) bool {
	for _, blk := range o.g.Blocks {
		for _, n := range blk.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				return replayLockEvents(blk, o.in[blk], pos)
			}
		}
	}
	return false
}

// replayLockEvents applies the block's lock/unlock calls at positions
// strictly before `until` to the incoming state, in source order.
func replayLockEvents(blk *Block, s bool, until token.Pos) bool {
	type ev struct {
		pos  token.Pos
		lock bool
	}
	var events []ev
	for _, n := range blk.Nodes {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			continue // deferred Unlock runs at function exit, not here
		}
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					events = append(events, ev{call.Pos(), true})
				case "Unlock", "RUnlock":
					events = append(events, ev{call.Pos(), false})
				}
			}
			return true
		})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, e := range events {
		if e.pos >= until {
			break
		}
		s = e.lock
	}
	return s
}

// indexOwnedByClosure reports whether every identifier in an index
// expression is declared inside the closure (parameters included). A
// constant index or one computed from captured state can collide across
// workers and does not qualify.
func indexOwnedByClosure(pass *Pass, fl *ast.FuncLit, index ast.Expr) bool {
	sawIdent := false
	owned := true
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := identObj(pass, id)
		if obj == nil {
			return true
		}
		if _, isConst := obj.(*types.Const); isConst {
			return true // named constants are worker-independent but shared
		}
		sawIdent = true
		if !declaredWithin(pass, obj, fl) {
			owned = false
		}
		return owned
	})
	return sawIdent && owned
}
