package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PoolCheck machine-checks the bitmap scratch-ownership discipline from PR 3:
// every bitmap obtained from a bitmap.Pool.Get must go back via Put on every
// path out of the function, must not be touched after it went back, and must
// not escape the function (pooled memory is recycled — an escaped handle is a
// use-after-free waiting for the next Get). The coverage DFS's borrowed-vs-
// pooled rowSet convention transfers ownership deliberately; those sites
// carry //redi:allow poolcheck annotations naming the releasing counterpart.
//
// The analysis is intraprocedural over the lint CFG: each Get allocation is
// tracked through a {live, released} lattice (join = union over paths), with
// deferred Puts replayed at function exit. Escapes — returning the handle,
// storing it into non-local memory, capturing it in a closure, sending it,
// or handing it to a goroutine — exempt the allocation from the must-Put
// check (ownership left the function; the annotation documents where it is
// released) but are themselves reported. Aliases made by plain copies and
// stores into local containers (rs.a = dst) are tracked; passing the handle
// as an ordinary call argument is borrowing, not escape.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "bitmap.Pool scratch must be Put on all paths, never used after Put, and never escape without //redi:allow",
	Run:  runPoolCheck,
}

// Allocation lattice bits: a path may hold the scratch live, released, or
// (after a merge) either.
const (
	poolLive uint8 = 1 << iota
	poolReleased
)

func runPoolCheck(pass *Pass) {
	if !isInternalPkg(pass) {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, body := range functionBodies(file) {
			checkPoolOwnership(pass, body)
		}
	}
}

// poolAlloc is one Pool.Get allocation site bound to an identifier.
type poolAlloc struct {
	getCall *ast.CallExpr // the Pool.Get call
	obj     types.Object  // the identifier the result is bound to
	aliases map[types.Object]bool
	escaped bool
}

// poolEvent is one ownership-relevant action inside a block, in source order.
type poolEvent struct {
	pos  token.Pos
	kind int // evGet, evPut, evUse
}

const (
	evGet = iota
	evPut
	evUse
	// evKill: the primary variable is reassigned to something unrelated —
	// the allocation is no longer trackable on this path, so the analysis
	// goes quiet rather than guess (prefer a false negative to flagging a
	// reused variable).
	evKill
)

func checkPoolOwnership(pass *Pass, body *ast.BlockStmt) {
	allocs := findPoolAllocs(pass, body)
	if len(allocs) == 0 {
		return
	}
	growAliases(pass, body, allocs)
	findEscapes(pass, body, allocs)
	g := BuildCFG(body)
	reach := g.Reachable()
	for _, a := range allocs {
		if a.obj == nil {
			// Get used inline (argument, expression): nothing can ever
			// Put it back.
			pass.Reportf(a.getCall.Pos(), "result of bitmap.Pool.Get is used inline and can never be returned to the pool; bind it and Put it on every path")
			continue
		}
		if a.escaped {
			continue // ownership transferred; the escape site carries the report
		}
		checkAllocFlow(pass, g, reach, a)
	}
}

// checkAllocFlow runs the {live,released} dataflow for one allocation and
// reports missing Puts, double Puts, and uses after Put.
func checkAllocFlow(pass *Pass, g *CFG, reach map[*Block]bool, a *poolAlloc) {
	transfer := func(blk *Block, s uint8) uint8 {
		for _, ev := range blockEvents(pass, blk, a) {
			switch ev.kind {
			case evGet:
				s = poolLive
			case evPut:
				s = poolReleased
			case evKill:
				s = 0
			}
		}
		return s
	}
	in := Forward(g, 0, 0,
		func(x, y uint8) uint8 { return x | y },
		transfer,
		func(x, y uint8) bool { return x == y })

	// Replay each reachable block once with its fixpoint in-state to place
	// the diagnostics (reporting inside the fixpoint would duplicate them).
	for _, blk := range g.Blocks {
		if !reach[blk] {
			continue
		}
		s := in[blk]
		for _, ev := range blockEvents(pass, blk, a) {
			switch ev.kind {
			case evGet:
				s = poolLive
			case evPut:
				if s&poolReleased != 0 && s&poolLive == 0 {
					pass.Reportf(ev.pos, "pooled bitmap %s is returned to the pool twice on this path", a.obj.Name())
				}
				s = poolReleased
			case evUse:
				if s&poolReleased != 0 {
					pass.Reportf(ev.pos, "pooled bitmap %s is used after being returned to the pool; pooled scratch may be handed to another goroutine by the next Get", a.obj.Name())
				}
			case evKill:
				s = 0
			}
		}
	}
	// Exit in-state after replaying exit nodes (deferred Puts run there):
	// any path still holding the scratch leaks it from the pool's view.
	s := in[g.Exit]
	for _, ev := range blockEvents(pass, g.Exit, a) {
		if ev.kind == evPut {
			s = poolReleased
		}
	}
	if reach[g.Exit] && s&poolLive != 0 {
		pass.Reportf(a.getCall.Pos(), "pooled bitmap %s is not returned to the pool on every path; add Put (or defer it) before each return", a.obj.Name())
	}
}

// blockEvents extracts the allocation's Get/Put/use events from one block in
// source order. DeferStmt registration nodes are skipped — their calls
// replay in the Exit block.
func blockEvents(pass *Pass, blk *Block, a *poolAlloc) []poolEvent {
	var events []poolEvent
	for _, n := range blk.Nodes {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			continue
		}
		// Positions excluded from use-reporting: the Get binding's LHS,
		// and Put arguments (the Put itself is the event).
		skip := map[token.Pos]bool{}
		ast.Inspect(n, func(x ast.Node) bool {
			switch e := x.(type) {
			case *ast.FuncLit:
				return false // separate execution context; escape scan covers capture
			case *ast.AssignStmt:
				for i, lhs := range e.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || !a.aliases[identObj(pass, id)] {
						continue
					}
					// Assigning over the whole variable is not a use of the
					// pooled memory.
					skip[id.Pos()] = true
					var rhs ast.Expr
					if len(e.Rhs) == len(e.Lhs) {
						rhs = e.Rhs[i]
					}
					switch {
					case rhs == a.getCall:
						events = append(events, poolEvent{pos: rhs.Pos(), kind: evGet})
					case identObj(pass, id) == a.obj && (rhs == nil || !mentionsAlias(pass, rhs, a)):
						events = append(events, poolEvent{pos: id.Pos(), kind: evKill})
					}
				}
			case *ast.CallExpr:
				if isPoolMethodCall(pass, e, "Put") && len(e.Args) == 1 {
					if id := baseIdent(e.Args[0]); id != nil && a.aliases[identObj(pass, id)] {
						events = append(events, poolEvent{pos: e.Pos(), kind: evPut})
						skip[id.Pos()] = true
					}
				}
			case *ast.Ident:
				if a.aliases[identObj(pass, e)] && !skip[e.Pos()] {
					events = append(events, poolEvent{pos: e.Pos(), kind: evUse})
				}
			}
			return true
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// findPoolAllocs collects Pool.Get calls in body (outside nested closures)
// and the identifiers they bind to.
func findPoolAllocs(pass *Pass, body *ast.BlockStmt) []*poolAlloc {
	var allocs []*poolAlloc
	bound := map[*ast.CallExpr]bool{}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isPoolMethodCall(pass, call, "Get") || i >= len(as.Lhs) {
				continue
			}
			bound[call] = true
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				allocs = append(allocs, &poolAlloc{getCall: call})
				continue
			}
			obj := identObj(pass, id)
			if obj == nil {
				continue // no type info; stay quiet
			}
			allocs = append(allocs, &poolAlloc{getCall: call, obj: obj, aliases: map[types.Object]bool{obj: true}})
		}
	})
	// Get calls not bound by any assignment are inline uses.
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && !bound[call] && isPoolMethodCall(pass, call, "Get") {
			allocs = append(allocs, &poolAlloc{getCall: call})
		}
	})
	return allocs
}

// growAliases propagates pooled handles through plain copies (y := x) and
// stores into local containers (rs.a = x makes rs an alias container, so a
// later `return rs` is seen as an escape). Runs to fixpoint.
func growAliases(pass *Pass, body *ast.BlockStmt, allocs []*poolAlloc) {
	changed := true
	for changed {
		changed = false
		inspectSkippingFuncLits(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				for _, a := range allocs {
					if a.obj == nil || !carriesAlias(pass, rhs, a) {
						continue
					}
					target := baseIdent(as.Lhs[i])
					if target == nil || target.Name == "_" {
						continue
					}
					obj := identObj(pass, target)
					if obj == nil || a.aliases[obj] {
						continue
					}
					if !declaredWithin(pass, obj, body) {
						continue // non-local store: the escape scan reports it
					}
					a.aliases[obj] = true
					changed = true
				}
			}
		})
	}
}

// findEscapes marks and reports allocations whose handle leaves the
// function: via return, store to non-local memory, closure capture, channel
// send, or goroutine argument.
func findEscapes(pass *Pass, body *ast.BlockStmt, allocs []*poolAlloc) {
	report := func(a *poolAlloc, pos token.Pos, how string) {
		a.escaped = true
		pass.Reportf(pos, "pooled bitmap %s escapes the function (%s); pooled scratch is recycled by the next Get — transfer ownership only with an //redi:allow naming where it is released", a.obj.Name(), how)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, a := range allocs {
				if a.obj == nil {
					continue
				}
				for _, res := range st.Results {
					if carriesAlias(pass, res, a) {
						report(a, st.Pos(), "returned")
						break
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				for _, a := range allocs {
					if a.obj == nil || !carriesAlias(pass, rhs, a) {
						continue
					}
					base := baseIdent(st.Lhs[i])
					if base == nil || base.Name == "_" {
						continue
					}
					obj := identObj(pass, base)
					if obj != nil && !declaredWithin(pass, obj, body) {
						report(a, st.Pos(), "stored outside the function")
					}
				}
			}
		case *ast.SendStmt:
			for _, a := range allocs {
				if a.obj != nil && carriesAlias(pass, st.Value, a) {
					report(a, st.Pos(), "sent on a channel")
				}
			}
		case *ast.GoStmt:
			for _, a := range allocs {
				if a.obj != nil && mentionsAlias(pass, st.Call, a) {
					report(a, st.Pos(), "handed to a goroutine")
				}
			}
		case *ast.FuncLit:
			for _, a := range allocs {
				if a.obj == nil || a.escaped {
					continue
				}
				for obj := range a.aliases {
					if declaredWithin(pass, obj, st) {
						continue // closure-local re-declaration, not a capture
					}
					if nodeMentionsObj(pass, st.Body, obj) {
						report(a, st.Pos(), "captured by a closure")
						break
					}
				}
			}
			return false
		}
		return true
	})
}

// nodeMentionsObj reports whether any identifier under n resolves to obj.
func nodeMentionsObj(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && identObj(pass, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// mentionsAlias reports whether expr references any alias of the allocation,
// including inside call arguments (used for goroutine hand-off, where the
// callee runs concurrently with the caller).
func mentionsAlias(pass *Pass, expr ast.Expr, a *poolAlloc) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && a.aliases[identObj(pass, id)] {
			found = true
		}
		return !found
	})
	return found
}

// carriesAlias is mentionsAlias restricted to expressions that can carry the
// pooled memory itself: it does not descend into call expressions, whose
// results (counts, words) are derived scalars, not the handle. `return
// b.Count()` is not an escape; `return rowSet{a: b}` is. A call that truly
// smuggles the handle out (return identity(b)) is missed — the analysis
// prefers a false negative to flagging every derived value.
func carriesAlias(pass *Pass, expr ast.Expr, a *poolAlloc) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && a.aliases[identObj(pass, id)] {
			found = true
		}
		return !found
	})
	return found
}

// isPoolMethodCall reports whether call is pool.<name>(...) on a
// bitmap.Pool receiver.
func isPoolMethodCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return isModuleType(pass, exprType(pass, sel.X), "/internal/bitmap", "Pool")
}

// isModuleType reports whether t (possibly behind a pointer) is the named
// type <module><pkgSuffix>.<name>.
func isModuleType(pass *Pass, t types.Type, pkgSuffix, name string) bool {
	return isNamedType(t, pass.Module+pkgSuffix, name)
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type <pkgPath>.<name>.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}

// isInternalPkg reports whether the pass's package is an algorithm package
// (<module>/internal/...), the scope shared by the flow rules.
func isInternalPkg(pass *Pass) bool {
	return strings.HasPrefix(pass.Path, pass.Module+"/internal/")
}

// functionBodies returns every function-like body in the file: FuncDecl
// bodies plus FuncLit bodies, each to be analyzed as its own unit.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// inspectSkippingFuncLits walks the body without descending into nested
// closures — those are separate execution contexts analyzed on their own.
func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
