package lint

import (
	"go/ast"
	"go/types"
)

// TraceClass enforces the deterministic/runtime class split inside request
// traces (PR 10) the same way ObsClass enforces it for counters: every
// trace span attribute is deterministic-class by contract — Det exports
// must be bit-identical across runs and worker counts — so a value derived
// from the runtime class (obs.Now(), Gauge.Value(), runtime counter reads,
// histogram quantiles, or a span's own Duration()) must never flow into
// Span.SetAttr or Span.AddDeltas. Timings already have a home: the span's
// start/end fields, surfaced only through the Full and Chrome exports.
//
// Unlike ObsClass there is no handle classification for the sink side:
// ALL trace spans are deterministic sinks, so every SetAttr value argument
// and AddDeltas map argument is checked. The taint machinery (sources,
// assignment fixpoint, closure scope) is shared with ObsClass, so the two
// rules agree on what "runtime-class" means.
var TraceClass = &Analyzer{
	Name: "traceclass",
	Doc:  "runtime-class values (obs.Now, gauges, runtime counters, span durations) must not flow into deterministic trace span attributes (Span.SetAttr/AddDeltas)",
	Run:  runTraceClass,
}

func runTraceClass(pass *Pass) {
	if !isInternalPkg(pass) {
		return
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkTraceFlow(pass, fn.Body)
			}
			return true
		})
	}
}

func checkTraceFlow(pass *Pass, body *ast.BlockStmt) {
	h := classifyHandles(pass, body)
	tainted := taintFixpoint(pass, body, h)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, recv := obsMethod(pass, call)
		if !isTraceType(pass, recv, "Span") {
			return true
		}
		// SetAttr's key and AddDeltas' prefix are strings naming the
		// attribute — only the value positions are deterministic payload.
		var args []ast.Expr
		switch sel {
		case "SetAttr":
			if len(call.Args) == 2 {
				args = call.Args[1:]
			}
		case "AddDeltas":
			if len(call.Args) == 2 {
				args = call.Args[1:]
			}
		default:
			return true
		}
		for _, arg := range args {
			if exprRuntimeTainted(pass, arg, h, tainted) {
				pass.Reportf(arg.Pos(), "runtime-class value flows into deterministic trace span attribute via %s; span attrs must stay bit-identical across runs and worker counts — timings live in the span's runtime class (Duration, full/chrome exports), never in attributes", sel)
			}
		}
		return true
	})
}

// isTraceType reports whether t is <module>/internal/trace.<name>.
func isTraceType(pass *Pass, t types.Type, name string) bool {
	return isModuleType(pass, t, "/internal/trace", name)
}
