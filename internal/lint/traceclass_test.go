package lint

import "testing"

func TestTraceClassRuntimeIntoAttrs(t *testing.T) {
	diags := runFixture(t, TraceClass, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import (
	"redi/internal/obs"
	"redi/internal/trace"
)

func wallClockAttr(sp *trace.Span) {
	start := obs.Now()
	elapsed := obs.Now().Sub(start).Nanoseconds()
	sp.SetAttr("elapsed_ns", elapsed) // wall-clock into a span attr
}

func gaugeAttr(r *obs.Registry, sp *trace.Span) {
	g := r.Gauge("queue_depth")
	sp.SetAttr("depth", int64(g.Value())) // runtime gauge into a span attr
}

func durationAttr(sp *trace.Span) {
	child := sp.Child("phase")
	child.End()
	sp.SetAttr("phase_us", child.Duration().Microseconds()) // span timing into attr
}
`,
	})
	wantFindings(t, diags, 3, "runtime-class value flows into deterministic trace span attribute")
}

// AddDeltas' map argument is a sink too: a delta map enriched with a
// wall-clock read would poison every prefixed attribute at once.
func TestTraceClassAddDeltasSink(t *testing.T) {
	diags := runFixture(t, TraceClass, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import (
	"redi/internal/obs"
	"redi/internal/trace"
)

func deltasWithTiming(sp *trace.Span) {
	start := obs.Now()
	deltas := map[string]int64{"rows": 10}
	deltas["elapsed_ns"] = obs.Now().Sub(start).Nanoseconds()
	sp.AddDeltas("obs.", deltas)
}
`,
	})
	wantFindings(t, diags, 1, "runtime-class value flows into deterministic trace span attribute")
}

func TestTraceClassSuppressed(t *testing.T) {
	diags := runFixture(t, TraceClass, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import (
	"redi/internal/obs"
	"redi/internal/trace"
)

func suppressed(r *obs.Registry, sp *trace.Span) {
	g := r.Gauge("queue_depth")
	//redi:allow traceclass test-only fixture exercising the suppression path
	sp.SetAttr("depth", int64(g.Value()))
}
`,
	})
	wantFindings(t, diags, 0, "")
}

func TestTraceClassCleanShapes(t *testing.T) {
	diags := runFixture(t, TraceClass, "redi/internal/fixture", map[string]string{
		"fix.go": `package fixture

import (
	"redi/internal/obs"
	"redi/internal/trace"
)

// Deterministic tallies into span attrs: the intended use.
func detAttrs(sp *trace.Span, rows []int, deltas map[string]int64) {
	sp.SetAttr("rows", int64(len(rows)))
	sp.AddDeltas("obs.", deltas)
}

// Duration feeding runtime-class consumers (thresholds, runtime
// histograms) is fine — only span attributes are deterministic.
func durationElsewhere(r *obs.Registry, sp *trace.Span) {
	rh := r.RuntimeHistogram("lat", obs.ExpBounds(1, 8))
	child := sp.Child("phase")
	child.End()
	if d := child.Duration(); d > 0 {
		rh.Observe(d.Nanoseconds())
	}
}

// Deterministic counter readbacks are not taint.
func counterDelta(r *obs.Registry, sp *trace.Span) {
	c := r.Counter("bitmap.and_ops")
	before := c.Value()
	c.Add(3)
	sp.SetAttr("and_ops", c.Value()-before)
}
`,
	})
	wantFindings(t, diags, 0, "")
}
