// Package dt implements data distribution tailoring (Nargesian, Asudeh,
// Jagadish, "Tailoring Data Source Distributions for Fairness-aware Data
// Integration", VLDB 2021; surveyed in §4.2 of the tutorial).
//
// Given a set of data sources, each answering random-sample queries at a
// per-query cost, and a target count for every demographic group, a
// tailoring strategy decides which source to query at each step so that all
// group counts are met at minimum expected total cost. The package provides
//
//   - known-distribution strategies (CouponColl, RatioColl) and an exact
//     dynamic program for small instances,
//   - unknown-distribution strategies (ε-greedy, UCBColl) that learn source
//     distributions online, and a RandomColl baseline,
//   - an execution engine that runs any strategy against any sources and
//     records cost, per-source usage, and the collected sample.
package dt

import (
	"errors"
	"fmt"
	"math"

	"redi/internal/dataset"
	"redi/internal/obs"
	"redi/internal/rng"
)

// Source is a data source that can be sampled one tuple at a time. Draw
// returns the group index of the sampled tuple (in [0, NumGroups)) together
// with an opaque row handle that the engine stores for later
// materialization; sources backed by pure distributions return a negative
// handle.
type Source interface {
	// Cost is the price of one Draw.
	Cost() float64
	// Draw samples one tuple and reports its group.
	Draw(r *rng.RNG) (group int, row int)
	// NumGroups returns the number of groups the source labels tuples
	// with. All sources given to an engine must agree.
	NumGroups() int
}

// DistSource is a Source defined purely by a group distribution. It stands
// in for an external API whose tuples we only inspect for group membership,
// and is the workhorse of simulation experiments.
type DistSource struct {
	Dist *rng.Categorical
	C    float64
}

// NewDistSource builds a DistSource over the given group weights.
func NewDistSource(weights []float64, cost float64) *DistSource {
	return &DistSource{Dist: rng.NewCategorical(weights), C: cost}
}

// Cost returns the per-draw cost.
func (s *DistSource) Cost() float64 { return s.C }

// NumGroups returns the number of groups.
func (s *DistSource) NumGroups() int { return s.Dist.K() }

// Draw samples a group; the row handle is always -1.
func (s *DistSource) Draw(r *rng.RNG) (int, int) { return s.Dist.Draw(r), -1 }

// Probs returns the source's true group distribution (used by
// known-distribution strategies and by experiment ground truth).
func (s *DistSource) Probs() []float64 { return s.Dist.Probs() }

// DatasetSource is a Source backed by a concrete dataset: Draw samples a
// row uniformly with replacement and reports the group of that row under a
// fixed group index.
type DatasetSource struct {
	Data  *dataset.Dataset
	byRow []int
	k     int
	c     float64
}

// NewDatasetSource wraps a dataset as a source. groups must be the GroupBy
// index of d over the sensitive attributes, and keys the global group-key
// order shared by all sources (a row whose key is missing from keys gets
// group -1 and is re-drawn). cost is the per-draw cost.
func NewDatasetSource(d *dataset.Dataset, groups *dataset.Groups, keys []dataset.GroupKey, cost float64) (*DatasetSource, error) {
	if d.NumRows() == 0 {
		return nil, errors.New("dt: empty source dataset")
	}
	pos := map[dataset.GroupKey]int{}
	for i, k := range keys {
		pos[k] = i
	}
	// Translate local gids to global key positions once; the per-row loop is
	// then a slice index instead of a key-string map lookup.
	toGlobal := make([]int, groups.NumGroups())
	for gi := range toGlobal {
		global, ok := pos[groups.Key(gi)]
		if !ok {
			global = -1
		}
		toGlobal[gi] = global
	}
	s := &DatasetSource{Data: d, byRow: make([]int, d.NumRows()), k: len(keys), c: cost}
	for r := range s.byRow {
		gi := groups.ByRow[r]
		if gi < 0 {
			s.byRow[r] = -1
			continue
		}
		s.byRow[r] = toGlobal[gi]
	}
	return s, nil
}

// Cost returns the per-draw cost.
func (s *DatasetSource) Cost() float64 { return s.c }

// NumGroups returns the number of global groups.
func (s *DatasetSource) NumGroups() int { return s.k }

// Draw samples one row with replacement. Rows outside the global group set
// are skipped (they still cost nothing extra: the draw is retried, modeling
// a filter pushed into the source query).
func (s *DatasetSource) Draw(r *rng.RNG) (int, int) {
	for tries := 0; tries < 10000; tries++ {
		row := r.Intn(s.Data.NumRows())
		if g := s.byRow[row]; g >= 0 {
			return g, row
		}
	}
	panic("dt: source has no rows in the global group set")
}

// Strategy selects the next source to query given the tailoring state.
// Implementations may keep online estimates via Observe.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Next returns the index of the source to query. need[g] is the
	// remaining count for group g; step is the number of draws so far.
	Next(need []int, step int) int
	// Observe reports the outcome of a draw from source i.
	Observe(source, group int)
}

// Result records one tailoring run.
type Result struct {
	Strategy    string
	TotalCost   float64
	Draws       int
	DrawsBySrc  []int
	Collected   []int // per-group counts actually kept
	Overflow    int   // tuples drawn beyond their group's requirement
	RowsBySrc   [][]int
	Fulfilled   bool
	StepsCapped bool
}

// Engine runs strategies against sources.
type Engine struct {
	Sources []Source
	// MaxDraws caps a run; 0 means 10^7.
	MaxDraws int
	// Obs receives the engine's operation counters (draws per source,
	// collected per group, integer-milli cost). Nil falls back to the
	// process-wide registry (obs.Enable); all counters are deterministic
	// because the draw loop itself is serial and seeded.
	Obs *obs.Registry
}

// observe folds a finished run's trace summary into the active registry.
// Cost is recorded as integer milli-units: float accumulation order is not
// associative, so a float metric could not honor the bit-identical
// snapshot contract, but a rounded integer of the already-summed total can.
func (e *Engine) observe(res *Result) {
	reg := obs.Active(e.Obs)
	if reg == nil {
		return
	}
	reg.Counter("dt.runs").Inc()
	reg.Counter("dt.draws").Add(int64(res.Draws))
	reg.Counter("dt.overflow").Add(int64(res.Overflow))
	reg.Counter("dt.cost_milli").Add(int64(math.Round(res.TotalCost * 1000)))
	if res.Fulfilled {
		reg.Counter("dt.runs_fulfilled").Inc()
	}
	collected := 0
	for g, n := range res.Collected {
		if n > 0 {
			collected += n
			reg.Counter(fmt.Sprintf("dt.collected.group_%d", g)).Add(int64(n))
		}
	}
	reg.Counter("dt.collected").Add(int64(collected))
	for i, n := range res.DrawsBySrc {
		if n > 0 {
			reg.Counter(fmt.Sprintf("dt.draws.source_%d", i)).Add(int64(n))
		}
	}
}

// Run executes the strategy until every group's need is met or the draw cap
// is reached. need is not modified. The returned Result reports the full
// trace summary. It returns an error if there are no sources, needs and
// sources disagree on the group count, or the strategy returns an invalid
// source index.
func (e *Engine) Run(s Strategy, need []int, r *rng.RNG) (*Result, error) {
	if len(e.Sources) == 0 {
		return nil, errors.New("dt: no sources")
	}
	k := e.Sources[0].NumGroups()
	for i, src := range e.Sources {
		if src.NumGroups() != k {
			return nil, fmt.Errorf("dt: source %d has %d groups, want %d", i, src.NumGroups(), k)
		}
	}
	if len(need) != k {
		return nil, fmt.Errorf("dt: need has %d groups, sources have %d", len(need), k)
	}
	cap := e.MaxDraws
	if cap == 0 {
		cap = 10_000_000
	}

	remaining := append([]int(nil), need...)
	left := 0
	for _, n := range remaining {
		if n < 0 {
			return nil, errors.New("dt: negative need")
		}
		left += n
	}
	res := &Result{
		Strategy:   s.Name(),
		DrawsBySrc: make([]int, len(e.Sources)),
		Collected:  make([]int, k),
		RowsBySrc:  make([][]int, len(e.Sources)),
	}
	for left > 0 {
		if res.Draws >= cap {
			res.StepsCapped = true
			e.observe(res)
			return res, nil
		}
		i := s.Next(remaining, res.Draws)
		if i < 0 || i >= len(e.Sources) {
			return nil, fmt.Errorf("dt: strategy %s chose invalid source %d", s.Name(), i)
		}
		g, row := e.Sources[i].Draw(r)
		s.Observe(i, g)
		res.Draws++
		res.DrawsBySrc[i]++
		res.TotalCost += e.Sources[i].Cost()
		if g >= 0 && g < k && remaining[g] > 0 {
			remaining[g]--
			left--
			res.Collected[g]++
			if row >= 0 {
				res.RowsBySrc[i] = append(res.RowsBySrc[i], row)
			}
		} else {
			res.Overflow++
		}
	}
	res.Fulfilled = true
	e.observe(res)
	return res, nil
}

// RunBudget executes the strategy until either every group's need is met or
// the cost budget is exhausted — the practical regime where collection
// money runs out before requirements are satisfied. The result reports the
// counts achieved; Fulfilled is true only when all needs were met within
// budget.
func (e *Engine) RunBudget(s Strategy, need []int, budget float64, r *rng.RNG) (*Result, error) {
	if len(e.Sources) == 0 {
		return nil, errors.New("dt: no sources")
	}
	k := e.Sources[0].NumGroups()
	if len(need) != k {
		return nil, fmt.Errorf("dt: need has %d groups, sources have %d", len(need), k)
	}
	remaining := append([]int(nil), need...)
	left := 0
	for _, n := range remaining {
		if n < 0 {
			return nil, errors.New("dt: negative need")
		}
		left += n
	}
	res := &Result{
		Strategy:   s.Name(),
		DrawsBySrc: make([]int, len(e.Sources)),
		Collected:  make([]int, k),
		RowsBySrc:  make([][]int, len(e.Sources)),
	}
	minCost := math.Inf(1)
	for _, src := range e.Sources {
		if c := src.Cost(); c < minCost {
			minCost = c
		}
	}
	for left > 0 && res.TotalCost+minCost <= budget {
		i := s.Next(remaining, res.Draws)
		if i < 0 || i >= len(e.Sources) {
			return nil, fmt.Errorf("dt: strategy %s chose invalid source %d", s.Name(), i)
		}
		if res.TotalCost+e.Sources[i].Cost() > budget {
			// The chosen source is unaffordable; cheaper sources may
			// still be, but a strategy that insists on it is done.
			break
		}
		g, row := e.Sources[i].Draw(r)
		s.Observe(i, g)
		res.Draws++
		res.DrawsBySrc[i]++
		res.TotalCost += e.Sources[i].Cost()
		if g >= 0 && g < k && remaining[g] > 0 {
			remaining[g]--
			left--
			res.Collected[g]++
			if row >= 0 {
				res.RowsBySrc[i] = append(res.RowsBySrc[i], row)
			}
		} else {
			res.Overflow++
		}
	}
	res.Fulfilled = left == 0
	e.observe(res)
	return res, nil
}

// Materialize assembles the collected rows of a run over DatasetSources and
// PartitionedSources into one dataset. Partitioned sources batch their rows
// through AppendRowsTo, fetching each touched partition's pages once.
// Sources that are not row-backed contribute nothing.
func (e *Engine) Materialize(res *Result) *dataset.Dataset {
	var out *dataset.Dataset
	for i, src := range e.Sources {
		switch s := src.(type) {
		case *DatasetSource:
			if out == nil {
				out = dataset.New(s.Data.Schema())
			}
			for _, row := range res.RowsBySrc[i] {
				out.MustAppendRow(s.Data.Row(row)...)
			}
		case *PartitionedSource:
			if out == nil {
				out = dataset.New(s.Data.Schema())
			}
			if err := s.Data.AppendRowsTo(out, res.RowsBySrc[i]); err != nil {
				// Row handles come from Draw over this very source, so a
				// failure here is a programming error, not input.
				panic(fmt.Sprintf("dt: materializing partitioned source %d: %v", i, err))
			}
		}
	}
	return out
}
