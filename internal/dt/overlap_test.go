package dt

import (
	"testing"

	"redi/internal/rng"
)

// overlapInstance builds m sources over a shared universe. Fraction rho of
// each source's members come from a shared core pool; the rest are private.
// Group 1 is the minority (10% of the universe).
func overlapInstance(m, perSource int, rho float64, r *rng.RNG) ([]*UniverseSource, func(int) int, int) {
	universe := m*perSource + 1000
	groupOf := func(id int) int {
		if id%5 == 0 {
			return 1
		}
		return 0
	}
	coreSize := int(rho * float64(perSource))
	core := r.Perm(universe)[:max(coreSize, 0)]
	var sources []*UniverseSource
	used := coreSize * 1 // ids drawn from the core, shared
	for s := 0; s < m; s++ {
		members := append([]int(nil), core...)
		// Private members: a disjoint slab of the universe.
		start := len(core) + s*(perSource-coreSize)
		for i := 0; i < perSource-coreSize; i++ {
			members = append(members, start+i)
		}
		used += perSource - coreSize
		src, err := NewUniverseSource(members, groupOf, 2, 1)
		if err != nil {
			panic(err)
		}
		sources = append(sources, src)
	}
	_ = used
	return sources, groupOf, universe
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestUniverseSourceBasics(t *testing.T) {
	groupOf := func(id int) int { return id % 2 }
	s, err := NewUniverseSource([]int{0, 1, 2, 3}, groupOf, 2, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost() != 2.5 || s.NumGroups() != 2 {
		t.Fatal("metadata wrong")
	}
	counts := s.GroupCounts()
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("GroupCounts = %v", counts)
	}
	probs := s.Probs()
	if probs[0] != 0.5 {
		t.Fatalf("Probs = %v", probs)
	}
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		g, id := s.Draw(r)
		if g != id%2 || id < 0 || id > 3 {
			t.Fatalf("Draw = (%d, %d)", g, id)
		}
	}
}

func TestUniverseSourceValidation(t *testing.T) {
	if _, err := NewUniverseSource(nil, func(int) int { return 0 }, 1, 1); err == nil {
		t.Fatal("empty source accepted")
	}
	if _, err := NewUniverseSource([]int{0}, func(int) int { return 5 }, 2, 1); err == nil {
		t.Fatal("out-of-range group accepted")
	}
}

func TestRunDedupCountsDistinct(t *testing.T) {
	// One source with exactly 3 minority tuples: dedup run must collect
	// each exactly once even though draws repeat.
	members := []int{0, 1, 2, 10, 11, 12, 13, 14, 15, 16}
	groupOf := func(id int) int {
		if id < 3 {
			return 1
		}
		return 0
	}
	s, err := NewUniverseSource(members, groupOf, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Sources: []Source{s}, MaxDraws: 100000}
	strat := NewOverlapAwareColl([]*UniverseSource{s})
	res, err := e.RunDedup(strat, []int{0, 3}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fulfilled || res.Collected[1] != 3 {
		t.Fatalf("collected = %v", res.Collected)
	}
	// The three collected ids must be distinct minority ids.
	ids := map[int]bool{}
	for _, rows := range res.RowsBySrc {
		for _, id := range rows {
			if ids[id] {
				t.Fatalf("duplicate id %d collected", id)
			}
			ids[id] = true
			if id >= 3 {
				t.Fatalf("non-minority id %d collected", id)
			}
		}
	}
}

func TestRunDedupImpossibleCaps(t *testing.T) {
	// Need exceeds the distinct minority tuples available: the run must
	// hit the cap, not spin forever.
	s, err := NewUniverseSource([]int{0, 10, 11}, func(id int) int {
		if id == 0 {
			return 1
		}
		return 0
	}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Sources: []Source{s}, MaxDraws: 500}
	res, err := e.RunDedup(NewOverlapAwareColl([]*UniverseSource{s}), []int{0, 2}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fulfilled || !res.StepsCapped {
		t.Fatalf("impossible dedup need did not cap: %+v", res)
	}
}

func TestOverlapAwareBeatsBlindUnderHighOverlap(t *testing.T) {
	mean := func(aware bool, rho float64) float64 {
		const trials = 10
		total := 0.0
		for s := uint64(0); s < trials; s++ {
			r := rng.New(100 + s)
			sources, _, _ := overlapInstance(4, 400, rho, r)
			var ifaces []Source
			var probs [][]float64
			var costs []float64
			for _, src := range sources {
				ifaces = append(ifaces, src)
				probs = append(probs, src.Probs())
				costs = append(costs, src.Cost())
			}
			e := &Engine{Sources: ifaces, MaxDraws: 2_000_000}
			need := []int{100, 40}
			var strat DedupStrategy
			if aware {
				strat = NewOverlapAwareColl(sources)
			} else {
				strat = BlindAdapter{S: NewRatioColl(probs, costs)}
			}
			res, err := e.RunDedup(strat, need, rng.New(200+s))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Fulfilled {
				t.Fatalf("unfulfilled (aware=%v rho=%v)", aware, rho)
			}
			total += res.TotalCost
		}
		return total / trials
	}
	awareHigh := mean(true, 0.9)
	blindHigh := mean(false, 0.9)
	if awareHigh >= blindHigh {
		t.Fatalf("overlap-aware (%v) should beat blind (%v) at rho=0.9", awareHigh, blindHigh)
	}
	// At zero overlap the two should be comparable.
	awareZero := mean(true, 0)
	blindZero := mean(false, 0)
	if awareZero > blindZero*1.3 {
		t.Fatalf("overlap-aware (%v) much worse than blind (%v) at rho=0", awareZero, blindZero)
	}
}

func TestBlindAdapterDelegates(t *testing.T) {
	inner := NewRandomColl(3, rng.New(4))
	b := BlindAdapter{S: inner}
	if b.Name() != "RandomColl(blind)" {
		t.Fatalf("Name = %q", b.Name())
	}
	if i := b.Next([]int{1}, 0); i < 0 || i > 2 {
		t.Fatalf("Next = %d", i)
	}
	b.ObserveDraw(0, 0, 7, true) // must not panic
}
