package dt

import (
	"errors"
	"fmt"

	"redi/internal/rng"
)

// This file implements the source-overlap extension of tutorial §5: "In the
// real world, data sources may or may not have overlap and it is necessary
// to design algorithms that optimize the integration cost, using the
// information about source overlaps." Sources draw from a shared tuple
// universe; a tuple that was already collected from another source is a
// duplicate and contributes nothing, so overlap-blind strategies overpay.

// UniverseSource is a Source whose tuples are identified within a global
// universe shared with other sources. Draw returns the tuple's universe id
// as the row handle, enabling duplicate detection.
type UniverseSource struct {
	Members []int // universe ids in this source
	groups  []int // group of each member (parallel to Members)
	k       int
	c       float64
}

// NewUniverseSource builds a source over the given universe ids. groupOf
// maps a universe id to its group in [0, k). It returns an error on an
// empty member list.
func NewUniverseSource(members []int, groupOf func(id int) int, k int, cost float64) (*UniverseSource, error) {
	if len(members) == 0 {
		return nil, errors.New("dt: empty universe source")
	}
	s := &UniverseSource{
		Members: append([]int(nil), members...),
		groups:  make([]int, len(members)),
		k:       k,
		c:       cost,
	}
	for i, id := range s.Members {
		g := groupOf(id)
		if g < 0 || g >= k {
			return nil, fmt.Errorf("dt: universe id %d has group %d outside [0,%d)", id, g, k)
		}
		s.groups[i] = g
	}
	return s, nil
}

// Cost implements Source.
func (s *UniverseSource) Cost() float64 { return s.c }

// NumGroups implements Source.
func (s *UniverseSource) NumGroups() int { return s.k }

// Draw implements Source: a uniform member, returning its universe id as
// the row handle.
func (s *UniverseSource) Draw(r *rng.RNG) (int, int) {
	i := r.Intn(len(s.Members))
	return s.groups[i], s.Members[i]
}

// GroupCounts returns the number of members per group.
func (s *UniverseSource) GroupCounts() []int {
	out := make([]int, s.k)
	for _, g := range s.groups {
		out[g]++
	}
	return out
}

// Probs returns the source's group distribution.
func (s *UniverseSource) Probs() []float64 {
	counts := s.GroupCounts()
	out := make([]float64, s.k)
	for g, c := range counts {
		out[g] = float64(c) / float64(len(s.Members))
	}
	return out
}

// DedupStrategy is a Strategy that additionally observes tuple identity, so
// it can reason about duplicates across overlapping sources.
type DedupStrategy interface {
	Name() string
	Next(need []int, step int) int
	// ObserveDraw reports a draw's source, group, universe id, and
	// whether the tuple was fresh (not collected before).
	ObserveDraw(source, group, id int, fresh bool)
}

// RunDedup executes a strategy against overlapping UniverseSources: a drawn
// tuple counts toward its group's need only the first time it is collected
// from any source; repeats are overflow. The result's Collected counts
// distinct useful tuples.
func (e *Engine) RunDedup(s DedupStrategy, need []int, r *rng.RNG) (*Result, error) {
	if len(e.Sources) == 0 {
		return nil, errors.New("dt: no sources")
	}
	k := e.Sources[0].NumGroups()
	if len(need) != k {
		return nil, fmt.Errorf("dt: need has %d groups, sources have %d", len(need), k)
	}
	cap := e.MaxDraws
	if cap == 0 {
		cap = 10_000_000
	}
	remaining := append([]int(nil), need...)
	left := 0
	for _, n := range remaining {
		if n < 0 {
			return nil, errors.New("dt: negative need")
		}
		left += n
	}
	res := &Result{
		Strategy:   s.Name(),
		DrawsBySrc: make([]int, len(e.Sources)),
		Collected:  make([]int, k),
		RowsBySrc:  make([][]int, len(e.Sources)),
	}
	seen := map[int]bool{}
	for left > 0 {
		if res.Draws >= cap {
			res.StepsCapped = true
			return res, nil
		}
		i := s.Next(remaining, res.Draws)
		if i < 0 || i >= len(e.Sources) {
			return nil, fmt.Errorf("dt: strategy %s chose invalid source %d", s.Name(), i)
		}
		g, id := e.Sources[i].Draw(r)
		fresh := !seen[id]
		if fresh {
			// Once fetched, refetching the tuple from any source is
			// a duplicate, whether or not it was kept.
			seen[id] = true
		}
		s.ObserveDraw(i, g, id, fresh)
		res.Draws++
		res.DrawsBySrc[i]++
		res.TotalCost += e.Sources[i].Cost()
		if fresh && g >= 0 && g < k && remaining[g] > 0 {
			remaining[g]--
			left--
			res.Collected[g]++
			res.RowsBySrc[i] = append(res.RowsBySrc[i], id)
		} else {
			res.Overflow++
		}
	}
	res.Fulfilled = true
	return res, nil
}

// OverlapAwareColl is the overlap-aware known-distribution strategy: it
// tracks, per source and group, how many of the source's members have NOT
// yet been collected, and queries the source with the highest expected rate
// of *new* still-needed tuples per unit cost. Membership is known up front
// (the sources' catalogs), so when a tuple is collected anywhere, every
// source containing it sees its fresh pool shrink.
type OverlapAwareColl struct {
	costs     []float64
	size      []int   // members per source
	fresh     [][]int // fresh (uncollected) members per source per group
	container map[int][]containerRef
	collected map[int]bool
}

type containerRef struct{ source, group int }

// NewOverlapAwareColl builds the strategy from the sources' catalogs.
func NewOverlapAwareColl(sources []*UniverseSource) *OverlapAwareColl {
	c := &OverlapAwareColl{
		container: map[int][]containerRef{},
		collected: map[int]bool{},
	}
	for si, s := range sources {
		c.costs = append(c.costs, s.Cost())
		c.size = append(c.size, len(s.Members))
		c.fresh = append(c.fresh, s.GroupCounts())
		for i, id := range s.Members {
			c.container[id] = append(c.container[id], containerRef{source: si, group: s.groups[i]})
		}
	}
	return c
}

// Name implements DedupStrategy.
func (c *OverlapAwareColl) Name() string { return "OverlapAware" }

// ObserveDraw implements DedupStrategy: the first collection of a tuple
// shrinks the fresh pools of every source containing it.
func (c *OverlapAwareColl) ObserveDraw(_, _, id int, fresh bool) {
	if !fresh || c.collected[id] {
		return
	}
	c.collected[id] = true
	for _, ref := range c.container[id] {
		c.fresh[ref.source][ref.group]--
	}
}

// Next implements DedupStrategy.
func (c *OverlapAwareColl) Next(need []int, _ int) int {
	best, bestScore := 0, -1.0
	for i := range c.costs {
		exp := 0.0
		for g, n := range need {
			if n > 0 {
				exp += float64(c.fresh[i][g]) / float64(c.size[i])
			}
		}
		score := exp / c.costs[i]
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// BlindAdapter lifts any overlap-blind Strategy (e.g. RatioColl) into a
// DedupStrategy that ignores tuple identity — the baseline an overlap-aware
// policy is compared against.
type BlindAdapter struct{ S Strategy }

// Name implements DedupStrategy.
func (b BlindAdapter) Name() string { return b.S.Name() + "(blind)" }

// Next implements DedupStrategy.
func (b BlindAdapter) Next(need []int, step int) int { return b.S.Next(need, step) }

// ObserveDraw implements DedupStrategy.
func (b BlindAdapter) ObserveDraw(source, group, _ int, _ bool) { b.S.Observe(source, group) }
