package dt

import "math"

// CouponColl is the known-distribution strategy for unit costs: at every
// step it queries the source with the highest probability of producing a
// tuple from *any* still-needed group, generalizing the coupon-collector
// argument of the VLDB'21 paper. It ignores costs, which makes it optimal
// only when all sources cost the same.
type CouponColl struct {
	// Probs[i][g] is source i's probability of group g.
	Probs [][]float64
}

// NewCouponColl builds the strategy from the sources' true distributions.
func NewCouponColl(probs [][]float64) *CouponColl { return &CouponColl{Probs: probs} }

// Name implements Strategy.
func (c *CouponColl) Name() string { return "CouponColl" }

// Observe implements Strategy (no-op; distributions are known).
func (c *CouponColl) Observe(int, int) {}

// Next implements Strategy.
func (c *CouponColl) Next(need []int, _ int) int {
	best, bestP := 0, -1.0
	for i, p := range c.Probs {
		hit := 0.0
		for g, n := range need {
			if n > 0 {
				hit += p[g]
			}
		}
		if hit > bestP {
			best, bestP = i, hit
		}
	}
	return best
}

// RatioColl is the general known-distribution strategy of the VLDB'21
// paper: it identifies the hardest remaining group — the one with the
// largest expected residual work min_i C_i/P_i(g) × remaining(g) — and
// queries the source with the lowest expected cost per tuple of that group,
// C_i / P_i(g*). Tuples of other needed groups that arrive along the way
// still count, which is what makes the policy efficient in practice.
type RatioColl struct {
	Probs [][]float64
	Costs []float64
}

// NewRatioColl builds the strategy from true distributions and costs.
func NewRatioColl(probs [][]float64, costs []float64) *RatioColl {
	return &RatioColl{Probs: probs, Costs: costs}
}

// Name implements Strategy.
func (c *RatioColl) Name() string { return "RatioColl" }

// Observe implements Strategy (no-op).
func (c *RatioColl) Observe(int, int) {}

// Next implements Strategy.
func (c *RatioColl) Next(need []int, _ int) int {
	// Hardest group: largest remaining expected cost under its best
	// source.
	gStar, worst := -1, -1.0
	for g, n := range need {
		if n == 0 {
			continue
		}
		best := math.Inf(1)
		for i, p := range c.Probs {
			if p[g] > 0 {
				if c := c.Costs[i] / p[g]; c < best {
					best = c
				}
			}
		}
		work := float64(n) * best
		if work > worst {
			gStar, worst = g, work
		}
	}
	if gStar < 0 {
		return 0
	}
	// Cheapest source per expected tuple of gStar.
	best, bestC := 0, math.Inf(1)
	for i, p := range c.Probs {
		if p[gStar] <= 0 {
			continue
		}
		if c := c.Costs[i] / p[gStar]; c < bestC {
			best, bestC = i, c
		}
	}
	return best
}

// ExactDP computes the exact minimum expected cost of fulfilling need from
// sources with the given distributions and costs, by value iteration over
// the residual-need state space. It is exponential in the number of groups
// and is intended as a ground-truth oracle for small instances (experiment
// E1 sanity checks and unit tests). It returns +Inf if some needed group is
// unreachable from every source.
func ExactDP(probs [][]float64, costs []float64, need []int) float64 {
	k := len(need)
	dims := make([]int, k)
	for g, n := range need {
		dims[g] = n + 1
	}
	size := 1
	for _, d := range dims {
		size *= d
	}
	memo := make([]float64, size)
	for i := range memo {
		memo[i] = -1
	}
	idx := func(state []int) int {
		x := 0
		for g := k - 1; g >= 0; g-- {
			x = x*dims[g] + state[g]
		}
		return x
	}

	var solve func(state []int) float64
	solve = func(state []int) float64 {
		total := 0
		for _, n := range state {
			total += n
		}
		if total == 0 {
			return 0
		}
		id := idx(state)
		if memo[id] >= 0 {
			return memo[id]
		}
		memo[id] = math.Inf(1) // guard against re-entry
		best := math.Inf(1)
		for i, p := range probs {
			pHit := 0.0
			exp := 0.0
			for g, n := range state {
				if n > 0 && p[g] > 0 {
					pHit += p[g]
					state[g]--
					exp += p[g] * solve(state)
					state[g]++
				}
			}
			if pHit == 0 {
				continue
			}
			// E = (C + Σ_hit p_g E(s-e_g)) / pHit accounts for the
			// geometric number of misses before a useful draw.
			if v := (costs[i] + exp) / pHit; v < best {
				best = v
			}
		}
		memo[id] = best
		return best
	}
	state := append([]int(nil), need...)
	return solve(state)
}
