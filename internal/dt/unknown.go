package dt

import (
	"math"

	"redi/internal/rng"
)

// RandomColl queries a uniformly random source at every step. It is the
// baseline every adaptive strategy is measured against.
type RandomColl struct {
	NumSources int
	R          *rng.RNG
}

// NewRandomColl builds the baseline over n sources using r for its choices.
func NewRandomColl(n int, r *rng.RNG) *RandomColl { return &RandomColl{NumSources: n, R: r} }

// Name implements Strategy.
func (c *RandomColl) Name() string { return "RandomColl" }

// Observe implements Strategy (no-op).
func (c *RandomColl) Observe(int, int) {}

// Next implements Strategy.
func (c *RandomColl) Next([]int, int) int { return c.R.Intn(c.NumSources) }

// estimates maintains per-source empirical group distributions with a
// uniform Dirichlet prior so that unseen groups keep non-zero probability.
type estimates struct {
	draws []float64   // per-source draw counts
	hits  [][]float64 // per-source per-group hit counts
	prior float64
}

func newEstimates(sources, groups int, prior float64) *estimates {
	e := &estimates{
		draws: make([]float64, sources),
		hits:  make([][]float64, sources),
		prior: prior,
	}
	for i := range e.hits {
		e.hits[i] = make([]float64, groups)
	}
	return e
}

func (e *estimates) observe(source, group int) {
	e.draws[source]++
	if group >= 0 && group < len(e.hits[source]) {
		e.hits[source][group]++
	}
}

// p returns the smoothed estimate of P_source(group).
func (e *estimates) p(source, group int) float64 {
	k := float64(len(e.hits[source]))
	return (e.hits[source][group] + e.prior) / (e.draws[source] + e.prior*k)
}

// usefulness scores a source against the current needs: the estimated
// probability of drawing any still-needed group, with scarce groups
// up-weighted by their remaining counts' share.
func (e *estimates) usefulness(source int, need []int) float64 {
	u := 0.0
	for g, n := range need {
		if n > 0 {
			u += e.p(source, g)
		}
	}
	return u
}

// EpsilonGreedy learns source distributions online: with probability Eps it
// explores a random source, otherwise it queries the source with the best
// estimated usefulness per unit cost.
type EpsilonGreedy struct {
	Costs []float64
	Eps   float64
	R     *rng.RNG
	est   *estimates
}

// NewEpsilonGreedy builds the strategy for sources with the given costs.
func NewEpsilonGreedy(costs []float64, groups int, eps float64, r *rng.RNG) *EpsilonGreedy {
	return &EpsilonGreedy{
		Costs: costs,
		Eps:   eps,
		R:     r,
		est:   newEstimates(len(costs), groups, 1),
	}
}

// Name implements Strategy.
func (c *EpsilonGreedy) Name() string { return "EpsilonGreedy" }

// Observe implements Strategy.
func (c *EpsilonGreedy) Observe(source, group int) { c.est.observe(source, group) }

// Next implements Strategy.
func (c *EpsilonGreedy) Next(need []int, _ int) int {
	if c.R.Bool(c.Eps) {
		return c.R.Intn(len(c.Costs))
	}
	best, bestScore := 0, math.Inf(-1)
	for i := range c.Costs {
		score := c.est.usefulness(i, need) / c.Costs[i]
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// UCBColl is the upper-confidence-bound strategy for unknown distributions,
// the exploration/exploitation approach of the VLDB'21 paper's unknown
// setting: each source's usefulness estimate is inflated by a confidence
// radius that shrinks as the source is sampled, so under-explored sources
// are revisited while clearly useless ones are abandoned quickly.
type UCBColl struct {
	Costs []float64
	est   *estimates
}

// NewUCBColl builds the strategy for sources with the given costs.
func NewUCBColl(costs []float64, groups int) *UCBColl {
	return &UCBColl{Costs: costs, est: newEstimates(len(costs), groups, 1)}
}

// Name implements Strategy.
func (c *UCBColl) Name() string { return "UCBColl" }

// Observe implements Strategy.
func (c *UCBColl) Observe(source, group int) { c.est.observe(source, group) }

// Next implements Strategy.
func (c *UCBColl) Next(need []int, step int) int {
	// Query each source once before trusting any estimate.
	for i, n := range c.est.draws {
		if n == 0 {
			return i
		}
	}
	best, bestScore := 0, math.Inf(-1)
	for i := range c.Costs {
		// Exploration constant 0.25 rather than the classical 2: DT
		// horizons are short (the run ends when the counts are met),
		// so the asymptotically-safe constant over-explores badly as
		// the number of sources grows. See experiment E2.
		bonus := math.Sqrt(0.25 * math.Log(float64(step+1)) / c.est.draws[i])
		score := (c.est.usefulness(i, need) + bonus) / c.Costs[i]
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}
