package dt

import (
	"math"
	"testing"
	"testing/quick"

	"redi/internal/rng"
)

// Property: ExactDP is monotone — raising any need never lowers the
// optimal expected cost.
func TestExactDPMonotoneProperty(t *testing.T) {
	f := func(p8, q8, n8, m8 uint8) bool {
		p := 0.05 + 0.9*float64(p8)/255
		q := 0.05 + 0.9*float64(q8)/255
		probs := [][]float64{{p, 1 - p}, {q, 1 - q}}
		costs := []float64{1, 2}
		n := int(n8 % 5)
		m := int(m8 % 5)
		base := ExactDP(probs, costs, []int{n, m})
		more := ExactDP(probs, costs, []int{n + 1, m})
		return more >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DP optimum never exceeds the expected cost of the
// single-best-source policy, computed in closed form for one group.
func TestExactDPBeatsSingleSourceProperty(t *testing.T) {
	f := func(p8, q8, n8 uint8) bool {
		p := 0.05 + 0.9*float64(p8)/255
		q := 0.05 + 0.9*float64(q8)/255
		probs := [][]float64{{p, 1 - p}, {q, 1 - q}}
		costs := []float64{1, 1.5}
		n := int(n8%6) + 1
		opt := ExactDP(probs, costs, []int{n, 0})
		// Single-source policies: E = n * C_i / P_i(group 0).
		best := math.Min(float64(n)*costs[0]/p, float64(n)*costs[1]/q)
		return opt <= best+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every engine run conserves accounting — draws equal the
// per-source sums, collected totals equal the need when fulfilled, and
// overflow accounts for the rest.
func TestRunAccountingProperty(t *testing.T) {
	f := func(seed uint64, n8, m8 uint8) bool {
		n := int(n8 % 10)
		m := int(m8 % 10)
		sources, probs, costs := twoSources()
		e := &Engine{Sources: sources, MaxDraws: 1_000_000}
		res, err := e.Run(NewRatioColl(probs, costs), []int{n, m}, rng.New(seed))
		if err != nil || !res.Fulfilled {
			return false
		}
		if res.Collected[0] != n || res.Collected[1] != m {
			return false
		}
		sum := 0
		for _, d := range res.DrawsBySrc {
			sum += d
		}
		return sum == res.Draws && res.Overflow == res.Draws-n-m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
