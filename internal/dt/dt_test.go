package dt

import (
	"math"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

// twoSources builds a classic DT instance: source 0 is majority-heavy,
// source 1 is minority-heavy but pricier.
func twoSources() ([]Source, [][]float64, []float64) {
	probs := [][]float64{
		{0.95, 0.05},
		{0.40, 0.60},
	}
	costs := []float64{1, 2}
	return []Source{
		NewDistSource(probs[0], costs[0]),
		NewDistSource(probs[1], costs[1]),
	}, probs, costs
}

func TestEngineFulfills(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	res, err := e.Run(NewRatioColl(probs, costs), []int{50, 50}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fulfilled {
		t.Fatal("run did not fulfill")
	}
	if res.Collected[0] != 50 || res.Collected[1] != 50 {
		t.Fatalf("collected = %v", res.Collected)
	}
	if res.Draws != res.DrawsBySrc[0]+res.DrawsBySrc[1] {
		t.Fatal("draw accounting inconsistent")
	}
	wantCost := float64(res.DrawsBySrc[0])*1 + float64(res.DrawsBySrc[1])*2
	if math.Abs(res.TotalCost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v", res.TotalCost, wantCost)
	}
	if res.Overflow != res.Draws-100 {
		t.Fatalf("overflow = %d, draws = %d", res.Overflow, res.Draws)
	}
}

func TestEngineZeroNeed(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	res, err := e.Run(NewRatioColl(probs, costs), []int{0, 0}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Draws != 0 || !res.Fulfilled {
		t.Fatalf("zero-need run drew %d", res.Draws)
	}
}

func TestEngineErrors(t *testing.T) {
	e := &Engine{}
	if _, err := e.Run(NewRandomColl(1, rng.New(1)), []int{1}, rng.New(1)); err == nil {
		t.Fatal("no sources accepted")
	}
	sources, _, _ := twoSources()
	e = &Engine{Sources: sources}
	if _, err := e.Run(NewRandomColl(2, rng.New(1)), []int{1}, rng.New(1)); err == nil {
		t.Fatal("need length mismatch accepted")
	}
	if _, err := e.Run(NewRandomColl(2, rng.New(1)), []int{-1, 0}, rng.New(1)); err == nil {
		t.Fatal("negative need accepted")
	}
}

func TestEngineDrawCap(t *testing.T) {
	// A source that never yields group 1.
	e := &Engine{
		Sources:  []Source{NewDistSource([]float64{1, 0}, 1)},
		MaxDraws: 100,
	}
	res, err := e.Run(NewRandomColl(1, rng.New(1)), []int{0, 5}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fulfilled || !res.StepsCapped || res.Draws != 100 {
		t.Fatalf("cap handling wrong: %+v", res)
	}
}

func TestRatioCollBeatsRandom(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	need := []int{20, 100} // minority-heavy requirement

	avgCost := func(mk func(i uint64) Strategy) float64 {
		total := 0.0
		const trials = 20
		for i := uint64(0); i < trials; i++ {
			res, err := e.Run(mk(i), need, rng.New(100+i))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Fulfilled {
				t.Fatal("unfulfilled run")
			}
			total += res.TotalCost
		}
		return total / trials
	}

	ratio := avgCost(func(uint64) Strategy { return NewRatioColl(probs, costs) })
	random := avgCost(func(i uint64) Strategy { return NewRandomColl(2, rng.New(999+i)) })
	if ratio >= random {
		t.Fatalf("RatioColl (%v) should beat RandomColl (%v)", ratio, random)
	}
}

func TestCouponCollPrefersUsefulSource(t *testing.T) {
	_, probs, _ := twoSources()
	c := NewCouponColl(probs)
	// Only group 1 needed: source 1 has higher P(group 1).
	if got := c.Next([]int{0, 10}, 0); got != 1 {
		t.Fatalf("CouponColl chose %d, want 1", got)
	}
	// Only group 0 needed: source 0 wins.
	if got := c.Next([]int{10, 0}, 0); got != 0 {
		t.Fatalf("CouponColl chose %d, want 0", got)
	}
}

func TestRatioCollFocusesHardGroup(t *testing.T) {
	_, probs, costs := twoSources()
	c := NewRatioColl(probs, costs)
	// Group 1 is the hard group; cheapest per expected group-1 tuple:
	// source 0: 1/0.05 = 20, source 1: 2/0.6 = 3.33 -> source 1.
	if got := c.Next([]int{5, 5}, 0); got != 1 {
		t.Fatalf("RatioColl chose %d, want 1", got)
	}
}

func TestExactDPSingleSourceSingleGroup(t *testing.T) {
	// One source, P(g0)=0.5, cost 1, need 1: E = 1/0.5 = 2.
	got := ExactDP([][]float64{{0.5, 0.5}}, []float64{1}, []int{1, 0})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("DP = %v, want 2", got)
	}
	// Need 2 of group 0: E = 4.
	got = ExactDP([][]float64{{0.5, 0.5}}, []float64{1}, []int{2, 0})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("DP = %v, want 4", got)
	}
	// Need one of each: E[draws] for collecting both coupons at p=1/2
	// each is 3.
	got = ExactDP([][]float64{{0.5, 0.5}}, []float64{1}, []int{1, 1})
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("DP = %v, want 3", got)
	}
}

func TestExactDPUnreachable(t *testing.T) {
	got := ExactDP([][]float64{{1, 0}}, []float64{1}, []int{0, 1})
	if !math.IsInf(got, 1) {
		t.Fatalf("DP = %v, want +Inf", got)
	}
}

func TestRatioCollNearOptimal(t *testing.T) {
	// On a small instance, RatioColl's empirical cost should be within
	// 30% of the DP optimum.
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	need := []int{3, 5}
	opt := ExactDP(probs, costs, need)
	total := 0.0
	const trials = 300
	for i := uint64(0); i < trials; i++ {
		res, err := e.Run(NewRatioColl(probs, costs), need, rng.New(i))
		if err != nil {
			t.Fatal(err)
		}
		total += res.TotalCost
	}
	emp := total / trials
	if emp > 1.3*opt {
		t.Fatalf("RatioColl mean cost %v vs optimal %v", emp, opt)
	}
	if emp < opt*0.7 {
		t.Fatalf("empirical cost %v implausibly below optimum %v", emp, opt)
	}
}

func TestUCBApproachesKnownDistCost(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	need := []int{30, 120}

	mean := func(mk func(i uint64) Strategy) float64 {
		total := 0.0
		const trials = 15
		for i := uint64(0); i < trials; i++ {
			res, err := e.Run(mk(i), need, rng.New(2000+i))
			if err != nil {
				t.Fatal(err)
			}
			total += res.TotalCost
		}
		return total / trials
	}
	known := mean(func(uint64) Strategy { return NewRatioColl(probs, costs) })
	ucb := mean(func(uint64) Strategy { return NewUCBColl(costs, 2) })
	random := mean(func(i uint64) Strategy { return NewRandomColl(2, rng.New(500+i)) })
	if ucb >= random {
		t.Fatalf("UCB (%v) should beat random (%v)", ucb, random)
	}
	if ucb > 1.6*known {
		t.Fatalf("UCB (%v) too far from known-dist (%v)", ucb, known)
	}
}

func TestEpsilonGreedyLearns(t *testing.T) {
	sources, _, costs := twoSources()
	e := &Engine{Sources: sources}
	need := []int{10, 150}
	res, err := e.Run(NewEpsilonGreedy(costs, 2, 0.1, rng.New(7)), need, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fulfilled {
		t.Fatal("unfulfilled")
	}
	// The minority-heavy source must dominate the draws.
	if res.DrawsBySrc[1] <= res.DrawsBySrc[0] {
		t.Fatalf("EpsilonGreedy draws = %v, should favor source 1", res.DrawsBySrc)
	}
}

func TestDatasetSourceAndMaterialize(t *testing.T) {
	cfg := synth.DefaultPopulation(0)
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        cfg,
		NumSources:        3,
		RowsPerSource:     400,
		SkewConcentration: 2,
	}, rng.New(9))

	var sources []Source
	available := make([]bool, len(set.Groups))
	for i, d := range set.Sources {
		g := d.GroupBy(set.SensitiveNames...)
		s, err := NewDatasetSource(d, g, set.Groups, set.Costs[i])
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, s)
		for gi := range set.Groups {
			if set.GroupDists[i][gi] > 0 {
				available[gi] = true
			}
		}
	}
	e := &Engine{Sources: sources, MaxDraws: 500_000}
	// Only request groups that exist in at least one source: a group can
	// be missing from every finite source draw.
	need := make([]int, len(set.Groups))
	requested := 0
	for i := range need {
		if available[i] {
			need[i] = 5
			requested++
		}
	}
	if requested == 0 {
		t.Fatal("no groups available in any source")
	}
	res, err := e.Run(NewUCBColl(set.Costs, len(set.Groups)), need, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fulfilled {
		t.Fatalf("unfulfilled: collected %v", res.Collected)
	}
	got := e.Materialize(res)
	want := 0
	for _, n := range need {
		want += n
	}
	if got.NumRows() != want {
		t.Fatalf("materialized %d rows, want %d", got.NumRows(), want)
	}
	// Group counts of the materialized data must match the needs.
	mg := got.GroupBy(set.SensitiveNames...)
	for gi, k := range set.Groups {
		if need[gi] > 0 && mg.Count(k) != need[gi] {
			t.Fatalf("group %s materialized %d, want %d", k, mg.Count(k), need[gi])
		}
	}
}

func TestDatasetSourceEmpty(t *testing.T) {
	d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "g", Kind: dataset.Categorical}))
	g := d.GroupBy("g")
	if _, err := NewDatasetSource(d, g, nil, 1); err == nil {
		t.Fatal("empty dataset source accepted")
	}
}

func TestRunRange(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	// Group 0 requires nothing (lo=0) but has headroom (hi=100): while
	// the strategy hunts group-1 tuples, incidental group-0 draws must
	// be absorbed rather than discarded.
	lo := []int{0, 30}
	hi := []int{100, 30}
	res, err := e.RunRange(NewRatioColl(probs, costs), lo, hi, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fulfilled {
		t.Fatal("unfulfilled")
	}
	for g := range lo {
		if res.Collected[g] < lo[g] || res.Collected[g] > hi[g] {
			t.Fatalf("group %d collected %d outside [%d,%d]", g, res.Collected[g], lo[g], hi[g])
		}
	}
	if res.Collected[0] == 0 {
		t.Fatal("range semantics unused: no incidental group-0 tuples were absorbed")
	}
}

func TestRunRangeValidation(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	if _, err := e.RunRange(NewRatioColl(probs, costs), []int{5, 5}, []int{4, 5}, rng.New(1)); err == nil {
		t.Fatal("lo > hi accepted")
	}
	if _, err := e.RunRange(NewRatioColl(probs, costs), []int{5}, []int{5}, rng.New(1)); err == nil {
		t.Fatal("wrong group count accepted")
	}
}

func TestRunMulti(t *testing.T) {
	// Intersectional combos over sex {F, M} x race {W, NW}:
	// combo 0 = F/W, 1 = F/NW, 2 = M/W, 3 = M/NW.
	combos := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	probs := [][]float64{
		{0.45, 0.05, 0.45, 0.05}, // white-heavy source
		{0.10, 0.40, 0.10, 0.40}, // non-white-heavy source
	}
	costs := []float64{1, 1}
	sources := []Source{NewDistSource(probs[0], 1), NewDistSource(probs[1], 1)}
	e := &Engine{Sources: sources}
	q := &MultiQuery{
		Needs:       [][]int{{30, 30}, {30, 30}}, // 30 F, 30 M; 30 W, 30 NW
		ComboValues: combos,
	}
	res, err := e.RunMulti("GreedyMulti", q, GreedyMultiChooser(q, probs, costs), rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fulfilled {
		t.Fatal("unfulfilled")
	}
	// Verify each attribute-value requirement from the per-combo counts.
	attrTotals := [][]int{{0, 0}, {0, 0}}
	for g, n := range res.Collected {
		for a, v := range combos[g] {
			attrTotals[a][v] += n
		}
	}
	for a := range attrTotals {
		for v := range attrTotals[a] {
			if attrTotals[a][v] < 30 {
				t.Fatalf("attr %d value %d total %d < 30", a, v, attrTotals[a][v])
			}
		}
	}

	// Greedy should not be worse than random on average.
	meanCost := func(mk func(i uint64) MultiChooser) float64 {
		total := 0.0
		const trials = 10
		for i := uint64(0); i < trials; i++ {
			r, err := e.RunMulti("m", q, mk(i), rng.New(3000+i))
			if err != nil {
				t.Fatal(err)
			}
			total += r.TotalCost
		}
		return total / trials
	}
	greedy := meanCost(func(uint64) MultiChooser { return GreedyMultiChooser(q, probs, costs) })
	random := meanCost(func(i uint64) MultiChooser { return RandomMultiChooser(2, rng.New(700+i)) })
	if greedy > random*1.1 {
		t.Fatalf("greedy multi (%v) clearly worse than random (%v)", greedy, random)
	}
}

func TestRunDeterministic(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	a, err := e.Run(NewRatioColl(probs, costs), []int{10, 10}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(NewRatioColl(probs, costs), []int{10, 10}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCost != b.TotalCost || a.Draws != b.Draws {
		t.Fatal("identical seeds produced different runs")
	}
}
