package dt

import (
	"errors"
	"fmt"

	"redi/internal/rng"
)

// RunRange executes a strategy under range count requirements (tutorial §5,
// "Extensions of Distribution Tailoring"): each group g must reach at least
// lo[g] tuples, and tuples beyond hi[g] are discarded. The run finishes when
// every group has reached its lower bound; groups between lo and hi keep
// absorbing incidental draws instead of discarding them.
func (e *Engine) RunRange(s Strategy, lo, hi []int, r *rng.RNG) (*Result, error) {
	if len(lo) != len(hi) {
		return nil, errors.New("dt: lo/hi length mismatch")
	}
	for g := range lo {
		if lo[g] > hi[g] {
			return nil, fmt.Errorf("dt: group %d has lo %d > hi %d", g, lo[g], hi[g])
		}
	}
	if len(e.Sources) == 0 {
		return nil, errors.New("dt: no sources")
	}
	k := e.Sources[0].NumGroups()
	if len(lo) != k {
		return nil, fmt.Errorf("dt: need has %d groups, sources have %d", len(lo), k)
	}
	cap := e.MaxDraws
	if cap == 0 {
		cap = 10_000_000
	}

	remaining := append([]int(nil), lo...)
	left := 0
	for _, n := range remaining {
		left += n
	}
	res := &Result{
		Strategy:   s.Name(),
		DrawsBySrc: make([]int, len(e.Sources)),
		Collected:  make([]int, k),
		RowsBySrc:  make([][]int, len(e.Sources)),
	}
	for left > 0 {
		if res.Draws >= cap {
			res.StepsCapped = true
			return res, nil
		}
		i := s.Next(remaining, res.Draws)
		if i < 0 || i >= len(e.Sources) {
			return nil, fmt.Errorf("dt: strategy %s chose invalid source %d", s.Name(), i)
		}
		g, row := e.Sources[i].Draw(r)
		s.Observe(i, g)
		res.Draws++
		res.DrawsBySrc[i]++
		res.TotalCost += e.Sources[i].Cost()
		switch {
		case g >= 0 && g < k && remaining[g] > 0:
			remaining[g]--
			left--
			res.Collected[g]++
			if row >= 0 {
				res.RowsBySrc[i] = append(res.RowsBySrc[i], row)
			}
		case g >= 0 && g < k && res.Collected[g] < hi[g]:
			// Lower bound met but upper bound not reached: keep it.
			res.Collected[g]++
			if row >= 0 {
				res.RowsBySrc[i] = append(res.RowsBySrc[i], row)
			}
		default:
			res.Overflow++
		}
	}
	res.Fulfilled = true
	return res, nil
}

// MultiQuery states per-attribute count requirements (tutorial §5): e.g.
// 100 of sex=F and 100 of sex=M as well as 100 of race=W and 100 of
// race=NW. One tuple contributes simultaneously to one value requirement of
// every attribute. Groups remain intersectional at the source level;
// ComboValues maps each intersectional group to its attribute values.
type MultiQuery struct {
	// Needs[a][v] is the required count of value v on attribute a.
	Needs [][]int
	// ComboValues[g][a] is intersectional group g's value index on
	// attribute a.
	ComboValues [][]int
}

// gain returns how many unmet attribute-value requirements a tuple of
// intersectional group g would advance.
func (q *MultiQuery) gain(remaining [][]int, g int) int {
	n := 0
	for a, v := range q.ComboValues[g] {
		if remaining[a][v] > 0 {
			n++
		}
	}
	return n
}

func (q *MultiQuery) remainingTotal(remaining [][]int) int {
	n := 0
	for _, attr := range remaining {
		for _, v := range attr {
			n += v
		}
	}
	return n
}

// MultiChooser selects the next source under per-attribute requirements.
type MultiChooser func(remaining [][]int, step int) int

// GreedyMultiChooser is the known-distribution policy for MultiQuery: pick
// the source with the highest expected requirement progress per unit cost,
// where a tuple of group g advances gain(g) requirements.
func GreedyMultiChooser(q *MultiQuery, probs [][]float64, costs []float64) MultiChooser {
	return func(remaining [][]int, _ int) int {
		best, bestScore := 0, -1.0
		for i, p := range probs {
			exp := 0.0
			for g := range q.ComboValues {
				if gain := q.gain(remaining, g); gain > 0 {
					exp += p[g] * float64(gain)
				}
			}
			score := exp / costs[i]
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		return best
	}
}

// RandomMultiChooser picks a uniformly random source.
func RandomMultiChooser(n int, r *rng.RNG) MultiChooser {
	return func([][]int, int) int { return r.Intn(n) }
}

// RunMulti executes a MultiQuery until every attribute-value requirement is
// met or the draw cap is reached. The returned Result's Collected is
// per-intersectional-group.
func (e *Engine) RunMulti(name string, q *MultiQuery, choose MultiChooser, r *rng.RNG) (*Result, error) {
	if len(e.Sources) == 0 {
		return nil, errors.New("dt: no sources")
	}
	k := e.Sources[0].NumGroups()
	if len(q.ComboValues) != k {
		return nil, fmt.Errorf("dt: query has %d combos, sources have %d groups", len(q.ComboValues), k)
	}
	cap := e.MaxDraws
	if cap == 0 {
		cap = 10_000_000
	}
	remaining := make([][]int, len(q.Needs))
	for a := range q.Needs {
		remaining[a] = append([]int(nil), q.Needs[a]...)
	}
	res := &Result{
		Strategy:   name,
		DrawsBySrc: make([]int, len(e.Sources)),
		Collected:  make([]int, k),
		RowsBySrc:  make([][]int, len(e.Sources)),
	}
	for q.remainingTotal(remaining) > 0 {
		if res.Draws >= cap {
			res.StepsCapped = true
			return res, nil
		}
		i := choose(remaining, res.Draws)
		if i < 0 || i >= len(e.Sources) {
			return nil, fmt.Errorf("dt: chooser returned invalid source %d", i)
		}
		g, row := e.Sources[i].Draw(r)
		res.Draws++
		res.DrawsBySrc[i]++
		res.TotalCost += e.Sources[i].Cost()
		if g < 0 || g >= k || q.gain(remaining, g) == 0 {
			res.Overflow++
			continue
		}
		for a, v := range q.ComboValues[g] {
			if remaining[a][v] > 0 {
				remaining[a][v]--
			}
		}
		res.Collected[g]++
		if row >= 0 {
			res.RowsBySrc[i] = append(res.RowsBySrc[i], row)
		}
	}
	res.Fulfilled = true
	return res, nil
}
