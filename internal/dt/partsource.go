package dt

import (
	"errors"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// PartitionedSource is a Source backed by a partitioned (possibly
// out-of-core) view: Draw samples a row uniformly with replacement and
// reports its group under the shared global key order, exactly like
// DatasetSource, but the rows live in column pages and are only
// materialized when the engine assembles the collected sample.
type PartitionedSource struct {
	Data  *dataset.Partitioned
	byRow []int
	k     int
	c     float64
}

// NewPartitionedSource wraps a partitioned view as a source. groups must be
// the view's GroupBy index over the sensitive attributes (any worker
// count — the index is bit-identical), and keys the global group-key order
// shared by all sources. cost is the per-draw cost.
func NewPartitionedSource(pd *dataset.Partitioned, groups *dataset.Groups, keys []dataset.GroupKey, cost float64) (*PartitionedSource, error) {
	if pd.NumRows() == 0 {
		return nil, errors.New("dt: empty partitioned source")
	}
	pos := map[dataset.GroupKey]int{}
	for i, k := range keys {
		pos[k] = i
	}
	toGlobal := make([]int, groups.NumGroups())
	for gi := range toGlobal {
		global, ok := pos[groups.Key(gi)]
		if !ok {
			global = -1
		}
		toGlobal[gi] = global
	}
	s := &PartitionedSource{Data: pd, byRow: make([]int, pd.NumRows()), k: len(keys), c: cost}
	for r := range s.byRow {
		gi := groups.ByRow[r]
		if gi < 0 {
			s.byRow[r] = -1
			continue
		}
		s.byRow[r] = toGlobal[gi]
	}
	return s, nil
}

// Cost returns the per-draw cost.
func (s *PartitionedSource) Cost() float64 { return s.c }

// NumGroups returns the number of global groups.
func (s *PartitionedSource) NumGroups() int { return s.k }

// Draw samples one row with replacement; rows outside the global group set
// are re-drawn, as in DatasetSource.
func (s *PartitionedSource) Draw(r *rng.RNG) (int, int) {
	for tries := 0; tries < 10000; tries++ {
		row := r.Intn(s.Data.NumRows())
		if g := s.byRow[row]; g >= 0 {
			return g, row
		}
	}
	panic("dt: source has no rows in the global group set")
}
