package dt

import (
	"testing"

	"redi/internal/rng"
)

func TestRunBudgetStopsAtBudget(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	// A budget far too small to fulfill the need.
	res, err := e.RunBudget(NewRatioColl(probs, costs), []int{100, 100}, 50, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fulfilled {
		t.Fatal("tiny budget fulfilled the need")
	}
	if res.TotalCost > 50 {
		t.Fatalf("cost %v exceeded budget 50", res.TotalCost)
	}
	if res.Draws == 0 {
		t.Fatal("no draws under a positive budget")
	}
}

func TestRunBudgetFulfillsWhenAmple(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	res, err := e.RunBudget(NewRatioColl(probs, costs), []int{10, 10}, 1e6, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fulfilled {
		t.Fatalf("ample budget unfulfilled: %v", res.Collected)
	}
	if res.Collected[0] != 10 || res.Collected[1] != 10 {
		t.Fatalf("collected = %v", res.Collected)
	}
}

func TestRunBudgetPartialProgressIsMonotone(t *testing.T) {
	sources, probs, costs := twoSources()
	e := &Engine{Sources: sources}
	need := []int{50, 50}
	prev := 0
	for _, budget := range []float64{20, 80, 320, 1280} {
		res, err := e.RunBudget(NewRatioColl(probs, costs), need, budget, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Collected[0] + res.Collected[1]
		if got < prev {
			t.Fatalf("coverage regressed with larger budget: %d -> %d", prev, got)
		}
		prev = got
	}
}

func TestRunBudgetValidation(t *testing.T) {
	e := &Engine{}
	if _, err := e.RunBudget(NewRandomColl(1, rng.New(1)), []int{1}, 10, rng.New(1)); err == nil {
		t.Fatal("no sources accepted")
	}
	sources, probs, costs := twoSources()
	e = &Engine{Sources: sources}
	if _, err := e.RunBudget(NewRatioColl(probs, costs), []int{1}, 10, rng.New(1)); err == nil {
		t.Fatal("group mismatch accepted")
	}
	if _, err := e.RunBudget(NewRatioColl(probs, costs), []int{-1, 0}, 10, rng.New(1)); err == nil {
		t.Fatal("negative need accepted")
	}
}
