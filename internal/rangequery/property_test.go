package rangequery

import (
	"testing"
	"testing/quick"

	"redi/internal/dataset"
)

// Property: for arbitrary small score/group data and any bound, the
// rewritten range satisfies the bound, its similarity is in [0,1], and an
// already-fair query is returned unchanged (similarity 1).
func TestFairRewriteProperty(t *testing.T) {
	f := func(scores []uint8, eps8 uint8) bool {
		if len(scores) < 4 {
			return true
		}
		if len(scores) > 40 {
			scores = scores[:40]
		}
		d := dataset.New(dataset.NewSchema(
			dataset.Attribute{Name: "s", Kind: dataset.Numeric},
			dataset.Attribute{Name: "g", Kind: dataset.Categorical},
		))
		for i, sc := range scores {
			grp := "a"
			if sc%3 == 0 {
				grp = "b"
			}
			d.MustAppendRow(dataset.Num(float64(sc)), dataset.Cat(grp))
			_ = i
		}
		ix, err := NewIndex(d, "s", []string{"g"})
		if err != nil {
			return true // single-group or empty data; nothing to check
		}
		eps := int(eps8 % 10)
		lo, hi := 50.0, 200.0
		res, err := ix.FairestSimilarRange(lo, hi, eps)
		if err != nil {
			return false
		}
		if res.Disparity > eps {
			return false
		}
		if res.Similarity < 0 || res.Similarity > 1 {
			return false
		}
		orig := ix.Query(lo, hi)
		if orig.Disparity <= eps && res.Similarity != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: CoverageRelax never shrinks the query interval and, when it
// succeeds, meets every count.
func TestCoverageRelaxProperty(t *testing.T) {
	f := func(scores []uint8, minCount8 uint8) bool {
		if len(scores) < 6 {
			return true
		}
		if len(scores) > 40 {
			scores = scores[:40]
		}
		d := dataset.New(dataset.NewSchema(
			dataset.Attribute{Name: "s", Kind: dataset.Numeric},
			dataset.Attribute{Name: "g", Kind: dataset.Categorical},
		))
		for _, sc := range scores {
			grp := "a"
			if sc%2 == 0 {
				grp = "b"
			}
			d.MustAppendRow(dataset.Num(float64(sc)), dataset.Cat(grp))
		}
		ix, err := NewIndex(d, "s", []string{"g"})
		if err != nil || len(ix.Groups) < 2 {
			return true
		}
		min := int(minCount8 % 4)
		need := make([]int, len(ix.Groups))
		for g := range need {
			need[g] = min
		}
		orig := ix.Query(100, 150)
		res, err := ix.CoverageRelax(100, 150, need)
		if err != nil {
			return true // unsatisfiable on this draw
		}
		for g, c := range res.Counts {
			if c < need[g] {
				return false
			}
			if c < orig.Counts[g] {
				return false // relaxation must not lose rows
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
