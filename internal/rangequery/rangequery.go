// Package rangequery implements fairness-aware range queries (Shetiya,
// Swift, Asudeh, Das, ICDE 2022) and coverage-based query rewriting
// (Accinelli et al., EDBT workshops 2020/21), the §5 "Fairness-aware Query
// Answering" toolbox of the tutorial.
//
// Given a selection query `attr BETWEEN lo AND hi` whose result is
// demographically skewed, FairestSimilarRange returns the most similar
// range (by Jaccard similarity of the result sets) whose result satisfies a
// disparity bound on group counts. CoverageRelax instead minimally expands
// the range until every group reaches a required count.
package rangequery

import (
	"errors"
	"fmt"
	"sort"

	"redi/internal/dataset"
)

// row is one record eligible for range queries: its attribute value and
// group index.
type row struct {
	val   float64
	group int
}

// Index is a prepared fairness-aware range-query structure over one numeric
// attribute and one demographic grouping: rows sorted by value with
// per-group prefix counts, so any candidate range's group histogram is
// O(groups) and its result-set similarity to the query is O(1).
type Index struct {
	Attr   string
	Groups []dataset.GroupKey

	rows   []row
	prefix [][]int // prefix[i][g]: count of group g among rows[0..i)
}

// NewIndex prepares the structure over d's numeric attribute attr grouped
// by the categorical sensitive attributes. Rows with a null attribute or
// null group are excluded. It returns an error when nothing remains.
func NewIndex(d *dataset.Dataset, attr string, sensitive []string) (*Index, error) {
	groups := d.GroupBy(sensitive...)
	vals, nulls := d.NumericFull(attr)
	ix := &Index{Attr: attr, Groups: groups.Keys()}
	for r := 0; r < d.NumRows(); r++ {
		if nulls[r] || groups.ByRow[r] < 0 {
			continue
		}
		ix.rows = append(ix.rows, row{val: vals[r], group: int(groups.ByRow[r])})
	}
	if len(ix.rows) == 0 {
		return nil, errors.New("rangequery: no usable rows")
	}
	sort.Slice(ix.rows, func(a, b int) bool { return ix.rows[a].val < ix.rows[b].val })
	k := len(ix.Groups)
	ix.prefix = make([][]int, len(ix.rows)+1)
	ix.prefix[0] = make([]int, k)
	for i, rw := range ix.rows {
		next := make([]int, k)
		copy(next, ix.prefix[i])
		next[rw.group]++
		ix.prefix[i+1] = next
	}
	return ix, nil
}

// NumRows returns the number of indexed rows.
func (ix *Index) NumRows() int { return len(ix.rows) }

// span returns the half-open row interval [i, j) containing values in
// [lo, hi].
func (ix *Index) span(lo, hi float64) (int, int) {
	i := sort.Search(len(ix.rows), func(a int) bool { return ix.rows[a].val >= lo })
	j := sort.Search(len(ix.rows), func(a int) bool { return ix.rows[a].val > hi })
	return i, j
}

// counts returns the per-group counts of rows[i:j].
func (ix *Index) counts(i, j int) []int {
	k := len(ix.Groups)
	out := make([]int, k)
	for g := 0; g < k; g++ {
		out[g] = ix.prefix[j][g] - ix.prefix[i][g]
	}
	return out
}

// disparity is the max−min spread of group counts.
func disparity(counts []int) int {
	if len(counts) == 0 {
		return 0
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return max - min
}

// Result describes a (possibly rewritten) range and its demographics.
type Result struct {
	Lo, Hi float64
	// Counts are per-group result counts aligned with Index.Groups.
	Counts []int
	// Disparity is max−min of Counts.
	Disparity int
	// Similarity is the Jaccard similarity between this range's result
	// set and the original query's result set (1 for the query itself).
	Similarity float64
	// Size is the total result count.
	Size int
}

func (ix *Index) result(i, j, qi, qj int) Result {
	counts := ix.counts(i, j)
	res := Result{Counts: counts, Disparity: disparity(counts)}
	for _, c := range counts {
		res.Size += c
	}
	// Jaccard over row intervals.
	interLo, interHi := maxInt(i, qi), minInt(j, qj)
	inter := maxInt(0, interHi-interLo)
	union := (j - i) + (qj - qi) - inter
	if union == 0 {
		res.Similarity = 1
	} else {
		res.Similarity = float64(inter) / float64(union)
	}
	if i < j {
		res.Lo, res.Hi = ix.rows[i].val, ix.rows[j-1].val
	}
	return res
}

// Query evaluates the original range without rewriting.
func (ix *Index) Query(lo, hi float64) Result {
	i, j := ix.span(lo, hi)
	res := ix.result(i, j, i, j)
	res.Lo, res.Hi = lo, hi
	return res
}

// FairestSimilarRange returns the range whose result set is most similar
// (Jaccard) to the query's while keeping group-count disparity at most eps.
// The empty range always qualifies, so a solution always exists; ties
// prefer larger results. The search exactly enumerates all O(n²) row
// intervals, matching the ICDE'22 problem statement (their contribution is
// a faster sweep for the single-predicate case; see DESIGN.md).
func (ix *Index) FairestSimilarRange(lo, hi float64, eps int) (Result, error) {
	if eps < 0 {
		return Result{}, fmt.Errorf("rangequery: negative disparity bound %d", eps)
	}
	qi, qj := ix.span(lo, hi)
	n := len(ix.rows)
	best := ix.result(qi, qi, qi, qj) // empty range fallback
	for i := 0; i <= n; i++ {
		for j := i; j <= n; j++ {
			counts := ix.counts(i, j)
			if disparity(counts) > eps {
				continue
			}
			cand := ix.result(i, j, qi, qj)
			if cand.Similarity > best.Similarity ||
				(cand.Similarity == best.Similarity && cand.Size > best.Size) {
				best = cand
			}
		}
	}
	return best, nil
}

// CoverageRelax minimally expands the query range until every group g has
// at least minCounts[g] rows (coverage-based rewriting). Expansion proceeds
// by repeatedly adding the adjacent row (left or right) that is closest in
// value to the current boundary. It returns an error if the requirement is
// unsatisfiable even over the full data, along with the full-range result.
func (ix *Index) CoverageRelax(lo, hi float64, minCounts []int) (Result, error) {
	if len(minCounts) != len(ix.Groups) {
		return Result{}, fmt.Errorf("rangequery: minCounts has %d groups, index has %d",
			len(minCounts), len(ix.Groups))
	}
	qi, qj := ix.span(lo, hi)
	i, j := qi, qj
	satisfied := func() bool {
		counts := ix.counts(i, j)
		for g, c := range counts {
			if c < minCounts[g] {
				return false
			}
		}
		return true
	}
	for !satisfied() {
		canLeft := i > 0
		canRight := j < len(ix.rows)
		switch {
		case !canLeft && !canRight:
			res := ix.result(i, j, qi, qj)
			return res, errors.New("rangequery: coverage requirement unsatisfiable on this data")
		case !canLeft:
			j++
		case !canRight:
			i--
		default:
			// Take the value closer to the current range boundary.
			dl := boundaryLo(ix, i) - ix.rows[i-1].val
			dr := ix.rows[j].val - boundaryHi(ix, j)
			if dl <= dr {
				i--
			} else {
				j++
			}
		}
	}
	return ix.result(i, j, qi, qj), nil
}

func boundaryLo(ix *Index, i int) float64 {
	if i < len(ix.rows) {
		return ix.rows[i].val
	}
	return ix.rows[len(ix.rows)-1].val
}

func boundaryHi(ix *Index, j int) float64 {
	if j > 0 {
		return ix.rows[j-1].val
	}
	return ix.rows[0].val
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
