package rangequery

import (
	"testing"

	"redi/internal/dataset"
)

// build constructs a dataset of (score, group) rows from parallel slices.
func build(t *testing.T, scores []float64, groups []string) *dataset.Dataset {
	t.Helper()
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "score", Kind: dataset.Numeric, Role: dataset.Feature},
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	for i := range scores {
		d.MustAppendRow(dataset.Num(scores[i]), dataset.Cat(groups[i]))
	}
	return d
}

// skewed builds data where low scores are group a, high scores group b:
// a query over low scores is maximally unfair.
func skewed(t *testing.T) *Index {
	scores := make([]float64, 0, 40)
	groups := make([]string, 0, 40)
	for i := 0; i < 20; i++ {
		scores = append(scores, float64(i))
		groups = append(groups, "a")
	}
	for i := 20; i < 40; i++ {
		scores = append(scores, float64(i))
		groups = append(groups, "b")
	}
	ix, err := NewIndex(build(t, scores, groups), "score", []string{"grp"})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestQueryCounts(t *testing.T) {
	ix := skewed(t)
	res := ix.Query(0, 9)
	if res.Size != 10 || res.Counts[0] != 10 || res.Counts[1] != 0 {
		t.Fatalf("query result = %+v", res)
	}
	if res.Disparity != 10 || res.Similarity != 1 {
		t.Fatalf("query metrics = %+v", res)
	}
}

func TestFairRewriteReducesDisparity(t *testing.T) {
	ix := skewed(t)
	// Query [10, 29]: 10 of a, 10 of b — already fair.
	res, err := ix.FairestSimilarRange(10, 29, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Similarity != 1 || res.Disparity != 0 {
		t.Fatalf("already-fair query rewritten: %+v", res)
	}
	// Query [0, 9]: all group a. The fairest similar range must include
	// balanced counts at some similarity cost.
	res, err = ix.FairestSimilarRange(0, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disparity != 0 {
		t.Fatalf("rewrite not fair: %+v", res)
	}
	if res.Similarity <= 0 || res.Similarity >= 1 {
		t.Fatalf("similarity should be in (0,1): %+v", res)
	}
	if res.Size == 0 {
		t.Fatalf("degenerate empty rewrite chosen: %+v", res)
	}
}

func TestFairRewriteEpsilonLoosens(t *testing.T) {
	ix := skewed(t)
	strict, err := ix.FairestSimilarRange(0, 14, 0)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := ix.FairestSimilarRange(0, 14, 5)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Similarity < strict.Similarity {
		t.Fatalf("looser bound reduced similarity: %v < %v", loose.Similarity, strict.Similarity)
	}
	if loose.Disparity > 5 {
		t.Fatalf("loose disparity = %d", loose.Disparity)
	}
}

func TestFairRewriteValidation(t *testing.T) {
	ix := skewed(t)
	if _, err := ix.FairestSimilarRange(0, 1, -1); err == nil {
		t.Fatal("negative eps accepted")
	}
}

func TestNewIndexErrors(t *testing.T) {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "score", Kind: dataset.Numeric},
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical},
	))
	if _, err := NewIndex(d, "score", []string{"grp"}); err == nil {
		t.Fatal("empty index accepted")
	}
	// Rows with nulls are excluded.
	d.MustAppendRow(dataset.NullValue(dataset.Numeric), dataset.Cat("a"))
	d.MustAppendRow(dataset.Num(1), dataset.NullValue(dataset.Categorical))
	d.MustAppendRow(dataset.Num(2), dataset.Cat("a"))
	ix, err := NewIndex(d, "score", []string{"grp"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumRows() != 1 {
		t.Fatalf("indexed rows = %d, want 1", ix.NumRows())
	}
}

func TestCoverageRelaxExpands(t *testing.T) {
	ix := skewed(t)
	// Query [0, 4] has 5 of a, 0 of b; require 3 of each.
	res, err := ix.CoverageRelax(0, 4, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] < 3 || res.Counts[1] < 3 {
		t.Fatalf("coverage not met: %+v", res)
	}
	// Expansion must be minimal in the sense of not over-expanding past
	// the third b row (value 22).
	if res.Hi > 22 {
		t.Fatalf("over-expanded: %+v", res)
	}
	if res.Similarity <= 0 {
		t.Fatalf("similarity = %v", res.Similarity)
	}
}

func TestCoverageRelaxAlreadySatisfied(t *testing.T) {
	ix := skewed(t)
	res, err := ix.CoverageRelax(15, 24, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Similarity != 1 {
		t.Fatalf("satisfied query was expanded: %+v", res)
	}
}

func TestCoverageRelaxUnsatisfiable(t *testing.T) {
	ix := skewed(t)
	if _, err := ix.CoverageRelax(0, 39, []int{100, 1}); err == nil {
		t.Fatal("unsatisfiable requirement accepted")
	}
	if _, err := ix.CoverageRelax(0, 1, []int{1}); err == nil {
		t.Fatal("group-count mismatch accepted")
	}
}

func TestThreeGroups(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	groups := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	ix, err := NewIndex(build(t, scores, groups), "score", []string{"grp"})
	if err != nil {
		t.Fatal(err)
	}
	res := ix.Query(1, 4)
	// Counts: a=2, b=1, c=1 -> disparity 1.
	if res.Disparity != 1 {
		t.Fatalf("disparity = %d", res.Disparity)
	}
	fair, err := ix.FairestSimilarRange(1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fair.Disparity != 0 {
		t.Fatalf("fair rewrite disparity = %d", fair.Disparity)
	}
	if fair.Similarity < 0.5 {
		t.Fatalf("similarity collapsed: %+v", fair)
	}
}

func TestDisparityHelper(t *testing.T) {
	if disparity(nil) != 0 {
		t.Fatal("empty disparity")
	}
	if disparity([]int{3, 7, 5}) != 4 {
		t.Fatal("disparity calc")
	}
}
