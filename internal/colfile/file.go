package colfile

import (
	"errors"
	"fmt"
	"io"
	"os"

	"redi/internal/bitmap"
	"redi/internal/dataset"
	"redi/internal/obs"
)

// OpenOptions configures how a column file is read.
type OpenOptions struct {
	// DisableMmap forces the portable read-at pager even where mmap is
	// available — each blob access then reads into a fresh buffer. Used by
	// tests to cover the fallback and by callers that prefer not to map.
	DisableMmap bool
	// Obs receives the colfile counters (pages_mapped, bytes_read); nil
	// falls back to the process-wide registry per obs.Active.
	Obs *obs.Registry
}

// File is an opened column file. All accessors are safe for concurrent use:
// the mapped backend returns read-only views of shared pages, the read-at
// backend reads into fresh buffers. Open validates the full metadata
// (magic, geometry, CRC-guarded footer, blob bounds), so corrupt or
// truncated files fail with a clean error at Open rather than at access
// time. After a successful Open, a read failure on a validated blob is an
// environment-level I/O fault — the read-at pager panics with context,
// which is the same failure class as SIGBUS on a mapped page.
type File struct {
	path   string
	f      *os.File
	size   int64
	mapped []byte // nil under the read-at pager

	schema   *dataset.Schema
	partRows int
	numRows  int
	dicts    [][]string
	parts    []partMeta

	cBytesRead *obs.Counter
}

// Sniff reports whether the file at path starts with the column-file
// magic. It reads at most 8 bytes; any error reports false — a caller that
// needs the concrete error will hit it on the Open or CSV read that
// follows the sniff.
func Sniff(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var b [8]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return false
	}
	return string(b[:]) == fileMagic
}

// Open opens and fully validates a column file.
func Open(path string, opts OpenOptions) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colfile: %w", err)
	}
	file, err := openOn(f, path, opts)
	if err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	return file, nil
}

func openOn(f *os.File, path string, opts OpenOptions) (*File, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("colfile: stat %s: %w", path, err)
	}
	size := st.Size()
	hdrBuf := make([]byte, headerSize)
	if size < headerSize {
		return nil, fmt.Errorf("colfile: %s: file truncated: %d bytes, need %d-byte header", path, size, headerSize)
	}
	if _, err := f.ReadAt(hdrBuf, 0); err != nil {
		return nil, fmt.Errorf("colfile: %s: reading header: %w", path, err)
	}
	h, err := decodeHeader(hdrBuf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if h.partRows == 0 || h.partRows%64 != 0 || h.partRows > 1<<31-1 {
		return nil, fmt.Errorf("colfile: %s: partition size %d must be a positive multiple of 64", path, h.partRows)
	}
	wantParts := (h.numRows + h.partRows - 1) / h.partRows
	if h.numParts != wantParts {
		return nil, fmt.Errorf("colfile: %s: header declares %d partitions for %d rows of %d (want %d)",
			path, h.numParts, h.numRows, h.partRows, wantParts)
	}
	if h.footerOff < headerSize || h.footerLen == 0 ||
		h.footerOff+h.footerLen < h.footerOff || h.footerOff+h.footerLen > uint64(size) {
		return nil, fmt.Errorf("colfile: %s: footer [%d, +%d) outside file of %d bytes (truncated?)",
			path, h.footerOff, h.footerLen, size)
	}
	ftBytes := make([]byte, h.footerLen)
	if _, err := f.ReadAt(ftBytes, int64(h.footerOff)); err != nil {
		return nil, fmt.Errorf("colfile: %s: reading footer: %w", path, err)
	}
	if got := footerChecksum(ftBytes); got != h.footerCRC {
		return nil, fmt.Errorf("colfile: %s: footer checksum %08x != header %08x (corrupt file)", path, got, h.footerCRC)
	}
	ft, err := decodeFooter(ftBytes)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if uint64(ft.schema.Len()) != h.numCols {
		return nil, fmt.Errorf("colfile: %s: header declares %d columns, footer %d", path, h.numCols, ft.schema.Len())
	}
	if uint64(len(ft.parts)) != h.numParts {
		return nil, fmt.Errorf("colfile: %s: header declares %d partitions, footer %d", path, h.numParts, len(ft.parts))
	}
	if err := validateParts(ft, &h, path); err != nil {
		return nil, err
	}

	file := &File{
		path:     path,
		f:        f,
		size:     size,
		schema:   ft.schema,
		partRows: int(h.partRows),
		numRows:  int(h.numRows),
		dicts:    ft.dicts,
		parts:    ft.parts,
	}
	reg := obs.Active(opts.Obs)
	file.cBytesRead = reg.Counter("colfile.bytes_read")
	if mmapSupported && !opts.DisableMmap && hostLittleEndian && size > 0 {
		m, err := mmapFile(f, int(size))
		if err != nil {
			return nil, fmt.Errorf("colfile: %s: mmap: %w", path, err)
		}
		file.mapped = m
		reg.Counter("colfile.pages_mapped").Add(int64((size + pageAlign - 1) / pageAlign))
	}
	return file, nil
}

// validateParts checks every partition's row count and blob bounds against
// the header geometry, so accessors can trust offsets unconditionally.
func validateParts(ft *footer, h *header, path string) error {
	rowsLeft := int(h.numRows)
	for p := range ft.parts {
		pm := &ft.parts[p]
		wantRows := int(h.partRows)
		if rowsLeft < wantRows {
			wantRows = rowsLeft
		}
		if pm.rows != wantRows {
			return fmt.Errorf("colfile: %s: partition %d has %d rows, want %d", path, p, pm.rows, wantRows)
		}
		rowsLeft -= pm.rows
		for c := 0; c < ft.schema.Len(); c++ {
			var blobs [][2]uint64
			if ft.schema.Attr(c).Kind == dataset.Categorical {
				blobs = [][2]uint64{{pm.cols[c].off, uint64(pm.rows) * 4}}
			} else {
				blobs = [][2]uint64{
					{pm.cols[c].off, uint64(pm.rows) * 8},
					{pm.cols[c].validityOff, uint64(bitmap.WordsFor(pm.rows)) * 8},
				}
			}
			for _, blob := range blobs {
				off, n := blob[0], blob[1]
				if off%blobAlign != 0 {
					return fmt.Errorf("colfile: %s: partition %d column %d blob at %d not %d-aligned", path, p, c, off, blobAlign)
				}
				if off < pageAlign || off+n < off || off+n > h.footerOff {
					return fmt.Errorf("colfile: %s: partition %d column %d blob [%d, +%d) outside data region", path, p, c, off, n)
				}
			}
		}
	}
	if rowsLeft != 0 {
		return fmt.Errorf("colfile: %s: partitions cover %d fewer rows than header declares", path, rowsLeft)
	}
	return nil
}

// Close unmaps and closes the file. Accessors must not be used after Close.
func (f *File) Close() error {
	var errs []error
	if f.mapped != nil {
		if err := munmapFile(f.mapped); err != nil {
			errs = append(errs, fmt.Errorf("colfile: munmap %s: %w", f.path, err))
		}
		f.mapped = nil
	}
	if err := f.f.Close(); err != nil {
		errs = append(errs, fmt.Errorf("colfile: close %s: %w", f.path, err))
	}
	return errors.Join(errs...)
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Mapped reports whether the zero-copy mmap backend is active.
func (f *File) Mapped() bool { return f.mapped != nil }

// Schema returns the file's schema.
func (f *File) Schema() *dataset.Schema { return f.schema }

// NumRows returns the total row count.
func (f *File) NumRows() int { return f.numRows }

// PartRows returns the partition size in rows.
func (f *File) PartRows() int { return f.partRows }

// NumPartitions returns the number of partitions.
func (f *File) NumPartitions() int { return len(f.parts) }

// PartitionRows returns the row count of partition p (PartRows except
// possibly the last).
func (f *File) PartitionRows(p int) int { return f.parts[p].rows }

// Dict returns the merged global dictionary of a categorical column (codes
// in every partition index into it); nil for numeric columns. The slice is
// shared — callers must not mutate it.
func (f *File) Dict(col int) []string { return f.dicts[col] }

// PartitionCatCodes returns partition p's dictionary codes for a
// categorical column (-1 marks null), as a view of the mapped page where
// possible. Read-only.
func (f *File) PartitionCatCodes(p, col int) []int32 {
	if f.schema.Attr(col).Kind != dataset.Categorical {
		panic(fmt.Sprintf("colfile: column %q is not categorical", f.schema.Attr(col).Name))
	}
	pm := &f.parts[p]
	return asInt32s(f.blob(pm.cols[col].off, uint64(pm.rows)*4))
}

// PartitionNumValues returns partition p's values and validity words (bit
// set = non-null; null cells hold 0) for a numeric column, as views of the
// mapped pages where possible. Read-only.
func (f *File) PartitionNumValues(p, col int) (vals []float64, validity []uint64) {
	if f.schema.Attr(col).Kind != dataset.Numeric {
		panic(fmt.Sprintf("colfile: column %q is not numeric", f.schema.Attr(col).Name))
	}
	pm := &f.parts[p]
	vals = asFloat64s(f.blob(pm.cols[col].off, uint64(pm.rows)*8))
	validity = asUint64s(f.blob(pm.cols[col].validityOff, uint64(bitmap.WordsFor(pm.rows))*8))
	return vals, validity
}

// PartitionPresentCodes returns the sorted global codes present in
// partition p of a categorical column — the pruning index. Read-only.
func (f *File) PartitionPresentCodes(p, col int) []int32 {
	return f.parts[p].present[col]
}

// blob returns length bytes at off. Offsets were validated at Open; under
// the read-at pager an I/O error here is an environment fault equivalent
// to SIGBUS on a mapped page, reported as a panic with context.
func (f *File) blob(off, length uint64) []byte {
	if length == 0 {
		return nil
	}
	f.cBytesRead.Add(int64(length))
	if f.mapped != nil {
		return f.mapped[off : off+length]
	}
	// Back the byte buffer with []uint64 so the typed casts in cast.go see
	// 8-byte-aligned memory regardless of allocator behavior.
	words := make([]uint64, (length+7)/8)
	buf := uint64Bytes(words)[:length]
	if _, err := f.f.ReadAt(buf, int64(off)); err != nil {
		panic(fmt.Sprintf("colfile: %s: read [%d, +%d) failed after validated open (I/O fault): %v", f.path, off, length, err))
	}
	return buf
}
