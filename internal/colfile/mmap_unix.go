//go:build unix

package colfile

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy backend: true on unix-family targets
// where syscall.Mmap exists. Non-unix builds use the read-at pager.
const mmapSupported = true

// mmapFile maps the whole file read-only and shared. The mapping's
// lifetime is owned by File.Close via munmapFile.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
