//go:build !unix

package colfile

import (
	"errors"
	"os"
)

// Non-unix targets have no syscall.Mmap; Open silently uses the read-at
// pager instead (mmapFile is never called when mmapSupported is false).
const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("colfile: mmap unsupported on this platform")
}

func munmapFile(b []byte) error { return nil }
