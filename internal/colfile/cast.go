package colfile

import "unsafe"

// hostLittleEndian reports whether the running machine stores integers
// little-endian. The file format is little-endian on disk; on LE hosts the
// typed views below are zero-copy casts (this is the mmap fast path), on BE
// hosts they decode into fresh slices so results stay correct everywhere.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// asInt32s views b as little-endian int32s. b must be 4-byte aligned and a
// multiple of 4 long — guaranteed for column blobs by the 64-byte blob
// alignment invariant.
func asInt32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(leU32(b[i*4:]))
	}
	return out
}

// asFloat64s views b as little-endian float64s (alignment per asInt32s).
func asFloat64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		bits := uint64(leU32(b[i*8:])) | uint64(leU32(b[i*8+4:]))<<32
		out[i] = *(*float64)(unsafe.Pointer(&bits))
	}
	return out
}

// asUint64s views b as little-endian uint64 words (alignment per asInt32s).
func asUint64s(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = uint64(leU32(b[i*8:])) | uint64(leU32(b[i*8+4:]))<<32
	}
	return out
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// int32Bytes/float64Bytes/uint64Bytes are the write-side mirrors: they view
// a typed slice as the little-endian bytes to put on disk (zero-copy on LE
// hosts, explicit encode on BE hosts).

func int32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
	}
	out := make([]byte, 0, len(v)*4)
	for _, x := range v {
		out = appendU32(out, uint32(x))
	}
	return out
}

func float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	out := make([]byte, 0, len(v)*8)
	for _, x := range v {
		out = appendU64(out, *(*uint64)(unsafe.Pointer(&x)))
	}
	return out
}

func uint64Bytes(v []uint64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	out := make([]byte, 0, len(v)*8)
	for _, x := range v {
		out = appendU64(out, x)
	}
	return out
}
