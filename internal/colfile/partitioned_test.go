package colfile

import (
	"path/filepath"
	"testing"

	"redi/internal/dataset"
	"redi/internal/obs"
	"redi/internal/rng"
)

// TestPartitionedOverFileMatchesInMemory is the end-to-end out-of-core
// contract: GroupBy, SelectBitmap, and Count over a mapped column file are
// bit-identical to the in-memory Dataset at every worker count, under both
// the mmap and read-at backends.
func TestPartitionedOverFileMatchesInMemory(t *testing.T) {
	r := rng.New(21)
	d := buildTestData(r, 777)
	path := filepath.Join(t.TempDir(), "p.redic")
	if err := WriteDataset(d, path, WriterOptions{PartRows: 128}); err != nil {
		t.Fatal(err)
	}

	preds := []dataset.Predicate{
		dataset.Eq("g", "g3"),
		dataset.And(dataset.In("c2", "v0", "v2"), dataset.Compare("x", dataset.CmpGT, 0)),
		dataset.Or(dataset.IsNull("x"), dataset.Range("y", 100, 500)),
		dataset.Not(dataset.And(dataset.NotNull("g"), dataset.Compare("y", dataset.CmpLE, 300))),
	}

	for _, disable := range []bool{false, true} {
		f, err := Open(path, OpenOptions{DisableMmap: disable})
		if err != nil {
			t.Fatal(err)
		}
		pd := dataset.NewPartitioned(f)

		wantG := d.GroupBy("g", "c2")
		for _, workers := range []int{1, 2, 8} {
			got := pd.GroupBy(workers, "g", "c2")
			if got.NumGroups() != wantG.NumGroups() {
				t.Fatalf("disable=%v workers=%d: %d groups, want %d", disable, workers, got.NumGroups(), wantG.NumGroups())
			}
			for gid := range wantG.Counts {
				if got.Counts[gid] != wantG.Counts[gid] || got.Key(gid) != wantG.Key(gid) {
					t.Fatalf("disable=%v workers=%d gid %d: (%d,%q), want (%d,%q)",
						disable, workers, gid, got.Counts[gid], got.Key(gid), wantG.Counts[gid], wantG.Key(gid))
				}
			}
			for row := range wantG.ByRow {
				if got.ByRow[row] != wantG.ByRow[row] {
					t.Fatalf("disable=%v workers=%d row %d: gid %d, want %d", disable, workers, row, got.ByRow[row], wantG.ByRow[row])
				}
			}
		}

		for pi, p := range preds {
			want, ok := dataset.CompilePredicate(d, p)
			if !ok {
				t.Fatalf("pred %d: in-memory compile failed", pi)
			}
			wantBM := want.SelectBitmap()
			pp, ok := pd.CompilePredicate(p)
			if !ok {
				t.Fatalf("pred %d: partitioned compile failed", pi)
			}
			for _, workers := range []int{1, 2, 8} {
				gotBM := pp.SelectBitmap(workers)
				for w := range wantBM {
					if gotBM[w] != wantBM[w] {
						t.Fatalf("disable=%v pred %d workers=%d: word %d = %x, want %x",
							disable, pi, workers, w, gotBM[w], wantBM[w])
					}
				}
				if got, wantC := pp.Count(workers), want.CountFast(); got != wantC {
					t.Fatalf("disable=%v pred %d workers=%d: count %d, want %d", disable, pi, workers, got, wantC)
				}
			}
		}

		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPartitionPruning: a predicate on a value confined to one partition
// skips the others via the present-code index — without changing results.
func TestPartitionPruning(t *testing.T) {
	d := dataset.New(testSchema())
	for i := 0; i < 512; i++ {
		g := "common"
		if i >= 448 { // value confined to the last of 4 partitions
			g = "rare"
		}
		d.MustAppendRow(dataset.Cat(g), dataset.Cat("c"), dataset.Num(float64(i)), dataset.Num(1))
	}
	path := filepath.Join(t.TempDir(), "prune.redic")
	if err := WriteDataset(d, path, WriterOptions{PartRows: 128}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	f, err := Open(path, OpenOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	pd := dataset.NewPartitioned(f)
	pd.Obs = reg
	pp, ok := pd.CompilePredicate(dataset.Eq("g", "rare"))
	if !ok {
		t.Fatal("compile failed")
	}
	if got := pp.Count(4); got != 64 {
		t.Fatalf("count = %d, want 64", got)
	}
	vals := reg.CounterValues()
	if vals["dataset.partitions_pruned"] != 3 {
		t.Fatalf("partitions_pruned = %d, want 3 (counters: %v)", vals["dataset.partitions_pruned"], vals)
	}
	if vals["dataset.partitions_scanned"] != 1 {
		t.Fatalf("partitions_scanned = %d, want 1 (counters: %v)", vals["dataset.partitions_scanned"], vals)
	}

	// A predicate for a value absent from every partition prunes everything.
	pp2, ok := pd.CompilePredicate(dataset.Eq("g", "never-seen"))
	if !ok {
		t.Fatal("compile failed")
	}
	if got := pp2.Count(2); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	after := reg.CounterValues()
	if after["dataset.partitions_scanned"] != vals["dataset.partitions_scanned"] {
		t.Fatalf("absent-value predicate scanned partitions: %v", after)
	}
}

// TestMaterializeFromFile: AppendRowsTo pulls arbitrary rows out of a
// column file with full value fidelity.
func TestMaterializeFromFile(t *testing.T) {
	r := rng.New(22)
	d := buildTestData(r, 400)
	path := filepath.Join(t.TempDir(), "m.redic")
	if err := WriteDataset(d, path, WriterOptions{PartRows: 64}); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	pd := dataset.NewPartitioned(f)
	rows := []int{399, 0, 17, 17, 200, 63, 64}
	out := dataset.New(d.Schema())
	if err := pd.AppendRowsTo(out, rows); err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		for c := 0; c < d.Schema().Len(); c++ {
			if got, want := out.ValueAt(i, c), d.ValueAt(row, c); got != want {
				t.Fatalf("row %d col %d: got %v, want %v", row, c, got, want)
			}
		}
	}
	if err := pd.AppendRowsTo(out, []int{400}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}
