// Package colfile implements the on-disk column format behind out-of-core
// audits: page-aligned partitions of dictionary codes (int32), numeric
// values (float64), and validity bitmaps laid out as 64-bit words, so the
// internal/bitmap kernels and the predicate VM's fill kernels run directly
// on mapped pages with zero copies. A file is written once by Writer (or
// ConvertCSV, which streams rows and never materializes the dataset) and
// read by Open, which maps the body with syscall.Mmap where available and
// falls back to a portable read-at pager otherwise.
//
// # File layout (version 1, little-endian)
//
//	┌────────────────────────────────────────────────────────┐
//	│ header (72 bytes, zero-padded to 4096)                 │
//	│   magic "REDICOL1" · version · partRows · numRows      │
//	│   numParts · numCols · footerOff/Len/CRC               │
//	├────────────────────────────────────────────────────────┤
//	│ partition 0                         (4096-aligned)     │
//	│   col 0 codes []int32               (64-aligned)       │
//	│   col 1 vals []float64              (64-aligned)       │
//	│   col 1 validity []uint64           (64-aligned)       │
//	│   ...                                                  │
//	├────────────────────────────────────────────────────────┤
//	│ partition 1 ...                     (4096-aligned)     │
//	├────────────────────────────────────────────────────────┤
//	│ footer (CRC32-guarded)                                 │
//	│   schema · per-column global dictionaries              │
//	│   per-partition blob offsets + present-code sets       │
//	└────────────────────────────────────────────────────────┘
//
// Alignment invariants: every partition starts on a 4096-byte page
// boundary and every blob on a 64-byte boundary, so unsafe casts of mapped
// bytes to []int32/[]float64/[]uint64 are always aligned. partRows is a
// multiple of 64, so partition p covers global rows [p*partRows, ...) whose
// word range in any global bitmap is disjoint from every other partition's
// — the property that lets partition-parallel kernels write one shared
// bitmap without locks while staying bit-identical at any worker count.
//
// Categorical codes are global: the footer carries one merged dictionary
// per column (built in first-appearance row order, matching the in-memory
// Dataset's append order) and every partition's codes index into it, so a
// predicate binds against the global dictionary once and replays unchanged
// on every partition. The per-partition present-code sets support partition
// pruning without touching pages.
package colfile

import (
	"fmt"
	"hash/crc32"

	"redi/internal/dataset"
)

// Format reports the on-disk container tag and format version, for
// build-info metrics and diagnostics.
func Format() (magic string, version int) { return fileMagic, formatVersion }

const (
	fileMagic     = "REDICOL1"
	formatVersion = 1

	// pageAlign is the partition/header alignment; blobAlign aligns each
	// column blob so word and float casts of mapped memory are valid.
	pageAlign = 4096
	blobAlign = 64

	// headerSize is the encoded header length; the rest of the first page
	// is zero padding.
	headerSize = 72

	// DefaultPartRows is the default partition size (rows). Must be a
	// multiple of 64 — see the package comment's disjoint-word invariant.
	DefaultPartRows = 1 << 16
)

// header is the fixed-size file prologue.
type header struct {
	partRows  uint64
	numRows   uint64
	numParts  uint64
	numCols   uint64
	footerOff uint64
	footerLen uint64
	footerCRC uint32
}

func (h *header) encode() []byte {
	b := make([]byte, 0, headerSize)
	b = append(b, fileMagic...)
	b = appendU32(b, formatVersion)
	b = appendU32(b, 0) // reserved
	b = appendU64(b, h.partRows)
	b = appendU64(b, h.numRows)
	b = appendU64(b, h.numParts)
	b = appendU64(b, h.numCols)
	b = appendU64(b, h.footerOff)
	b = appendU64(b, h.footerLen)
	b = appendU32(b, h.footerCRC)
	return b
}

func decodeHeader(b []byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("colfile: file truncated: %d bytes, need %d-byte header", len(b), headerSize)
	}
	if string(b[:8]) != fileMagic {
		return h, fmt.Errorf("colfile: bad magic %q", b[:8])
	}
	c := cursor{b: b, off: 8}
	if v := c.u32(); v != formatVersion {
		return h, fmt.Errorf("colfile: unsupported format version %d (want %d)", v, formatVersion)
	}
	c.u32() // reserved
	h.partRows = c.u64()
	h.numRows = c.u64()
	h.numParts = c.u64()
	h.numCols = c.u64()
	h.footerOff = c.u64()
	h.footerLen = c.u64()
	h.footerCRC = c.u32()
	if c.err != nil {
		return h, c.err
	}
	return h, nil
}

// colMeta is one column's per-partition blob location. For categorical
// columns off locates the codes blob; for numeric columns off locates the
// values blob and validityOff the validity words.
type colMeta struct {
	off         uint64
	validityOff uint64
}

// partMeta is one partition's decoded footer entry.
type partMeta struct {
	rows    int
	cols    []colMeta
	present [][]int32 // per column, sorted global codes present; nil for numeric
}

// footer is the decoded trailing metadata block.
type footer struct {
	schema *dataset.Schema
	dicts  [][]string // per column; nil for numeric
	parts  []partMeta
}

func (ft *footer) encode() []byte {
	var b []byte
	b = appendU32(b, uint32(ft.schema.Len()))
	for i := 0; i < ft.schema.Len(); i++ {
		a := ft.schema.Attr(i)
		b = appendStr(b, a.Name)
		b = append(b, byte(a.Kind), byte(a.Role))
	}
	for i := 0; i < ft.schema.Len(); i++ {
		if ft.schema.Attr(i).Kind != dataset.Categorical {
			continue
		}
		b = appendU32(b, uint32(len(ft.dicts[i])))
		for _, s := range ft.dicts[i] {
			b = appendStr(b, s)
		}
	}
	b = appendU32(b, uint32(len(ft.parts)))
	for _, p := range ft.parts {
		b = appendU32(b, uint32(p.rows))
		for c := 0; c < ft.schema.Len(); c++ {
			if ft.schema.Attr(c).Kind == dataset.Categorical {
				b = appendU64(b, p.cols[c].off)
				b = appendU32(b, uint32(len(p.present[c])))
				for _, code := range p.present[c] {
					b = appendU32(b, uint32(code))
				}
			} else {
				b = appendU64(b, p.cols[c].off)
				b = appendU64(b, p.cols[c].validityOff)
			}
		}
	}
	return b
}

func decodeFooter(b []byte) (*footer, error) {
	c := cursor{b: b}
	numCols := int(c.u32())
	if c.err != nil {
		return nil, c.err
	}
	if numCols < 0 || numCols > 1<<20 {
		return nil, fmt.Errorf("colfile: footer declares %d columns", numCols)
	}
	attrs := make([]dataset.Attribute, numCols)
	for i := range attrs {
		name := c.str()
		kind := c.u8()
		role := c.u8()
		if c.err != nil {
			return nil, c.err
		}
		if kind > uint8(dataset.Numeric) {
			return nil, fmt.Errorf("colfile: column %d has unknown kind %d", i, kind)
		}
		if role > uint8(dataset.ID) {
			return nil, fmt.Errorf("colfile: column %d has unknown role %d", i, role)
		}
		if name == "" {
			return nil, fmt.Errorf("colfile: column %d has empty name", i)
		}
		attrs[i] = dataset.Attribute{Name: name, Kind: dataset.Kind(kind), Role: dataset.Role(role)}
	}
	for i := range attrs {
		for j := i + 1; j < len(attrs); j++ {
			if attrs[i].Name == attrs[j].Name {
				return nil, fmt.Errorf("colfile: duplicate column name %q", attrs[i].Name)
			}
		}
	}
	ft := &footer{schema: dataset.NewSchema(attrs...), dicts: make([][]string, numCols)}
	for i, a := range attrs {
		if a.Kind != dataset.Categorical {
			continue
		}
		n := int(c.u32())
		if c.err != nil {
			return nil, c.err
		}
		if n < 0 || n > 1<<31-1 {
			return nil, fmt.Errorf("colfile: column %q dictionary declares %d values", a.Name, n)
		}
		dict := make([]string, n)
		for v := range dict {
			dict[v] = c.str()
		}
		if c.err != nil {
			return nil, c.err
		}
		ft.dicts[i] = dict
	}
	numParts := int(c.u32())
	if c.err != nil {
		return nil, c.err
	}
	if numParts < 0 || numParts > 1<<31-1 {
		return nil, fmt.Errorf("colfile: footer declares %d partitions", numParts)
	}
	ft.parts = make([]partMeta, numParts)
	for p := range ft.parts {
		pm := &ft.parts[p]
		pm.rows = int(c.u32())
		pm.cols = make([]colMeta, numCols)
		pm.present = make([][]int32, numCols)
		for i, a := range attrs {
			if a.Kind == dataset.Categorical {
				pm.cols[i].off = c.u64()
				n := int(c.u32())
				if c.err != nil {
					return nil, c.err
				}
				if n < 0 || n > len(ft.dicts[i]) {
					return nil, fmt.Errorf("colfile: partition %d column %q declares %d present codes (dict has %d)",
						p, a.Name, n, len(ft.dicts[i]))
				}
				present := make([]int32, n)
				for j := range present {
					present[j] = int32(c.u32())
				}
				if c.err != nil {
					return nil, c.err
				}
				for j, code := range present {
					if code < 0 || int(code) >= len(ft.dicts[i]) {
						return nil, fmt.Errorf("colfile: partition %d column %q present code %d out of dictionary range", p, a.Name, code)
					}
					if j > 0 && present[j-1] >= code {
						return nil, fmt.Errorf("colfile: partition %d column %q present codes not strictly increasing", p, a.Name)
					}
				}
				pm.present[i] = present
			} else {
				pm.cols[i].off = c.u64()
				pm.cols[i].validityOff = c.u64()
			}
		}
		if c.err != nil {
			return nil, c.err
		}
	}
	if c.off != len(c.b) {
		return nil, fmt.Errorf("colfile: %d trailing bytes after footer", len(c.b)-c.off)
	}
	return ft, nil
}

func footerChecksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// appendU32/appendU64/appendStr build the little-endian footer and header
// encodings; cursor decodes them with bounds checks so a corrupt or
// truncated file surfaces a clean error instead of a panic.

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	b = appendU32(b, uint32(v))
	return appendU32(b, uint32(v>>32))
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if c.off+n > len(c.b) {
		c.err = fmt.Errorf("colfile: metadata truncated at byte %d (need %d more)", c.off, n)
		return false
	}
	return true
}

func (c *cursor) u8() uint8 {
	if !c.need(1) {
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u32() uint32 {
	if !c.need(4) {
		return 0
	}
	b := c.b[c.off:]
	c.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (c *cursor) u64() uint64 {
	lo := c.u32()
	hi := c.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (c *cursor) str() string {
	n := int(c.u32())
	if c.err != nil {
		return ""
	}
	if n < 0 || !c.need(n) {
		if c.err == nil {
			c.err = fmt.Errorf("colfile: negative string length in metadata")
		}
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

func alignUp(off uint64, align uint64) uint64 {
	return (off + align - 1) &^ (align - 1)
}
