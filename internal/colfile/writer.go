package colfile

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"redi/internal/bitmap"
	"redi/internal/dataset"
)

// WriterOptions configures file creation.
type WriterOptions struct {
	// PartRows is the partition size in rows; 0 means DefaultPartRows. It
	// must be a positive multiple of 64 (the disjoint-bitmap-word
	// invariant, see the package comment).
	PartRows int
}

// Writer streams rows into a column file. It buffers exactly one partition
// in memory (PartRows rows of typed column buffers) plus the per-column
// global dictionaries, so peak memory is independent of the number of rows
// written. Rows are encoded in append order; dictionaries grow in
// first-appearance order, matching how an in-memory Dataset built from the
// same row stream assigns its codes.
type Writer struct {
	w        *bufio.Writer
	f        *os.File
	schema   *dataset.Schema
	partRows int

	// one-partition column buffers (nil entries for the other kind)
	catBuf   [][]int32
	numBuf   [][]float64
	validBuf [][]uint64
	bufRows  int

	dicts [][]string
	index []map[string]int32

	off     uint64
	numRows int
	parts   []partMeta

	err    error
	closed bool
}

// NewWriter starts a column file on f, which must be positioned at offset
// zero and opened for writing. Close finalizes the file (the header is
// rewritten in place, so f must also support WriteAt).
func NewWriter(f *os.File, schema *dataset.Schema, opts WriterOptions) (*Writer, error) {
	partRows := opts.PartRows
	if partRows == 0 {
		partRows = DefaultPartRows
	}
	if partRows <= 0 || partRows%64 != 0 {
		return nil, fmt.Errorf("colfile: PartRows %d must be a positive multiple of 64", partRows)
	}
	if schema.Len() == 0 {
		return nil, fmt.Errorf("colfile: empty schema")
	}
	w := &Writer{
		w:        bufio.NewWriterSize(f, 1<<20),
		f:        f,
		schema:   schema,
		partRows: partRows,
		catBuf:   make([][]int32, schema.Len()),
		numBuf:   make([][]float64, schema.Len()),
		validBuf: make([][]uint64, schema.Len()),
		dicts:    make([][]string, schema.Len()),
		index:    make([]map[string]int32, schema.Len()),
	}
	for i := 0; i < schema.Len(); i++ {
		if schema.Attr(i).Kind == dataset.Categorical {
			w.catBuf[i] = make([]int32, 0, partRows)
			w.index[i] = make(map[string]int32)
		} else {
			w.numBuf[i] = make([]float64, 0, partRows)
			w.validBuf[i] = make([]uint64, bitmap.WordsFor(partRows))
		}
	}
	// Reserve the header page; the real header lands in Close via WriteAt.
	if err := w.pad(pageAlign); err != nil {
		return nil, err
	}
	return w, nil
}

// Append buffers one row, flushing a full partition to disk. Values must
// match the schema's kinds (or be null), as in Dataset.AppendRow.
func (w *Writer) Append(vals ...dataset.Value) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("colfile: append after Close")
	}
	if len(vals) != w.schema.Len() {
		return fmt.Errorf("colfile: row has %d values, schema has %d attributes", len(vals), w.schema.Len())
	}
	for i, v := range vals {
		attr := w.schema.Attr(i)
		if !v.Null && v.Kind != attr.Kind {
			return fmt.Errorf("colfile: attribute %q: appending %s value to %s column", attr.Name, v.Kind, attr.Kind)
		}
	}
	for i, v := range vals {
		if w.schema.Attr(i).Kind == dataset.Categorical {
			if v.Null {
				w.catBuf[i] = append(w.catBuf[i], -1)
				continue
			}
			code, ok := w.index[i][v.Cat]
			if !ok {
				code = int32(len(w.dicts[i]))
				w.dicts[i] = append(w.dicts[i], v.Cat)
				w.index[i][v.Cat] = code
			}
			w.catBuf[i] = append(w.catBuf[i], code)
		} else {
			r := w.bufRows
			if v.Null {
				w.numBuf[i] = append(w.numBuf[i], 0)
			} else {
				w.numBuf[i] = append(w.numBuf[i], v.Num)
				w.validBuf[i][r/64] |= 1 << (uint(r) % 64)
			}
		}
	}
	w.bufRows++
	w.numRows++
	if w.bufRows == w.partRows {
		return w.flushPartition()
	}
	return nil
}

// AppendDatasetRows streams every row of d through Append.
func (w *Writer) AppendDatasetRows(d *dataset.Dataset) error {
	for r := 0; r < d.NumRows(); r++ {
		if err := w.Append(d.Row(r)...); err != nil {
			return err
		}
	}
	return nil
}

// flushPartition writes the buffered rows as one page-aligned partition
// and records its blob offsets and present-code sets for the footer.
func (w *Writer) flushPartition() error {
	rows := w.bufRows
	if rows == 0 {
		return nil
	}
	if err := w.pad(alignUp(w.off, pageAlign) - w.off); err != nil {
		return err
	}
	pm := partMeta{
		rows:    rows,
		cols:    make([]colMeta, w.schema.Len()),
		present: make([][]int32, w.schema.Len()),
	}
	for i := 0; i < w.schema.Len(); i++ {
		if w.schema.Attr(i).Kind == dataset.Categorical {
			off, err := w.blob(int32Bytes(w.catBuf[i]))
			if err != nil {
				return err
			}
			pm.cols[i].off = off
			seen := make([]bool, len(w.dicts[i]))
			for _, code := range w.catBuf[i] {
				if code >= 0 {
					seen[code] = true
				}
			}
			var present []int32
			for code, ok := range seen {
				if ok {
					present = append(present, int32(code))
				}
			}
			pm.present[i] = present
			w.catBuf[i] = w.catBuf[i][:0]
		} else {
			valid := w.validBuf[i][:bitmap.WordsFor(rows)]
			valsOff, err := w.blob(float64Bytes(w.numBuf[i]))
			if err != nil {
				return err
			}
			validOff, err := w.blob(uint64Bytes(valid))
			if err != nil {
				return err
			}
			pm.cols[i].off = valsOff
			pm.cols[i].validityOff = validOff
			w.numBuf[i] = w.numBuf[i][:0]
			for j := range w.validBuf[i] {
				w.validBuf[i][j] = 0
			}
		}
	}
	w.parts = append(w.parts, pm)
	w.bufRows = 0
	return nil
}

// blob writes b at the next 64-byte boundary and returns its offset.
func (w *Writer) blob(b []byte) (uint64, error) {
	if err := w.pad(alignUp(w.off, blobAlign) - w.off); err != nil {
		return 0, err
	}
	off := w.off
	if err := w.write(b); err != nil {
		return 0, err
	}
	return off, nil
}

var zeroPage [pageAlign]byte

func (w *Writer) pad(n uint64) error {
	for n > 0 {
		chunk := n
		if chunk > pageAlign {
			chunk = pageAlign
		}
		if err := w.write(zeroPage[:chunk]); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

func (w *Writer) write(b []byte) error {
	n, err := w.w.Write(b)
	w.off += uint64(n)
	if err != nil {
		w.err = fmt.Errorf("colfile: write: %w", err)
	}
	return w.err
}

// Close flushes the final partial partition, writes the footer, and
// rewrites the header with the final geometry. The file is not valid until
// Close returns nil. Close does not close the underlying *os.File.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushPartition(); err != nil {
		return err
	}
	ft := footer{schema: w.schema, dicts: w.dicts, parts: w.parts}
	ftBytes := ft.encode()
	footerOff := alignUp(w.off, blobAlign)
	if err := w.pad(footerOff - w.off); err != nil {
		return err
	}
	if err := w.write(ftBytes); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("colfile: flush: %w", err)
		return w.err
	}
	h := header{
		partRows:  uint64(w.partRows),
		numRows:   uint64(w.numRows),
		numParts:  uint64(len(w.parts)),
		numCols:   uint64(w.schema.Len()),
		footerOff: footerOff,
		footerLen: uint64(len(ftBytes)),
		footerCRC: footerChecksum(ftBytes),
	}
	if _, err := w.f.WriteAt(h.encode(), 0); err != nil {
		w.err = fmt.Errorf("colfile: writing header: %w", err)
		return w.err
	}
	return nil
}

// ConvertCSV streams a CSV with a header row into a column file at path.
// Memory stays bounded by one partition of column buffers plus the global
// dictionaries — the full dataset is never materialized, so inputs far
// larger than RAM convert fine (dictionaries are the only state that grows
// with distinct-value count).
func ConvertCSV(r io.Reader, schema *dataset.Schema, path string, opts WriterOptions) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("colfile: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("colfile: closing %s: %w", path, cerr)
		}
	}()
	w, err := NewWriter(f, schema, opts)
	if err != nil {
		return err
	}
	if err := dataset.ScanCSV(r, schema, func(row []dataset.Value) error {
		return w.Append(row...)
	}); err != nil {
		return err
	}
	return w.Close()
}

// WriteDataset writes an in-memory dataset to a column file at path — the
// test and benchmark helper for building files from synthesized data.
func WriteDataset(d *dataset.Dataset, path string, opts WriterOptions) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("colfile: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("colfile: closing %s: %w", path, cerr)
		}
	}()
	w, err := NewWriter(f, d.Schema(), opts)
	if err != nil {
		return err
	}
	if err := w.AppendDatasetRows(d); err != nil {
		return err
	}
	return w.Close()
}
