package colfile

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"redi/internal/bitmap"
	"redi/internal/dataset"
	"redi/internal/obs"
	"redi/internal/rng"
)

func testSchema() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Attribute{Name: "g", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "c2", Kind: dataset.Categorical, Role: dataset.Feature},
		dataset.Attribute{Name: "x", Kind: dataset.Numeric, Role: dataset.Feature},
		dataset.Attribute{Name: "y", Kind: dataset.Numeric, Role: dataset.Feature},
	)
}

// buildTestData synthesizes a dataset with nulls in both column kinds.
func buildTestData(r *rng.RNG, rows int) *dataset.Dataset {
	d := dataset.New(testSchema())
	for i := 0; i < rows; i++ {
		g := dataset.Cat(fmt.Sprintf("g%d", r.Intn(8)))
		if r.Float64() < 0.05 {
			g = dataset.NullValue(dataset.Categorical)
		}
		c2 := dataset.Cat(fmt.Sprintf("v%d", r.Intn(3)))
		x := dataset.Num(r.Normal(0, 1))
		if r.Float64() < 0.1 {
			x = dataset.NullValue(dataset.Numeric)
		}
		y := dataset.Num(float64(i))
		d.MustAppendRow(g, c2, x, y)
	}
	return d
}

// checkFileMatches compares every cell of the opened file against the
// source dataset, and the present-code sets against the partitions'
// actual contents.
func checkFileMatches(t *testing.T, f *File, d *dataset.Dataset) {
	t.Helper()
	if f.NumRows() != d.NumRows() {
		t.Fatalf("NumRows = %d, want %d", f.NumRows(), d.NumRows())
	}
	if !f.Schema().Equal(d.Schema()) {
		t.Fatalf("schema mismatch: %v vs %v", f.Schema(), d.Schema())
	}
	wantParts := (d.NumRows() + f.PartRows() - 1) / f.PartRows()
	if f.NumPartitions() != wantParts {
		t.Fatalf("NumPartitions = %d, want %d", f.NumPartitions(), wantParts)
	}
	for p := 0; p < f.NumPartitions(); p++ {
		base := p * f.PartRows()
		rows := f.PartitionRows(p)
		for c := 0; c < f.Schema().Len(); c++ {
			attr := f.Schema().Attr(c)
			if attr.Kind == dataset.Categorical {
				codes := f.PartitionCatCodes(p, c)
				if len(codes) != rows {
					t.Fatalf("part %d col %d: %d codes, want %d", p, c, len(codes), rows)
				}
				dict := f.Dict(c)
				seen := make(map[int32]bool)
				for i, code := range codes {
					want := d.Value(base+i, attr.Name)
					if code < 0 {
						if !want.Null {
							t.Fatalf("part %d row %d col %s: got null, want %v", p, i, attr.Name, want)
						}
						continue
					}
					seen[code] = true
					if got := dict[code]; want.Null || got != want.Cat {
						t.Fatalf("part %d row %d col %s: got %q, want %v", p, i, attr.Name, got, want)
					}
				}
				present := f.PartitionPresentCodes(p, c)
				if len(present) != len(seen) {
					t.Fatalf("part %d col %s: %d present codes, want %d", p, attr.Name, len(present), len(seen))
				}
				for j, code := range present {
					if !seen[code] {
						t.Fatalf("part %d col %s: present code %d not in partition", p, attr.Name, code)
					}
					if j > 0 && present[j-1] >= code {
						t.Fatalf("part %d col %s: present codes not sorted", p, attr.Name)
					}
				}
			} else {
				vals, validity := f.PartitionNumValues(p, c)
				if len(vals) != rows || len(validity) != bitmap.WordsFor(rows) {
					t.Fatalf("part %d col %d: %d vals / %d words, want %d / %d",
						p, c, len(vals), len(validity), rows, bitmap.WordsFor(rows))
				}
				for i := range vals {
					want := d.Value(base+i, attr.Name)
					valid := validity[i/64]&(1<<(uint(i)%64)) != 0
					if valid == want.Null {
						t.Fatalf("part %d row %d col %s: validity %v, want null=%v", p, i, attr.Name, valid, want.Null)
					}
					if want.Null && vals[i] != 0 {
						t.Fatalf("part %d row %d col %s: null cell holds %v, want 0", p, i, attr.Name, vals[i])
					}
					if !want.Null && vals[i] != want.Num {
						t.Fatalf("part %d row %d col %s: got %v, want %v", p, i, attr.Name, vals[i], want.Num)
					}
				}
				// Trailing validity bits past the row count stay zero so the
				// word kernels can run unmasked.
				if rows%64 != 0 {
					last := validity[len(validity)-1]
					if last>>(uint(rows)%64) != 0 {
						t.Fatalf("part %d col %d: trailing validity bits set", p, c)
					}
				}
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	r := rng.New(11)
	for _, rows := range []int{0, 1, 63, 64, 65, 127, 128, 977} {
		for _, partRows := range []int{64, 128, 1024} {
			d := buildTestData(r, rows)
			path := filepath.Join(t.TempDir(), "t.redic")
			if err := WriteDataset(d, path, WriterOptions{PartRows: partRows}); err != nil {
				t.Fatalf("rows=%d partRows=%d: WriteDataset: %v", rows, partRows, err)
			}
			for _, disable := range []bool{false, true} {
				f, err := Open(path, OpenOptions{DisableMmap: disable})
				if err != nil {
					t.Fatalf("rows=%d partRows=%d disable=%v: Open: %v", rows, partRows, disable, err)
				}
				if !disable && mmapSupported && hostLittleEndian && rows > 0 && !f.Mapped() {
					t.Fatalf("rows=%d: expected mmap backend", rows)
				}
				if disable && f.Mapped() {
					t.Fatal("DisableMmap did not disable mmap")
				}
				checkFileMatches(t, f, d)
				if err := f.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			}
		}
	}
}

func TestConvertCSVMatchesReadCSV(t *testing.T) {
	r := rng.New(12)
	d := buildTestData(r, 500)
	var csvBuf strings.Builder
	if err := d.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	// The CSV round trip is the reference: what ReadCSV materializes is
	// what ConvertCSV must encode.
	want, err := dataset.ReadCSV(strings.NewReader(csvBuf.String()), d.Schema())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	path := filepath.Join(t.TempDir(), "c.redic")
	if err := ConvertCSV(strings.NewReader(csvBuf.String()), d.Schema(), path, WriterOptions{PartRows: 128}); err != nil {
		t.Fatalf("ConvertCSV: %v", err)
	}
	f, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	checkFileMatches(t, f, want)
}

func TestWriterRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "w.redic"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if _, err := NewWriter(f, testSchema(), WriterOptions{PartRows: 100}); err == nil {
		t.Fatal("PartRows not a multiple of 64 accepted")
	}
	w, err := NewWriter(f, testSchema(), WriterOptions{PartRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(dataset.Cat("a")); err == nil {
		t.Fatal("short row accepted")
	}
	if err := w.Append(dataset.Num(1), dataset.Cat("a"), dataset.Num(1), dataset.Num(1)); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

// TestOpenSurfacesCorruption pins the satellite-3 contract: corrupt or
// truncated files fail Open with a clean error — never a panic, never a
// silently wrong File.
func TestOpenSurfacesCorruption(t *testing.T) {
	r := rng.New(13)
	d := buildTestData(r, 300)
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.redic")
	if err := WriteDataset(d, path, WriterOptions{PartRows: 128}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func(b []byte) []byte) {
		t.Helper()
		p := filepath.Join(dir, name+".redic")
		if err := os.WriteFile(p, mutate(append([]byte(nil), good...)), 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := Open(p, OpenOptions{})
		if err == nil {
			cerr := f.Close()
			t.Fatalf("%s: corrupt file opened cleanly (close err %v)", name, cerr)
		}
		t.Logf("%s: %v", name, err)
	}

	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("tiny", func(b []byte) []byte { return b[:10] })
	corrupt("header-only", func(b []byte) []byte { return b[:headerSize] })
	corrupt("truncated-body", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("truncated-footer", func(b []byte) []byte { return b[:len(b)-3] })
	corrupt("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad-version", func(b []byte) []byte { b[8] = 99; return b })
	corrupt("footer-bitflip", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b })
	corrupt("bad-partrows", func(b []byte) []byte { b[16] = 37; return b })

	// The pristine file still opens after all that.
	f, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatalf("pristine file failed to open: %v", err)
	}
	checkFileMatches(t, f, d)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestObsCounters(t *testing.T) {
	r := rng.New(14)
	d := buildTestData(r, 300)
	path := filepath.Join(t.TempDir(), "o.redic")
	if err := WriteDataset(d, path, WriterOptions{PartRows: 128}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	f, err := Open(path, OpenOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	vals := reg.CounterValues()
	if f.Mapped() && vals["colfile.pages_mapped"] == 0 {
		t.Fatalf("pages_mapped = 0 with mmap active: %v", vals)
	}
	f.PartitionCatCodes(0, 0)
	f.PartitionNumValues(0, 2)
	after := reg.CounterValues()
	wantBytes := int64(128*4 + 128*8 + bitmap.WordsFor(128)*8)
	if got := after["colfile.bytes_read"] - vals["colfile.bytes_read"]; got != wantBytes {
		t.Fatalf("bytes_read delta = %d, want %d", got, wantBytes)
	}
}
