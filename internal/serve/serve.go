package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"redi/internal/colfile"
	"redi/internal/dataset"
	"redi/internal/expr"
	"redi/internal/obs"
	"redi/internal/trace"
)

// Version identifies the serving API build in /metrics' redi_build_info
// series; bump alongside breaking API or trace-schema changes.
const Version = "0.10.0"

// Config configures a Service.
type Config struct {
	// StoreConfig parameterizes the resident store (name, sensitive attrs,
	// coverage threshold, LSH width, per-request worker budget).
	StoreConfig
	// MaxNullRate is the default completeness bound for /audit (default
	// 0.05).
	MaxNullRate float64
	// MaxConcurrent is the number of requests executing at once (default 4).
	MaxConcurrent int
	// QueueDepth is how many requests may wait for a slot before new
	// arrivals get 429 (default 64).
	QueueDepth int
	// TraceBuffer is the flight recorder's capacity: the number of most
	// recent request traces retained for /debug/requests (default 64;
	// negative disables request tracing entirely).
	TraceBuffer int
	// SlowTraceThreshold additionally retains any request trace at least
	// this slow in the slow-request log at /debug/requests/slow
	// (0 disables slow retention).
	SlowTraceThreshold time.Duration
}

// Service is the resident integration service: a http.Handler exposing the
// store's audit/tailor/query/discovery/ingest operations as a JSON API,
// behind a FIFO admission scheduler. /metrics bypasses admission so the
// service stays observable under overload.
type Service struct {
	store *Store
	sched *scheduler
	cfg   Config
	reg   *obs.Registry
	mux   *http.ServeMux
	rec   *trace.Recorder
}

// NewService builds the store and its indexes from the seed dataset and
// wires up the HTTP surface. The service takes ownership of d.
func NewService(d *dataset.Dataset, cfg Config) (*Service, error) {
	if cfg.MaxNullRate == 0 {
		cfg.MaxNullRate = 0.05
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.TraceBuffer == 0 {
		cfg.TraceBuffer = 64
	}
	if cfg.StoreConfig.Obs == nil {
		cfg.StoreConfig.Obs = obs.NewRegistry()
	}
	store, err := NewStore(d, cfg.StoreConfig)
	if err != nil {
		return nil, err
	}
	s := &Service{
		store: store,
		sched: newScheduler(cfg.MaxConcurrent, cfg.QueueDepth),
		cfg:   cfg,
		reg:   cfg.StoreConfig.Obs,
		mux:   http.NewServeMux(),
		rec:   trace.NewRecorder(cfg.TraceBuffer, cfg.SlowTraceThreshold),
	}
	// Create the counters eagerly so /metrics exposes them at zero before
	// the first request (the CI smoke test asserts on the 5xx series).
	s.reg.Counter("serve.requests_served")
	s.reg.Counter("serve.rows_ingested")
	s.reg.Counter("serve.index_increments")
	s.reg.Counter("serve.http_5xx")
	s.mux.Handle("/audit", s.handle("audit", s.handleAudit))
	s.mux.Handle("/tailor", s.handle("tailor", s.handleTailor))
	s.mux.Handle("/query", s.handle("query", s.handleQuery))
	s.mux.Handle("/discovery", s.handle("discovery", s.handleDiscovery))
	s.mux.Handle("/ingest", s.handle("ingest", s.handleIngest))
	s.mux.Handle("/stats", s.handle("stats", s.handleStats))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/requests", s.handleDebugList)
	s.mux.HandleFunc("/debug/requests/", s.handleDebugGet)
	return s, nil
}

// Recorder returns the flight recorder (nil when tracing is disabled).
func (s *Service) Recorder() *trace.Recorder { return s.rec }

// Close stops the admission scheduler. In-flight requests finish; queued
// requests are rejected.
func (s *Service) Close() { s.sched.close() }

// Store returns the underlying resident store.
func (s *Service) Store() *Store { return s.store }

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError carries a status code through handler returns; its message is a
// pure function of the request and resident rows, so error bodies replay
// deterministically too.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// handle wraps a handler with admission, latency, outcome accounting,
// and request tracing: the root span is the endpoint name, the wait for
// an execution slot is an "admission.wait" child, and the handler gets
// the root span to hang its phase spans under. With tracing disabled
// the span is nil and every trace call is a no-op.
func (s *Service) handle(name string, fn func(w http.ResponseWriter, r *http.Request, sp *trace.Span) error) http.Handler {
	lat := s.reg.RuntimeHistogram("serve.latency."+name, obs.ExpBounds(1, 24))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := s.rec.Start(name, r.Method, r.URL.RequestURI())
		wait := tr.Root().Child("admission.wait")
		release, ok := s.sched.admit()
		wait.End()
		if !ok {
			s.reg.RuntimeCounter("serve.rejected").Inc()
			tr.Root().SetAttr("http.status", http.StatusTooManyRequests)
			s.rec.Finish(tr)
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "server at capacity"})
			return
		}
		defer release()
		start := obs.Now()
		err := fn(w, r, tr.Root())
		lat.Observe(obs.Now().Sub(start).Microseconds())
		code := http.StatusOK
		if err != nil {
			code = http.StatusInternalServerError
			if ae, ok := err.(*apiError); ok {
				code = ae.code
			}
			if code >= 500 {
				s.reg.Counter("serve.http_5xx").Inc()
			}
		}
		// The status is a pure function of the request and resident rows
		// (like the response body), so it is a deterministic attribute.
		tr.Root().SetAttr("http.status", int64(code))
		s.rec.Finish(tr)
		if err != nil {
			writeJSON(w, code, map[string]string{"error": err.Error()})
			return
		}
		s.reg.Counter("serve.requests_served").Inc()
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// A failed response write means the client went away; there is no
	// channel left to report it on.
	_, _ = w.Write(append(b, '\n'))
}

// auditResponse mirrors core.CheckResult with stable JSON field order.
type auditResponse struct {
	Satisfied bool          `json:"satisfied"`
	Results   []auditResult `json:"results"`
}

type auditResult struct {
	Requirement string  `json:"requirement"`
	Satisfied   bool    `json:"satisfied"`
	Score       float64 `json:"score"`
	Details     string  `json:"details"`
}

// handleAudit checks coverage and completeness against the resident
// indexes. Query params: threshold (int), maxnull (float); defaults from
// the service config.
func (s *Service) handleAudit(w http.ResponseWriter, r *http.Request, sp *trace.Span) error {
	threshold := 0
	if v := r.URL.Query().Get("threshold"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return badRequest("bad threshold %q", v)
		}
		threshold = n
	}
	maxNull := s.cfg.MaxNullRate
	if v := r.URL.Query().Get("maxnull"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return badRequest("bad maxnull %q", v)
		}
		maxNull = f
	}
	rep := s.store.Audit(threshold, maxNull, s.cfg.StoreConfig.Workers, sp)
	resp := auditResponse{Satisfied: rep.Satisfied()}
	for _, res := range rep.Results {
		resp.Results = append(resp.Results, auditResult{
			Requirement: res.Requirement,
			Satisfied:   res.Satisfied,
			Score:       res.Score,
			Details:     res.Details,
		})
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

type tailorRequest struct {
	Need     map[string]int `json:"need"`
	Seed     uint64         `json:"seed"`
	MaxDraws int            `json:"max_draws"`
}

type tailorResponse struct {
	Rows     int     `json:"rows"`
	Draws    int     `json:"draws"`
	Cost     float64 `json:"cost"`
	Strategy string  `json:"strategy"`
	CSV      string  `json:"csv"`
}

// handleTailor runs distribution tailoring against the resident dataset and
// returns the collected rows as CSV inside the JSON response.
func (s *Service) handleTailor(w http.ResponseWriter, r *http.Request, sp *trace.Span) error {
	var req tailorRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return badRequest("bad tailor request: %v", err)
	}
	if len(req.Need) == 0 {
		return badRequest("tailor needs a non-empty need map")
	}
	need := make(map[dataset.GroupKey]int, len(req.Need))
	for k, n := range req.Need {
		if n < 0 {
			return badRequest("negative count for group %q", k)
		}
		need[dataset.GroupKey(k)] = n
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	res, data, err := s.store.Tailor(need, seed, req.MaxDraws, sp)
	if err != nil {
		return badRequest("%v", err)
	}
	var csv strings.Builder
	if err := data.WriteCSV(&csv); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, tailorResponse{
		Rows:     data.NumRows(),
		Draws:    res.Draws,
		Cost:     res.TotalCost,
		Strategy: res.Strategy,
		CSV:      csv.String(),
	})
	return nil
}

// handleQuery filters the current snapshot with a compiled predicate.
// Params: e (expression), mode=count|select (default count). The snapshot
// is captured once and evaluated lock-free, so long selects never block
// ingest.
func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request, sp *trace.Span) error {
	src := r.URL.Query().Get("e")
	if src == "" {
		return badRequest("missing e parameter")
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "count"
	}
	acq := sp.Child("snapshot.acquire")
	snap := s.store.View()
	acq.End()
	comp := sp.Child("query.compile")
	cp, err := expr.Compile(src, snap)
	comp.End()
	if err != nil {
		return badRequest("%v", err)
	}
	switch mode {
	case "count":
		writeJSON(w, http.StatusOK, map[string]int{"count": cp.CountFastTraced(sp)})
	case "select":
		var csv strings.Builder
		if err := cp.SelectTraced(sp).WriteCSV(&csv); err != nil {
			return err
		}
		writeJSON(w, http.StatusOK, map[string]string{"csv": csv.String()})
	default:
		return badRequest("bad mode %q (want count|select)", mode)
	}
	return nil
}

type discoveryRequest struct {
	Values    []string `json:"values"`
	Threshold float64  `json:"threshold"`
}

type discoveryMatch struct {
	Ref   string  `json:"ref"`
	Score float64 `json:"score"`
}

// handleDiscovery probes the resident LSH index for columns containing the
// posted value set.
func (s *Service) handleDiscovery(w http.ResponseWriter, r *http.Request, sp *trace.Span) error {
	var req discoveryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return badRequest("bad discovery request: %v", err)
	}
	if len(req.Values) == 0 {
		return badRequest("discovery needs a non-empty values list")
	}
	if req.Threshold <= 0 || req.Threshold > 1 {
		return badRequest("threshold must be in (0, 1]")
	}
	matches := s.store.Discover(req.Values, req.Threshold, sp)
	resp := struct {
		Matches []discoveryMatch `json:"matches"`
	}{Matches: []discoveryMatch{}}
	for _, m := range matches {
		resp.Matches = append(resp.Matches, discoveryMatch{Ref: m.Ref.String(), Score: m.Score})
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

type ingestRequest struct {
	CSV string `json:"csv"`
}

// handleIngest appends the posted CSV rows (with header, matching the
// resident schema) and advances every index incrementally.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request, sp *trace.Span) error {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return badRequest("bad ingest request: %v", err)
	}
	dec := sp.Child("ingest.decode")
	batch, err := dataset.ReadCSV(strings.NewReader(req.CSV), s.store.View().Schema())
	if err != nil {
		dec.End()
		return badRequest("%v", err)
	}
	dec.SetAttr("rows", int64(batch.NumRows()))
	dec.End()
	ingested, total, err := s.store.Ingest(batch, sp)
	if err != nil {
		return badRequest("%v", err)
	}
	writeJSON(w, http.StatusOK, map[string]int{"rows_ingested": ingested, "total_rows": total})
	return nil
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request, _ *trace.Span) error {
	writeJSON(w, http.StatusOK, s.store.Stats())
	return nil
}

// handleMetrics exposes the registry in the Prometheus text format,
// including the runtime-class request latency histograms with their
// p50/p90/p99 series, a redi_build_info gauge carrying the build's
// version and column-file format constants, and point-in-time admission
// scheduler gauges. It bypasses the admission queue so the service
// stays observable under overload.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Sample the scheduler right before export so the gauges reflect the
	// queue at scrape time. Runtime class: they never enter snapshots.
	s.reg.Gauge("serve.queue_depth").Set(float64(s.sched.queueDepth()))
	s.reg.Gauge("serve.busy_slots").Set(float64(s.sched.busySlots()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	magic, fver := colfile.Format()
	var b strings.Builder
	b.WriteString("# HELP redi_build_info constant build metadata of the serving binary\n")
	b.WriteString("# TYPE redi_build_info gauge\n")
	fmt.Fprintf(&b, "redi_build_info{version=%q,colfile_magic=%q,colfile_format=\"%d\"} 1\n",
		Version, magic, fver)
	if _, err := io.WriteString(w, b.String()); err != nil {
		s.reg.Counter("serve.http_5xx").Inc()
		return
	}
	if err := s.reg.WritePrometheus(w); err != nil {
		s.reg.Counter("serve.http_5xx").Inc()
	}
}
