package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"redi/internal/core"
	"redi/internal/dataset"
	"redi/internal/discovery"
	"redi/internal/expr"
	"redi/internal/rng"
)

func testSchema() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Attribute{Name: "race", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "age", Kind: dataset.Numeric},
		dataset.Attribute{Name: "income", Kind: dataset.Numeric},
	)
}

// makeBatch generates rows with a long-tailed race domain (so ingests keep
// growing the dictionaries) and occasional nulls.
func makeBatch(seed uint64, n int) *dataset.Dataset {
	r := rng.New(seed)
	races := []string{"black", "white", "asian", "hispanic"}
	sexes := []string{"F", "M"}
	d := dataset.New(testSchema())
	for i := 0; i < n; i++ {
		race := dataset.Cat(races[r.Intn(len(races))])
		if r.Intn(12) == 0 {
			race = dataset.Cat(fmt.Sprintf("race%02d", r.Intn(24)))
		}
		income := dataset.Num(float64(20000 + r.Intn(80000)))
		if r.Intn(15) == 0 {
			income = dataset.NullValue(dataset.Numeric)
		}
		d.MustAppendRow(race, dataset.Cat(sexes[r.Intn(2)]), dataset.Num(float64(18+r.Intn(60))), income)
	}
	return d
}

func csvOf(t *testing.T, d *dataset.Dataset) string {
	t.Helper()
	var sb strings.Builder
	if err := d.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func doReq(t *testing.T, h http.Handler, method, path, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, "http://test"+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rw := newRecorder()
	h.ServeHTTP(rw, req)
	return rw.code, rw.buf.String()
}

func newTestService(t *testing.T, d *dataset.Dataset, workers int) *Service {
	t.Helper()
	svc, err := NewService(d, Config{
		StoreConfig: StoreConfig{Threshold: 5, Workers: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestServeEquivalence is the serving layer's incremental ≡ rebuild
// contract end to end: after every ingest batch, the /audit, /query, and
// /discovery responses of services running at worker budgets 1, 2, and 8
// are byte-identical to each other and match a cold rebuild (core.Audit,
// expr on the accumulated rows, a one-shot LSH index over the final
// dictionaries).
func TestServeEquivalence(t *testing.T) {
	seed := makeBatch(1, 200)
	mirror := seed.Clone()
	budgets := []int{1, 2, 8}
	svcs := make([]*Service, len(budgets))
	for i, w := range budgets {
		svcs[i] = newTestService(t, seed.Clone(), w)
	}
	sens := []string{"race", "sex"}
	queries := []string{"age between 20 and 40", "race = 'black' and income > 50000"}

	for batchNo := 0; batchNo < 5; batchNo++ {
		batch := makeBatch(uint64(100+batchNo), 60+13*batchNo)
		body, err := json.Marshal(ingestRequest{CSV: csvOf(t, batch)})
		if err != nil {
			t.Fatal(err)
		}
		for _, svc := range svcs {
			if code, resp := doReq(t, svc, "POST", "/ingest", string(body)); code != http.StatusOK {
				t.Fatalf("batch %d: ingest status %d: %s", batchNo, code, resp)
			}
		}
		if err := mirror.AppendDataset(batch); err != nil {
			t.Fatal(err)
		}

		// Audit: identical across worker budgets, equal to a cold rebuild.
		_, want := doReq(t, svcs[0], "GET", "/audit?threshold=5&maxnull=0.2", "")
		for i, svc := range svcs[1:] {
			if _, got := doReq(t, svc, "GET", "/audit?threshold=5&maxnull=0.2", ""); got != want {
				t.Fatalf("batch %d: audit differs at workers %d:\n%s\nvs\n%s", batchNo, budgets[i+1], got, want)
			}
		}
		cold := core.Audit(mirror, []core.Requirement{
			core.CoverageRequirement{Attrs: sens, Threshold: 5},
			core.CompletenessRequirement{Sensitive: sens, MaxNullRate: 0.2},
		})
		coldResp := auditResponse{Satisfied: cold.Satisfied()}
		for _, res := range cold.Results {
			coldResp.Results = append(coldResp.Results, auditResult{
				Requirement: res.Requirement, Satisfied: res.Satisfied,
				Score: res.Score, Details: res.Details,
			})
		}
		coldJSON, err := json.Marshal(coldResp)
		if err != nil {
			t.Fatal(err)
		}
		if want != string(coldJSON)+"\n" {
			t.Fatalf("batch %d: served audit differs from cold rebuild:\n%s\nvs\n%s", batchNo, want, coldJSON)
		}

		// Query: count and select match compiled predicates on the mirror.
		for _, q := range queries {
			path := "/query?e=" + url.QueryEscape(q)
			_, got := doReq(t, svcs[0], "GET", path, "")
			cp, err := expr.Compile(q, mirror)
			if err != nil {
				t.Fatal(err)
			}
			var resp struct {
				Count int `json:"count"`
			}
			if err := json.Unmarshal([]byte(got), &resp); err != nil {
				t.Fatalf("batch %d: query %q: %v in %s", batchNo, q, err, got)
			}
			if resp.Count != cp.CountFast() {
				t.Fatalf("batch %d: query %q: served %d, cold %d", batchNo, q, resp.Count, cp.CountFast())
			}
			_, sel := doReq(t, svcs[0], "GET", path+"&mode=select", "")
			var selResp struct {
				CSV string `json:"csv"`
			}
			if err := json.Unmarshal([]byte(sel), &selResp); err != nil {
				t.Fatal(err)
			}
			if want := csvOf(t, cp.Select()); selResp.CSV != want {
				t.Fatalf("batch %d: query %q select differs from cold rebuild", batchNo, q)
			}
		}

		// Discovery: identical across budgets, equal to a one-shot index
		// over the mirror's final dictionaries.
		disc := `{"values":["black","white","asian","hispanic"],"threshold":0.3}`
		_, dwant := doReq(t, svcs[0], "POST", "/discovery", disc)
		for i, svc := range svcs[1:] {
			if _, got := doReq(t, svc, "POST", "/discovery", disc); got != dwant {
				t.Fatalf("batch %d: discovery differs at workers %d", batchNo, budgets[i+1])
			}
		}
		fresh, err := discovery.NewIncrementalLSH(128)
		if err != nil {
			t.Fatal(err)
		}
		for _, attr := range []string{"race", "sex"} {
			_, dict := mirror.Codes(attr)
			fresh.Upsert(discovery.ColumnRef{Table: "resident", Column: attr}, dict)
		}
		coldMatches := fresh.Query(map[string]bool{"black": true, "white": true, "asian": true, "hispanic": true}, 0.3)
		var dresp struct {
			Matches []discoveryMatch `json:"matches"`
		}
		if err := json.Unmarshal([]byte(dwant), &dresp); err != nil {
			t.Fatal(err)
		}
		if len(dresp.Matches) != len(coldMatches) {
			t.Fatalf("batch %d: discovery served %d matches, cold %d", batchNo, len(dresp.Matches), len(coldMatches))
		}
		for i, m := range coldMatches {
			if dresp.Matches[i].Ref != m.Ref.String() || dresp.Matches[i].Score != m.Score {
				t.Fatalf("batch %d: discovery match %d differs: %+v vs %+v", batchNo, i, dresp.Matches[i], m)
			}
		}
	}
}

// TestServeTailor pins determinism (same seed, same body) and that the
// collected rows meet every requested group count.
func TestServeTailor(t *testing.T) {
	svc := newTestService(t, makeBatch(3, 400), 2)
	body := `{"need":{"race=black;sex=F":25,"race=white;sex=M":10},"seed":42}`
	code, first := doReq(t, svc, "POST", "/tailor", body)
	if code != http.StatusOK {
		t.Fatalf("tailor status %d: %s", code, first)
	}
	if _, again := doReq(t, svc, "POST", "/tailor", body); again != first {
		t.Fatalf("tailor not deterministic:\n%s\nvs\n%s", first, again)
	}
	var resp tailorResponse
	if err := json.Unmarshal([]byte(first), &resp); err != nil {
		t.Fatal(err)
	}
	got, err := dataset.ReadCSV(strings.NewReader(resp.CSV), testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != resp.Rows {
		t.Fatalf("csv has %d rows, response says %d", got.NumRows(), resp.Rows)
	}
	counts := got.GroupBy("race", "sex")
	if c := counts.Count("race=black;sex=F"); c < 25 {
		t.Fatalf("black/F count %d < 25", c)
	}
	if c := counts.Count("race=white;sex=M"); c < 10 {
		t.Fatalf("white/M count %d < 10", c)
	}
	// A group absent from the resident data fails fast with 400.
	if code, resp := doReq(t, svc, "POST", "/tailor", `{"need":{"race=martian;sex=F":5},"seed":1}`); code != http.StatusBadRequest {
		t.Fatalf("absent group: status %d: %s", code, resp)
	}
}

// TestSchedulerFIFO drives the admission queue through a fully sequenced
// overflow: slots exhausted, dispatcher parked, queue filled, next arrival
// rejected, then FIFO draining.
func TestSchedulerFIFO(t *testing.T) {
	s := newScheduler(1, 2)
	defer s.close()
	rel0, ok := s.admit()
	if !ok {
		t.Fatal("first admit rejected")
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	spawn := func(id int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, ok := s.admit()
			if !ok {
				t.Errorf("queued request %d rejected", id)
				return
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			rel()
		}()
	}
	waitFor := func(cond func() bool, what string) {
		for i := 0; i < 1e7; i++ {
			if cond() {
				return
			}
			runtime.Gosched()
		}
		t.Fatalf("timeout waiting for %s", what)
	}
	// b1 is dequeued by the dispatcher, which then parks on the full slot.
	spawn(1)
	waitFor(func() bool { return s.pending.Load() == 1 && len(s.queue) == 0 }, "dispatcher parked on b1")
	// b2 and b3 fill the depth-2 queue.
	spawn(2)
	waitFor(func() bool { return len(s.queue) == 1 }, "b2 queued")
	spawn(3)
	waitFor(func() bool { return len(s.queue) == 2 }, "b3 queued")
	// The queue is full and the dispatcher is parked: the next arrival is
	// rejected immediately.
	if _, ok := s.admit(); ok {
		t.Fatal("overflow admit was not rejected")
	}
	rel0()
	wg.Wait()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("admission order %v, want [1 2 3]", order)
	}
}

// TestServe429 exercises backpressure at the HTTP layer: with one slot held
// and no queue, the next request gets 429 and the rejection counter moves.
func TestServe429(t *testing.T) {
	svc, err := NewService(makeBatch(5, 50), Config{
		StoreConfig:   StoreConfig{Threshold: 3},
		MaxConcurrent: 1,
		QueueDepth:    -1, // unbuffered: at most one request parked at the dispatcher
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// With an unbuffered queue, admission requires the dispatcher to be
	// parked at its receive; retry until the goroutine has started up.
	var rel func()
	ok := false
	for i := 0; i < 1e7 && !ok; i++ {
		rel, ok = svc.sched.admit()
		runtime.Gosched()
	}
	if !ok {
		t.Fatal("manual admit rejected")
	}
	type result struct {
		code int
		body string
	}
	first := make(chan result, 1)
	go func() {
		code, body := doReq(t, svc, "GET", "/stats", "")
		first <- result{code, body}
	}()
	// Wait until the dispatcher holds the parked request; the rendezvous
	// queue is then empty and busy, so the next request must be rejected.
	for i := 0; i < 1e7 && svc.sched.pending.Load() != 1; i++ {
		runtime.Gosched()
	}
	if svc.sched.pending.Load() != 1 {
		t.Fatal("dispatcher never parked the first request")
	}
	if code, _ := doReq(t, svc, "GET", "/stats", ""); code != http.StatusTooManyRequests {
		t.Fatalf("second request got %d, want 429", code)
	}
	rel()
	if r := <-first; r.code != http.StatusOK {
		t.Fatalf("parked request got %d: %s", r.code, r.body)
	}
	if v := svc.reg.Report().RuntimeCounters["serve.rejected"]; v != 1 {
		t.Fatalf("serve.rejected = %d, want 1", v)
	}
}

// TestReplayDeterministic replays the checked-in request log against two
// freshly seeded services and requires byte-identical output — the
// end-to-end guarantee that no response leaks wall-clock or ordering
// nondeterminism.
func TestReplayDeterministic(t *testing.T) {
	f, err := os.Open("testdata/replay.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty replay log")
	}
	run := func() string {
		sf, err := os.Open("testdata/seed.csv")
		if err != nil {
			t.Fatal(err)
		}
		defer sf.Close()
		d, err := dataset.ReadCSV(sf, testSchema())
		if err != nil {
			t.Fatal(err)
		}
		svc := newTestService(t, d, 2)
		var buf bytes.Buffer
		if err := Replay(svc, recs, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay output differs between runs:\n%s\n----\n%s", a, b)
	}
	// Every API request in the log succeeds; only the final /nosuch 404s.
	for _, line := range strings.Split(a, "\n") {
		if line == "404" || strings.HasPrefix(line, "4") && len(line) == 3 || strings.HasPrefix(line, "5") && len(line) == 3 {
			if line != "404" {
				t.Fatalf("unexpected error status %s in replay:\n%s", line, a)
			}
		}
	}
	if !strings.Contains(a, "## GET /nosuch\n404\n") {
		t.Fatalf("missing 404 block for /nosuch:\n%s", a)
	}
}

func TestReadLogErrors(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("{broken")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadLog(strings.NewReader(`{"path":"/x"}`)); err == nil {
		t.Fatal("record without method accepted")
	}
	recs, err := ReadLog(strings.NewReader("\n# comment\n" + `{"method":"GET","path":"/stats"}` + "\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}

// TestServeConcurrent hammers every read endpoint while a writer streams
// ingest batches; under -race this pins the locking discipline, and every
// response must be well-formed (200, never 5xx).
func TestServeConcurrent(t *testing.T) {
	svc := newTestService(t, makeBatch(7, 300), 2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	paths := []struct{ method, path, body string }{
		{"GET", "/query?e=" + url.QueryEscape("age between 20 and 50"), ""},
		{"GET", "/audit?threshold=4&maxnull=0.3", ""},
		{"POST", "/discovery", `{"values":["black","white"],"threshold":0.3}`},
		{"GET", "/stats", ""},
		{"GET", "/metrics", ""},
	}
	for _, p := range paths {
		wg.Add(1)
		go func(method, path, body string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				code, resp := doReq(t, svc, method, path, body)
				if code != http.StatusOK {
					t.Errorf("%s %s: status %d: %s", method, path, code, resp)
					return
				}
			}
		}(p.method, p.path, p.body)
	}
	for i := 0; i < 8; i++ {
		batch := makeBatch(uint64(500+i), 40)
		body, err := json.Marshal(ingestRequest{CSV: csvOf(t, batch)})
		if err != nil {
			t.Fatal(err)
		}
		if code, resp := doReq(t, svc, "POST", "/ingest", string(body)); code != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, code, resp)
		}
	}
	close(done)
	wg.Wait()
	snap, err := svc.reg.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snap), `"serve.rows_ingested": 320`) {
		t.Fatalf("rows_ingested counter wrong:\n%s", snap)
	}
}
