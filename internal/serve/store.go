// Package serve is REDI's resident integration service: one dataset held in
// memory behind an HTTP JSON API, with audit, tailoring, query, and
// discovery served from incrementally maintained indexes instead of
// per-request rebuilds.
//
// The consistency model has two tiers:
//
//   - Snapshot readers (/query, /tailor, completeness checks) work on a
//     copy-on-write dataset snapshot captured at the last ingest. They grab
//     the snapshot pointer under a read lock and then run lock-free — the
//     snapshot is immutable — so they never block ingest and never see torn
//     rows.
//   - Index readers (/audit coverage walks, /discovery probes, tailoring's
//     group index) read the resident mutable indexes and therefore hold the
//     read lock for the duration; ingest (the sole writer) waits for them.
//
// Every index is maintained incrementally on append under the write lock —
// dataset.Groups.Append, coverage.Space.AppendRows, and
// discovery.IncrementalLSH.Upsert — each of which is contractually
// bit-identical to a from-scratch rebuild over the same rows.
package serve

import (
	"errors"
	"fmt"
	"sync"

	"redi/internal/core"
	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/discovery"
	"redi/internal/obs"
)

// StoreConfig configures a resident store.
type StoreConfig struct {
	// Name labels the resident table in discovery results (default
	// "resident").
	Name string
	// Sensitive lists the grouping attributes for the group and coverage
	// indexes (default: schema roles).
	Sensitive []string
	// Threshold is the default coverage threshold for audits (default 10).
	Threshold int
	// MinhashK is the LSH signature width (default 128).
	MinhashK int
	// Workers bounds per-request parallelism (parallel.Workers semantics).
	Workers int
	// Obs receives the store's counters (nil: a private registry).
	Obs *obs.Registry
}

// Store holds one dataset resident with its incremental indexes.
type Store struct {
	cfg StoreConfig
	reg *obs.Registry

	// mu orders the sole writer (Ingest) against index readers. Snapshot
	// readers only hold it long enough to copy the snap pointer.
	mu     sync.RWMutex
	live   *dataset.Dataset
	snap   *dataset.Dataset
	groups *dataset.Groups
	space  *coverage.Space
	lsh    *discovery.IncrementalLSH
	// dictLens[i] is how much of catAttrs[i]'s dictionary has been fed to
	// the LSH index; ingest upserts only the suffix beyond it.
	catAttrs []string
	dictLens []int

	// walkMu serializes pattern-space walks: concurrent audits would race
	// on the space's shared bitmap pool.
	walkMu sync.Mutex
}

// NewStore builds the resident store: group index, coverage space, and LSH
// ensemble over the seed dataset, plus the first snapshot. The store takes
// ownership of d; callers must not mutate it afterwards.
func NewStore(d *dataset.Dataset, cfg StoreConfig) (*Store, error) {
	if cfg.Name == "" {
		cfg.Name = "resident"
	}
	if len(cfg.Sensitive) == 0 {
		cfg.Sensitive = d.Schema().ByRole(dataset.Sensitive)
	}
	if len(cfg.Sensitive) == 0 {
		return nil, errors.New("serve: no sensitive attributes (set StoreConfig.Sensitive or schema roles)")
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 10
	}
	if cfg.MinhashK == 0 {
		cfg.MinhashK = 128
	}
	lsh, err := discovery.NewIncrementalLSH(cfg.MinhashK)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lsh.Workers = cfg.Workers
	lsh.Obs = reg
	s := &Store{cfg: cfg, reg: reg, live: d, lsh: lsh}
	s.groups = d.GroupBy(cfg.Sensitive...)
	s.space = coverage.NewSpace(d, cfg.Sensitive, cfg.Threshold)
	s.space.Obs = reg
	schema := d.Schema()
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		if a.Kind != dataset.Categorical {
			continue
		}
		_, dict := d.CodesRange(a.Name, 0, 0)
		s.lsh.Upsert(discovery.ColumnRef{Table: cfg.Name, Column: a.Name}, dict)
		s.catAttrs = append(s.catAttrs, a.Name)
		s.dictLens = append(s.dictLens, len(dict))
	}
	s.warmGroups()
	s.snap = d.Snapshot()
	return s, nil
}

// warmGroups pre-builds the group index's lazy key caches so concurrent
// readers (which hold only the read lock) never trigger a lazy build.
func (s *Store) warmGroups() {
	keys := s.groups.Keys()
	if len(keys) > 0 {
		s.groups.GID(keys[0])
	}
}

// Ingest appends a batch, advances every index incrementally, and refreshes
// the snapshot. It returns the number of rows appended and the new total.
func (s *Store) Ingest(batch *dataset.Dataset) (ingested, total int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	from := s.live.NumRows()
	if err := s.live.AppendDataset(batch); err != nil {
		return 0, from, err
	}
	s.groups.Append(s.live, from)
	s.space.AppendRows(s.live, from)
	increments := 2
	for i, attr := range s.catAttrs {
		_, dict := s.live.CodesRange(attr, 0, 0)
		if len(dict) > s.dictLens[i] {
			s.lsh.Upsert(discovery.ColumnRef{Table: s.cfg.Name, Column: attr}, dict[s.dictLens[i]:])
			s.dictLens[i] = len(dict)
			increments++
		}
	}
	s.warmGroups()
	s.snap = s.live.Snapshot()
	s.reg.Counter("serve.rows_ingested").Add(int64(batch.NumRows()))
	s.reg.Counter("serve.index_increments").Add(int64(increments))
	return batch.NumRows(), s.live.NumRows(), nil
}

// View returns the current immutable snapshot. The caller may read it
// without any locking, concurrently with any number of ingests.
func (s *Store) View() *dataset.Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// Audit checks coverage (on the resident incremental pattern space) and
// completeness (on the current snapshot) at the given threshold and null
// rate. threshold <= 0 and maxNull < 0 fall back to the store defaults.
func (s *Store) Audit(threshold int, maxNull float64, workers int) *core.AuditReport {
	if threshold <= 0 {
		threshold = s.cfg.Threshold
	}
	if maxNull < 0 {
		maxNull = 0.05
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := s.snap
	cov := core.CoverageRequirement{Attrs: s.cfg.Sensitive, Threshold: threshold}
	comp := core.CompletenessRequirement{Sensitive: s.cfg.Sensitive, MaxNullRate: maxNull}
	s.walkMu.Lock()
	covRes := cov.CheckSpace(s.space, workers)
	s.walkMu.Unlock()
	return &core.AuditReport{Results: []core.CheckResult{covRes, comp.Check(snap)}}
}

// Discover probes the resident LSH index for columns whose estimated
// containment of the query domain is at least threshold.
func (s *Store) Discover(values []string, threshold float64) []discovery.ColumnMatch {
	query := make(map[string]bool, len(values))
	for _, v := range values {
		query[v] = true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lsh.Query(query, threshold)
}

// Stats is a point-in-time summary of the resident state.
type Stats struct {
	Name       string   `json:"name"`
	Rows       int      `json:"rows"`
	Groups     int      `json:"groups"`
	Sensitive  []string `json:"sensitive"`
	LSHColumns int      `json:"lsh_columns"`
	Threshold  int      `json:"threshold"`
}

// Stats reports the resident row, group, and index cardinalities.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Name:       s.cfg.Name,
		Rows:       s.live.NumRows(),
		Groups:     s.groups.NumGroups(),
		Sensitive:  s.cfg.Sensitive,
		LSHColumns: s.lsh.NumColumns(),
		Threshold:  s.cfg.Threshold,
	}
}
