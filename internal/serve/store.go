// Package serve is REDI's resident integration service: one dataset held in
// memory behind an HTTP JSON API, with audit, tailoring, query, and
// discovery served from incrementally maintained indexes instead of
// per-request rebuilds.
//
// The consistency model has two tiers:
//
//   - Snapshot readers (/query, /tailor, completeness checks) work on a
//     copy-on-write dataset snapshot captured at the last ingest. They grab
//     the snapshot pointer under a read lock and then run lock-free — the
//     snapshot is immutable — so they never block ingest and never see torn
//     rows.
//   - Index readers (/audit coverage walks, /discovery probes, tailoring's
//     group index) read the resident mutable indexes and therefore hold the
//     read lock for the duration; ingest (the sole writer) waits for them.
//
// Every index is maintained incrementally on append under the write lock —
// dataset.Groups.Append, coverage.Space.AppendRows, and
// discovery.IncrementalLSH.Upsert — each of which is contractually
// bit-identical to a from-scratch rebuild over the same rows.
package serve

import (
	"errors"
	"fmt"
	"sync"

	"redi/internal/core"
	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/discovery"
	"redi/internal/obs"
	"redi/internal/trace"
)

// StoreConfig configures a resident store.
type StoreConfig struct {
	// Name labels the resident table in discovery results (default
	// "resident").
	Name string
	// Sensitive lists the grouping attributes for the group and coverage
	// indexes (default: schema roles).
	Sensitive []string
	// Threshold is the default coverage threshold for audits (default 10).
	Threshold int
	// MinhashK is the LSH signature width (default 128).
	MinhashK int
	// Workers bounds per-request parallelism (parallel.Workers semantics).
	Workers int
	// Obs receives the store's counters (nil: a private registry).
	Obs *obs.Registry
}

// Store holds one dataset resident with its incremental indexes.
type Store struct {
	cfg StoreConfig
	reg *obs.Registry

	// mu orders the sole writer (Ingest) against index readers. Snapshot
	// readers only hold it long enough to copy the snap pointer.
	mu     sync.RWMutex
	live   *dataset.Dataset
	snap   *dataset.Dataset
	groups *dataset.Groups
	space  *coverage.Space
	lsh    *discovery.IncrementalLSH
	// dictLens[i] is how much of catAttrs[i]'s dictionary has been fed to
	// the LSH index; ingest upserts only the suffix beyond it.
	catAttrs []string
	dictLens []int

	// walkMu serializes pattern-space walks: concurrent audits would race
	// on the space's shared bitmap pool.
	walkMu sync.Mutex
}

// NewStore builds the resident store: group index, coverage space, and LSH
// ensemble over the seed dataset, plus the first snapshot. The store takes
// ownership of d; callers must not mutate it afterwards.
func NewStore(d *dataset.Dataset, cfg StoreConfig) (*Store, error) {
	if cfg.Name == "" {
		cfg.Name = "resident"
	}
	if len(cfg.Sensitive) == 0 {
		cfg.Sensitive = d.Schema().ByRole(dataset.Sensitive)
	}
	if len(cfg.Sensitive) == 0 {
		return nil, errors.New("serve: no sensitive attributes (set StoreConfig.Sensitive or schema roles)")
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 10
	}
	if cfg.MinhashK == 0 {
		cfg.MinhashK = 128
	}
	lsh, err := discovery.NewIncrementalLSH(cfg.MinhashK)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lsh.Workers = cfg.Workers
	lsh.Obs = reg
	s := &Store{cfg: cfg, reg: reg, live: d, lsh: lsh}
	s.groups = d.GroupBy(cfg.Sensitive...)
	s.space = coverage.NewSpace(d, cfg.Sensitive, cfg.Threshold)
	s.space.Obs = reg
	schema := d.Schema()
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		if a.Kind != dataset.Categorical {
			continue
		}
		_, dict := d.CodesRange(a.Name, 0, 0)
		s.lsh.Upsert(discovery.ColumnRef{Table: cfg.Name, Column: a.Name}, dict)
		s.catAttrs = append(s.catAttrs, a.Name)
		s.dictLens = append(s.dictLens, len(dict))
	}
	s.warmGroups()
	s.snap = d.Snapshot()
	return s, nil
}

// warmGroups pre-builds the group index's lazy key caches so concurrent
// readers (which hold only the read lock) never trigger a lazy build.
func (s *Store) warmGroups() {
	keys := s.groups.Keys()
	if len(keys) > 0 {
		s.groups.GID(keys[0])
	}
}

// Ingest appends a batch, advances every index incrementally, and refreshes
// the snapshot. It returns the number of rows appended and the new total.
// Each index-advance phase lands in its own child span under sp (nil =
// untraced): append, groups_advance, space_advance, lsh_upsert,
// snapshot_refresh.
func (s *Store) Ingest(batch *dataset.Dataset, sp *trace.Span) (ingested, total int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	from := s.live.NumRows()
	ap := sp.Child("ingest.append")
	if err := s.live.AppendDataset(batch); err != nil {
		ap.End()
		return 0, from, err
	}
	ap.SetAttr("rows", int64(batch.NumRows()))
	ap.End()
	gp := sp.Child("ingest.groups_advance")
	s.groups.Append(s.live, from)
	gp.SetAttr("gids", int64(s.groups.NumGroups()))
	gp.End()
	cp := sp.Child("ingest.space_advance")
	s.space.AppendRows(s.live, from)
	cp.End()
	lp := sp.Child("ingest.lsh_upsert")
	increments := 2
	for i, attr := range s.catAttrs {
		_, dict := s.live.CodesRange(attr, 0, 0)
		if len(dict) > s.dictLens[i] {
			s.lsh.Upsert(discovery.ColumnRef{Table: s.cfg.Name, Column: attr}, dict[s.dictLens[i]:])
			s.dictLens[i] = len(dict)
			increments++
		}
	}
	lp.SetAttr("upserts", int64(increments-2))
	lp.End()
	rp := sp.Child("ingest.snapshot_refresh")
	s.warmGroups()
	s.snap = s.live.Snapshot()
	rp.SetAttr("total_rows", int64(s.live.NumRows()))
	rp.End()
	s.reg.Counter("serve.rows_ingested").Add(int64(batch.NumRows()))
	s.reg.Counter("serve.index_increments").Add(int64(increments))
	return batch.NumRows(), s.live.NumRows(), nil
}

// View returns the current immutable snapshot. The caller may read it
// without any locking, concurrently with any number of ingests.
func (s *Store) View() *dataset.Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// Audit checks coverage (on the resident incremental pattern space) and
// completeness (on the current snapshot) at the given threshold and null
// rate. threshold <= 0 and maxNull < 0 fall back to the store defaults.
// Under a non-nil span it records snapshot.acquire, audit.coverage
// (with the MUP walk's tallies nested), and audit.completeness phases.
func (s *Store) Audit(threshold int, maxNull float64, workers int, sp *trace.Span) *core.AuditReport {
	if threshold <= 0 {
		threshold = s.cfg.Threshold
	}
	if maxNull < 0 {
		maxNull = 0.05
	}
	acq := sp.Child("snapshot.acquire")
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := s.snap
	acq.End()
	cov := core.CoverageRequirement{Attrs: s.cfg.Sensitive, Threshold: threshold}
	comp := core.CompletenessRequirement{Sensitive: s.cfg.Sensitive, MaxNullRate: maxNull}
	cs := sp.Child("audit.coverage")
	s.walkMu.Lock()
	covRes := cov.CheckSpaceTraced(s.space, workers, cs)
	s.walkMu.Unlock()
	cs.SetAttr("satisfied", boolAttr(covRes.Satisfied))
	cs.End()
	cc := sp.Child("audit.completeness")
	var compRes core.CheckResult
	if cc != nil {
		compRes = comp.CheckTraced(snap, cc)
	} else {
		compRes = comp.Check(snap)
	}
	cc.SetAttr("satisfied", boolAttr(compRes.Satisfied))
	cc.End()
	return &core.AuditReport{Results: []core.CheckResult{covRes, compRes}}
}

// Discover probes the resident LSH index for columns whose estimated
// containment of the query domain is at least threshold. Under a
// non-nil span the probe and verify phases land as child spans.
func (s *Store) Discover(values []string, threshold float64, sp *trace.Span) []discovery.ColumnMatch {
	query := make(map[string]bool, len(values))
	for _, v := range values {
		query[v] = true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lsh.QueryTraced(query, threshold, sp)
}

// boolAttr converts a deterministic boolean outcome to a 0/1 attribute.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Stats is a point-in-time summary of the resident state.
type Stats struct {
	Name       string   `json:"name"`
	Rows       int      `json:"rows"`
	Groups     int      `json:"groups"`
	Sensitive  []string `json:"sensitive"`
	LSHColumns int      `json:"lsh_columns"`
	Threshold  int      `json:"threshold"`
}

// Stats reports the resident row, group, and index cardinalities.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Name:       s.cfg.Name,
		Rows:       s.live.NumRows(),
		Groups:     s.groups.NumGroups(),
		Sensitive:  s.cfg.Sensitive,
		LSHColumns: s.lsh.NumColumns(),
		Threshold:  s.cfg.Threshold,
	}
}
