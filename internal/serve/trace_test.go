package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"redi/internal/dataset"
	"redi/internal/rng"
)

func readTestLog(t *testing.T) []Record {
	t.Helper()
	f, err := os.Open("testdata/replay.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func loadSeedCSV(t *testing.T) *dataset.Dataset {
	t.Helper()
	f, err := os.Open("testdata/seed.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := dataset.ReadCSV(f, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestTraceDetAcrossWorkers is the tracing layer's determinism contract:
// a randomized mix of audit, query, discovery, ingest, and tailor
// requests is driven sequentially against services at worker budgets 1,
// 2, and 8, and every recorded span tree's deterministic projection —
// names, nesting, ordered attributes — must be byte-identical across
// budgets. Wall-clock timings are excluded from the projection by
// construction, so nothing needs masking.
func TestTraceDetAcrossWorkers(t *testing.T) {
	budgets := []int{1, 2, 8}
	svcs := make([]*Service, len(budgets))
	for i, w := range budgets {
		svc, err := NewService(makeBatch(11, 250), Config{
			StoreConfig: StoreConfig{Threshold: 4, Workers: w},
			TraceBuffer: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		svcs[i] = svc
	}
	queries := []string{
		"age between 20 and 50",
		"race = 'black' and income > 40000",
		"sex = 'F' or age > 55",
	}
	r := rng.New(99)
	nreq := 0
	for step := 0; step < 36; step++ {
		var method, path, body string
		switch r.Intn(5) {
		case 0:
			method, path = "GET", "/audit?threshold=4&maxnull=0.3"
		case 1:
			method, path = "GET", "/query?e="+url.QueryEscape(queries[r.Intn(len(queries))])
		case 2:
			method, path, body = "POST", "/discovery", `{"values":["black","white","asian"],"threshold":0.3}`
		case 3:
			enc, err := json.Marshal(ingestRequest{CSV: csvOf(t, makeBatch(uint64(1000+step), 30))})
			if err != nil {
				t.Fatal(err)
			}
			method, path, body = "POST", "/ingest", string(enc)
		case 4:
			method, path, body = "POST", "/tailor", `{"need":{"race=black;sex=F":5},"seed":3}`
		}
		nreq++
		for i, svc := range svcs {
			if code, resp := doReq(t, svc, method, path, body); code != http.StatusOK {
				t.Fatalf("step %d workers %d: %s %s -> %d: %s", step, budgets[i], method, path, code, resp)
			}
		}
	}
	base := svcs[0].Recorder().Traces()
	if len(base) != nreq {
		t.Fatalf("recorder holds %d traces, want %d", len(base), nreq)
	}
	for i, svc := range svcs[1:] {
		got := svc.Recorder().Traces()
		if len(got) != len(base) {
			t.Fatalf("workers %d recorded %d traces, workers 1 recorded %d", budgets[i+1], len(got), len(base))
		}
		for k := range base {
			if base[k].ID != got[k].ID || base[k].Name != got[k].Name || base[k].Path != got[k].Path {
				t.Fatalf("trace %d metadata differs at workers %d: %+v vs %+v", k, budgets[i+1], got[k], base[k])
			}
			a, b := base[k].Root().DetJSON(), got[k].Root().DetJSON()
			if !bytes.Equal(a, b) {
				t.Fatalf("trace %d (%s %s) det projection differs at workers %d:\n%s\nvs\n%s",
					k, base[k].Method, base[k].Path, budgets[i+1], a, b)
			}
		}
	}
}

// TestDebugRequestEndpoints drives the flight-recorder HTTP surface:
// listing, single-trace fetch in every format, the slow log, and the
// error paths.
func TestDebugRequestEndpoints(t *testing.T) {
	svc, err := NewService(makeBatch(21, 120), Config{
		StoreConfig:        StoreConfig{Threshold: 4, Workers: 2},
		TraceBuffer:        16,
		SlowTraceThreshold: time.Nanosecond, // everything qualifies as slow
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if code, _ := doReq(t, svc, "GET", "/audit?threshold=4&maxnull=0.3", ""); code != http.StatusOK {
		t.Fatal("audit failed")
	}
	if code, _ := doReq(t, svc, "GET", "/stats", ""); code != http.StatusOK {
		t.Fatal("stats failed")
	}

	code, body := doReq(t, svc, "GET", "/debug/requests", "")
	if code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	var list struct {
		Enabled bool `json:"enabled"`
		Traces  []struct {
			ID    uint64 `json:"id"`
			Name  string `json:"name"`
			Spans int    `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if !list.Enabled || len(list.Traces) != 2 {
		t.Fatalf("list = %s", body)
	}
	if list.Traces[0].Name != "audit" || list.Traces[0].ID != 1 || list.Traces[0].Spans < 4 {
		t.Fatalf("audit trace entry = %+v", list.Traces[0])
	}

	// det (default) carries attrs but no timings; full carries both.
	_, det := doReq(t, svc, "GET", "/debug/requests/1", "")
	if !strings.Contains(det, `"name":"audit"`) || !strings.Contains(det, "coverage.mup_walk") {
		t.Fatalf("det fetch = %s", det)
	}
	if strings.Contains(det, "dur_us") {
		t.Fatalf("det projection leaked timings: %s", det)
	}
	_, full := doReq(t, svc, "GET", "/debug/requests/1?format=full", "")
	if !strings.Contains(full, "dur_us") {
		t.Fatalf("full fetch has no timings: %s", full)
	}
	_, chrome := doReq(t, svc, "GET", "/debug/requests/1?format=chrome", "")
	var ch struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int64  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chrome), &ch); err != nil {
		t.Fatalf("chrome export unparsable: %v in %s", err, chrome)
	}
	if len(ch.TraceEvents) < 4 || ch.TraceEvents[0].Ph != "X" || ch.TraceEvents[0].Pid != 1 {
		t.Fatalf("chrome export = %s", chrome)
	}

	// Both requests met the 1ns slow threshold.
	_, slow := doReq(t, svc, "GET", "/debug/requests/slow", "")
	var slowResp struct {
		ThresholdUS int64 `json:"threshold_us"`
		Traces      []struct {
			DurationUS int64 `json:"duration_us"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(slow), &slowResp); err != nil {
		t.Fatal(err)
	}
	if len(slowResp.Traces) != 2 {
		t.Fatalf("slow log = %s", slow)
	}

	if code, _ := doReq(t, svc, "GET", "/debug/requests/notanumber", ""); code != http.StatusBadRequest {
		t.Fatalf("bad id status %d", code)
	}
	if code, _ := doReq(t, svc, "GET", "/debug/requests/999", ""); code != http.StatusNotFound {
		t.Fatalf("missing id status %d", code)
	}
	if code, _ := doReq(t, svc, "GET", "/debug/requests/1?format=wat", ""); code != http.StatusBadRequest {
		t.Fatalf("bad format status %d", code)
	}
}

// TestTracingDisabled pins the disabled state: a negative buffer turns
// the recorder off, requests still succeed, and /debug/requests reports
// enabled=false.
func TestTracingDisabled(t *testing.T) {
	svc, err := NewService(makeBatch(23, 80), Config{
		StoreConfig: StoreConfig{Threshold: 4},
		TraceBuffer: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Recorder() != nil {
		t.Fatal("negative TraceBuffer should disable the recorder")
	}
	if code, _ := doReq(t, svc, "GET", "/audit?threshold=4&maxnull=0.5", ""); code != http.StatusOK {
		t.Fatal("audit failed with tracing disabled")
	}
	code, body := doReq(t, svc, "GET", "/debug/requests", "")
	if code != http.StatusOK || !strings.Contains(body, `"enabled":false`) {
		t.Fatalf("disabled listing = %d %s", code, body)
	}
}

// TestStatsMetricsBodiesUnderIngest validates the /stats and /metrics
// response bodies — not just status codes — while a writer streams
// ingest batches; under -race this doubles as a locking check on the
// scheduler gauges and the build-info prelude.
func TestStatsMetricsBodiesUnderIngest(t *testing.T) {
	svc := newTestService(t, makeBatch(13, 200), 2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			code, body := doReq(t, svc, "GET", "/stats", "")
			if code != http.StatusOK {
				t.Errorf("/stats status %d: %s", code, body)
				return
			}
			var st Stats
			if err := json.Unmarshal([]byte(body), &st); err != nil {
				t.Errorf("/stats unparsable: %v in %s", err, body)
				return
			}
			if st.Rows < 200 || st.Groups <= 0 || st.Name != "resident" {
				t.Errorf("implausible stats %+v", st)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			code, body := doReq(t, svc, "GET", "/metrics", "")
			if code != http.StatusOK {
				t.Errorf("/metrics status %d", code)
				return
			}
			for _, want := range []string{
				"# TYPE redi_build_info gauge",
				`redi_build_info{version="` + Version + `"`,
				"# TYPE redi_serve_queue_depth gauge",
				"# TYPE redi_serve_busy_slots gauge",
				"redi_serve_rows_ingested",
			} {
				if !strings.Contains(body, want) {
					t.Errorf("/metrics missing %q:\n%s", want, body)
					return
				}
			}
		}
	}()
	for i := 0; i < 8; i++ {
		enc, err := json.Marshal(ingestRequest{CSV: csvOf(t, makeBatch(uint64(700+i), 40))})
		if err != nil {
			t.Fatal(err)
		}
		if code, resp := doReq(t, svc, "POST", "/ingest", string(enc)); code != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, code, resp)
		}
	}
	close(done)
	wg.Wait()
	// The busy-slot gauge sampled during our own /metrics scrape counts
	// at least that scrape... /metrics bypasses admission, so the final
	// quiescent read reports an empty scheduler.
	_, body := doReq(t, svc, "GET", "/metrics", "")
	if !strings.Contains(body, "redi_serve_queue_depth 0") || !strings.Contains(body, "redi_serve_busy_slots 0") {
		t.Fatalf("quiescent scheduler gauges not zero:\n%s", body)
	}
	if v := svc.reg.Report().Counters["serve.rows_ingested"]; v != 320 {
		t.Fatalf("rows_ingested = %d, want 320", v)
	}
}

// TestReplayTwiceIncludesDebug replays the checked-in log (which now
// fetches /debug/requests) twice against identically seeded services:
// the outputs — including the det trace projections — must be
// byte-identical, proving the debug surface is replay-safe.
func TestReplayTwiceIncludesDebug(t *testing.T) {
	recs := readTestLog(t)
	hasDebug := false
	for _, rec := range recs {
		if strings.HasPrefix(rec.Path, "/debug/requests") {
			hasDebug = true
		}
	}
	if !hasDebug {
		t.Fatal("replay log no longer exercises /debug/requests")
	}
	run := func() string {
		svc := newTestService(t, loadSeedCSV(t), 2)
		var buf bytes.Buffer
		if err := Replay(svc, recs, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay with debug fetches differs between runs:\n%s\n----\n%s", a, b)
	}
	if !strings.Contains(a, `"enabled":true`) {
		t.Fatalf("debug listing missing from replay output:\n%s", a)
	}
	if !strings.Contains(a, "coverage.mup_walk") {
		t.Fatalf("audit trace spans missing from replayed det fetch:\n%s", a)
	}
	if strings.Contains(a, "dur_us") {
		t.Fatalf("timings leaked into replay output:\n%s", a)
	}
}
