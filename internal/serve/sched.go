package serve

import "sync/atomic"

// scheduler is the service's FIFO admission queue: at most `slots` requests
// execute concurrently, at most `depth` more wait in line, and anything
// beyond that is rejected immediately (the HTTP layer turns a rejection
// into 429 Too Many Requests). Admission order is arrival order — the queue
// is a channel, and a single dispatcher goroutine grants slots strictly in
// dequeue order — so a burst cannot starve an earlier request.
type scheduler struct {
	queue chan chan struct{} // waiting requests, FIFO; each holds its grant channel
	slots chan struct{}      // concurrency tokens
	done  chan struct{}

	// pending is 1 while the dispatcher holds a dequeued request that is
	// still waiting for a slot (observable by tests to sequence admissions
	// deterministically).
	pending atomic.Int32
}

func newScheduler(slots, depth int) *scheduler {
	if slots <= 0 {
		slots = 1
	}
	if depth < 0 {
		depth = 0
	}
	s := &scheduler{
		queue: make(chan chan struct{}, depth),
		slots: make(chan struct{}, slots),
		done:  make(chan struct{}),
	}
	go s.dispatch()
	return s
}

func (s *scheduler) dispatch() {
	for {
		select {
		case <-s.done:
			return
		case g := <-s.queue:
			s.pending.Store(1)
			select {
			case s.slots <- struct{}{}:
				s.pending.Store(0)
				close(g)
			case <-s.done:
				return
			}
		}
	}
}

// admit blocks until the request is granted a slot and returns the release
// func, or returns ok=false immediately when the queue is full (or the
// scheduler is closed). The caller must invoke release exactly once.
func (s *scheduler) admit() (release func(), ok bool) {
	g := make(chan struct{})
	select {
	case s.queue <- g:
	default:
		return nil, false
	}
	select {
	case <-g:
		return func() { <-s.slots }, true
	case <-s.done:
		return nil, false
	}
}

func (s *scheduler) close() { close(s.done) }

// queueDepth is a point-in-time count of requests waiting for admission
// (including one the dispatcher holds while it waits for a slot).
// Runtime class: sampled into a gauge for /metrics, never into
// deterministic state.
func (s *scheduler) queueDepth() int { return len(s.queue) + int(s.pending.Load()) }

// busySlots is a point-in-time count of requests holding an execution
// slot. Runtime class, like queueDepth.
func (s *scheduler) busySlots() int { return len(s.slots) }
