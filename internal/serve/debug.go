package serve

import (
	"net/http"
	"strconv"
	"strings"

	"redi/internal/trace"
)

// /debug/requests: flight-recorder forensics. These endpoints bypass
// the admission queue (like /metrics) so a saturated server can still
// be inspected, and they are not themselves traced. Their default
// projections are deterministic — span structure and attributes only,
// no timings — so a replay log may fetch them and stay byte-identical
// across runs; the full and chrome formats carry runtime timings for
// live slow-request forensics.

// debugEntry is one row of the trace listing. Everything here is
// deterministic under sequential replay: IDs are assigned in arrival
// order and span counts are a pure function of the request.
type debugEntry struct {
	ID     uint64 `json:"id"`
	Name   string `json:"name"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Spans  int    `json:"spans"`
}

// slowEntry adds the runtime-class duration that qualified the trace.
type slowEntry struct {
	debugEntry
	DurationUS int64 `json:"duration_us"`
}

func entryFor(t *trace.Trace) debugEntry {
	return debugEntry{
		ID:     t.ID,
		Name:   t.Name,
		Method: t.Method,
		Path:   t.Path,
		Spans:  t.Root().NumSpans(),
	}
}

// handleDebugList serves GET /debug/requests: the retained traces in
// ascending ID order.
func (s *Service) handleDebugList(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false, "traces": []debugEntry{}})
		return
	}
	entries := []debugEntry{}
	for _, t := range s.rec.Traces() {
		entries = append(entries, entryFor(t))
	}
	writeJSON(w, http.StatusOK, map[string]any{"enabled": true, "traces": entries})
}

// handleDebugGet serves GET /debug/requests/<id> (single trace; format
// det|full|chrome, default det) and GET /debug/requests/slow (the
// slow-request log with durations).
func (s *Service) handleDebugGet(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/debug/requests/")
	if rest == "slow" {
		s.handleDebugSlow(w)
		return
	}
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad trace id " + strconv.Quote(rest)})
		return
	}
	t := s.rec.Get(id)
	if t == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "trace not retained"})
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "det":
		writeJSON(w, http.StatusOK, map[string]any{
			"id":     t.ID,
			"name":   t.Name,
			"method": t.Method,
			"path":   t.Path,
			"root":   t.Root().Det(),
		})
	case "full":
		writeJSON(w, http.StatusOK, map[string]any{
			"id":     t.ID,
			"name":   t.Name,
			"method": t.Method,
			"path":   t.Path,
			"root":   t.Root().Full(),
		})
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		// The trace ID becomes the Chrome pid so concatenated exports
		// stay distinguishable in Perfetto.
		if err := trace.WriteChrome(w, t.Root(), int64(t.ID)); err != nil {
			s.reg.Counter("serve.http_5xx").Inc()
		}
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad format " + strconv.Quote(format) + " (want det|full|chrome)"})
	}
}

func (s *Service) handleDebugSlow(w http.ResponseWriter) {
	entries := []slowEntry{}
	for _, t := range s.rec.Slow() {
		entries = append(entries, slowEntry{
			debugEntry: entryFor(t),
			DurationUS: t.Root().Duration().Microseconds(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_us": s.cfg.SlowTraceThreshold.Microseconds(),
		"traces":       entries,
	})
}
