package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Record is one request in a replay log: a JSONL line with the method, the
// path (including any query string), and an optional body.
type Record struct {
	Method string `json:"method"`
	Path   string `json:"path"`
	Body   string `json:"body,omitempty"`
}

// ReadLog parses a JSONL replay log. Blank lines and lines starting with
// '#' are skipped.
func ReadLog(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("serve: replay log line %d: %w", line, err)
		}
		if rec.Method == "" || rec.Path == "" {
			return nil, fmt.Errorf("serve: replay log line %d: method and path are required", line)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: reading replay log: %w", err)
	}
	return recs, nil
}

// recorder is a minimal in-memory http.ResponseWriter for replay.
type recorder struct {
	code int
	hdr  http.Header
	buf  bytes.Buffer
}

func newRecorder() *recorder { return &recorder{code: http.StatusOK, hdr: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.hdr }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(b []byte) (int, error) { return r.buf.Write(b) }

// Replay executes the records in order against h and writes one block per
// request to w:
//
//	## <method> <path>
//	<status>
//	<response body>
//
// Handler responses contain no wall-clock data, so replaying the same log
// against a service seeded with the same dataset produces byte-identical
// output every time — the serving layer's end-to-end determinism check.
func Replay(h http.Handler, recs []Record, w io.Writer) error {
	for _, rec := range recs {
		req, err := http.NewRequest(rec.Method, "http://redi.serve.local"+rec.Path, strings.NewReader(rec.Body))
		if err != nil {
			return fmt.Errorf("serve: replaying %s %s: %w", rec.Method, rec.Path, err)
		}
		rw := newRecorder()
		h.ServeHTTP(rw, req)
		if _, err := fmt.Fprintf(w, "## %s %s\n%d\n%s", rec.Method, rec.Path, rw.code, rw.buf.String()); err != nil {
			return err
		}
	}
	return nil
}
