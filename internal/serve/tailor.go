package serve

import (
	"fmt"

	"redi/internal/dataset"
	"redi/internal/dt"
	"redi/internal/rng"
	"redi/internal/trace"
)

// Tailor runs distribution tailoring against the resident dataset as the
// single source: it draws rows until every requested group count is met and
// materializes the collected rows from the current snapshot. The group
// index is read in place (no per-request GroupBy), so the read lock is held
// for the whole run and ingest waits behind it. Results are a pure function
// of (resident rows, need, seed, maxDraws). Under a non-nil span the run
// records snapshot.acquire plus a tailor.run span with the gids touched,
// draws paid, and rows collected.
func (s *Store) Tailor(need map[dataset.GroupKey]int, seed uint64, maxDraws int, sp *trace.Span) (*dt.Result, *dataset.Dataset, error) {
	if len(need) == 0 {
		return nil, nil, fmt.Errorf("serve: tailor needs at least one group count")
	}
	acq := sp.Child("snapshot.acquire")
	s.mu.RLock()
	defer s.mu.RUnlock()
	acq.End()
	tp := sp.Child("tailor.run")
	defer tp.End()

	// Global key order: resident groups first (gid order), then requested
	// keys absent from the data, in sorted order.
	resident := s.groups.Keys()
	keys := make([]dataset.GroupKey, len(resident), len(resident)+len(need))
	copy(keys, resident)
	seen := make(map[dataset.GroupKey]bool, len(keys))
	for _, k := range keys {
		seen[k] = true
	}
	for _, k := range dataset.SortedKeys(need) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}

	dist := make([]float64, len(keys))
	total := 0
	for _, c := range s.groups.Counts {
		total += c
	}
	needVec := make([]int, len(keys))
	for gi, k := range keys {
		if total > 0 {
			dist[gi] = float64(s.groups.Count(k)) / float64(total)
		}
		needVec[gi] = need[k]
		if needVec[gi] > 0 && dist[gi] == 0 {
			return nil, nil, fmt.Errorf("serve: group %s requested but absent from the resident dataset", k)
		}
	}

	src, err := dt.NewDatasetSource(s.snap, s.groups, keys, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %w", err)
	}
	engine := &dt.Engine{Sources: []dt.Source{src}, MaxDraws: maxDraws, Obs: s.reg}
	res, err := engine.Run(dt.NewRatioColl([][]float64{dist}, []float64{1}), needVec, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	data := engine.Materialize(res)
	if data == nil {
		data = dataset.New(s.snap.Schema())
	}
	tp.SetAttr("gids", int64(len(keys)))
	tp.SetAttr("draws", int64(res.Draws))
	tp.SetAttr("rows_collected", int64(data.NumRows()))
	return res, data, nil
}
