package serve

import (
	"fmt"

	"redi/internal/dataset"
	"redi/internal/dt"
	"redi/internal/rng"
)

// Tailor runs distribution tailoring against the resident dataset as the
// single source: it draws rows until every requested group count is met and
// materializes the collected rows from the current snapshot. The group
// index is read in place (no per-request GroupBy), so the read lock is held
// for the whole run and ingest waits behind it. Results are a pure function
// of (resident rows, need, seed, maxDraws).
func (s *Store) Tailor(need map[dataset.GroupKey]int, seed uint64, maxDraws int) (*dt.Result, *dataset.Dataset, error) {
	if len(need) == 0 {
		return nil, nil, fmt.Errorf("serve: tailor needs at least one group count")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	// Global key order: resident groups first (gid order), then requested
	// keys absent from the data, in sorted order.
	resident := s.groups.Keys()
	keys := make([]dataset.GroupKey, len(resident), len(resident)+len(need))
	copy(keys, resident)
	seen := make(map[dataset.GroupKey]bool, len(keys))
	for _, k := range keys {
		seen[k] = true
	}
	for _, k := range dataset.SortedKeys(need) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}

	dist := make([]float64, len(keys))
	total := 0
	for _, c := range s.groups.Counts {
		total += c
	}
	needVec := make([]int, len(keys))
	for gi, k := range keys {
		if total > 0 {
			dist[gi] = float64(s.groups.Count(k)) / float64(total)
		}
		needVec[gi] = need[k]
		if needVec[gi] > 0 && dist[gi] == 0 {
			return nil, nil, fmt.Errorf("serve: group %s requested but absent from the resident dataset", k)
		}
	}

	src, err := dt.NewDatasetSource(s.snap, s.groups, keys, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %w", err)
	}
	engine := &dt.Engine{Sources: []dt.Source{src}, MaxDraws: maxDraws, Obs: s.reg}
	res, err := engine.Run(dt.NewRatioColl([][]float64{dist}, []float64{1}), needVec, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	data := engine.Materialize(res)
	if data == nil {
		data = dataset.New(s.snap.Schema())
	}
	return res, data, nil
}
