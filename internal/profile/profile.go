// Package profile implements data profiling and nutritional labels
// (tutorial §3.2): per-column statistics, approximate functional
// dependencies, correlation matrices, and the fairness-aware label widgets
// of MithraLabel (Sun et al., CIKM 2019) — under-represented subgroups
// (MUPs), attribute bias against sensitive attributes, and per-group
// missingness — plus machine-readable datasheets (Gebru et al., CACM 2021).
package profile

import (
	"fmt"
	"sort"

	"redi/internal/dataset"
	"redi/internal/stats"
)

// ColumnProfile summarizes one attribute.
type ColumnProfile struct {
	Name     string
	Kind     string
	Role     string
	Count    int // non-null cells
	Nulls    int
	Distinct int

	// Numeric-only statistics (zero for categorical columns).
	Min, Max, Mean, StdDev float64
	Median                 float64

	// TopValues lists the most frequent categorical values.
	TopValues []ValueCount
}

// ValueCount is a categorical value and its frequency.
type ValueCount struct {
	Value string
	Count int
}

// ProfileColumn computes the profile of one attribute.
func ProfileColumn(d *dataset.Dataset, attr string) ColumnProfile {
	i := d.Schema().MustIndex(attr)
	a := d.Schema().Attr(i)
	p := ColumnProfile{Name: a.Name, Kind: a.Kind.String(), Role: a.Role.String()}
	if a.Kind == dataset.Numeric {
		vals, _ := d.Numeric(attr)
		p.Count = len(vals)
		p.Nulls = d.NumRows() - len(vals)
		distinct := map[float64]bool{}
		for _, v := range vals {
			distinct[v] = true
		}
		p.Distinct = len(distinct)
		if len(vals) > 0 {
			p.Min, p.Max = stats.MinMax(vals)
			p.Mean = stats.Mean(vals)
			p.StdDev = stats.StdDev(vals)
			p.Median = stats.Median(vals)
		}
		return p
	}
	counts := map[string]int{}
	for r := 0; r < d.NumRows(); r++ {
		v := d.Value(r, attr)
		if v.Null {
			p.Nulls++
			continue
		}
		p.Count++
		counts[v.Cat]++
	}
	p.Distinct = len(counts)
	for v, c := range counts {
		p.TopValues = append(p.TopValues, ValueCount{Value: v, Count: c})
	}
	sort.Slice(p.TopValues, func(a, b int) bool {
		if p.TopValues[a].Count != p.TopValues[b].Count {
			return p.TopValues[a].Count > p.TopValues[b].Count
		}
		return p.TopValues[a].Value < p.TopValues[b].Value
	})
	if len(p.TopValues) > 10 {
		p.TopValues = p.TopValues[:10]
	}
	return p
}

// Profile profiles every attribute of d.
func Profile(d *dataset.Dataset) []ColumnProfile {
	out := make([]ColumnProfile, 0, d.NumCols())
	for _, name := range d.Schema().Names() {
		out = append(out, ProfileColumn(d, name))
	}
	return out
}

// FD is an approximate functional dependency between two categorical
// attributes: Lhs determines Rhs except for a fraction ViolationRate of
// rows.
type FD struct {
	Lhs, Rhs      string
	ViolationRate float64
}

// FindFDs scans all ordered pairs of categorical attributes and returns
// those whose violation rate is at most eps, sorted by rate then name. The
// violation rate is the fraction of rows that disagree with their LHS
// value's majority RHS value. MithraLabel surfaces dependencies from
// sensitive attributes to targets as a bias warning.
func FindFDs(d *dataset.Dataset, eps float64) []FD {
	var cats []string
	s := d.Schema()
	for i := 0; i < s.Len(); i++ {
		if s.Attr(i).Kind == dataset.Categorical {
			cats = append(cats, s.Attr(i).Name)
		}
	}
	var out []FD
	for _, lhs := range cats {
		lv := d.Strings(lhs)
		for _, rhs := range cats {
			if lhs == rhs {
				continue
			}
			rv := d.Strings(rhs)
			counts := map[string]map[string]int{}
			n := 0
			for r := range lv {
				if lv[r] == "" || rv[r] == "" {
					continue
				}
				n++
				m := counts[lv[r]]
				if m == nil {
					m = map[string]int{}
					counts[lv[r]] = m
				}
				m[rv[r]]++
			}
			if n == 0 {
				continue
			}
			keep := 0
			for _, m := range counts {
				best := 0
				for _, c := range m {
					if c > best {
						best = c
					}
				}
				keep += best
			}
			rate := 1 - float64(keep)/float64(n)
			if rate <= eps {
				out = append(out, FD{Lhs: lhs, Rhs: rhs, ViolationRate: rate})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].ViolationRate != out[b].ViolationRate {
			return out[a].ViolationRate < out[b].ViolationRate
		}
		if out[a].Lhs != out[b].Lhs {
			return out[a].Lhs < out[b].Lhs
		}
		return out[a].Rhs < out[b].Rhs
	})
	return out
}

// CorrelationMatrix returns the Pearson correlation matrix of the given
// numeric attributes over rows where both are non-null.
func CorrelationMatrix(d *dataset.Dataset, attrs []string) [][]float64 {
	cols := make([][]float64, len(attrs))
	nulls := make([][]bool, len(attrs))
	for i, a := range attrs {
		cols[i], nulls[i] = d.NumericFull(a)
	}
	out := make([][]float64, len(attrs))
	for i := range attrs {
		out[i] = make([]float64, len(attrs))
		out[i][i] = 1
	}
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			var xs, ys []float64
			for r := range cols[i] {
				if nulls[i][r] || nulls[j][r] {
					continue
				}
				xs = append(xs, cols[i][r])
				ys = append(ys, cols[j][r])
			}
			c := 0.0
			if len(xs) > 1 {
				c = stats.Pearson(xs, ys)
			}
			out[i][j], out[j][i] = c, c
		}
	}
	return out
}

// AttrBias measures one numeric attribute's association with the sensitive
// grouping (Cramér's V of its discretization) and with the target label
// (absolute point-biserial correlation): the §2.3 unbiased-and-informative
// ranking.
type AttrBias struct {
	Attr string
	// SensitiveAssoc is Cramér's V against the intersectional group.
	SensitiveAssoc float64
	// TargetCorr is |corr| with the positive label.
	TargetCorr float64
}

// RankAttrBias scores the numeric feature attributes of d against the
// sensitive grouping and target attribute, sorted by SensitiveAssoc
// ascending (least biased first). positive is the label value counted as 1.
func RankAttrBias(d *dataset.Dataset, features []string, sensitive []string, target, positive string) []AttrBias {
	groups := d.GroupBy(sensitive...)
	labels := d.Strings(target)
	var out []AttrBias
	const bins = 8
	for _, f := range features {
		vals, rows := d.Numeric(f)
		if len(vals) < 3 {
			continue
		}
		b := AttrBias{Attr: f}
		fBins := stats.Discretize(vals, bins)
		var gx, gy []int
		var lx []float64
		var ly []int
		for i, row := range rows {
			if gi := groups.ByRow[row]; gi >= 0 {
				gx = append(gx, fBins[i])
				gy = append(gy, int(gi))
			}
			if labels[row] != "" {
				lx = append(lx, vals[i])
				if labels[row] == positive {
					ly = append(ly, 1)
				} else {
					ly = append(ly, 0)
				}
			}
		}
		if len(gx) >= 3 && groups.NumGroups() >= 2 {
			ct := stats.NewContingencyTable(gx, gy, bins, groups.NumGroups())
			b.SensitiveAssoc = ct.CramersV()
		}
		if len(lx) >= 3 {
			c := stats.PointBiserial(lx, ly)
			if c < 0 {
				c = -c
			}
			b.TargetCorr = c
		}
		out = append(out, b)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].SensitiveAssoc != out[b].SensitiveAssoc {
			return out[a].SensitiveAssoc < out[b].SensitiveAssoc
		}
		return out[a].Attr < out[b].Attr
	})
	return out
}

// GroupMissingness reports, per group, the fraction of null cells of attr —
// the §2.4 warning signal that missingness is demographically skewed. The
// fractions are gid-aligned with the returned group index; callers render
// key strings via groups.Key only where a widget is emitted.
func GroupMissingness(d *dataset.Dataset, attr string, sensitive []string) ([]float64, *dataset.Groups) {
	groups := d.GroupBy(sensitive...)
	miss := make([]int, groups.NumGroups())
	for r := 0; r < d.NumRows(); r++ {
		if gi := groups.ByRow[r]; gi >= 0 && d.IsNull(r, attr) {
			miss[gi]++
		}
	}
	fracs := make([]float64, groups.NumGroups())
	for gi, n := range groups.Counts {
		if n > 0 {
			fracs[gi] = float64(miss[gi]) / float64(n)
		}
	}
	return fracs, groups
}

// FormatProfile renders column profiles as an aligned text table for the
// CLI.
func FormatProfile(profiles []ColumnProfile) string {
	s := fmt.Sprintf("%-12s %-12s %-10s %8s %6s %8s %10s %10s\n",
		"column", "kind", "role", "count", "nulls", "distinct", "mean", "stddev")
	for _, p := range profiles {
		s += fmt.Sprintf("%-12s %-12s %-10s %8d %6d %8d %10.3f %10.3f\n",
			p.Name, p.Kind, p.Role, p.Count, p.Nulls, p.Distinct, p.Mean, p.StdDev)
	}
	return s
}
