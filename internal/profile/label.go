package profile

import (
	"encoding/json"

	"redi/internal/coverage"
	"redi/internal/dataset"
)

// Label is a dataset nutritional label in the spirit of MithraLabel: the
// machine-readable summary a data consumer inspects before deciding whether
// the dataset fits their task (Scope-of-use Augmentation, tutorial §2.5).
type Label struct {
	Rows    int             `json:"rows"`
	Columns []ColumnProfile `json:"columns"`

	// GroupCounts are intersectional group sizes over the sensitive
	// attributes.
	GroupCounts map[string]int `json:"group_counts"`
	// UncoveredPatterns lists the maximal uncovered patterns at the
	// label's coverage threshold, rendered with attribute names.
	UncoveredPatterns []string `json:"uncovered_patterns"`
	CoverageThreshold int      `json:"coverage_threshold"`

	// AttributeBias ranks feature attributes by association with the
	// sensitive attributes (least biased first).
	AttributeBias []AttrBias `json:"attribute_bias"`
	// SensitiveTargetFDs lists approximate FDs from sensitive
	// attributes to the target — a red flag for label bias.
	SensitiveTargetFDs []FD `json:"sensitive_target_fds"`
	// Missingness maps "attr|group" to the group's null fraction for
	// attributes with any nulls.
	Missingness map[string]float64 `json:"missingness"`
}

// LabelConfig parameterizes label construction.
type LabelConfig struct {
	// Sensitive attributes; defaults to the schema's Sensitive role.
	Sensitive []string
	// Target attribute; defaults to the schema's single Target.
	Target string
	// Positive label value (default "pos").
	Positive string
	// CoverageThreshold for the MUP widget (default max(10, rows/100)).
	CoverageThreshold int
	// FDEpsilon for approximate FDs (default 0.05).
	FDEpsilon float64
}

// BuildLabel assembles the nutritional label of d.
func BuildLabel(d *dataset.Dataset, cfg LabelConfig) *Label {
	if cfg.Sensitive == nil {
		cfg.Sensitive = d.Schema().ByRole(dataset.Sensitive)
	}
	if cfg.Target == "" {
		if targets := d.Schema().ByRole(dataset.Target); len(targets) == 1 {
			cfg.Target = targets[0]
		}
	}
	if cfg.Positive == "" {
		cfg.Positive = "pos"
	}
	if cfg.CoverageThreshold == 0 {
		cfg.CoverageThreshold = d.NumRows() / 100
		if cfg.CoverageThreshold < 10 {
			cfg.CoverageThreshold = 10
		}
	}
	if cfg.FDEpsilon == 0 {
		cfg.FDEpsilon = 0.05
	}

	l := &Label{
		Rows:              d.NumRows(),
		Columns:           Profile(d),
		GroupCounts:       map[string]int{},
		CoverageThreshold: cfg.CoverageThreshold,
		Missingness:       map[string]float64{},
	}
	if len(cfg.Sensitive) > 0 && d.NumRows() > 0 {
		groups := d.GroupBy(cfg.Sensitive...)
		for gid, c := range groups.Counts {
			l.GroupCounts[string(groups.Key(gid))] = c
		}
		space := coverage.NewSpace(d, cfg.Sensitive, cfg.CoverageThreshold)
		for _, m := range space.MUPs() {
			l.UncoveredPatterns = append(l.UncoveredPatterns, space.Describe(m.Pattern))
		}
		var features []string
		s := d.Schema()
		for i := 0; i < s.Len(); i++ {
			if s.Attr(i).Role == dataset.Feature && s.Attr(i).Kind == dataset.Numeric {
				features = append(features, s.Attr(i).Name)
			}
		}
		if cfg.Target != "" {
			l.AttributeBias = RankAttrBias(d, features, cfg.Sensitive, cfg.Target, cfg.Positive)
			for _, fd := range FindFDs(d, cfg.FDEpsilon) {
				if fd.Rhs == cfg.Target && contains(cfg.Sensitive, fd.Lhs) {
					l.SensitiveTargetFDs = append(l.SensitiveTargetFDs, fd)
				}
			}
		}
		for _, p := range l.Columns {
			if p.Nulls == 0 {
				continue
			}
			fracs, mg := GroupMissingness(d, p.Name, cfg.Sensitive)
			for gid, frac := range fracs {
				l.Missingness[p.Name+"|"+string(mg.Key(gid))] = frac
			}
		}
	}
	return l
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// JSON renders the label as indented JSON — the datasheet artifact shipped
// alongside the data.
func (l *Label) JSON() ([]byte, error) {
	return json.MarshalIndent(l, "", "  ")
}

// Datasheet is the qualitative companion of a Label: the free-text fields
// of "Datasheets for Datasets" that cannot be computed, plus the computed
// label.
type Datasheet struct {
	Motivation        string `json:"motivation"`
	Composition       string `json:"composition"`
	CollectionProcess string `json:"collection_process"`
	RecommendedUses   string `json:"recommended_uses"`
	KnownLimitations  string `json:"known_limitations"`
	Label             *Label `json:"label"`
}

// JSON renders the datasheet as indented JSON.
func (ds *Datasheet) JSON() ([]byte, error) {
	return json.MarshalIndent(ds, "", "  ")
}
