package profile

import (
	"sort"

	"redi/internal/dataset"
	"redi/internal/stats"
)

// AttrDrift measures one attribute's distribution shift between a baseline
// dataset and a candidate dataset — the drift widget of the Scope-of-use
// requirement (§2.5): data collected under one distribution must not be
// silently used under another.
type AttrDrift struct {
	Attr string
	// PSI is the population stability index (< 0.1 stable, > 0.25 major
	// drift).
	PSI float64
	// TV is the total-variation distance of the aligned distributions.
	TV float64
	// W1 is the 1-Wasserstein distance (numeric attributes only; 0 for
	// categorical).
	W1 float64
}

// DriftLevel classifies the PSI score with the conventional bands.
func (d AttrDrift) DriftLevel() string {
	switch {
	case d.PSI < 0.1:
		return "stable"
	case d.PSI < 0.25:
		return "moderate"
	default:
		return "major"
	}
}

// Drift compares every shared attribute of baseline and candidate:
// categorical attributes by aligned value frequencies, numeric attributes
// by equi-width histograms over the combined range. Results are sorted by
// PSI descending (worst drift first).
func Drift(baseline, candidate *dataset.Dataset, bins int) []AttrDrift {
	if bins <= 0 {
		bins = 10
	}
	var out []AttrDrift
	s := baseline.Schema()
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		if a.Role == dataset.ID {
			// Identifier columns are unique per row; their "drift"
			// is always maximal and always meaningless.
			continue
		}
		if _, ok := candidate.Schema().Index(a.Name); !ok {
			continue
		}
		var d AttrDrift
		if a.Kind == dataset.Categorical {
			d = catDrift(baseline, candidate, a.Name)
		} else {
			d = numDrift(baseline, candidate, a.Name, bins)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].PSI != out[b].PSI {
			return out[a].PSI > out[b].PSI
		}
		return out[a].Attr < out[b].Attr
	})
	return out
}

func catDrift(baseline, candidate *dataset.Dataset, attr string) AttrDrift {
	count := func(d *dataset.Dataset) map[string]float64 {
		out := map[string]float64{}
		for _, v := range d.Strings(attr) {
			if v != "" {
				out[v]++
			}
		}
		return out
	}
	cb, cc := count(baseline), count(candidate)
	keys := map[string]bool{}
	for v := range cb {
		keys[v] = true
	}
	for v := range cc {
		keys[v] = true
	}
	// Sorted values keep the PSI/TV float sums bit-identical across runs
	// (maporder).
	vals := make([]string, 0, len(keys))
	for v := range keys {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	var p, q []float64
	for _, v := range vals {
		p = append(p, cb[v])
		q = append(q, cc[v])
	}
	if len(p) == 0 {
		return AttrDrift{Attr: attr}
	}
	p = stats.Smooth(p, 1e-9)
	q = stats.Smooth(q, 1e-9)
	return AttrDrift{Attr: attr, PSI: stats.PSI(p, q), TV: stats.TotalVariation(p, q)}
}

func numDrift(baseline, candidate *dataset.Dataset, attr string, bins int) AttrDrift {
	vb, _ := baseline.Numeric(attr)
	vc, _ := candidate.Numeric(attr)
	if len(vb) == 0 || len(vc) == 0 {
		return AttrDrift{Attr: attr}
	}
	minB, maxB := stats.MinMax(vb)
	minC, maxC := stats.MinMax(vc)
	lo, hi := minB, maxB
	if minC < lo {
		lo = minC
	}
	if maxC > hi {
		hi = maxC
	}
	if hi <= lo {
		hi = lo + 1
	}
	hb := stats.NewHistogram(lo, hi, bins)
	hb.AddAll(vb)
	hc := stats.NewHistogram(lo, hi, bins)
	hc.AddAll(vc)
	p, q := hb.PMF(), hc.PMF()
	return AttrDrift{
		Attr: attr,
		PSI:  stats.PSI(p, q),
		TV:   stats.TotalVariation(p, q),
		W1:   stats.Wasserstein1(p, q) * (hi - lo) / float64(bins),
	}
}
