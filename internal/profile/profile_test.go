package profile

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

func pop(t *testing.T, rows int, seed uint64) *dataset.Dataset {
	t.Helper()
	return synth.Generate(synth.DefaultPopulation(rows), rng.New(seed)).Data
}

func TestProfileColumnNumeric(t *testing.T) {
	d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "x", Kind: dataset.Numeric, Role: dataset.Feature}))
	for _, v := range []float64{1, 2, 3, 4} {
		d.MustAppendRow(dataset.Num(v))
	}
	d.MustAppendRow(dataset.NullValue(dataset.Numeric))
	p := ProfileColumn(d, "x")
	if p.Count != 4 || p.Nulls != 1 || p.Distinct != 4 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Min != 1 || p.Max != 4 || p.Mean != 2.5 || p.Median != 2.5 {
		t.Fatalf("profile stats = %+v", p)
	}
	if p.Kind != "numeric" || p.Role != "feature" {
		t.Fatalf("kind/role = %s/%s", p.Kind, p.Role)
	}
}

func TestProfileColumnCategorical(t *testing.T) {
	d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "c", Kind: dataset.Categorical}))
	for _, v := range []string{"a", "a", "b", "a", "c"} {
		d.MustAppendRow(dataset.Cat(v))
	}
	p := ProfileColumn(d, "c")
	if p.Distinct != 3 || len(p.TopValues) != 3 {
		t.Fatalf("profile = %+v", p)
	}
	if p.TopValues[0].Value != "a" || p.TopValues[0].Count != 3 {
		t.Fatalf("top values = %v", p.TopValues)
	}
}

func TestProfileAll(t *testing.T) {
	d := pop(t, 200, 1)
	profiles := Profile(d)
	if len(profiles) != d.NumCols() {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if s := FormatProfile(profiles); !strings.Contains(s, "race") {
		t.Fatal("FormatProfile missing column")
	}
}

func TestFindFDs(t *testing.T) {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "zip", Kind: dataset.Categorical},
		dataset.Attribute{Name: "city", Kind: dataset.Categorical},
	))
	rows := [][2]string{
		{"60601", "chicago"}, {"60601", "chicago"},
		{"60602", "chicago"}, {"10001", "nyc"}, {"10001", "nyc"},
	}
	for _, r := range rows {
		d.MustAppendRow(dataset.Cat(r[0]), dataset.Cat(r[1]))
	}
	fds := FindFDs(d, 0)
	// zip -> city holds exactly; city -> zip does not.
	found := false
	for _, fd := range fds {
		if fd.Lhs == "zip" && fd.Rhs == "city" {
			found = true
			if fd.ViolationRate != 0 {
				t.Fatalf("zip->city rate = %v", fd.ViolationRate)
			}
		}
		if fd.Lhs == "city" && fd.Rhs == "zip" {
			t.Fatal("city->zip should not hold exactly")
		}
	}
	if !found {
		t.Fatalf("zip->city missing from %v", fds)
	}
	// Approximate: city->zip violation rate = 1 - (2+2)/5... allow eps 0.5.
	approx := FindFDs(d, 0.5)
	if len(approx) < 2 {
		t.Fatalf("approximate FDs = %v", approx)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "a", Kind: dataset.Numeric},
		dataset.Attribute{Name: "b", Kind: dataset.Numeric},
	))
	for i := 0; i < 50; i++ {
		d.MustAppendRow(dataset.Num(float64(i)), dataset.Num(float64(2*i)))
	}
	m := CorrelationMatrix(d, []string{"a", "b"})
	if m[0][0] != 1 || m[1][1] != 1 {
		t.Fatal("diagonal not 1")
	}
	if math.Abs(m[0][1]-1) > 1e-9 || m[0][1] != m[1][0] {
		t.Fatalf("matrix = %v", m)
	}
}

func TestRankAttrBias(t *testing.T) {
	r := rng.New(2)
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "biased", Kind: dataset.Numeric, Role: dataset.Feature},
		dataset.Attribute{Name: "clean", Kind: dataset.Numeric, Role: dataset.Feature},
		dataset.Attribute{Name: "label", Kind: dataset.Categorical, Role: dataset.Target},
	))
	for i := 0; i < 2000; i++ {
		grp := "a"
		shift := 0.0
		if i%2 == 0 {
			grp = "b"
			shift = 3
		}
		signal := r.Normal(0, 1)
		label := "neg"
		if signal > 0 {
			label = "pos"
		}
		d.MustAppendRow(dataset.Cat(grp), dataset.Num(shift+r.Normal(0, 0.3)),
			dataset.Num(signal+r.Normal(0, 0.3)), dataset.Cat(label))
	}
	ranked := RankAttrBias(d, []string{"biased", "clean"}, []string{"grp"}, "label", "pos")
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Attr != "clean" {
		t.Fatalf("least-biased first expected, got %v", ranked)
	}
	if ranked[0].TargetCorr < 0.5 {
		t.Fatalf("clean target corr = %v", ranked[0].TargetCorr)
	}
	if ranked[1].SensitiveAssoc < 0.5 {
		t.Fatalf("biased sensitive assoc = %v", ranked[1].SensitiveAssoc)
	}
}

func TestGroupMissingness(t *testing.T) {
	d := pop(t, 4000, 3)
	masked := synth.InjectMissing(d, synth.MissingConfig{
		Attr: "f0", Rate: 0.2, Mech: synth.MAR, CondAttr: "race", CondValue: "black",
	}, rng.New(4))
	fracs, mg := GroupMissingness(masked, "f0", []string{"race"})
	black, white := mg.GID("race=black"), mg.GID("race=white")
	if black < 0 || white < 0 || fracs[black] <= fracs[white] {
		t.Fatalf("missingness = %v (keys %v), black should dominate", fracs, mg.Keys())
	}
}

func TestBuildLabel(t *testing.T) {
	d := pop(t, 1500, 5)
	masked := synth.InjectMissing(d, synth.MissingConfig{Attr: "f1", Rate: 0.1, Mech: synth.MCAR}, rng.New(6))
	l := BuildLabel(masked, LabelConfig{})
	if l.Rows != 1500 || len(l.Columns) != masked.NumCols() {
		t.Fatalf("label shape: rows=%d cols=%d", l.Rows, len(l.Columns))
	}
	if len(l.GroupCounts) == 0 {
		t.Fatal("no group counts")
	}
	if len(l.AttributeBias) != 4 {
		t.Fatalf("attribute bias = %v", l.AttributeBias)
	}
	if len(l.Missingness) == 0 {
		t.Fatal("missingness widget empty despite injected nulls")
	}
	// JSON round-trips.
	b, err := l.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Label
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rows != l.Rows {
		t.Fatal("JSON round trip lost rows")
	}
}

func TestBuildLabelFindsUncovered(t *testing.T) {
	// Tiny skewed data: with threshold larger than the minority count the
	// label must flag a pattern.
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	for i := 0; i < 95; i++ {
		d.MustAppendRow(dataset.Cat("maj"))
	}
	for i := 0; i < 5; i++ {
		d.MustAppendRow(dataset.Cat("min"))
	}
	l := BuildLabel(d, LabelConfig{CoverageThreshold: 10})
	if len(l.UncoveredPatterns) != 1 || !strings.Contains(l.UncoveredPatterns[0], "min") {
		t.Fatalf("uncovered = %v", l.UncoveredPatterns)
	}
}

func TestDatasheetJSON(t *testing.T) {
	d := pop(t, 100, 7)
	ds := &Datasheet{
		Motivation: "test",
		Label:      BuildLabel(d, LabelConfig{}),
	}
	b, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "\"motivation\": \"test\"") {
		t.Fatal("datasheet JSON missing fields")
	}
}
