package profile

import (
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

func TestDriftSelfIsStable(t *testing.T) {
	d := pop(t, 3000, 10)
	a, b := d.Split(rng.New(11), 0.5)
	drifts := Drift(a, b, 10)
	if len(drifts) == 0 {
		t.Fatal("no drifts computed")
	}
	for _, dr := range drifts {
		if dr.DriftLevel() != "stable" {
			t.Fatalf("same-population halves drifted: %+v", dr)
		}
	}
}

func TestDriftDetectsShift(t *testing.T) {
	// Baseline vs a candidate with a shifted f0 and re-weighted race.
	base := pop(t, 3000, 12)
	shifted := base.Clone()
	for r := 0; r < shifted.NumRows(); r++ {
		v := shifted.Value(r, "f0")
		if !v.Null {
			if err := shifted.SetValue(r, "f0", dataset.Num(v.Num+3)); err != nil {
				t.Fatal(err)
			}
		}
		// Flip most non-white rows to white: categorical drift.
		if rv := shifted.Value(r, "race"); !rv.Null && rv.Cat != "white" && r%3 != 0 {
			if err := shifted.SetValue(r, "race", dataset.Cat("white")); err != nil {
				t.Fatal(err)
			}
		}
	}
	drifts := Drift(base, shifted, 10)
	byAttr := map[string]AttrDrift{}
	for _, d := range drifts {
		byAttr[d.Attr] = d
	}
	if byAttr["f0"].DriftLevel() != "major" {
		t.Fatalf("f0 shift not detected: %+v", byAttr["f0"])
	}
	if byAttr["f0"].W1 < 2 {
		t.Fatalf("f0 W1 = %v, want ~3", byAttr["f0"].W1)
	}
	if byAttr["race"].DriftLevel() == "stable" {
		t.Fatalf("race reweighting not detected: %+v", byAttr["race"])
	}
	if byAttr["f1"].DriftLevel() != "stable" {
		t.Fatalf("untouched f1 drifted: %+v", byAttr["f1"])
	}
	// Sorted worst-first.
	for i := 1; i < len(drifts); i++ {
		if drifts[i].PSI > drifts[i-1].PSI {
			t.Fatal("drifts not sorted by PSI")
		}
	}
}

func TestDriftSkipsMissingAttrs(t *testing.T) {
	a := pop(t, 100, 13)
	b := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "other", Kind: dataset.Numeric}))
	if got := Drift(a, b, 5); len(got) != 0 {
		t.Fatalf("drift over disjoint schemas = %v", got)
	}
}

func TestDriftEmptyNumeric(t *testing.T) {
	mk := func() *dataset.Dataset {
		return dataset.New(dataset.NewSchema(dataset.Attribute{Name: "x", Kind: dataset.Numeric}))
	}
	a, b := mk(), mk()
	a.MustAppendRow(dataset.NullValue(dataset.Numeric))
	b.MustAppendRow(dataset.Num(1))
	drifts := Drift(a, b, 5)
	if len(drifts) != 1 || drifts[0].PSI != 0 {
		t.Fatalf("empty-side drift = %v", drifts)
	}
	_ = synth.FeatureNames // keep synth import for pop helper parity
}
