package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"redi/internal/obs"
)

// fakeClock pins the obs clock seam to a deterministic stepper: each
// read advances one millisecond.
func fakeClock(t *testing.T) {
	t.Helper()
	base := time.Unix(1700000000, 0)
	tick := 0
	restore := obs.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	})
	t.Cleanup(restore)
}

func buildTree() *Span {
	root := New("audit")
	root.SetAttr("http.status", 200)
	wait := root.Child("admission.wait")
	wait.End()
	cov := root.Child("audit.coverage")
	cov.SetAttr("mups", 3)
	cov.AddDeltas("obs.", map[string]int64{"coverage.nodes": 40, "coverage.bitmap_ands": 12})
	cov.End()
	root.End()
	return root
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	s.SetAttr("k", 1)
	s.AddDeltas("p.", map[string]int64{"a": 1})
	s.End()
	if s.Name() != "" || s.Attrs() != nil || s.Children() != nil || s.Duration() != 0 || s.NumSpans() != 0 {
		t.Fatal("nil span accessors must return zero values")
	}
	if got := string(s.DetJSON()); got != `{"name":""}` {
		t.Fatalf("nil DetJSON = %s", got)
	}
}

func TestDetExportExcludesTimingsByConstruction(t *testing.T) {
	fakeClock(t)
	root := buildTree()
	det := string(root.DetJSON())
	want := `{"name":"audit","attrs":[{"k":"http.status","v":200}],` +
		`"children":[{"name":"admission.wait"},` +
		`{"name":"audit.coverage","attrs":[{"k":"mups","v":3},` +
		`{"k":"obs.coverage.bitmap_ands","v":12},{"k":"obs.coverage.nodes","v":40}]}]}`
	if det != want {
		t.Fatalf("DetJSON:\n got %s\nwant %s", det, want)
	}
	for _, frag := range []string{"us", "dur", "start", "ts"} {
		var m map[string]any
		if err := json.Unmarshal([]byte(det), &m); err != nil {
			t.Fatal(err)
		}
		for k := range m {
			if strings.Contains(k, frag) && k != "attrs" && k != "children" && k != "name" {
				t.Fatalf("deterministic export leaked timing field %q", k)
			}
		}
	}
}

// TestDetIndependentOfClock rebuilds the same structural tree under two
// wildly different clocks and demands byte-identical deterministic
// output: the class split holds by construction, not by luck.
func TestDetIndependentOfClock(t *testing.T) {
	base := time.Unix(1700000000, 0)
	restore := obs.SetClock(func() time.Time { return base })
	a := buildTree().DetJSON()
	aTxt := buildTree().DetString()
	restore()
	tick := 0
	restore = obs.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 17 * time.Minute)
	})
	b := buildTree().DetJSON()
	bTxt := buildTree().DetString()
	restore()
	if !bytes.Equal(a, b) {
		t.Fatalf("DetJSON depends on the clock:\n%s\n%s", a, b)
	}
	if aTxt != bTxt {
		t.Fatalf("DetString depends on the clock:\n%s\n%s", aTxt, bTxt)
	}
}

func TestDetString(t *testing.T) {
	fakeClock(t)
	got := buildTree().DetString()
	want := "audit http.status=200\n" +
		"  admission.wait\n" +
		"  audit.coverage mups=3 obs.coverage.bitmap_ands=12 obs.coverage.nodes=40\n"
	if got != want {
		t.Fatalf("DetString:\n got %q\nwant %q", got, want)
	}
}

func TestFullAndDuration(t *testing.T) {
	fakeClock(t)
	root := buildTree()
	if root.Duration() <= 0 {
		t.Fatal("closed root must have positive duration")
	}
	f := root.Full()
	if f.Name != "audit" || f.DurUS <= 0 {
		t.Fatalf("Full root = %+v", f)
	}
	if len(f.Children) != 2 {
		t.Fatalf("Full children = %d, want 2", len(f.Children))
	}
	if f.Children[1].StartUS <= f.Children[0].StartUS {
		t.Fatalf("child starts not ordered: %+v", f.Children)
	}
	if n := root.NumSpans(); n != 3 {
		t.Fatalf("NumSpans = %d, want 3", n)
	}
}

func TestWriteChrome(t *testing.T) {
	fakeClock(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, buildTree(), 7); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TS   int64            `json:"ts"`
			Dur  int64            `json:"dur"`
			PID  int64            `json:"pid"`
			TID  int64            `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.PID != 7 || ev.TID != 1 {
			t.Fatalf("bad event envelope: %+v", ev)
		}
	}
	if doc.TraceEvents[2].Args["mups"] != 3 {
		t.Fatalf("coverage args = %v", doc.TraceEvents[2].Args)
	}
	// Empty tree still produces a loadable document.
	buf.Reset()
	if err := WriteChrome(&buf, nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderRingAndSlowLog(t *testing.T) {
	base := time.Unix(1700000000, 0)
	tick := 0
	// Every request spans two clock reads (Start, Finish). Alternate
	// fast (1ms) and slow (50ms) requests via a widening step.
	restore := obs.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick*tick) * time.Millisecond)
	})
	defer restore()

	r := NewRecorder(4, 15*time.Millisecond)
	var ids []uint64
	for i := 0; i < 6; i++ {
		tr := r.Start("query", "GET", "/query?e=x")
		ids = append(ids, tr.ID)
		r.Finish(tr)
	}
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Fatalf("ids = %v, want sequential from 1", ids)
		}
	}
	got := r.Traces()
	if len(got) != 4 {
		t.Fatalf("ring kept %d, want 4", len(got))
	}
	for i, tr := range got {
		if tr.ID != uint64(i+3) {
			t.Fatalf("ring kept ids %v, want [3 4 5 6]", got)
		}
	}
	if r.Get(1) != nil && r.Get(1).ID != 1 {
		t.Fatal("Get(1) returned a different trace")
	}
	if tr := r.Get(5); tr == nil || tr.Path != "/query?e=x" {
		t.Fatalf("Get(5) = %+v", tr)
	}
	if r.Get(99) != nil {
		t.Fatal("Get(99) must be nil")
	}
	// The quadratic clock makes later requests slower (3, 7, 11, 15,
	// 19, 23ms); the slow log must hold exactly those crossing 15ms.
	slow := r.Slow()
	if len(slow) != 3 {
		t.Fatalf("slow log = %d entries, want 3 (requests 4..6)", len(slow))
	}
	for _, tr := range slow {
		if tr.Root().Duration() < 15*time.Millisecond {
			t.Fatalf("trace %d in slow log with duration %v", tr.ID, tr.Root().Duration())
		}
	}
	// Slow traces stay fetchable by ID even after ring eviction.
	first := slow[0]
	for i := 0; i < 10; i++ {
		r.Finish(r.Start("stats", "GET", "/stats"))
	}
	if got := r.Get(first.ID); got != first {
		t.Fatalf("slow trace %d evicted from Get after ring wrap", first.ID)
	}
}

func TestRecorderDisabled(t *testing.T) {
	var r *Recorder
	if NewRecorder(0, 0) != nil || NewRecorder(-1, 0) != nil {
		t.Fatal("non-positive capacity must disable the recorder")
	}
	tr := r.Start("x", "GET", "/")
	if tr != nil {
		t.Fatal("disabled recorder must return nil traces")
	}
	r.Finish(tr)
	if r.Traces() != nil || r.Slow() != nil || r.Get(1) != nil {
		t.Fatal("disabled recorder accessors must return nil")
	}
	if tr.Root() != nil {
		t.Fatal("nil trace root must be nil")
	}
}

func TestRecorderSlowCapBounded(t *testing.T) {
	base := time.Unix(1700000000, 0)
	tick := 0
	restore := obs.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Hour)
	})
	defer restore()
	r := NewRecorder(2, time.Millisecond)
	for i := 0; i < slowCap+10; i++ {
		r.Finish(r.Start("audit", "GET", "/audit"))
	}
	slow := r.Slow()
	if len(slow) != slowCap {
		t.Fatalf("slow log = %d entries, want %d", len(slow), slowCap)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].ID <= slow[i-1].ID {
			t.Fatalf("slow log out of order: %d then %d", slow[i-1].ID, slow[i].ID)
		}
	}
	if slow[len(slow)-1].ID != uint64(slowCap+10) {
		t.Fatalf("slow log tail = %d, want most recent %d", slow[len(slow)-1].ID, slowCap+10)
	}
}
