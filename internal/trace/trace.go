// Package trace provides request-scoped span trees with the same hard
// class split as internal/obs: span *structure* — names, parent/child
// nesting, and the ordered integer attributes attached to each span —
// is deterministic (bit-identical at any worker count, safe to diff
// across replays), while wall-clock timings are runtime class and are
// excluded from deterministic snapshots by construction (DetJSON and
// DetString never touch the clock fields).
//
// The split is enforced three ways:
//
//  1. By construction: the deterministic exports marshal only name,
//     attrs, and children. Timings are reachable only through
//     Duration(), a separate runtime-class accessor.
//  2. By convention: attributes are int64 work tallies (rows scanned,
//     partitions pruned, LSH candidates, obs counter deltas) computed
//     on the serial control path from shard-order-merged statistics.
//  3. By lint: the redilint traceclass rule rejects any flow from a
//     runtime source (obs.Now, Gauge.Value, Span.Duration, runtime
//     counters) into SetAttr.
//
// Every method is nil-safe so call sites need no guards: a nil *Span
// is the disabled fast path and costs one predictable branch.
package trace

import (
	"sort"
	"time"

	"redi/internal/obs"
)

// Attr is one deterministic span attribute. Attributes keep insertion
// order (append-only), so the serialized form is a pure function of
// the control path that produced the span.
type Attr struct {
	Key string
	Val int64
}

// Span is one node of a request's span tree. Spans are built on a
// request's single serial control path and published to a Recorder
// only after the request completes, so no lock is needed here; the
// recorder's mutex provides the happens-before edge for readers.
type Span struct {
	name     string
	attrs    []Attr
	children []*Span
	start    time.Time
	end      time.Time
}

// New starts a root span. The clock read goes through the obs wall
// clock seam so tests can pin it.
func New(name string) *Span {
	return &Span{name: name, start: obs.Now()}
}

// Child starts a nested span. Returns nil (a no-op span) when the
// receiver is nil, so disabled tracing propagates for free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: obs.Now()}
	s.children = append(s.children, c)
	return c
}

// SetAttr appends a deterministic attribute. Values must be
// deterministic work tallies; the traceclass lint rule rejects runtime
// timing flows into this sink.
func (s *Span) SetAttr(key string, val int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// AddDeltas appends one attribute per map entry in sorted key order,
// each key prefixed. It is the bridge from obs.DeltaCounters (and
// ProvenanceStep.Metrics) to span attributes: deterministic counters
// merged in shard order stay deterministic as attrs.
func (s *Span) AddDeltas(prefix string, deltas map[string]int64) {
	if s == nil || len(deltas) == 0 {
		return
	}
	keys := make([]string, 0, len(deltas))
	for k := range deltas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.attrs = append(s.attrs, Attr{Key: prefix + k, Val: deltas[k]})
	}
}

// End closes the span. Ending twice keeps the first end time; ending a
// nil span is a no-op.
func (s *Span) End() {
	if s == nil || !s.end.IsZero() {
		return
	}
	s.end = obs.Now()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Attrs returns the deterministic attributes in insertion order. The
// slice is shared; callers must not mutate it.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Children returns the nested spans in creation order. The slice is
// shared; callers must not mutate it.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Duration is the runtime-class wall-clock width of the span (elapsed
// so far when the span is still open). It never appears in
// deterministic exports and must not flow into SetAttr.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	end := s.end
	if end.IsZero() {
		end = obs.Now()
	}
	return end.Sub(s.start)
}

// NumSpans counts the nodes of the tree rooted at s (0 for nil).
func (s *Span) NumSpans() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.children {
		n += c.NumSpans()
	}
	return n
}
