package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// DetSpan is the deterministic projection of a span: name, ordered
// attributes, children — and by construction nothing else. Marshaling
// it is the byte-stable surface that determinism tests and replay logs
// rely on.
type DetSpan struct {
	Name     string    `json:"name"`
	Attrs    []DetAttr `json:"attrs,omitempty"`
	Children []DetSpan `json:"children,omitempty"`
}

// DetAttr is a deterministic attribute in its serialized form.
type DetAttr struct {
	Key string `json:"k"`
	Val int64  `json:"v"`
}

// Det returns the deterministic projection of the tree rooted at s.
func (s *Span) Det() DetSpan {
	if s == nil {
		return DetSpan{}
	}
	d := DetSpan{Name: s.name}
	for _, a := range s.attrs {
		d.Attrs = append(d.Attrs, DetAttr{Key: a.Key, Val: a.Val})
	}
	for _, c := range s.children {
		d.Children = append(d.Children, c.Det())
	}
	return d
}

// DetJSON serializes the deterministic projection. The output is
// bit-identical for structurally identical trees regardless of worker
// count or wall-clock behaviour.
func (s *Span) DetJSON() []byte {
	b, err := json.Marshal(s.Det())
	if err != nil {
		// Strings and int64s cannot fail to marshal; keep the API
		// infallible for call-site ergonomics.
		panic(err)
	}
	return b
}

// DetString renders the deterministic projection as an indented text
// tree, one span per line: "name key=val key=val".
func (s *Span) DetString() string {
	var b strings.Builder
	detText(&b, s, 0)
	return b.String()
}

func detText(b *strings.Builder, s *Span, depth int) {
	if s == nil {
		return
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.name)
	for _, a := range s.attrs {
		fmt.Fprintf(b, " %s=%d", a.Key, a.Val)
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		detText(b, c, depth+1)
	}
}

// FullSpan is the forensic projection: the deterministic fields plus
// runtime-class timings (microsecond offsets from the root start).
type FullSpan struct {
	Name     string     `json:"name"`
	StartUS  int64      `json:"start_us"`
	DurUS    int64      `json:"dur_us"`
	Attrs    []DetAttr  `json:"attrs,omitempty"`
	Children []FullSpan `json:"children,omitempty"`
}

// Full returns the forensic projection of the tree rooted at s, with
// span starts expressed as offsets from the root's start time.
func (s *Span) Full() FullSpan {
	if s == nil {
		return FullSpan{}
	}
	return fullTree(s, s)
}

func fullTree(root, s *Span) FullSpan {
	f := FullSpan{
		Name:    s.name,
		StartUS: s.start.Sub(root.start).Microseconds(),
		DurUS:   s.Duration().Microseconds(),
	}
	for _, a := range s.attrs {
		f.Attrs = append(f.Attrs, DetAttr{Key: a.Key, Val: a.Val})
	}
	for _, c := range s.children {
		f.Children = append(f.Children, fullTree(root, c))
	}
	return f
}

// chromeEvent is one Chrome Trace Event ("X" = complete event with an
// explicit duration). The format is what chrome://tracing and Perfetto
// load directly.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	TS   int64            `json:"ts"`
	Dur  int64            `json:"dur"`
	PID  int64            `json:"pid"`
	TID  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChrome writes the tree rooted at s as Chrome Trace Event JSON
// ({"traceEvents":[...]}). Timestamps are microsecond offsets from the
// root start; pid distinguishes traces when several are concatenated.
func WriteChrome(w io.Writer, s *Span, pid int64) error {
	var events []chromeEvent
	if s != nil {
		events = chromeTree(s, s, pid, events)
	}
	b, err := json.Marshal(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events})
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func chromeTree(root, s *Span, pid int64, events []chromeEvent) []chromeEvent {
	ev := chromeEvent{
		Name: s.name,
		Ph:   "X",
		TS:   s.start.Sub(root.start).Microseconds(),
		Dur:  s.Duration().Microseconds(),
		PID:  pid,
		TID:  1,
	}
	if len(s.attrs) > 0 {
		ev.Args = make(map[string]int64, len(s.attrs))
		for _, a := range s.attrs {
			ev.Args[a.Key] = a.Val
		}
	}
	events = append(events, ev)
	for _, c := range s.children {
		events = chromeTree(root, c, pid, events)
	}
	return events
}
