package trace

import (
	"sort"
	"sync"
	"time"
)

// Trace is one recorded request: a root span plus request metadata.
// IDs are assigned sequentially at Start, so under sequential replay
// (and in tests) they are a deterministic function of the request log.
type Trace struct {
	ID     uint64
	Name   string
	Method string
	Path   string
	root   *Span
}

// Root returns the root span (nil for a nil trace, so disabled
// recording propagates nil spans through the whole request).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// slowCap bounds the slow-request log independently of the ring: slow
// traces survive ring eviction but never grow without bound.
const slowCap = 32

// Recorder is the flight recorder: a fixed-size ring buffer holding
// the last N request traces, plus a bounded slow-request log retaining
// any trace whose wall-clock duration met the configured threshold.
// A nil *Recorder is the disabled state; Start then returns nil traces
// and every downstream span call is a no-op.
type Recorder struct {
	mu     sync.Mutex
	nextID uint64
	ring   []*Trace // fixed capacity, nil slots until warm
	pos    int      // next write index
	n      int      // occupied slots
	slow   []*Trace // most recent slowCap slow traces, finish order
	thresh time.Duration
}

// NewRecorder builds a flight recorder holding the last capacity
// traces. A non-positive capacity disables recording (returns nil).
// slowThreshold > 0 additionally retains traces at least that slow in
// the slow-request log.
func NewRecorder(capacity int, slowThreshold time.Duration) *Recorder {
	if capacity <= 0 {
		return nil
	}
	return &Recorder{ring: make([]*Trace, capacity), thresh: slowThreshold}
}

// Start opens a trace for one request. The returned trace is private
// to the request's goroutine until Finish publishes it.
func (r *Recorder) Start(name, method, path string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	return &Trace{ID: id, Name: name, Method: method, Path: path, root: New(name)}
}

// Finish ends the root span and publishes the trace into the ring
// (and the slow log when it met the threshold).
func (r *Recorder) Finish(t *Trace) {
	if r == nil || t == nil {
		return
	}
	t.root.End()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.pos] = t
	r.pos = (r.pos + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	if r.thresh > 0 && t.root.Duration() >= r.thresh {
		if len(r.slow) == slowCap {
			copy(r.slow, r.slow[1:])
			r.slow = r.slow[:slowCap-1]
		}
		r.slow = append(r.slow, t)
	}
}

// Traces returns the retained traces in ascending ID order. Concurrent
// requests may finish out of arrival order, so the ring is re-sorted
// by ID to keep the listing stable.
func (r *Recorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*Trace, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(r.pos-r.n+i+len(r.ring))%len(r.ring)])
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the retained trace with the given ID, or nil when it has
// been evicted (or never existed).
func (r *Recorder) Get(id uint64) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		if t := r.ring[(r.pos-r.n+i+len(r.ring))%len(r.ring)]; t.ID == id {
			return t
		}
	}
	for _, t := range r.slow {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Slow returns the slow-request log, oldest first.
func (r *Recorder) Slow() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, len(r.slow))
	copy(out, r.slow)
	return out
}
