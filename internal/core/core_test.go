package core

import (
	"strings"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

func skewedData(t *testing.T, seed uint64, rows int) *dataset.Dataset {
	t.Helper()
	return synth.Generate(synth.DefaultPopulation(rows), rng.New(seed)).Data
}

func TestDistributionRequirement(t *testing.T) {
	d := skewedData(t, 1, 5000)
	// Target = the data's own race marginal: should pass with tight TV.
	g := d.GroupBy("race")
	target := map[dataset.GroupKey]float64{}
	dist := g.Distribution()
	for i, k := range g.Keys() {
		target[k] = dist[i]
	}
	req := DistributionRequirement{Attrs: []string{"race"}, Target: target, MaxTV: 0.01}
	res := req.Check(d)
	if !res.Satisfied || res.Score > 0.01 {
		t.Fatalf("self-distribution failed: %+v", res)
	}
	// Uniform target: the skewed data must fail.
	uniform := map[dataset.GroupKey]float64{}
	for _, k := range g.Keys() {
		uniform[k] = 1.0 / float64(g.NumGroups())
	}
	req.Target = uniform
	if res := req.Check(d); res.Satisfied {
		t.Fatalf("skewed data passed uniform target: %+v", res)
	}
}

func TestCountRequirement(t *testing.T) {
	d := skewedData(t, 2, 1000)
	req := CountRequirement{
		Attrs: []string{"race"},
		Min: map[dataset.GroupKey]int{
			"race=white": 100,
			"race=asian": 10000, // impossible
		},
	}
	res := req.Check(d)
	if res.Satisfied {
		t.Fatalf("impossible count passed: %+v", res)
	}
	if !strings.Contains(res.Details, "race=asian") {
		t.Fatalf("details missing failing group: %+v", res)
	}
	req.Min["race=asian"] = 1
	if res := req.Check(d); !res.Satisfied {
		t.Fatalf("satisfiable counts failed: %+v", res)
	}
}

func TestCoverageRequirement(t *testing.T) {
	d := skewedData(t, 3, 2000)
	loose := CoverageRequirement{Attrs: []string{"race", "sex"}, Threshold: 2}
	if res := loose.Check(d); !res.Satisfied {
		t.Fatalf("loose coverage failed: %+v", res)
	}
	tight := CoverageRequirement{Attrs: []string{"race", "sex"}, Threshold: 1000}
	res := tight.Check(d)
	if res.Satisfied || res.Score == 0 {
		t.Fatalf("tight coverage passed: %+v", res)
	}
	if !strings.Contains(res.Details, "MUP") {
		t.Fatalf("details = %q", res.Details)
	}
}

func TestFeatureBiasRequirement(t *testing.T) {
	cfg := synth.DefaultPopulation(4000)
	cfg.GroupEffect = 0.2 // features mostly unbiased
	p := synth.Generate(cfg, rng.New(4))
	req := FeatureBiasRequirement{
		Features:  synth.FeatureNames(4),
		Sensitive: []string{"race", "sex"},
		Target:    "label",
		MaxAssoc:  0.3,
		MinCorr:   0.1,
	}
	res := req.Check(p.Data)
	if !res.Satisfied {
		t.Fatalf("low-effect population failed feature audit: %+v", res)
	}
	// Impossible bar.
	req.MinCorr = 0.999
	if res := req.Check(p.Data); res.Satisfied {
		t.Fatalf("impossible bar passed: %+v", res)
	}
}

func TestCompletenessRequirement(t *testing.T) {
	d := skewedData(t, 5, 3000)
	req := CompletenessRequirement{MaxNullRate: 0.01}
	if res := req.Check(d); !res.Satisfied {
		t.Fatalf("complete data failed: %+v", res)
	}
	masked := synth.InjectMissing(d, synth.MissingConfig{
		Attr: "f0", Rate: 0.3, Mech: synth.MAR, CondAttr: "race", CondValue: "black",
	}, rng.New(6))
	res := req.Check(masked)
	if res.Satisfied {
		t.Fatalf("30%% missing passed: %+v", res)
	}
	// The per-group check must attribute the worst rate to the boosted
	// group.
	reqG := CompletenessRequirement{Sensitive: []string{"race"}, MaxNullRate: 0.01}
	resG := reqG.Check(masked)
	if !strings.Contains(resG.Details, "race=black") {
		t.Fatalf("group attribution missing: %+v", resG)
	}
	if resG.Score <= res.Score {
		t.Fatalf("group-level rate %v should exceed overall %v", resG.Score, res.Score)
	}
}

func TestAuditReport(t *testing.T) {
	d := skewedData(t, 7, 500)
	rep := Audit(d, []Requirement{
		CompletenessRequirement{MaxNullRate: 0.5},
		CoverageRequirement{Attrs: []string{"race"}, Threshold: 100000},
	})
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if rep.Satisfied() {
		t.Fatal("report with a failure claims satisfied")
	}
	s := rep.String()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "FAIL") {
		t.Fatalf("report rendering:\n%s", s)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        synth.DefaultPopulation(0),
		NumSources:        4,
		RowsPerSource:     800,
		SkewConcentration: 3,
	}, rng.New(8))

	// Request counts only for groups that exist somewhere.
	need := map[dataset.GroupKey]int{}
	for gi, k := range set.Groups {
		for s := range set.Sources {
			if set.GroupDists[s][gi] > 0 {
				need[k] = 20
				break
			}
		}
	}
	if len(need) == 0 {
		t.Fatal("no available groups")
	}
	reqs := []Requirement{
		CountRequirement{Attrs: set.SensitiveNames, Min: need},
		CompletenessRequirement{MaxNullRate: 0.01},
	}
	p := &Pipeline{
		Sources:            set.Sources,
		Costs:              set.Costs,
		Sensitive:          set.SensitiveNames,
		KnownDistributions: true,
		MaxDraws:           2_000_000,
	}
	out, err := p.Run(need, reqs, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tailor.Fulfilled {
		t.Fatalf("tailoring unfulfilled: %+v", out.Tailor)
	}
	if !out.Audit.Satisfied() {
		t.Fatalf("audit failed:\n%s", out.Audit)
	}
	if out.Label == nil || out.Label.Rows != out.Data.NumRows() {
		t.Fatal("label missing or inconsistent")
	}
	// Provenance must record the tailor, audit, and label steps.
	if out.Provenance == nil || len(out.Provenance.Steps) < 3 {
		t.Fatalf("provenance = %+v", out.Provenance)
	}
	ops := map[string]bool{}
	for _, s := range out.Provenance.Steps {
		ops[s.Op] = true
	}
	for _, want := range []string{"tailor", "audit", "label"} {
		if !ops[want] {
			t.Fatalf("provenance missing op %q:\n%s", want, out.Provenance)
		}
	}
	if b, err := out.Provenance.JSON(); err != nil || len(b) == 0 {
		t.Fatalf("provenance JSON: %v", err)
	}
	if out.Provenance.String() == "" {
		t.Fatal("provenance rendering empty")
	}
	// Tailored counts meet the needs exactly.
	g := out.Data.GroupBy(set.SensitiveNames...)
	for k, n := range need {
		if g.Count(k) != n {
			t.Fatalf("group %s: %d rows, want %d", k, g.Count(k), n)
		}
	}
}

func TestPipelineUnknownDistributions(t *testing.T) {
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        synth.DefaultPopulation(0),
		NumSources:        3,
		RowsPerSource:     600,
		SkewConcentration: 3,
	}, rng.New(10))
	need := map[dataset.GroupKey]int{}
	for gi, k := range set.Groups {
		for s := range set.Sources {
			if set.GroupDists[s][gi] > 0 {
				need[k] = 10
				break
			}
		}
	}
	p := &Pipeline{Sources: set.Sources, Sensitive: set.SensitiveNames, MaxDraws: 2_000_000}
	out, err := p.Run(need, nil, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tailor.Fulfilled {
		t.Fatal("UCB pipeline unfulfilled")
	}
}

func TestPipelineImputesNulls(t *testing.T) {
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        synth.DefaultPopulation(0),
		NumSources:        2,
		RowsPerSource:     600,
		SkewConcentration: 4,
	}, rng.New(30))
	// Punch MCAR holes into every source's f0.
	for i, s := range set.Sources {
		set.Sources[i] = synth.InjectMissing(s, synth.MissingConfig{
			Attr: "f0", Rate: 0.2, Mech: synth.MCAR,
		}, rng.New(31+uint64(i)))
	}
	need := map[dataset.GroupKey]int{}
	for gi, k := range set.Groups {
		for s := range set.Sources {
			if set.GroupDists[s][gi] > 0.02 {
				need[k] = 15
				break
			}
		}
	}
	if len(need) == 0 {
		t.Skip("no available groups")
	}
	p := &Pipeline{
		Sources:            set.Sources,
		Sensitive:          set.SensitiveNames,
		KnownDistributions: true,
		MaxDraws:           2_000_000,
	}
	out, err := p.Run(need, []Requirement{
		CompletenessRequirement{MaxNullRate: 0},
	}, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tailor.Fulfilled {
		t.Fatal("unfulfilled")
	}
	// The pipeline's cleaning step must have repaired every null.
	for r := 0; r < out.Data.NumRows(); r++ {
		if out.Data.IsNull(r, "f0") {
			t.Fatalf("null survived the pipeline at row %d", r)
		}
	}
	if !out.Audit.Satisfied() {
		t.Fatalf("completeness audit failed:\n%s", out.Audit)
	}
}

func TestPipelineErrors(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.Run(nil, nil, rng.New(1)); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        synth.DefaultPopulation(0),
		NumSources:        1,
		RowsPerSource:     100,
		SkewConcentration: 3,
	}, rng.New(12))
	p = &Pipeline{Sources: set.Sources, Sensitive: set.SensitiveNames}
	// A group absent from every source must fail fast.
	if _, err := p.Run(map[dataset.GroupKey]int{"race=martian;sex=F": 5}, nil, rng.New(13)); err == nil {
		t.Fatal("impossible group accepted")
	}
}
