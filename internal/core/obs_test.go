package core

import (
	"bytes"
	"strings"
	"testing"

	"redi/internal/dataset"
	"redi/internal/obs"
	"redi/internal/rng"
)

// obsPipeline builds a small pipeline over two skewed sources with a
// coverage requirement, runs it against the given registry, and returns the
// run result.
func obsPipeline(t *testing.T, reg *obs.Registry) *RunResult {
	t.Helper()
	a := skewedData(t, 3, 800)
	b := skewedData(t, 4, 800)
	g := a.GroupBy("race")
	need := map[dataset.GroupKey]int{}
	for _, k := range g.Keys() {
		need[k] = 5
	}
	p := &Pipeline{
		Sources:            []*dataset.Dataset{a, b},
		Sensitive:          []string{"race"},
		KnownDistributions: true,
		Obs:                reg,
	}
	res, err := p.Run(need, []Requirement{
		CoverageRequirement{Attrs: []string{"race"}, Threshold: 2},
	}, rng.New(11))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return res
}

// TestPipelineProvenanceMetrics checks the §5 transparency satellite: each
// provenance step carries the obs counter deltas of the work done inside
// it, and the run's totals land in the configured registry.
func TestPipelineProvenanceMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	res := obsPipeline(t, reg)

	byOp := map[string]ProvenanceStep{}
	for _, step := range res.Provenance.Steps {
		byOp[step.Op] = step
	}
	tailor := byOp["tailor"]
	if tailor.Metrics["dt.draws"] <= 0 {
		t.Fatalf("tailor step missing dt.draws delta: %+v", tailor.Metrics)
	}
	if tailor.Metrics["core.rows_collected"] != int64(res.Data.NumRows()) {
		t.Fatalf("tailor rows_collected = %d, want %d", tailor.Metrics["core.rows_collected"], res.Data.NumRows())
	}
	audit := byOp["audit"]
	if audit.Metrics["core.requirements_checked"] != 1 {
		t.Fatalf("audit step metrics = %+v", audit.Metrics)
	}
	if audit.Metrics["dt.draws"] != 0 {
		t.Fatalf("audit step credited with tailor work: %+v", audit.Metrics)
	}

	// The run's totals reach the registry the pipeline was given.
	if got := reg.Counter("core.pipeline_runs").Value(); got != 1 {
		t.Fatalf("pipeline_runs = %d, want 1", got)
	}
	if reg.Counter("dt.draws").Value() != tailor.Metrics["dt.draws"] {
		t.Fatalf("registry dt.draws = %d, step delta %d",
			reg.Counter("dt.draws").Value(), tailor.Metrics["dt.draws"])
	}

	// Metrics render in String() and JSON().
	text := res.Provenance.String()
	if !strings.Contains(text, "dt.draws=") {
		t.Fatalf("Provenance.String() missing metrics:\n%s", text)
	}
	js, err := res.Provenance.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(js, []byte(`"metrics"`)) || !bytes.Contains(js, []byte(`"dt.draws"`)) {
		t.Fatalf("Provenance.JSON() missing metrics:\n%s", js)
	}
}

// TestPipelineObsSnapshotRepeatable runs the same pipeline twice and
// asserts the counter snapshots — and per-step metric deltas — are
// bit-identical, the pipeline-level piece of the obs determinism contract.
func TestPipelineObsSnapshotRepeatable(t *testing.T) {
	capture := func() ([]byte, *RunResult) {
		reg := obs.NewRegistry()
		res := obsPipeline(t, reg)
		b, err := reg.MarshalSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		return b, res
	}
	b1, r1 := capture()
	b2, r2 := capture()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("pipeline snapshots diverged:\n%s\nvs\n%s", b1, b2)
	}
	for i := range r1.Provenance.Steps {
		s1, s2 := r1.Provenance.Steps[i], r2.Provenance.Steps[i]
		if s1.Op != s2.Op || len(s1.Metrics) != len(s2.Metrics) {
			t.Fatalf("step %d diverged: %+v vs %+v", i, s1, s2)
		}
		for name, v := range s1.Metrics {
			if s2.Metrics[name] != v {
				t.Fatalf("step %d metric %s: %d vs %d", i, name, v, s2.Metrics[name])
			}
		}
	}
}

// TestPipelineObsNilIsNoOp: with no registry configured and the global
// disabled, the pipeline must run exactly as before and still attach
// per-step metrics (the run-private registry powers those either way).
func TestPipelineObsNilIsNoOp(t *testing.T) {
	res := obsPipeline(t, nil)
	if len(res.Provenance.Steps) == 0 {
		t.Fatal("no provenance steps")
	}
	if res.Provenance.Steps[0].Metrics["dt.draws"] <= 0 {
		t.Fatalf("per-step metrics should not depend on an external registry: %+v",
			res.Provenance.Steps[0].Metrics)
	}
}
