package core

import (
	"testing"

	"redi/internal/dataset"
)

func TestNeedForDistributionExactTotal(t *testing.T) {
	target := map[dataset.GroupKey]float64{
		"g=a": 0.5, "g=b": 0.3, "g=c": 0.2,
	}
	need := NeedForDistribution(target, 100)
	if need["g=a"] != 50 || need["g=b"] != 30 || need["g=c"] != 20 {
		t.Fatalf("need = %v", need)
	}
}

func TestNeedForDistributionRounding(t *testing.T) {
	// Thirds of 100: largest-remainder must hand out the extra row
	// deterministically and total exactly 100.
	target := map[dataset.GroupKey]float64{
		"g=a": 1, "g=b": 1, "g=c": 1,
	}
	need := NeedForDistribution(target, 100)
	total := 0
	for _, n := range need {
		total += n
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
	// Deterministic: repeated calls agree.
	again := NeedForDistribution(target, 100)
	for k, n := range need {
		if again[k] != n {
			t.Fatalf("nondeterministic rounding: %v vs %v", need, again)
		}
	}
}

func TestNeedForDistributionDegenerate(t *testing.T) {
	if got := NeedForDistribution(nil, 100); len(got) != 0 {
		t.Fatalf("nil target = %v", got)
	}
	if got := NeedForDistribution(map[dataset.GroupKey]float64{"g=a": 1}, 0); len(got) != 0 {
		t.Fatalf("zero rows = %v", got)
	}
	// Zero and negative shares get no rows.
	need := NeedForDistribution(map[dataset.GroupKey]float64{"g=a": 1, "g=b": 0}, 10)
	if need["g=a"] != 10 || need["g=b"] != 0 {
		t.Fatalf("need = %v", need)
	}
}

func TestNeedForDistributionFeedsPipeline(t *testing.T) {
	// The rounded counts must satisfy a DistributionRequirement with a
	// small TV budget.
	target := map[dataset.GroupKey]float64{
		"g=a": 0.62, "g=b": 0.27, "g=c": 0.11,
	}
	need := NeedForDistribution(target, 173)
	total := 0
	for _, n := range need {
		total += n
	}
	if total != 173 {
		t.Fatalf("total = %d", total)
	}
	var p, q []float64
	for k, share := range target {
		p = append(p, float64(need[k])/173)
		q = append(q, share)
	}
	tv := 0.0
	for i := range p {
		d := p[i] - q[i]
		if d < 0 {
			d = -d
		}
		tv += d / 2
	}
	if tv > 0.01 {
		t.Fatalf("rounded counts deviate from target: TV = %v", tv)
	}
}
