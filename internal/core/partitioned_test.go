package core

import (
	"fmt"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

func pipelineReqs(d *dataset.Dataset) []Requirement {
	g := d.GroupBy("race")
	target := map[dataset.GroupKey]float64{}
	dist := g.Distribution()
	for i, k := range g.Keys() {
		target[k] = dist[i]
	}
	return []Requirement{
		DistributionRequirement{Attrs: []string{"race"}, Target: target, MaxTV: 0.05},
		CountRequirement{Attrs: []string{"race"}, Min: map[dataset.GroupKey]int{"race=white": 10}},
		CoverageRequirement{Attrs: []string{"race", "sex"}, Threshold: 3},
		CompletenessRequirement{Sensitive: []string{"race"}, MaxNullRate: 0.6},
		// Not partition-aware: exercises the materialization fallback.
		FeatureBiasRequirement{
			Features: synth.FeatureNames(2), Sensitive: []string{"race"},
			Target: "label", Positive: "pos", MaxAssoc: 0.9, MinCorr: 0.0,
		},
	}
}

// TestAuditPartitionedMatchesAudit: every requirement — partition-aware or
// falling back to materialization — reports the identical CheckResult for
// the partitioned view as for the in-memory dataset, at every worker count.
func TestAuditPartitionedMatchesAudit(t *testing.T) {
	d := skewedData(t, 41, 3000)
	reqs := pipelineReqs(d)
	want := Audit(d, reqs)
	for _, partRows := range []int{64, 1024} {
		pd := d.Partitions(partRows)
		for _, workers := range []int{0, 1, 2, 8} {
			got := AuditPartitioned(pd, reqs, workers)
			if len(got.Results) != len(want.Results) {
				t.Fatalf("partRows=%d workers=%d: %d results, want %d", partRows, workers, len(got.Results), len(want.Results))
			}
			for i, res := range got.Results {
				if res != want.Results[i] {
					t.Fatalf("partRows=%d workers=%d: result %d = %+v, want %+v", partRows, workers, i, res, want.Results[i])
				}
			}
		}
	}
}

// TestMaterializePartitionedRoundTrips: the materialized view equals the
// source dataset cell for cell, including dictionary code assignment.
func TestMaterializePartitionedRoundTrips(t *testing.T) {
	d := skewedData(t, 42, 500)
	m := MaterializePartitioned(d.Partitions(64))
	if m.NumRows() != d.NumRows() {
		t.Fatalf("rows = %d, want %d", m.NumRows(), d.NumRows())
	}
	for r := 0; r < d.NumRows(); r++ {
		for c := 0; c < d.Schema().Len(); c++ {
			if got, want := m.ValueAt(r, c), d.ValueAt(r, c); got != want {
				t.Fatalf("row %d col %d: got %v, want %v", r, c, got, want)
			}
		}
	}
	for i := 0; i < d.Schema().Len(); i++ {
		a := d.Schema().Attr(i)
		if a.Kind != dataset.Categorical {
			continue
		}
		if fmt.Sprint(m.Domain(a.Name)) != fmt.Sprint(d.Domain(a.Name)) {
			t.Fatalf("domain %s = %v, want %v", a.Name, m.Domain(a.Name), d.Domain(a.Name))
		}
	}
}

// TestPipelinePartitionedSourcesMatchInMemory: the same seed drives the
// same draws whether sources are in-memory datasets or partitioned views of
// the same rows, so the tailored output is identical row for row.
func TestPipelinePartitionedSourcesMatchInMemory(t *testing.T) {
	d1 := synth.Generate(synth.DefaultPopulation(2000), rng.New(51)).Data
	d2 := synth.Generate(synth.DefaultPopulation(1500), rng.New(52)).Data
	need := map[dataset.GroupKey]int{}
	for _, k := range d1.GroupBy("race").Keys() {
		need[k] = 30
	}
	reqs := pipelineReqs(d1)

	run := func(p *Pipeline) *RunResult {
		t.Helper()
		res, err := p.Run(need, reqs, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(&Pipeline{Sources: []*dataset.Dataset{d1, d2}, Sensitive: []string{"race"}, KnownDistributions: true})

	for _, workers := range []int{1, 4} {
		got := run(&Pipeline{
			PartitionedSources: []*dataset.Partitioned{d1.Partitions(128), d2.Partitions(64)},
			Sensitive:          []string{"race"},
			KnownDistributions: true,
			Workers:            workers,
		})
		if got.Tailor.Draws != want.Tailor.Draws || got.Tailor.TotalCost != want.Tailor.TotalCost {
			t.Fatalf("workers=%d: draws/cost (%d, %v), want (%d, %v)",
				workers, got.Tailor.Draws, got.Tailor.TotalCost, want.Tailor.Draws, want.Tailor.TotalCost)
		}
		if got.Data.NumRows() != want.Data.NumRows() {
			t.Fatalf("workers=%d: %d rows, want %d", workers, got.Data.NumRows(), want.Data.NumRows())
		}
		for r := 0; r < want.Data.NumRows(); r++ {
			for c := 0; c < want.Data.Schema().Len(); c++ {
				if got.Data.ValueAt(r, c) != want.Data.ValueAt(r, c) {
					t.Fatalf("workers=%d row %d col %d: %v, want %v",
						workers, r, c, got.Data.ValueAt(r, c), want.Data.ValueAt(r, c))
				}
			}
		}
		for i, res := range want.Audit.Results {
			if got.Audit.Results[i] != res {
				t.Fatalf("workers=%d: audit %d = %+v, want %+v", workers, i, got.Audit.Results[i], res)
			}
		}
	}
}

// TestPipelineMixedSources: in-memory and partitioned sources coexist in
// one run.
func TestPipelineMixedSources(t *testing.T) {
	d1 := synth.Generate(synth.DefaultPopulation(1200), rng.New(53)).Data
	d2 := synth.Generate(synth.DefaultPopulation(900), rng.New(54)).Data
	need := map[dataset.GroupKey]int{}
	for _, k := range d1.GroupBy("race").Keys() {
		need[k] = 15
	}
	p := &Pipeline{
		Sources:            []*dataset.Dataset{d1},
		PartitionedSources: []*dataset.Partitioned{d2.Partitions(256)},
		Sensitive:          []string{"race"},
		Workers:            2,
	}
	res, err := p.Run(need, pipelineReqs(d1), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tailor.Fulfilled {
		t.Fatalf("tailoring unfulfilled: %+v", res.Tailor)
	}
	if res.Data.NumRows() == 0 || res.Label == nil || res.Provenance == nil {
		t.Fatalf("incomplete result: %+v", res)
	}
}
