// Package core ties REDI together: it defines the responsible-data
// requirements of tutorial §2 as auditable specifications, an audit engine
// that scores any dataset against them, and an end-to-end pipeline
// (discover → tailor → clean → audit → label) over multiple skewed sources
// — the system Example 1 of the paper asks for.
package core

import (
	"fmt"
	"math"
	"sort"

	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/obs"
	"redi/internal/profile"
	"redi/internal/stats"
	"redi/internal/trace"
)

// Requirement is an auditable responsible-data requirement.
type Requirement interface {
	// Name identifies the requirement in audit reports.
	Name() string
	// Check audits d and reports the outcome.
	Check(d *dataset.Dataset) CheckResult
}

// CheckResult is the outcome of auditing one requirement.
type CheckResult struct {
	Requirement string
	Satisfied   bool
	// Score is the requirement's measured quantity (semantics per
	// requirement, e.g. TV distance or worst null rate).
	Score float64
	// Details explains the outcome for humans.
	Details string
}

// AuditReport aggregates check results.
type AuditReport struct {
	Results []CheckResult
}

// Satisfied reports whether every requirement passed.
func (r *AuditReport) Satisfied() bool {
	for _, res := range r.Results {
		if !res.Satisfied {
			return false
		}
	}
	return true
}

// String renders the report as a pass/fail table.
func (r *AuditReport) String() string {
	s := ""
	for _, res := range r.Results {
		mark := "PASS"
		if !res.Satisfied {
			mark = "FAIL"
		}
		s += fmt.Sprintf("[%s] %-28s score=%.4f  %s\n", mark, res.Requirement, res.Score, res.Details)
	}
	return s
}

// Audit checks d against every requirement.
func Audit(d *dataset.Dataset, reqs []Requirement) *AuditReport {
	return auditTracedObs(d, reqs, obs.Active(nil), nil)
}

// AuditTraced is Audit plus one child span per requirement under sp
// ("audit.<name>", with a satisfied 0/1 attribute); requirements that
// implement tracedRequirement nest their kernel spans (MUP walk,
// GroupBy) under it. A nil span is the untraced path.
func AuditTraced(d *dataset.Dataset, reqs []Requirement, sp *trace.Span) *AuditReport {
	return auditTracedObs(d, reqs, obs.Active(nil), sp)
}

// auditObs is Audit with an explicit metrics sink. The pipeline passes its
// run-private registry so audit counters land in the audit step's delta;
// the public Audit entry point uses the process-wide registry, if enabled.
func auditObs(d *dataset.Dataset, reqs []Requirement, reg *obs.Registry) *AuditReport {
	return auditTracedObs(d, reqs, reg, nil)
}

// tracedRequirement is implemented by requirements whose Check can hang
// its kernel work (MUP walks, group indexing, null scans) under a span.
// CheckTraced with a nil span must behave exactly like Check.
type tracedRequirement interface {
	CheckTraced(d *dataset.Dataset, sp *trace.Span) CheckResult
}

func auditTracedObs(d *dataset.Dataset, reqs []Requirement, reg *obs.Registry, sp *trace.Span) *AuditReport {
	rep := &AuditReport{}
	failed := 0
	for _, req := range reqs {
		var rs *trace.Span
		if sp != nil {
			rs = sp.Child("audit." + req.Name())
		}
		var res CheckResult
		if tr, ok := req.(tracedRequirement); ok {
			res = tr.CheckTraced(d, rs)
		} else {
			res = req.Check(d)
		}
		if !res.Satisfied {
			failed++
		}
		rs.SetAttr("satisfied", b2i(res.Satisfied))
		rs.End()
		rep.Results = append(rep.Results, res)
	}
	reg.Counter("core.requirements_checked").Add(int64(len(reqs)))
	reg.Counter("core.requirements_failed").Add(int64(failed))
	return rep
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// NeedForDistribution converts a target group distribution into the count
// requirements a tailoring run needs: counts proportional to the target
// shares summing to totalRows (largest-remainder rounding so the total is
// exact). It is the bridge from §2.1 distribution requirements to the DT
// problem's count inputs.
func NeedForDistribution(target map[dataset.GroupKey]float64, totalRows int) map[dataset.GroupKey]int {
	// Sorted-key iteration keeps the float total and the remainder ranking
	// bit-identical across runs (maporder).
	keys := dataset.SortedKeys(target)
	total := 0.0
	for _, k := range keys {
		if p := target[k]; p > 0 {
			total += p
		}
	}
	out := make(map[dataset.GroupKey]int, len(target))
	if total == 0 || totalRows <= 0 {
		return out
	}
	type frac struct {
		k dataset.GroupKey
		f float64
	}
	var fracs []frac
	assigned := 0
	for _, k := range keys {
		p := target[k]
		if p <= 0 {
			continue
		}
		exact := p / total * float64(totalRows)
		n := int(exact)
		out[k] = n
		assigned += n
		fracs = append(fracs, frac{k: k, f: exact - float64(n)})
	}
	// Largest remainders get the leftover rows; ties break on key for
	// determinism.
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].k < fracs[b].k
	})
	for i := 0; assigned < totalRows && i < len(fracs); i++ {
		out[fracs[i].k]++
		assigned++
	}
	return out
}

// NeedFromRemedy converts a coverage remedy plan into distribution-
// tailoring count requirements: each remedy step's fully-specified value
// combination becomes an intersectional group key over the space's
// attributes, requiring the step's count of additional rows. This closes
// the loop the tutorial sketches — audit finds uncovered patterns, the
// remedy plans what to collect, and tailoring collects it from the
// cheapest sources.
func NeedFromRemedy(space *coverage.Space, plan []coverage.RemedyStep) map[dataset.GroupKey]int {
	out := make(map[dataset.GroupKey]int, len(plan))
	for _, step := range plan {
		vals := make([]string, len(space.Attrs))
		for i, v := range step.Combination {
			// Remedy combinations are fully specified by construction.
			vals[i] = space.Domains[i][v]
		}
		out[dataset.MakeGroupKey(space.Attrs, vals)] += step.Count
	}
	return out
}

// DistributionRequirement is the Underlying Distribution Representation
// requirement (§2.1): the dataset's intersectional group distribution must
// stay within MaxTV total-variation distance of the target distribution.
type DistributionRequirement struct {
	Attrs  []string
	Target map[dataset.GroupKey]float64
	MaxTV  float64
}

// Name implements Requirement.
func (r DistributionRequirement) Name() string { return "distribution-representation" }

// Check implements Requirement.
func (r DistributionRequirement) Check(d *dataset.Dataset) CheckResult {
	return r.checkGroups(d.GroupBy(r.Attrs...))
}

// CheckTraced implements tracedRequirement: the group indexing lands in
// a "dataset.groupby" span under sp.
func (r DistributionRequirement) CheckTraced(d *dataset.Dataset, sp *trace.Span) CheckResult {
	return r.checkGroups(d.GroupByTraced(sp, r.Attrs...))
}

// CheckPartitioned implements PartitionedRequirement: the group index comes
// from the partition-parallel GroupBy, which is bit-identical to the
// in-memory one, so the TV distance is too.
func (r DistributionRequirement) CheckPartitioned(pd *dataset.Partitioned, workers int) CheckResult {
	return r.checkGroups(pd.GroupBy(workers, r.Attrs...))
}

func (r DistributionRequirement) checkGroups(groups *dataset.Groups) CheckResult {
	res := CheckResult{Requirement: r.Name()}
	// Align the observed distribution with the target's key set: keys
	// absent from the data get probability 0 and vice versa.
	keySet := map[dataset.GroupKey]bool{}
	for k := range r.Target {
		keySet[k] = true
	}
	for _, k := range groups.Keys() {
		keySet[k] = true
	}
	total := 0
	for _, c := range groups.Counts {
		total += c
	}
	// The aligned p/q vectors feed a float sum; build them in sorted key
	// order so the TV distance is bit-identical across runs (maporder).
	var p, q []float64
	for _, k := range dataset.SortedKeys(keySet) {
		q = append(q, r.Target[k])
		if total > 0 {
			p = append(p, float64(groups.Count(k))/float64(total))
		} else {
			p = append(p, 0)
		}
	}
	res.Score = stats.TotalVariation(p, q)
	res.Satisfied = res.Score <= r.MaxTV
	res.Details = fmt.Sprintf("TV distance %.4f (max %.4f)", res.Score, r.MaxTV)
	return res
}

// CountRequirement is the Group Representation requirement (§2.2) in DT
// form: each listed group must have at least its required count of rows.
type CountRequirement struct {
	Attrs []string
	Min   map[dataset.GroupKey]int
}

// Name implements Requirement.
func (r CountRequirement) Name() string { return "group-counts" }

// Check implements Requirement.
func (r CountRequirement) Check(d *dataset.Dataset) CheckResult {
	return r.checkGroups(d.GroupBy(r.Attrs...))
}

// CheckTraced implements tracedRequirement.
func (r CountRequirement) CheckTraced(d *dataset.Dataset, sp *trace.Span) CheckResult {
	return r.checkGroups(d.GroupByTraced(sp, r.Attrs...))
}

// CheckPartitioned implements PartitionedRequirement.
func (r CountRequirement) CheckPartitioned(pd *dataset.Partitioned, workers int) CheckResult {
	return r.checkGroups(pd.GroupBy(workers, r.Attrs...))
}

func (r CountRequirement) checkGroups(groups *dataset.Groups) CheckResult {
	res := CheckResult{Requirement: r.Name(), Satisfied: true}
	worst := math.Inf(1)
	// Sorted keys keep the failing-group listing in Details stable
	// (maporder flags the string accumulation below otherwise).
	for _, k := range dataset.SortedKeys(r.Min) {
		min := r.Min[k]
		got := groups.Count(k)
		ratio := 1.0
		if min > 0 {
			ratio = float64(got) / float64(min)
		}
		if ratio < worst {
			worst = ratio
		}
		if got < min {
			res.Satisfied = false
			res.Details += fmt.Sprintf("%s: %d/%d; ", k, got, min)
		}
	}
	if math.IsInf(worst, 1) {
		worst = 1
	}
	res.Score = worst
	if res.Satisfied {
		res.Details = "all group counts met"
	}
	return res
}

// CoverageRequirement is the data-coverage form of Group Representation:
// the dataset must have no maximal uncovered patterns at the threshold.
type CoverageRequirement struct {
	Attrs     []string
	Threshold int
}

// Name implements Requirement.
func (r CoverageRequirement) Name() string { return "coverage" }

// Check implements Requirement.
func (r CoverageRequirement) Check(d *dataset.Dataset) CheckResult {
	space := coverage.NewSpace(d, r.Attrs, r.Threshold)
	return r.checkSpace(space, space.MUPs())
}

// CheckTraced implements tracedRequirement: the MUP walk lands in a
// "coverage.mup_walk" span under sp with the walk's per-level tallies.
func (r CoverageRequirement) CheckTraced(d *dataset.Dataset, sp *trace.Span) CheckResult {
	space := coverage.NewSpace(d, r.Attrs, r.Threshold)
	return r.checkSpace(space, space.MUPsTraced(0, sp))
}

// CheckPartitioned implements PartitionedRequirement: the space is built
// partition-at-a-time and the MUP walk sharded over workers; both are
// bit-identical to the in-memory path.
func (r CoverageRequirement) CheckPartitioned(pd *dataset.Partitioned, workers int) CheckResult {
	space := coverage.NewSpacePartitioned(pd, r.Attrs, r.Threshold, workers)
	return r.checkSpace(space, space.MUPsParallel(workers))
}

// CheckSpace evaluates the requirement against an already-built — e.g.
// incrementally maintained — pattern space instead of deriving one from a
// dataset, sharded over workers. The space's threshold is set from the
// requirement before the walk; the caller must hold exclusive access to the
// space for the duration (the MUP walk uses the space's shared bitmap
// pool). Results are bit-identical to Check on a dataset with the same rows.
func (r CoverageRequirement) CheckSpace(space *coverage.Space, workers int) CheckResult {
	return r.CheckSpaceTraced(space, workers, nil)
}

// CheckSpaceTraced is CheckSpace plus the walk's "coverage.mup_walk"
// span under sp. A nil span is the untraced path.
func (r CoverageRequirement) CheckSpaceTraced(space *coverage.Space, workers int, sp *trace.Span) CheckResult {
	space.Threshold = r.Threshold
	return r.checkSpace(space, space.MUPsTraced(workers, sp))
}

func (r CoverageRequirement) checkSpace(space *coverage.Space, mups []coverage.MUP) CheckResult {
	res := CheckResult{Requirement: r.Name()}
	res.Score = float64(len(mups))
	res.Satisfied = len(mups) == 0
	if res.Satisfied {
		res.Details = fmt.Sprintf("no uncovered patterns at threshold %d", r.Threshold)
	} else {
		res.Details = fmt.Sprintf("%d MUPs, e.g. %s", len(mups), space.Describe(mups[0].Pattern))
	}
	return res
}

// FeatureBiasRequirement is the Unbiased and Informative Features
// requirement (§2.3): at least MinFeatures feature attributes must have
// sensitive association at most MaxAssoc while correlating with the target
// by at least MinCorr.
type FeatureBiasRequirement struct {
	Features    []string
	Sensitive   []string
	Target      string
	Positive    string
	MaxAssoc    float64
	MinCorr     float64
	MinFeatures int
}

// Name implements Requirement.
func (r FeatureBiasRequirement) Name() string { return "unbiased-informative-features" }

// Check implements Requirement.
func (r FeatureBiasRequirement) Check(d *dataset.Dataset) CheckResult {
	res := CheckResult{Requirement: r.Name()}
	min := r.MinFeatures
	if min == 0 {
		min = 1
	}
	positive := r.Positive
	if positive == "" {
		positive = "pos"
	}
	ranked := profile.RankAttrBias(d, r.Features, r.Sensitive, r.Target, positive)
	good := 0
	bestCorr := 0.0
	for _, b := range ranked {
		if b.SensitiveAssoc <= r.MaxAssoc && b.TargetCorr >= r.MinCorr {
			good++
			if b.TargetCorr > bestCorr {
				bestCorr = b.TargetCorr
			}
		}
	}
	res.Score = float64(good)
	res.Satisfied = good >= min
	res.Details = fmt.Sprintf("%d/%d features unbiased (assoc<=%.2f) and informative (corr>=%.2f)",
		good, len(ranked), r.MaxAssoc, r.MinCorr)
	return res
}

// CompletenessRequirement is the Completeness half of §2.4: every listed
// attribute's null rate must stay at or below MaxNullRate, both overall
// and within every demographic group (so that missingness cannot hide in a
// minority).
type CompletenessRequirement struct {
	Attrs       []string // empty means every attribute
	Sensitive   []string
	MaxNullRate float64
}

// Name implements Requirement.
func (r CompletenessRequirement) Name() string { return "completeness" }

// CheckTraced implements tracedRequirement: the null scans run as usual
// and the span records how many attributes and rows they covered.
func (r CompletenessRequirement) CheckTraced(d *dataset.Dataset, sp *trace.Span) CheckResult {
	res := r.Check(d)
	attrs := len(r.Attrs)
	if attrs == 0 {
		attrs = len(d.Schema().Names())
	}
	sp.SetAttr("attrs_checked", int64(attrs))
	sp.SetAttr("rows", int64(d.NumRows()))
	return res
}

// Check implements Requirement.
func (r CompletenessRequirement) Check(d *dataset.Dataset) CheckResult {
	res := CheckResult{Requirement: r.Name(), Satisfied: true}
	attrs := r.Attrs
	if len(attrs) == 0 {
		attrs = d.Schema().Names()
	}
	worst := 0.0
	worstAt := ""
	for _, a := range attrs {
		// Compiled null-mask count: one fused scan over the column's codes
		// or null mask instead of a per-row Value walk.
		nulls := d.Count(dataset.IsNull(a))
		rate := 0.0
		if d.NumRows() > 0 {
			rate = float64(nulls) / float64(d.NumRows())
		}
		if rate > worst {
			worst, worstAt = rate, a
		}
		if len(r.Sensitive) > 0 && nulls > 0 {
			// Gid order is ascending key order, so the argmax tie-break is
			// deterministic: with equal rates the lexicographically first
			// group is reported.
			fracs, groups := profile.GroupMissingness(d, a, r.Sensitive)
			for gid, frac := range fracs {
				if frac > worst {
					worst, worstAt = frac, fmt.Sprintf("%s within %s", a, groups.Key(gid))
				}
			}
		}
	}
	res.Score = worst
	res.Satisfied = worst <= r.MaxNullRate
	res.Details = fmt.Sprintf("worst null rate %.4f at %s (max %.4f)", worst, worstAt, r.MaxNullRate)
	if worstAt == "" {
		res.Details = "no nulls"
	}
	return res
}
