package core

import (
	"errors"
	"fmt"

	"redi/internal/cleaning"
	"redi/internal/dataset"
	"redi/internal/dt"
	"redi/internal/obs"
	"redi/internal/profile"
	"redi/internal/rng"
	"redi/internal/trace"
)

// now is the pipeline's clock seam, routed through the obs layer's single
// sanctioned wall-clock read. Provenance step durations are observational
// metadata, never algorithm inputs; tests pin this var to a fake clock to
// make provenance output fully deterministic.
var now = obs.Now

// Pipeline is the end-to-end responsible data integration flow over a set
// of candidate sources sharing one schema: tailor a dataset meeting group
// count requirements at minimum cost, repair missing values with a
// group-aware imputer, audit the result against responsible-data
// requirements, and emit its nutritional label.
type Pipeline struct {
	// Sources are the candidate datasets (e.g. the per-institution
	// extracts of Example 1).
	Sources []*dataset.Dataset
	// PartitionedSources are candidate partitioned views (e.g. converted
	// column files too large to load), appended after Sources in source
	// index order. Their group indexing and sampling run partition-at-a-
	// time; only the rows tailoring keeps are ever materialized.
	PartitionedSources []*dataset.Partitioned
	// Workers is the worker count for partition-parallel stages
	// (parallel.Workers semantics; 0 = serial). Results are bit-identical
	// at any setting.
	Workers int
	// Costs[i] is the per-sample cost of source i (default 1), indexed
	// over Sources then PartitionedSources.
	Costs []float64
	// Sensitive lists the grouping attributes (default: schema roles).
	Sensitive []string
	// KnownDistributions selects RatioColl (true) or UCBColl (false).
	KnownDistributions bool
	// MaxDraws caps tailoring; 0 uses the dt default.
	MaxDraws int
	// Obs receives the run's counters and step spans. Each run tallies
	// into a private registry first — so the per-step Metrics attached to
	// the Provenance are exact deltas even when pipelines run
	// concurrently — and folds the totals into Obs (or, when Obs is nil,
	// the process-wide registry from obs.Enable) on completion.
	Obs *obs.Registry
	// Trace, when non-nil, receives one child span per pipeline step
	// ("pipeline.tailor", "pipeline.impute", ...) whose attributes are
	// the step's obs counter deltas — the exact same map attached to the
	// matching ProvenanceStep.Metrics — plus the row count after the
	// step. Nil disables tracing at the cost of one branch per step.
	Trace *trace.Span
}

// RunResult is the outcome of a pipeline run.
type RunResult struct {
	Data   *dataset.Dataset
	Tailor *dt.Result
	Audit  *AuditReport
	Label  *profile.Label
	// Provenance records every step the pipeline took (§5
	// transparency); ship it with the data.
	Provenance *Provenance
}

// Run executes the pipeline: it indexes each source's groups, runs
// distribution tailoring for the requested counts, materializes the
// collected rows, imputes nulls in the numeric feature attributes with
// group-conditional means, audits the result, and builds its label.
func (p *Pipeline) Run(need map[dataset.GroupKey]int, reqs []Requirement, r *rng.RNG) (*RunResult, error) {
	nSrc := len(p.Sources) + len(p.PartitionedSources)
	if nSrc == 0 {
		return nil, errors.New("core: pipeline has no sources")
	}
	sensitive := p.Sensitive
	if len(sensitive) == 0 {
		if len(p.Sources) > 0 {
			sensitive = p.Sources[0].Schema().ByRole(dataset.Sensitive)
		} else {
			sensitive = p.PartitionedSources[0].Schema().ByRole(dataset.Sensitive)
		}
	}
	if len(sensitive) == 0 {
		return nil, errors.New("core: no sensitive attributes")
	}

	// Global group key order: union of source groups and requested keys.
	seen := map[dataset.GroupKey]bool{}
	var keys []dataset.GroupKey
	addKey := func(k dataset.GroupKey) {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	// In-memory sources first, then partitioned views; the group indexes
	// are bit-identical across the two backends, so mixed pipelines see one
	// consistent key universe.
	isp := p.Trace.Child("pipeline.index")
	sourceGroups := make([]*dataset.Groups, nSrc)
	for i, s := range p.Sources {
		sourceGroups[i] = s.GroupByTraced(isp, sensitive...)
	}
	for i, pd := range p.PartitionedSources {
		sourceGroups[len(p.Sources)+i] = pd.GroupBy(p.Workers, sensitive...)
	}
	for _, g := range sourceGroups {
		for _, k := range g.Keys() {
			addKey(k)
		}
	}
	// Sorted keys: requested groups absent from every source would
	// otherwise land in keys in map order (the append hides inside
	// addKey, where maporder cannot see it).
	for _, k := range dataset.SortedKeys(need) {
		addKey(k)
	}
	isp.SetAttr("sources", int64(nSrc))
	isp.SetAttr("gids", int64(len(keys)))
	isp.End()

	// Build dt sources and the need vector.
	var sources []dt.Source
	var costs []float64
	probs := make([][]float64, 0, nSrc)
	for i := 0; i < nSrc; i++ {
		cost := 1.0
		if p.Costs != nil {
			cost = p.Costs[i]
		}
		var src dt.Source
		var err error
		if i < len(p.Sources) {
			src, err = dt.NewDatasetSource(p.Sources[i], sourceGroups[i], keys, cost)
		} else {
			src, err = dt.NewPartitionedSource(p.PartitionedSources[i-len(p.Sources)], sourceGroups[i], keys, cost)
		}
		if err != nil {
			return nil, fmt.Errorf("core: source %d: %w", i, err)
		}
		sources = append(sources, src)
		costs = append(costs, cost)
		// True distribution for the known-distribution strategy.
		dist := make([]float64, len(keys))
		total := 0
		for _, c := range sourceGroups[i].Counts {
			total += c
		}
		for gi, k := range keys {
			if total > 0 {
				dist[gi] = float64(sourceGroups[i].Count(k)) / float64(total)
			}
		}
		probs = append(probs, dist)
	}
	needVec := make([]int, len(keys))
	for gi, k := range keys {
		needVec[gi] = need[k]
		// Requests for groups absent from every source cannot be
		// fulfilled; fail fast instead of spinning.
		if needVec[gi] > 0 {
			available := false
			for _, pr := range probs {
				if pr[gi] > 0 {
					available = true
					break
				}
			}
			if !available {
				return nil, fmt.Errorf("core: group %s requested but absent from all sources", k)
			}
		}
	}

	// Run-private registry: instrumented layers below (dt, audit) tally
	// here, so each provenance step's Metrics are exact counter deltas.
	// The totals merge into the ambient registry at the end of the run.
	reg := obs.NewRegistry()
	reg.Counter("core.pipeline_runs").Inc()
	prov := &Provenance{}
	// step snapshots the counters and the clock; the returned func closes
	// a provenance entry with the elapsed time, the counter delta, and a
	// span named after the op. The trace span it opens carries the same
	// delta map as deterministic attributes (sorted key order), so a
	// trace and the provenance it ships with can be cross-checked
	// entry-for-entry.
	step := func(op string) (*trace.Span, func(detail string, params map[string]string, rows int)) {
		before := reg.CounterValues()
		ssp := p.Trace.Child("pipeline." + op)
		start := now()
		return ssp, func(detail string, params map[string]string, rows int) {
			elapsed := now().Sub(start)
			reg.RecordSpan("pipeline."+op, elapsed)
			delta := obs.DeltaCounters(before, reg.CounterValues())
			ssp.SetAttr("rows_after", int64(rows))
			ssp.AddDeltas("obs.", delta)
			ssp.End()
			prov.add(op, detail, params, rows, elapsed, delta)
		}
	}

	engine := &dt.Engine{Sources: sources, MaxDraws: p.MaxDraws, Obs: reg}
	var strategy dt.Strategy
	if p.KnownDistributions {
		strategy = dt.NewRatioColl(probs, costs)
	} else {
		strategy = dt.NewUCBColl(costs, len(keys))
	}
	_, endTailor := step("tailor")
	res, err := engine.Run(strategy, needVec, r)
	if err != nil {
		return nil, err
	}
	out := &RunResult{Tailor: res, Provenance: prov}
	data := engine.Materialize(res)
	if data == nil {
		return nil, errors.New("core: tailoring produced no data")
	}
	reg.Counter("core.rows_collected").Add(int64(data.NumRows()))
	endTailor(
		fmt.Sprintf("collected %d rows from %d sources via %s (%d draws, cost %.2f)",
			data.NumRows(), nSrc, res.Strategy, res.Draws, res.TotalCost),
		map[string]string{
			"strategy": res.Strategy,
			"groups":   fmt.Sprintf("%d", len(keys)),
		}, data.NumRows())

	// Clean: group-conditional mean imputation on numeric features.
	s := data.Schema()
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		if a.Kind != dataset.Numeric {
			continue
		}
		// The null scan doubles as the imputed-cell count: every null in
		// a numeric attribute the imputer handles becomes a filled cell.
		// Compiled predicate count: one fused null-mask scan.
		nulls := data.Count(dataset.IsNull(a.Name))
		if nulls == 0 {
			continue
		}
		_, endImpute := step("impute")
		repaired, err := cleaning.GroupMeanImputer{Sensitive: sensitive}.Impute(data, a.Name)
		if err != nil {
			return nil, fmt.Errorf("core: imputing %s: %w", a.Name, err)
		}
		data = repaired
		reg.Counter("core.imputed_cells").Add(int64(nulls))
		endImpute(
			fmt.Sprintf("group-mean imputation on %s", a.Name),
			map[string]string{"attr": a.Name, "imputer": "group-mean"},
			data.NumRows())
	}
	out.Data = data

	auditSpan, endAudit := step("audit")
	out.Audit = auditTracedObs(data, reqs, reg, auditSpan)
	pass := "passed"
	if !out.Audit.Satisfied() {
		pass = "FAILED"
	}
	endAudit(
		fmt.Sprintf("%d requirements checked: %s", len(reqs), pass),
		nil, data.NumRows())

	_, endLabel := step("label")
	out.Label = profile.BuildLabel(data, profile.LabelConfig{Sensitive: sensitive})
	endLabel("nutritional label built", nil, data.NumRows())

	// Publish the run's totals to the configured or process-wide sink.
	obs.Active(p.Obs).Merge(reg)
	return out, nil
}
