package core

import (
	"testing"

	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

// TestCoverageRemedyToTailoring exercises the full responsible-integration
// loop: an in-house dataset fails its coverage audit; the remedy plan is
// converted into tailoring requirements; the pipeline collects the missing
// rows from external sources; the union passes the audit.
func TestCoverageRemedyToTailoring(t *testing.T) {
	// External sources (with held-out generator shared with in-house).
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        synth.DefaultPopulation(0),
		NumSources:        4,
		RowsPerSource:     2500,
		SkewConcentration: 5,
	}, rng.New(1))
	sens := set.SensitiveNames

	// In-house data: one source truncated — guaranteed to under-cover
	// some intersectional group at this threshold.
	inHouse := set.Sources[0].Head(700)
	const threshold = 40
	space := coverage.NewSpace(inHouse, sens, threshold)
	mups := space.MUPs()
	if len(mups) == 0 {
		t.Skip("no MUPs in this draw; coverage already satisfied")
	}
	req := CoverageRequirement{Attrs: sens, Threshold: threshold}
	if res := req.Check(inHouse); res.Satisfied {
		t.Fatal("audit passed despite MUPs")
	}

	// Remedy -> tailoring requirements, restricted to combinations that
	// exist in at least one external source.
	plan := space.Remedy(mups)
	need := NeedFromRemedy(space, plan)
	if len(need) == 0 {
		t.Fatal("empty need from non-empty plan")
	}
	available := map[dataset.GroupKey]bool{}
	for gi, k := range set.Groups {
		for s := range set.Sources {
			if set.GroupDists[s][gi] > 0 {
				available[k] = true
				break
			}
		}
	}
	for k := range need {
		if !available[k] {
			delete(need, k) // nothing can provide it; drop from this test
		}
	}
	if len(need) == 0 {
		t.Skip("no remediable groups available in external sources")
	}

	p := &Pipeline{
		Sources:            set.Sources,
		Sensitive:          sens,
		KnownDistributions: true,
		MaxDraws:           2_000_000,
	}
	out, err := p.Run(need, nil, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tailor.Fulfilled {
		t.Fatalf("tailoring unfulfilled: %v", out.Tailor.Collected)
	}

	// Union the acquisitions with the in-house data and re-audit the
	// remediated groups: every group we could remediate must now clear
	// the threshold.
	union, err := inHouse.Union(out.Data)
	if err != nil {
		t.Fatal(err)
	}
	g := union.GroupBy(sens...)
	for k := range need {
		before := inHouse.GroupBy(sens...).Count(k)
		after := g.Count(k)
		if after < threshold && after < before+need[k] {
			t.Fatalf("group %s not remediated: %d -> %d (need %d, threshold %d)",
				k, before, after, need[k], threshold)
		}
	}
}

func TestNeedFromRemedyKeys(t *testing.T) {
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "race", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	for i := 0; i < 20; i++ {
		d.MustAppendRow(dataset.Cat("white"), dataset.Cat("M"))
	}
	d.MustAppendRow(dataset.Cat("black"), dataset.Cat("F"))
	space := coverage.NewSpace(d, []string{"race", "sex"}, 5)
	plan := space.Remedy(space.MUPs())
	need := NeedFromRemedy(space, plan)
	// The key format must match dataset.GroupBy keys.
	for k, n := range need {
		if n <= 0 {
			t.Fatalf("non-positive need for %s", k)
		}
		g := d.GroupBy("race", "sex")
		found := false
		for _, gk := range g.Keys() {
			if gk == k {
				found = true
			}
		}
		// Keys may also name combinations absent from d entirely;
		// they must still parse as attr=val;attr=val.
		if !found && len(k) == 0 {
			t.Fatalf("malformed key %q", k)
		}
	}
}
