package core

import (
	"testing"
	"time"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// The requirement checks below iterate GroupKey-keyed maps. Before the
// maporder sweep they accumulated floats and report strings in Go's
// randomized map order, so Score low bits and Details varied run to run.
// Repeating each check many times within one process exercises many map
// orders; every repetition must now be bit-identical.
const repeatabilityRounds = 100

func TestRequirementChecksRepeatable(t *testing.T) {
	d := skewedData(t, 7, 2000)
	g := d.GroupBy("race", "sex")
	target := map[dataset.GroupKey]float64{}
	dist := g.Distribution()
	for i, k := range g.Keys() {
		// Perturb so TV is a genuine multi-term float sum, not zero.
		target[k] = dist[i]*0.9 + 0.1/float64(g.NumGroups())
	}
	min := map[dataset.GroupKey]int{}
	for _, k := range g.Keys() {
		min[k] = g.Count(k) + 1000 // all fail -> Details lists every group
	}
	reqs := []Requirement{
		DistributionRequirement{Attrs: []string{"race", "sex"}, Target: target, MaxTV: 0.01},
		CountRequirement{Attrs: []string{"race", "sex"}, Min: min},
		CompletenessRequirement{Sensitive: []string{"race", "sex"}, MaxNullRate: 0.0},
	}
	for _, req := range reqs {
		first := req.Check(d)
		for i := 1; i < repeatabilityRounds; i++ {
			got := req.Check(d)
			if got != first {
				t.Fatalf("%s: check not repeatable\nrun 0: %+v\nrun %d: %+v", req.Name(), first, i, got)
			}
		}
	}
}

func TestNeedForDistributionRepeatable(t *testing.T) {
	target := map[dataset.GroupKey]float64{}
	for _, k := range []dataset.GroupKey{"g=a", "g=b", "g=c", "g=d", "g=e", "g=f", "g=g"} {
		// Irrational-ish shares force fractional remainders, so the
		// largest-remainder ranking (a float sort fed by a float sum)
		// actually decides the rounding.
		target[k] = 1.0 / float64(len(k)+len(target)+3)
	}
	first := NeedForDistribution(target, 997)
	for i := 1; i < repeatabilityRounds; i++ {
		got := NeedForDistribution(target, 997)
		if len(got) != len(first) {
			t.Fatalf("run %d: %d groups, want %d", i, len(got), len(first))
		}
		for k, n := range first {
			if got[k] != n {
				t.Fatalf("run %d: group %s got %d rows, want %d", i, k, got[k], n)
			}
		}
	}
}

// TestPipelineClockSeam pins the pipeline's clock and checks that
// provenance durations come from the seam — wall-clock reads no longer
// leak into pipeline output (walltime rule).
func TestPipelineClockSeam(t *testing.T) {
	saved := now
	defer func() { now = saved }()
	var tick int64
	base := time.Unix(1700000000, 0)
	now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	}

	d := skewedData(t, 3, 800)
	g := d.GroupBy("race")
	need := map[dataset.GroupKey]int{}
	for _, k := range g.Keys() {
		need[k] = 5
	}
	p := &Pipeline{Sources: []*dataset.Dataset{d}, Sensitive: []string{"race"}, KnownDistributions: true}
	run := func() []time.Duration {
		tick = 0
		res, err := p.Run(need, nil, rng.New(11))
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		var out []time.Duration
		for _, step := range res.Provenance.Steps {
			out = append(out, step.Elapsed)
		}
		return out
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("no provenance steps recorded")
	}
	for _, el := range first {
		if el <= 0 || el%time.Second != 0 {
			t.Fatalf("duration %v did not come from the pinned clock", el)
		}
	}
	for i := 1; i < 5; i++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("run %d: %d steps, want %d", i, len(got), len(first))
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d step %d: elapsed %v, want %v", i, j, got[j], first[j])
			}
		}
	}
}
