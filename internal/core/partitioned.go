package core

import (
	"fmt"

	"redi/internal/dataset"
	"redi/internal/obs"
	"redi/internal/trace"
)

// PartitionedRequirement is a Requirement that can audit a partitioned
// (possibly out-of-core) view directly, partition-at-a-time, without
// materializing its rows. Implementations must be bit-identical to Check on
// the materialized rows at any worker count.
type PartitionedRequirement interface {
	Requirement
	CheckPartitioned(pd *dataset.Partitioned, workers int) CheckResult
}

// AuditPartitioned checks a partitioned view against every requirement.
// Requirements implementing PartitionedRequirement run partition-at-a-time
// with the given worker count (parallel.Workers semantics); the rest see a
// one-time materialization of the view — correct, but paying the full
// row-building cost, so hot requirements grow partitioned paths.
func AuditPartitioned(pd *dataset.Partitioned, reqs []Requirement, workers int) *AuditReport {
	return AuditPartitionedTraced(pd, reqs, workers, nil)
}

// AuditPartitionedTraced is AuditPartitioned plus one child span per
// requirement under sp ("audit.<name>", satisfied 0/1 attribute). The
// partition-at-a-time checks run untraced internally (their kernels
// already publish deterministic counters); a nil span is the untraced
// path.
func AuditPartitionedTraced(pd *dataset.Partitioned, reqs []Requirement, workers int, sp *trace.Span) *AuditReport {
	return auditPartitionedObs(pd, reqs, workers, obs.Active(nil), sp)
}

func auditPartitionedObs(pd *dataset.Partitioned, reqs []Requirement, workers int, reg *obs.Registry, sp *trace.Span) *AuditReport {
	rep := &AuditReport{}
	failed := 0
	var materialized *dataset.Dataset
	for _, req := range reqs {
		var rs *trace.Span
		if sp != nil {
			rs = sp.Child("audit." + req.Name())
		}
		var res CheckResult
		if pr, ok := req.(PartitionedRequirement); ok {
			res = pr.CheckPartitioned(pd, workers)
		} else {
			if materialized == nil {
				materialized = MaterializePartitioned(pd)
			}
			res = req.Check(materialized)
		}
		if !res.Satisfied {
			failed++
		}
		rs.SetAttr("satisfied", b2i(res.Satisfied))
		rs.End()
		rep.Results = append(rep.Results, res)
	}
	reg.Counter("core.requirements_checked").Add(int64(len(reqs)))
	reg.Counter("core.requirements_failed").Add(int64(failed))
	return rep
}

// MaterializePartitioned builds an in-memory dataset holding every row of
// the view — the escape hatch for row-oriented consumers. The result's
// dictionaries and codes match a dataset built by appending the same rows.
func MaterializePartitioned(pd *dataset.Partitioned) *dataset.Dataset {
	out := dataset.New(pd.Schema())
	rows := make([]int, pd.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := pd.AppendRowsTo(out, rows); err != nil {
		panic(fmt.Sprintf("core: materializing partitioned view: %v", err))
	}
	return out
}

// CheckPartitioned implements PartitionedRequirement: null rates come from
// compiled IsNull counts over the partitions' null codes and validity
// words, and per-group rates from the partition-parallel group index — the
// same quantities Check computes row-at-a-time.
func (r CompletenessRequirement) CheckPartitioned(pd *dataset.Partitioned, workers int) CheckResult {
	res := CheckResult{Requirement: r.Name(), Satisfied: true}
	attrs := r.Attrs
	if len(attrs) == 0 {
		attrs = pd.Schema().Names()
	}
	var groups *dataset.Groups // lazily built once, shared by all attrs
	worst := 0.0
	worstAt := ""
	for _, a := range attrs {
		pp, ok := pd.CompilePredicate(dataset.IsNull(a))
		if !ok {
			panic("core: IsNull predicate failed to compile")
		}
		nulls := pp.Count(workers)
		rate := 0.0
		if pd.NumRows() > 0 {
			rate = float64(nulls) / float64(pd.NumRows())
		}
		if rate > worst {
			worst, worstAt = rate, a
		}
		if len(r.Sensitive) > 0 && nulls > 0 {
			if groups == nil {
				groups = pd.GroupBy(workers, r.Sensitive...)
			}
			miss := make([]int, groups.NumGroups())
			pp.SelectBitmap(workers).ForEach(func(row int) {
				if gi := groups.ByRow[row]; gi >= 0 {
					miss[gi]++
				}
			})
			for gi, n := range groups.Counts {
				if n == 0 {
					continue
				}
				// Ascending-gid iteration keeps the argmax tie-break
				// identical to the in-memory path: equal rates report the
				// lexicographically first group.
				if frac := float64(miss[gi]) / float64(n); frac > worst {
					worst, worstAt = frac, fmt.Sprintf("%s within %s", a, groups.Key(gi))
				}
			}
		}
	}
	res.Score = worst
	res.Satisfied = worst <= r.MaxNullRate
	res.Details = fmt.Sprintf("worst null rate %.4f at %s (max %.4f)", worst, worstAt, r.MaxNullRate)
	if worstAt == "" {
		res.Details = "no nulls"
	}
	return res
}

// Interface conformance: the four partition-aware requirements.
var (
	_ PartitionedRequirement = DistributionRequirement{}
	_ PartitionedRequirement = CountRequirement{}
	_ PartitionedRequirement = CoverageRequirement{}
	_ PartitionedRequirement = CompletenessRequirement{}
)
