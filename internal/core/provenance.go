package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Provenance records what an integration pipeline actually did — the §5
// "Interpretability and Transparency" opportunity (Vizier/Loki): every
// step, its parameters, and its effect on the data, as a machine-readable
// document that ships with the output dataset alongside its label.
type Provenance struct {
	Steps []ProvenanceStep `json:"steps"`
}

// ProvenanceStep is one recorded pipeline action.
type ProvenanceStep struct {
	// Op names the operation ("tailor", "impute", "audit", "label").
	Op string `json:"op"`
	// Detail is a human-readable summary.
	Detail string `json:"detail"`
	// Params holds machine-readable parameters.
	Params map[string]string `json:"params,omitempty"`
	// RowsAfter is the dataset size after the step (-1 when not
	// applicable).
	RowsAfter int `json:"rows_after"`
	// Elapsed is the step's wall-clock duration.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Metrics holds the step's observability counter deltas (obs layer):
	// the algorithmic work the step performed, e.g. dt.draws for the
	// tailor step. Deterministic: bit-identical across runs and worker
	// counts.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// add appends a step.
func (p *Provenance) add(op, detail string, params map[string]string, rows int, elapsed time.Duration, metrics map[string]int64) {
	p.Steps = append(p.Steps, ProvenanceStep{
		Op:        op,
		Detail:    detail,
		Params:    params,
		RowsAfter: rows,
		Elapsed:   elapsed,
		Metrics:   metrics,
	})
}

// JSON renders the provenance document.
func (p *Provenance) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// String renders the steps as a readable log.
func (p *Provenance) String() string {
	s := ""
	for i, st := range p.Steps {
		s += fmt.Sprintf("%d. [%s] %s", i+1, st.Op, st.Detail)
		if st.RowsAfter >= 0 {
			s += fmt.Sprintf(" (rows=%d)", st.RowsAfter)
		}
		s += "\n"
		if len(st.Metrics) > 0 {
			names := make([]string, 0, len(st.Metrics))
			for name := range st.Metrics {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				s += fmt.Sprintf("     %s=%d\n", name, st.Metrics[name])
			}
		}
	}
	return s
}
