package dataset

import (
	"sort"

	"redi/internal/bitmap"
	"redi/internal/obs"
	"redi/internal/parallel"
)

// PartitionedPredicate is a predicate bytecode program bound to a
// Partitioned view. The program is compiled once against the view's global
// dictionaries (every partition's codes index into them, so one binding
// serves all partitions) and replayed partition-at-a-time with the same
// fill kernels as the in-memory vectorized driver — numeric leaves swap in
// masked variants that AND each built word against the partition's validity
// words, which is where the bit-packed null layout pays off.
//
// Evaluation fans out over partitions; per-shard results land in disjoint
// word ranges of the output bitmap (PartRows is a multiple of 64), so
// SelectBitmap and Count are bit-identical at any worker count. Partitions
// whose present-code sets prove the predicate unsatisfiable are skipped
// without touching their pages.
//
// A PartitionedPredicate is safe for concurrent use: every evaluation
// allocates per-shard scratch.
type PartitionedPredicate struct {
	pd   *Partitioned
	prog *CompiledPredicate // bound to the zero-row dictionary stub
	// Per-slot schema column indices, for fetching partition views.
	catColIdx []int
	numColIdx []int
}

// CompilePredicate compiles p against the view's schema and global
// dictionaries. It reports ok=false for opaque closures (PredicateFunc),
// exactly like CompilePredicate on a Dataset.
func (pd *Partitioned) CompilePredicate(p Predicate) (*PartitionedPredicate, bool) {
	if p.node == nil {
		return nil, false
	}
	// The program binds against a zero-row stub Dataset carrying the global
	// dictionaries: folding and literal→code resolution see exactly the
	// codes the partitions use, and the bytecode verifier accepts the empty
	// column storage because no row of the stub is ever evaluated — the
	// per-partition drivers below rebind column storage for each partition.
	stub := pd.bindingStub()
	prog := compileNode(stub, p.node)
	pp := &PartitionedPredicate{
		pd:        pd,
		prog:      prog,
		catColIdx: make([]int, len(prog.catAttrs)),
		numColIdx: make([]int, len(prog.numAttrs)),
	}
	for s, attr := range prog.catAttrs {
		pp.catColIdx[s] = pd.Schema().MustIndex(attr)
	}
	for s, attr := range prog.numAttrs {
		pp.numColIdx[s] = pd.Schema().MustIndex(attr)
	}
	return pp, true
}

// bindingStub builds a zero-row Dataset whose categorical columns carry
// the view's global dictionaries, giving the existing compiler the exact
// value→code binding environment of every partition.
func (pd *Partitioned) bindingStub() *Dataset {
	schema := pd.Schema()
	stub := &Dataset{schema: schema, cols: make([]column, schema.Len())}
	for i := 0; i < schema.Len(); i++ {
		if schema.Attr(i).Kind == Categorical {
			dict := pd.src.Dict(i)
			index := make(map[string]int32, len(dict))
			for code, s := range dict {
				index[s] = int32(code)
			}
			stub.cols[i] = &catColumn{dict: dict, index: index, shared: true}
		} else {
			stub.cols[i] = &numColumn{}
		}
	}
	return stub
}

// Program exposes the underlying compiled program (for Disassemble and
// introspection). The program is bound to a zero-row stub — do not call
// its evaluation entry points.
func (pp *PartitionedPredicate) Program() *CompiledPredicate { return pp.prog }

// partScratch is one shard's evaluation state: a bitmap stack plus the
// all-rows mask, both sized for a full partition and re-masked per
// partition.
type partScratch struct {
	bms  []bitmap.Bitmap
	full bitmap.Bitmap
}

func (pp *PartitionedPredicate) newScratch() *partScratch {
	words := bitmap.WordsFor(pp.pd.PartRows())
	sc := &partScratch{bms: make([]bitmap.Bitmap, pp.prog.depth), full: make(bitmap.Bitmap, words)}
	for i := range sc.bms {
		sc.bms[i] = make(bitmap.Bitmap, words)
	}
	return sc
}

// mayMatch replays the program conservatively over partition p's
// present-code sets: each leaf answers "could any row of this partition
// satisfy me?", with unknown resolved to yes. A false result proves no row
// matches, so the partition can be pruned without reading its pages.
func (pp *PartitionedPredicate) mayMatch(p int) bool {
	var stack [vmStackHint]bool
	st := stack[:]
	if pp.prog.depth > vmStackHint {
		st = make([]bool, pp.prog.depth)
	}
	sp := 0
	present := func(slot int32) []int32 {
		return pp.pd.src.PartitionPresentCodes(p, pp.catColIdx[slot])
	}
	for i := range pp.prog.code {
		in := &pp.prog.code[i]
		switch in.op {
		case pEqCode:
			codes := present(in.a)
			may := codes == nil
			if !may {
				j := sort.Search(len(codes), func(k int) bool { return codes[k] >= in.b })
				may = j < len(codes) && codes[j] == in.b
			}
			st[sp] = may
			sp++
		case pInSet:
			codes := present(in.a)
			may := codes == nil
			if !may {
				set := pp.prog.sets[in.b]
				for _, code := range codes {
					if set[code+1] {
						may = true
						break
					}
				}
			}
			st[sp] = may
			sp++
		case pConstOp:
			st[sp] = in.a != 0
			sp++
		case pAndOp:
			sp--
			st[sp-1] = st[sp-1] && st[sp]
		case pOrOp:
			sp--
			st[sp-1] = st[sp-1] || st[sp]
		case pNotOp:
			// A subtree that may match rows may also fail to match others,
			// so its negation may match: the only sound answer is yes.
			st[sp-1] = true
		default:
			// Range/compare/null leaves have no per-partition index yet.
			st[sp] = true
			sp++
		}
	}
	return st[0]
}

// evalPartition replays the program on partition p and returns the match
// bitmap (sc.bms[0] truncated to the partition's words). rows/kernels
// tallies mirror the in-memory driver's obs counters.
func (pp *PartitionedPredicate) evalPartition(p int, sc *partScratch, rows, kernels *int64) bitmap.Bitmap {
	n := pp.pd.src.PartitionRows(p)
	words := bitmap.WordsFor(n)
	full := sc.full[:words]
	for w := range full {
		full[w] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 && words > 0 {
		full[words-1] = (uint64(1) << uint(rem)) - 1
	}
	cp := pp.prog
	sp := 0
	for i := range cp.code {
		in := &cp.code[i]
		switch in.op {
		case pEqCode:
			fillEq(sc.bms[sp][:words], pp.catCodes(p, in.a), in.b)
			sp++
			*rows += int64(n)
		case pInSet:
			fillIn(sc.bms[sp][:words], pp.catCodes(p, in.a), cp.sets[in.b])
			sp++
			*rows += int64(n)
		case pRangeOp:
			vals, validity := pp.numVals(p, in.a)
			fillRangeMasked(sc.bms[sp][:words], vals, validity, in.f0, in.f1)
			sp++
			*rows += int64(n)
		case pCmpOp:
			vals, validity := pp.numVals(p, in.a)
			fillCmpMasked(sc.bms[sp][:words], vals, validity, CompareOp(in.b), in.f0)
			sp++
			*rows += int64(n)
		case pNotNullCat:
			fillNotNullCat(sc.bms[sp][:words], pp.catCodes(p, in.a))
			sp++
			*rows += int64(n)
		case pNotNullNum:
			_, validity := pp.numVals(p, in.a)
			copy(sc.bms[sp][:words], validity)
			sp++
			*rows += int64(n)
		case pIsNullCat:
			dst := sc.bms[sp][:words]
			fillNotNullCat(dst, pp.catCodes(p, in.a))
			bitmap.AndNot(dst, full, dst)
			sp++
			*rows += int64(n)
			*kernels++
		case pIsNullNum:
			_, validity := pp.numVals(p, in.a)
			bitmap.AndNot(sc.bms[sp][:words], full, validity[:words])
			sp++
			*rows += int64(n)
			*kernels++
		case pConstOp:
			dst := sc.bms[sp][:words]
			if in.a != 0 {
				copy(dst, full)
			} else {
				for w := range dst {
					dst[w] = 0
				}
			}
			sp++
		case pAndOp:
			sp--
			bitmap.And(sc.bms[sp-1][:words], sc.bms[sp-1][:words], sc.bms[sp][:words])
			*kernels++
		case pOrOp:
			sp--
			bitmap.Or(sc.bms[sp-1][:words], sc.bms[sp-1][:words], sc.bms[sp][:words])
			*kernels++
		case pNotOp:
			bitmap.AndNot(sc.bms[sp-1][:words], full, sc.bms[sp-1][:words])
			*kernels++
		}
	}
	return sc.bms[0][:words]
}

func (pp *PartitionedPredicate) catCodes(p int, slot int32) []int32 {
	return pp.pd.src.PartitionCatCodes(p, pp.catColIdx[slot])
}

func (pp *PartitionedPredicate) numVals(p int, slot int32) ([]float64, []uint64) {
	return pp.pd.src.PartitionNumValues(p, pp.numColIdx[slot])
}

// SelectBitmap evaluates the program over all partitions and returns the
// matching rows as a freshly allocated bitmap over global row indices —
// bit-identical to the in-memory SelectBitmap on the same rows at any
// worker count. Pruned partitions contribute their zeroed word range
// without being read.
func (pp *PartitionedPredicate) SelectBitmap(workers int) bitmap.Bitmap {
	out := bitmap.New(pp.pd.NumRows())
	pp.run(workers, func(p int, m bitmap.Bitmap) {
		copy(out[p*pp.pd.PartRows()/64:], m)
	})
	return out
}

// Count evaluates the program and returns the number of matching rows.
// Per-partition counts are summed in partition order within each shard and
// shard order across shards.
func (pp *PartitionedPredicate) Count(workers int) int {
	total := 0
	counts := pp.runCounts(workers)
	for _, c := range counts {
		total += c
	}
	return total
}

// SelectIndices evaluates and returns the matching global row indices in
// ascending order.
func (pp *PartitionedPredicate) SelectIndices(workers int) []int {
	m := pp.SelectBitmap(workers)
	idx := make([]int, 0, m.Count())
	m.ForEach(func(r int) { idx = append(idx, r) })
	return idx
}

// partEvalStats are one evaluation's deterministic work tallies:
// partition-determined counts summed in chunk order, so they are
// bit-identical at any worker count (the same shard-order-merge
// discipline as coverage's walkStats).
type partEvalStats struct {
	scanned, pruned, rows, kernels int64
}

// run evaluates partition-parallel, invoking sink(p, matchBitmap) for every
// non-pruned partition. Sinks write only partition-disjoint state. The
// returned stats feed traced wrappers; untraced callers ignore them.
func (pp *PartitionedPredicate) run(workers int, sink func(p int, m bitmap.Bitmap)) partEvalStats {
	cScanned, cPruned := pp.pd.counters()
	reg := obs.Active(pp.pd.Obs)
	cRows := reg.Counter("dataset.predicate_rows_scanned")
	cOps := reg.Counter("dataset.predicate_bitmap_ops")
	chunks := parallel.MapChunks(workers, pp.pd.NumPartitions(), func(_, plo, phi int) partEvalStats {
		sc := pp.newScratch()
		var st partEvalStats
		for p := plo; p < phi; p++ {
			if !pp.mayMatch(p) {
				cPruned.Inc()
				st.pruned++
				continue
			}
			cScanned.Inc()
			st.scanned++
			sink(p, pp.evalPartition(p, sc, &st.rows, &st.kernels))
		}
		cRows.Add(st.rows)
		cOps.Add(st.kernels)
		return st
	})
	var total partEvalStats
	for _, st := range chunks {
		total.scanned += st.scanned
		total.pruned += st.pruned
		total.rows += st.rows
		total.kernels += st.kernels
	}
	return total
}

// runCounts returns per-partition match counts (0 for pruned partitions).
func (pp *PartitionedPredicate) runCounts(workers int) []int {
	counts := make([]int, pp.pd.NumPartitions())
	pp.run(workers, func(p int, m bitmap.Bitmap) {
		counts[p] = m.Count()
	})
	return counts
}

// The masked numeric kernels mirror fillRange/fillCmp but take bit-packed
// validity words instead of a []bool null mask: each 64-row comparison
// word is built branch-free exactly as in the in-memory kernels, then
// ANDed against the partition's validity word. Cells under a cleared
// validity bit hold 0 — the comparison runs on that 0 and the mask
// discards the result, so no value-dependent branch enters the loop.

//redi:hotpath word-building page-scan kernel; one pass over the mapped column per leaf
func fillRangeMasked(dst bitmap.Bitmap, vals []float64, validity []uint64, lo, hi float64) {
	n := len(vals)
	for wi := range dst {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		var w uint64
		for i, v := range vals[base:end] {
			var ge, le uint64
			if v >= lo {
				ge = 1
			}
			if v <= hi {
				le = 1
			}
			w |= (ge & le) << uint(i)
		}
		dst[wi] = w & validity[wi]
	}
}

//redi:hotpath word-building page-scan kernel; one pass over the mapped column per leaf
func fillCmpMasked(dst bitmap.Bitmap, vals []float64, validity []uint64, op CompareOp, x float64) {
	n := len(vals)
	for wi := range dst {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		vs := vals[base:end]
		var w uint64
		switch op {
		case CmpLT:
			for i, v := range vs {
				var c uint64
				if v < x {
					c = 1
				}
				w |= c << uint(i)
			}
		case CmpLE:
			for i, v := range vs {
				var c uint64
				if v <= x {
					c = 1
				}
				w |= c << uint(i)
			}
		case CmpGT:
			for i, v := range vs {
				var c uint64
				if v > x {
					c = 1
				}
				w |= c << uint(i)
			}
		case CmpGE:
			for i, v := range vs {
				var c uint64
				if v >= x {
					c = 1
				}
				w |= c << uint(i)
			}
		case CmpEQ:
			for i, v := range vs {
				var c uint64
				if v == x {
					c = 1
				}
				w |= c << uint(i)
			}
		default:
			for i, v := range vs {
				var c uint64
				if v != x {
					c = 1
				}
				w |= c << uint(i)
			}
		}
		dst[wi] = w & validity[wi]
	}
}
