package dataset

import "fmt"

// column is the typed storage behind one attribute. Implementations are
// append-only; mutation of existing cells goes through set, used by the
// cleaning package's repairs.
type column interface {
	len() int
	kind() Kind
	isNull(i int) bool
	value(i int) Value
	appendValue(v Value) error
	// appendBulk appends all of src's cells, copying column storage
	// directly (codes are dictionary-remapped) instead of boxing Values.
	appendBulk(src column) error
	set(i int, v Value) error
	// gather returns a new column containing the rows at idx, in order.
	gather(idx []int) column
	clone() column
	// snapshot returns an immutable view of the column's current rows that
	// shares storage with the receiver (see Dataset.Snapshot). It freezes
	// the shared prefix on the live column: later set calls on frozen rows
	// materialize private storage first, and later appends land strictly
	// beyond every outstanding snapshot's length.
	snapshot() column
}

// catColumn stores dictionary-encoded categorical values. Code -1 marks
// null so the null mask is implicit.
//
// The dictionary is copy-on-write: gather and clone share dict/index with
// the source column and mark both sides shared, so selections never rebuild
// the value index (for an ID-like column that rebuild dwarfs the selection
// itself). Any mutation that would grow the dictionary materializes a
// private copy first; code vectors are always private.
type catColumn struct {
	codes  []int32
	dict   []string
	index  map[string]int32
	shared bool // dict/index are shared with another column
	// frozen is the snapshot watermark: rows [0, frozen) may be visible
	// through an outstanding snapshot's aliased code slice, so in-place
	// mutation of them must materialize private storage first. Appends are
	// exempt — they land at indices >= frozen, beyond every snapshot's
	// capped length.
	frozen int
}

func newCatColumn() *catColumn {
	return &catColumn{index: make(map[string]int32)}
}

func (c *catColumn) len() int          { return len(c.codes) }
func (c *catColumn) kind() Kind        { return Categorical }
func (c *catColumn) isNull(i int) bool { return c.codes[i] < 0 }

func (c *catColumn) value(i int) Value {
	if c.codes[i] < 0 {
		return NullValue(Categorical)
	}
	return Cat(c.dict[c.codes[i]])
}

func (c *catColumn) code(s string) int32 {
	if code, ok := c.index[s]; ok {
		return code
	}
	if c.shared {
		c.materializeDict()
	}
	code := int32(len(c.dict))
	c.dict = append(c.dict, s)
	c.index[s] = code
	return code
}

// materializeDict replaces a shared dictionary with a private copy before
// the first mutation.
func (c *catColumn) materializeDict() {
	dict := make([]string, len(c.dict))
	copy(dict, c.dict)
	index := make(map[string]int32, len(c.index)+1)
	for s, code := range c.index {
		index[s] = code
	}
	c.dict, c.index, c.shared = dict, index, false
}

func (c *catColumn) appendValue(v Value) error {
	if v.Null {
		c.codes = append(c.codes, -1)
		return nil
	}
	if v.Kind != Categorical {
		return fmt.Errorf("dataset: appending %s value to categorical column", v.Kind)
	}
	c.codes = append(c.codes, c.code(v.Cat))
	return nil
}

func (c *catColumn) appendBulk(src column) error {
	o, ok := src.(*catColumn)
	if !ok {
		return fmt.Errorf("dataset: bulk-appending %s column into categorical column", src.kind())
	}
	// Translate src's dictionary into this column's codes once, then copy
	// the code vector through the table. Safe when src aliases c: the
	// dictionary gains nothing (every value already present) and the ranged
	// slice header is captured before any append reallocates.
	remap := make([]int32, len(o.dict))
	for code, s := range o.dict {
		remap[code] = c.code(s)
	}
	if free := cap(c.codes) - len(c.codes); free < len(o.codes) {
		// Grow geometrically: a resident dataset bulk-appends many batches,
		// and exact-fit growth would copy every prior row on each one.
		newCap := 2 * cap(c.codes)
		if need := len(c.codes) + len(o.codes); newCap < need {
			newCap = need
		}
		grown := make([]int32, len(c.codes), newCap)
		copy(grown, c.codes)
		c.codes = grown
	}
	for _, code := range o.codes {
		if code < 0 {
			c.codes = append(c.codes, -1)
		} else {
			c.codes = append(c.codes, remap[code])
		}
	}
	return nil
}

func (c *catColumn) set(i int, v Value) error {
	if i < c.frozen {
		c.materializeRows()
	}
	if v.Null {
		c.codes[i] = -1
		return nil
	}
	if v.Kind != Categorical {
		return fmt.Errorf("dataset: setting %s value in categorical column", v.Kind)
	}
	c.codes[i] = c.code(v.Cat)
	return nil
}

// materializeRows detaches the code vector from any outstanding snapshot by
// copying it into fresh backing before the first in-place mutation of a
// frozen row. Snapshots keep the old backing untouched.
func (c *catColumn) materializeRows() {
	c.codes = append(make([]int32, 0, cap(c.codes)), c.codes...)
	c.frozen = 0
}

func (c *catColumn) gather(idx []int) column {
	if !c.shared {
		// Guarded write: concurrent gathers from an already-shared column
		// (e.g. two requests selecting rows of the same snapshot) must not
		// race on the flag.
		c.shared = true
	}
	out := &catColumn{dict: c.dict, index: c.index, shared: true}
	out.codes = make([]int32, len(idx))
	for j, i := range idx {
		out.codes[j] = c.codes[i]
	}
	return out
}

func (c *catColumn) clone() column {
	if !c.shared {
		c.shared = true
	}
	return &catColumn{
		codes:  append([]int32(nil), c.codes...),
		dict:   c.dict,
		index:  c.index,
		shared: true,
	}
}

func (c *catColumn) snapshot() column {
	if !c.shared {
		c.shared = true
	}
	n := len(c.codes)
	c.frozen = n
	// Three-index slice: the snapshot's capacity equals its length, so even
	// an append through the snapshot (which immutability forbids anyway)
	// could never write into the live column's tail.
	return &catColumn{codes: c.codes[:n:n], dict: c.dict, index: c.index, shared: true, frozen: n}
}

// numColumn stores float64 values with an explicit null mask.
type numColumn struct {
	vals  []float64
	nulls []bool
	// frozen is the snapshot watermark; see catColumn.frozen.
	frozen int
}

func (c *numColumn) len() int          { return len(c.vals) }
func (c *numColumn) kind() Kind        { return Numeric }
func (c *numColumn) isNull(i int) bool { return c.nulls[i] }

func (c *numColumn) value(i int) Value {
	if c.nulls[i] {
		return NullValue(Numeric)
	}
	return Num(c.vals[i])
}

func (c *numColumn) appendValue(v Value) error {
	if v.Null {
		c.vals = append(c.vals, 0)
		c.nulls = append(c.nulls, true)
		return nil
	}
	if v.Kind != Numeric {
		return fmt.Errorf("dataset: appending %s value to numeric column", v.Kind)
	}
	c.vals = append(c.vals, v.Num)
	c.nulls = append(c.nulls, false)
	return nil
}

func (c *numColumn) appendBulk(src column) error {
	o, ok := src.(*numColumn)
	if !ok {
		return fmt.Errorf("dataset: bulk-appending %s column into numeric column", src.kind())
	}
	c.vals = append(c.vals, o.vals...)
	c.nulls = append(c.nulls, o.nulls...)
	return nil
}

func (c *numColumn) set(i int, v Value) error {
	if i < c.frozen {
		c.materializeRows()
	}
	if v.Null {
		c.vals[i] = 0
		c.nulls[i] = true
		return nil
	}
	if v.Kind != Numeric {
		return fmt.Errorf("dataset: setting %s value in numeric column", v.Kind)
	}
	c.vals[i] = v.Num
	c.nulls[i] = false
	return nil
}

func (c *numColumn) gather(idx []int) column {
	out := &numColumn{
		vals:  make([]float64, len(idx)),
		nulls: make([]bool, len(idx)),
	}
	for j, i := range idx {
		out.vals[j] = c.vals[i]
		out.nulls[j] = c.nulls[i]
	}
	return out
}

func (c *numColumn) clone() column {
	return &numColumn{
		vals:  append([]float64(nil), c.vals...),
		nulls: append([]bool(nil), c.nulls...),
	}
}

// materializeRows detaches value/null storage from any outstanding snapshot
// before the first in-place mutation of a frozen row.
func (c *numColumn) materializeRows() {
	c.vals = append(make([]float64, 0, cap(c.vals)), c.vals...)
	c.nulls = append(make([]bool, 0, cap(c.nulls)), c.nulls...)
	c.frozen = 0
}

func (c *numColumn) snapshot() column {
	n := len(c.vals)
	c.frozen = n
	return &numColumn{vals: c.vals[:n:n], nulls: c.nulls[:n:n], frozen: n}
}

func newColumn(k Kind) column {
	if k == Categorical {
		return newCatColumn()
	}
	return &numColumn{}
}
