package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row. Nulls are written as empty
// fields.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.schema.Names()); err != nil {
		return err
	}
	rec := make([]string, d.schema.Len())
	for r := 0; r < d.n; r++ {
		for c := range d.cols {
			v := d.cols[c].value(r)
			if v.Null {
				rec[c] = ""
			} else if v.Kind == Numeric {
				rec[c] = strconv.FormatFloat(v.Num, 'g', -1, 64)
			} else {
				rec[c] = v.Cat
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ScanCSV parses a CSV stream with a header row and calls fn once per data
// row with the parsed values. The header must list exactly the schema's
// attribute names in order. Empty fields become nulls; numeric fields must
// parse as floats.
//
// ScanCSV is the streaming ingest path: it holds one record at a time in a
// bounded buffer (csv.Reader with ReuseRecord, one reused []Value row) and
// never materializes the file, so it ingests inputs far larger than RAM.
// The row slice passed to fn is reused between calls — fn must copy any
// values it keeps. A non-nil error from fn aborts the scan and is returned
// verbatim.
func ScanCSV(r io.Reader, schema *Schema, fn func(row []Value) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) != schema.Len() {
		return fmt.Errorf("dataset: CSV has %d columns, schema has %d", len(header), schema.Len())
	}
	for i, name := range header {
		if name != schema.Attr(i).Name {
			return fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, name, schema.Attr(i).Name)
		}
	}
	row := make([]Value, schema.Len())
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dataset: reading CSV: %w", err)
		}
		line++
		for i, field := range rec {
			attr := schema.Attr(i)
			if field == "" {
				row[i] = NullValue(attr.Kind)
				continue
			}
			if attr.Kind == Numeric {
				x, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return fmt.Errorf("dataset: line %d, attribute %q: %w", line, attr.Name, err)
				}
				row[i] = Num(x)
			} else {
				// ReuseRecord means field aliases the reader's scratch; the
				// string header is fresh per record, so keeping it is safe
				// (Go strings are immutable — csv allocates each field's
				// bytes once per record even when reusing the record slice).
				row[i] = Cat(field)
			}
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// ReadCSV parses a CSV stream with a header row into a dataset conforming to
// schema — ScanCSV with an append-every-row sink.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	d := New(schema)
	if err := ScanCSV(r, schema, func(row []Value) error {
		return d.AppendRow(row...)
	}); err != nil {
		return nil, err
	}
	return d, nil
}
