package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row. Nulls are written as empty
// fields.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.schema.Names()); err != nil {
		return err
	}
	rec := make([]string, d.schema.Len())
	for r := 0; r < d.n; r++ {
		for c := range d.cols {
			v := d.cols[c].value(r)
			if v.Null {
				rec[c] = ""
			} else if v.Kind == Numeric {
				rec[c] = strconv.FormatFloat(v.Num, 'g', -1, 64)
			} else {
				rec[c] = v.Cat
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV stream with a header row into a dataset conforming to
// schema. The header must list exactly the schema's attribute names in
// order. Empty fields become nulls; numeric fields must parse as floats.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("dataset: CSV has %d columns, schema has %d", len(header), schema.Len())
	}
	for i, name := range header {
		if name != schema.Attr(i).Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", i, name, schema.Attr(i).Name)
		}
	}
	d := New(schema)
	row := make([]Value, schema.Len())
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		line++
		for i, field := range rec {
			attr := schema.Attr(i)
			if field == "" {
				row[i] = NullValue(attr.Kind)
				continue
			}
			if attr.Kind == Numeric {
				x, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d, attribute %q: %w", line, attr.Name, err)
				}
				row[i] = Num(x)
			} else {
				row[i] = Cat(field)
			}
		}
		if err := d.AppendRow(row...); err != nil {
			return nil, err
		}
	}
}
