package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"redi/internal/rng"
)

func TestSelectAndCount(t *testing.T) {
	d := testData(t)
	white := d.Select(Eq("race", "white"))
	if white.NumRows() != 3 {
		t.Fatalf("white rows = %d, want 3", white.NumRows())
	}
	if n := d.Count(Range("age", 30, 60)); n != 3 {
		t.Fatalf("Count(30<=age<=60) = %d, want 3", n)
	}
	// Nulls never match predicates.
	if n := d.Count(Eq("race", "")); n != 0 {
		t.Fatalf("null matched Eq: %d", n)
	}
	if n := d.Count(NotNull("age")); n != 5 {
		t.Fatalf("NotNull count = %d", n)
	}
}

func TestPredicateCombinators(t *testing.T) {
	d := testData(t)
	p := And(Eq("race", "white"), Eq("label", "pos"))
	if n := d.Count(p); n != 2 {
		t.Fatalf("And count = %d, want 2", n)
	}
	q := Or(Eq("race", "black"), Eq("label", "neg"))
	if n := d.Count(q); n != 4 {
		t.Fatalf("Or count = %d, want 4", n)
	}
	if n := d.Count(Not(NotNull("race"))); n != 1 {
		t.Fatalf("Not count = %d, want 1", n)
	}
}

func TestSelectIndices(t *testing.T) {
	d := testData(t)
	idx := d.SelectIndices(Eq("label", "pos"))
	want := []int{0, 2, 3}
	if len(idx) != len(want) {
		t.Fatalf("indices = %v", idx)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("indices = %v, want %v", idx, want)
		}
	}
}

func TestProject(t *testing.T) {
	d := testData(t)
	p, err := d.Project("age", "race")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Schema().Attr(0).Name != "age" {
		t.Fatalf("Project schema = %v", p.Schema())
	}
	if p.NumRows() != 6 {
		t.Fatalf("Project rows = %d", p.NumRows())
	}
	if _, err := d.Project("missing"); err == nil {
		t.Fatal("Project of unknown attribute succeeded")
	}
}

func TestJoin(t *testing.T) {
	left := New(NewSchema(
		Attribute{Name: "zip", Kind: Categorical},
		Attribute{Name: "patients", Kind: Numeric},
	))
	left.MustAppendRow(Cat("60601"), Num(10))
	left.MustAppendRow(Cat("60602"), Num(20))
	left.MustAppendRow(Cat("60601"), Num(30))
	left.MustAppendRow(NullValue(Categorical), Num(99))

	right := New(NewSchema(
		Attribute{Name: "zipcode", Kind: Categorical},
		Attribute{Name: "income", Kind: Numeric},
	))
	right.MustAppendRow(Cat("60601"), Num(50000))
	right.MustAppendRow(Cat("60603"), Num(70000))
	right.MustAppendRow(Cat("60601"), Num(55000))

	j, err := left.Join(right, "zip", "zipcode")
	if err != nil {
		t.Fatal(err)
	}
	// zip 60601 matches: 2 left rows x 2 right rows = 4.
	if j.NumRows() != 4 {
		t.Fatalf("join rows = %d, want 4", j.NumRows())
	}
	if j.NumCols() != 3 {
		t.Fatalf("join cols = %d, want 3 (key deduplicated)", j.NumCols())
	}
	for r := 0; r < j.NumRows(); r++ {
		if j.Value(r, "zip").Cat != "60601" {
			t.Fatalf("unexpected join key at %d: %v", r, j.Row(r))
		}
	}
}

func TestJoinNameCollision(t *testing.T) {
	a := New(NewSchema(
		Attribute{Name: "k", Kind: Categorical},
		Attribute{Name: "v", Kind: Numeric},
	))
	a.MustAppendRow(Cat("x"), Num(1))
	b := New(NewSchema(
		Attribute{Name: "k", Kind: Categorical},
		Attribute{Name: "v", Kind: Numeric},
	))
	b.MustAppendRow(Cat("x"), Num(2))
	j, err := a.Join(b, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Schema().Index("v_r"); !ok {
		t.Fatalf("collision not renamed: %v", j.Schema())
	}
	if j.Value(0, "v").Num != 1 || j.Value(0, "v_r").Num != 2 {
		t.Fatalf("join values wrong: %v", j.Row(0))
	}
}

func TestJoinErrors(t *testing.T) {
	a := New(NewSchema(Attribute{Name: "k", Kind: Categorical}))
	b := New(NewSchema(Attribute{Name: "k", Kind: Numeric}))
	if _, err := a.Join(b, "k", "k"); err == nil {
		t.Fatal("kind mismatch join accepted")
	}
	if _, err := a.Join(b, "nope", "k"); err == nil {
		t.Fatal("unknown left key accepted")
	}
	if _, err := a.Join(b, "k", "nope"); err == nil {
		t.Fatal("unknown right key accepted")
	}
}

func TestGroupBy(t *testing.T) {
	d := testData(t)
	g := d.GroupBy("race", "label")
	// Groups: white/pos(2), white/neg(1), black/neg(1), black/pos(1); row 5 has null race.
	if g.NumGroups() != 4 {
		t.Fatalf("groups = %v", g.Keys())
	}
	k := MakeGroupKey([]string{"race", "label"}, []string{"white", "pos"})
	if g.Count(k) != 2 {
		t.Fatalf("Count(%s) = %d, want 2", k, g.Count(k))
	}
	if g.ByRow[5] != -1 {
		t.Fatalf("null row assigned to group %d", g.ByRow[5])
	}
	// ByRow must agree with Rows and RowSet.
	for gid := 0; gid < g.NumGroups(); gid++ {
		for _, r := range g.Rows(gid) {
			if g.ByRow[r] != int32(gid) {
				t.Fatalf("ByRow[%d] = %d, want %d", r, g.ByRow[r], gid)
			}
			if !g.RowSet(gid).Get(r) {
				t.Fatalf("RowSet(%d) missing row %d", gid, r)
			}
		}
		if g.RowSet(gid).Count() != g.Counts[gid] {
			t.Fatalf("RowSet(%d) popcount = %d, want %d", gid, g.RowSet(gid).Count(), g.Counts[gid])
		}
	}
	dist := g.Distribution()
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution sum = %v", sum)
	}
	total := 0
	for _, c := range g.Counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("group total = %d, want 5 (one null row)", total)
	}
	// GID round-trips every rendered key; absent keys map to -1.
	for gid, key := range g.Keys() {
		if g.GID(key) != gid {
			t.Fatalf("GID(%s) = %d, want %d", key, g.GID(key), gid)
		}
	}
	if g.GID("race=martian;label=pos") != -1 {
		t.Fatal("GID of absent group != -1")
	}
}

func TestGroupKeysSorted(t *testing.T) {
	d := testData(t)
	g := d.GroupBy("race")
	keys := g.Keys()
	if len(keys) != 2 || keys[0] != "race=black" || keys[1] != "race=white" {
		t.Fatalf("keys not sorted: %v", keys)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := testData(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, d.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != d.NumRows() {
		t.Fatalf("round trip rows = %d", got.NumRows())
	}
	for r := 0; r < d.NumRows(); r++ {
		for c := 0; c < d.NumCols(); c++ {
			if !got.ValueAt(r, c).Equal(d.ValueAt(r, c)) {
				t.Fatalf("cell (%d,%d) mismatch: %v vs %v", r, c, got.ValueAt(r, c), d.ValueAt(r, c))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := NewSchema(Attribute{Name: "a", Kind: Numeric})
	for name, input := range map[string]string{
		"bad header":  "b\n1\n",
		"extra col":   "a,b\n1,2\n",
		"bad numeric": "a\nxyz\n",
	} {
		if _, err := ReadCSV(strings.NewReader(input), s); err == nil {
			t.Fatalf("ReadCSV(%s) succeeded", name)
		}
	}
}

// Property: for random small tables, Select(p) + Select(Not(p)) partition
// the rows.
func TestSelectPartitionProperty(t *testing.T) {
	f := func(ages []uint8, seed uint64) bool {
		d := New(NewSchema(Attribute{Name: "age", Kind: Numeric}))
		for _, a := range ages {
			d.MustAppendRow(Num(float64(a)))
		}
		p := Range("age", 50, 200)
		yes := d.Select(p)
		no := d.Select(Not(p))
		return yes.NumRows()+no.NumRows() == d.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CSV round-trips preserve arbitrary cell contents, including
// commas, quotes, newlines, and non-ASCII text.
func TestCSVRoundTripProperty(t *testing.T) {
	schema := NewSchema(
		Attribute{Name: "s", Kind: Categorical},
		Attribute{Name: "x", Kind: Numeric},
	)
	f := func(cells []string, nums []float64) bool {
		d := New(schema)
		n := len(cells)
		if len(nums) < n {
			n = len(nums)
		}
		if n > 25 {
			n = 25
		}
		for i := 0; i < n; i++ {
			sv := Cat(cells[i])
			if cells[i] == "" {
				// Empty strings encode as nulls; store null so the
				// round trip is well-defined.
				sv = NullValue(Categorical)
			}
			if strings.ContainsRune(cells[i], '\r') {
				// encoding/csv normalizes \r\n inside quoted fields
				// on read; carriage returns are legitimately lossy.
				continue
			}
			x := nums[i]
			if x != x || x > 1e300 || x < -1e300 { // NaN/overflow: skip row
				continue
			}
			d.MustAppendRow(sv, Num(x))
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, schema)
		if err != nil {
			return false
		}
		if got.NumRows() != d.NumRows() {
			return false
		}
		for r := 0; r < d.NumRows(); r++ {
			for c := 0; c < d.NumCols(); c++ {
				if !got.ValueAt(r, c).Equal(d.ValueAt(r, c)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a uniform sample of size k has exactly k rows for k <= n.
func TestSampleSizeProperty(t *testing.T) {
	r := rng.New(99)
	f := func(n8, k8 uint8) bool {
		n := int(n8%50) + 1
		k := int(k8) % (n + 1)
		d := New(NewSchema(Attribute{Name: "x", Kind: Numeric}))
		for i := 0; i < n; i++ {
			d.MustAppendRow(Num(float64(i)))
		}
		return d.SampleRows(r, k).NumRows() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
