package dataset

import (
	"fmt"

	"redi/internal/rng"
)

// Dataset is a typed columnar table. All rows conform to the schema; cells
// may be null. A Dataset is not safe for concurrent mutation.
type Dataset struct {
	schema *Schema
	cols   []column
	n      int
}

// New returns an empty dataset with the given schema.
func New(schema *Schema) *Dataset {
	d := &Dataset{schema: schema, cols: make([]column, schema.Len())}
	for i := 0; i < schema.Len(); i++ {
		d.cols[i] = newColumn(schema.Attr(i).Kind)
	}
	return d
}

// Schema returns the dataset's schema.
func (d *Dataset) Schema() *Schema { return d.schema }

// NumRows returns the number of rows.
func (d *Dataset) NumRows() int { return d.n }

// NumCols returns the number of attributes.
func (d *Dataset) NumCols() int { return d.schema.Len() }

// AppendRow appends one row. The number of values must equal the number of
// attributes and each value must match its column's kind (or be null).
func (d *Dataset) AppendRow(vals ...Value) error {
	if len(vals) != d.schema.Len() {
		return fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(vals), d.schema.Len())
	}
	for i, v := range vals {
		if err := d.cols[i].appendValue(v); err != nil {
			// Roll back the partial row so the table stays rectangular.
			for j := 0; j < i; j++ {
				d.truncateLast(j)
			}
			return fmt.Errorf("attribute %q: %w", d.schema.Attr(i).Name, err)
		}
	}
	d.n++
	return nil
}

func (d *Dataset) truncateLast(col int) {
	switch c := d.cols[col].(type) {
	case *catColumn:
		c.codes = c.codes[:len(c.codes)-1]
	case *numColumn:
		c.vals = c.vals[:len(c.vals)-1]
		c.nulls = c.nulls[:len(c.nulls)-1]
	}
}

// MustAppendRow appends a row and panics on error. Use for rows constructed
// in code, where a kind mismatch is a bug.
func (d *Dataset) MustAppendRow(vals ...Value) {
	if err := d.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// AppendDataset appends all rows of other, which must have an equal schema.
// Column storage is copied in bulk (dictionary-remapped for categoricals)
// rather than boxing each row into Values; equal schemas guarantee matching
// column kinds, so no per-cell validation is needed.
func (d *Dataset) AppendDataset(other *Dataset) error {
	if !d.schema.Equal(other.schema) {
		return fmt.Errorf("dataset: schema mismatch: %v vs %v", d.schema, other.schema)
	}
	for i, c := range d.cols {
		if err := c.appendBulk(other.cols[i]); err != nil {
			return fmt.Errorf("attribute %q: %w", d.schema.Attr(i).Name, err)
		}
	}
	d.n += other.n
	return nil
}

// Value returns the cell at row r of the named attribute.
func (d *Dataset) Value(r int, attr string) Value {
	return d.cols[d.schema.MustIndex(attr)].value(r)
}

// ValueAt returns the cell at row r, column c.
func (d *Dataset) ValueAt(r, c int) Value { return d.cols[c].value(r) }

// SetValue overwrites the cell at row r of the named attribute.
func (d *Dataset) SetValue(r int, attr string, v Value) error {
	return d.cols[d.schema.MustIndex(attr)].set(r, v)
}

// Row materializes row r as a value slice.
func (d *Dataset) Row(r int) []Value {
	out := make([]Value, len(d.cols))
	for c, col := range d.cols {
		out[c] = col.value(r)
	}
	return out
}

// IsNull reports whether the cell at row r of the named attribute is null.
func (d *Dataset) IsNull(r int, attr string) bool {
	return d.cols[d.schema.MustIndex(attr)].isNull(r)
}

// Numeric returns the non-null float64 values of the named attribute along
// with the row indices they came from. It panics if the attribute is not
// numeric.
func (d *Dataset) Numeric(attr string) (vals []float64, rows []int) {
	i := d.schema.MustIndex(attr)
	col, ok := d.cols[i].(*numColumn)
	if !ok {
		panic(fmt.Sprintf("dataset: attribute %q is not numeric", attr))
	}
	for r := 0; r < d.n; r++ {
		if !col.nulls[r] {
			vals = append(vals, col.vals[r])
			rows = append(rows, r)
		}
	}
	return vals, rows
}

// NumericFull returns the attribute's values aligned with rows: the boolean
// slice marks nulls (whose value entries are 0). It panics if the attribute
// is not numeric.
func (d *Dataset) NumericFull(attr string) (vals []float64, null []bool) {
	i := d.schema.MustIndex(attr)
	col, ok := d.cols[i].(*numColumn)
	if !ok {
		panic(fmt.Sprintf("dataset: attribute %q is not numeric", attr))
	}
	return append([]float64(nil), col.vals...), append([]bool(nil), col.nulls...)
}

// Strings returns the attribute's values as display strings aligned with
// rows (nulls as ""). Works for either kind.
func (d *Dataset) Strings(attr string) []string {
	i := d.schema.MustIndex(attr)
	out := make([]string, d.n)
	for r := 0; r < d.n; r++ {
		v := d.cols[i].value(r)
		if v.Null {
			out[r] = ""
			continue
		}
		out[r] = v.String()
	}
	return out
}

// Domain returns the distinct non-null categorical values of the named
// attribute in first-appearance order. It panics if the attribute is not
// categorical.
func (d *Dataset) Domain(attr string) []string {
	i := d.schema.MustIndex(attr)
	col, ok := d.cols[i].(*catColumn)
	if !ok {
		panic(fmt.Sprintf("dataset: attribute %q is not categorical", attr))
	}
	seen := make([]bool, len(col.dict))
	var out []string
	for _, code := range col.codes {
		if code >= 0 && !seen[code] {
			seen[code] = true
			out = append(out, col.dict[code])
		}
	}
	return out
}

// Codes returns dictionary codes for a categorical attribute aligned with
// rows (-1 for null) plus the dictionary. The dictionary may contain values
// no longer present in any row.
func (d *Dataset) Codes(attr string) (codes []int32, dict []string) {
	i := d.schema.MustIndex(attr)
	col, ok := d.cols[i].(*catColumn)
	if !ok {
		panic(fmt.Sprintf("dataset: attribute %q is not categorical", attr))
	}
	return append([]int32(nil), col.codes...), append([]string(nil), col.dict...)
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{schema: d.schema, cols: make([]column, len(d.cols)), n: d.n}
	for i, c := range d.cols {
		out.cols[i] = c.clone()
	}
	return out
}

// Gather returns a new dataset containing the rows at idx, in order. Indices
// may repeat.
func (d *Dataset) Gather(idx []int) *Dataset {
	out := &Dataset{schema: d.schema, cols: make([]column, len(d.cols)), n: len(idx)}
	for i, c := range d.cols {
		out.cols[i] = c.gather(idx)
	}
	return out
}

// Head returns the first n rows (all rows if n exceeds the length).
func (d *Dataset) Head(n int) *Dataset {
	if n > d.n {
		n = d.n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return d.Gather(idx)
}

// SampleRows returns a uniform sample of k rows without replacement, in
// random order, using reservoir sampling. If k >= NumRows the result is a
// shuffled copy of all rows.
func (d *Dataset) SampleRows(r *rng.RNG, k int) *Dataset {
	if k >= d.n {
		idx := r.Perm(d.n)
		return d.Gather(idx)
	}
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = i
	}
	for i := k; i < d.n; i++ {
		j := r.Intn(i + 1)
		if j < k {
			idx[j] = i
		}
	}
	r.Shuffle(k, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return d.Gather(idx)
}

// Split partitions the rows into two datasets: the first gets a fraction
// frac of rows (rounded down), uniformly at random.
func (d *Dataset) Split(r *rng.RNG, frac float64) (*Dataset, *Dataset) {
	perm := r.Perm(d.n)
	cut := int(float64(d.n) * frac)
	return d.Gather(perm[:cut]), d.Gather(perm[cut:])
}

// String renders the first rows of the dataset as an aligned table,
// truncated for readability.
func (d *Dataset) String() string {
	const maxRows = 10
	s := d.schema.String() + "\n"
	for r := 0; r < d.n && r < maxRows; r++ {
		for c := range d.cols {
			if c > 0 {
				s += " | "
			}
			s += d.cols[c].value(r).String()
		}
		s += "\n"
	}
	if d.n > maxRows {
		s += fmt.Sprintf("... (%d rows total)\n", d.n)
	}
	return s
}
