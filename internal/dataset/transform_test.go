package dataset

import "testing"

func TestInPredicate(t *testing.T) {
	d := testData(t)
	if n := d.Count(In("race", "white", "black")); n != 5 {
		t.Fatalf("In count = %d, want 5", n)
	}
	if n := d.Count(In("race")); n != 0 {
		t.Fatalf("empty In matched %d", n)
	}
}

func TestDistinct(t *testing.T) {
	d := New(NewSchema(
		Attribute{Name: "a", Kind: Categorical},
		Attribute{Name: "b", Kind: Numeric},
	))
	d.MustAppendRow(Cat("x"), Num(1))
	d.MustAppendRow(Cat("x"), Num(2))
	d.MustAppendRow(Cat("x"), Num(1)) // dup of row 0
	d.MustAppendRow(Cat("y"), Num(1))
	d.MustAppendRow(NullValue(Categorical), Num(1))
	d.MustAppendRow(NullValue(Categorical), Num(1)) // dup of row 4

	all := d.Distinct()
	if all.NumRows() != 4 {
		t.Fatalf("Distinct() rows = %d, want 4", all.NumRows())
	}
	// First occurrence wins; order preserved.
	if all.Value(0, "b").Num != 1 || all.Value(1, "b").Num != 2 {
		t.Fatalf("Distinct order wrong: %v", all)
	}
	byA := d.Distinct("a")
	if byA.NumRows() != 3 { // x, y, null
		t.Fatalf("Distinct(a) rows = %d, want 3", byA.NumRows())
	}
}

func TestSortBy(t *testing.T) {
	d := New(NewSchema(
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "tag", Kind: Categorical},
	))
	d.MustAppendRow(Num(3), Cat("c"))
	d.MustAppendRow(NullValue(Numeric), Cat("n"))
	d.MustAppendRow(Num(1), Cat("a"))
	d.MustAppendRow(Num(2), Cat("b"))

	asc := d.SortBy("x", true)
	want := []string{"a", "b", "c", "n"}
	for i, w := range want {
		if asc.Value(i, "tag").Cat != w {
			t.Fatalf("asc order = %v, want %v at %d", asc.Strings("tag"), w, i)
		}
	}
	desc := d.SortBy("x", false)
	want = []string{"c", "b", "a", "n"} // nulls still last
	for i, w := range want {
		if desc.Value(i, "tag").Cat != w {
			t.Fatalf("desc order = %v, want %v at %d", desc.Strings("tag"), w, i)
		}
	}
	// Categorical sort.
	byTag := d.SortBy("tag", true)
	if byTag.Value(0, "tag").Cat != "a" {
		t.Fatalf("categorical sort = %v", byTag.Strings("tag"))
	}
}

func TestSortByStable(t *testing.T) {
	d := New(NewSchema(
		Attribute{Name: "k", Kind: Numeric},
		Attribute{Name: "ord", Kind: Numeric},
	))
	for i := 0; i < 10; i++ {
		d.MustAppendRow(Num(float64(i%2)), Num(float64(i)))
	}
	s := d.SortBy("k", true)
	prev := -1.0
	for r := 0; r < s.NumRows(); r++ {
		if s.Value(r, "k").Num != 0 {
			prev = -1
			continue
		}
		cur := s.Value(r, "ord").Num
		if cur < prev {
			t.Fatal("sort not stable")
		}
		prev = cur
	}
}

func TestUnion(t *testing.T) {
	d := testData(t)
	u, err := d.Union(d)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 12 {
		t.Fatalf("Union rows = %d", u.NumRows())
	}
	// Original untouched.
	if d.NumRows() != 6 {
		t.Fatal("Union mutated receiver")
	}
	other := New(NewSchema(Attribute{Name: "z", Kind: Numeric}))
	if _, err := d.Union(other); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
