package dataset

import (
	"redi/internal/bitmap"
)

// vmStackHint is the boolean-stack size evaluated on the goroutine stack;
// deeper programs (32+ nested operators) fall back to a heap slice.
const vmStackHint = 32

// Match evaluates the program on one row with the stack VM. The hot loop
// touches only int32 codes, float64s, and null masks — no Value boxing, no
// string compares, no allocation. Safe for concurrent use. It panics on a
// program that has not passed bytecode verification (predverify.go): the
// loop runs with no per-instruction bounds checks, on the verifier's
// guarantee that every operand access is in range.
//
//redi:hotpath per-row VM dispatch; called once per row under filters
func (cp *CompiledPredicate) Match(row int) bool {
	cp.mustBeVerified()
	var a [vmStackHint]bool
	st := a[:]
	if cp.depth > vmStackHint {
		st = make([]bool, cp.depth)
	}
	sp := 0
	for i := range cp.code {
		in := &cp.code[i]
		switch in.op {
		case pEqCode:
			st[sp] = cp.catCols[in.a][row] == in.b
			sp++
		case pInSet:
			st[sp] = cp.sets[in.b][cp.catCols[in.a][row]+1]
			sp++
		case pRangeOp:
			v := cp.numVals[in.a][row]
			st[sp] = !cp.numNulls[in.a][row] && v >= in.f0 && v <= in.f1
			sp++
		case pCmpOp:
			v := cp.numVals[in.a][row]
			ok := !cp.numNulls[in.a][row]
			switch CompareOp(in.b) {
			case CmpLT:
				ok = ok && v < in.f0
			case CmpLE:
				ok = ok && v <= in.f0
			case CmpGT:
				ok = ok && v > in.f0
			case CmpGE:
				ok = ok && v >= in.f0
			case CmpEQ:
				ok = ok && v == in.f0
			default:
				ok = ok && v != in.f0
			}
			st[sp] = ok
			sp++
		case pNotNullCat:
			st[sp] = cp.catCols[in.a][row] >= 0
			sp++
		case pNotNullNum:
			st[sp] = !cp.numNulls[in.a][row]
			sp++
		case pIsNullCat:
			st[sp] = cp.catCols[in.a][row] < 0
			sp++
		case pIsNullNum:
			st[sp] = cp.numNulls[in.a][row]
			sp++
		case pConstOp:
			st[sp] = in.a != 0
			sp++
		case pAndOp:
			sp--
			st[sp-1] = st[sp-1] && st[sp]
		case pOrOp:
			sp--
			st[sp-1] = st[sp-1] || st[sp]
		case pNotOp:
			st[sp-1] = !st[sp-1]
		}
	}
	return st[0]
}

// Predicate returns a drop-in row closure backed by the program. Called on
// the dataset the program was compiled for it runs the VM; on any other
// dataset it falls back to interpreting the source expression, so the
// closure stays correct wherever it travels.
func (cp *CompiledPredicate) Predicate() Predicate {
	return PredicateFunc(func(d *Dataset, row int) bool {
		if d == cp.d {
			return cp.Match(row)
		}
		return cp.node.eval(d, row)
	})
}

// SelectBitmap evaluates the program column-at-a-time and returns the
// matching row-set as a bitmap over row indices. Each leaf is one fused
// scan over the column's codes or values; boolean operators run as word
// kernels over the bitmap stack. The returned bitmap is the program's
// internal scratch: read-only, valid until the next vectorized evaluation,
// and no allocation happens per call. Like Match, it panics on a program
// that has not passed bytecode verification.
//
//redi:hotpath vectorized program replay; one fused scan per leaf
func (cp *CompiledPredicate) SelectBitmap() bitmap.Bitmap {
	cp.mustBeVerified()
	sp := 0
	var rows, kernels int64
	for i := range cp.code {
		in := &cp.code[i]
		switch in.op {
		case pEqCode:
			fillEq(cp.bms[sp], cp.catCols[in.a], in.b)
			sp++
			rows += int64(cp.n)
		case pInSet:
			fillIn(cp.bms[sp], cp.catCols[in.a], cp.sets[in.b])
			sp++
			rows += int64(cp.n)
		case pRangeOp:
			fillRange(cp.bms[sp], cp.numVals[in.a], cp.numNulls[in.a], in.f0, in.f1)
			sp++
			rows += int64(cp.n)
		case pCmpOp:
			fillCmp(cp.bms[sp], cp.numVals[in.a], cp.numNulls[in.a], CompareOp(in.b), in.f0)
			sp++
			rows += int64(cp.n)
		case pNotNullCat:
			fillNotNullCat(cp.bms[sp], cp.catCols[in.a])
			sp++
			rows += int64(cp.n)
		case pNotNullNum:
			fillNotNullNum(cp.bms[sp], cp.numNulls[in.a])
			sp++
			rows += int64(cp.n)
		case pIsNullCat:
			fillNotNullCat(cp.bms[sp], cp.catCols[in.a])
			bitmap.AndNot(cp.bms[sp], cp.full, cp.bms[sp])
			sp++
			rows += int64(cp.n)
			kernels++
		case pIsNullNum:
			fillNotNullNum(cp.bms[sp], cp.numNulls[in.a])
			bitmap.AndNot(cp.bms[sp], cp.full, cp.bms[sp])
			sp++
			rows += int64(cp.n)
			kernels++
		case pConstOp:
			if in.a != 0 {
				copy(cp.bms[sp], cp.full)
			} else {
				for w := range cp.bms[sp] {
					cp.bms[sp][w] = 0
				}
			}
			sp++
		case pAndOp:
			sp--
			bitmap.And(cp.bms[sp-1], cp.bms[sp-1], cp.bms[sp])
			kernels++
		case pOrOp:
			sp--
			bitmap.Or(cp.bms[sp-1], cp.bms[sp-1], cp.bms[sp])
			kernels++
		case pNotOp:
			bitmap.AndNot(cp.bms[sp-1], cp.full, cp.bms[sp-1])
			kernels++
		}
	}
	cp.cRows.Add(rows)
	cp.cOps.Add(kernels)
	cp.lastRows, cp.lastOps = rows, kernels
	return cp.bms[0]
}

// CountFast evaluates vectorized and returns the number of matching rows.
func (cp *CompiledPredicate) CountFast() int {
	return cp.SelectBitmap().Count()
}

// SelectIndices evaluates vectorized and returns the matching row indices
// in ascending order. The slice is exactly sized (pre-counted from the
// bitmap) and non-nil even when empty.
func (cp *CompiledPredicate) SelectIndices() []int {
	m := cp.SelectBitmap()
	idx := make([]int, 0, m.Count())
	m.ForEach(func(r int) { idx = append(idx, r) })
	return idx
}

// Select evaluates vectorized and gathers the matching rows.
func (cp *CompiledPredicate) Select() *Dataset {
	return cp.d.Gather(cp.SelectIndices())
}

// The leaf fill kernels build each 64-row word in a register and assign it,
// fully overwriting dst (trailing bits past the row count stay zero). Each
// word's rows are re-sliced so the inner loop ranges over a fixed-bound
// subslice (bounds checks eliminated), and match bits are ORed in as 0/1
// values so the loop body stays branch-free.

//redi:hotpath word-building scan kernel; one pass over the column per leaf
func fillEq(dst bitmap.Bitmap, codes []int32, code int32) {
	n := len(codes)
	for wi := range dst {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		var w uint64
		for i, c := range codes[base:end] {
			var bit uint64
			if c == code {
				bit = 1
			}
			w |= bit << uint(i)
		}
		dst[wi] = w
	}
}

//redi:hotpath word-building scan kernel; one pass over the column per leaf
func fillIn(dst bitmap.Bitmap, codes []int32, set []bool) {
	n := len(codes)
	for wi := range dst {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		var w uint64
		for i, c := range codes[base:end] {
			// set is offset-by-one (slot 0 = null), so the null check is
			// just part of the table lookup.
			var bit uint64
			if set[c+1] {
				bit = 1
			}
			w |= bit << uint(i)
		}
		dst[wi] = w
	}
}

//redi:hotpath word-building scan kernel; one pass over the column per leaf
func fillRange(dst bitmap.Bitmap, vals []float64, nulls []bool, lo, hi float64) {
	n := len(vals)
	for wi := range dst {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		nu := nulls[base:end]
		var w uint64
		for i, v := range vals[base:end] {
			// One single-condition assignment per comparison materializes
			// each bool as 0/1 (SETcc, no branch) — a fused `a && b` here
			// would reintroduce a data-dependent branch that mispredicts
			// ~50% on random values and triples the scan time. The float
			// comparisons are the real ones, so NaN and ±0 behave exactly
			// as the interpreted path.
			var ge, le, nn uint64
			if v >= lo {
				ge = 1
			}
			if v <= hi {
				le = 1
			}
			if !nu[i] {
				nn = 1
			}
			w |= (ge & le & nn) << uint(i)
		}
		dst[wi] = w
	}
}

// fillCmp dispatches on the operator once and runs a specialized branch-free
// loop; a per-row switch would dominate the scan.
//
//redi:hotpath word-building scan kernel; one pass over the column per leaf
func fillCmp(dst bitmap.Bitmap, vals []float64, nulls []bool, op CompareOp, x float64) {
	n := len(vals)
	for wi := range dst {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		vs := vals[base:end]
		nu := nulls[base:end]
		var w uint64
		switch op {
		case CmpLT:
			for i, v := range vs {
				var c, nn uint64
				if v < x {
					c = 1
				}
				if !nu[i] {
					nn = 1
				}
				w |= (c & nn) << uint(i)
			}
		case CmpLE:
			for i, v := range vs {
				var c, nn uint64
				if v <= x {
					c = 1
				}
				if !nu[i] {
					nn = 1
				}
				w |= (c & nn) << uint(i)
			}
		case CmpGT:
			for i, v := range vs {
				var c, nn uint64
				if v > x {
					c = 1
				}
				if !nu[i] {
					nn = 1
				}
				w |= (c & nn) << uint(i)
			}
		case CmpGE:
			for i, v := range vs {
				var c, nn uint64
				if v >= x {
					c = 1
				}
				if !nu[i] {
					nn = 1
				}
				w |= (c & nn) << uint(i)
			}
		case CmpEQ:
			for i, v := range vs {
				var c, nn uint64
				if v == x {
					c = 1
				}
				if !nu[i] {
					nn = 1
				}
				w |= (c & nn) << uint(i)
			}
		default:
			for i, v := range vs {
				var c, nn uint64
				if v != x {
					c = 1
				}
				if !nu[i] {
					nn = 1
				}
				w |= (c & nn) << uint(i)
			}
		}
		dst[wi] = w
	}
}

//redi:hotpath word-building scan kernel; one pass over the column per leaf
func fillNotNullCat(dst bitmap.Bitmap, codes []int32) {
	n := len(codes)
	for wi := range dst {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		var w uint64
		for i, c := range codes[base:end] {
			var bit uint64
			if c >= 0 {
				bit = 1
			}
			w |= bit << uint(i)
		}
		dst[wi] = w
	}
}

//redi:hotpath word-building scan kernel; one pass over the column per leaf
func fillNotNullNum(dst bitmap.Bitmap, nulls []bool) {
	n := len(nulls)
	for wi := range dst {
		base := wi * 64
		end := base + 64
		if end > n {
			end = n
		}
		var w uint64
		for i, isNull := range nulls[base:end] {
			var bit uint64
			if !isNull {
				bit = 1
			}
			w |= bit << uint(i)
		}
		dst[wi] = w
	}
}
