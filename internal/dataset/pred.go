package dataset

// Predicate selects rows of a dataset. Predicates built from the package
// combinators (Eq, In, Range, Compare, NotNull, IsNull, And, Or, Not) carry
// a small expression tree and compile to bytecode operating directly on
// dictionary codes and numeric column storage (see CompilePredicate);
// Dataset.Select/SelectIndices/Count recognize them and run the vectorized
// bitmap driver instead of a per-row Value walk. Opaque user closures are
// wrapped with PredicateFunc and keep the interpreted per-row path.
//
// The zero Predicate is invalid; using it panics.
type Predicate struct {
	node *predNode
	fn   func(d *Dataset, row int) bool
}

// PredicateFunc wraps an arbitrary row closure as a Predicate. Closure
// predicates cannot compile; they always evaluate row-at-a-time.
func PredicateFunc(fn func(d *Dataset, row int) bool) Predicate {
	if fn == nil {
		panic("dataset: PredicateFunc(nil)")
	}
	return Predicate{fn: fn}
}

// Match reports whether row matches the predicate. Tree-backed predicates
// interpret their expression (the reference semantics the compiled paths
// must agree with); closure predicates call the closure.
func (p Predicate) Match(d *Dataset, row int) bool {
	if p.node != nil {
		return p.node.eval(d, row)
	}
	return p.fn(d, row)
}

// Compilable reports whether the predicate carries an expression tree that
// CompilePredicate can turn into bytecode.
func (p Predicate) Compilable() bool { return p.node != nil }

// predOp enumerates expression-tree node kinds. Leaves read one attribute;
// interior nodes combine boolean children.
type predOp uint8

const (
	opEq      predOp = iota // categorical attr == vals[0]
	opIn                    // categorical attr ∈ vals
	opRange                 // numeric lo <= attr <= hi
	opCmp                   // numeric attr <cmp> lo
	opNotNull               // attr is not null
	opIsNull                // attr is null
	opAnd
	opOr
	opNot
	opConst // constant truth value (val)
)

// CompareOp is a numeric comparison operator for Compare.
type CompareOp uint8

const (
	CmpLT CompareOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

// String renders the operator in expression syntax.
func (c CompareOp) String() string {
	switch c {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "="
	case CmpNE:
		return "!="
	default:
		return "CompareOp(?)"
	}
}

type predNode struct {
	op     predOp
	attr   string
	vals   []string        // opEq (one value) / opIn literals
	set    map[string]bool // opIn membership for the interpreted path
	cmp    CompareOp       // opCmp operator
	lo, hi float64         // opRange bounds; opCmp operand in lo
	kids   []*predNode
	val    bool // opConst truth value
}

// eval interprets the tree on one row via the boxed Value path — the
// reference semantics (identical to the pre-VM closure combinators) that
// the bytecode VM and the vectorized driver are tested against.
func (n *predNode) eval(d *Dataset, row int) bool {
	switch n.op {
	case opEq:
		cell := d.Value(row, n.attr)
		return !cell.Null && cell.Kind == Categorical && cell.Cat == n.vals[0]
	case opIn:
		cell := d.Value(row, n.attr)
		return !cell.Null && cell.Kind == Categorical && n.set[cell.Cat]
	case opRange:
		cell := d.Value(row, n.attr)
		return !cell.Null && cell.Kind == Numeric && cell.Num >= n.lo && cell.Num <= n.hi
	case opCmp:
		cell := d.Value(row, n.attr)
		if cell.Null || cell.Kind != Numeric {
			return false
		}
		switch n.cmp {
		case CmpLT:
			return cell.Num < n.lo
		case CmpLE:
			return cell.Num <= n.lo
		case CmpGT:
			return cell.Num > n.lo
		case CmpGE:
			return cell.Num >= n.lo
		case CmpEQ:
			return cell.Num == n.lo
		default:
			return cell.Num != n.lo
		}
	case opNotNull:
		return !d.IsNull(row, n.attr)
	case opIsNull:
		return d.IsNull(row, n.attr)
	case opAnd:
		for _, k := range n.kids {
			if !k.eval(d, row) {
				return false
			}
		}
		return true
	case opOr:
		for _, k := range n.kids {
			if k.eval(d, row) {
				return true
			}
		}
		return false
	case opNot:
		return !n.kids[0].eval(d, row)
	default: // opConst
		return n.val
	}
}

// Eq returns a predicate matching rows whose attr equals the categorical
// value v (nulls never match).
func Eq(attr, v string) Predicate {
	return Predicate{node: &predNode{op: opEq, attr: attr, vals: []string{v}}}
}

// In returns a predicate matching rows whose categorical attr equals any of
// the given values (nulls never match).
func In(attr string, values ...string) Predicate {
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[v] = true
	}
	return Predicate{node: &predNode{op: opIn, attr: attr, vals: values, set: set}}
}

// Range returns a predicate matching rows whose numeric attr lies in
// [lo, hi] (nulls never match).
func Range(attr string, lo, hi float64) Predicate {
	return Predicate{node: &predNode{op: opRange, attr: attr, lo: lo, hi: hi}}
}

// Compare returns a predicate matching rows whose numeric attr satisfies
// the comparison against x (nulls never match).
func Compare(attr string, op CompareOp, x float64) Predicate {
	return Predicate{node: &predNode{op: opCmp, attr: attr, cmp: op, lo: x}}
}

// NotNull returns a predicate matching rows where attr is non-null.
func NotNull(attr string) Predicate {
	return Predicate{node: &predNode{op: opNotNull, attr: attr}}
}

// IsNull returns a predicate matching rows where attr is null.
func IsNull(attr string) Predicate {
	return Predicate{node: &predNode{op: opIsNull, attr: attr}}
}

// And combines predicates conjunctively. And() with no arguments matches
// every row.
func And(ps ...Predicate) Predicate { return combine(opAnd, true, ps) }

// Or combines predicates disjunctively. Or() with no arguments matches no
// rows.
func Or(ps ...Predicate) Predicate { return combine(opOr, false, ps) }

// combine builds a tree-backed conjunction/disjunction when every member
// carries a tree; one opaque closure member makes the whole combination
// opaque (the closure fallback below).
func combine(op predOp, empty bool, ps []Predicate) Predicate {
	if len(ps) == 0 {
		return Predicate{node: &predNode{op: opConst, val: empty}}
	}
	kids := make([]*predNode, 0, len(ps))
	for _, p := range ps {
		if p.node == nil {
			return opaqueCombine(op, ps)
		}
		kids = append(kids, p.node)
	}
	return Predicate{node: &predNode{op: op, kids: kids}}
}

func opaqueCombine(op predOp, ps []Predicate) Predicate {
	and := op == opAnd
	return PredicateFunc(func(d *Dataset, row int) bool {
		for _, p := range ps {
			if p.Match(d, row) != and {
				return !and
			}
		}
		return and
	})
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	if p.node == nil {
		return PredicateFunc(func(d *Dataset, row int) bool { return !p.fn(d, row) })
	}
	return Predicate{node: &predNode{op: opNot, kids: []*predNode{p.node}}}
}
