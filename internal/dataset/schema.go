package dataset

import "fmt"

// Attribute describes one column of a schema.
type Attribute struct {
	Name string
	Kind Kind
	Role Role
}

// Schema is an ordered list of attributes with unique names.
type Schema struct {
	attrs  []Attribute
	byName map[string]int
}

// NewSchema builds a schema from the given attributes. It panics on a
// duplicate or empty attribute name, which indicates a programming error.
func NewSchema(attrs ...Attribute) *Schema {
	s := &Schema{
		attrs:  make([]Attribute, len(attrs)),
		byName: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		if a.Name == "" {
			panic("dataset: attribute with empty name")
		}
		if _, dup := s.byName[a.Name]; dup {
			panic(fmt.Sprintf("dataset: duplicate attribute %q", a.Name))
		}
		s.byName[a.Name] = i
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustIndex returns the position of the named attribute, panicking if it
// does not exist. Use for attribute names that come from code, not input.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	return i
}

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// ByRole returns the names of attributes with the given role, in order.
func (s *Schema) ByRole(r Role) []string {
	var out []string
	for _, a := range s.attrs {
		if a.Role == r {
			out = append(out, a.Name)
		}
	}
	return out
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "name:kind:role, ...".
func (s *Schema) String() string {
	out := ""
	for i, a := range s.attrs {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s:%s:%s", a.Name, a.Kind, a.Role)
	}
	return out
}
