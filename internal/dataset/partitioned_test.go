package dataset

import (
	"fmt"
	"testing"

	"redi/internal/rng"
)

func partTestSchema() *Schema {
	return NewSchema(
		Attribute{Name: "a", Kind: Categorical, Role: Sensitive},
		Attribute{Name: "b", Kind: Categorical, Role: Feature},
		Attribute{Name: "x", Kind: Numeric, Role: Feature},
		Attribute{Name: "y", Kind: Numeric, Role: Feature},
	)
}

func partTestData(r *rng.RNG, rows int) *Dataset {
	d := New(partTestSchema())
	for i := 0; i < rows; i++ {
		a := Cat(fmt.Sprintf("a%d", r.Intn(6)))
		if r.Float64() < 0.08 {
			a = NullValue(Categorical)
		}
		b := Cat(fmt.Sprintf("b%d", r.Intn(4)))
		if r.Float64() < 0.05 {
			b = NullValue(Categorical)
		}
		x := Num(r.Normal(0, 2))
		if r.Float64() < 0.1 {
			x = NullValue(Numeric)
		}
		y := Num(float64(r.Intn(100)))
		d.MustAppendRow(a, b, x, y)
	}
	return d
}

// randomPredicate builds a random predicate tree of bounded depth over the
// partTestSchema attributes, exercising every leaf opcode.
func randomPredicate(r *rng.RNG, depth int) Predicate {
	if depth <= 0 || r.Float64() < 0.4 {
		switch r.Intn(8) {
		case 0:
			return Eq("a", fmt.Sprintf("a%d", r.Intn(8))) // sometimes absent value
		case 1:
			return In("b", fmt.Sprintf("b%d", r.Intn(5)), fmt.Sprintf("b%d", r.Intn(5)))
		case 2:
			return Range("x", -2+r.Float64(), r.Float64()*3)
		case 3:
			ops := []CompareOp{CmpLT, CmpLE, CmpGT, CmpGE, CmpEQ, CmpNE}
			return Compare("y", ops[r.Intn(len(ops))], float64(r.Intn(100)))
		case 4:
			return NotNull("x")
		case 5:
			return IsNull("a")
		case 6:
			return IsNull("x")
		default:
			return NotNull("b")
		}
	}
	switch r.Intn(3) {
	case 0:
		return And(randomPredicate(r, depth-1), randomPredicate(r, depth-1))
	case 1:
		return Or(randomPredicate(r, depth-1), randomPredicate(r, depth-1))
	default:
		return Not(randomPredicate(r, depth-1))
	}
}

func checkGroupsEqual(t *testing.T, ctx string, got, want *Groups) {
	t.Helper()
	if got.NumGroups() != want.NumGroups() {
		t.Fatalf("%s: %d groups, want %d", ctx, got.NumGroups(), want.NumGroups())
	}
	for gid := range want.Counts {
		if got.Counts[gid] != want.Counts[gid] {
			t.Fatalf("%s: gid %d count %d, want %d", ctx, gid, got.Counts[gid], want.Counts[gid])
		}
		if got.Key(gid) != want.Key(gid) {
			t.Fatalf("%s: gid %d key %q, want %q", ctx, gid, got.Key(gid), want.Key(gid))
		}
	}
	if len(got.ByRow) != len(want.ByRow) {
		t.Fatalf("%s: ByRow length %d, want %d", ctx, len(got.ByRow), len(want.ByRow))
	}
	for r := range want.ByRow {
		if got.ByRow[r] != want.ByRow[r] {
			t.Fatalf("%s: row %d gid %d, want %d", ctx, r, got.ByRow[r], want.ByRow[r])
		}
	}
}

// TestPartitionedGroupByMatchesInMemory is the satellite-3 determinism
// contract for grouping: the partition-parallel GroupBy is bit-identical to
// the in-memory one for every worker count and partition size.
func TestPartitionedGroupByMatchesInMemory(t *testing.T) {
	r := rng.New(71)
	attrSets := [][]string{{"a"}, {"b"}, {"a", "b"}, {"b", "a"}}
	for _, rows := range []int{0, 1, 64, 257, 1000} {
		d := partTestData(r, rows)
		for _, partRows := range []int{64, 256} {
			pd := d.Partitions(partRows)
			for _, attrs := range attrSets {
				want := d.GroupBy(attrs...)
				for _, workers := range []int{1, 2, 8} {
					got := pd.GroupBy(workers, attrs...)
					ctx := fmt.Sprintf("rows=%d partRows=%d attrs=%v workers=%d", rows, partRows, attrs, workers)
					checkGroupsEqual(t, ctx, got, want)
				}
			}
		}
	}
}

// TestPartitionedPredicateMatchesInMemory pins SelectBitmap/Count
// equivalence over randomized predicates, worker counts, and partition
// sizes.
func TestPartitionedPredicateMatchesInMemory(t *testing.T) {
	r := rng.New(72)
	for _, rows := range []int{0, 65, 700} {
		d := partTestData(r, rows)
		for trial := 0; trial < 30; trial++ {
			p := randomPredicate(r, 3)
			want, ok := CompilePredicate(d, p)
			if !ok {
				t.Fatalf("in-memory compile failed for %v", p)
			}
			wantBM := want.SelectBitmap()
			wantCount := want.CountFast()
			for _, partRows := range []int{64, 192} {
				pd := d.Partitions(partRows)
				pp, ok := pd.CompilePredicate(p)
				if !ok {
					t.Fatalf("partitioned compile failed for %v", p)
				}
				for _, workers := range []int{1, 2, 8} {
					ctx := fmt.Sprintf("rows=%d trial=%d partRows=%d workers=%d", rows, trial, partRows, workers)
					gotBM := pp.SelectBitmap(workers)
					if len(gotBM) != len(wantBM) {
						t.Fatalf("%s: bitmap %d words, want %d", ctx, len(gotBM), len(wantBM))
					}
					for w := range wantBM {
						if gotBM[w] != wantBM[w] {
							t.Fatalf("%s: bitmap word %d = %x, want %x (pred %s)",
								ctx, w, gotBM[w], wantBM[w], want.Disassemble())
						}
					}
					if got := pp.Count(workers); got != wantCount {
						t.Fatalf("%s: count %d, want %d", ctx, got, wantCount)
					}
				}
			}
		}
	}
}

// TestPartitionedPredicateOpaqueFallback: closure predicates cannot compile
// on either backend, and both report it the same way.
func TestPartitionedPredicateOpaqueFallback(t *testing.T) {
	d := partTestData(rng.New(73), 100)
	p := PredicateFunc(func(d *Dataset, r int) bool { return r%2 == 0 })
	if _, ok := CompilePredicate(d, p); ok {
		t.Fatal("in-memory compiled an opaque closure")
	}
	if _, ok := d.Partitions(64).CompilePredicate(p); ok {
		t.Fatal("partitioned compiled an opaque closure")
	}
}

// TestPartitionedAppendRowsTo: materializing arbitrary row subsets from the
// partitioned view matches Gather on the source.
func TestPartitionedAppendRowsTo(t *testing.T) {
	r := rng.New(74)
	d := partTestData(r, 333)
	pd := d.Partitions(64)
	for trial := 0; trial < 10; trial++ {
		k := r.Intn(100)
		rowsIdx := make([]int, k)
		for i := range rowsIdx {
			rowsIdx[i] = r.Intn(d.NumRows())
		}
		want := d.Gather(rowsIdx)
		got := New(d.Schema())
		if err := pd.AppendRowsTo(got, rowsIdx); err != nil {
			t.Fatalf("AppendRowsTo: %v", err)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("trial %d: %d rows, want %d", trial, got.NumRows(), want.NumRows())
		}
		for i := 0; i < want.NumRows(); i++ {
			for c := 0; c < d.Schema().Len(); c++ {
				g, w := got.ValueAt(i, c), want.ValueAt(i, c)
				if g != w {
					t.Fatalf("trial %d row %d col %d: got %v, want %v", trial, i, c, g, w)
				}
			}
		}
	}
}

// TestPartitionsValidation: bad partition geometry panics up front.
func TestPartitionsValidation(t *testing.T) {
	d := partTestData(rng.New(75), 10)
	for _, bad := range []int{-64, 7, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partitions(%d) did not panic", bad)
				}
			}()
			d.Partitions(bad)
		}()
	}
}
