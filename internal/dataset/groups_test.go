package dataset

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"redi/internal/rng"
)

// groupByOracle is the seed string-per-row grouping implementation, kept as
// the reference the dense-gid GroupBy must reproduce bit-for-bit: rendered
// keys in ascending string order, counts, member rows, and ByRow.
func groupByOracle(d *Dataset, attrs ...string) (keys []GroupKey, counts []int, rows map[GroupKey][]int, byRow []int) {
	rows = map[GroupKey][]int{}
	byRow = make([]int, d.NumRows())
	var sb strings.Builder
	for r := 0; r < d.NumRows(); r++ {
		sb.Reset()
		null := false
		for i, a := range attrs {
			v := d.Value(r, a)
			if v.Null {
				null = true
				break
			}
			if i > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(a)
			sb.WriteByte('=')
			sb.WriteString(v.Cat)
		}
		if null {
			byRow[r] = -1
			continue
		}
		k := GroupKey(sb.String())
		if _, seen := rows[k]; !seen {
			keys = append(keys, k)
		}
		rows[k] = append(rows[k], r)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for i, k := range keys {
		counts = append(counts, len(rows[k]))
		for _, r := range rows[k] {
			byRow[r] = i
		}
	}
	return keys, counts, rows, byRow
}

func checkAgainstOracle(t *testing.T, d *Dataset, attrs ...string) {
	t.Helper()
	g := d.GroupBy(attrs...)
	keys, counts, rows, byRow := groupByOracle(d, attrs...)
	if g.NumGroups() != len(keys) {
		t.Fatalf("NumGroups = %d, oracle %d (keys %v vs %v)", g.NumGroups(), len(keys), g.Keys(), keys)
	}
	for gid, k := range keys {
		if g.Key(gid) != k {
			t.Fatalf("Key(%d) = %q, oracle %q (all: %v vs %v)", gid, g.Key(gid), k, g.Keys(), keys)
		}
		if g.Counts[gid] != counts[gid] {
			t.Fatalf("Counts[%d] = %d, oracle %d", gid, g.Counts[gid], counts[gid])
		}
		got := g.Rows(gid)
		want := rows[k]
		if len(got) != len(want) {
			t.Fatalf("Rows(%d) = %v, oracle %v", gid, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Rows(%d) = %v, oracle %v", gid, got, want)
			}
		}
		if g.GID(k) != gid {
			t.Fatalf("GID(%q) = %d, want %d", k, g.GID(k), gid)
		}
	}
	for r, gi := range byRow {
		if int(g.ByRow[r]) != gi {
			t.Fatalf("ByRow[%d] = %d, oracle %d", r, g.ByRow[r], gi)
		}
	}
}

// Randomized schemas, including values containing '=' and ';' — the case
// where gid canonicalization must compare rendered bytes, not value tuples:
// sorting values ("a", "a;b") component-wise disagrees with the rendered
// key order once the separator and next attribute name are concatenated.
func TestGroupByMatchesOracleRandomized(t *testing.T) {
	vals := []string{"", "a", "b", "ab", "a;b", "a=b", ";", "=", ";=", "z", "a;", "=a"}
	attrSets := [][]string{
		{"g"},
		{"g", "h"},
		{"a;b", "c"}, // separator inside an attribute name
		{"race", "sex", "age_band"},
	}
	r := rng.New(42)
	for trial := 0; trial < 40; trial++ {
		attrs := attrSets[trial%len(attrSets)]
		sch := make([]Attribute, len(attrs))
		for i, a := range attrs {
			sch[i] = Attribute{Name: a, Kind: Categorical}
		}
		d := New(NewSchema(sch...))
		n := r.Intn(120)
		for i := 0; i < n; i++ {
			row := make([]Value, len(attrs))
			for j := range row {
				if r.Float64() < 0.12 {
					row[j] = NullValue(Categorical)
				} else {
					row[j] = Cat(vals[r.Intn(len(vals))])
				}
			}
			d.MustAppendRow(row...)
		}
		checkAgainstOracle(t, d, attrs...)
	}
}

// The dictionary-product fallback: dictionaries large enough that the dense
// lookup table would exceed its budget must take the tuple-map path and
// still match the oracle exactly.
func TestGroupByMapFallbackMatchesOracle(t *testing.T) {
	d := New(NewSchema(
		Attribute{Name: "a", Kind: Categorical},
		Attribute{Name: "b", Kind: Categorical},
		Attribute{Name: "c", Kind: Categorical},
	))
	r := rng.New(7)
	// 150^3 ≈ 3.4M > denseGroupLimit (1M), so GroupBy must fall back.
	for i := 0; i < 3000; i++ {
		row := make([]Value, 3)
		for j := range row {
			if r.Float64() < 0.05 {
				row[j] = NullValue(Categorical)
			} else {
				row[j] = Cat(fmt.Sprintf("v%03d", r.Intn(150)))
			}
		}
		d.MustAppendRow(row...)
	}
	for _, c := range []string{"a", "b", "c"} {
		// Force every dictionary to its full 150 values.
		for v := 0; v < 150; v++ {
			d.MustAppendRow(func() []Value {
				row := []Value{NullValue(Categorical), NullValue(Categorical), NullValue(Categorical)}
				row[map[string]int{"a": 0, "b": 1, "c": 2}[c]] = Cat(fmt.Sprintf("v%03d", v))
				return row
			}()...)
		}
	}
	checkAgainstOracle(t, d, "a", "b", "c")
}

func TestGroupByEmptyDataset(t *testing.T) {
	d := New(NewSchema(Attribute{Name: "g", Kind: Categorical}))
	g := d.GroupBy("g")
	if g.NumGroups() != 0 || g.Keys() != nil || len(g.ByRow) != 0 {
		t.Fatalf("empty dataset grouped: %d groups, keys %v", g.NumGroups(), g.Keys())
	}
	if len(g.Distribution()) != 0 {
		t.Fatalf("empty distribution = %v", g.Distribution())
	}
	if g.Count("g=x") != 0 || g.GID("g=x") != -1 {
		t.Fatal("absent group lookup on empty index")
	}
}

func TestGroupByMultiAttrNullRows(t *testing.T) {
	d := New(NewSchema(
		Attribute{Name: "g", Kind: Categorical},
		Attribute{Name: "h", Kind: Categorical},
	))
	d.MustAppendRow(Cat("x"), Cat("y"))               // group
	d.MustAppendRow(NullValue(Categorical), Cat("y")) // null in g
	d.MustAppendRow(Cat("x"), NullValue(Categorical)) // null in h
	d.MustAppendRow(NullValue(Categorical), NullValue(Categorical))
	g := d.GroupBy("g", "h")
	if g.NumGroups() != 1 || g.Counts[0] != 1 {
		t.Fatalf("groups = %v, counts = %v", g.Keys(), g.Counts)
	}
	for r := 1; r <= 3; r++ {
		if g.ByRow[r] != -1 {
			t.Fatalf("row %d with null attr got gid %d", r, g.ByRow[r])
		}
	}
	checkAgainstOracle(t, d, "g", "h")
}

func TestGroupBySingleRowGroups(t *testing.T) {
	d := New(NewSchema(Attribute{Name: "g", Kind: Categorical}))
	for _, v := range []string{"c", "a", "b"} {
		d.MustAppendRow(Cat(v))
	}
	g := d.GroupBy("g")
	if g.NumGroups() != 3 {
		t.Fatalf("groups = %v", g.Keys())
	}
	for gid := 0; gid < 3; gid++ {
		if g.Counts[gid] != 1 || len(g.Rows(gid)) != 1 {
			t.Fatalf("group %d not singleton: count %d rows %v", gid, g.Counts[gid], g.Rows(gid))
		}
	}
	// Sorted: a, b, c — appearing order was c, a, b.
	if g.Key(0) != "g=a" || g.Key(1) != "g=b" || g.Key(2) != "g=c" {
		t.Fatalf("keys not in sorted order: %v", g.Keys())
	}
	checkAgainstOracle(t, d, "g")
}

func TestGroupByZeroAttrs(t *testing.T) {
	d := New(NewSchema(Attribute{Name: "g", Kind: Categorical}))
	d.MustAppendRow(Cat("x"))
	d.MustAppendRow(NullValue(Categorical))
	g := d.GroupBy()
	if g.NumGroups() != 1 || g.Key(0) != "" || g.Counts[0] != 2 {
		t.Fatalf("zero-attr grouping: keys %v counts %v", g.Keys(), g.Counts)
	}
	checkAgainstOracle(t, d)
}

// AppendDataset's bulk column copy must be cell-for-cell identical to the
// per-row AppendRow path, including dictionary remapping (the two tables
// build their dictionaries in different insertion orders).
func TestAppendDatasetEquivalence(t *testing.T) {
	schema := NewSchema(
		Attribute{Name: "g", Kind: Categorical},
		Attribute{Name: "x", Kind: Numeric},
	)
	build := func(vals []string, nums []float64) *Dataset {
		d := New(schema)
		for i := range vals {
			gv := Cat(vals[i])
			if vals[i] == "~" {
				gv = NullValue(Categorical)
			}
			xv := Num(nums[i])
			if nums[i] < 0 {
				xv = NullValue(Numeric)
			}
			d.MustAppendRow(gv, xv)
		}
		return d
	}
	a := build([]string{"p", "q", "~", "r"}, []float64{1, -1, 3, 4})
	b := build([]string{"r", "s", "p", "~"}, []float64{-1, 6, 7, 8})

	fast := a.Clone()
	if err := fast.AppendDataset(b); err != nil {
		t.Fatal(err)
	}
	slow := a.Clone()
	for r := 0; r < b.NumRows(); r++ {
		if err := slow.AppendRow(b.Row(r)...); err != nil {
			t.Fatal(err)
		}
	}
	if fast.NumRows() != slow.NumRows() {
		t.Fatalf("rows %d vs %d", fast.NumRows(), slow.NumRows())
	}
	for r := 0; r < fast.NumRows(); r++ {
		for c := 0; c < fast.NumCols(); c++ {
			if !fast.ValueAt(r, c).Equal(slow.ValueAt(r, c)) {
				t.Fatalf("cell (%d,%d): %v vs %v", r, c, fast.ValueAt(r, c), slow.ValueAt(r, c))
			}
		}
	}
	// The dictionaries must agree too (codes remapped, not copied raw).
	fc, fd := fast.Codes("g")
	sc, sd := slow.Codes("g")
	if len(fd) != len(sd) {
		t.Fatalf("dicts %v vs %v", fd, sd)
	}
	for i := range fd {
		if fd[i] != sd[i] {
			t.Fatalf("dicts %v vs %v", fd, sd)
		}
	}
	for i := range fc {
		if fc[i] != sc[i] {
			t.Fatalf("codes %v vs %v", fc, sc)
		}
	}

	// Schema mismatch still rejected.
	other := New(NewSchema(Attribute{Name: "y", Kind: Numeric}))
	if err := fast.AppendDataset(other); err == nil {
		t.Fatal("schema mismatch accepted")
	}

	// Self-append doubles the table.
	self := build([]string{"p", "q"}, []float64{1, 2})
	if err := self.AppendDataset(self); err != nil {
		t.Fatal(err)
	}
	if self.NumRows() != 4 {
		t.Fatalf("self-append rows = %d, want 4", self.NumRows())
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < self.NumCols(); c++ {
			if !self.ValueAt(r, c).Equal(self.ValueAt(r+2, c)) {
				t.Fatalf("self-append cell (%d,%d) mismatch", r, c)
			}
		}
	}
}
