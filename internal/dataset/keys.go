package dataset

import "sort"

// SortedKeys returns the keys of a GroupKey-keyed map in sorted order. It
// is the standard way to iterate such maps on algorithm paths: ranging a
// map directly leaks Go's randomized iteration order into anything
// order-sensitive (redilint's maporder rule), while sorted keys keep every
// downstream float accumulation and report string bit-identical across
// runs.
func SortedKeys[V any](m map[GroupKey]V) []GroupKey {
	keys := make([]GroupKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}
