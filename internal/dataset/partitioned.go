package dataset

import (
	"fmt"
	"sort"

	"redi/internal/bitmap"
	"redi/internal/obs"
	"redi/internal/parallel"
)

// PartitionSource is the storage contract behind a Partitioned view: rows
// split into fixed-size partitions of columnar data, with categorical codes
// drawn from one merged global dictionary per column. internal/colfile's
// File implements it over mapped pages; memSource implements it over an
// in-memory Dataset, making the in-memory table one backend among two.
//
// Layout invariants every source must honor:
//   - PartRows is a positive multiple of 64, so partition p covers global
//     rows [p*PartRows, ...) whose word range in any global bitmap is
//     disjoint from every other partition's;
//   - every partition has PartRows rows except possibly the last;
//   - categorical codes are indices into Dict(col) (-1 marks null);
//   - numeric validity words are bit-packed (bit set = non-null), cells
//     under a cleared bit hold 0, and trailing bits past the partition's
//     row count are zero.
//
// Returned slices are read-only views; accessors must be safe for
// concurrent use (partition-parallel kernels fan out over them).
type PartitionSource interface {
	Schema() *Schema
	NumRows() int
	PartRows() int
	NumPartitions() int
	PartitionRows(p int) int
	// Dict returns the merged global dictionary of a categorical column;
	// nil for numeric columns.
	Dict(col int) []string
	PartitionCatCodes(p, col int) []int32
	PartitionNumValues(p, col int) (vals []float64, validity []uint64)
	// PartitionPresentCodes returns the sorted global codes present in the
	// partition, or nil when unknown (pruning is then skipped).
	PartitionPresentCodes(p, col int) []int32
}

// Partitioned is a dataset view that executes partition-at-a-time: hot
// paths (GroupBy, compiled predicates, coverage space construction) fan out
// over partitions with internal/parallel and merge per-shard results in
// shard order, so results are bit-identical to the in-memory path at any
// worker count. Methods taking a workers argument follow the parallel
// package's convention: 0 = serial, parallel.Auto = one worker per CPU.
type Partitioned struct {
	src PartitionSource
	// Obs receives the partition counters (dataset.partitions_scanned,
	// dataset.partitions_pruned); nil falls back to the process-wide
	// registry per obs.Active.
	Obs *obs.Registry
}

// NewPartitioned wraps a source after checking its geometry invariants.
func NewPartitioned(src PartitionSource) *Partitioned {
	pr := src.PartRows()
	if pr <= 0 || pr%64 != 0 {
		panic(fmt.Sprintf("dataset: partition size %d must be a positive multiple of 64", pr))
	}
	rows := 0
	for p := 0; p < src.NumPartitions(); p++ {
		got := src.PartitionRows(p)
		want := pr
		if left := src.NumRows() - rows; left < want {
			want = left
		}
		if got != want {
			panic(fmt.Sprintf("dataset: partition %d has %d rows, want %d", p, got, want))
		}
		rows += got
	}
	if rows != src.NumRows() {
		panic(fmt.Sprintf("dataset: partitions cover %d rows, source declares %d", rows, src.NumRows()))
	}
	return &Partitioned{src: src}
}

// Source returns the underlying storage backend.
func (pd *Partitioned) Source() PartitionSource { return pd.src }

// Schema returns the dataset's schema.
func (pd *Partitioned) Schema() *Schema { return pd.src.Schema() }

// NumRows returns the total row count.
func (pd *Partitioned) NumRows() int { return pd.src.NumRows() }

// PartRows returns the partition size in rows.
func (pd *Partitioned) PartRows() int { return pd.src.PartRows() }

// NumPartitions returns the partition count.
func (pd *Partitioned) NumPartitions() int { return pd.src.NumPartitions() }

// PartitionRows returns partition p's row count.
func (pd *Partitioned) PartitionRows(p int) int { return pd.src.PartitionRows(p) }

// Dict returns the merged global dictionary for a categorical attribute.
// The slice is shared — callers must not mutate it.
func (pd *Partitioned) Dict(attr string) []string {
	col := pd.src.Schema().MustIndex(attr)
	if pd.src.Schema().Attr(col).Kind != Categorical {
		panic(fmt.Sprintf("dataset: attribute %q is not categorical", attr))
	}
	// May be empty (nil): a zero-row or all-null column has no dictionary.
	return pd.src.Dict(col)
}

// Domain returns the distinct categorical values of attr in dictionary
// (first-appearance) order. For converter-written files the dictionary
// holds exactly the values present in some row, so this is the exact
// domain without scanning any page.
func (pd *Partitioned) Domain(attr string) []string {
	return append([]string(nil), pd.Dict(attr)...)
}

func (pd *Partitioned) counters() (scanned, pruned *obs.Counter) {
	reg := obs.Active(pd.Obs)
	return reg.Counter("dataset.partitions_scanned"), reg.Counter("dataset.partitions_pruned")
}

// Value returns the cell at global row r of the named attribute. This is a
// per-row convenience for edges and tests — hot paths use the partition
// accessors instead.
func (pd *Partitioned) Value(r int, attr string) Value {
	col := pd.src.Schema().MustIndex(attr)
	p, i := r/pd.src.PartRows(), r%pd.src.PartRows()
	if pd.src.Schema().Attr(col).Kind == Categorical {
		code := pd.src.PartitionCatCodes(p, col)[i]
		if code < 0 {
			return NullValue(Categorical)
		}
		return Cat(pd.src.Dict(col)[code])
	}
	vals, validity := pd.src.PartitionNumValues(p, col)
	if validity[i/64]&(1<<(uint(i)%64)) == 0 {
		return NullValue(Numeric)
	}
	return Num(vals[i])
}

// AppendRowsTo appends the given global rows, in order, to an in-memory
// dataset with an equal schema. Each touched partition's column views are
// fetched once and cached for the call, so gathering k rows costs O(k)
// plus one page fetch per distinct partition.
func (pd *Partitioned) AppendRowsTo(out *Dataset, rows []int) error {
	if !out.Schema().Equal(pd.Schema()) {
		return fmt.Errorf("dataset: AppendRowsTo schema mismatch: %v vs %v", out.Schema(), pd.Schema())
	}
	schema := pd.Schema()
	type partCache struct {
		cat   [][]int32
		vals  [][]float64
		valid [][]uint64
	}
	cache := make(map[int]*partCache)
	fetch := func(p int) *partCache {
		if c, ok := cache[p]; ok {
			return c
		}
		c := &partCache{
			cat:   make([][]int32, schema.Len()),
			vals:  make([][]float64, schema.Len()),
			valid: make([][]uint64, schema.Len()),
		}
		for col := 0; col < schema.Len(); col++ {
			if schema.Attr(col).Kind == Categorical {
				c.cat[col] = pd.src.PartitionCatCodes(p, col)
			} else {
				c.vals[col], c.valid[col] = pd.src.PartitionNumValues(p, col)
			}
		}
		cache[p] = c
		return c
	}
	row := make([]Value, schema.Len())
	for _, r := range rows {
		if r < 0 || r >= pd.NumRows() {
			return fmt.Errorf("dataset: AppendRowsTo row %d out of range [0, %d)", r, pd.NumRows())
		}
		p, i := r/pd.src.PartRows(), r%pd.src.PartRows()
		c := fetch(p)
		for col := 0; col < schema.Len(); col++ {
			if schema.Attr(col).Kind == Categorical {
				code := c.cat[col][i]
				if code < 0 {
					row[col] = NullValue(Categorical)
				} else {
					row[col] = Cat(pd.src.Dict(col)[code])
				}
			} else {
				if c.valid[col][i/64]&(1<<(uint(i)%64)) == 0 {
					row[col] = NullValue(Numeric)
				} else {
					row[col] = Num(c.vals[col][i])
				}
			}
		}
		if err := out.AppendRow(row...); err != nil {
			return err
		}
	}
	return nil
}

// Partitions returns a partitioned view of an in-memory dataset: the same
// rows sliced into partRows-sized partitions (0 means DefaultMemPartRows),
// with numeric validity bit-packed up front. The view aliases the
// dataset's column storage — do not mutate the dataset while the view is
// in use.
func (d *Dataset) Partitions(partRows int) *Partitioned {
	if partRows == 0 {
		partRows = DefaultMemPartRows
	}
	if partRows <= 0 || partRows%64 != 0 {
		panic(fmt.Sprintf("dataset: partition size %d must be a positive multiple of 64", partRows))
	}
	ms := &memSource{d: d, partRows: partRows, validity: make([][]uint64, len(d.cols))}
	for i, c := range d.cols {
		nc, ok := c.(*numColumn)
		if !ok {
			continue
		}
		words := make([]uint64, bitmap.WordsFor(d.n))
		for r, isNull := range nc.nulls {
			if !isNull {
				words[r/64] |= 1 << (uint(r) % 64)
			}
		}
		ms.validity[i] = words
	}
	return NewPartitioned(ms)
}

// DefaultMemPartRows is the default partition size for in-memory views.
const DefaultMemPartRows = 1 << 16

// memSource adapts an in-memory Dataset to PartitionSource by slicing its
// column storage. Partition boundaries are multiples of 64 rows, so the
// per-partition validity views are clean word windows of one global
// validity bitmap per numeric column (built once at construction).
type memSource struct {
	d        *Dataset
	partRows int
	validity [][]uint64 // per numeric column, whole-dataset validity words
}

func (ms *memSource) Schema() *Schema { return ms.d.schema }
func (ms *memSource) NumRows() int    { return ms.d.n }
func (ms *memSource) PartRows() int   { return ms.partRows }

func (ms *memSource) NumPartitions() int {
	return (ms.d.n + ms.partRows - 1) / ms.partRows
}

func (ms *memSource) PartitionRows(p int) int {
	if rows := ms.d.n - p*ms.partRows; rows < ms.partRows {
		return rows
	}
	return ms.partRows
}

func (ms *memSource) rowRange(p int) (lo, hi int) {
	lo = p * ms.partRows
	hi = lo + ms.PartitionRows(p)
	return lo, hi
}

func (ms *memSource) Dict(col int) []string {
	c, ok := ms.d.cols[col].(*catColumn)
	if !ok {
		return nil
	}
	return c.dict
}

func (ms *memSource) PartitionCatCodes(p, col int) []int32 {
	lo, hi := ms.rowRange(p)
	return ms.d.cols[col].(*catColumn).codes[lo:hi]
}

func (ms *memSource) PartitionNumValues(p, col int) ([]float64, []uint64) {
	lo, hi := ms.rowRange(p)
	words := ms.validity[col][lo/64 : lo/64+bitmap.WordsFor(hi-lo)]
	return ms.d.cols[col].(*numColumn).vals[lo:hi], words
}

// PartitionPresentCodes is unknown for in-memory views: nil disables
// pruning, which only affects speed, never results.
func (ms *memSource) PartitionPresentCodes(p, col int) []int32 { return nil }

// GroupBy indexes the view's rows by categorical attributes, partition-
// parallel, producing a Groups bit-identical to the in-memory
// Dataset.GroupBy on the same rows: same canonical gid order (ascending
// rendered-key order), same ByRow, same Counts.
//
// Phase 1 shards the partitions: each shard scans its partitions' code
// pages, assigning shard-local provisional gids (dense mixed-radix table
// when the dictionary product is small, byte-keyed map otherwise) and
// writing them into its disjoint ByRow range. The serial merge unifies the
// shards' distinct tuples in shard order, sorts them into canonical
// rendered-key order, and builds one local→final remap per shard. Phase 2
// rewrites each shard's ByRow range through its remap. Every merge walks
// shards in shard order, so the result is independent of the worker count.
func (pd *Partitioned) GroupBy(workers int, attrs ...string) *Groups {
	A := len(attrs)
	schema := pd.Schema()
	cols := make([]int, A)
	dims := make([]int, A)
	g := &Groups{
		Attrs: append([]string(nil), attrs...),
		ByRow: make([]int32, pd.NumRows()),
		n:     pd.NumRows(),
		dicts: make([][]string, A),
	}
	product := 1 // -1 once the dense budget is exceeded
	for i, a := range attrs {
		ci := schema.MustIndex(a)
		if schema.Attr(ci).Kind != Categorical {
			panic(fmt.Sprintf("dataset: GroupBy attribute %q is not categorical", a))
		}
		dict := pd.src.Dict(ci) // may be empty: all-null or zero-row column
		cols[i] = ci
		g.dicts[i] = dict
		dims[i] = len(dict)
		if product > 0 && dims[i] != 0 && product > denseGroupLimit/dims[i] {
			product = -1
			continue
		}
		if product >= 0 {
			product *= dims[i]
		}
	}

	cScanned, _ := pd.counters()
	P := pd.NumPartitions()
	partRows := pd.PartRows()
	type gbShard struct {
		tuples []int32 // local-gid-major code tuples
		counts []int
		lo, hi int // global row range covered
	}
	shards := parallel.MapChunks(workers, P, func(_, plo, phi int) gbShard {
		sh := gbShard{lo: plo * partRows}
		codes := make([][]int32, A)
		var table []int32
		var index map[string]int32
		if product >= 0 {
			table = make([]int32, product)
			for i := range table {
				table[i] = -1
			}
		} else {
			index = make(map[string]int32)
		}
		key := make([]byte, 4*A)
		for p := plo; p < phi; p++ {
			cScanned.Inc()
			base := p * partRows
			for a, ci := range cols {
				codes[a] = pd.src.PartitionCatCodes(p, ci)
			}
			rows := pd.src.PartitionRows(p)
			sh.hi = base + rows
			for r := 0; r < rows; r++ {
				var gid int32
				if product >= 0 {
					idx := 0
					null := false
					for a := range codes {
						code := codes[a][r]
						if code < 0 {
							null = true
							break
						}
						idx = idx*dims[a] + int(code)
					}
					if null {
						g.ByRow[base+r] = -1
						continue
					}
					gid = table[idx]
					if gid < 0 {
						gid = int32(len(sh.counts))
						table[idx] = gid
						for a := range codes {
							sh.tuples = append(sh.tuples, codes[a][r])
						}
						sh.counts = append(sh.counts, 0)
					}
				} else {
					null := false
					for a := range codes {
						code := codes[a][r]
						if code < 0 {
							null = true
							break
						}
						key[4*a] = byte(code)
						key[4*a+1] = byte(code >> 8)
						key[4*a+2] = byte(code >> 16)
						key[4*a+3] = byte(code >> 24)
					}
					if null {
						g.ByRow[base+r] = -1
						continue
					}
					var ok bool
					gid, ok = index[string(key)]
					if !ok {
						gid = int32(len(sh.counts))
						index[string(key)] = gid
						for a := range codes {
							sh.tuples = append(sh.tuples, codes[a][r])
						}
						sh.counts = append(sh.counts, 0)
					}
				}
				g.ByRow[base+r] = gid
				sh.counts[gid]++
			}
		}
		return sh
	})

	// Serial merge: unify shard-local tuples in shard order into global
	// provisional gids, then remap those into canonical sorted-key order.
	merged := make(map[string]int32)
	var tuples []int32
	var counts []int
	shardMap := make([][]int32, len(shards))
	key := make([]byte, 4*A)
	for s, sh := range shards {
		shardMap[s] = make([]int32, len(sh.counts))
		for lg := range sh.counts {
			t := sh.tuples[lg*A : (lg+1)*A]
			for a, code := range t {
				key[4*a] = byte(code)
				key[4*a+1] = byte(code >> 8)
				key[4*a+2] = byte(code >> 16)
				key[4*a+3] = byte(code >> 24)
			}
			gid, ok := merged[string(key)]
			if !ok {
				gid = int32(len(counts))
				merged[string(key)] = gid
				tuples = append(tuples, t...)
				counts = append(counts, 0)
			}
			counts[gid] += sh.counts[lg]
			shardMap[s][lg] = gid
		}
	}
	G := len(counts)
	perm := make([]int, G)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool {
		return g.tupleLess(tuples[perm[x]*A:perm[x]*A+A], tuples[perm[y]*A:perm[y]*A+A])
	})
	remap := make([]int32, G)
	g.Counts = make([]int, G)
	g.tuples = make([]int32, len(tuples))
	for newGid, old := range perm {
		remap[old] = int32(newGid)
		g.Counts[newGid] = counts[old]
		copy(g.tuples[newGid*A:(newGid+1)*A], tuples[old*A:old*A+A])
	}
	for s := range shardMap {
		for lg, gid := range shardMap[s] {
			shardMap[s][lg] = remap[gid]
		}
	}

	// Phase 2: rewrite each shard's disjoint ByRow range through its remap.
	parallel.For(workers, len(shards), func(s int) {
		m := shardMap[s]
		for r := shards[s].lo; r < shards[s].hi; r++ {
			if gid := g.ByRow[r]; gid >= 0 {
				g.ByRow[r] = m[gid]
			}
		}
	})
	return g
}
