package dataset

import (
	"strings"
	"testing"

	"redi/internal/rng"
)

func testSchema() *Schema {
	return NewSchema(
		Attribute{Name: "id", Kind: Categorical, Role: ID},
		Attribute{Name: "race", Kind: Categorical, Role: Sensitive},
		Attribute{Name: "age", Kind: Numeric, Role: Feature},
		Attribute{Name: "label", Kind: Categorical, Role: Target},
	)
}

func testData(t *testing.T) *Dataset {
	t.Helper()
	d := New(testSchema())
	rows := [][]Value{
		{Cat("1"), Cat("white"), Num(34), Cat("pos")},
		{Cat("2"), Cat("black"), Num(28), Cat("neg")},
		{Cat("3"), Cat("white"), Num(45), Cat("pos")},
		{Cat("4"), Cat("black"), Num(52), Cat("pos")},
		{Cat("5"), Cat("white"), NullValue(Numeric), Cat("neg")},
		{Cat("6"), NullValue(Categorical), Num(61), Cat("neg")},
	}
	for _, r := range rows {
		d.MustAppendRow(r...)
	}
	return d
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.Index("age"); !ok || i != 2 {
		t.Fatalf("Index(age) = %d,%v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Fatal("Index of unknown attribute succeeded")
	}
	if got := s.ByRole(Sensitive); len(got) != 1 || got[0] != "race" {
		t.Fatalf("ByRole(Sensitive) = %v", got)
	}
	if !s.Equal(testSchema()) {
		t.Fatal("identical schemas not Equal")
	}
	other := NewSchema(Attribute{Name: "x", Kind: Numeric})
	if s.Equal(other) {
		t.Fatal("different schemas reported Equal")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attribute did not panic")
		}
	}()
	NewSchema(Attribute{Name: "a"}, Attribute{Name: "a"})
}

func TestAppendAndAccess(t *testing.T) {
	d := testData(t)
	if d.NumRows() != 6 || d.NumCols() != 4 {
		t.Fatalf("shape = %dx%d", d.NumRows(), d.NumCols())
	}
	if v := d.Value(0, "race"); v.Cat != "white" {
		t.Fatalf("Value(0,race) = %v", v)
	}
	if v := d.Value(1, "age"); v.Num != 28 {
		t.Fatalf("Value(1,age) = %v", v)
	}
	if !d.IsNull(4, "age") || !d.IsNull(5, "race") {
		t.Fatal("nulls not recorded")
	}
	row := d.Row(3)
	if row[0].Cat != "4" || row[2].Num != 52 {
		t.Fatalf("Row(3) = %v", row)
	}
}

func TestAppendRowErrors(t *testing.T) {
	d := New(testSchema())
	if err := d.AppendRow(Cat("1")); err == nil {
		t.Fatal("short row accepted")
	}
	// Kind mismatch in the middle of a row must roll back cleanly.
	if err := d.AppendRow(Cat("1"), Cat("white"), Cat("oops"), Cat("pos")); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if d.NumRows() != 0 {
		t.Fatalf("NumRows after failed append = %d", d.NumRows())
	}
	// The table must still accept a valid row afterwards.
	d.MustAppendRow(Cat("1"), Cat("white"), Num(1), Cat("pos"))
	if d.NumRows() != 1 {
		t.Fatalf("NumRows = %d", d.NumRows())
	}
	for c := 0; c < d.NumCols(); c++ {
		if got := d.cols[c].len(); got != 1 {
			t.Fatalf("column %d length = %d after rollback", c, got)
		}
	}
}

func TestNumericExtraction(t *testing.T) {
	d := testData(t)
	vals, rows := d.Numeric("age")
	if len(vals) != 5 || len(rows) != 5 {
		t.Fatalf("Numeric returned %d values", len(vals))
	}
	for _, r := range rows {
		if r == 4 {
			t.Fatal("null row included in Numeric")
		}
	}
	full, nulls := d.NumericFull("age")
	if len(full) != 6 || !nulls[4] {
		t.Fatalf("NumericFull = %v %v", full, nulls)
	}
}

func TestDomainAndCodes(t *testing.T) {
	d := testData(t)
	dom := d.Domain("race")
	if len(dom) != 2 || dom[0] != "white" || dom[1] != "black" {
		t.Fatalf("Domain = %v", dom)
	}
	codes, dict := d.Codes("race")
	if len(codes) != 6 || codes[5] != -1 {
		t.Fatalf("Codes = %v", codes)
	}
	if dict[codes[0]] != "white" {
		t.Fatalf("dict = %v", dict)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := testData(t)
	c := d.Clone()
	if err := c.SetValue(0, "race", Cat("asian")); err != nil {
		t.Fatal(err)
	}
	if d.Value(0, "race").Cat != "white" {
		t.Fatal("Clone shares storage with original")
	}
}

func TestGatherAndHead(t *testing.T) {
	d := testData(t)
	g := d.Gather([]int{3, 0, 3})
	if g.NumRows() != 3 {
		t.Fatalf("Gather rows = %d", g.NumRows())
	}
	if g.Value(0, "id").Cat != "4" || g.Value(1, "id").Cat != "1" || g.Value(2, "id").Cat != "4" {
		t.Fatalf("Gather order wrong: %v", g)
	}
	h := d.Head(2)
	if h.NumRows() != 2 || h.Value(1, "id").Cat != "2" {
		t.Fatalf("Head wrong: %v", h)
	}
	if d.Head(100).NumRows() != 6 {
		t.Fatal("Head over-length should clamp")
	}
}

func TestSampleRows(t *testing.T) {
	d := testData(t)
	r := rng.New(1)
	s := d.SampleRows(r, 3)
	if s.NumRows() != 3 {
		t.Fatalf("sample size = %d", s.NumRows())
	}
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		id := s.Value(i, "id").Cat
		if ids[id] {
			t.Fatal("sample without replacement repeated a row")
		}
		ids[id] = true
	}
	all := d.SampleRows(r, 100)
	if all.NumRows() != 6 {
		t.Fatalf("oversized sample = %d rows", all.NumRows())
	}
}

func TestSplit(t *testing.T) {
	d := testData(t)
	a, b := d.Split(rng.New(2), 0.5)
	if a.NumRows()+b.NumRows() != 6 {
		t.Fatalf("split sizes %d+%d", a.NumRows(), b.NumRows())
	}
	if a.NumRows() != 3 {
		t.Fatalf("first split = %d rows, want 3", a.NumRows())
	}
}

func TestAppendDataset(t *testing.T) {
	d := testData(t)
	e := New(testSchema())
	if err := e.AppendDataset(d); err != nil {
		t.Fatal(err)
	}
	if e.NumRows() != 6 {
		t.Fatalf("AppendDataset rows = %d", e.NumRows())
	}
	mismatch := New(NewSchema(Attribute{Name: "x", Kind: Numeric}))
	if err := mismatch.AppendDataset(d); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestStringRendering(t *testing.T) {
	d := testData(t)
	s := d.String()
	if !strings.Contains(s, "white") || !strings.Contains(s, "∅") {
		t.Fatalf("String rendering missing content:\n%s", s)
	}
	if v := NullValue(Numeric); v.String() != "∅" {
		t.Fatal("null Value render")
	}
	if !Num(2.5).Equal(Num(2.5)) || Cat("a").Equal(Cat("b")) || Cat("a").Equal(Num(1)) {
		t.Fatal("Value.Equal wrong")
	}
	if !NullValue(Numeric).Equal(NullValue(Categorical)) {
		t.Fatal("nulls should be equal across kinds")
	}
}
