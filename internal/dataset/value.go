// Package dataset is REDI's relational substrate: typed columnar tables
// with schemas, null handling, predicates, projection, selection, hash
// joins, group indexes over sensitive attributes, and CSV input/output.
//
// Every higher-level subsystem (coverage, distribution tailoring, profiling,
// cleaning, discovery, fairness auditing) operates on *dataset.Dataset, so
// the representation favors whole-column scans: each attribute is stored as
// a typed column with a null mask rather than as per-row structs.
package dataset

import (
	"fmt"
	"strconv"
)

// Kind is the type of an attribute.
type Kind int

const (
	// Categorical attributes hold strings drawn from a finite domain
	// (dictionary-encoded internally).
	Categorical Kind = iota
	// Numeric attributes hold float64 values.
	Numeric
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Role describes how an attribute is used by responsible-data-science
// tooling. Roles drive defaults: audits group by Sensitive attributes,
// models predict Target attributes from Feature attributes.
type Role int

const (
	// Feature attributes are model inputs (the default role).
	Feature Role = iota
	// Sensitive attributes identify demographic groups (e.g. race, sex).
	Sensitive
	// Target attributes are prediction labels.
	Target
	// ID attributes identify entities and are excluded from analysis.
	ID
)

// String returns the lowercase name of the role.
func (r Role) String() string {
	switch r {
	case Feature:
		return "feature"
	case Sensitive:
		return "sensitive"
	case Target:
		return "target"
	case ID:
		return "id"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Value is a single cell: either a categorical string, a numeric float64,
// or null. The zero Value is a null categorical.
type Value struct {
	Kind Kind
	Null bool
	Cat  string
	Num  float64
}

// NullValue returns a null cell of the given kind.
func NullValue(k Kind) Value { return Value{Kind: k, Null: true} }

// Cat returns a categorical cell holding s.
func Cat(s string) Value { return Value{Kind: Categorical, Cat: s} }

// Num returns a numeric cell holding x.
func Num(x float64) Value { return Value{Kind: Numeric, Num: x} }

// String renders the cell for display; nulls render as "∅".
func (v Value) String() string {
	if v.Null {
		return "∅"
	}
	if v.Kind == Categorical {
		return v.Cat
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// Equal reports whether two cells hold the same content. Nulls are equal
// only to nulls of any kind.
func (v Value) Equal(w Value) bool {
	if v.Null || w.Null {
		return v.Null && w.Null
	}
	if v.Kind != w.Kind {
		return false
	}
	if v.Kind == Categorical {
		return v.Cat == w.Cat
	}
	return v.Num == w.Num
}
