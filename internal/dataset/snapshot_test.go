package dataset

import (
	"sync"
	"testing"
)

// snapRows materializes every cell of d as strings-by-Value for comparison.
func snapRows(d *Dataset) [][]Value {
	out := make([][]Value, d.NumRows())
	for r := range out {
		out[r] = d.Row(r)
	}
	return out
}

func rowsEqual(a, b [][]Value) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if len(a[r]) != len(b[r]) {
			return false
		}
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				return false
			}
		}
	}
	return true
}

// TestSnapshotIsolationAppend is the append-gap regression test: appending
// onto a dataset with an outstanding snapshot — including values that grow
// the shared dictionaries and rows that land in spare slice capacity — must
// leave the snapshot showing pre-append rows exactly.
func TestSnapshotIsolationAppend(t *testing.T) {
	d := testData(t)
	snap := d.Snapshot()
	want := snapRows(snap)
	wantN := d.NumRows()

	extra := New(testSchema())
	extra.MustAppendRow(Cat("7"), Cat("asian"), Num(40), Cat("pos")) // new dict value
	extra.MustAppendRow(Cat("8"), Cat("black"), Num(19), Cat("neg"))
	if err := d.AppendDataset(extra); err != nil {
		t.Fatal(err)
	}
	d.MustAppendRow(Cat("9"), Cat("white"), Num(77), Cat("pos"))

	if snap.NumRows() != wantN {
		t.Fatalf("snapshot rows = %d after append, want %d", snap.NumRows(), wantN)
	}
	if got := snapRows(snap); !rowsEqual(got, want) {
		t.Fatalf("snapshot rows changed after append:\n got %v\nwant %v", got, want)
	}
	if d.NumRows() != wantN+3 {
		t.Fatalf("live rows = %d, want %d", d.NumRows(), wantN+3)
	}
	// The snapshot's dictionary must not have picked up the new value.
	if _, dict := snap.Codes("race"); len(dict) != 2 {
		t.Fatalf("snapshot dict grew: %v", dict)
	}
	if got := d.Value(wantN, "race"); got != Cat("asian") {
		t.Fatalf("live row after append = %v", got)
	}
}

// TestSnapshotIsolationSet pins the copy-on-write mutation path: SetValue on
// a pre-snapshot row materializes private storage, leaving the snapshot's
// bytes untouched — for both categorical (including a dictionary-growing
// write) and numeric columns.
func TestSnapshotIsolationSet(t *testing.T) {
	d := testData(t)
	snap := d.Snapshot()
	want := snapRows(snap)

	if err := d.SetValue(0, "race", Cat("latino")); err != nil { // grows dict
		t.Fatal(err)
	}
	if err := d.SetValue(1, "age", Num(99)); err != nil {
		t.Fatal(err)
	}
	if err := d.SetValue(2, "label", NullValue(Categorical)); err != nil {
		t.Fatal(err)
	}
	if got := snapRows(snap); !rowsEqual(got, want) {
		t.Fatalf("snapshot rows changed after SetValue:\n got %v\nwant %v", got, want)
	}
	if d.Value(0, "race") != Cat("latino") || d.Value(1, "age") != Num(99) {
		t.Fatal("live dataset missing SetValue writes")
	}
}

// TestSnapshotAppendToSnapshotDetaches: a snapshot is a capped view, so
// appending to it must reallocate privately and never write into the live
// dataset's tail.
func TestSnapshotAppendToSnapshotDetaches(t *testing.T) {
	d := testData(t)
	snap := d.Snapshot()
	liveWant := snapRows(d)

	snap.MustAppendRow(Cat("x"), Cat("white"), Num(1), Cat("neg"))
	d.MustAppendRow(Cat("9"), Cat("black"), Num(2), Cat("pos"))

	if got := d.Value(d.NumRows()-1, "id"); got != Cat("9") {
		t.Fatalf("live tail = %v, want Cat(9)", got)
	}
	if got := snapRows(d)[:len(liveWant)]; !rowsEqual(got, liveWant) {
		t.Fatalf("live prefix changed after snapshot append")
	}
	if got := snap.Value(snap.NumRows()-1, "id"); got != Cat("x") {
		t.Fatalf("snapshot tail = %v, want Cat(x)", got)
	}
}

// TestSnapshotAppendMidRead exercises the serving pattern under the race
// detector: concurrent readers iterate a snapshot while the writer keeps
// appending (including dictionary-growing values) and repairing old rows.
// Readers must observe pre-append rows exactly, on every pass.
func TestSnapshotAppendMidRead(t *testing.T) {
	d := testData(t)
	snap := d.Snapshot()
	want := snapRows(snap)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := snapRows(snap); !rowsEqual(got, want) {
					t.Error("reader saw mutated snapshot")
					return
				}
				codes, dict := snap.Codes("race")
				if len(codes) != len(want) || len(dict) != 2 {
					t.Errorf("reader saw torn codes: %d rows, dict %v", len(codes), dict)
					return
				}
			}
		}()
	}

	for i := 0; i < 200; i++ {
		d.MustAppendRow(Cat("n"), Cat("groupX"), Num(float64(i)), Cat("pos"))
		if i%10 == 0 {
			if err := d.SetValue(0, "age", Num(float64(i))); err != nil {
				t.Error(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if d.NumRows() != len(want)+200 {
		t.Fatalf("live rows = %d", d.NumRows())
	}
}

func TestCodesRange(t *testing.T) {
	d := testData(t)
	codes, dict := d.CodesRange("race", 2, 5)
	wantCodes := []int32{0, 1, 0} // white, black, white
	for i, c := range codes {
		if c != wantCodes[i] {
			t.Fatalf("codes[%d] = %d, want %d", i, c, wantCodes[i])
		}
	}
	if len(dict) != 2 || dict[0] != "white" || dict[1] != "black" {
		t.Fatalf("dict = %v", dict)
	}
	// Null shows as -1.
	codes, _ = d.CodesRange("race", 5, 6)
	if len(codes) != 1 || codes[0] != -1 {
		t.Fatalf("null code = %v", codes)
	}
}
