package dataset

import (
	"fmt"
	"math"
)

// The predicate combinators (Eq, In, Range, Compare, NotNull, IsNull, And,
// Or, Not) live in pred.go; they build compilable expression trees that the
// selection entry points below recognize and run through the bytecode VM's
// vectorized bitmap driver. Opaque closures (PredicateFunc) take the
// interpreted per-row path.

// Select returns the rows matching p, preserving order. Compilable
// predicates evaluate vectorized (one fused scan per referenced column plus
// word kernels); the result is pre-counted from the match bitmap so the
// index slice is exactly sized. The result is never nil, even when empty.
func (d *Dataset) Select(p Predicate) *Dataset {
	return d.Gather(d.SelectIndices(p))
}

// SelectIndices returns the indices of rows matching p, in ascending
// order. The slice is non-nil even when no row matches.
func (d *Dataset) SelectIndices(p Predicate) []int {
	if cp, ok := CompilePredicate(d, p); ok {
		return cp.SelectIndices()
	}
	idx := make([]int, 0)
	for r := 0; r < d.n; r++ {
		if p.Match(d, r) {
			idx = append(idx, r)
		}
	}
	return idx
}

// Count returns the number of rows matching p.
func (d *Dataset) Count(p Predicate) int {
	if cp, ok := CompilePredicate(d, p); ok {
		return cp.CountFast()
	}
	n := 0
	for r := 0; r < d.n; r++ {
		if p.Match(d, r) {
			n++
		}
	}
	return n
}

// Project returns a dataset containing only the named attributes, in the
// given order. It returns an error if a name is unknown.
func (d *Dataset) Project(attrs ...string) (*Dataset, error) {
	idxs := make([]int, len(attrs))
	newAttrs := make([]Attribute, len(attrs))
	for i, name := range attrs {
		j, ok := d.schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("dataset: unknown attribute %q", name)
		}
		idxs[i] = j
		newAttrs[i] = d.schema.Attr(j)
	}
	out := &Dataset{schema: NewSchema(newAttrs...), n: d.n}
	out.cols = make([]column, len(idxs))
	for i, j := range idxs {
		out.cols[i] = d.cols[j].clone()
	}
	return out, nil
}

// Join computes the inner equi-join of d and other on the named attributes
// (hash join, d as build side). The result schema is d's attributes followed
// by other's attributes except its join key, which is deduplicated; a name
// collision on non-key attributes is resolved by suffixing "_r".
//
// The join runs on column storage: categorical keys bucket build-side rows
// by dictionary code and translate the probe side's dictionary once, so the
// probe loop compares nothing — it indexes a remap table; numeric keys hash
// the raw float64 bits. Matched row pairs are collected first and the
// output columns gathered in bulk, never boxing a Value.
func (d *Dataset) Join(other *Dataset, leftKey, rightKey string) (*Dataset, error) {
	li, ok := d.schema.Index(leftKey)
	if !ok {
		return nil, fmt.Errorf("dataset: unknown left join key %q", leftKey)
	}
	ri, ok := other.schema.Index(rightKey)
	if !ok {
		return nil, fmt.Errorf("dataset: unknown right join key %q", rightKey)
	}
	if d.schema.Attr(li).Kind != other.schema.Attr(ri).Kind {
		return nil, fmt.Errorf("dataset: join key kind mismatch: %s vs %s",
			d.schema.Attr(li).Kind, other.schema.Attr(ri).Kind)
	}

	// Output schema.
	attrs := d.schema.Attrs()
	taken := map[string]bool{}
	for _, a := range attrs {
		taken[a.Name] = true
	}
	var rightAttrs []Attribute
	var rightCols []int
	for c := 0; c < other.schema.Len(); c++ {
		if c == ri {
			continue
		}
		a := other.schema.Attr(c)
		if taken[a.Name] {
			a.Name += "_r"
		}
		taken[a.Name] = true
		rightAttrs = append(rightAttrs, a)
		rightCols = append(rightCols, c)
	}

	// Matched (left, right) row pairs, in probe order (right rows ascending,
	// build rows ascending within each key) — the same order the seed's
	// string-keyed join produced.
	var leftIdx, rightIdx []int
	switch lc := d.cols[li].(type) {
	case *catColumn:
		rc := other.cols[ri].(*catColumn)
		// Bucket build rows by dictionary code: codes are dense, so a slice
		// replaces the hash map entirely.
		buckets := make([][]int, len(lc.dict))
		for r, code := range lc.codes {
			if code >= 0 {
				buckets[code] = append(buckets[code], r)
			}
		}
		// Translate the probe dictionary into build codes once (-1 = value
		// absent from the build side, matches nothing).
		remap := make([]int32, len(rc.dict))
		for code, s := range rc.dict {
			if lcode, present := lc.index[s]; present {
				remap[code] = lcode
			} else {
				remap[code] = -1
			}
		}
		// Pre-count matches so the pair slices allocate once.
		total := 0
		for _, code := range rc.codes {
			if code >= 0 {
				if lcode := remap[code]; lcode >= 0 {
					total += len(buckets[lcode])
				}
			}
		}
		leftIdx = make([]int, 0, total)
		rightIdx = make([]int, 0, total)
		for r, code := range rc.codes {
			if code < 0 {
				continue
			}
			lcode := remap[code]
			if lcode < 0 {
				continue
			}
			for _, lr := range buckets[lcode] {
				leftIdx = append(leftIdx, lr)
				rightIdx = append(rightIdx, r)
			}
		}
	case *numColumn:
		rc := other.cols[ri].(*numColumn)
		build := make(map[uint64][]int, d.n)
		for r, v := range lc.vals {
			if !lc.nulls[r] {
				k := math.Float64bits(v)
				build[k] = append(build[k], r)
			}
		}
		total := 0
		for r, v := range rc.vals {
			if !rc.nulls[r] {
				total += len(build[math.Float64bits(v)])
			}
		}
		leftIdx = make([]int, 0, total)
		rightIdx = make([]int, 0, total)
		for r, v := range rc.vals {
			if rc.nulls[r] {
				continue
			}
			for _, lr := range build[math.Float64bits(v)] {
				leftIdx = append(leftIdx, lr)
				rightIdx = append(rightIdx, r)
			}
		}
	}

	out := &Dataset{
		schema: NewSchema(append(attrs, rightAttrs...)...),
		cols:   make([]column, 0, len(attrs)+len(rightAttrs)),
		n:      len(leftIdx),
	}
	for _, c := range d.cols {
		out.cols = append(out.cols, c.gather(leftIdx))
	}
	for _, c := range rightCols {
		out.cols = append(out.cols, other.cols[c].gather(rightIdx))
	}
	return out, nil
}
