package dataset

import (
	"fmt"
)

// Predicate selects rows of a dataset.
type Predicate func(d *Dataset, row int) bool

// Eq returns a predicate matching rows whose attr equals the categorical
// value v (nulls never match).
func Eq(attr, v string) Predicate {
	return func(d *Dataset, row int) bool {
		cell := d.Value(row, attr)
		return !cell.Null && cell.Kind == Categorical && cell.Cat == v
	}
}

// Range returns a predicate matching rows whose numeric attr lies in
// [lo, hi] (nulls never match).
func Range(attr string, lo, hi float64) Predicate {
	return func(d *Dataset, row int) bool {
		cell := d.Value(row, attr)
		return !cell.Null && cell.Kind == Numeric && cell.Num >= lo && cell.Num <= hi
	}
}

// NotNull returns a predicate matching rows where attr is non-null.
func NotNull(attr string) Predicate {
	return func(d *Dataset, row int) bool { return !d.IsNull(row, attr) }
}

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(d *Dataset, row int) bool {
		for _, p := range ps {
			if !p(d, row) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(ps ...Predicate) Predicate {
	return func(d *Dataset, row int) bool {
		for _, p := range ps {
			if p(d, row) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return func(d *Dataset, row int) bool { return !p(d, row) }
}

// Select returns the rows matching p, preserving order.
func (d *Dataset) Select(p Predicate) *Dataset {
	var idx []int
	for r := 0; r < d.n; r++ {
		if p(d, r) {
			idx = append(idx, r)
		}
	}
	return d.Gather(idx)
}

// SelectIndices returns the indices of rows matching p.
func (d *Dataset) SelectIndices(p Predicate) []int {
	var idx []int
	for r := 0; r < d.n; r++ {
		if p(d, r) {
			idx = append(idx, r)
		}
	}
	return idx
}

// Count returns the number of rows matching p.
func (d *Dataset) Count(p Predicate) int {
	n := 0
	for r := 0; r < d.n; r++ {
		if p(d, r) {
			n++
		}
	}
	return n
}

// Project returns a dataset containing only the named attributes, in the
// given order. It returns an error if a name is unknown.
func (d *Dataset) Project(attrs ...string) (*Dataset, error) {
	idxs := make([]int, len(attrs))
	newAttrs := make([]Attribute, len(attrs))
	for i, name := range attrs {
		j, ok := d.schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("dataset: unknown attribute %q", name)
		}
		idxs[i] = j
		newAttrs[i] = d.schema.Attr(j)
	}
	out := &Dataset{schema: NewSchema(newAttrs...), n: d.n}
	out.cols = make([]column, len(idxs))
	for i, j := range idxs {
		out.cols[i] = d.cols[j].clone()
	}
	return out, nil
}

// Join computes the inner equi-join of d and other on the named attributes
// (hash join, d as build side). The result schema is d's attributes followed
// by other's attributes except its join key, which is deduplicated; a name
// collision on non-key attributes is resolved by suffixing "_r".
func (d *Dataset) Join(other *Dataset, leftKey, rightKey string) (*Dataset, error) {
	li, ok := d.schema.Index(leftKey)
	if !ok {
		return nil, fmt.Errorf("dataset: unknown left join key %q", leftKey)
	}
	ri, ok := other.schema.Index(rightKey)
	if !ok {
		return nil, fmt.Errorf("dataset: unknown right join key %q", rightKey)
	}
	if d.schema.Attr(li).Kind != other.schema.Attr(ri).Kind {
		return nil, fmt.Errorf("dataset: join key kind mismatch: %s vs %s",
			d.schema.Attr(li).Kind, other.schema.Attr(ri).Kind)
	}

	// Output schema.
	attrs := d.schema.Attrs()
	taken := map[string]bool{}
	for _, a := range attrs {
		taken[a.Name] = true
	}
	var rightAttrs []Attribute
	var rightCols []int
	for c := 0; c < other.schema.Len(); c++ {
		if c == ri {
			continue
		}
		a := other.schema.Attr(c)
		if taken[a.Name] {
			a.Name += "_r"
		}
		taken[a.Name] = true
		rightAttrs = append(rightAttrs, a)
		rightCols = append(rightCols, c)
	}
	out := New(NewSchema(append(attrs, rightAttrs...)...))

	// Build hash table on d's key.
	build := make(map[string][]int, d.n)
	for r := 0; r < d.n; r++ {
		v := d.cols[li].value(r)
		if v.Null {
			continue
		}
		k := v.String()
		build[k] = append(build[k], r)
	}
	// Probe.
	for r := 0; r < other.n; r++ {
		v := other.cols[ri].value(r)
		if v.Null {
			continue
		}
		for _, lr := range build[v.String()] {
			row := d.Row(lr)
			for _, c := range rightCols {
				row = append(row, other.cols[c].value(r))
			}
			if err := out.AppendRow(row...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
