package dataset

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

func csvTestSchema() *Schema {
	return NewSchema(
		Attribute{Name: "group", Kind: Categorical, Role: Sensitive},
		Attribute{Name: "score", Kind: Numeric, Role: Feature},
	)
}

// csvRowGen is an io.Reader that synthesizes CSV rows on the fly, so the
// large-file ingest test never holds the whole input in memory — the point
// being tested on the consumer side.
type csvRowGen struct {
	rows int
	next int
	buf  []byte
}

func (g *csvRowGen) Read(p []byte) (int, error) {
	for len(g.buf) == 0 {
		if g.next > g.rows {
			return 0, io.EOF
		}
		if g.next == 0 {
			g.buf = append(g.buf, "group,score\n"...)
		} else {
			i := g.next - 1
			// Every 7th score is null; groups cycle through 5 values.
			if i%7 == 0 {
				g.buf = fmt.Appendf(g.buf, "g%d,\n", i%5)
			} else {
				g.buf = fmt.Appendf(g.buf, "g%d,%d.5\n", i%5, i)
			}
		}
		g.next++
	}
	n := copy(p, g.buf)
	g.buf = g.buf[n:]
	return n, nil
}

// TestScanCSVLargeFileStreams ingests a synthesized 300k-row CSV through
// ScanCSV and checks counts and spot values. The input reader generates
// bytes lazily and the sink keeps only aggregates, so peak memory stays
// bounded regardless of file size — the streaming contract of satellite 1.
func TestScanCSVLargeFileStreams(t *testing.T) {
	const rows = 300_000
	schema := csvTestSchema()
	var n, nulls int
	var sum float64
	groupCounts := make(map[string]int)
	err := ScanCSV(&csvRowGen{rows: rows}, schema, func(row []Value) error {
		if row[1].Null {
			nulls++
		} else {
			sum += row[1].Num
		}
		groupCounts[row[0].Cat]++
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("ScanCSV: %v", err)
	}
	if n != rows {
		t.Fatalf("scanned %d rows, want %d", n, rows)
	}
	wantNulls := (rows + 6) / 7
	if nulls != wantNulls {
		t.Fatalf("null scores = %d, want %d", nulls, wantNulls)
	}
	var wantSum float64
	for i := 0; i < rows; i++ {
		if i%7 != 0 {
			wantSum += float64(i) + 0.5
		}
	}
	if sum != wantSum {
		t.Fatalf("score sum = %v, want %v", sum, wantSum)
	}
	for g, c := range groupCounts {
		if c < rows/5-1 || c > rows/5+1 {
			t.Fatalf("group %s count = %d, want ~%d", g, c, rows/5)
		}
	}
}

// TestScanCSVRowReuseAndErrors pins the documented contract: the row slice
// is reused between callbacks (values must be copied to be kept), string
// values survive the reuse, and a callback error aborts the scan verbatim.
func TestScanCSVRowReuseAndErrors(t *testing.T) {
	schema := csvTestSchema()
	in := "group,score\na,1\nb,2\nc,3\n"

	var firstRow []Value
	var cats []string
	calls := 0
	err := ScanCSV(strings.NewReader(in), schema, func(row []Value) error {
		if calls == 0 {
			firstRow = row
		} else if &row[0] != &firstRow[0] {
			t.Fatal("ScanCSV allocated a fresh row slice per record")
		}
		cats = append(cats, row[0].Cat)
		calls++
		return nil
	})
	if err != nil {
		t.Fatalf("ScanCSV: %v", err)
	}
	if want := []string{"a", "b", "c"}; strings.Join(cats, "") != strings.Join(want, "") {
		t.Fatalf("cats = %v, want %v", cats, want)
	}

	sentinel := fmt.Errorf("stop here")
	calls = 0
	err = ScanCSV(strings.NewReader(in), schema, func(row []Value) error {
		calls++
		if row[0].Cat == "b" {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("callback error not returned verbatim: %v", err)
	}
	if calls != 2 {
		t.Fatalf("scan did not abort at the error: %d calls", calls)
	}
}

// TestReadCSVMatchesScan pins ReadCSV as a thin sink over ScanCSV and
// round-trips through WriteCSV.
func TestReadCSVMatchesScan(t *testing.T) {
	schema := csvTestSchema()
	in := "group,score\na,1.5\nb,\n,3\n"
	d, err := ReadCSV(strings.NewReader(in), schema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if d.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", d.NumRows())
	}
	if v := d.Value(1, "score"); !v.Null {
		t.Fatalf("row 1 score = %v, want null", v)
	}
	if v := d.Value(2, "group"); !v.Null {
		t.Fatalf("row 2 group = %v, want null", v)
	}
	var sb strings.Builder
	if err := d.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	d2, err := ReadCSV(strings.NewReader(sb.String()), schema)
	if err != nil {
		t.Fatalf("ReadCSV round-trip: %v", err)
	}
	if d2.NumRows() != d.NumRows() {
		t.Fatalf("round-trip rows = %d, want %d", d2.NumRows(), d.NumRows())
	}
	for r := 0; r < d.NumRows(); r++ {
		for _, a := range schema.Names() {
			if d.Value(r, a) != d2.Value(r, a) {
				t.Fatalf("round-trip mismatch at row %d attr %s", r, a)
			}
		}
	}

	// Malformed inputs surface clean errors, not partial datasets.
	if _, err := ReadCSV(strings.NewReader("wrong,header\n"), schema); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("group,score\na,notanumber\n"), schema); err == nil {
		t.Fatal("bad numeric accepted")
	}
}
