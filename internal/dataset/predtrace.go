package dataset

import (
	"redi/internal/bitmap"
	"redi/internal/trace"
)

// Traced wrappers around the predicate VM and GroupBy. Each takes a
// parent span and records one child span whose attributes are the
// evaluation's deterministic work tallies (rows scanned, bitmap
// kernels, partitions pruned, matches). A nil span routes straight to
// the untraced hot path, so disabled tracing costs one branch.

// CountFastTraced is CountFast plus a "dataset.predicate_count" span.
func (cp *CompiledPredicate) CountFastTraced(sp *trace.Span) int {
	if sp == nil {
		return cp.CountFast()
	}
	ev := sp.Child("dataset.predicate_count")
	n := cp.SelectBitmap().Count()
	ev.SetAttr("rows_scanned", cp.lastRows)
	ev.SetAttr("bitmap_ops", cp.lastOps)
	ev.SetAttr("matches", int64(n))
	ev.End()
	return n
}

// SelectTraced is Select plus a "dataset.predicate_select" span.
func (cp *CompiledPredicate) SelectTraced(sp *trace.Span) *Dataset {
	if sp == nil {
		return cp.Select()
	}
	ev := sp.Child("dataset.predicate_select")
	idx := cp.SelectIndices()
	ev.SetAttr("rows_scanned", cp.lastRows)
	ev.SetAttr("bitmap_ops", cp.lastOps)
	ev.SetAttr("matches", int64(len(idx)))
	ev.End()
	return cp.d.Gather(idx)
}

// CountTraced is Count plus a "dataset.predicate_count" span carrying
// the partition pruning tallies.
func (pp *PartitionedPredicate) CountTraced(workers int, sp *trace.Span) int {
	if sp == nil {
		return pp.Count(workers)
	}
	ev := sp.Child("dataset.predicate_count")
	counts := make([]int, pp.pd.NumPartitions())
	st := pp.run(workers, func(p int, m bitmap.Bitmap) { counts[p] = m.Count() })
	total := 0
	for _, c := range counts {
		total += c
	}
	setPartAttrs(ev, st, int64(total))
	ev.End()
	return total
}

// SelectIndicesTraced is SelectIndices plus a
// "dataset.predicate_select" span carrying the pruning tallies.
func (pp *PartitionedPredicate) SelectIndicesTraced(workers int, sp *trace.Span) []int {
	if sp == nil {
		return pp.SelectIndices(workers)
	}
	ev := sp.Child("dataset.predicate_select")
	out := bitmap.New(pp.pd.NumRows())
	st := pp.run(workers, func(p int, m bitmap.Bitmap) {
		copy(out[p*pp.pd.PartRows()/64:], m)
	})
	idx := make([]int, 0, out.Count())
	out.ForEach(func(r int) { idx = append(idx, r) })
	setPartAttrs(ev, st, int64(len(idx)))
	ev.End()
	return idx
}

func setPartAttrs(ev *trace.Span, st partEvalStats, matches int64) {
	ev.SetAttr("partitions_scanned", st.scanned)
	ev.SetAttr("partitions_pruned", st.pruned)
	ev.SetAttr("rows_scanned", st.rows)
	ev.SetAttr("bitmap_ops", st.kernels)
	ev.SetAttr("matches", matches)
}

// GroupByTraced is GroupBy plus a "dataset.groupby" span recording the
// rows grouped and distinct gids produced.
func (d *Dataset) GroupByTraced(sp *trace.Span, attrs ...string) *Groups {
	if sp == nil {
		return d.GroupBy(attrs...)
	}
	ev := sp.Child("dataset.groupby")
	g := d.GroupBy(attrs...)
	ev.SetAttr("rows", int64(d.NumRows()))
	ev.SetAttr("gids", int64(g.NumGroups()))
	ev.End()
	return g
}
