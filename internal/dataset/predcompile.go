package dataset

import (
	"fmt"
	"strings"

	"redi/internal/bitmap"
	"redi/internal/obs"
)

// pop is a bytecode opcode. Leaf loads scan one bound column and push one
// boolean per row; And/Or/Not pop operands off the boolean stack. The same
// program drives both the row-at-a-time VM (CompiledPredicate.Match) and
// the vectorized bitmap driver (SelectBitmap), which replays it with a
// stack of row bitmaps and word kernels instead of per-row booleans.
type pop uint8

const (
	pConstOp    pop = iota // push const (a != 0)
	pEqCode                // push catCols[a][row] == b
	pInSet                 // push sets[b][code+1] on catCols[a] (slot 0 = null)
	pRangeOp               // push !null && f0 <= v <= f1 on num slot a
	pCmpOp                 // push !null && v <cmp b> f0 on num slot a
	pNotNullCat            // push catCols[a][row] >= 0
	pNotNullNum            // push !numNulls[a][row]
	pIsNullCat             // push catCols[a][row] < 0
	pIsNullNum             // push numNulls[a][row]
	pAndOp                 // pop b, pop a, push a && b
	pOrOp                  // pop b, pop a, push a || b
	pNotOp                 // pop a, push !a
)

// pinstr is one fixed-width instruction.
type pinstr struct {
	op     pop
	a, b   int32
	f0, f1 float64
}

// CompiledPredicate is a predicate bytecode program bound to one dataset:
// attribute names are resolved to column storage and categorical literals
// to dictionary codes at compile time, so evaluation compares int32 codes
// and float64s with no per-row allocation or string work.
//
// The program is bound to the dataset's rows as of compilation; append to
// the dataset and you must recompile. Match is safe for concurrent use;
// the vectorized entry points (SelectBitmap, CountFast, Select,
// SelectIndices) share preallocated scratch bitmaps and must not be called
// concurrently on one CompiledPredicate.
type CompiledPredicate struct {
	d    *Dataset
	node *predNode
	code []pinstr
	n    int // rows bound
	// Bound column storage, indexed by the instruction's a operand.
	catCols  [][]int32
	catDicts [][]string
	catAttrs []string
	numVals  [][]float64
	numNulls [][]bool
	numAttrs []string
	sets     [][]bool // pInSet membership, indexed by dictionary code + 1 (slot 0 = null, always false)
	eqLits   []string // pEqCode literal (by b-side index) for Disassemble
	depth    int      // max boolean-stack depth
	// verified is set once the program passes bytecode verification (see
	// predverify.go); the VM entry points refuse to run without it.
	verified bool
	// Vectorized evaluation scratch, allocated once at compile time.
	bms  []bitmap.Bitmap
	full bitmap.Bitmap
	// Deterministic obs counters (nil-safe when observability is off).
	cRows, cOps *obs.Counter
	// Last vectorized evaluation's work tallies, published for traced
	// wrappers. Like bms, they are per-evaluation scratch: valid until
	// the next vectorized evaluation, not safe for concurrent use.
	lastRows, lastOps int64
}

// CompilePredicate compiles p against d. It reports ok=false when p is an
// opaque closure (PredicateFunc), which cannot compile; predicates built
// from the package combinators always compile. Unknown attribute names
// panic, matching the interpreted path's Value lookup.
func CompilePredicate(d *Dataset, p Predicate) (*CompiledPredicate, bool) {
	if p.node == nil {
		return nil, false
	}
	return compileNode(d, p.node), true
}

// compiler carries the per-compile state: slot maps deduplicate column
// bindings so a column referenced by several leaves is bound once.
type compiler struct {
	d        *Dataset
	cp       *CompiledPredicate
	catSlots map[int]int32
	numSlots map[int]int32
	sp, max  int
}

func compileNode(d *Dataset, n *predNode) *CompiledPredicate {
	cp := &CompiledPredicate{d: d, node: n, n: d.n}
	c := &compiler{d: d, cp: cp, catSlots: map[int]int32{}, numSlots: map[int]int32{}}
	folded := c.fold(n)
	c.emit(folded)
	cp.depth = c.max
	cp.bms = make([]bitmap.Bitmap, cp.depth)
	for i := range cp.bms {
		cp.bms[i] = bitmap.New(d.n)
	}
	cp.full = bitmap.New(d.n)
	for w := range cp.full {
		cp.full[w] = ^uint64(0)
	}
	if rem := d.n % 64; rem != 0 && len(cp.full) > 0 {
		cp.full[len(cp.full)-1] = (uint64(1) << uint(rem)) - 1
	}
	// Every compiled program passes the bytecode verifier before it is
	// handed out. A failure here is a compiler bug, not user error: the
	// panic keeps an unsafe program from ever reaching the unchecked VM
	// loops.
	if err := cp.verify(); err != nil {
		panic(fmt.Sprintf("dataset: compiler produced invalid program: %v\n%s", err, cp.Disassemble()))
	}
	cp.verified = true
	reg := obs.Active(nil)
	reg.Counter("dataset.predicate_compiles").Inc()
	reg.Counter("dataset.predicate_verifies").Inc()
	cp.cRows = reg.Counter("dataset.predicate_rows_scanned")
	cp.cOps = reg.Counter("dataset.predicate_bitmap_ops")
	return cp
}

var constFalse = &predNode{op: opConst, val: false}
var constTrue = &predNode{op: opConst, val: true}

// fold resolves each leaf against the dataset and constant-folds: a
// categorical literal absent from the column's dictionary can match no row,
// a kind-mismatched leaf matches no row (the interpreted semantics), and
// And/Or/Not absorb constant children. After folding, opConst can only
// appear as the root.
func (c *compiler) fold(n *predNode) *predNode {
	switch n.op {
	case opEq:
		col, ok := c.d.cols[c.d.schema.MustIndex(n.attr)].(*catColumn)
		if !ok {
			return constFalse
		}
		if _, present := col.index[n.vals[0]]; !present {
			return constFalse
		}
		return n
	case opIn:
		col, ok := c.d.cols[c.d.schema.MustIndex(n.attr)].(*catColumn)
		if !ok {
			return constFalse
		}
		any := false
		for _, v := range n.vals {
			if _, present := col.index[v]; present {
				any = true
				break
			}
		}
		if !any {
			return constFalse
		}
		return n
	case opRange:
		if _, ok := c.d.cols[c.d.schema.MustIndex(n.attr)].(*numColumn); !ok || n.lo > n.hi {
			return constFalse
		}
		return n
	case opCmp:
		if _, ok := c.d.cols[c.d.schema.MustIndex(n.attr)].(*numColumn); !ok {
			return constFalse
		}
		return n
	case opNotNull, opIsNull:
		c.d.schema.MustIndex(n.attr) // unknown attribute panics here
		return n
	case opNot:
		k := c.fold(n.kids[0])
		if k.op == opConst {
			if k.val {
				return constFalse
			}
			return constTrue
		}
		return &predNode{op: opNot, kids: []*predNode{k}}
	case opAnd, opOr:
		// absorbing/neutral constants: false kills an And, true an Or.
		kill := n.op == opOr
		var kids []*predNode
		for _, k := range n.kids {
			f := c.fold(k)
			if f.op == opConst {
				if f.val == kill {
					if kill {
						return constTrue
					}
					return constFalse
				}
				continue // neutral element, drop
			}
			kids = append(kids, f)
		}
		switch len(kids) {
		case 0:
			if kill {
				return constFalse
			}
			return constTrue
		case 1:
			return kids[0]
		}
		return &predNode{op: n.op, kids: kids}
	default: // opConst
		return n
	}
}

func (c *compiler) push() {
	c.sp++
	if c.sp > c.max {
		c.max = c.sp
	}
}

func (c *compiler) catSlot(attr string) int32 {
	ci := c.d.schema.MustIndex(attr)
	if s, ok := c.catSlots[ci]; ok {
		return s
	}
	col := c.d.cols[ci].(*catColumn)
	s := int32(len(c.cp.catCols))
	c.cp.catCols = append(c.cp.catCols, col.codes)
	c.cp.catDicts = append(c.cp.catDicts, col.dict)
	c.cp.catAttrs = append(c.cp.catAttrs, attr)
	c.catSlots[ci] = s
	return s
}

func (c *compiler) numSlot(attr string) int32 {
	ci := c.d.schema.MustIndex(attr)
	if s, ok := c.numSlots[ci]; ok {
		return s
	}
	col := c.d.cols[ci].(*numColumn)
	s := int32(len(c.cp.numVals))
	c.cp.numVals = append(c.cp.numVals, col.vals)
	c.cp.numNulls = append(c.cp.numNulls, col.nulls)
	c.cp.numAttrs = append(c.cp.numAttrs, attr)
	c.numSlots[ci] = s
	return s
}

// emit walks the folded tree in postorder, appending instructions.
func (c *compiler) emit(n *predNode) {
	switch n.op {
	case opConst:
		v := int32(0)
		if n.val {
			v = 1
		}
		c.cp.code = append(c.cp.code, pinstr{op: pConstOp, a: v})
		c.push()
	case opEq:
		s := c.catSlot(n.attr)
		col := c.d.cols[c.d.schema.MustIndex(n.attr)].(*catColumn)
		code := col.index[n.vals[0]] // present by folding
		c.cp.eqLits = append(c.cp.eqLits, n.vals[0])
		c.cp.code = append(c.cp.code, pinstr{op: pEqCode, a: s, b: code})
		c.push()
	case opIn:
		s := c.catSlot(n.attr)
		col := c.d.cols[c.d.schema.MustIndex(n.attr)].(*catColumn)
		// Offset-by-one membership table: slot 0 answers for the null code
		// (-1) and stays false, so the scan kernels index with code+1 and
		// need no separate null branch.
		set := make([]bool, len(col.dict)+1)
		for _, v := range n.vals {
			if code, present := col.index[v]; present {
				set[code+1] = true
			}
		}
		si := int32(len(c.cp.sets))
		c.cp.sets = append(c.cp.sets, set)
		c.cp.code = append(c.cp.code, pinstr{op: pInSet, a: s, b: si})
		c.push()
	case opRange:
		c.cp.code = append(c.cp.code, pinstr{op: pRangeOp, a: c.numSlot(n.attr), f0: n.lo, f1: n.hi})
		c.push()
	case opCmp:
		c.cp.code = append(c.cp.code, pinstr{op: pCmpOp, a: c.numSlot(n.attr), b: int32(n.cmp), f0: n.lo})
		c.push()
	case opNotNull, opIsNull:
		ci := c.d.schema.MustIndex(n.attr)
		isNull := n.op == opIsNull
		if _, cat := c.d.cols[ci].(*catColumn); cat {
			op := pNotNullCat
			if isNull {
				op = pIsNullCat
			}
			c.cp.code = append(c.cp.code, pinstr{op: op, a: c.catSlot(n.attr)})
		} else {
			op := pNotNullNum
			if isNull {
				op = pIsNullNum
			}
			c.cp.code = append(c.cp.code, pinstr{op: op, a: c.numSlot(n.attr)})
		}
		c.push()
	case opAnd, opOr:
		c.emit(n.kids[0])
		bop := pAndOp
		if n.op == opOr {
			bop = pOrOp
		}
		for _, k := range n.kids[1:] {
			c.emit(k)
			c.cp.code = append(c.cp.code, pinstr{op: bop})
			c.sp--
		}
	case opNot:
		c.emit(n.kids[0])
		c.cp.code = append(c.cp.code, pinstr{op: pNotOp})
	}
}

// Disassemble renders the program one instruction per line — stable output
// for golden tests and `redi query -explain`.
func (cp *CompiledPredicate) Disassemble() string {
	var sb strings.Builder
	eqi := 0
	for i, in := range cp.code {
		fmt.Fprintf(&sb, "%02d ", i)
		switch in.op {
		case pConstOp:
			fmt.Fprintf(&sb, "const %t", in.a != 0)
		case pEqCode:
			fmt.Fprintf(&sb, "eq %s #%d ; %q", cp.catAttrs[in.a], in.b, cp.eqLits[eqi])
			eqi++
		case pInSet:
			fmt.Fprintf(&sb, "in %s [", cp.catAttrs[in.a])
			first := true
			for slot, member := range cp.sets[in.b] {
				if member {
					if !first {
						sb.WriteByte(' ')
					}
					code := slot - 1
					fmt.Fprintf(&sb, "#%d=%q", code, cp.catDicts[in.a][code])
					first = false
				}
			}
			sb.WriteByte(']')
		case pRangeOp:
			fmt.Fprintf(&sb, "range %s [%g, %g]", cp.numAttrs[in.a], in.f0, in.f1)
		case pCmpOp:
			fmt.Fprintf(&sb, "cmp %s %s %g", cp.numAttrs[in.a], CompareOp(in.b), in.f0)
		case pNotNullCat:
			fmt.Fprintf(&sb, "notnull %s", cp.catAttrs[in.a])
		case pNotNullNum:
			fmt.Fprintf(&sb, "notnull %s", cp.numAttrs[in.a])
		case pIsNullCat:
			fmt.Fprintf(&sb, "isnull %s", cp.catAttrs[in.a])
		case pIsNullNum:
			fmt.Fprintf(&sb, "isnull %s", cp.numAttrs[in.a])
		case pAndOp:
			sb.WriteString("and")
		case pOrOp:
			sb.WriteString("or")
		case pNotOp:
			sb.WriteString("not")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
