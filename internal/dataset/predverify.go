package dataset

import "fmt"

// This file is the bytecode verifier for compiled predicate programs. Both
// VM drivers — the row-at-a-time Match loop and the vectorized
// SelectBitmap driver — index bound column storage, membership tables, and
// scratch bitmaps directly off instruction operands with no per-instruction
// bounds checks, so a malformed program could read out of bounds or corrupt
// the shared boolean stack. verify statically establishes, once at compile
// time, every invariant the hot loops rely on:
//
//   - the bound-state parallel arrays (columns, dictionaries, attribute
//     names, null masks) are mutually consistent and cover the bound row
//     count, so any in-range (slot, row) access is safe;
//   - every instruction's opcode is known — the instruction set has no
//     jumps, so control-flow validity is vacuous: execution is a single
//     linear pass and this check is what keeps it that way;
//   - every operand is in range for its opcode: column slots index bound
//     storage, pEqCode dictionary codes index the slot's dictionary,
//     pInSet tables exist and are sized to the slot's dictionary (+1 for
//     the null code at table slot 0), pCmpOp carries a defined CompareOp;
//   - the boolean stack is statically safe: no operator pops an empty
//     stack, the simulated depth never exceeds the program's declared
//     depth (which sizes both the Match stack and the SelectBitmap
//     scratch), and the program exits with exactly one value on the stack
//     (the match result at depth 1).
//
// Match and SelectBitmap refuse to run a program that has not passed
// verification, so the unchecked hot loops only ever see programs for
// which every access was proven in range.

// verify checks the program against the state it is bound to and returns
// the first violated invariant, or nil when the program is safe to execute.
func (cp *CompiledPredicate) verify() error {
	if len(cp.code) == 0 {
		return fmt.Errorf("dataset: verify: empty program")
	}
	if cp.depth < 1 {
		return fmt.Errorf("dataset: verify: declared stack depth %d < 1", cp.depth)
	}
	if len(cp.bms) < cp.depth {
		return fmt.Errorf("dataset: verify: %d scratch bitmaps for declared depth %d", len(cp.bms), cp.depth)
	}
	if len(cp.catDicts) != len(cp.catCols) || len(cp.catAttrs) != len(cp.catCols) {
		return fmt.Errorf("dataset: verify: categorical binding arrays disagree (%d cols, %d dicts, %d attrs)",
			len(cp.catCols), len(cp.catDicts), len(cp.catAttrs))
	}
	if len(cp.numNulls) != len(cp.numVals) || len(cp.numAttrs) != len(cp.numVals) {
		return fmt.Errorf("dataset: verify: numeric binding arrays disagree (%d vals, %d nulls, %d attrs)",
			len(cp.numVals), len(cp.numNulls), len(cp.numAttrs))
	}
	for s, col := range cp.catCols {
		if len(col) < cp.n {
			return fmt.Errorf("dataset: verify: categorical slot %d has %d rows, program bound to %d", s, len(col), cp.n)
		}
	}
	for s, vals := range cp.numVals {
		if len(vals) < cp.n || len(cp.numNulls[s]) < cp.n {
			return fmt.Errorf("dataset: verify: numeric slot %d has %d/%d rows, program bound to %d",
				s, len(vals), len(cp.numNulls[s]), cp.n)
		}
	}

	sp := 0
	for i := range cp.code {
		in := &cp.code[i]
		switch in.op {
		case pConstOp:
			// Any a is a valid boolean encoding (0 false, nonzero true).
		case pEqCode:
			if err := cp.checkCatSlot(i, in.a); err != nil {
				return err
			}
			if in.b < 0 || int(in.b) >= len(cp.catDicts[in.a]) {
				return fmt.Errorf("dataset: verify: instr %d: dictionary code %d out of range [0, %d)", i, in.b, len(cp.catDicts[in.a]))
			}
		case pInSet:
			if err := cp.checkCatSlot(i, in.a); err != nil {
				return err
			}
			if in.b < 0 || int(in.b) >= len(cp.sets) {
				return fmt.Errorf("dataset: verify: instr %d: set index %d out of range [0, %d)", i, in.b, len(cp.sets))
			}
			// The scan kernels index sets[b][code+1] for any code in the
			// column, including the null code -1 at table slot 0.
			if want := len(cp.catDicts[in.a]) + 1; len(cp.sets[in.b]) != want {
				return fmt.Errorf("dataset: verify: instr %d: set %d has %d slots, slot %d's dictionary needs %d",
					i, in.b, len(cp.sets[in.b]), in.a, want)
			}
		case pRangeOp:
			if err := cp.checkNumSlot(i, in.a); err != nil {
				return err
			}
		case pCmpOp:
			if err := cp.checkNumSlot(i, in.a); err != nil {
				return err
			}
			if in.b < 0 || CompareOp(in.b) > CmpNE {
				return fmt.Errorf("dataset: verify: instr %d: unknown compare op %d", i, in.b)
			}
		case pNotNullCat, pIsNullCat:
			if err := cp.checkCatSlot(i, in.a); err != nil {
				return err
			}
		case pNotNullNum, pIsNullNum:
			if err := cp.checkNumSlot(i, in.a); err != nil {
				return err
			}
		case pAndOp, pOrOp:
			if sp < 2 {
				return fmt.Errorf("dataset: verify: instr %d: binary operator on stack of %d", i, sp)
			}
		case pNotOp:
			if sp < 1 {
				return fmt.Errorf("dataset: verify: instr %d: not on empty stack", i)
			}
		default:
			return fmt.Errorf("dataset: verify: instr %d: unknown opcode %d", i, in.op)
		}
		// Stack effect: leaves push one, binary operators net-pop one, not
		// is neutral.
		switch in.op {
		case pAndOp, pOrOp:
			sp--
		case pNotOp:
		default:
			sp++
			if sp > cp.depth {
				return fmt.Errorf("dataset: verify: instr %d: stack depth %d exceeds declared %d", i, sp, cp.depth)
			}
		}
	}
	if sp != 1 {
		return fmt.Errorf("dataset: verify: program exits with stack depth %d, want 1", sp)
	}
	return nil
}

func (cp *CompiledPredicate) checkCatSlot(i int, a int32) error {
	if a < 0 || int(a) >= len(cp.catCols) {
		return fmt.Errorf("dataset: verify: instr %d: categorical slot %d out of range [0, %d)", i, a, len(cp.catCols))
	}
	return nil
}

func (cp *CompiledPredicate) checkNumSlot(i int, a int32) error {
	if a < 0 || int(a) >= len(cp.numVals) {
		return fmt.Errorf("dataset: verify: instr %d: numeric slot %d out of range [0, %d)", i, a, len(cp.numVals))
	}
	return nil
}

// mustBeVerified is the VM entry guard: the hot loops run without bounds
// checks and must never see a program the verifier has not accepted.
func (cp *CompiledPredicate) mustBeVerified() {
	if !cp.verified {
		panic("dataset: predicate program has not passed bytecode verification")
	}
}
