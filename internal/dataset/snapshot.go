package dataset

import "fmt"

// Snapshot returns an immutable copy-on-write view of the dataset's current
// rows. The view shares column storage with the live dataset — code vectors,
// value/null vectors, and categorical dictionaries are aliased, not copied —
// extending the dictionary-level COW that gather/clone already use to whole
// columns. Taking a snapshot is O(columns), independent of row count.
//
// Isolation contract:
//
//   - The snapshot's columns are capped three-index slices ([:n:n]), so
//     appends to the live dataset land strictly beyond every snapshot's
//     length and can never appear through the view — readers see exactly
//     the rows that existed at snapshot time, never a torn row.
//   - In-place mutation of a pre-snapshot row (SetValue, cleaning repairs)
//     materializes private storage on the live column first; the snapshot
//     keeps the original bytes.
//   - Dictionary growth on the live side goes through the shared-dict COW
//     path (materializeDict), so the snapshot's dict/index stay frozen.
//
// Snapshot mutates the live columns' shared/frozen bookkeeping, so it must
// be called from the single writer — the serving layer takes snapshots under
// its ingest lock. The returned view itself is safe for concurrent readers
// (including Gather/Clone, which only read row storage), but it is a
// *Dataset like any other: appending to it is permitted and detaches it
// (capacity is capped, so the first append reallocates privately) without
// ever touching the live dataset's tail.
func (d *Dataset) Snapshot() *Dataset {
	out := &Dataset{schema: d.schema, cols: make([]column, len(d.cols)), n: d.n}
	for i, c := range d.cols {
		out.cols[i] = c.snapshot()
	}
	return out
}

// CodesRange returns the dictionary codes of rows [lo, hi) of a categorical
// attribute (-1 marks null) plus the full current dictionary. Unlike Codes
// it does not copy: both slices alias column storage, which is what the
// incremental index-maintenance paths need to visit only freshly appended
// rows. The caller must treat both slices as read-only and must not hold
// them across subsequent mutations of the dataset. It panics if the
// attribute is unknown or not categorical, or if the range is out of bounds.
func (d *Dataset) CodesRange(attr string, lo, hi int) (codes []int32, dict []string) {
	i := d.schema.MustIndex(attr)
	col, ok := d.cols[i].(*catColumn)
	if !ok {
		panic(fmt.Sprintf("dataset: attribute %q is not categorical", attr))
	}
	return col.codes[lo:hi:hi], col.dict
}
