package dataset

import (
	"fmt"
	"sort"
)

// Incremental maintenance of the gid substrate. Append extends an existing
// Groups index over freshly appended rows without re-scanning the rows it
// already covers. The equivalence contract is hard: after any schedule of
// Append calls, every exported field and accessor (ByRow, Counts, tuples →
// Key/Keys/GID, Rows, RowSet) is bit-identical to a from-scratch GroupBy of
// the same dataset.
//
// The canonical gid order is ascending rendered-key order, so appending a
// row whose code tuple was already seen is O(attrs): encode the tuple, look
// up the gid, bump the count. Only a *new* group key pays more: its
// canonical position is found by binary search over the sorted tuples
// (tupleLess, the same comparator GroupBy sorts with), every gid at or after
// the insertion point shifts up by one, and ByRow is remapped in one O(rows)
// pass. New group keys are rare in steady-state serving, so amortized ingest
// cost stays O(attrs) per row.

// buildLookup materializes the persistent tuple→gid index used by Append:
// a byte-encoded-tuple map plus a gid-ordered key slice. The slice lets
// insertGroup renumber shifted gids by indexing in gid order — never by
// ranging over the map, which would be iteration-order-dependent code on an
// index-maintenance path.
func (g *Groups) buildLookup() {
	A := len(g.Attrs)
	g.lookup = make(map[string]int32, len(g.Counts))
	g.keysBytes = make([]string, len(g.Counts))
	key := make([]byte, 4*A)
	for gid := range g.Counts {
		encodeTuple(key, g.tuples[gid*A:(gid+1)*A])
		g.keysBytes[gid] = string(key)
		g.lookup[g.keysBytes[gid]] = int32(gid)
	}
}

func encodeTuple(dst []byte, t []int32) {
	for a, code := range t {
		dst[4*a] = byte(code)
		dst[4*a+1] = byte(code >> 8)
		dst[4*a+2] = byte(code >> 16)
		dst[4*a+3] = byte(code >> 24)
	}
}

// Append extends the index over rows [fromRow, d.NumRows()) of d, which must
// be the dataset the index was built from (same grouping attributes, same
// prior rows). fromRow must equal the number of rows already indexed — the
// serving layer passes the pre-ingest row count. It panics on a row-count
// mismatch or a non-categorical grouping attribute.
func (g *Groups) Append(d *Dataset, fromRow int) {
	if fromRow != g.n {
		panic(fmt.Sprintf("dataset: Groups.Append from row %d, index covers %d", fromRow, g.n))
	}
	A := len(g.Attrs)
	cols := make([]*catColumn, A)
	for i, a := range g.Attrs {
		c, ok := d.cols[d.schema.MustIndex(a)].(*catColumn)
		if !ok {
			panic(fmt.Sprintf("dataset: GroupBy attribute %q is not categorical", a))
		}
		cols[i] = c
		// Refresh the dict aliases: a copy-on-write materialization (snapshot
		// + dictionary growth) may have replaced the column's dict slice
		// since the index was built.
		g.dicts[i] = c.dict
	}
	if g.lookup == nil {
		g.buildLookup()
	}
	key := make([]byte, 4*A)
	tuple := make([]int32, A)
	for r := fromRow; r < d.n; r++ {
		null := false
		for a, c := range cols {
			code := c.codes[r]
			if code < 0 {
				null = true
				break
			}
			tuple[a] = code
		}
		if null {
			g.ByRow = append(g.ByRow, -1)
			continue
		}
		encodeTuple(key, tuple)
		gid, ok := g.lookup[string(key)]
		if !ok {
			gid = g.insertGroup(string(key), tuple)
		}
		g.ByRow = append(g.ByRow, gid)
		g.Counts[gid]++
	}
	g.n = d.n
	// Lazy caches cover the pre-append state; rebuild on next demand.
	g.keys, g.gids, g.rowLists, g.rowSets = nil, nil, nil, nil
}

// insertGroup splices a new group into canonical order and returns its gid.
// Every structure keyed by gid shifts: tuples, Counts, keysBytes, the lookup
// values of shifted groups, and all ByRow entries at or above the insertion
// point.
func (g *Groups) insertGroup(key string, tuple []int32) int32 {
	A := len(g.Attrs)
	G := len(g.Counts)
	pos := sort.Search(G, func(i int) bool {
		return g.tupleLess(tuple, g.tuples[i*A:(i+1)*A])
	})

	g.tuples = append(g.tuples, make([]int32, A)...)
	copy(g.tuples[(pos+1)*A:], g.tuples[pos*A:G*A])
	copy(g.tuples[pos*A:(pos+1)*A], tuple)

	g.Counts = append(g.Counts, 0)
	copy(g.Counts[pos+1:], g.Counts[pos:G])
	g.Counts[pos] = 0

	g.keysBytes = append(g.keysBytes, "")
	copy(g.keysBytes[pos+1:], g.keysBytes[pos:G])
	g.keysBytes[pos] = key

	// Renumber in gid order via the key slice — deterministic, no map range.
	g.lookup[key] = int32(pos)
	for gid := pos + 1; gid <= G; gid++ {
		g.lookup[g.keysBytes[gid]] = int32(gid)
	}
	if pos < G { // some existing gids shifted; remap rows in one pass
		p := int32(pos)
		for r, id := range g.ByRow {
			if id >= p {
				g.ByRow[r]++
			}
		}
	}
	return int32(pos)
}
