package dataset

import (
	"fmt"
	"testing"

	"redi/internal/rng"
)

// randGroupRow appends one row with values drawn from small pools (so group
// keys repeat) and occasional nulls and never-seen values (so new groups and
// dictionary growth both occur mid-stream).
func randGroupRow(r *rng.RNG, d *Dataset, i int) {
	var race, label Value
	switch r.Intn(10) {
	case 0:
		race = NullValue(Categorical)
	case 1:
		race = Cat(fmt.Sprintf("rare-%d", r.Intn(50))) // long tail: new groups keep appearing
	default:
		race = Cat([]string{"white", "black", "asian"}[r.Intn(3)])
	}
	if r.Intn(12) == 0 {
		label = NullValue(Categorical)
	} else {
		label = Cat([]string{"pos", "neg"}[r.Intn(2)])
	}
	d.MustAppendRow(Cat(fmt.Sprintf("%d", i)), race, Num(float64(r.Intn(90))), label)
}

// requireGroupsEqual asserts full structural equality between an
// incrementally maintained index and a cold rebuild: ByRow, Counts, rendered
// keys, per-group row lists, and row bitmaps.
func requireGroupsEqual(t *testing.T, inc, cold *Groups) {
	t.Helper()
	if len(inc.ByRow) != len(cold.ByRow) {
		t.Fatalf("ByRow len %d vs %d", len(inc.ByRow), len(cold.ByRow))
	}
	for r := range inc.ByRow {
		if inc.ByRow[r] != cold.ByRow[r] {
			t.Fatalf("ByRow[%d] = %d, rebuild has %d", r, inc.ByRow[r], cold.ByRow[r])
		}
	}
	if len(inc.Counts) != len(cold.Counts) {
		t.Fatalf("Counts len %d vs %d", len(inc.Counts), len(cold.Counts))
	}
	for gid := range inc.Counts {
		if inc.Counts[gid] != cold.Counts[gid] {
			t.Fatalf("Counts[%d] = %d, rebuild has %d", gid, inc.Counts[gid], cold.Counts[gid])
		}
	}
	ik, ck := inc.Keys(), cold.Keys()
	for gid := range ck {
		if ik[gid] != ck[gid] {
			t.Fatalf("Key(%d) = %q, rebuild has %q", gid, ik[gid], ck[gid])
		}
	}
	for gid := range cold.Counts {
		ir, cr := inc.Rows(gid), cold.Rows(gid)
		if len(ir) != len(cr) {
			t.Fatalf("Rows(%d) len %d vs %d", gid, len(ir), len(cr))
		}
		for j := range cr {
			if ir[j] != cr[j] {
				t.Fatalf("Rows(%d)[%d] = %d vs %d", gid, j, ir[j], cr[j])
			}
		}
		ib, cb := inc.RowSet(gid), cold.RowSet(gid)
		if len(ib) != len(cb) {
			t.Fatalf("RowSet(%d) words %d vs %d", gid, len(ib), len(cb))
		}
		for w := range cb {
			if ib[w] != cb[w] {
				t.Fatalf("RowSet(%d) word %d differs", gid, w)
			}
		}
	}
}

// TestGroupsAppendEquivalence drives random append schedules — variable
// batch sizes, interleaved queries that force and then invalidate the lazy
// caches, snapshots mid-stream to exercise the COW dict refresh — and checks
// the incremental index against a cold GroupBy after every batch.
func TestGroupsAppendEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		r := rng.New(seed)
		d := New(testSchema())
		n0 := 5 + r.Intn(40)
		for i := 0; i < n0; i++ {
			randGroupRow(r, d, i)
		}
		g := d.GroupBy("race", "label")
		rows := n0
		for batch := 0; batch < 12; batch++ {
			if batch%3 == 1 {
				// Touch the lazy caches so Append must invalidate them.
				_ = g.Keys()
				if g.NumGroups() > 0 {
					_ = g.Rows(0)
					_ = g.RowSet(0)
				}
			}
			if batch%4 == 2 {
				// An outstanding snapshot forces dict COW on later appends.
				_ = d.Snapshot()
			}
			k := 1 + r.Intn(30)
			for i := 0; i < k; i++ {
				randGroupRow(r, d, rows+i)
			}
			g.Append(d, rows)
			rows += k
			requireGroupsEqual(t, g, d.GroupBy("race", "label"))
		}
	}
}

// TestGroupsAppendFromRowMismatch pins the guard: Append must refuse a
// fromRow that doesn't match the rows already indexed.
func TestGroupsAppendFromRowMismatch(t *testing.T) {
	d := testData(t)
	g := d.GroupBy("race")
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong fromRow did not panic")
		}
	}()
	g.Append(d, d.NumRows()-1)
}
