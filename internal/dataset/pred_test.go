package dataset

import (
	"fmt"
	"strings"
	"testing"

	"redi/internal/rng"
)

func TestCompilePredicateOpaqueClosure(t *testing.T) {
	d := testData(t)
	p := PredicateFunc(func(d *Dataset, row int) bool { return row%2 == 0 })
	if p.Compilable() {
		t.Fatal("closure predicate reports Compilable")
	}
	if _, ok := CompilePredicate(d, p); ok {
		t.Fatal("closure predicate compiled")
	}
	// Combinators over a closure stay opaque but still evaluate correctly.
	q := And(p, Eq("race", "white"))
	if q.Compilable() {
		t.Fatal("And over closure reports Compilable")
	}
	if n := d.Count(q); n != 3 { // rows 0, 2, 4 are white at even indices
		t.Fatalf("opaque And count = %d, want 3", n)
	}
	if n := d.Count(Not(p)); n != 3 {
		t.Fatalf("opaque Not count = %d, want 3", n)
	}
	if n := d.Count(Or(p, Eq("race", "black"))); n != 5 {
		t.Fatalf("opaque Or count = %d, want 5", n)
	}
}

func TestCompiledMatchAgreesWithInterpreted(t *testing.T) {
	d := testData(t)
	preds := []Predicate{
		Eq("race", "white"),
		Eq("race", "martian"), // absent literal: folds to const false
		In("race", "white", "black"),
		In("race", "x", "y"), // all absent
		Range("age", 30, 52),
		Range("age", 52, 30), // inverted bounds
		Compare("age", CmpLT, 40),
		Compare("age", CmpNE, 34),
		NotNull("age"),
		IsNull("race"),
		Eq("age", "x"),        // kind mismatch: numeric attr, string literal
		Range("race", 0, 100), // kind mismatch: categorical attr
		And(Eq("race", "white"), Compare("age", CmpGE, 40)),
		Or(IsNull("age"), Eq("label", "neg")),
		Not(In("race", "white")),
		And(), // const true
		Or(),  // const false
		Not(And()),
		And(Eq("race", "martian"), Eq("label", "pos")), // folds to false
		Or(Not(Or()), Eq("race", "white")),             // folds to true
	}
	for pi, p := range preds {
		cp, ok := CompilePredicate(d, p)
		if !ok {
			t.Fatalf("predicate %d did not compile", pi)
		}
		mask := cp.SelectBitmap()
		for row := 0; row < d.NumRows(); row++ {
			want := p.Match(d, row)
			if got := cp.Match(row); got != want {
				t.Fatalf("predicate %d row %d: VM %v, interpreted %v", pi, row, got, want)
			}
			if got := mask.Get(row); got != want {
				t.Fatalf("predicate %d row %d: bitmap %v, interpreted %v", pi, row, got, want)
			}
		}
		if cp.CountFast() != d.Count(p) {
			t.Fatalf("predicate %d: CountFast %d != Count %d", pi, cp.CountFast(), d.Count(p))
		}
	}
}

func TestCompiledPredicateClosureFallback(t *testing.T) {
	d := testData(t)
	cp, _ := CompilePredicate(d, Eq("race", "white"))
	fn := cp.Predicate()
	// On the bound dataset the closure runs the VM.
	if !fn.Match(d, 0) || fn.Match(d, 1) {
		t.Fatal("compiled closure wrong on bound dataset")
	}
	// On a different dataset with a different dictionary layout it must
	// fall back to interpretation and stay correct.
	other := New(testSchema())
	other.MustAppendRow(Cat("9"), Cat("black"), Num(1), Cat("neg"))
	other.MustAppendRow(Cat("10"), Cat("white"), Num(2), Cat("pos"))
	if fn.Match(other, 0) || !fn.Match(other, 1) {
		t.Fatal("compiled closure wrong on foreign dataset")
	}
}

func TestDisassembleGolden(t *testing.T) {
	d := testData(t)
	p := And(
		Or(Eq("race", "white"), In("race", "black", "absent")),
		Not(Range("age", 30, 60)),
		NotNull("label"),
	)
	cp, _ := CompilePredicate(d, p)
	want := strings.Join([]string{
		`00 eq race #0 ; "white"`,
		`01 in race [#1="black"]`,
		`02 or`,
		`03 range age [30, 60]`,
		`04 not`,
		`05 and`,
		`06 notnull label`,
		`07 and`,
		``,
	}, "\n")
	if got := cp.Disassemble(); got != want {
		t.Fatalf("disassembly:\n%s\nwant:\n%s", got, want)
	}
}

func TestDisassembleConstFold(t *testing.T) {
	d := testData(t)
	cp, _ := CompilePredicate(d, And(Eq("race", "martian"), Eq("race", "white")))
	if got, want := cp.Disassemble(), "00 const false\n"; got != want {
		t.Fatalf("folded disassembly = %q, want %q", got, want)
	}
	if cp.CountFast() != 0 {
		t.Fatalf("const-false count = %d", cp.CountFast())
	}
	cp2, _ := CompilePredicate(d, Or(Not(Or()), IsNull("age")))
	if got, want := cp2.Disassemble(), "00 const true\n"; got != want {
		t.Fatalf("folded disassembly = %q, want %q", got, want)
	}
	if cp2.CountFast() != d.NumRows() {
		t.Fatalf("const-true count = %d", cp2.CountFast())
	}
}

// TestSelectIndicesContract pins the satellite behavior: indices come back
// exactly sized, ascending, and non-nil even when empty — on both the
// compiled and the closure path.
func TestSelectIndicesContract(t *testing.T) {
	d := testData(t)
	for name, p := range map[string]Predicate{
		"compiled": Eq("race", "martian"),
		"closure":  PredicateFunc(func(*Dataset, int) bool { return false }),
	} {
		idx := d.SelectIndices(p)
		if idx == nil {
			t.Fatalf("%s: empty SelectIndices returned nil", name)
		}
		if len(idx) != 0 {
			t.Fatalf("%s: indices = %v", name, idx)
		}
	}
	// Exact sizing: capacity equals length on the compiled path.
	idx := d.SelectIndices(Eq("race", "white"))
	if len(idx) != 3 || cap(idx) != 3 {
		t.Fatalf("indices len/cap = %d/%d, want 3/3", len(idx), cap(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("indices not ascending: %v", idx)
		}
	}
	// Select on an empty result is an empty, schema-preserving dataset.
	empty := d.Select(Eq("race", "martian"))
	if empty.NumRows() != 0 || !empty.Schema().Equal(d.Schema()) {
		t.Fatalf("empty Select = %d rows", empty.NumRows())
	}
}

// TestSelectBitmapScratchReuse pins the allocation contract: repeated
// vectorized evaluations reuse the scratch buffers allocated at compile time.
func TestSelectBitmapScratchReuse(t *testing.T) {
	d := testData(t)
	cp, _ := CompilePredicate(d, And(Eq("race", "white"), Not(Range("age", 0, 40))))
	first := cp.SelectBitmap()
	second := cp.SelectBitmap()
	if &first[0] != &second[0] {
		t.Fatal("SelectBitmap did not reuse its scratch")
	}
	allocs := testing.AllocsPerRun(100, func() { cp.SelectBitmap() })
	if allocs != 0 {
		t.Fatalf("SelectBitmap allocates %v per run, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		for r := 0; r < d.NumRows(); r++ {
			cp.Match(r)
		}
	})
	if allocs != 0 {
		t.Fatalf("Match allocates %v per run, want 0", allocs)
	}
}

// randomAdversarialData builds a dataset exercising the edge cases the VM
// must match the interpreter on: null cells, empty columns, single-value
// dictionaries, and row counts straddling the 64-bit word boundary.
func randomAdversarialData(r *rng.RNG) *Dataset {
	d := New(NewSchema(
		Attribute{Name: "c1", Kind: Categorical},
		Attribute{Name: "c2", Kind: Categorical},
		Attribute{Name: "x", Kind: Numeric},
		Attribute{Name: "y", Kind: Numeric},
	))
	nrows := r.Intn(150) // 0..149: includes empty and word-boundary sizes
	cats := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < nrows; i++ {
		row := make([]Value, 4)
		for c := 0; c < 2; c++ {
			if r.Float64() < 0.2 {
				row[c] = NullValue(Categorical)
			} else {
				row[c] = Cat(cats[r.Intn(len(cats))])
			}
		}
		for c := 2; c < 4; c++ {
			if r.Float64() < 0.2 {
				row[c] = NullValue(Numeric)
			} else {
				row[c] = Num(float64(r.Intn(100)))
			}
		}
		d.MustAppendRow(row...)
	}
	return d
}

// randomPredTree builds a random predicate over the adversarial schema,
// including literals absent from dictionaries and inverted ranges.
func randomPredTree(r *rng.RNG, depth int) Predicate {
	lits := []string{"a", "b", "c", "d", "e", "zz", "missing"}
	catAttrs := []string{"c1", "c2"}
	numAttrs := []string{"x", "y"}
	if depth <= 0 || r.Float64() < 0.4 {
		switch r.Intn(7) {
		case 0:
			return Eq(catAttrs[r.Intn(2)], lits[r.Intn(len(lits))])
		case 1:
			k := 1 + r.Intn(3)
			vs := make([]string, k)
			for i := range vs {
				vs[i] = lits[r.Intn(len(lits))]
			}
			return In(catAttrs[r.Intn(2)], vs...)
		case 2:
			lo := float64(r.Intn(120) - 10)
			return Range(numAttrs[r.Intn(2)], lo, lo+float64(r.Intn(80)-20))
		case 3:
			return Compare(numAttrs[r.Intn(2)], CompareOp(r.Intn(6)), float64(r.Intn(100)))
		case 4:
			return NotNull([]string{"c1", "c2", "x", "y"}[r.Intn(4)])
		case 5:
			return IsNull([]string{"c1", "c2", "x", "y"}[r.Intn(4)])
		default:
			return Eq(catAttrs[r.Intn(2)], lits[r.Intn(len(lits))])
		}
	}
	switch r.Intn(3) {
	case 0:
		return And(randomPredTree(r, depth-1), randomPredTree(r, depth-1))
	case 1:
		return Or(randomPredTree(r, depth-1), randomPredTree(r, depth-1))
	default:
		return Not(randomPredTree(r, depth-1))
	}
}

// TestCompiledEquivalenceProperty is the randomized oracle test: on random
// adversarial datasets, the bytecode VM, the vectorized bitmap driver, and
// the interpreted reference must agree row for row.
func TestCompiledEquivalenceProperty(t *testing.T) {
	r := rng.New(42)
	for round := 0; round < 200; round++ {
		d := randomAdversarialData(r)
		p := randomPredTree(r, 4)
		cp, ok := CompilePredicate(d, p)
		if !ok {
			t.Fatalf("round %d: tree predicate did not compile", round)
		}
		mask := cp.SelectBitmap()
		count := 0
		for row := 0; row < d.NumRows(); row++ {
			want := p.Match(d, row)
			if want {
				count++
			}
			if got := cp.Match(row); got != want {
				t.Fatalf("round %d row %d (of %d): VM %v, interpreted %v\nprogram:\n%s",
					round, row, d.NumRows(), got, want, cp.Disassemble())
			}
			if got := mask.Get(row); got != want {
				t.Fatalf("round %d row %d (of %d): bitmap %v, interpreted %v\nprogram:\n%s",
					round, row, d.NumRows(), got, want, cp.Disassemble())
			}
		}
		if cp.CountFast() != count {
			t.Fatalf("round %d: CountFast %d != interpreted %d", round, cp.CountFast(), count)
		}
		idx := cp.SelectIndices()
		if len(idx) != count {
			t.Fatalf("round %d: SelectIndices len %d != %d", round, len(idx), count)
		}
	}
}

// stringKeyJoin is the seed implementation of Join — hash on v.String() via
// boxed values — kept as the oracle for the code-keyed rewrite.
func stringKeyJoin(d, other *Dataset, leftAttr, rightAttr string) [][2]int {
	li := d.Schema().MustIndex(leftAttr)
	ri := other.Schema().MustIndex(rightAttr)
	idx := make(map[string][]int)
	for r := 0; r < d.NumRows(); r++ {
		v := d.ValueAt(r, li)
		if v.Null {
			continue
		}
		idx[v.String()] = append(idx[v.String()], r)
	}
	var pairs [][2]int
	for r := 0; r < other.NumRows(); r++ {
		v := other.ValueAt(r, ri)
		if v.Null {
			continue
		}
		for _, lr := range idx[v.String()] {
			pairs = append(pairs, [2]int{lr, r})
		}
	}
	return pairs
}

// TestJoinEquivalenceProperty checks the dictionary-code join against the
// string-keyed oracle on random datasets: same pairs, same order, for both
// categorical and numeric keys.
func TestJoinEquivalenceProperty(t *testing.T) {
	r := rng.New(77)
	for round := 0; round < 60; round++ {
		left := randomAdversarialData(r)
		right := randomAdversarialData(r)
		for _, key := range []string{"c1", "x"} {
			j, err := left.Join(right, key, key)
			if err != nil {
				t.Fatalf("round %d key %s: %v", round, key, err)
			}
			want := stringKeyJoin(left, right, key, key)
			if j.NumRows() != len(want) {
				t.Fatalf("round %d key %s: join rows %d, oracle %d",
					round, key, j.NumRows(), len(want))
			}
			for i, pr := range want {
				for c := 0; c < left.NumCols(); c++ {
					if !j.ValueAt(i, c).Equal(left.ValueAt(pr[0], c)) {
						t.Fatalf("round %d key %s row %d: left col %d mismatch", round, key, i, c)
					}
				}
				// Right columns follow, minus the deduplicated key.
				oc := left.NumCols()
				for c := 0; c < right.NumCols(); c++ {
					if right.Schema().Attr(c).Name == key && c == right.Schema().MustIndex(key) {
						continue
					}
					if !j.ValueAt(i, oc).Equal(right.ValueAt(pr[1], c)) {
						t.Fatalf("round %d key %s row %d: right col %d mismatch", round, key, i, c)
					}
					oc++
				}
			}
		}
	}
}

// TestJoinOutputDeterminism pins byte-identical join output across repeated
// runs (the map over numeric keys must not leak iteration order).
func TestJoinOutputDeterminism(t *testing.T) {
	r := rng.New(5)
	left := randomAdversarialData(r)
	right := randomAdversarialData(r)
	var first string
	for i := 0; i < 5; i++ {
		j, err := left.Join(right, "x", "x")
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for row := 0; row < j.NumRows(); row++ {
			fmt.Fprintf(&sb, "%v\n", j.Row(row))
		}
		if i == 0 {
			first = sb.String()
		} else if sb.String() != first {
			t.Fatalf("join output differs on run %d", i)
		}
	}
}
