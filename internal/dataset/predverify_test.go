package dataset

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"redi/internal/bitmap"
)

// verifyData builds the shared fixture without a *testing.T so the fuzz
// harness can call it during seed setup.
func verifyData() *Dataset {
	d := New(testSchema())
	rows := [][]Value{
		{Cat("1"), Cat("white"), Num(34), Cat("pos")},
		{Cat("2"), Cat("black"), Num(28), Cat("neg")},
		{Cat("3"), Cat("white"), Num(45), Cat("pos")},
		{Cat("4"), Cat("black"), Num(52), Cat("pos")},
		{Cat("5"), Cat("white"), NullValue(Numeric), Cat("neg")},
		{Cat("6"), NullValue(Categorical), Num(61), Cat("neg")},
		{Cat("7"), Cat("asian"), Num(19), Cat("pos")},
	}
	for _, r := range rows {
		d.MustAppendRow(r...)
	}
	return d
}

// verifyPrograms compiles a spread of predicate shapes: every leaf opcode,
// nested boolean operators, and a constant-folded root.
func verifyPrograms(d *Dataset) []*CompiledPredicate {
	preds := []Predicate{
		Eq("race", "white"),
		In("race", "black", "asian"),
		Range("age", 30, 50),
		Compare("age", CmpGE, 45),
		NotNull("race"),
		IsNull("age"),
		And(Eq("race", "white"), Compare("age", CmpLT, 40)),
		Or(Eq("label", "pos"), IsNull("race")),
		Not(And(Eq("race", "black"), Range("age", 0, 30))),
		And(Or(Eq("race", "white"), Eq("race", "black")), NotNull("age"), Not(Eq("label", "neg"))),
		Eq("race", "martian"), // folds to const false
	}
	var out []*CompiledPredicate
	for _, p := range preds {
		cp, ok := CompilePredicate(d, p)
		if !ok {
			panic("dataset: fixture predicate did not compile")
		}
		out = append(out, cp)
	}
	return out
}

// cloneWithCode returns a copy of cp running the given program with fresh
// vectorized scratch, unverified. The column bindings, sets, and full mask
// are shared read-only with the original.
func cloneWithCode(cp *CompiledPredicate, code []pinstr) *CompiledPredicate {
	cl := *cp
	cl.code = code
	cl.verified = false
	cl.bms = make([]bitmap.Bitmap, cp.depth)
	for i := range cl.bms {
		cl.bms[i] = bitmap.New(cp.n)
	}
	return &cl
}

func TestVerifyAcceptsCompiledPrograms(t *testing.T) {
	d := verifyData()
	for i, cp := range verifyPrograms(d) {
		if !cp.verified {
			t.Fatalf("program %d: compiled predicate not marked verified", i)
		}
		if err := cp.verify(); err != nil {
			t.Fatalf("program %d: verify rejected a compiler-produced program: %v", i, err)
		}
	}
}

func TestVerifyRejects(t *testing.T) {
	d := verifyData()
	base, _ := CompilePredicate(d, And(Eq("race", "white"), Range("age", 30, 50), In("race", "black")))
	cmp, _ := CompilePredicate(d, Compare("age", CmpLT, 40))

	cases := []struct {
		name string
		cp   *CompiledPredicate
		want string
	}{
		{"empty program", cloneWithCode(base, nil), "empty program"},
		{"unknown opcode", cloneWithCode(base, []pinstr{{op: 200}}), "unknown opcode"},
		{"and underflow", cloneWithCode(base, []pinstr{{op: pConstOp, a: 1}, {op: pAndOp}}), "binary operator on stack of 1"},
		{"not underflow", cloneWithCode(base, []pinstr{{op: pNotOp}}), "not on empty stack"},
		{"depth overflow", cloneWithCode(cmp, []pinstr{{op: pConstOp}, {op: pConstOp}, {op: pAndOp}}), "exceeds declared"},
		{"multiple exit values", cloneWithCode(base, []pinstr{{op: pConstOp}, {op: pConstOp}}), "exits with stack depth 2"},
		{"cat slot out of range", cloneWithCode(base, []pinstr{{op: pEqCode, a: 99}}), "categorical slot 99"},
		{"negative cat slot", cloneWithCode(base, []pinstr{{op: pNotNullCat, a: -1}}), "categorical slot -1"},
		{"dict code out of range", cloneWithCode(base, []pinstr{{op: pEqCode, a: 0, b: 99}}), "dictionary code 99"},
		{"set index out of range", cloneWithCode(base, []pinstr{{op: pInSet, a: 0, b: 99}}), "set index 99"},
		{"num slot out of range", cloneWithCode(base, []pinstr{{op: pRangeOp, a: 99}}), "numeric slot 99"},
		{"unknown compare op", cloneWithCode(base, []pinstr{{op: pCmpOp, a: 0, b: 99}}), "unknown compare op"},
	}
	for _, tc := range cases {
		if err := tc.cp.verify(); err == nil {
			t.Errorf("%s: verify accepted an invalid program", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	t.Run("set length mismatch", func(t *testing.T) {
		cl := cloneWithCode(base, []pinstr{{op: pInSet, a: 0, b: 0}})
		cl.sets = [][]bool{{true}} // dictionary needs len(dict)+1 slots
		if err := cl.verify(); err == nil || !strings.Contains(err.Error(), "slots") {
			t.Fatalf("verify = %v, want set-size error", err)
		}
	})
	t.Run("scratch bitmaps too few", func(t *testing.T) {
		cl := cloneWithCode(base, base.code)
		cl.bms = nil
		if err := cl.verify(); err == nil || !strings.Contains(err.Error(), "scratch bitmaps") {
			t.Fatalf("verify = %v, want scratch error", err)
		}
	})
	t.Run("row count exceeds bindings", func(t *testing.T) {
		cl := cloneWithCode(base, base.code)
		cl.n = 1 << 20
		if err := cl.verify(); err == nil || !strings.Contains(err.Error(), "bound to") {
			t.Fatalf("verify = %v, want row-count error", err)
		}
	})
}

func TestVMRefusesUnverifiedProgram(t *testing.T) {
	d := verifyData()
	cp, _ := CompilePredicate(d, Eq("race", "white"))
	cl := cloneWithCode(cp, cp.code) // valid program, but never verified

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s ran an unverified program without panicking", name)
			}
		}()
		f()
	}
	mustPanic("Match", func() { cl.Match(0) })
	mustPanic("SelectBitmap", func() { cl.SelectBitmap() })
}

// Instruction wire format for the mutation fuzzer: 25 little-endian bytes
// per instruction — op(1) a(4) b(4) f0(8) f1(8).
const pinstrWire = 25

func encodeProgram(code []pinstr) []byte {
	buf := make([]byte, 0, len(code)*pinstrWire)
	for i := range code {
		in := &code[i]
		buf = append(buf, byte(in.op))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.a))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.b))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(in.f0))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(in.f1))
	}
	return buf
}

func decodeProgram(buf []byte) []pinstr {
	code := make([]pinstr, 0, len(buf)/pinstrWire)
	for len(buf) >= pinstrWire {
		code = append(code, pinstr{
			op: pop(buf[0]),
			a:  int32(binary.LittleEndian.Uint32(buf[1:])),
			b:  int32(binary.LittleEndian.Uint32(buf[5:])),
			f0: math.Float64frombits(binary.LittleEndian.Uint64(buf[9:])),
			f1: math.Float64frombits(binary.LittleEndian.Uint64(buf[17:])),
		})
		buf = buf[pinstrWire:]
	}
	return code
}

// FuzzVerifyProgram mutation-fuzzes the bytecode verifier: each input picks
// a compiled base program, XORs the fuzzer's bytes into its encoded form,
// and re-installs the decoded program. The contract under test is the
// verifier's safety guarantee — a corrupted program is either rejected, or
// it executes with no panics and no out-of-range access, with the two VM
// drivers (Match and SelectBitmap) agreeing bit-for-bit on every row. The
// driver loops themselves have no bounds checks, so any invariant the
// verifier fails to establish surfaces here as an index-out-of-range panic
// under the fuzzer's -race harness.
func FuzzVerifyProgram(f *testing.F) {
	d := verifyData()
	programs := verifyPrograms(d)
	encoded := make([][]byte, len(programs))
	for i, cp := range programs {
		encoded[i] = encodeProgram(cp.code)
	}

	// Seeds: every base program untouched, plus single-byte flips sweeping
	// one full instruction width so every operand field gets hit, plus
	// multi-byte and oversized mutations.
	for i := range programs {
		f.Add(uint8(i), []byte{})
		for off := 0; off < pinstrWire; off++ {
			mut := make([]byte, off+1)
			mut[off] = 0xff
			f.Add(uint8(i), mut)
		}
		f.Add(uint8(i), []byte{0x01})
		f.Add(uint8(i), make([]byte, 3*pinstrWire))
	}

	f.Fuzz(func(t *testing.T, progIdx uint8, mut []byte) {
		base := programs[int(progIdx)%len(programs)]
		buf := append([]byte(nil), encoded[int(progIdx)%len(programs)]...)
		for i, b := range mut {
			if len(buf) == 0 {
				break
			}
			buf[i%len(buf)] ^= b
		}
		cl := cloneWithCode(base, decodeProgram(buf))
		if err := cl.verify(); err != nil {
			return // rejected: the VM never sees it
		}
		cl.verified = true
		sel := cl.SelectBitmap()
		for row := 0; row < cl.n; row++ {
			// Disassemble is deliberately not used in this message: it
			// assumes compiler-produced bookkeeping (eqLits) the mutated
			// program may violate.
			if got, want := cl.Match(row), sel.Get(row); got != want {
				t.Fatalf("row %d: Match = %v, SelectBitmap = %v, code = %+v", row, got, want, cl.code)
			}
		}
	})
}
