package dataset

import (
	"sort"
	"strings"
)

// Distinct returns the rows of d deduplicated on the given attributes
// (all attributes when none given), keeping the first occurrence and
// preserving order. Nulls compare equal to nulls.
func (d *Dataset) Distinct(attrs ...string) *Dataset {
	if len(attrs) == 0 {
		attrs = d.schema.Names()
	}
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = d.schema.MustIndex(a)
	}
	seen := map[string]bool{}
	var idx []int
	var sb strings.Builder
	for r := 0; r < d.n; r++ {
		sb.Reset()
		for _, c := range cols {
			v := d.cols[c].value(r)
			if v.Null {
				sb.WriteString("\x00N")
			} else {
				sb.WriteString(v.String())
			}
			sb.WriteByte('\x1f')
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			idx = append(idx, r)
		}
	}
	return d.Gather(idx)
}

// SortBy returns the rows of d ordered by the given attribute (ascending
// when asc is true). Numeric attributes sort numerically, categorical
// lexicographically; nulls sort last regardless of direction. The sort is
// stable.
func (d *Dataset) SortBy(attr string, asc bool) *Dataset {
	c := d.schema.MustIndex(attr)
	idx := make([]int, d.n)
	for i := range idx {
		idx[i] = i
	}
	col := d.cols[c]
	less := func(a, b int) bool {
		va, vb := col.value(a), col.value(b)
		if va.Null || vb.Null {
			// Nulls last: a non-null always precedes a null.
			return !va.Null && vb.Null
		}
		var l bool
		if va.Kind == Numeric {
			l = va.Num < vb.Num
		} else {
			l = va.Cat < vb.Cat
		}
		if !asc {
			// Reverse only among non-nulls.
			return !l && !va.Equal(vb)
		}
		return l
	}
	sort.SliceStable(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
	return d.Gather(idx)
}

// Union returns a new dataset with the rows of d followed by the rows of
// other; both must share an equal schema.
func (d *Dataset) Union(other *Dataset) (*Dataset, error) {
	out := d.Clone()
	if err := out.AppendDataset(other); err != nil {
		return nil, err
	}
	return out, nil
}
