package dataset

import (
	"fmt"
	"sort"
	"strings"

	"redi/internal/bitmap"
)

// GroupKey identifies an intersectional group: the combination of values of
// the grouping attributes, rendered canonically as "attr=val;attr=val".
// Keys are a reporting-edge format; the grouping substrate itself works in
// dense integer group ids (gids) and renders keys lazily.
type GroupKey string

// Groups is an index of a dataset's rows by intersectional group over a set
// of categorical attributes. It backs coverage analysis, distribution
// tailoring targets, and per-group fairness metrics.
//
// Groups are identified by dense ids in [0, NumGroups()). Gid order equals
// the sorted order of the rendered GroupKey strings, so iterating gids
// 0..NumGroups()-1 visits groups exactly as the old sorted-Keys iteration
// did — argmax tie-breaks on "lexicographically first key" are preserved by
// taking the first improving gid. Key strings are rendered only on demand
// (Key/Keys/GID/Count); hot paths index gid-aligned slices instead.
//
// A Groups is not safe for concurrent use: the lazy caches behind
// Key/Keys/GID/Count/Rows/RowSet are built on first call.
type Groups struct {
	Attrs  []string
	ByRow  []int32 // row -> gid (-1 if any grouping attr is null)
	Counts []int   // gid -> group size

	dicts  [][]string // per grouping attr: code -> value (shared with columns)
	tuples []int32    // flat gid-major code tuples, len NumGroups()*len(Attrs)
	n      int        // rows indexed (sizes RowSet bitmaps)

	keys     []GroupKey        // lazy: gid -> rendered key
	gids     map[GroupKey]int32 // lazy: rendered key -> gid
	rowLists [][]int            // lazy: gid -> member row indices
	rowSets  []bitmap.Bitmap    // lazy: gid -> member row bitmap

	// Incremental-maintenance state (built on first Append; see
	// groupsappend.go): byte-encoded code tuple -> gid, plus the same keys
	// in gid order so renumbering never ranges over the map.
	lookup    map[string]int32
	keysBytes []string
}

// denseGroupLimit bounds the size of the direct-indexed gid lookup table.
// When the product of the grouping dictionaries exceeds it, GroupBy falls
// back to a byte-encoded tuple map.
const denseGroupLimit = 1 << 20

// GroupBy indexes the dataset's rows by the given categorical attributes.
// Rows with a null in any grouping attribute are assigned to no group
// (ByRow = -1). It panics if an attribute is unknown or not categorical.
//
// The scan works entirely on dictionary codes: each row's code tuple is
// composed into a provisional gid via a dense mixed-radix table (or a
// tuple-keyed map when the dictionary product is large), then gids are
// remapped into canonical sorted-key order. No key strings are built.
func (d *Dataset) GroupBy(attrs ...string) *Groups {
	A := len(attrs)
	cols := make([]*catColumn, A)
	for i, a := range attrs {
		c, ok := d.cols[d.schema.MustIndex(a)].(*catColumn)
		if !ok {
			panic(fmt.Sprintf("dataset: GroupBy attribute %q is not categorical", a))
		}
		cols[i] = c
	}
	g := &Groups{
		Attrs: append([]string(nil), attrs...),
		ByRow: make([]int32, d.n),
		n:     d.n,
		dicts: make([][]string, A),
	}
	dims := make([]int, A)
	product := 1 // -1 once the dense budget is exceeded
	for i, c := range cols {
		// Dictionaries are append-only; aliasing them is safe because every
		// code referenced here stays in range even if the column grows later.
		g.dicts[i] = c.dict
		dims[i] = len(c.dict)
		if product > 0 && dims[i] != 0 && product > denseGroupLimit/dims[i] {
			product = -1
			continue
		}
		if product >= 0 {
			product *= dims[i]
		}
	}

	// First pass: assign provisional gids in first-appearance order and
	// record each distinct code tuple. An empty dictionary (dims == 0) makes
	// product 0; no row can then form a complete tuple, so the zero-length
	// table is never indexed.
	var (
		tuples []int32
		counts []int
	)
	if product >= 0 {
		table := make([]int32, product)
		for i := range table {
			table[i] = -1
		}
		for r := 0; r < d.n; r++ {
			idx := 0
			null := false
			for a, c := range cols {
				code := c.codes[r]
				if code < 0 {
					null = true
					break
				}
				idx = idx*dims[a] + int(code)
			}
			if null {
				g.ByRow[r] = -1
				continue
			}
			gid := table[idx]
			if gid < 0 {
				gid = int32(len(counts))
				table[idx] = gid
				for _, c := range cols {
					tuples = append(tuples, c.codes[r])
				}
				counts = append(counts, 0)
			}
			g.ByRow[r] = gid
			counts[gid]++
		}
	} else {
		index := make(map[string]int32)
		key := make([]byte, 4*A)
		for r := 0; r < d.n; r++ {
			null := false
			for a, c := range cols {
				code := c.codes[r]
				if code < 0 {
					null = true
					break
				}
				key[4*a] = byte(code)
				key[4*a+1] = byte(code >> 8)
				key[4*a+2] = byte(code >> 16)
				key[4*a+3] = byte(code >> 24)
			}
			if null {
				g.ByRow[r] = -1
				continue
			}
			gid, ok := index[string(key)]
			if !ok {
				gid = int32(len(counts))
				index[string(key)] = gid
				for _, c := range cols {
					tuples = append(tuples, c.codes[r])
				}
				counts = append(counts, 0)
			}
			g.ByRow[r] = gid
			counts[gid]++
		}
	}

	// Second pass: remap provisional gids into canonical order — ascending
	// rendered-key order, matched without materializing the keys.
	G := len(counts)
	perm := make([]int, G)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool {
		return g.tupleLess(tuples[perm[x]*A:perm[x]*A+A], tuples[perm[y]*A:perm[y]*A+A])
	})
	remap := make([]int32, G)
	g.Counts = make([]int, G)
	g.tuples = make([]int32, len(tuples))
	for newGid, old := range perm {
		remap[old] = int32(newGid)
		g.Counts[newGid] = counts[old]
		copy(g.tuples[newGid*A:(newGid+1)*A], tuples[old*A:old*A+A])
	}
	for r, gid := range g.ByRow {
		if gid >= 0 {
			g.ByRow[r] = remap[gid]
		}
	}
	return g
}

// tupleLess reports whether the rendered key of code tuple tx sorts before
// that of ty. It compares the virtual concatenation of the rendered
// segments byte by byte: component-wise comparison of the values would be
// wrong when a value contains '=' or ';' (e.g. values "a" and "a;b" render
// into keys whose order depends on the following attribute name), so the
// comparison must see exactly the bytes a rendered key would contain.
func (g *Groups) tupleLess(tx, ty []int32) bool {
	cx := segCursor{g: g, t: tx}
	cy := segCursor{g: g, t: ty}
	for {
		bx, okx := cx.next()
		by, oky := cy.next()
		if !okx {
			return oky
		}
		if !oky {
			return false
		}
		if bx != by {
			return bx < by
		}
	}
}

// segCursor streams the bytes of a rendered group key without building it.
// Segment i%4 of attr i/4 is: the ";" separator (empty before the first
// attr), the attribute name, "=", the dictionary value.
type segCursor struct {
	g   *Groups
	t   []int32
	seg int
	cur string
	off int
}

func (s *segCursor) next() (byte, bool) {
	for s.off >= len(s.cur) {
		a := s.seg / 4
		if a >= len(s.g.Attrs) {
			return 0, false
		}
		switch s.seg % 4 {
		case 0:
			if a > 0 {
				s.cur = ";"
			} else {
				s.cur = ""
			}
		case 1:
			s.cur = s.g.Attrs[a]
		case 2:
			s.cur = "="
		case 3:
			s.cur = s.g.dicts[a][s.t[a]]
		}
		s.seg++
		s.off = 0
	}
	b := s.cur[s.off]
	s.off++
	return b, true
}

// NumGroups returns the number of distinct groups.
func (g *Groups) NumGroups() int { return len(g.Counts) }

// render materializes all key strings once; Key/Keys/GID share the cache.
func (g *Groups) render() {
	if g.keys != nil || len(g.Counts) == 0 {
		return
	}
	A := len(g.Attrs)
	keys := make([]GroupKey, len(g.Counts))
	var sb strings.Builder
	for gid := range keys {
		sb.Reset()
		t := g.tuples[gid*A : (gid+1)*A]
		for a, name := range g.Attrs {
			if a > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(name)
			sb.WriteByte('=')
			sb.WriteString(g.dicts[a][t[a]])
		}
		keys[gid] = GroupKey(sb.String())
	}
	g.keys = keys
}

// Key renders the group's key, "attr=val;attr=val".
func (g *Groups) Key(gid int) GroupKey {
	g.render()
	return g.keys[gid]
}

// Keys returns all group keys in gid (= ascending key) order. The caller
// must not mutate the returned slice. An empty index yields nil.
func (g *Groups) Keys() []GroupKey {
	g.render()
	return g.keys
}

// GID returns the gid for a rendered key, or -1 if the group is absent.
func (g *Groups) GID(k GroupKey) int {
	if g.gids == nil {
		g.render()
		g.gids = make(map[GroupKey]int32, len(g.keys))
		for gid, key := range g.keys {
			g.gids[key] = int32(gid)
		}
	}
	gid, ok := g.gids[k]
	if !ok {
		return -1
	}
	return int(gid)
}

// Count returns the number of rows in the group with the given key, 0 if
// the group is absent. Hot paths should index Counts by gid instead.
func (g *Groups) Count(k GroupKey) int {
	if gid := g.GID(k); gid >= 0 {
		return g.Counts[gid]
	}
	return 0
}

// Rows returns the group's member row indices in ascending order. The
// per-group lists are built lazily on first call; the caller must not
// mutate the returned slice.
func (g *Groups) Rows(gid int) []int {
	if g.rowLists == nil {
		lists := make([][]int, len(g.Counts))
		for i, c := range g.Counts {
			lists[i] = make([]int, 0, c)
		}
		for r, id := range g.ByRow {
			if id >= 0 {
				lists[id] = append(lists[id], r)
			}
		}
		g.rowLists = lists
	}
	return g.rowLists[gid]
}

// RowSet returns the group's member rows as a bitmap over row indices,
// ready for the bitmap package's fused intersection/popcount kernels. The
// per-group bitmaps are built lazily on first call; the caller must not
// mutate the returned bitmap.
func (g *Groups) RowSet(gid int) bitmap.Bitmap {
	if g.rowSets == nil {
		sets := make([]bitmap.Bitmap, len(g.Counts))
		for i := range sets {
			sets[i] = bitmap.New(g.n)
		}
		for r, id := range g.ByRow {
			if id >= 0 {
				sets[id].Set(r)
			}
		}
		g.rowSets = sets
	}
	return g.rowSets[gid]
}

// Distribution returns the normalized group-size distribution aligned with
// gids. An empty index yields an empty slice.
func (g *Groups) Distribution() []float64 {
	total := 0
	for _, c := range g.Counts {
		total += c
	}
	out := make([]float64, len(g.Counts))
	if total == 0 {
		return out
	}
	for i, c := range g.Counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// MakeGroupKey renders attribute/value pairs canonically, matching the keys
// produced by GroupBy when attrs are given in the same order. It is the
// edge-rendering shim for callers that construct keys from raw values.
func MakeGroupKey(attrs []string, vals []string) GroupKey {
	var sb strings.Builder
	for i := range attrs {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(attrs[i])
		sb.WriteByte('=')
		sb.WriteString(vals[i])
	}
	return GroupKey(sb.String())
}
