package discovery

import (
	"math"

	"redi/internal/dataset"
	"redi/internal/stats"
)

// CorrelationSketch summarizes a (join key, numeric value) column pair for
// approximate join-correlation queries (Santos, Bessa, Chirigati, Musco,
// Freire, SIGMOD 2021): it keeps the values of the B keys with the smallest
// hashes. Because the same hash orders keys in every sketch, two sketches
// of joinable columns retain overlapping key samples — a coordinated
// bottom-k sample of the join — so the correlation over aligned sketch
// entries estimates the correlation over the full join without executing
// it.
type CorrelationSketch struct {
	B       int
	entries map[string]float64 // key -> value (mean when keys repeat)
	counts  map[string]float64
	hashes  keyHeap
}

type hashedKey struct {
	key  string
	hash uint64
}

// keyHeap is a direct-slice binary max-heap on hash so the largest retained
// key can be evicted in O(log B). It deliberately does not go through
// container/heap: that interface boxes every pushed/popped element into an
// interface{} (one allocation per Add in the per-row hot loop) and pays
// dynamic dispatch on each Less/Swap; the inlined sift-up/sift-down below
// allocates nothing beyond the slice growth itself.
type keyHeap []hashedKey

// push appends x and sifts it up to restore the max-heap order.
func (h *keyHeap) push(x hashedKey) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].hash >= s[i].hash {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes and returns the maximum element, sifting the displaced tail
// element down to restore the heap order.
func (h *keyHeap) pop() hashedKey {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		big := l
		if r := l + 1; r < n && s[r].hash > s[l].hash {
			big = r
		}
		if s[i].hash >= s[big].hash {
			break
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
	return top
}

// NewCorrelationSketch builds a sketch of capacity b. It panics if b <= 0.
func NewCorrelationSketch(b int) *CorrelationSketch {
	if b <= 0 {
		panic("discovery: sketch capacity must be positive")
	}
	return &CorrelationSketch{
		B:       b,
		entries: map[string]float64{},
		counts:  map[string]float64{},
	}
}

// Add feeds one (key, value) observation. Repeated keys average their
// values (the sketch summarizes the key-level aggregate).
func (s *CorrelationSketch) Add(key string, value float64) {
	if c, ok := s.counts[key]; ok {
		s.counts[key] = c + 1
		s.entries[key] += (value - s.entries[key]) / (c + 1)
		return
	}
	h := hash64(key, 0)
	if len(s.hashes) >= s.B {
		top := s.hashes[0]
		if h >= top.hash {
			return // not among the bottom-B keys
		}
		s.hashes.pop()
		delete(s.entries, top.key)
		delete(s.counts, top.key)
	}
	s.hashes.push(hashedKey{key: key, hash: h})
	s.entries[key] = value
	s.counts[key] = 1
}

// Len returns the number of retained keys.
func (s *CorrelationSketch) Len() int { return len(s.entries) }

// SketchColumn builds a sketch from a dataset's key and value attributes,
// skipping rows with a null in either.
func SketchColumn(d *dataset.Dataset, keyAttr, valAttr string, b int) *CorrelationSketch {
	s := NewCorrelationSketch(b)
	keys := d.Strings(keyAttr)
	vals, nulls := d.NumericFull(valAttr)
	for i, k := range keys {
		if k == "" || nulls[i] {
			continue
		}
		s.Add(k, vals[i])
	}
	return s
}

// EstimateCorrelation estimates the Pearson correlation between the two
// sketched value columns over their key-equi-join, along with the number of
// aligned keys the estimate is based on. Fewer than 3 aligned keys yield
// (0, n).
func (s *CorrelationSketch) EstimateCorrelation(o *CorrelationSketch) (corr float64, aligned int) {
	// Aligned pairs feed Pearson's float sums; sorted keys keep the
	// estimate bit-identical across runs (maporder).
	var xs, ys []float64
	for _, k := range sortedKeys(s.entries) {
		if w, ok := o.entries[k]; ok {
			xs = append(xs, s.entries[k])
			ys = append(ys, w)
		}
	}
	if len(xs) < 3 {
		return 0, len(xs)
	}
	return stats.Pearson(xs, ys), len(xs)
}

// JoinCorrelationExact computes the exact key-level correlation between two
// (key, value) columns: values are averaged per key, keys are joined, and
// Pearson correlation is taken over the joined key aggregates. Ground truth
// for sketch experiments. It returns (0, n) with fewer than 3 joined keys.
func JoinCorrelationExact(d1 *dataset.Dataset, key1, val1 string, d2 *dataset.Dataset, key2, val2 string) (corr float64, aligned int) {
	agg := func(d *dataset.Dataset, keyAttr, valAttr string) map[string]float64 {
		keys := d.Strings(keyAttr)
		vals, nulls := d.NumericFull(valAttr)
		sum := map[string]float64{}
		cnt := map[string]float64{}
		for i, k := range keys {
			if k == "" || nulls[i] {
				continue
			}
			sum[k] += vals[i]
			cnt[k]++
		}
		for k := range sum {
			sum[k] /= cnt[k]
		}
		return sum
	}
	a := agg(d1, key1, val1)
	b := agg(d2, key2, val2)
	// Sorted join keys, for the same reason as EstimateCorrelation.
	var xs, ys []float64
	for _, k := range sortedKeys(a) {
		if w, ok := b[k]; ok {
			xs = append(xs, a[k])
			ys = append(ys, w)
		}
	}
	if len(xs) < 3 {
		return 0, len(xs)
	}
	return stats.Pearson(xs, ys), len(xs)
}

// SketchError is |estimate - exact|, with NaN treated as maximal error.
func SketchError(est, exact float64) float64 {
	if math.IsNaN(est) || math.IsNaN(exact) {
		return 2
	}
	return math.Abs(est - exact)
}
