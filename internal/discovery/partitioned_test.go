package discovery

import (
	"fmt"
	"reflect"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// lakeTables builds a small heterogeneous lake for index-equivalence tests.
func lakeTables(t *testing.T) map[string]*dataset.Dataset {
	t.Helper()
	r := rng.New(23)
	countries := []string{"fr", "de", "it", "es", "pt", "nl"}
	cities := []string{"paris", "berlin", "rome", "madrid", "lisbon"}
	out := map[string]*dataset.Dataset{}

	geo := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "country", Kind: dataset.Categorical},
		dataset.Attribute{Name: "city", Kind: dataset.Categorical},
		dataset.Attribute{Name: "pop", Kind: dataset.Numeric},
	))
	for i := 0; i < 300; i++ {
		c := dataset.Cat(countries[r.Intn(len(countries))])
		if r.Float64() < 0.04 {
			c = dataset.NullValue(dataset.Categorical)
		}
		geo.MustAppendRow(c, dataset.Cat(cities[r.Intn(len(cities))]), dataset.Num(r.Normal(100, 30)))
	}
	out["geo"] = geo

	trade := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "country", Kind: dataset.Categorical},
		dataset.Attribute{Name: "partner", Kind: dataset.Categorical},
		dataset.Attribute{Name: "volume", Kind: dataset.Numeric},
	))
	for i := 0; i < 200; i++ {
		trade.MustAppendRow(
			dataset.Cat(countries[r.Intn(4)]), // subset of geo's domain
			dataset.Cat(countries[r.Intn(len(countries))]),
			dataset.Num(r.Normal(10, 5)))
	}
	out["trade"] = trade
	return out
}

// TestAddPartitionedMatchesAdd: a repository built from partitioned views is
// indistinguishable — domains, keyword search, union/join search, LSH — from
// one built from the same rows in memory.
func TestAddPartitionedMatchesAdd(t *testing.T) {
	tables := lakeTables(t)
	mem := NewRepository()
	part := NewRepository()
	for _, name := range []string{"geo", "trade"} {
		if err := mem.Add(name, tables[name]); err != nil {
			t.Fatal(err)
		}
		if err := part.AddPartitioned(name, tables[name].Partitions(64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := part.AddPartitioned("geo", tables["geo"].Partitions(64)); err == nil {
		t.Fatal("duplicate AddPartitioned accepted")
	}

	if !reflect.DeepEqual(mem.Tables(), part.Tables()) {
		t.Fatalf("tables %v vs %v", mem.Tables(), part.Tables())
	}
	cols := mem.Columns()
	if !reflect.DeepEqual(cols, part.Columns()) {
		t.Fatalf("columns %v vs %v", cols, part.Columns())
	}
	for _, ref := range cols {
		if !reflect.DeepEqual(mem.Domain(ref), part.Domain(ref)) {
			t.Fatalf("domain %s: %v vs %v", ref, mem.Domain(ref), part.Domain(ref))
		}
	}
	for _, q := range []string{"geo city", "country trade", "paris", "volume partner"} {
		if a, b := mem.KeywordSearch(q, 5), part.KeywordSearch(q, 5); !reflect.DeepEqual(a, b) {
			t.Fatalf("KeywordSearch(%q): %v vs %v", q, a, b)
		}
	}

	query := DomainOfPartitioned(tables["trade"].Partitions(64), "country")
	if !reflect.DeepEqual(query, DomainOf(tables["trade"], "country")) {
		t.Fatal("DomainOfPartitioned disagrees with DomainOf")
	}
	if a, b := mem.UnionableColumns(query, 0.1), part.UnionableColumns(query, 0.1); !reflect.DeepEqual(a, b) {
		t.Fatalf("UnionableColumns: %v vs %v", a, b)
	}
	if a, b := mem.JoinableColumns(query, 0.5), part.JoinableColumns(query, 0.5); !reflect.DeepEqual(a, b) {
		t.Fatalf("JoinableColumns: %v vs %v", a, b)
	}

	// LSH ensembles fed by the two repositories return identical matches.
	index := func(r *Repository) []ColumnMatch {
		e, err := NewLSHEnsemble(64, 4)
		if err != nil {
			t.Fatal(err)
		}
		refs := r.Columns()
		doms := make([]map[string]bool, len(refs))
		for i, ref := range refs {
			doms[i] = r.Domain(ref)
		}
		e.Index(refs, doms)
		return e.Query(query, 0.5)
	}
	if a, b := index(mem), index(part); !reflect.DeepEqual(a, b) {
		t.Fatalf("LSH query: %v vs %v", a, b)
	}
}

// TestDiscoverFeaturesOverPartitionedTables: feature search over partitioned
// candidate tables — domain pruning from global dictionaries, lazy
// materialization for the joins — ranks identically to in-memory tables.
func TestDiscoverFeaturesOverPartitionedTables(t *testing.T) {
	r := rng.New(31)
	q := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "key", Kind: dataset.Categorical},
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical},
		dataset.Attribute{Name: "target", Kind: dataset.Numeric},
	))
	feat := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "key", Kind: dataset.Categorical},
		dataset.Attribute{Name: "f_sig", Kind: dataset.Numeric},
		dataset.Attribute{Name: "f_noise", Kind: dataset.Numeric},
	))
	for i := 0; i < 600; i++ {
		key := fmt.Sprintf("k%04d", i)
		grp := "a"
		if i%3 == 0 {
			grp = "b"
		}
		signal := r.Normal(0, 1)
		q.MustAppendRow(dataset.Cat(key), dataset.Cat(grp), dataset.Num(signal+r.Normal(0, 0.2)))
		feat.MustAppendRow(dataset.Cat(key), dataset.Num(signal+r.Normal(0, 0.2)), dataset.Num(r.Normal(0, 1)))
	}
	fq := FeatureQuery{Query: q, JoinAttr: "key", TargetAttr: "target", Sensitive: []string{"grp"}}

	mem := NewRepository()
	if err := mem.Add("feat", feat); err != nil {
		t.Fatal(err)
	}
	want, err := DiscoverFeatures(mem, fq)
	if err != nil {
		t.Fatal(err)
	}
	part := NewRepository()
	if err := part.AddPartitioned("feat", feat.Partitions(128)); err != nil {
		t.Fatal(err)
	}
	got, err := DiscoverFeatures(part, fq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hits %v, want %v", got, want)
	}
	if len(want) == 0 || want[0].Column.Column != "f_sig" {
		t.Fatalf("expected f_sig ranked first: %v", want)
	}
	// Materialization is cached: the second call reuses the same dataset.
	tab := part.Table("feat")
	if tab.Rows() != tab.Rows() {
		t.Fatal("Rows not cached")
	}
}
