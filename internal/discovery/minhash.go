package discovery

import (
	"errors"
	"math"
	"sort"

	"redi/internal/parallel"
)

// hash64 is a seeded 64-bit string hash (FNV-1a core mixed with a
// SplitMix64 finalizer), the hash family behind MinHash signatures and
// sketch key sampling.
func hash64(s string, seed uint64) uint64 {
	h := uint64(1469598103934665603) ^ (seed * 0x9e3779b97f4a7c15)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// MinHash is a k-permutation MinHash signature of a value set. Signatures
// built with the same k are comparable; EstimateJaccard is an unbiased
// estimator of the true Jaccard similarity with standard error ~1/sqrt(k).
type MinHash struct {
	Sig  []uint64
	Size int // cardinality of the hashed set
}

// NewMinHash hashes the value set into a k-hash signature. It panics if
// k <= 0.
func NewMinHash(values map[string]bool, k int) *MinHash {
	if k <= 0 {
		panic("discovery: MinHash requires k > 0")
	}
	m := &MinHash{Sig: make([]uint64, k), Size: len(values)}
	for i := range m.Sig {
		m.Sig[i] = math.MaxUint64
	}
	for v := range values {
		for i := 0; i < k; i++ {
			if h := hash64(v, uint64(i)); h < m.Sig[i] {
				m.Sig[i] = h
			}
		}
	}
	return m
}

// EstimateJaccard estimates the Jaccard similarity of the two underlying
// sets. It panics on signature length mismatch.
func (m *MinHash) EstimateJaccard(o *MinHash) float64 {
	if len(m.Sig) != len(o.Sig) {
		panic("discovery: MinHash signature length mismatch")
	}
	eq := 0
	for i := range m.Sig {
		if m.Sig[i] == o.Sig[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(m.Sig))
}

// EstimateContainment estimates |Q ∩ X| / |Q| from the Jaccard estimate and
// the stored set sizes, the conversion the LSH Ensemble uses:
// C = J (|Q| + |X|) / ((1 + J) |Q|), clamped to [0, 1].
func (m *MinHash) EstimateContainment(o *MinHash) float64 {
	if m.Size == 0 {
		return 1
	}
	j := m.EstimateJaccard(o)
	c := j * float64(m.Size+o.Size) / ((1 + j) * float64(m.Size))
	if c > 1 {
		return 1
	}
	if c < 0 {
		return 0
	}
	return c
}

// lshRowChoices are the per-band row counts for which bucket tables are
// materialized; Query picks one per partition based on the Jaccard
// threshold implied by the containment threshold and the partition's set
// sizes — the dynamic band geometry that defines the LSH Ensemble.
var lshRowChoices = []int{1, 2, 4, 8}

// LSHEnsemble indexes MinHash signatures for containment search (Zhu,
// Nargesian, Pu, Miller, VLDB 2016): indexed sets are partitioned by
// cardinality, and at query time each partition converts the containment
// threshold into its own Jaccard threshold (using the partition's upper
// size bound) and probes the banded index whose geometry best matches it.
type LSHEnsemble struct {
	k          int
	partitions []*lshPartition
	refs       []ColumnRef
	sigs       []*MinHash

	// Workers bounds the goroutines used by Index and Query: 0 (the
	// zero value) keeps the serial path, parallel.Auto uses every CPU.
	// Output is bit-identical at any worker count.
	Workers int
}

type lshPartition struct {
	maxSize int
	// buckets[ri][band]: band-key -> entry ids, for rows=lshRowChoices[ri].
	buckets [][]map[string][]int
}

// NewLSHEnsemble builds an index over signatures of k hashes with the given
// number of cardinality partitions. k must be at least 16; partitions must
// be positive.
func NewLSHEnsemble(k, partitions int) (*LSHEnsemble, error) {
	if k < 16 {
		return nil, errors.New("discovery: LSH ensemble requires k >= 16")
	}
	if partitions <= 0 {
		return nil, errors.New("discovery: LSH ensemble requires partitions > 0")
	}
	e := &LSHEnsemble{k: k}
	e.partitions = make([]*lshPartition, 0, partitions)
	return e, nil
}

// Index builds the ensemble over the given columns. Must be called once,
// before Query. Columns with empty domains are skipped. With Workers set,
// signature construction and per-partition bucket builds run concurrently;
// the resulting index is bit-identical to a serial build.
func (e *LSHEnsemble) Index(refs []ColumnRef, domains []map[string]bool) {
	type entry struct {
		ref  ColumnRef
		size int
		dom  map[string]bool
	}
	var entries []entry
	for i, ref := range refs {
		if len(domains[i]) == 0 {
			continue
		}
		entries = append(entries, entry{ref: ref, size: len(domains[i]), dom: domains[i]})
	}
	if len(entries) == 0 {
		return
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].size != entries[b].size {
			return entries[a].size < entries[b].size
		}
		return entries[a].ref.String() < entries[b].ref.String()
	})
	// Signature construction is the hot loop (|domain| × k hashes per
	// column) and is independent across columns.
	sigs := parallel.Map(e.Workers, entries, func(_ int, en entry) *MinHash {
		return NewMinHash(en.dom, e.k)
	})
	for i, en := range entries {
		e.refs = append(e.refs, en.ref)
		e.sigs = append(e.sigs, sigs[i])
	}
	nPart := cap(e.partitions)
	if nPart > len(entries) {
		nPart = len(entries)
	}
	per := (len(entries) + nPart - 1) / nPart
	var ranges [][2]int
	for start := 0; start < len(entries); start += per {
		end := start + per
		if end > len(entries) {
			end = len(entries)
		}
		ranges = append(ranges, [2]int{start, end})
	}
	parts := parallel.Map(e.Workers, ranges, func(_ int, rg [2]int) *lshPartition {
		start, end := rg[0], rg[1]
		p := &lshPartition{maxSize: entries[end-1].size}
		p.buckets = make([][]map[string][]int, len(lshRowChoices))
		for ri, rows := range lshRowChoices {
			bands := e.k / rows
			p.buckets[ri] = make([]map[string][]int, bands)
			for b := range p.buckets[ri] {
				p.buckets[ri][b] = map[string][]int{}
			}
			for id := start; id < end; id++ {
				sig := sigs[id]
				for b := 0; b < bands; b++ {
					key := bandKey(sig.Sig[b*rows : (b+1)*rows])
					p.buckets[ri][b][key] = append(p.buckets[ri][b][key], id)
				}
			}
		}
		return p
	})
	e.partitions = append(e.partitions, parts...)
}

func bandKey(sig []uint64) string {
	b := make([]byte, 0, len(sig)*8)
	for _, v := range sig {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
	}
	return string(b)
}

// Query returns candidate columns whose estimated containment of the query
// domain is at least threshold, best first. Per partition, the containment
// threshold t maps to the Jaccard threshold j = t·|Q| / (|Q| + sMax −
// t·|Q|); the partition is probed with the largest row count whose banded
// collision probability at j stays near one, so precision grows with the
// threshold without losing recall.
func (e *LSHEnsemble) Query(query map[string]bool, threshold float64) []ColumnMatch {
	if len(e.refs) == 0 {
		return nil
	}
	qsig := NewMinHash(query, e.k)
	q := float64(len(query))
	// Partition probes are independent: fan them out and union the
	// candidate id sets afterwards (the union is order-insensitive).
	partCands := parallel.Map(e.Workers, e.partitions, func(_ int, p *lshPartition) []int {
		j := 0.0
		if q > 0 {
			denom := q + float64(p.maxSize) - threshold*q
			if denom > 0 {
				j = threshold * q / denom
			}
		}
		ri := e.chooseRows(j)
		rows := lshRowChoices[ri]
		bands := e.k / rows
		var ids []int
		for b := 0; b < bands; b++ {
			key := bandKey(qsig.Sig[b*rows : (b+1)*rows])
			ids = append(ids, p.buckets[ri][b][key]...)
		}
		return ids
	})
	cands := map[int]bool{}
	for _, ids := range partCands {
		for _, id := range ids {
			cands[id] = true
		}
	}
	ids := make([]int, 0, len(cands))
	for id := range cands {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	scored := parallel.Map(e.Workers, ids, func(_ int, id int) ColumnMatch {
		return ColumnMatch{Ref: e.refs[id], Score: qsig.EstimateContainment(e.sigs[id])}
	})
	var out []ColumnMatch
	for _, m := range scored {
		if m.Score >= threshold {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Ref.String() < out[b].Ref.String()
	})
	return out
}

// chooseRows returns the index of the largest row count whose collision
// probability 1-(1-j^r)^(k/r) is at least 0.9 at Jaccard threshold j.
func (e *LSHEnsemble) chooseRows(j float64) int {
	best := 0
	for ri, rows := range lshRowChoices {
		bands := float64(e.k / rows)
		p := 1 - math.Pow(1-math.Pow(j, float64(rows)), bands)
		if p >= 0.9 {
			best = ri
		}
	}
	return best
}
