package discovery

import (
	"errors"
	"math"
	"sort"

	"redi/internal/obs"
	"redi/internal/parallel"
)

// goldenGamma is the SplitMix64 stream increment (2^64 / φ, odd).
const goldenGamma = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 finalizer: a cheap bijective mixer whose outputs
// pass statistical independence tests even on sequential inputs. It is the
// remixing step behind one-pass MinHash slot derivation and band hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash64 is a seeded 64-bit string hash (FNV-1a core mixed with a
// SplitMix64 finalizer), the hash family behind MinHash signatures and
// sketch key sampling.
func hash64(s string, seed uint64) uint64 {
	h := uint64(1469598103934665603) ^ (seed * goldenGamma)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// MinHash is a k-slot MinHash signature of a value set. Signatures built
// with the same k are comparable; EstimateJaccard estimates the true Jaccard
// similarity with standard error ~1/sqrt(k).
type MinHash struct {
	Sig  []uint64
	Size int // cardinality of the hashed set
}

// NewMinHash hashes the value set into a k-slot signature. It panics if
// k <= 0.
//
// Signatures are one-pass: each value is string-hashed exactly once and its
// k per-slot hashes are derived by remixing a SplitMix64 stream seeded with
// that hash — ~5 register ops per slot instead of a fresh O(|v|) string
// hash, turning signature construction from O(|set|·k·|v|) byte work into
// O(|set|·(|v| + k)). The guarded min per slot is order-insensitive, so map
// iteration order cannot leak into the signature.
func NewMinHash(values map[string]bool, k int) *MinHash {
	if k <= 0 {
		panic("discovery: MinHash requires k > 0")
	}
	m := &MinHash{Sig: make([]uint64, k), Size: len(values)}
	// Each value's base hash is computed once; slot i's hash is
	// mix64(base + (i+1)·gamma). The walk is slot-major so the running
	// minimum lives in a register and the inner loop is a flat array scan:
	// a 4-way unroll pipelines the independent multiplier chains and the
	// tournament min keeps one predictable branch per group. The min fold
	// is commutative, so map iteration order cannot reach the signature.
	bases := make([]uint64, 0, len(values))
	for v := range values {
		bases = append(bases, hash64(v, 0)) //redi:allow maporder bases only feed commutative min folds below
	}
	sig := m.Sig
	g := uint64(0)
	for i := range sig {
		g += goldenGamma
		best := uint64(math.MaxUint64)
		j, n := 0, len(bases)
		for ; j+4 <= n; j += 4 {
			h0 := mix64(bases[j] + g)
			h1 := mix64(bases[j+1] + g)
			h2 := mix64(bases[j+2] + g)
			h3 := mix64(bases[j+3] + g)
			if h1 < h0 {
				h0 = h1
			}
			if h3 < h2 {
				h2 = h3
			}
			if h2 < h0 {
				h0 = h2
			}
			if h0 < best {
				best = h0
			}
		}
		for ; j < n; j++ {
			if h := mix64(bases[j] + g); h < best {
				best = h
			}
		}
		sig[i] = best
	}
	return m
}

// EstimateJaccard estimates the Jaccard similarity of the two underlying
// sets. It panics on signature length mismatch.
func (m *MinHash) EstimateJaccard(o *MinHash) float64 {
	if len(m.Sig) != len(o.Sig) {
		panic("discovery: MinHash signature length mismatch")
	}
	eq := 0
	for i := range m.Sig {
		if m.Sig[i] == o.Sig[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(m.Sig))
}

// EstimateContainment estimates |Q ∩ X| / |Q| from the Jaccard estimate and
// the stored set sizes, the conversion the LSH Ensemble uses:
// C = J (|Q| + |X|) / ((1 + J) |Q|), clamped to [0, 1].
func (m *MinHash) EstimateContainment(o *MinHash) float64 {
	if m.Size == 0 {
		return 1
	}
	j := m.EstimateJaccard(o)
	c := j * float64(m.Size+o.Size) / ((1 + j) * float64(m.Size))
	if c > 1 {
		return 1
	}
	if c < 0 {
		return 0
	}
	return c
}

// lshRowChoices are the per-band row counts for which bucket tables are
// materialized; Query picks one per partition based on the Jaccard
// threshold implied by the containment threshold and the partition's set
// sizes — the dynamic band geometry that defines the LSH Ensemble.
var lshRowChoices = []int{1, 2, 4, 8}

// LSHEnsemble indexes MinHash signatures for containment search (Zhu,
// Nargesian, Pu, Miller, VLDB 2016): indexed sets are partitioned by
// cardinality, and at query time each partition converts the containment
// threshold into its own Jaccard threshold (using the partition's upper
// size bound) and probes the banded index whose geometry best matches it.
type LSHEnsemble struct {
	k          int
	partitions []*lshPartition
	refs       []ColumnRef
	sigs       []*MinHash

	// Workers bounds the goroutines used by Index and Query: 0 (the
	// zero value) keeps the serial path, parallel.Auto uses every CPU.
	// Output is bit-identical at any worker count.
	Workers int

	// Obs receives the ensemble's operation counters (signatures hashed,
	// band probes, candidate vs verified match counts). Nil falls back to
	// the process-wide registry (obs.Enable). Per-partition probe tallies
	// are returned with the probe results and summed in partition order,
	// so the counters are bit-identical at any worker count.
	Obs *obs.Registry
}

type lshPartition struct {
	maxSize int
	// buckets[ri]: band-seeded hash -> entry ids, for rows=lshRowChoices[ri].
	// Keys are 64-bit band hashes (bandHash) seeded with the band index, so
	// one table per row-choice serves all bands.
	buckets []*bandTable
}

// bandTable is an open-addressed multimap from band hash to entry ids — the
// bucket index behind each row-choice. It replaces map[uint64][]int in the
// index build hot path: one linear-probe insert per (band, entry), no
// per-bucket slice headers, and ids stored in flat arrays the GC never has
// to trace element-by-element. Ids inserted under the same key come back
// from collect in insertion order, matching the append-per-id map build it
// replaces bit for bit.
type bandTable struct {
	mask uint64
	keys []uint64
	head []int32 // slot -> first entry index, -1 when empty
	next []int32 // entry -> next entry under the same key, -1 at the tail
	ids  []int32 // entry -> indexed column id
}

// newBandTable sizes the table for the given entry count at load factor
// <= 1/2 (power-of-two slots, linear probing stays short).
func newBandTable(capacity int) *bandTable {
	size := 1
	for size < capacity*2 {
		size <<= 1
	}
	t := &bandTable{
		mask: uint64(size - 1),
		keys: make([]uint64, size),
		head: make([]int32, size),
		next: make([]int32, 0, capacity),
		ids:  make([]int32, 0, capacity),
	}
	for i := range t.head {
		t.head[i] = -1
	}
	return t
}

// add appends id under key. tail carries each slot's chain tail across the
// build (same length as head) so equal-key ids stay in insertion order.
func (t *bandTable) add(key uint64, id int32, tail []int32) {
	slot := key & t.mask
	for {
		h := t.head[slot]
		if h < 0 {
			e := int32(len(t.ids))
			t.keys[slot] = key
			t.head[slot] = e
			tail[slot] = e
			t.ids = append(t.ids, id)
			t.next = append(t.next, -1)
			return
		}
		if t.keys[slot] == key {
			e := int32(len(t.ids))
			t.next[tail[slot]] = e
			tail[slot] = e
			t.ids = append(t.ids, id)
			t.next = append(t.next, -1)
			return
		}
		slot = (slot + 1) & t.mask
	}
}

// collect appends the ids stored under key to out, in insertion order.
func (t *bandTable) collect(key uint64, out []int) []int {
	slot := key & t.mask
	for {
		h := t.head[slot]
		if h < 0 {
			return out
		}
		if t.keys[slot] == key {
			for e := h; e >= 0; e = t.next[e] {
				out = append(out, int(t.ids[e]))
			}
			return out
		}
		slot = (slot + 1) & t.mask
	}
}

// lshSerialGrain is the index size below which Query stays serial: for small
// ensembles the goroutine fan-out/fan-in of the partition probes costs more
// than the probes themselves (measured ~2x slower on the benchmark corpus),
// so Workers only engages past this many indexed columns. Index keeps its
// parallel path at any size — signature construction dominates there.
const lshSerialGrain = 4096

// NewLSHEnsemble builds an index over signatures of k hashes with the given
// number of cardinality partitions. k must be at least 16; partitions must
// be positive.
func NewLSHEnsemble(k, partitions int) (*LSHEnsemble, error) {
	if k < 16 {
		return nil, errors.New("discovery: LSH ensemble requires k >= 16")
	}
	if partitions <= 0 {
		return nil, errors.New("discovery: LSH ensemble requires partitions > 0")
	}
	e := &LSHEnsemble{k: k}
	e.partitions = make([]*lshPartition, 0, partitions)
	return e, nil
}

// Index builds the ensemble over the given columns. Must be called once,
// before Query. Columns with empty domains are skipped. With Workers set,
// signature construction and per-partition bucket builds run concurrently;
// the resulting index is bit-identical to a serial build.
func (e *LSHEnsemble) Index(refs []ColumnRef, domains []map[string]bool) {
	// Each entry carries its rendered ref name: String() concatenates, and
	// paying that per sort comparison made the sort an allocation hot spot.
	type entry struct {
		ref  ColumnRef
		name string
		size int
		dom  map[string]bool
	}
	var entries []entry
	for i, ref := range refs {
		if len(domains[i]) == 0 {
			continue
		}
		entries = append(entries, entry{ref: ref, name: ref.String(), size: len(domains[i]), dom: domains[i]})
	}
	if len(entries) == 0 {
		return
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].size != entries[b].size {
			return entries[a].size < entries[b].size
		}
		return entries[a].name < entries[b].name
	})
	// Signature construction is the hot loop (|domain| × k hashes per
	// column) and is independent across columns.
	sigs := parallel.Map(e.Workers, entries, func(_ int, en entry) *MinHash {
		return NewMinHash(en.dom, e.k)
	})
	for i, en := range entries {
		e.refs = append(e.refs, en.ref)
		e.sigs = append(e.sigs, sigs[i])
	}
	nPart := cap(e.partitions)
	if nPart > len(entries) {
		nPart = len(entries)
	}
	per := (len(entries) + nPart - 1) / nPart
	var ranges [][2]int
	for start := 0; start < len(entries); start += per {
		end := start + per
		if end > len(entries) {
			end = len(entries)
		}
		ranges = append(ranges, [2]int{start, end})
	}
	parts := parallel.Map(e.Workers, ranges, func(_ int, rg [2]int) *lshPartition {
		start, end := rg[0], rg[1]
		p := &lshPartition{maxSize: entries[end-1].size}
		p.buckets = make([]*bandTable, len(lshRowChoices))
		n := end - start
		for ri, rows := range lshRowChoices {
			bands := e.k / rows
			t := newBandTable(n * bands)
			tail := make([]int32, len(t.head))
			for b := 0; b < bands; b++ {
				for j := 0; j < n; j++ {
					id := start + j
					t.add(bandHash(b, sigs[id].Sig[b*rows:(b+1)*rows]), int32(id), tail)
				}
			}
			p.buckets[ri] = t
		}
		return p
	})
	e.partitions = append(e.partitions, parts...)
	if reg := obs.Active(e.Obs); reg != nil {
		reg.Counter("discovery.lsh_index_builds").Inc()
		reg.Counter("discovery.lsh_columns_indexed").Add(int64(len(entries)))
		reg.Counter("discovery.minhash_sigs").Add(int64(len(entries)))
		values := 0
		for _, en := range entries {
			values += en.size
		}
		reg.Counter("discovery.minhash_values_hashed").Add(int64(values))
		bandsPerEntry := 0
		for _, rows := range lshRowChoices {
			bandsPerEntry += e.k / rows
		}
		reg.Counter("discovery.lsh_band_inserts").Add(int64(len(entries) * bandsPerEntry))
	}
}

// bandHash folds one band of signature slots into a 64-bit bucket key by
// alternating XOR with the SplitMix64 mixer, seeded with the band index so
// every band of a row-choice can share one bucket map. Two equal (band,
// slots) pairs always collide (the LSH requirement); unequal ones collide
// with probability ~2^-64, negligible next to the MinHash collision
// probability the band geometry is tuned around.
func bandHash(band int, sig []uint64) uint64 {
	h := mix64(uint64(band+1) * goldenGamma)
	for _, v := range sig {
		h = mix64(h ^ v)
	}
	return h
}

// Query returns candidate columns whose estimated containment of the query
// domain is at least threshold, best first. Per partition, the containment
// threshold t maps to the Jaccard threshold j = t·|Q| / (|Q| + sMax −
// t·|Q|); the partition is probed with the largest row count whose banded
// collision probability at j stays near one, so precision grows with the
// threshold without losing recall.
func (e *LSHEnsemble) Query(query map[string]bool, threshold float64) []ColumnMatch {
	if len(e.refs) == 0 {
		return nil
	}
	qsig := NewMinHash(query, e.k)
	q := float64(len(query))
	// Small-index cutoff: below lshSerialGrain the probe work cannot
	// amortize the fan-out, so force the serial path regardless of Workers.
	// parallel.Map output is order-preserving, so the result is identical
	// either way.
	workers := e.Workers
	if len(e.refs) < lshSerialGrain {
		workers = 0
	}
	// Partition probes are independent: fan them out and union the
	// candidate id sets afterwards (the union is order-insensitive). Each
	// probe returns its own band-probe tally; the tallies are summed in
	// partition order below, so the counters stay worker-invariant.
	type probeResult struct {
		ids    []int
		probes int
	}
	partCands := parallel.Map(workers, e.partitions, func(_ int, p *lshPartition) probeResult {
		j := 0.0
		if q > 0 {
			denom := q + float64(p.maxSize) - threshold*q
			if denom > 0 {
				j = threshold * q / denom
			}
		}
		ri := e.chooseRows(j)
		rows := lshRowChoices[ri]
		bands := e.k / rows
		var ids []int
		for b := 0; b < bands; b++ {
			key := bandHash(b, qsig.Sig[b*rows:(b+1)*rows])
			ids = p.buckets[ri].collect(key, ids)
		}
		return probeResult{ids: ids, probes: bands}
	})
	probes := 0
	cands := map[int]bool{}
	for _, pr := range partCands {
		probes += pr.probes
		for _, id := range pr.ids {
			cands[id] = true
		}
	}
	ids := make([]int, 0, len(cands))
	for id := range cands {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	scored := parallel.Map(workers, ids, func(_ int, id int) ColumnMatch {
		return ColumnMatch{Ref: e.refs[id], Score: qsig.EstimateContainment(e.sigs[id])}
	})
	var out []ColumnMatch
	for _, m := range scored {
		if m.Score >= threshold {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Ref.String() < out[b].Ref.String()
	})
	if reg := obs.Active(e.Obs); reg != nil {
		reg.Counter("discovery.lsh_queries").Inc()
		reg.Counter("discovery.minhash_sigs").Inc()
		reg.Counter("discovery.minhash_values_hashed").Add(int64(len(query)))
		reg.Counter("discovery.lsh_band_probes").Add(int64(probes))
		reg.Counter("discovery.lsh_candidates").Add(int64(len(ids)))
		reg.Counter("discovery.lsh_verified").Add(int64(len(out)))
	}
	return out
}

// chooseRows returns the index of the largest row count whose collision
// probability 1-(1-j^r)^(k/r) is at least 0.9 at Jaccard threshold j.
func (e *LSHEnsemble) chooseRows(j float64) int { return chooseRowsK(e.k, j) }
