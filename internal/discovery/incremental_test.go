package discovery

import (
	"fmt"
	"sort"
	"testing"

	"redi/internal/rng"
)

// TestMinHashAddEquivalence: growing an empty signature in arbitrary batches
// matches a one-pass NewMinHash over the full set, bit for bit.
func TestMinHashAddEquivalence(t *testing.T) {
	r := rng.New(5)
	for round := 0; round < 30; round++ {
		n := r.Intn(200)
		vals := make([]string, n)
		full := make(map[string]bool, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("v%d-%d", round, i)
			full[vals[i]] = true
		}
		want := NewMinHash(full, 32)
		inc := NewEmptyMinHash(32)
		for lo := 0; lo < n; {
			hi := lo + 1 + r.Intn(40)
			if hi > n {
				hi = n
			}
			inc.Add(vals[lo:hi])
			lo = hi
		}
		if inc.Size != want.Size {
			t.Fatalf("Size = %d, want %d", inc.Size, want.Size)
		}
		for i := range want.Sig {
			if inc.Sig[i] != want.Sig[i] {
				t.Fatalf("round %d: slot %d = %#x, one-pass has %#x", round, i, inc.Sig[i], want.Sig[i])
			}
		}
	}
}

// TestDynTable drives random insert/remove/collect schedules against a
// reference map-of-slices, forcing growth and tombstone traffic with a
// deliberately tiny key space so chains collide and empty out repeatedly.
func TestDynTable(t *testing.T) {
	r := rng.New(9)
	tab := newDynTable()
	ref := map[uint64][]int32{}
	keyOf := func() uint64 { return mix64(uint64(r.Intn(40))) }
	for op := 0; op < 5000; op++ {
		key := keyOf()
		switch r.Intn(3) {
		case 0, 1:
			id := int32(r.Intn(30))
			tab.insert(key, id)
			ref[key] = append(ref[key], id)
		case 2:
			if ids := ref[key]; len(ids) > 0 {
				pick := ids[r.Intn(len(ids))]
				if !tab.remove(key, pick) {
					t.Fatalf("op %d: remove(%#x, %d) missed", op, key, pick)
				}
				for i, id := range ids {
					if id == pick {
						ref[key] = append(ids[:i:i], ids[i+1:]...)
						break
					}
				}
			} else if tab.remove(key, 0) {
				t.Fatalf("op %d: remove from empty chain succeeded", op)
			}
		}
		if op%97 == 0 {
			for k := uint64(0); k < 40; k++ {
				key := mix64(k)
				got := tab.collect(key, nil)
				want := ref[key]
				if len(got) != len(want) {
					t.Fatalf("op %d key %#x: %v vs %v", op, key, got, want)
				}
				for i := range want {
					if int32(got[i]) != want[i] {
						t.Fatalf("op %d key %#x: order %v vs %v", op, key, got, want)
					}
				}
			}
		}
	}
}

// randCorpus builds column domains over a shared value universe so queries
// have real containment structure.
func randCorpus(r *rng.RNG, nCols int) ([]ColumnRef, []map[string]bool) {
	refs := make([]ColumnRef, nCols)
	doms := make([]map[string]bool, nCols)
	for i := range refs {
		refs[i] = ColumnRef{Table: fmt.Sprintf("t%02d", i/4), Column: fmt.Sprintf("c%02d", i%4)}
		n := 1 + r.Intn(120)
		dom := make(map[string]bool, n)
		for j := 0; j < n; j++ {
			dom[fmt.Sprintf("val-%d", r.Intn(300))] = true
		}
		doms[i] = dom
	}
	return refs, doms
}

// sortedVals returns a domain's values in deterministic order for chunked
// feeding.
func sortedVals(dom map[string]bool) []string {
	out := make([]string, 0, len(dom))
	for v := range dom {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// TestIncrementalLSHEquivalence pins the contract: any upsert schedule —
// chunked domains, interleaved columns, shuffled order — yields Query
// results bit-identical to a fresh index built from the final domains, at
// workers 1, 2, and 8.
func TestIncrementalLSHEquivalence(t *testing.T) {
	for _, seed := range []uint64{2, 21} {
		r := rng.New(seed)
		refs, doms := randCorpus(r, 24)

		inc, err := NewIncrementalLSH(32)
		if err != nil {
			t.Fatal(err)
		}
		// Feed each domain in random chunks, columns interleaved: repeatedly
		// pick a column with values left and upsert its next chunk.
		remaining := make([][]string, len(refs))
		for i, dom := range doms {
			remaining[i] = sortedVals(dom)
		}
		for {
			var pending []int
			for i, rest := range remaining {
				if len(rest) > 0 {
					pending = append(pending, i)
				}
			}
			if len(pending) == 0 {
				break
			}
			i := pending[r.Intn(len(pending))]
			k := 1 + r.Intn(len(remaining[i]))
			inc.Upsert(refs[i], remaining[i][:k])
			remaining[i] = remaining[i][k:]
		}

		// Rebuild: one-shot upserts in a different (shuffled) order.
		cold, err := NewIncrementalLSH(32)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range r.Perm(len(refs)) {
			cold.Upsert(refs[i], sortedVals(doms[i]))
		}

		// Signatures must match exactly.
		for i, ref := range refs {
			a := inc.sigs[inc.ids[ref.String()]]
			b := cold.sigs[cold.ids[ref.String()]]
			if a.Size != b.Size {
				t.Fatalf("seed %d: %s Size %d vs %d", seed, ref, a.Size, b.Size)
			}
			for s := range a.Sig {
				if a.Sig[s] != b.Sig[s] {
					t.Fatalf("seed %d: %s slot %d differs", seed, refs[i], s)
				}
			}
		}

		for trial := 0; trial < 8; trial++ {
			q := make(map[string]bool)
			for j := 0; j < 1+r.Intn(60); j++ {
				q[fmt.Sprintf("val-%d", r.Intn(300))] = true
			}
			threshold := 0.1 + 0.8*r.Float64()
			want := cold.Query(q, threshold)
			for _, workers := range []int{1, 2, 8} {
				inc.Workers = workers
				got := inc.Query(q, threshold)
				if len(got) != len(want) {
					t.Fatalf("seed %d trial %d workers %d: %d matches vs %d", seed, trial, workers, len(got), len(want))
				}
				for m := range want {
					if got[m] != want[m] {
						t.Fatalf("seed %d trial %d workers %d: match %d = %+v vs %+v", seed, trial, workers, m, got[m], want[m])
					}
				}
			}
		}
	}
}

// TestIncrementalLSHTierMigration grows one column across several
// power-of-two boundaries and checks it keeps exactly one indexed home.
func TestIncrementalLSHTierMigration(t *testing.T) {
	e, err := NewIncrementalLSH(32)
	if err != nil {
		t.Fatal(err)
	}
	ref := ColumnRef{Table: "t", Column: "c"}
	var all []string
	for step := 0; step < 6; step++ {
		var batch []string
		for j := 0; j < 3+step*5; j++ {
			batch = append(batch, fmt.Sprintf("s%d-%d", step, j))
		}
		all = append(all, batch...)
		e.Upsert(ref, batch)
		total := 0
		for _, tier := range e.tiers {
			if tier != nil {
				total += tier.count
			}
		}
		if total != 1 {
			t.Fatalf("step %d: %d tier entries for one column", step, total)
		}
	}
	// Self-containment: the full domain must retrieve the column.
	q := make(map[string]bool, len(all))
	for _, v := range all {
		q[v] = true
	}
	got := e.Query(q, 0.5)
	if len(got) != 1 || got[0].Ref != ref {
		t.Fatalf("self-query = %+v", got)
	}
}
