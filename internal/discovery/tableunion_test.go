package discovery

import (
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

// unionRepo: candidate tables with varying column alignment to a 2-column
// query (city, species).
func unionRepo(t *testing.T) (*Repository, map[string]map[string]bool) {
	t.Helper()
	r := NewRepository()
	add := func(name string, cols map[string][]string) {
		var attrs []dataset.Attribute
		var names []string
		for c := range cols {
			names = append(names, c)
		}
		// Deterministic column order.
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if names[j] < names[i] {
					names[i], names[j] = names[j], names[i]
				}
			}
		}
		maxLen := 0
		for _, vs := range cols {
			if len(vs) > maxLen {
				maxLen = len(vs)
			}
		}
		for _, c := range names {
			attrs = append(attrs, dataset.Attribute{Name: c, Kind: dataset.Categorical})
		}
		d := dataset.New(dataset.NewSchema(attrs...))
		for i := 0; i < maxLen; i++ {
			row := make([]dataset.Value, len(names))
			for j, c := range names {
				if i < len(cols[c]) {
					row[j] = dataset.Cat(cols[c][i])
				} else {
					row[j] = dataset.NullValue(dataset.Categorical)
				}
			}
			d.MustAppendRow(row...)
		}
		if err := r.Add(name, d); err != nil {
			t.Fatal(err)
		}
	}
	add("perfect", map[string][]string{
		"town":   {"chicago", "boston", "denver"},
		"animal": {"fox", "owl", "deer"},
	})
	add("partial", map[string][]string{
		"town":  {"chicago", "boston", "miami"},
		"color": {"red", "blue"},
	})
	add("unrelated", map[string][]string{
		"metal": {"iron", "zinc"},
	})
	query := map[string]map[string]bool{
		"city":    setOf("chicago", "boston", "denver"),
		"species": setOf("fox", "owl", "deer"),
	}
	return r, query
}

func TestTableUnionSearch(t *testing.T) {
	r, query := unionRepo(t)
	results := r.TableUnionSearch(query, 0.1)
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Table != "perfect" || results[0].Score != 1 {
		t.Fatalf("best = %+v", results[0])
	}
	if len(results[0].Matches) != 2 {
		t.Fatalf("matches = %+v", results[0].Matches)
	}
	if results[1].Table != "partial" {
		t.Fatalf("second = %+v", results[1])
	}
	// Partial: town matches city at J=0.5 (2 of 4), color matches
	// nothing -> score 0.25.
	if results[1].Score != 0.25 {
		t.Fatalf("partial score = %v", results[1].Score)
	}
	// A query column may match at most one candidate column and vice
	// versa.
	seen := map[string]bool{}
	for _, m := range results[0].Matches {
		if seen[m.QueryColumn] {
			t.Fatal("query column matched twice")
		}
		seen[m.QueryColumn] = true
	}
}

func TestTableUnionSearchEmpty(t *testing.T) {
	r, _ := unionRepo(t)
	if got := r.TableUnionSearch(nil, 0); got != nil {
		t.Fatalf("nil query = %v", got)
	}
}

func TestInvertedIndexMatchesScan(t *testing.T) {
	// Randomized cross-check: top-k by inverted index equals the exact
	// containment ordering from a full scan.
	c := synth.GenerateCorpus(synth.CorpusConfig{
		NumTables: 25, RowsPerTable: 150, KeyUniverse: 5000, QueryKeys: 150,
	}, rng.New(1))
	repo := NewRepository()
	for _, tbl := range c.Tables {
		if err := repo.Add(tbl.Name, tbl.Data); err != nil {
			t.Fatal(err)
		}
	}
	ix := NewInvertedIndex(repo)
	query := DomainOf(c.Query, "key")
	top := ix.TopKJoinable(query, 5)
	if len(top) != 5 {
		t.Fatalf("top-k = %d", len(top))
	}
	// Containment must be non-increasing and match brute force.
	for i := 1; i < len(top); i++ {
		if top[i].Overlap > top[i-1].Overlap {
			t.Fatal("top-k not sorted")
		}
	}
	for _, m := range top {
		if m.Ref.Column != "key" {
			continue
		}
		want := Containment(query, repo.Domain(m.Ref))
		if m.Containment != want {
			t.Fatalf("containment %v != exact %v for %v", m.Containment, want, m.Ref)
		}
	}
	// The best candidate is the corpus's full-containment table.
	best := c.Tables[len(c.Tables)-1].Name
	if top[0].Ref.Table != best {
		t.Fatalf("top-1 = %v, want %s", top[0].Ref, best)
	}
}

func TestInvertedIndexDegenerate(t *testing.T) {
	repo := NewRepository()
	d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "c", Kind: dataset.Categorical}))
	d.MustAppendRow(dataset.Cat("v"))
	if err := repo.Add("t", d); err != nil {
		t.Fatal(err)
	}
	ix := NewInvertedIndex(repo)
	if got := ix.TopKJoinable(nil, 5); got != nil {
		t.Fatalf("empty query = %v", got)
	}
	if got := ix.TopKJoinable(setOf("v"), 0); got != nil {
		t.Fatalf("k=0 = %v", got)
	}
	if got := ix.TopKJoinable(setOf("nope"), 3); len(got) != 0 {
		t.Fatalf("no-overlap query = %v", got)
	}
}

func TestInvertedIndexTieBreakPrefersSmaller(t *testing.T) {
	repo := NewRepository()
	mk := func(name string, vals ...string) {
		d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "c", Kind: dataset.Categorical}))
		for _, v := range vals {
			d.MustAppendRow(dataset.Cat(v))
		}
		if err := repo.Add(name, d); err != nil {
			t.Fatal(err)
		}
	}
	mk("small", "a", "b")
	mk("big", "a", "b", "x", "y", "z")
	ix := NewInvertedIndex(repo)
	top := ix.TopKJoinable(setOf("a", "b"), 2)
	if top[0].Ref.Table != "small" {
		t.Fatalf("tie break wrong: %v", top)
	}
}
