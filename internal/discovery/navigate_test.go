package discovery

import (
	"strings"
	"testing"

	"redi/internal/dataset"
)

// navRepo builds a repository with two clear topic clusters: US cities and
// chemical elements.
func navRepo(t *testing.T) *Repository {
	t.Helper()
	r := NewRepository()
	add := func(name string, vals ...string) {
		d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "c", Kind: dataset.Categorical}))
		for _, v := range vals {
			d.MustAppendRow(dataset.Cat(v))
		}
		if err := r.Add(name, d); err != nil {
			t.Fatal(err)
		}
	}
	add("cities1", "chicago", "boston", "denver", "seattle")
	add("cities2", "chicago", "boston", "miami", "austin")
	add("cities3", "denver", "seattle", "miami", "portland")
	add("elements1", "helium", "neon", "argon", "xenon")
	add("elements2", "helium", "neon", "krypton", "radon")
	return r
}

func TestOrganizeClustersByTopic(t *testing.T) {
	root := Organize(navRepo(t), 0.1, 5)
	if len(root.Columns) != 5 {
		t.Fatalf("root covers %d columns", len(root.Columns))
	}
	// Find the subtree containing cities1 and check elements are not in
	// the same immediate cluster.
	var findParent func(n *NavNode, table string) *NavNode
	findParent = func(n *NavNode, table string) *NavNode {
		for _, c := range n.Children {
			if sub := findParent(c, table); sub != nil {
				return sub
			}
			for _, col := range c.Columns {
				if col.Table == table {
					return c
				}
			}
		}
		return nil
	}
	cityNode := findParent(root, "cities1")
	if cityNode == nil {
		t.Fatal("cities1 not found")
	}
	for _, col := range cityNode.Columns {
		if strings.HasPrefix(col.Table, "elements") {
			t.Fatalf("elements clustered with cities: %v", cityNode.Columns)
		}
	}
}

func TestNavigateFindsTopic(t *testing.T) {
	root := Organize(navRepo(t), 0.1, 5)
	intent := map[string]bool{"helium": true, "argon": true}
	path, leafs := Navigate(root, intent)
	if len(path) == 0 || len(leafs) == 0 {
		t.Fatal("empty navigation")
	}
	for _, col := range leafs {
		if !strings.HasPrefix(col.Table, "elements") {
			t.Fatalf("navigation for elements intent reached %v", leafs)
		}
	}
	// City intent reaches a city table.
	_, leafs = Navigate(root, map[string]bool{"chicago": true, "boston": true})
	for _, col := range leafs {
		if !strings.HasPrefix(col.Table, "cities") {
			t.Fatalf("navigation for cities intent reached %v", leafs)
		}
	}
}

func TestOrganizeSingleColumn(t *testing.T) {
	r := NewRepository()
	d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "c", Kind: dataset.Categorical}))
	d.MustAppendRow(dataset.Cat("x"))
	if err := r.Add("only", d); err != nil {
		t.Fatal(err)
	}
	root := Organize(r, 0.5, 3)
	if !root.IsLeaf() || len(root.Columns) != 1 {
		t.Fatalf("single-column tree = %+v", root)
	}
	path, leafs := Navigate(root, map[string]bool{"x": true})
	if len(path) != 1 || len(leafs) != 1 {
		t.Fatalf("navigation = %v %v", path, leafs)
	}
}

func TestRenderTree(t *testing.T) {
	root := Organize(navRepo(t), 0.1, 3)
	s := RenderTree(root, 0)
	if !strings.Contains(s, "cities1.c") || !strings.Contains(s, "columns") {
		t.Fatalf("rendering:\n%s", s)
	}
}
