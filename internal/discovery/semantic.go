package discovery

import (
	"math"
	"sort"
)

// This file provides semantic attribute matching in the spirit of "Seeping
// Semantics" (Fernandez et al., ICDE 2018), which links datasets whose
// value sets do NOT overlap by comparing attribute names and descriptions
// in an embedding space. Pretrained embeddings are unavailable offline, so
// REDI substitutes character n-gram vectors with cosine similarity — the
// classical lexical-semantics approximation — which preserves the behavior
// that matters here: "zip_code" matches "zipcode" and "postal_code" better
// than "diagnosis" (see DESIGN.md, Substitutions).

// NGramVector returns the character n-gram count vector of s, lowercased,
// with boundary padding so short strings still produce grams. n <= 0
// defaults to 3.
func NGramVector(s string, n int) map[string]float64 {
	if n <= 0 {
		n = 3
	}
	// Lowercase and pad.
	b := make([]byte, 0, len(s)+2*(n-1))
	for i := 0; i < n-1; i++ {
		b = append(b, '_')
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	for i := 0; i < n-1; i++ {
		b = append(b, '_')
	}
	out := map[string]float64{}
	for i := 0; i+n <= len(b); i++ {
		out[string(b[i:i+n])]++
	}
	return out
}

// Cosine returns the cosine similarity of two sparse vectors (0 when
// either is empty).
func Cosine(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Sorted-key accumulation keeps the similarity bit-identical across
	// runs: float addition is not associative, so map order would leak
	// into the low bits (maporder).
	dot, na, nb := 0.0, 0.0, 0.0
	for _, g := range sortedKeys(a) {
		x := a[g]
		na += x * x
		if y, ok := b[g]; ok {
			dot += x * y
		}
	}
	for _, g := range sortedKeys(b) {
		nb += b[g] * b[g]
	}
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// sortedKeys returns the string keys of a float-valued map in sorted
// order, for order-stable accumulation (maporder).
func sortedKeys(v map[string]float64) []string {
	out := make([]string, 0, len(v))
	for g := range v {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// NameSimilarity scores two attribute names semantically (trigram cosine).
func NameSimilarity(a, b string) float64 {
	return Cosine(NGramVector(a, 3), NGramVector(b, 3))
}

// SemanticMatch is one semantically matched column.
type SemanticMatch struct {
	Query     string
	Candidate ColumnRef
	Score     float64
}

// SemanticColumnSearch ranks the repository's columns by name similarity
// with the query attribute names, returning matches at or above threshold,
// best first. It complements value-overlap search: it still works when two
// lakes encode the same concept with disjoint value sets.
func (r *Repository) SemanticColumnSearch(queryAttrs []string, threshold float64) []SemanticMatch {
	qVecs := make([]map[string]float64, len(queryAttrs))
	for i, q := range queryAttrs {
		qVecs[i] = NGramVector(q, 3)
	}
	var out []SemanticMatch
	for _, ref := range r.Columns() {
		cVec := NGramVector(ref.Column, 3)
		for i, q := range queryAttrs {
			if s := Cosine(qVecs[i], cVec); s >= threshold {
				out = append(out, SemanticMatch{Query: q, Candidate: ref, Score: s})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].Query != out[b].Query {
			return out[a].Query < out[b].Query
		}
		return out[a].Candidate.String() < out[b].Candidate.String()
	})
	return out
}
