package discovery

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"redi/internal/rng"
)

// exactJaccard computes |a ∩ b| / |a ∪ b| over the raw sets.
func exactJaccard(a, b map[string]bool) float64 {
	inter := 0
	for v := range a {
		if b[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Property: the one-pass signature's Jaccard estimate stays within a
// ~5-sigma band of the exact Jaccard on random set pairs with randomized
// sizes and overlap. At k=256 the estimator's standard error is at most
// 1/(2*sqrt(k)) ≈ 0.031, so a 0.16 bound holds for any honest hash family;
// a slot-correlation bug in the SplitMix64 remixing stream would blow
// through it immediately.
func TestOnePassMinHashJaccardErrorBound(t *testing.T) {
	const k = 256
	f := func(seed16 uint16) bool {
		r := rng.New(uint64(seed16)*2654435761 + 1)
		shared := 1 + r.Intn(200)
		onlyA := r.Intn(200)
		onlyB := r.Intn(200)
		a, b := map[string]bool{}, map[string]bool{}
		for i := 0; i < shared; i++ {
			v := fmt.Sprintf("s%d-%d", seed16, i)
			a[v] = true
			b[v] = true
		}
		for i := 0; i < onlyA; i++ {
			a[fmt.Sprintf("a%d-%d", seed16, i)] = true
		}
		for i := 0; i < onlyB; i++ {
			b[fmt.Sprintf("b%d-%d", seed16, i)] = true
		}
		est := NewMinHash(a, k).EstimateJaccard(NewMinHash(b, k))
		exact := exactJaccard(a, b)
		if math.Abs(est-exact) > 0.16 {
			t.Logf("seed %d: estimate %.4f vs exact %.4f (|A|=%d |B|=%d shared=%d)",
				seed16, est, exact, len(a), len(b), shared)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical sets always produce identical signatures (estimate
// exactly 1), and the estimate is symmetric in its arguments.
func TestOnePassMinHashSelfAndSymmetry(t *testing.T) {
	f := func(seed16 uint16) bool {
		r := rng.New(uint64(seed16) + 7)
		n := 1 + r.Intn(300)
		a, b := map[string]bool{}, map[string]bool{}
		for i := 0; i < n; i++ {
			v := fmt.Sprintf("v%d-%d", seed16, i)
			a[v] = true
			if r.Float64() < 0.5 {
				b[v] = true
			}
		}
		b[fmt.Sprintf("x%d", seed16)] = true
		ma, ma2, mb := NewMinHash(a, 64), NewMinHash(a, 64), NewMinHash(b, 64)
		if ma.EstimateJaccard(ma2) != 1 {
			return false
		}
		return ma.EstimateJaccard(mb) == mb.EstimateJaccard(ma)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
