package discovery

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements data-lake organization for navigation (tutorial
// §3.1; Nargesian et al., "Organizing Data Lakes for Navigation", SIGMOD
// 2020): instead of answering point queries, the repository's columns are
// clustered bottom-up by domain similarity into a tree a user can descend,
// choosing at each level the child whose contents best match their intent.

// NavNode is one node of the navigation tree.
type NavNode struct {
	// Columns are the leaf columns under this node.
	Columns []ColumnRef
	// Terms are the most characteristic domain values of the subtree,
	// the "label" shown while navigating.
	Terms []string
	// Children are the node's subtrees (empty for leaves).
	Children []*NavNode

	domain map[string]bool
}

// IsLeaf reports whether the node wraps a single column.
func (n *NavNode) IsLeaf() bool { return len(n.Children) == 0 }

// Organize builds a navigation tree over the repository's indexed columns
// by agglomerative clustering on domain Jaccard similarity (average
// linkage on merged domains), stopping when the best merge falls below
// minSim and joining the remaining clusters under a root. maxTerms caps
// the label size per node.
func Organize(r *Repository, minSim float64, maxTerms int) *NavNode {
	if maxTerms <= 0 {
		maxTerms = 5
	}
	var clusters []*NavNode
	for _, ref := range r.Columns() {
		dom := r.Domain(ref)
		n := &NavNode{
			Columns: []ColumnRef{ref},
			domain:  dom,
		}
		n.Terms = topTerms(dom, maxTerms)
		clusters = append(clusters, n)
	}
	for len(clusters) > 1 {
		bi, bj, best := -1, -1, minSim
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if s := Jaccard(clusters[i].domain, clusters[j].domain); s >= best {
					bi, bj, best = i, j, s
				}
			}
		}
		if bi < 0 {
			break
		}
		merged := &NavNode{
			Children: []*NavNode{clusters[bi], clusters[bj]},
			domain:   unionDomains(clusters[bi].domain, clusters[bj].domain),
		}
		merged.Columns = append(append([]ColumnRef(nil), clusters[bi].Columns...), clusters[bj].Columns...)
		merged.Terms = topTerms(merged.domain, maxTerms)
		// Remove bj first (larger index), then bi.
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		clusters[bi] = merged
	}
	if len(clusters) == 1 {
		return clusters[0]
	}
	root := &NavNode{Children: clusters, domain: map[string]bool{}}
	for _, c := range clusters {
		root.Columns = append(root.Columns, c.Columns...)
		root.domain = unionDomains(root.domain, c.domain)
	}
	root.Terms = topTerms(root.domain, maxTerms)
	return root
}

func unionDomains(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for v := range a {
		out[v] = true
	}
	for v := range b {
		out[v] = true
	}
	return out
}

// topTerms returns up to k lexicographically-stable representative values.
func topTerms(dom map[string]bool, k int) []string {
	terms := make([]string, 0, len(dom))
	for v := range dom {
		terms = append(terms, v)
	}
	sort.Strings(terms)
	if len(terms) > k {
		terms = terms[:k]
	}
	return terms
}

// Navigate descends the tree greedily: at each node it moves to the child
// whose domain has the highest Jaccard similarity with the query intent,
// returning the visited path and the reached leaf columns. Ties and empty
// trees resolve toward the first child.
func Navigate(root *NavNode, intent map[string]bool) (path []*NavNode, leafs []ColumnRef) {
	node := root
	for node != nil {
		path = append(path, node)
		if node.IsLeaf() {
			break
		}
		best := node.Children[0]
		bestSim := -1.0
		for _, c := range node.Children {
			if s := Jaccard(intent, c.domain); s > bestSim {
				best, bestSim = c, s
			}
		}
		node = best
	}
	if len(path) > 0 {
		leafs = path[len(path)-1].Columns
	}
	return path, leafs
}

// RenderTree prints the tree with indentation, for CLI and examples.
func RenderTree(n *NavNode, depth int) string {
	var sb strings.Builder
	indent := strings.Repeat("  ", depth)
	label := strings.Join(n.Terms, ",")
	if n.IsLeaf() && len(n.Columns) == 1 {
		fmt.Fprintf(&sb, "%s- %s {%s}\n", indent, n.Columns[0], label)
	} else {
		fmt.Fprintf(&sb, "%s+ [%d columns] {%s}\n", indent, len(n.Columns), label)
		for _, c := range n.Children {
			sb.WriteString(RenderTree(c, depth+1))
		}
	}
	return sb.String()
}
