// Package discovery implements dataset discovery over a table repository
// (tutorial §3.1): IR-style keyword search, unionability and joinability
// search on column domains (exact Jaccard/containment), MinHash sketches
// with an LSH-ensemble index for internet-scale domain search (Zhu et al.,
// VLDB 2016), correlation sketches for join-correlation queries (Santos et
// al., SIGMOD 2021), and unbiased feature discovery that ranks joinable
// features by target correlation penalized by sensitive-attribute
// association (tutorial §5).
package discovery

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"redi/internal/dataset"
)

// Table is a named dataset registered in a repository. Exactly one of Data
// and Part is set at registration: Part marks a table backed by a
// partitioned (possibly out-of-core) view, whose domain indexes were built
// from global dictionaries without reading any row page. Rows materializes
// such a table on first row-level use.
type Table struct {
	Name string
	Data *dataset.Dataset
	Part *dataset.Partitioned
}

// Rows returns the table's rows as an in-memory dataset. Tables registered
// from a partitioned view materialize on first call and cache the result;
// domain-level search never triggers this, only row-backed consumers
// (feature-search joins, correlation sketches) do.
func (t *Table) Rows() *dataset.Dataset {
	if t.Data == nil && t.Part != nil {
		d := dataset.New(t.Part.Schema())
		rows := make([]int, t.Part.NumRows())
		for i := range rows {
			rows[i] = i
		}
		if err := t.Part.AppendRowsTo(d, rows); err != nil {
			panic(fmt.Sprintf("discovery: materializing table %q: %v", t.Name, err))
		}
		t.Data = d
	}
	return t.Data
}

// ColumnRef identifies one column of one table.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference as table.column.
func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// Repository is an in-memory data lake: a set of tables with per-column
// domain indexes and a keyword index.
type Repository struct {
	tables  map[string]*Table
	order   []string
	domains map[ColumnRef]map[string]bool

	// Keyword index state.
	docTerms map[string]map[string]float64 // table -> term -> tf
	docFreq  map[string]float64            // term -> #tables containing it
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{
		tables:   map[string]*Table{},
		domains:  map[ColumnRef]map[string]bool{},
		docTerms: map[string]map[string]float64{},
		docFreq:  map[string]float64{},
	}
}

// Add registers a table. It returns an error on a duplicate name.
func (r *Repository) Add(name string, d *dataset.Dataset) error {
	return r.register(&Table{Name: name, Data: d}, d.Schema(), d.Domain)
}

// AddPartitioned registers a partitioned (possibly out-of-core) view as a
// table. Domain and keyword indexes come straight from the view's global
// dictionaries — the exact value sets, with zero page reads — so a
// repository can index column files far larger than memory. Row-backed
// consumers materialize the view lazily via Table.Rows.
func (r *Repository) AddPartitioned(name string, pd *dataset.Partitioned) error {
	return r.register(&Table{Name: name, Part: pd}, pd.Schema(), pd.Domain)
}

// register indexes a table's schema and categorical domains; domain yields
// the distinct values of one categorical attribute, whatever the backend.
func (r *Repository) register(t *Table, s *dataset.Schema, domain func(attr string) []string) error {
	if _, dup := r.tables[t.Name]; dup {
		return fmt.Errorf("discovery: duplicate table %q", t.Name)
	}
	name := t.Name
	r.tables[name] = t
	r.order = append(r.order, name)

	terms := map[string]float64{}
	addTerm := func(s string) {
		for _, tok := range Tokenize(s) {
			terms[tok]++
		}
	}
	addTerm(name)
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		addTerm(a.Name)
		if a.Kind == dataset.Categorical {
			ref := ColumnRef{Table: name, Column: a.Name}
			dom := map[string]bool{}
			for _, v := range domain(a.Name) {
				dom[v] = true
				addTerm(v)
			}
			r.domains[ref] = dom
		}
	}
	r.docTerms[name] = terms
	for term := range terms {
		r.docFreq[term]++
	}
	return nil
}

// Table returns a registered table, or nil.
func (r *Repository) Table(name string) *Table { return r.tables[name] }

// Tables returns all table names in registration order.
func (r *Repository) Tables() []string { return append([]string(nil), r.order...) }

// Columns returns all indexed categorical column references, sorted.
func (r *Repository) Columns() []ColumnRef {
	out := make([]ColumnRef, 0, len(r.domains))
	for ref := range r.domains {
		out = append(out, ref)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Table != out[b].Table {
			return out[a].Table < out[b].Table
		}
		return out[a].Column < out[b].Column
	})
	return out
}

// Domain returns the indexed value set of a column (nil if not indexed).
func (r *Repository) Domain(ref ColumnRef) map[string]bool { return r.domains[ref] }

// Tokenize lowercases and splits a string on non-alphanumeric boundaries.
func Tokenize(s string) []string {
	var out []string
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, c := range strings.ToLower(s) {
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			cur.WriteRune(c)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// SearchHit is one keyword-search result.
type SearchHit struct {
	Table string
	Score float64
}

// KeywordSearch ranks tables by TF-IDF relevance to the query terms,
// returning at most k hits with positive score.
func (r *Repository) KeywordSearch(query string, k int) []SearchHit {
	qTerms := Tokenize(query)
	n := float64(len(r.tables))
	scores := map[string]float64{}
	for _, term := range qTerms {
		df := r.docFreq[term]
		if df == 0 {
			continue
		}
		idf := math.Log(1 + n/df)
		for table, terms := range r.docTerms {
			if tf := terms[term]; tf > 0 {
				scores[table] += (1 + math.Log(tf)) * idf
			}
		}
	}
	hits := make([]SearchHit, 0, len(scores))
	for table, s := range scores {
		hits = append(hits, SearchHit{Table: table, Score: s})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].Table < hits[b].Table
	})
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits
}

// Jaccard returns |a ∩ b| / |a ∪ b| of two value sets (1 when both empty).
func Jaccard(a, b map[string]bool) float64 {
	inter := 0
	for v := range a {
		if b[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Containment returns |a ∩ b| / |a|: how much of query domain a is covered
// by candidate b (1 when a is empty). It is the joinability measure of
// JOSIE-style search.
func Containment(a, b map[string]bool) float64 {
	if len(a) == 0 {
		return 1
	}
	inter := 0
	for v := range a {
		if b[v] {
			inter++
		}
	}
	return float64(inter) / float64(len(a))
}

// ColumnMatch is one domain-search result.
type ColumnMatch struct {
	Ref   ColumnRef
	Score float64
}

// UnionableColumns ranks indexed columns by exact Jaccard similarity with
// the query domain, returning those at or above threshold, best first.
func (r *Repository) UnionableColumns(query map[string]bool, threshold float64) []ColumnMatch {
	return r.scanColumns(query, threshold, Jaccard)
}

// JoinableColumns ranks indexed columns by exact containment of the query
// domain, returning those at or above threshold, best first.
func (r *Repository) JoinableColumns(query map[string]bool, threshold float64) []ColumnMatch {
	return r.scanColumns(query, threshold, Containment)
}

func (r *Repository) scanColumns(query map[string]bool, threshold float64, score func(a, b map[string]bool) float64) []ColumnMatch {
	var out []ColumnMatch
	for _, ref := range r.Columns() {
		s := score(query, r.domains[ref])
		if s >= threshold {
			out = append(out, ColumnMatch{Ref: ref, Score: s})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Ref.String() < out[b].Ref.String()
	})
	return out
}

// DomainOf extracts the value set of a categorical column of any dataset,
// for use as a search query.
func DomainOf(d *dataset.Dataset, attr string) map[string]bool {
	out := map[string]bool{}
	for _, v := range d.Domain(attr) {
		out[v] = true
	}
	return out
}

// DomainOfPartitioned extracts the value set of a categorical column of a
// partitioned view from its global dictionary — no page reads — for use as
// a search query.
func DomainOfPartitioned(pd *dataset.Partitioned, attr string) map[string]bool {
	out := map[string]bool{}
	for _, v := range pd.Domain(attr) {
		out[v] = true
	}
	return out
}
