package discovery

import (
	"fmt"
	"math"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

func setOf(vals ...string) map[string]bool {
	m := map[string]bool{}
	for _, v := range vals {
		m[v] = true
	}
	return m
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Chicago-Health_Records 2022")
	want := []string{"chicago", "health", "records", "2022"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestRepositoryAddAndKeywordSearch(t *testing.T) {
	r := NewRepository()
	health := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "zip", Kind: dataset.Categorical},
		dataset.Attribute{Name: "diagnosis", Kind: dataset.Categorical},
	))
	health.MustAppendRow(dataset.Cat("60601"), dataset.Cat("cancer"))
	if err := r.Add("chicago_health", health); err != nil {
		t.Fatal(err)
	}
	weather := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "city", Kind: dataset.Categorical},
		dataset.Attribute{Name: "temp", Kind: dataset.Numeric},
	))
	weather.MustAppendRow(dataset.Cat("chicago"), dataset.Num(20))
	if err := r.Add("weather", weather); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("weather", weather); err == nil {
		t.Fatal("duplicate table accepted")
	}

	hits := r.KeywordSearch("health cancer", 10)
	if len(hits) == 0 || hits[0].Table != "chicago_health" {
		t.Fatalf("keyword hits = %v", hits)
	}
	// Both tables mention chicago.
	hits = r.KeywordSearch("chicago", 10)
	if len(hits) != 2 {
		t.Fatalf("chicago hits = %v", hits)
	}
	if got := r.KeywordSearch("nonexistentterm", 10); len(got) != 0 {
		t.Fatalf("phantom hits = %v", got)
	}
	if len(r.Tables()) != 2 {
		t.Fatalf("tables = %v", r.Tables())
	}
}

func TestJaccardAndContainment(t *testing.T) {
	a := setOf("x", "y", "z")
	b := setOf("y", "z", "w")
	if j := Jaccard(a, b); j != 0.5 {
		t.Fatalf("Jaccard = %v", j)
	}
	if c := Containment(a, b); math.Abs(c-2.0/3) > 1e-12 {
		t.Fatalf("Containment = %v", c)
	}
	if Jaccard(nil, nil) != 1 || Containment(nil, setOf("a")) != 1 {
		t.Fatal("empty-set conventions wrong")
	}
}

func TestUnionableJoinableSearch(t *testing.T) {
	r := NewRepository()
	mk := func(name string, vals ...string) {
		d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "c", Kind: dataset.Categorical}))
		for _, v := range vals {
			d.MustAppendRow(dataset.Cat(v))
		}
		if err := r.Add(name, d); err != nil {
			t.Fatal(err)
		}
	}
	mk("full", "a", "b", "c", "d")
	mk("half", "a", "b", "x", "y")
	mk("none", "p", "q")

	query := setOf("a", "b", "c", "d")
	uni := r.UnionableColumns(query, 0.4)
	if len(uni) != 1 || uni[0].Ref.Table != "full" {
		t.Fatalf("unionable = %v", uni)
	}
	join := r.JoinableColumns(query, 0.6)
	if len(join) != 1 || join[0].Ref.Table != "full" {
		t.Fatalf("joinable = %v", join)
	}
	join = r.JoinableColumns(query, 0.5)
	if len(join) != 2 || join[0].Ref.Table != "full" || join[1].Ref.Table != "half" {
		t.Fatalf("joinable@0.4 = %v", join)
	}
}

func TestMinHashEstimates(t *testing.T) {
	r := rng.New(1)
	// Two sets with known Jaccard 1/3 (100 shared of 300 union).
	a := map[string]bool{}
	b := map[string]bool{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("shared%04d", i)
		a[k] = true
		b[k] = true
	}
	for i := 0; i < 100; i++ {
		a[fmt.Sprintf("onlya%04d", i)] = true
		b[fmt.Sprintf("onlyb%04d", i)] = true
	}
	_ = r
	ma := NewMinHash(a, 256)
	mb := NewMinHash(b, 256)
	if est := ma.EstimateJaccard(mb); math.Abs(est-1.0/3) > 0.1 {
		t.Fatalf("Jaccard estimate = %v, want ~0.333", est)
	}
	// Containment of a in b is 0.5.
	if est := ma.EstimateContainment(mb); math.Abs(est-0.5) > 0.12 {
		t.Fatalf("containment estimate = %v, want ~0.5", est)
	}
	// Identical sets.
	if est := ma.EstimateJaccard(NewMinHash(a, 256)); est != 1 {
		t.Fatalf("self Jaccard = %v", est)
	}
}

func TestMinHashErrorShrinksWithK(t *testing.T) {
	a := map[string]bool{}
	b := map[string]bool{}
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("s%03d", i)
		a[k] = true
		b[k] = true
	}
	for i := 0; i < 140; i++ {
		a[fmt.Sprintf("a%03d", i)] = true
		b[fmt.Sprintf("b%03d", i)] = true
	}
	truth := 60.0 / 340.0
	errAt := func(k int) float64 {
		return math.Abs(NewMinHash(a, k).EstimateJaccard(NewMinHash(b, k)) - truth)
	}
	// Not strictly monotone for a single draw, but 16 vs 1024 should
	// show the trend decisively.
	if errAt(1024) > errAt(16)+0.05 {
		t.Fatalf("error did not shrink: k16=%v k1024=%v", errAt(16), errAt(1024))
	}
}

func TestLSHEnsembleFindsJoinable(t *testing.T) {
	c := synth.GenerateCorpus(synth.CorpusConfig{
		NumTables: 20, RowsPerTable: 200, KeyUniverse: 5000, QueryKeys: 200,
	}, rng.New(2))

	r := NewRepository()
	for _, tbl := range c.Tables {
		if err := r.Add(tbl.Name, tbl.Data); err != nil {
			t.Fatal(err)
		}
	}
	refs := r.Columns()
	var keyRefs []ColumnRef
	var domains []map[string]bool
	for _, ref := range refs {
		if ref.Column == "key" {
			keyRefs = append(keyRefs, ref)
			domains = append(domains, r.Domain(ref))
		}
	}
	ens, err := NewLSHEnsemble(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	ens.Index(keyRefs, domains)

	query := DomainOf(c.Query, "key")
	const threshold = 0.5
	got := ens.Query(query, threshold)
	gotSet := map[string]bool{}
	for _, m := range got {
		gotSet[m.Ref.Table] = true
	}
	// Ground truth from the corpus.
	var truePos, found int
	for _, tbl := range c.Tables {
		if tbl.Containment >= threshold+0.1 { // clear positives
			truePos++
			if gotSet[tbl.Name] {
				found++
			}
		}
	}
	if truePos == 0 {
		t.Fatal("corpus has no clear positives")
	}
	recall := float64(found) / float64(truePos)
	if recall < 0.9 {
		t.Fatalf("LSH ensemble recall = %v (found %d of %d)", recall, found, truePos)
	}
	// Clear negatives must not be returned.
	for _, tbl := range c.Tables {
		if tbl.Containment < threshold-0.2 && gotSet[tbl.Name] {
			t.Fatalf("false positive: %s (containment %v)", tbl.Name, tbl.Containment)
		}
	}
}

func TestLSHEnsembleValidation(t *testing.T) {
	if _, err := NewLSHEnsemble(8, 4); err == nil {
		t.Fatal("k<16 accepted")
	}
	if _, err := NewLSHEnsemble(128, 0); err == nil {
		t.Fatal("0 partitions accepted")
	}
	ens, err := NewLSHEnsemble(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := ens.Query(setOf("a"), 0.5); got != nil {
		t.Fatalf("query on empty index = %v", got)
	}
}

func TestCorrelationSketch(t *testing.T) {
	r := rng.New(3)
	// Two tables over the same keys; values strongly correlated.
	d1 := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "v", Kind: dataset.Numeric},
	))
	d2 := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "w", Kind: dataset.Numeric},
	))
	for i := 0; i < 2000; i++ {
		base := r.Normal(0, 1)
		key := fmt.Sprintf("k%05d", i)
		d1.MustAppendRow(dataset.Cat(key), dataset.Num(base+r.Normal(0, 0.3)))
		d2.MustAppendRow(dataset.Cat(key), dataset.Num(2*base+r.Normal(0, 0.3)))
	}
	exact, n := JoinCorrelationExact(d1, "k", "v", d2, "k", "w")
	if n != 2000 || exact < 0.8 {
		t.Fatalf("exact corr = %v over %d keys", exact, n)
	}
	s1 := SketchColumn(d1, "k", "v", 256)
	s2 := SketchColumn(d2, "k", "w", 256)
	if s1.Len() != 256 {
		t.Fatalf("sketch kept %d keys", s1.Len())
	}
	est, aligned := s1.EstimateCorrelation(s2)
	// Coordinated sampling: nearly all sketch keys align.
	if aligned < 200 {
		t.Fatalf("aligned keys = %d", aligned)
	}
	if SketchError(est, exact) > 0.1 {
		t.Fatalf("sketch corr = %v, exact %v", est, exact)
	}
}

func TestCorrelationSketchErrorShrinksWithB(t *testing.T) {
	r := rng.New(4)
	d1 := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "v", Kind: dataset.Numeric},
	))
	d2 := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "w", Kind: dataset.Numeric},
	))
	for i := 0; i < 3000; i++ {
		base := r.Normal(0, 1)
		key := fmt.Sprintf("k%05d", i)
		d1.MustAppendRow(dataset.Cat(key), dataset.Num(base+r.Normal(0, 1)))
		d2.MustAppendRow(dataset.Cat(key), dataset.Num(base+r.Normal(0, 1)))
	}
	exact, _ := JoinCorrelationExact(d1, "k", "v", d2, "k", "w")
	errAt := func(b int) float64 {
		e, _ := SketchColumn(d1, "k", "v", b).EstimateCorrelation(SketchColumn(d2, "k", "w", b))
		return SketchError(e, exact)
	}
	if errAt(1024) > errAt(16)+0.05 {
		t.Fatalf("sketch error did not shrink: b16=%v b1024=%v", errAt(16), errAt(1024))
	}
}

func TestSketchRepeatedKeysAveraged(t *testing.T) {
	s := NewCorrelationSketch(8)
	s.Add("a", 1)
	s.Add("a", 3)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v := s.entries["a"]; v != 2 {
		t.Fatalf("averaged value = %v", v)
	}
}

func TestDiscoverFeatures(t *testing.T) {
	r := rng.New(5)
	// Query table: key, sensitive group, numeric target.
	q := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "key", Kind: dataset.Categorical, Role: dataset.ID},
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "target", Kind: dataset.Numeric, Role: dataset.Target},
	))
	// Candidate "good": feature correlated with target, independent of grp.
	good := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "key", Kind: dataset.Categorical},
		dataset.Attribute{Name: "feat_good", Kind: dataset.Numeric},
	))
	// Candidate "proxy": feature that encodes grp (biased) and through it
	// weakly the target.
	proxy := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "key", Kind: dataset.Categorical},
		dataset.Attribute{Name: "feat_proxy", Kind: dataset.Numeric},
	))
	for i := 0; i < 1500; i++ {
		key := fmt.Sprintf("e%05d", i)
		grp := "a"
		gShift := 0.0
		if i%4 == 0 {
			grp = "b"
			gShift = 3
		}
		signal := r.Normal(0, 1)
		target := signal + 0.5*gShift + r.Normal(0, 0.3)
		q.MustAppendRow(dataset.Cat(key), dataset.Cat(grp), dataset.Num(target))
		good.MustAppendRow(dataset.Cat(key), dataset.Num(signal+r.Normal(0, 0.3)))
		proxy.MustAppendRow(dataset.Cat(key), dataset.Num(gShift+r.Normal(0, 0.3)))
	}
	repo := NewRepository()
	if err := repo.Add("good", good); err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("proxy", proxy); err != nil {
		t.Fatal(err)
	}
	hits, err := DiscoverFeatures(repo, FeatureQuery{
		Query:      q,
		JoinAttr:   "key",
		TargetAttr: "target",
		Sensitive:  []string{"grp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Column.Table != "good" {
		t.Fatalf("biased feature ranked first: %+v", hits)
	}
	if hits[0].SensitiveAssoc >= hits[1].SensitiveAssoc {
		t.Fatalf("good assoc %v should be below proxy %v",
			hits[0].SensitiveAssoc, hits[1].SensitiveAssoc)
	}
	if hits[1].TargetCorr <= 0 {
		t.Fatal("proxy should still correlate with target")
	}
}

func TestDiscoverFeaturesValidation(t *testing.T) {
	repo := NewRepository()
	q := dataset.New(dataset.NewSchema(dataset.Attribute{Name: "key", Kind: dataset.Categorical}))
	if _, err := DiscoverFeatures(repo, FeatureQuery{Query: q, JoinAttr: "nope", TargetAttr: "t"}); err == nil {
		t.Fatal("bad join attr accepted")
	}
	if _, err := DiscoverFeatures(repo, FeatureQuery{Query: q, JoinAttr: "key", TargetAttr: "nope"}); err == nil {
		t.Fatal("bad target attr accepted")
	}
}
