package discovery

import (
	"reflect"
	"testing"

	"redi/internal/rng"
	"redi/internal/synth"
)

// buildEnsemble indexes the synthetic corpus's key columns with the given
// worker count and returns the ensemble plus the query domain.
func buildEnsemble(t *testing.T, workers int) (*LSHEnsemble, map[string]bool) {
	t.Helper()
	c := synth.GenerateCorpus(synth.CorpusConfig{
		NumTables: 30, RowsPerTable: 200, KeyUniverse: 8000, QueryKeys: 200,
	}, rng.New(11))
	r := NewRepository()
	for _, tbl := range c.Tables {
		if err := r.Add(tbl.Name, tbl.Data); err != nil {
			t.Fatal(err)
		}
	}
	var refs []ColumnRef
	var domains []map[string]bool
	for _, ref := range r.Columns() {
		if ref.Column == "key" {
			refs = append(refs, ref)
			domains = append(domains, r.Domain(ref))
		}
	}
	ens, err := NewLSHEnsemble(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	ens.Workers = workers
	ens.Index(refs, domains)
	return ens, DomainOf(c.Query, "key")
}

// TestLSHEnsembleParallelDeterminism pins the determinism contract: index
// and query results are bit-identical at workers ∈ {1, 8}.
func TestLSHEnsembleParallelDeterminism(t *testing.T) {
	serial, query := buildEnsemble(t, 0)
	par, _ := buildEnsemble(t, 8)
	if !reflect.DeepEqual(serial.refs, par.refs) {
		t.Fatal("indexed ref order diverged between serial and parallel builds")
	}
	for i := range serial.sigs {
		if !reflect.DeepEqual(serial.sigs[i].Sig, par.sigs[i].Sig) {
			t.Fatalf("signature %d diverged between serial and parallel builds", i)
		}
	}
	if len(serial.partitions) != len(par.partitions) {
		t.Fatalf("partition count diverged: %d vs %d", len(serial.partitions), len(par.partitions))
	}
	for _, th := range []float64{0.3, 0.5, 0.7} {
		a := serial.Query(query, th)
		b := par.Query(query, th)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("threshold %v: serial and parallel query results differ:\n%v\n%v", th, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("threshold %v: query returned nothing; determinism check is vacuous", th)
		}
	}
}
