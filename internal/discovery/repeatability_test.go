package discovery

import (
	"fmt"
	"testing"

	"redi/internal/dataset"
)

// Cosine and the correlation sketches sum floats over map entries; before
// the maporder sweep the summation order — and therefore the result's low
// bits — followed Go's randomized map iteration. Bit-identical repetition
// is the contract now.
func TestCosineRepeatable(t *testing.T) {
	a := NGramVector("socioeconomic_status_code", 3)
	b := NGramVector("economic_status", 3)
	first := Cosine(a, b)
	if first == 0 {
		t.Fatal("expected non-zero similarity")
	}
	for i := 1; i < 200; i++ {
		if got := Cosine(a, b); got != first {
			t.Fatalf("run %d: cosine = %v, want bit-identical %v", i, got, first)
		}
	}
}

func TestSketchCorrelationRepeatable(t *testing.T) {
	d1 := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "v", Kind: dataset.Numeric},
	))
	d2 := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "v", Kind: dataset.Numeric},
	))
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%03d", i)
		d1.MustAppendRow(dataset.Cat(key), dataset.Num(float64(i)+0.25))
		d2.MustAppendRow(dataset.Cat(key), dataset.Num(float64(i)*1.5-7))
	}
	s1 := SketchColumn(d1, "k", "v", 64)
	s2 := SketchColumn(d2, "k", "v", 64)
	firstEst, firstAligned := s1.EstimateCorrelation(s2)
	firstExact, _ := JoinCorrelationExact(d1, "k", "v", d2, "k", "v")
	if firstAligned < 3 {
		t.Fatalf("expected aligned keys, got %d", firstAligned)
	}
	for i := 1; i < 100; i++ {
		if est, n := s1.EstimateCorrelation(s2); est != firstEst || n != firstAligned {
			t.Fatalf("run %d: estimate (%v, %d), want (%v, %d)", i, est, n, firstEst, firstAligned)
		}
		if exact, _ := JoinCorrelationExact(d1, "k", "v", d2, "k", "v"); exact != firstExact {
			t.Fatalf("run %d: exact %v, want %v", i, exact, firstExact)
		}
	}
}
