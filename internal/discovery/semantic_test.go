package discovery

import (
	"testing"
	"testing/quick"

	"redi/internal/dataset"
)

func TestNGramVector(t *testing.T) {
	v := NGramVector("ab", 3)
	// padded "__ab__": grams __a, _ab, ab_, b__.
	if len(v) != 4 {
		t.Fatalf("grams = %v", v)
	}
	if v["_ab"] != 1 {
		t.Fatalf("missing _ab: %v", v)
	}
	// Case-insensitive (tolerance: sqrt rounding).
	if c := Cosine(NGramVector("ZIP", 3), NGramVector("zip", 3)); c < 0.999 {
		t.Fatalf("case sensitivity leaked: %v", c)
	}
	if got := NGramVector("", 3); len(got) != 2 {
		// "____" has two distinct windows? "____" -> "___","___" = 1 distinct... verify below.
		if len(got) != 1 {
			t.Fatalf("empty-string grams = %v", got)
		}
	}
}

func TestCosine(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 1}
	if c := Cosine(a, a); c < 0.999 || c > 1.001 {
		t.Fatalf("self cosine = %v", c)
	}
	b := map[string]float64{"z": 1}
	if c := Cosine(a, b); c != 0 {
		t.Fatalf("disjoint cosine = %v", c)
	}
	if Cosine(nil, a) != 0 {
		t.Fatal("empty cosine")
	}
}

func TestNameSimilarityOrdering(t *testing.T) {
	// zipcode should be nearer zip_code than diagnosis.
	near := NameSimilarity("zip_code", "zipcode")
	far := NameSimilarity("zip_code", "diagnosis")
	if near <= far {
		t.Fatalf("similarity ordering wrong: near=%v far=%v", near, far)
	}
	if alt := NameSimilarity("zip_code", "postal_code"); alt <= far {
		t.Fatalf("postal_code (%v) should beat diagnosis (%v)", alt, far)
	}
}

func TestSemanticColumnSearch(t *testing.T) {
	r := NewRepository()
	mk := func(table, col string) {
		d := dataset.New(dataset.NewSchema(dataset.Attribute{Name: col, Kind: dataset.Categorical}))
		d.MustAppendRow(dataset.Cat("v" + table)) // disjoint values everywhere
		if err := r.Add(table, d); err != nil {
			t.Fatal(err)
		}
	}
	mk("housing", "zipcode")
	mk("mail", "postal_code")
	mk("clinic", "diagnosis")

	got := r.SemanticColumnSearch([]string{"zip_code"}, 0.3)
	if len(got) == 0 {
		t.Fatal("no semantic matches")
	}
	if got[0].Candidate.Column != "zipcode" {
		t.Fatalf("best match = %v", got[0])
	}
	for _, m := range got {
		if m.Candidate.Column == "diagnosis" {
			t.Fatalf("diagnosis matched zip_code at %v", m.Score)
		}
	}
	// Value-overlap search finds nothing here — the scenario semantic
	// matching exists for.
	if overlap := r.JoinableColumns(setOf("v-none"), 0.01); len(overlap) != 0 {
		t.Fatalf("unexpected overlap matches: %v", overlap)
	}
}

// Property: cosine similarity is symmetric and within [0, 1] for n-gram
// vectors of arbitrary strings.
func TestCosineProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		va, vb := NGramVector(a, 3), NGramVector(b, 3)
		c1, c2 := Cosine(va, vb), Cosine(vb, va)
		return c1 == c2 && c1 >= 0 && c1 <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
