package discovery

import (
	"fmt"
	"sort"

	"redi/internal/dataset"
	"redi/internal/stats"
)

// FeatureQuery describes an unbiased-feature-discovery request (tutorial
// §5, "Unbiased Feature Discovery"): starting from a query table with a
// join column, a target column, and sensitive attributes, find numeric
// features in the repository's tables that join to the query, correlate
// with the target, and associate minimally with the sensitive attributes.
type FeatureQuery struct {
	Query *dataset.Dataset
	// JoinAttr is the query table's categorical join column.
	JoinAttr string
	// TargetAttr is the numeric target column the feature should
	// predict.
	TargetAttr string
	// Sensitive lists the query table's sensitive attributes.
	Sensitive []string
	// BiasPenalty λ trades target correlation against sensitive
	// association in the ranking score (default 1).
	BiasPenalty float64
	// MinContainment filters candidate join columns (default 0.5).
	MinContainment float64
}

// FeatureHit is one ranked discovered feature.
type FeatureHit struct {
	// Column is the discovered feature column; Join is the candidate
	// table's join column it was reached through.
	Column ColumnRef
	Join   ColumnRef
	// Containment of the query's join domain in the candidate's.
	Containment float64
	// TargetCorr is |Pearson(feature, target)| over the join.
	TargetCorr float64
	// SensitiveAssoc is the maximum Cramér's V between the (discretized)
	// feature and any sensitive attribute over the join.
	SensitiveAssoc float64
	// Score = TargetCorr − λ·SensitiveAssoc.
	Score float64
	// Rows is the number of joined rows the statistics are based on.
	Rows int
}

// DiscoverFeatures scans the repository for joinable tables and ranks their
// numeric columns. Results are sorted by Score descending. It returns an
// error if the query attributes are missing.
func DiscoverFeatures(r *Repository, q FeatureQuery) ([]FeatureHit, error) {
	if _, ok := q.Query.Schema().Index(q.JoinAttr); !ok {
		return nil, fmt.Errorf("discovery: query has no attribute %q", q.JoinAttr)
	}
	if _, ok := q.Query.Schema().Index(q.TargetAttr); !ok {
		return nil, fmt.Errorf("discovery: query has no attribute %q", q.TargetAttr)
	}
	lambda := q.BiasPenalty
	if lambda == 0 {
		lambda = 1
	}
	minC := q.MinContainment
	if minC == 0 {
		minC = 0.5
	}
	qDomain := DomainOf(q.Query, q.JoinAttr)
	joinable := r.JoinableColumns(qDomain, minC)

	var hits []FeatureHit
	for _, jm := range joinable {
		cand := r.Table(jm.Ref.Table)
		// Rows materializes partitioned tables on first join; domain
		// filtering above already pruned non-joinable candidates for free.
		joined, err := q.Query.Join(cand.Rows(), q.JoinAttr, jm.Ref.Column)
		if err != nil || joined.NumRows() < 3 {
			continue
		}
		target, _ := joined.Numeric(q.TargetAttr)
		// Every numeric column contributed by the candidate is a
		// feature candidate.
		cs := cand.Rows().Schema()
		for i := 0; i < cs.Len(); i++ {
			a := cs.Attr(i)
			if a.Kind != dataset.Numeric {
				continue
			}
			name := a.Name
			if _, clash := q.Query.Schema().Index(name); clash {
				name += "_r"
			}
			if _, ok := joined.Schema().Index(name); !ok {
				continue
			}
			hit, ok := scoreFeature(joined, name, q, target, lambda)
			if !ok {
				continue
			}
			hit.Column = ColumnRef{Table: jm.Ref.Table, Column: a.Name}
			hit.Join = jm.Ref
			hit.Containment = jm.Score
			hits = append(hits, hit)
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].Column.String() < hits[b].Column.String()
	})
	return hits, nil
}

func scoreFeature(joined *dataset.Dataset, featAttr string, q FeatureQuery, _ []float64, lambda float64) (FeatureHit, bool) {
	// Align feature and target over rows where both are non-null.
	fv, fnull := joined.NumericFull(featAttr)
	tv, tnull := joined.NumericFull(q.TargetAttr)
	var xs, ys []float64
	var rows []int
	for i := range fv {
		if fnull[i] || tnull[i] {
			continue
		}
		xs = append(xs, fv[i])
		ys = append(ys, tv[i])
		rows = append(rows, i)
	}
	if len(xs) < 3 {
		return FeatureHit{}, false
	}
	hit := FeatureHit{Rows: len(xs)}
	hit.TargetCorr = abs(stats.Pearson(xs, ys))

	// Association with each sensitive attribute: Cramér's V of the
	// discretized feature against the attribute.
	const bins = 8
	fBins := stats.Discretize(xs, bins)
	for _, s := range q.Sensitive {
		if _, ok := joined.Schema().Index(s); !ok {
			continue
		}
		codes, dict := joined.Codes(s)
		var sx, sy []int
		for j, row := range rows {
			if codes[row] < 0 {
				continue
			}
			sx = append(sx, fBins[j])
			sy = append(sy, int(codes[row]))
		}
		if len(sx) < 3 || len(dict) < 2 {
			continue
		}
		ct := stats.NewContingencyTable(sx, sy, bins, len(dict))
		if v := ct.CramersV(); v > hit.SensitiveAssoc {
			hit.SensitiveAssoc = v
		}
	}
	hit.Score = hit.TargetCorr - lambda*hit.SensitiveAssoc
	return hit, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
