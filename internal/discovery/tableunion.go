package discovery

import (
	"sort"
)

// This file implements table union search (Nargesian, Zhu, Pu, Miller,
// VLDB 2018) and JOSIE-style top-k joinability search (Zhu et al., SIGMOD
// 2019), the two table-as-query discovery modes of tutorial §3.1.

// UnionMatch is one matched column pair of a table-union result.
type UnionMatch struct {
	QueryColumn string
	Candidate   ColumnRef
	Jaccard     float64
}

// TableUnionResult ranks one candidate table's unionability with the query
// table: columns are greedily matched by domain Jaccard, and the table
// score is the mean matched similarity over the query's categorical
// columns (unmatched query columns contribute zero).
type TableUnionResult struct {
	Table   string
	Score   float64
	Matches []UnionMatch
}

// TableUnionSearch ranks repository tables by unionability with the query
// table's categorical columns, returning tables with score >= minScore,
// best first. queryDomains maps the query's column names to value sets
// (use DomainOf per column).
func (r *Repository) TableUnionSearch(queryDomains map[string]map[string]bool, minScore float64) []TableUnionResult {
	if len(queryDomains) == 0 {
		return nil
	}
	// Group candidate columns by table.
	byTable := map[string][]ColumnRef{}
	for _, ref := range r.Columns() {
		byTable[ref.Table] = append(byTable[ref.Table], ref)
	}
	qNames := make([]string, 0, len(queryDomains))
	for name := range queryDomains {
		qNames = append(qNames, name)
	}
	sort.Strings(qNames)

	var out []TableUnionResult
	for table, cols := range byTable {
		// All pairwise similarities.
		type pair struct {
			q   string
			c   ColumnRef
			sim float64
		}
		var pairs []pair
		for _, q := range qNames {
			for _, c := range cols {
				if s := Jaccard(queryDomains[q], r.domains[c]); s > 0 {
					pairs = append(pairs, pair{q: q, c: c, sim: s})
				}
			}
		}
		// Greedy bipartite matching, best similarity first.
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].sim != pairs[b].sim {
				return pairs[a].sim > pairs[b].sim
			}
			if pairs[a].q != pairs[b].q {
				return pairs[a].q < pairs[b].q
			}
			return pairs[a].c.String() < pairs[b].c.String()
		})
		usedQ := map[string]bool{}
		usedC := map[ColumnRef]bool{}
		res := TableUnionResult{Table: table}
		total := 0.0
		for _, p := range pairs {
			if usedQ[p.q] || usedC[p.c] {
				continue
			}
			usedQ[p.q] = true
			usedC[p.c] = true
			res.Matches = append(res.Matches, UnionMatch{QueryColumn: p.q, Candidate: p.c, Jaccard: p.sim})
			total += p.sim
		}
		res.Score = total / float64(len(qNames))
		if res.Score >= minScore && len(res.Matches) > 0 {
			out = append(out, res)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Table < out[b].Table
	})
	return out
}

// InvertedIndex answers top-k overlap (joinability) queries exactly with a
// value → columns posting-list index, the JOSIE approach: instead of
// scanning every column domain, only columns sharing at least one value
// with the query are touched, and their exact overlaps are accumulated in
// one pass over the query's values.
type InvertedIndex struct {
	postings map[string][]int
	refs     []ColumnRef
	sizes    []int
}

// NewInvertedIndex builds the index over the repository's categorical
// columns.
func NewInvertedIndex(r *Repository) *InvertedIndex {
	ix := &InvertedIndex{postings: map[string][]int{}}
	for _, ref := range r.Columns() {
		id := len(ix.refs)
		ix.refs = append(ix.refs, ref)
		dom := r.domains[ref]
		ix.sizes = append(ix.sizes, len(dom))
		for v := range dom {
			ix.postings[v] = append(ix.postings[v], id)
		}
	}
	return ix
}

// OverlapMatch is a top-k joinability result: the candidate column, its
// exact value overlap with the query, and the containment |Q∩C|/|Q|.
type OverlapMatch struct {
	Ref         ColumnRef
	Overlap     int
	Containment float64
}

// TopKJoinable returns the k columns with the largest exact overlap with
// the query set, ties broken by smaller candidate size then name (favoring
// higher-precision joins).
func (ix *InvertedIndex) TopKJoinable(query map[string]bool, k int) []OverlapMatch {
	if k <= 0 || len(query) == 0 {
		return nil
	}
	overlap := map[int]int{}
	for v := range query {
		for _, id := range ix.postings[v] {
			overlap[id]++
		}
	}
	type scored struct {
		m    OverlapMatch
		size int
	}
	cands := make([]scored, 0, len(overlap))
	for id, ov := range overlap {
		cands = append(cands, scored{
			m: OverlapMatch{
				Ref:         ix.refs[id],
				Overlap:     ov,
				Containment: float64(ov) / float64(len(query)),
			},
			size: ix.sizes[id],
		})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].m.Overlap != cands[b].m.Overlap {
			return cands[a].m.Overlap > cands[b].m.Overlap
		}
		if cands[a].size != cands[b].size {
			return cands[a].size < cands[b].size
		}
		return cands[a].m.Ref.String() < cands[b].m.Ref.String()
	})
	if k < len(cands) {
		cands = cands[:k]
	}
	out := make([]OverlapMatch, len(cands))
	for i, c := range cands {
		out[i] = c.m
	}
	return out
}
