package discovery

import (
	"errors"
	"math"
	"math/bits"
	"sort"

	"redi/internal/obs"
	"redi/internal/parallel"
	"redi/internal/trace"
)

// Incremental LSH: the serving-layer counterpart of LSHEnsemble. The batch
// ensemble partitions entries into equal-count size ranges, a geometry that
// shifts wholesale on any insertion — so a resident index instead assigns
// each entry to a power-of-two size tier (tier t holds set sizes in
// [2^t, 2^(t+1))). Tier membership depends only on the entry's own size,
// which makes it stable under any insertion or growth schedule and yields
// the hard equivalence contract: after any sequence of Upsert calls, Query
// results are bit-identical to a fresh IncrementalLSH built from the same
// final domains in any order, at any worker count.
//
// Band keys live in dynamic open-addressed tables (dynTable): inserting or
// growing one column touches only that column's ~k band keys; the corpus is
// never re-hashed.

// NewEmptyMinHash returns the signature of the empty set: every slot at the
// identity of the min fold. Growing it with Add yields signatures
// bit-identical to NewMinHash over the accumulated value set.
func NewEmptyMinHash(k int) *MinHash {
	if k <= 0 {
		panic("discovery: MinHash requires k > 0")
	}
	m := &MinHash{Sig: make([]uint64, k)}
	for i := range m.Sig {
		m.Sig[i] = math.MaxUint64
	}
	return m
}

// Add folds values into the signature and counts them toward Size. The
// per-slot min fold is commutative and idempotent, so any batching of the
// same distinct values produces the same signature as one NewMinHash pass;
// callers must pass each distinct value exactly once across all calls (the
// serving layer feeds dictionary growth, distinct by construction) or Size
// drifts from the true cardinality.
func (m *MinHash) Add(values []string) {
	sig := m.Sig
	for _, v := range values {
		base := hash64(v, 0)
		g := uint64(0)
		for i := range sig {
			g += goldenGamma
			if h := mix64(base + g); h < sig[i] {
				sig[i] = h
			}
		}
	}
	m.Size += len(values)
}

// dynTable is a bandTable that supports single-key insert, remove, and
// growth. It keeps the batch table's layout (open addressing, per-key
// chains in flat arrays) and adds per-slot chain tails, tombstones, and
// load-triggered compaction.
//
// Slot states: head == -1 never used (probe stop), head == dynTombstone
// emptied chain whose key keeps the slot occupied so later keys that probed
// past it still resolve, head >= 0 first chain entry. Removed entries leave
// holes in ids/next; grow compacts them.
type dynTable struct {
	bandTable
	tail []int32 // slot -> chain tail entry
	live int     // entries currently stored
	dead int     // entry-array holes left by remove
}

const dynTombstone = -2

func newDynTable() *dynTable {
	t := &dynTable{}
	t.reset(8)
	return t
}

func (t *dynTable) reset(size int) {
	t.mask = uint64(size - 1)
	t.keys = make([]uint64, size)
	t.head = make([]int32, size)
	t.tail = make([]int32, size)
	t.next = t.next[:0]
	t.ids = t.ids[:0]
	for i := range t.head {
		t.head[i] = -1
	}
	t.live, t.dead = 0, 0
}

// insert appends id under key, growing first when slots or entry holes pass
// half the table.
func (t *dynTable) insert(key uint64, id int32) {
	if 2*(t.live+t.dead+1) > len(t.head) {
		t.grow()
	}
	slot := key & t.mask
	for {
		h := t.head[slot]
		if h == -1 {
			e := int32(len(t.ids))
			t.keys[slot] = key
			t.head[slot], t.tail[slot] = e, e
			t.ids = append(t.ids, id)
			t.next = append(t.next, -1)
			t.live++
			return
		}
		if t.keys[slot] == key {
			e := int32(len(t.ids))
			if h == dynTombstone {
				t.head[slot] = e // revive the emptied chain in place
			} else {
				t.next[t.tail[slot]] = e
			}
			t.tail[slot] = e
			t.ids = append(t.ids, id)
			t.next = append(t.next, -1)
			t.live++
			return
		}
		slot = (slot + 1) & t.mask
	}
}

// remove deletes one occurrence of id under key, reporting whether it was
// present. An emptied chain leaves a tombstone: the slot stays occupied by
// its key so linear probing for keys inserted after it stays intact.
func (t *dynTable) remove(key uint64, id int32) bool {
	slot := key & t.mask
	for {
		h := t.head[slot]
		if h == -1 {
			return false
		}
		if t.keys[slot] == key {
			if h == dynTombstone {
				return false
			}
			prev := int32(-1)
			for e := h; e >= 0; e = t.next[e] {
				if t.ids[e] == id {
					if prev < 0 {
						if t.next[e] < 0 {
							t.head[slot] = dynTombstone
						} else {
							t.head[slot] = t.next[e]
						}
					} else {
						t.next[prev] = t.next[e]
						if t.tail[slot] == e {
							t.tail[slot] = prev
						}
					}
					t.live--
					t.dead++
					return true
				}
				prev = e
			}
			return false
		}
		slot = (slot + 1) & t.mask
	}
}

// collect returns the ids under key in insertion order. Unlike the batch
// table it must probe past tombstones.
func (t *dynTable) collect(key uint64, out []int) []int {
	slot := key & t.mask
	for {
		h := t.head[slot]
		if h == -1 {
			return out
		}
		if t.keys[slot] == key {
			if h == dynTombstone {
				return out
			}
			for e := h; e >= 0; e = t.next[e] {
				out = append(out, int(t.ids[e]))
			}
			return out
		}
		slot = (slot + 1) & t.mask
	}
}

// grow rebuilds at the size fitting the live entries (doubling past load
// 1/2), dropping tombstones and compacting entry holes. Chains are
// reinserted in slot order and within each chain in insertion order, so
// per-key id order survives compaction.
func (t *dynTable) grow() {
	size := len(t.head)
	for 2*(t.live+1) > size {
		size <<= 1
	}
	oldKeys, oldHead, oldNext, oldIds := t.keys, t.head, t.next, t.ids
	t.next, t.ids = nil, nil
	t.reset(size)
	for slot, h := range oldHead {
		for e := h; e >= 0; e = oldNext[e] {
			t.insert(oldKeys[slot], oldIds[e])
		}
	}
}

// IncrementalLSH indexes MinHash signatures for containment search like
// LSHEnsemble, but supports resident operation: Upsert adds a column or
// extends an already-indexed column's domain in O(k) band-table operations.
// Not safe for concurrent mutation; the serving layer serializes Upsert
// under its ingest lock, and Query is safe for concurrent use between
// mutations.
type IncrementalLSH struct {
	k    int
	refs []ColumnRef
	sigs []*MinHash
	ids  map[string]int32 // ref.String() -> id
	// tiers[t] indexes entries with set sizes in [2^t, 2^(t+1)); nil until
	// first used. The slice is iterated in tier order everywhere, so no map
	// order can reach results.
	tiers []*lshTier

	// Workers bounds the goroutines used by Query (parallel.Workers
	// semantics); output is bit-identical at any worker count.
	Workers int
	// Obs receives operation counters; nil falls back to the process-wide
	// registry.
	Obs *obs.Registry
}

type lshTier struct {
	maxSize int // inclusive upper size bound, 2^(t+1)-1
	count   int // live entries
	buckets []*dynTable
}

// NewIncrementalLSH returns an empty resident index over signatures of k
// hashes. k must be at least 16.
func NewIncrementalLSH(k int) (*IncrementalLSH, error) {
	if k < 16 {
		return nil, errors.New("discovery: LSH ensemble requires k >= 16")
	}
	return &IncrementalLSH{k: k, ids: make(map[string]int32)}, nil
}

// NumColumns returns the number of indexed columns (including columns whose
// domains are still empty).
func (e *IncrementalLSH) NumColumns() int { return len(e.refs) }

func (e *IncrementalLSH) tierFor(size int) *lshTier {
	t := bits.Len(uint(size)) - 1 // floor(log2(size)), size >= 1
	for len(e.tiers) <= t {
		e.tiers = append(e.tiers, nil)
	}
	if e.tiers[t] == nil {
		tier := &lshTier{maxSize: 1<<(t+1) - 1, buckets: make([]*dynTable, len(lshRowChoices))}
		for ri := range tier.buckets {
			tier.buckets[ri] = newDynTable()
		}
		e.tiers[t] = tier
	}
	return e.tiers[t]
}

func (e *IncrementalLSH) bandKeys(sig *MinHash, ri int) []uint64 {
	rows := lshRowChoices[ri]
	bands := e.k / rows
	keys := make([]uint64, bands)
	for b := 0; b < bands; b++ {
		keys[b] = bandHash(b, sig.Sig[b*rows:(b+1)*rows])
	}
	return keys
}

func (e *IncrementalLSH) insertEntry(tier *lshTier, sig *MinHash, id int32) {
	for ri := range lshRowChoices {
		for _, key := range e.bandKeys(sig, ri) {
			tier.buckets[ri].insert(key, id)
		}
	}
	tier.count++
}

func (e *IncrementalLSH) removeEntry(tier *lshTier, sig *MinHash, id int32) {
	for ri := range lshRowChoices {
		for _, key := range e.bandKeys(sig, ri) {
			tier.buckets[ri].remove(key, id)
		}
	}
	tier.count--
}

// Upsert indexes ref's domain growth: newValues are the distinct values not
// previously passed for this ref (for a new column, its whole domain — the
// serving layer feeds dictionary suffixes, distinct by construction). The
// column's signature is extended by a commutative min fold, its old band
// keys are removed, and the new ones inserted — re-tiering it when the
// domain size crossed a power-of-two boundary. Columns with still-empty
// domains stay unindexed, exactly as the batch ensemble skips them.
func (e *IncrementalLSH) Upsert(ref ColumnRef, newValues []string) {
	name := ref.String()
	id, ok := e.ids[name]
	if !ok {
		id = int32(len(e.refs))
		e.ids[name] = id
		e.refs = append(e.refs, ref)
		e.sigs = append(e.sigs, NewEmptyMinHash(e.k))
	}
	sig := e.sigs[id]
	if len(newValues) == 0 {
		return
	}
	if sig.Size > 0 {
		e.removeEntry(e.tierFor(sig.Size), sig, id)
	}
	sig.Add(newValues)
	e.insertEntry(e.tierFor(sig.Size), sig, id)
	if reg := obs.Active(e.Obs); reg != nil {
		reg.Counter("discovery.lsh_upserts").Inc()
		reg.Counter("discovery.minhash_values_hashed").Add(int64(len(newValues)))
	}
}

// Query returns candidate columns whose estimated containment of the query
// domain is at least threshold, best first — LSHEnsemble.Query over size
// tiers. Each tier converts the containment threshold into its own Jaccard
// threshold using the tier's upper size bound and probes the band geometry
// tuned for it; candidate sets are unioned, deduplicated, and scored, so
// the result does not depend on insertion order or worker count.
func (e *IncrementalLSH) Query(query map[string]bool, threshold float64) []ColumnMatch {
	return e.QueryTraced(query, threshold, nil)
}

// QueryTraced is Query plus two child spans under sp: a
// "discovery.lsh_probe" span (band probes, candidates after dedup) and
// a "discovery.lsh_verify" span (signatures scored, matches kept). The
// attributes are the same tier-order-merged tallies that feed the
// discovery counters, so span structure is bit-identical at any worker
// count. A nil span is the untraced path.
func (e *IncrementalLSH) QueryTraced(query map[string]bool, threshold float64, sp *trace.Span) []ColumnMatch {
	if len(e.refs) == 0 {
		return nil
	}
	pspan := sp.Child("discovery.lsh_probe")
	qsig := NewMinHash(query, e.k)
	q := float64(len(query))
	workers := e.Workers
	if len(e.refs) < lshSerialGrain {
		workers = 0
	}
	var tiers []*lshTier
	for _, tier := range e.tiers { // tier order: deterministic
		if tier != nil && tier.count > 0 {
			tiers = append(tiers, tier)
		}
	}
	type probeResult struct {
		ids    []int
		probes int
	}
	partCands := parallel.Map(workers, tiers, func(_ int, p *lshTier) probeResult {
		j := 0.0
		if q > 0 {
			denom := q + float64(p.maxSize) - threshold*q
			if denom > 0 {
				j = threshold * q / denom
			}
		}
		ri := chooseRowsK(e.k, j)
		rows := lshRowChoices[ri]
		bands := e.k / rows
		var ids []int
		for b := 0; b < bands; b++ {
			key := bandHash(b, qsig.Sig[b*rows:(b+1)*rows])
			ids = p.buckets[ri].collect(key, ids)
		}
		return probeResult{ids: ids, probes: bands}
	})
	probes := 0
	cands := map[int]bool{}
	for _, pr := range partCands {
		probes += pr.probes
		for _, id := range pr.ids {
			cands[id] = true
		}
	}
	ids := make([]int, 0, len(cands))
	for id := range cands {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	pspan.SetAttr("band_probes", int64(probes))
	pspan.SetAttr("candidates", int64(len(ids)))
	pspan.End()
	vspan := sp.Child("discovery.lsh_verify")
	scored := parallel.Map(workers, ids, func(_ int, id int) ColumnMatch {
		return ColumnMatch{Ref: e.refs[id], Score: qsig.EstimateContainment(e.sigs[id])}
	})
	var out []ColumnMatch
	for _, m := range scored {
		if m.Score >= threshold {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Ref.String() < out[b].Ref.String()
	})
	vspan.SetAttr("scored", int64(len(ids)))
	vspan.SetAttr("verified", int64(len(out)))
	vspan.End()
	if reg := obs.Active(e.Obs); reg != nil {
		reg.Counter("discovery.lsh_queries").Inc()
		reg.Counter("discovery.minhash_sigs").Inc()
		reg.Counter("discovery.minhash_values_hashed").Add(int64(len(query)))
		reg.Counter("discovery.lsh_band_probes").Add(int64(probes))
		reg.Counter("discovery.lsh_candidates").Add(int64(len(ids)))
		reg.Counter("discovery.lsh_verified").Add(int64(len(out)))
	}
	return out
}

// chooseRowsK returns the index of the largest row count whose collision
// probability 1-(1-j^r)^(k/r) is at least 0.9 at Jaccard threshold j —
// LSHEnsemble.chooseRows lifted to a free function so both indexes share it.
func chooseRowsK(k int, j float64) int {
	best := 0
	for ri, rows := range lshRowChoices {
		bands := float64(k / rows)
		p := 1 - math.Pow(1-math.Pow(j, float64(rows)), bands)
		if p >= 0.9 {
			best = ri
		}
	}
	return best
}
