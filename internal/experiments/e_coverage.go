package experiments

import (
	"fmt"
	"time"

	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/rng"
)

// multiAttrData builds a dataset with d categorical attributes of 3 values
// each, drawn from a skewed joint distribution so that real uncovered
// patterns exist.
func multiAttrData(d, rows int, r *rng.RNG) *dataset.Dataset {
	attrs := make([]dataset.Attribute, d)
	names := make([]string, d)
	for i := range attrs {
		names[i] = fmt.Sprintf("a%d", i)
		attrs[i] = dataset.Attribute{Name: names[i], Kind: dataset.Categorical, Role: dataset.Sensitive}
	}
	ds := dataset.New(dataset.NewSchema(attrs...))
	vals := []string{"x", "y", "z"}
	cat := rng.NewCategorical([]float64{0.7, 0.25, 0.05})
	row := make([]dataset.Value, d)
	for i := 0; i < rows; i++ {
		for j := 0; j < d; j++ {
			row[j] = dataset.Cat(vals[cat.Draw(r)])
		}
		ds.MustAppendRow(row...)
	}
	return ds
}

// E3Coverage reproduces the MUP-enumeration experiment of Asudeh et al.
// (ICDE'19): the number of MUPs and the runtimes of the pattern-breaker
// search vs the naive lattice scan as the number of attributes grows.
func E3Coverage(seed uint64) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Coverage: MUP count and runtime, pattern-breaker vs naive lattice (3-value attrs, 4000 rows, τ=25)",
		Columns: []string{"attrs", "lattice", "MUPs", "breaker_ms", "naive_ms", "speedup"},
		Notes:   "pattern-breaker explores a shrinking fraction of the lattice; speedup grows with dimensionality",
	}
	for _, d := range []int{3, 4, 5, 6, 7} {
		data := multiAttrData(d, 4000, rng.New(seed+uint64(d)))
		attrs := data.Schema().Names()

		sp := coverage.NewSpace(data, attrs, 25)
		start := time.Now()
		mups := sp.MUPs()
		fast := time.Since(start)

		sp2 := coverage.NewSpace(data, attrs, 25)
		start = time.Now()
		naive := sp2.NaiveMUPs()
		slow := time.Since(start)

		if len(mups) != len(naive) {
			panic("E3: MUP algorithms disagree")
		}
		speedup := float64(slow) / float64(fast)
		t.AddRow(d0(d), d0(sp.TotalPatterns()), d0(len(mups)),
			f3(float64(fast.Microseconds())/1000), f3(float64(slow.Microseconds())/1000), f2(speedup))
	}
	return t
}

// E13Remedy reproduces the coverage-enhancement experiment: rows needed to
// cover all MUPs, greedy plan vs random acquisition, as the threshold τ
// grows.
func E13Remedy(seed uint64) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Coverage remedy: acquisition cost to cover all MUPs, greedy vs random (4 attrs, 4000 rows)",
		Columns: []string{"tau", "MUPs", "greedy_rows", "random_rows", "random/greedy"},
		Notes:   "greedy needs no more rows than random; both grow with tau",
	}
	data := multiAttrData(4, 4000, rng.New(seed))
	attrs := data.Schema().Names()
	for _, tau := range []int{5, 10, 25, 50, 100} {
		sp := coverage.NewSpace(data, attrs, tau)
		mups := sp.MUPs()
		greedy := coverage.RemedyCost(sp.Remedy(mups))
		r := rng.New(seed + uint64(tau))
		randomCost := 0
		const trials = 5
		for i := 0; i < trials; i++ {
			randomCost += sp.RandomRemedyCost(mups, r.Intn)
		}
		random := float64(randomCost) / trials
		ratio := 0.0
		if greedy > 0 {
			ratio = random / float64(greedy)
		}
		t.AddRow(d0(tau), d0(len(mups)), d0(greedy), f2(random), f2(ratio))
	}
	return t
}
