// Package experiments regenerates every experiment table of DESIGN.md
// (E1–E18). The source tutorial publishes no tables or figures of its own,
// so each experiment here reproduces the headline evaluation of the
// corresponding surveyed system on synthetic data; EXPERIMENTS.md records
// the expected shape against the measured outcome.
//
// Every experiment is a pure function of its seed, sized to run in seconds;
// cmd/experiments prints the tables and the root bench harness wraps each
// one in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"redi/internal/parallel"
)

// Table is one experiment's output: a titled grid of formatted cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes states the expected qualitative shape (from the primary
	// paper) that the numbers should exhibit.
	Notes string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func d0(x int) string     { return fmt.Sprintf("%d", x) }

// Experiment is a registered experiment generator.
type Experiment struct {
	ID  string
	Run func(seed uint64) *Table
}

// Result is one experiment's table plus its wall time.
type Result struct {
	ID      string
	Table   *Table
	Elapsed time.Duration
}

// RunAll runs the given experiments with the same base seed, concurrently
// across `workers` goroutines (parallel.Workers semantics: 0 = serial,
// parallel.Auto = all CPUs), and returns the results in input order. Every
// experiment is a pure function of its seed, so the tables are identical at
// any worker count; only Elapsed (and the wall-clock-derived cells of E3
// and E18) varies with scheduling.
func RunAll(exps []Experiment, seed uint64, workers int) []Result {
	return parallel.Map(workers, exps, func(_ int, e Experiment) Result {
		start := time.Now()
		t := e.Run(seed)
		return Result{ID: e.ID, Table: t, Elapsed: time.Since(start)}
	})
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1DTKnown},
		{"E2", E2DTUnknown},
		{"E3", E3Coverage},
		{"E4", E4JoinSampling},
		{"E5", E5OnlineAgg},
		{"E6", E6Discovery},
		{"E7", E7Imputation},
		{"E8", E8FairRange},
		{"E9", E9SliceTuner},
		{"E10", E10Crowd},
		{"E11", E11Market},
		{"E12", E12EndToEnd},
		{"E13", E13Remedy},
		{"E14", E14ER},
		{"E15", E15Overlap},
		{"E16", E16Debias},
		{"E17", E17FairPrep},
		{"E18", E18JoinCoverage},
	}
}
