package experiments

import (
	"redi/internal/dataset"
	"redi/internal/debias"
	"redi/internal/rng"
	"redi/internal/stats"
)

// E16Debias reproduces the open-world sample-debiasing result (Themis,
// SIGMOD 2020; survey weighting of §2.1): relative error of a population
// AVG estimated from a demographically biased sample, for the naive sample
// mean vs post-stratification vs raking, as response skew grows.
func E16Debias(seed uint64) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Sample debiasing: relative error of population AVG vs response skew (true mean known)",
		Columns: []string{"minority_sampled_at", "naive", "post_stratified", "raked"},
		Notes:   "naive error grows with skew; reweighted estimators stay near the truth at any skew",
	}
	const n = 20000
	// Population: two groups 50/50, metric mean 10 (a) vs 20 (b), and an
	// independent second attribute for raking. True mean = 15.
	const truth = 15.0
	for _, sampleRate := range []float64{0.5, 0.25, 0.1, 0.05, 0.02} {
		r := rng.New(seed + uint64(sampleRate*1000))
		d := dataset.New(dataset.NewSchema(
			dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
			dataset.Attribute{Name: "region", Kind: dataset.Categorical, Role: dataset.Sensitive},
			dataset.Attribute{Name: "metric", Kind: dataset.Numeric, Role: dataset.Feature},
		))
		for i := 0; i < n; i++ {
			grp, mean := "a", 10.0
			if r.Bool(0.5) {
				grp, mean = "b", 20.0
			}
			// Group b responds at sampleRate relative to group a.
			if grp == "b" && !r.Bool(sampleRate) {
				continue
			}
			region := "north"
			if r.Bool(0.5) {
				region = "south"
			}
			d.MustAppendRow(dataset.Cat(grp), dataset.Cat(region), dataset.Num(r.Normal(mean, 2)))
		}
		naive := stats.RelativeError(debias.NaiveMean(d, "metric"), truth)

		pw, err := debias.PostStratify(d, []string{"grp"}, map[dataset.GroupKey]float64{
			"grp=a": 0.5, "grp=b": 0.5,
		})
		if err != nil {
			panic(err)
		}
		post := stats.RelativeError(debias.WeightedMean(d, pw, "metric"), truth)

		rw, err := debias.Rake(d, []debias.Marginal{
			{Attr: "grp", Share: map[string]float64{"a": 0.5, "b": 0.5}},
			{Attr: "region", Share: map[string]float64{"north": 0.5, "south": 0.5}},
		}, 1e-8, 100)
		if err != nil {
			panic(err)
		}
		raked := stats.RelativeError(debias.WeightedMean(d, rw, "metric"), truth)

		t.AddRow(f2(sampleRate), f4(naive), f4(post), f4(raked))
	}
	return t
}
