package experiments

import (
	"redi/internal/dataset"
	"redi/internal/rangequery"
	"redi/internal/rng"
)

// E8FairRange reproduces the fairness-aware range-query experiment of
// Shetiya et al.: disparity and similarity of the minimally-rewritten range
// as the disparity bound ε tightens.
func E8FairRange(seed uint64) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Fair range queries: rewritten-range similarity vs disparity bound (biased score query)",
		Columns: []string{"epsilon", "orig_disparity", "new_disparity", "similarity", "result_size"},
		Notes:   "tighter bounds cost similarity; modest bounds achieve near-identical results",
	}
	r := rng.New(seed)
	// Scores where group b sits systematically lower: a top-k style
	// range query over high scores is unfair to b.
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "score", Kind: dataset.Numeric, Role: dataset.Feature},
		dataset.Attribute{Name: "grp", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	for i := 0; i < 600; i++ {
		grp := "a"
		mean := 60.0
		if i%3 == 0 {
			grp = "b"
			mean = 45
		}
		d.MustAppendRow(dataset.Num(r.Normal(mean, 10)), dataset.Cat(grp))
	}
	ix, err := rangequery.NewIndex(d, "score", []string{"grp"})
	if err != nil {
		panic(err)
	}
	orig := ix.Query(60, 100)
	for _, eps := range []int{100, 50, 20, 10, 0} {
		res, err := ix.FairestSimilarRange(60, 100, eps)
		if err != nil {
			panic(err)
		}
		t.AddRow(d0(eps), d0(orig.Disparity), d0(res.Disparity), f3(res.Similarity), d0(res.Size))
	}
	return t
}
