package experiments

import (
	"fmt"

	"redi/internal/dataset"
	"redi/internal/discovery"
	"redi/internal/rng"
	"redi/internal/synth"
)

// E6Discovery reproduces the domain-search and join-correlation sketch
// experiments: LSH-ensemble precision/recall against exact containment
// across thresholds, and correlation-sketch error across sketch sizes.
func E6Discovery(seed uint64) *Table { return E6DiscoveryWorkers(seed, 0) }

// E6DiscoveryWorkers is E6Discovery with the LSH-ensemble index build and
// query fan-out sharded across the given workers (0 = serial). The table
// is bit-identical at any worker count.
func E6DiscoveryWorkers(seed uint64, workers int) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Discovery: LSH-ensemble quality vs exact containment; correlation-sketch error vs size",
		Columns: []string{"experiment", "parameter", "precision", "recall", "corr_error"},
		Notes:   "high recall at a fraction of exact-scan work; sketch error shrinks ~1/sqrt(B)",
	}
	c := synth.GenerateCorpus(synth.CorpusConfig{
		NumTables: 40, RowsPerTable: 300, KeyUniverse: 20000, QueryKeys: 300,
	}, rng.New(seed))
	repo := discovery.NewRepository()
	for _, tbl := range c.Tables {
		if err := repo.Add(tbl.Name, tbl.Data); err != nil {
			panic(err)
		}
	}
	var refs []discovery.ColumnRef
	var domains []map[string]bool
	for _, ref := range repo.Columns() {
		if ref.Column == "key" {
			refs = append(refs, ref)
			domains = append(domains, repo.Domain(ref))
		}
	}
	ens, err := discovery.NewLSHEnsemble(128, 4)
	if err != nil {
		panic(err)
	}
	ens.Workers = workers
	ens.Index(refs, domains)
	query := discovery.DomainOf(c.Query, "key")

	truthAt := func(threshold float64) map[string]bool {
		out := map[string]bool{}
		for _, tbl := range c.Tables {
			if tbl.Containment >= threshold {
				out[tbl.Name] = true
			}
		}
		return out
	}
	for _, th := range []float64{0.3, 0.5, 0.7} {
		got := ens.Query(query, th)
		truth := truthAt(th)
		tp := 0
		for _, m := range got {
			if truth[m.Ref.Table] {
				tp++
			}
		}
		prec, rec := 1.0, 1.0
		if len(got) > 0 {
			prec = float64(tp) / float64(len(got))
		}
		if len(truth) > 0 {
			rec = float64(tp) / float64(len(truth))
		}
		t.AddRow("lsh-ensemble", fmt.Sprintf("t=%.1f", th), f3(prec), f3(rec), "-")
	}

	// Correlation sketches on a correlated pair.
	r := rng.New(seed + 1)
	d1 := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "v", Kind: dataset.Numeric},
	))
	d2 := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "w", Kind: dataset.Numeric},
	))
	for i := 0; i < 5000; i++ {
		base := r.Normal(0, 1)
		key := fmt.Sprintf("k%05d", i)
		d1.MustAppendRow(dataset.Cat(key), dataset.Num(base+r.Normal(0, 0.8)))
		d2.MustAppendRow(dataset.Cat(key), dataset.Num(base+r.Normal(0, 0.8)))
	}
	exact, _ := discovery.JoinCorrelationExact(d1, "k", "v", d2, "k", "w")
	for _, b := range []int{16, 64, 256, 1024} {
		est, _ := discovery.SketchColumn(d1, "k", "v", b).EstimateCorrelation(discovery.SketchColumn(d2, "k", "w", b))
		t.AddRow("corr-sketch", fmt.Sprintf("B=%d", b), "-", "-", f4(discovery.SketchError(est, exact)))
	}
	return t
}
