package experiments

import (
	"sort"

	"redi/internal/joinsample"
	"redi/internal/rng"
	"redi/internal/stats"
)

// skewedJoin builds a two-relation join with Zipf-distributed fan-out: a
// few keys in R have very many matches in S.
func skewedJoin(keys, sTuples int, r *rng.RNG) (*joinsample.Relation, *joinsample.Relation) {
	var rt []joinsample.Tuple
	for k := 0; k < keys; k++ {
		rt = append(rt, joinsample.Tuple{Right: int64(k), Value: r.Float64() * 10})
	}
	weights := rng.ZipfWeights(keys, 1.4)
	cat := rng.NewCategorical(weights)
	var st []joinsample.Tuple
	for i := 0; i < sTuples; i++ {
		st = append(st, joinsample.Tuple{Left: int64(cat.Draw(r)), Value: r.Float64() * 10})
	}
	return joinsample.NewRelation("R", rt), joinsample.NewRelation("S", st)
}

// E4JoinSampling reproduces the uniformity comparison of Chaudhuri et al.:
// total-variation distance of each sampler's empirical result distribution
// from uniform-over-join, plus draws consumed per accepted sample.
func E4JoinSampling(seed uint64) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Join sampling uniformity: TV distance from uniform over the join result (Zipf fan-out, 10k samples)",
		Columns: []string{"sampler", "TV_distance", "draws_per_sample", "uniform?"},
		Notes:   "naive walk under-samples heavy keys; accept/reject and exact-weight samplers are uniform at different costs",
	}
	r := rng.New(seed)
	R, S := skewedJoin(50, 2000, r)
	chain, err := joinsample.NewChain(R, S)
	if err != nil {
		panic(err)
	}
	const n = 10000
	results := int(chain.JoinCount())

	tv := func(counts map[string]float64, total float64) float64 {
		// Sorted path keys keep the TV float sum bit-identical across
		// runs (maporder).
		paths := make([]string, 0, len(counts))
		for k := range counts {
			paths = append(paths, k)
		}
		sort.Strings(paths)
		emp := make([]float64, 0, results)
		uni := make([]float64, 0, results)
		for _, k := range paths {
			emp = append(emp, counts[k]/total)
			uni = append(uni, 1/float64(results))
		}
		// Results never drawn contribute their uniform mass.
		missing := results - len(counts)
		for i := 0; i < missing; i++ {
			emp = append(emp, 0)
			uni = append(uni, 1/float64(results))
		}
		return stats.TotalVariation(emp, uni)
	}

	// Naive walk (always accept).
	counts := map[string]float64{}
	attempts := 0
	got := 0.0
	for got < n {
		attempts++
		if path, ok := chain.NaiveSample(r); ok {
			counts[joinsample.PathKey(path)]++
			got++
		}
	}
	t.AddRow("naive-walk", f4(tv(counts, got)), f2(float64(attempts)/got), "no")

	// Accept/reject.
	ar, err := joinsample.NewAcceptReject(R, S)
	if err != nil {
		panic(err)
	}
	paths, att := ar.SampleN(r, n)
	counts = map[string]float64{}
	for _, p := range paths {
		counts[joinsample.PathKey([]int{p[0], p[1]})]++
	}
	t.AddRow("accept-reject", f4(tv(counts, float64(len(paths)))), f2(float64(att)/float64(len(paths))), "yes")

	// Exact weighted sampler.
	counts = map[string]float64{}
	for i := 0; i < n; i++ {
		path, ok := chain.ExactSample(r)
		if !ok {
			panic("empty join")
		}
		counts[joinsample.PathKey(path)]++
	}
	t.AddRow("exact-weight", f4(tv(counts, n)), f2(1), "yes")
	return t
}

// E5OnlineAgg reproduces online-aggregation convergence: relative error of
// the SUM estimate vs consumed samples for ripple join, wander join, and
// the exact uniform sampler.
func E5OnlineAgg(seed uint64) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Online aggregation: relative error of SUM vs samples consumed (Zipf fan-out join)",
		Columns: []string{"samples", "ripple", "wander", "uniform"},
		Notes:   "error decays ~1/sqrt(n); wander and uniform converge per-sample faster than ripple early on skewed joins",
	}
	r := rng.New(seed)
	R, S := skewedJoin(60, 3000, r)
	chain, err := joinsample.NewChain(R, S)
	if err != nil {
		panic(err)
	}
	// Ground truth for SUM(r.Value + s.Value) (ripple's aggregate) and
	// SUM(PathValue) (wander/uniform's) are the same quantity here.
	truth := 0.0
	chain.Enumerate(func(p []int) { truth += chain.PathValue(p) })

	checkpoints := []int{100, 300, 1000, 3000}
	ripErr := map[int]float64{}
	rp, err := joinsample.NewRipple(R, S, rng.New(seed+1))
	if err != nil {
		panic(err)
	}
	for _, cp := range checkpoints {
		for rp.Steps() < cp && !rp.Done() {
			rp.Step()
		}
		ripErr[cp] = stats.RelativeError(rp.SumEstimate(), truth)
	}
	wanErr := map[int]float64{}
	w := joinsample.NewWanderEstimator(chain)
	wr := rng.New(seed + 2)
	for _, cp := range checkpoints {
		for int(w.Steps()) < cp {
			w.Step(wr)
		}
		est, _ := w.Sum(0.95)
		wanErr[cp] = stats.RelativeError(est, truth)
	}
	uniErr := map[int]float64{}
	u := joinsample.NewUniformEstimator(chain)
	ur := rng.New(seed + 3)
	steps := 0
	for _, cp := range checkpoints {
		for steps < cp {
			u.Step(ur)
			steps++
		}
		est, _ := u.Sum(0.95)
		uniErr[cp] = stats.RelativeError(est, truth)
	}
	for _, cp := range checkpoints {
		t.AddRow(d0(cp), f4(ripErr[cp]), f4(wanErr[cp]), f4(uniErr[cp]))
	}
	return t
}
