package experiments

import (
	"reflect"
	"testing"
)

// timingCols lists the table columns whose cells are wall-clock
// measurements (milliseconds / speedup ratios). They are the only cells
// that legitimately vary between two runs of the same experiment, so the
// worker-invariance comparison masks them.
var timingCols = map[string][]int{
	"E3":  {3, 4, 5}, // breaker_ms, naive_ms, speedup
	"E18": {3, 4, 5}, // factorized_ms, materialized_ms, mat/fact
}

// masked returns the table's rows with timing cells blanked.
func masked(tb *Table) [][]string {
	mask := timingCols[tb.ID]
	out := make([][]string, len(tb.Rows))
	for i, row := range tb.Rows {
		r := append([]string(nil), row...)
		for _, c := range mask {
			r[c] = "-"
		}
		out[i] = r
	}
	return out
}

// TestRunAllWorkerInvariance pins the determinism contract at the
// experiment-suite level: every E-experiment produces an identical table at
// workers ∈ {1, 8}, modulo cells that are wall-clock measurements.
func TestRunAllWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	serial := RunAll(All(), 5, 1)
	par := RunAll(All(), 5, 8)
	if len(serial) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if s.ID != p.ID {
			t.Fatalf("result %d: order diverged: %s vs %s", i, s.ID, p.ID)
		}
		if s.Table.Title != p.Table.Title || !reflect.DeepEqual(s.Table.Columns, p.Table.Columns) {
			t.Fatalf("%s: header diverged", s.ID)
		}
		if !reflect.DeepEqual(masked(s.Table), masked(p.Table)) {
			t.Fatalf("%s: table contents diverged between workers=1 and workers=8:\n%v\n%v",
				s.ID, s.Table, p.Table)
		}
	}
}

// The two experiments that exercise intra-experiment parallelism must also
// be bit-identical across worker counts — including their timing-free
// cells, with no masking needed.
func TestE6WorkerInvariance(t *testing.T) {
	serial := E6DiscoveryWorkers(6, 1)
	for _, w := range []int{2, 8} {
		if got := E6DiscoveryWorkers(6, w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("E6 diverged at workers=%d", w)
		}
	}
}

func TestE14WorkerInvariance(t *testing.T) {
	serial := E14ERWorkers(14, 1)
	for _, w := range []int{2, 8} {
		if got := E14ERWorkers(14, w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("E14 diverged at workers=%d", w)
		}
	}
}
