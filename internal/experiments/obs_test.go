package experiments

import (
	"bytes"
	"testing"

	"redi/internal/obs"
)

// obsExperiments picks experiments that exercise the instrumented layers:
// E3 (coverage walks), E6 (discovery index+query), E12 (core pipeline over
// dt, imputation, audit), E14 (cleaning ER).
func obsExperiments(t *testing.T) []Experiment {
	t.Helper()
	want := map[string]bool{"E3": true, "E6": true, "E12": true, "E14": true}
	var out []Experiment
	for _, e := range All() {
		if want[e.ID] {
			out = append(out, e)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("found %d of %d obs experiments", len(out), len(want))
	}
	return out
}

// captureSnapshot runs the given experiments under a fresh process-wide
// registry and returns the canonical bytes of its deterministic snapshot.
func captureSnapshot(t *testing.T, exps []Experiment, workers int) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	obs.Enable(reg)
	defer obs.Enable(nil)
	RunAll(exps, 5, workers)
	b, err := reg.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestObsSnapshotWorkerInvariance pins the observability determinism
// contract end-to-end: running the pipeline experiment (E12) and three
// hot-path experiments under workers ∈ {1, 8} must yield bit-identical
// counter snapshots — operation counts are algorithmic quantities, not
// scheduling artifacts.
func TestObsSnapshotWorkerInvariance(t *testing.T) {
	exps := obsExperiments(t)
	serial := captureSnapshot(t, exps, 1)
	par := captureSnapshot(t, exps, 8)
	if !bytes.Equal(serial, par) {
		t.Fatalf("counter snapshots diverged between workers=1 and workers=8:\n%s\nvs\n%s", serial, par)
	}
	// The snapshot must actually cover every instrumented layer — an
	// empty-equals-empty pass would be vacuous.
	for _, name := range []string{
		`"coverage.dfs_nodes"`,
		`"coverage.bitmap_ands"`,
		`"discovery.lsh_band_probes"`,
		`"discovery.lsh_candidates"`,
		`"cleaning.er_pairs_compared"`,
		`"dt.draws"`,
		`"core.pipeline_runs"`,
	} {
		if !bytes.Contains(serial, []byte(name)) {
			t.Fatalf("snapshot missing %s:\n%s", name, serial)
		}
	}
}

// TestObsSnapshotIntraExperimentWorkers varies the worker count INSIDE the
// instrumented algorithms (LSH query fan-out, ER block sharding) rather
// than across experiments: per-shard tallies must merge to the same totals.
func TestObsSnapshotIntraExperimentWorkers(t *testing.T) {
	capture := func(run func()) []byte {
		reg := obs.NewRegistry()
		obs.Enable(reg)
		defer obs.Enable(nil)
		run()
		b, err := reg.MarshalSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	e6serial := capture(func() { E6DiscoveryWorkers(6, 1) })
	e14serial := capture(func() { E14ERWorkers(14, 1) })
	for _, w := range []int{2, 8} {
		if got := capture(func() { E6DiscoveryWorkers(6, w) }); !bytes.Equal(got, e6serial) {
			t.Fatalf("E6 obs snapshot diverged at workers=%d:\n%s\nvs\n%s", w, got, e6serial)
		}
		if got := capture(func() { E14ERWorkers(14, w) }); !bytes.Equal(got, e14serial) {
			t.Fatalf("E14 obs snapshot diverged at workers=%d:\n%s\nvs\n%s", w, got, e14serial)
		}
	}
	if !bytes.Contains(e6serial, []byte(`"discovery.lsh_queries"`)) {
		t.Fatalf("E6 snapshot missing discovery counters:\n%s", e6serial)
	}
	if !bytes.Contains(e14serial, []byte(`"cleaning.er_blocks"`)) {
		t.Fatalf("E14 snapshot missing cleaning counters:\n%s", e14serial)
	}
}
