package experiments

import (
	"redi/internal/acquisition"
	"redi/internal/core"
	"redi/internal/dataset"
	"redi/internal/fairness"
	"redi/internal/rng"
	"redi/internal/synth"
)

// sliceData builds a 2-slice pool where each slice's class signal lives in
// its own feature subspace (slice 0 in dims 0–1, slice 1 in dims 2–3, dim 4
// is the slice indicator, dim 5 is noise). A linear model therefore needs
// examples *from a slice* to classify that slice — the regime where
// per-slice learning curves and selective acquisition matter.
func sliceData(n int, r *rng.RNG) (X [][]float64, y, slice []int) {
	for i := 0; i < n; i++ {
		sl := i % 2
		cls := r.Intn(2)
		sign := -1.0
		if cls == 1 {
			sign = 1
		}
		x := make([]float64, 6)
		for j := range x {
			x[j] = r.Normal(0, 1)
		}
		x[2*sl] += sign * 1.1
		x[2*sl+1] += sign * 0.7
		x[4] = float64(sl)
		X = append(X, x)
		y = append(y, cls)
		slice = append(slice, sl)
	}
	return
}

// E9SliceTuner reproduces Slice Tuner's headline comparison: maximum slice
// loss after spending an acquisition budget, for the curve-based allocator
// vs uniform and waterfilling baselines, across budgets.
func E9SliceTuner(seed uint64) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Slice-aware acquisition: max slice loss after spending the budget (imbalanced start 600/150)",
		Columns: []string{"budget", "SliceTuner", "Waterfilling", "Uniform"},
		Notes:   "both slice-aware policies dominate uniform; the curve-based allocator matches or beats waterfilling as budgets grow",
	}
	// Slice Tuner is iterative: acquire a batch, retrain, re-fit the
	// learning curves, repeat. Baselines spend the same budget in the
	// same number of batches.
	const iterations = 4
	run := func(budget int, mk func(sim *acquisition.SliceSim, batch int, s uint64) acquisition.Allocation) float64 {
		const trials = 3
		total := 0.0
		for s := uint64(0); s < trials; s++ {
			r := rng.New(seed + 17*s)
			px, py, ps := sliceData(10000, r)
			tx, ty, ts := sliceData(2500, r)
			sim, err := acquisition.NewSliceSim(2, px, py, ps, tx, ty, ts, []int{600, 150}, r)
			if err != nil {
				panic(err)
			}
			batch := budget / iterations
			for it := 0; it < iterations; it++ {
				sim.Acquire(mk(sim, batch, s+uint64(it)), rng.New(seed+100+s+uint64(it)))
			}
			per, _, err := sim.TrainAndEval(rng.New(seed + 200 + s))
			if err != nil {
				panic(err)
			}
			total += acquisition.MaxLoss(per)
		}
		return total / trials
	}
	for _, budget := range []int{200, 500, 1000, 2000} {
		tuner := run(budget, func(sim *acquisition.SliceSim, batch int, s uint64) acquisition.Allocation {
			hist, err := sim.CollectHistory(3, rng.New(seed+300+s))
			if err != nil {
				panic(err)
			}
			return acquisition.CurveAllocate(acquisition.EstimateCurves(hist), sim.SliceSizes(), batch, 25, 1)
		})
		water := run(budget, func(sim *acquisition.SliceSim, batch int, _ uint64) acquisition.Allocation {
			return acquisition.WaterfillingAllocate(sim.SliceSizes(), batch, 25)
		})
		uniform := run(budget, func(_ *acquisition.SliceSim, batch int, _ uint64) acquisition.Allocation {
			return acquisition.UniformAllocate(2, batch)
		})
		t.AddRow(d0(budget), f3(tuner), f3(water), f3(uniform))
	}
	return t
}

// E11Market reproduces the data-market acquisition comparison: validation
// accuracy vs queries issued, novelty-guided predicate selection vs random.
func E11Market(seed uint64) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Data-market acquisition: validation accuracy vs rounds (consumer starts with one slice only)",
		Columns: []string{"round", "novelty_guided", "random"},
		Notes:   "novelty-guided finds the unrepresented slice early and dominates at small budgets",
	}
	// Eight predicates: predicate 0 returns slice-1 records (the data the
	// consumer is missing); the rest return redundant slice-0 records.
	// Random predicate choice wastes 7/8 of the budget.
	const rounds = 16
	const preds = 8

	runAccs := func(random bool, s uint64) []float64 {
		const trials = 3
		sums := make([]float64, rounds)
		for tr := uint64(0); tr < trials; tr++ {
			r := rng.New(seed + s + 1000*tr)
			px, py, ps := sliceData(12000, r)
			pred := make([]int, len(ps))
			next := 1
			for i, sl := range ps {
				if sl == 1 {
					pred[i] = 0
				} else {
					pred[i] = 1 + next%(preds-1)
					next++
				}
			}
			prov, err := acquisition.NewProvider(preds, px, py, pred)
			if err != nil {
				panic(err)
			}
			var initX [][]float64
			var initY []int
			for i := range px {
				if ps[i] == 0 && len(initX) < 200 {
					initX = append(initX, px[i])
					initY = append(initY, py[i])
				}
			}
			vx, vy, _ := sliceData(2000, r)
			cons := acquisition.NewConsumer(initX, initY, vx, vy, preds, 0.1)
			choose := cons.ChoosePredicate
			if random {
				choose = func(rr *rng.RNG) int { return rr.Intn(preds) }
			}
			accs, err := acquisition.MarketRun(prov, cons, rounds, 40, choose, rng.New(seed+50+s+tr))
			if err != nil {
				panic(err)
			}
			for i, a := range accs {
				sums[i] += a
			}
		}
		for i := range sums {
			sums[i] /= trials
		}
		return sums
	}
	novelty := runAccs(false, 1)
	random := runAccs(true, 2)
	for i := 0; i < rounds; i += 3 {
		t.AddRow(d0(i+1), f3(novelty[i]), f3(random[i]))
	}
	return t
}

// E12EndToEnd reproduces Example 1 of the paper: a model trained on one
// skewed in-house source vs a model trained on data tailored from multiple
// institutional sources, compared on overall and minority-group accuracy
// and on collection cost.
func E12EndToEnd(seed uint64) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "End-to-end (paper Example 1): in-house vs tailored training data",
		Columns: []string{"training_data", "rows", "cost", "accuracy", "worst_group_acc", "parity_diff"},
		Notes:   "tailoring closes most of the worst-group accuracy gap at bounded collection cost",
	}
	popCfg := synth.DefaultPopulation(0)
	popCfg.GroupEffect = 1.5
	set := synth.GenerateSources(synth.SourceConfig{
		Population:        popCfg,
		NumSources:        5,
		RowsPerSource:     3000,
		SkewConcentration: 1.5,
		HoldoutRows:       4000,
	}, rng.New(seed))

	// Held-out test set from the same data-generating process as the
	// sources. One-hot encoding the sensitive attributes lets the model
	// fit per-group baselines, which is what under-representation
	// starves (see examples/healthcare).
	prob, err := fairness.InferProblem(set.Holdout)
	if err != nil {
		panic(err)
	}
	prob.Encoder = fairness.NewOneHotEncoder(set.Holdout, prob.Sensitive)
	test, err := fairness.BuildDesign(set.Holdout, prob)
	if err != nil {
		panic(err)
	}

	evalOn := func(train *dataset.Dataset, rows int, cost float64, name string) {
		dTrain, err := fairness.BuildDesign(train, prob)
		if err != nil {
			panic(err)
		}
		m, err := fairness.TrainLogistic(dTrain.X, dTrain.Y, nil, fairness.LogisticConfig{}, rng.New(seed+2))
		if err != nil {
			panic(err)
		}
		rep := fairness.Evaluate(m, test)
		worst := 1.0
		for _, g := range rep.Groups {
			if g.N > 0 && g.Accuracy < worst {
				worst = g.Accuracy
			}
		}
		t.AddRow(name, d0(rows), f2(cost), f3(rep.Accuracy), f3(worst), f3(rep.DemographicParityDiff))
	}

	// In-house baseline: the single most skewed source, truncated.
	inHouse := set.Sources[0].Head(1200)
	evalOn(inHouse, inHouse.NumRows(), float64(inHouse.NumRows()), "in-house")

	// Tailored: equal counts per available group via the pipeline.
	need := map[dataset.GroupKey]int{}
	for gi, k := range set.Groups {
		for s := range set.Sources {
			if set.GroupDists[s][gi] > 0 {
				need[k] = 150
				break
			}
		}
	}
	p := &core.Pipeline{
		Sources:            set.Sources,
		Costs:              set.Costs,
		Sensitive:          set.SensitiveNames,
		KnownDistributions: true,
		MaxDraws:           3_000_000,
	}
	out, err := p.Run(need, nil, rng.New(seed+3))
	if err != nil {
		panic(err)
	}
	evalOn(out.Data, out.Data.NumRows(), out.Tailor.TotalCost, "tailored")
	return t
}
