package experiments

import (
	"redi/internal/acquisition"
	"redi/internal/rng"
)

// E10Crowd reproduces the distribution-aware crowdsourcing experiment of
// Fan et al.: KL(target ‖ collected) over collection rounds for adaptive
// worker selection vs the random baseline.
func E10Crowd(seed uint64) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Crowd entity collection: KL(target||collected) vs rounds, adaptive vs random worker selection",
		Columns: []string{"round", "adaptive_KL", "random_KL"},
		Notes:   "adaptive selection decays faster and plateaus lower once worker distributions are learned",
	}
	target := []float64{0.25, 0.25, 0.25, 0.25}
	mkWorkers := func(r *rng.RNG) []*acquisition.Worker {
		var ws []*acquisition.Worker
		// Most workers heavily favor value 0 (e.g. downtown POIs); a
		// minority of workers cover the tail values.
		for i := 0; i < 12; i++ {
			ws = append(ws, acquisition.NewWorker([]float64{0.82, 0.06, 0.06, 0.06}))
		}
		for i := 0; i < 6; i++ {
			w := []float64{0.04, 0.04, 0.04, 0.04}
			w[1+r.Intn(3)] = 0.88
			ws = append(ws, acquisition.NewWorker(w))
		}
		return ws
	}
	const rounds = 60
	const trials = 5
	checkpoints := []int{5, 10, 20, 40, 60}

	collect := func(adaptive bool) map[int]float64 {
		sums := map[int]float64{}
		for s := uint64(0); s < trials; s++ {
			r := rng.New(seed + 7*s)
			c, err := acquisition.NewCrowdCollector(mkWorkers(r), target, 5)
			if err != nil {
				panic(err)
			}
			ci := 0
			for round := 1; round <= rounds; round++ {
				if adaptive {
					c.AdaptiveRound(r)
				} else {
					c.RandomRound(r)
				}
				if ci < len(checkpoints) && round == checkpoints[ci] {
					sums[round] += c.KL()
					ci++
				}
			}
		}
		for k := range sums {
			sums[k] /= trials
		}
		return sums
	}
	ad := collect(true)
	rd := collect(false)
	for _, cp := range checkpoints {
		t.AddRow(d0(cp), f4(ad[cp]), f4(rd[cp]))
	}
	return t
}
