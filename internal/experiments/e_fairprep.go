package experiments

import (
	"fmt"

	"redi/internal/fairness"
	"redi/internal/rng"
	"redi/internal/synth"
)

// E17FairPrep reproduces the FairPrep-style intervention study (Schelter et
// al., EDBT 2020): accuracy and fairness of a model under no intervention,
// reweighing (pre-processing), and per-group thresholding
// (post-processing), across seeds with a leakage-free protocol. It
// quantifies the §2.3 trade-off the tutorial highlights: interventions
// that repair fairness downstream pay for it in accuracy, which is why
// collecting responsible data in the first place matters.
func E17FairPrep(seed uint64) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Fairness interventions (FairPrep protocol): mean±std over 5 seeds",
		Columns: []string{"intervention", "accuracy", "DP_diff", "EO_diff", "acc_gap"},
		Notes:   "downstream interventions buy fairness with accuracy: parity thresholds more than halve the DP gap but cost ~0.2 accuracy — the §2.3 trade-off that motivates collecting responsible data instead",
	}
	data := func(s uint64) (train, val, test *fairness.Design, err error) {
		cfg := synth.DefaultPopulation(5000)
		cfg.GroupEffect = 1.2
		p := synth.Generate(cfg, rng.New(s))
		prob, err := fairness.InferProblem(p.Data)
		if err != nil {
			return nil, nil, nil, err
		}
		r := rng.New(s + 1)
		trainD, rest := p.Data.Split(r, 0.6)
		valD, testD := rest.Split(r, 0.5)
		if train, err = fairness.BuildDesign(trainD, prob); err != nil {
			return nil, nil, nil, err
		}
		if val, err = fairness.BuildDesign(valD, prob); err != nil {
			return nil, nil, nil, err
		}
		if test, err = fairness.BuildDesign(testD, prob); err != nil {
			return nil, nil, nil, err
		}
		means, scales := train.Standardize()
		val.ApplyStandardize(means, scales)
		test.ApplyStandardize(means, scales)
		return train, val, test, nil
	}
	cfg := fairness.LogisticConfig{Epochs: 25}
	rows, err := fairness.RunStudy(fairness.StudyConfig{
		Seeds: []uint64{seed, seed + 10, seed + 20, seed + 30, seed + 40},
		Data:  data,
	}, []fairness.Intervention{
		fairness.Baseline(cfg),
		fairness.ReweighIntervention(cfg),
		fairness.ParityPostProcess(cfg, 0.5),
		fairness.EqOppPostProcess(cfg, 0.85),
	})
	if err != nil {
		panic(err)
	}
	ms := func(m fairness.Metric) string { return fmt.Sprintf("%.3f±%.3f", m.Mean, m.Std) }
	for _, r := range rows {
		t.AddRow(r.Intervention, ms(r.Accuracy), ms(r.DPDiff), ms(r.EODiff), ms(r.AccuracyGap))
	}
	return t
}
