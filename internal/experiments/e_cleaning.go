package experiments

import (
	"fmt"

	"redi/internal/cleaning"
	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/synth"
)

// E7Imputation reproduces the imputation-fairness analysis of Zhang & Long:
// overall RMSE and the per-group accuracy parity difference of each imputer
// under each missingness mechanism.
func E7Imputation(seed uint64) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Imputation fairness: RMSE and accuracy-parity difference by imputer and mechanism (25% missing)",
		Columns: []string{"mechanism", "imputer", "RMSE", "parity_diff"},
		Notes:   "group-conditional imputers shrink the parity gap; MNAR is hardest for everyone",
	}
	cfg := synth.DefaultPopulation(6000)
	cfg.GroupEffect = 2
	pop := synth.Generate(cfg, rng.New(seed))
	sens := []string{"race", "sex"}
	imputers := []cleaning.Imputer{
		cleaning.MeanImputer{},
		cleaning.MedianImputer{},
		cleaning.GroupMeanImputer{Sensitive: sens},
		cleaning.HotDeckImputer{Sensitive: sens, R: rng.New(seed + 1)},
		cleaning.KNNImputer{K: 5, Features: []string{"f1", "f2", "f3"}},
	}
	for _, mech := range []synth.Mechanism{synth.MCAR, synth.MAR, synth.MNAR} {
		mc := synth.MissingConfig{Attr: "f0", Rate: 0.25, Mech: mech, CondAttr: "race", CondValue: "black"}
		masked := synth.InjectMissing(pop.Data, mc, rng.New(seed+2))
		for _, imp := range imputers {
			repaired, err := imp.Impute(masked, "f0")
			if err != nil {
				panic(err)
			}
			audit, err := cleaning.AuditImputation(imp.Name(), pop.Data, masked, repaired, "f0", sens)
			if err != nil {
				panic(err)
			}
			t.AddRow(mech.String(), imp.Name(), f3(audit.RMSE), f3(audit.ParityDiff))
		}
	}
	return t
}

// E14ER reproduces the fairness-aware ER audit: pairwise F1 overall and per
// group as blocking becomes more aggressive. Minority names are generated
// with more internal variation, so aggressive prefix blocking drops their
// matching pairs first.
func E14ER(seed uint64) *Table { return E14ERWorkers(seed, 0) }

// E14ERWorkers is E14ER with candidate-pair comparison sharded across the
// given workers (0 = serial). The table is bit-identical at any count.
func E14ERWorkers(seed uint64, workers int) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Entity resolution: pairwise quality vs blocking aggressiveness, overall and per group",
		Columns: []string{"block_prefix", "pairs", "F1_all", "F1_maj", "F1_min", "recall_min"},
		Notes:   "aggressive blocking cuts compared pairs and hurts minority-group recall first",
	}
	d := erCorpus(seed)
	for _, prefix := range []int{0, 1, 2, 3, 4} {
		cfg := cleaning.ERConfig{
			NameAttr: "name", TruthAttr: "entity",
			BlockPrefix: prefix, Threshold: 0.84, Workers: workers,
		}
		res, err := cleaning.ResolveEntities(d, cfg)
		if err != nil {
			panic(err)
		}
		overall, byGroup, err := cleaning.EvaluateER(d, cfg, res, []string{"group"})
		if err != nil {
			panic(err)
		}
		maj := byGroup["group=maj"]
		min := byGroup["group=min"]
		t.AddRow(d0(prefix), d0(res.PairsCompared), f3(overall.F1), f3(maj.F1), f3(min.F1), f3(min.Recall))
	}
	return t
}

// erCorpus builds duplicated person records. Minority entities get their
// typos in the first characters (emulating transliteration variance),
// which prefix blocking is blind to.
func erCorpus(seed uint64) *dataset.Dataset {
	r := rng.New(seed)
	d := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "entity", Kind: dataset.Categorical, Role: dataset.ID},
		dataset.Attribute{Name: "name", Kind: dataset.Categorical, Role: dataset.Feature},
		dataset.Attribute{Name: "group", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	base := []string{"anderson", "bennett", "caldwell", "donovan", "ellison",
		"foster", "grayson", "holloway", "ivanson", "jefferson",
		"okonkwo", "nakamura", "hernandez", "oyelaran", "tsukamoto"}
	for e, name := range base {
		group := "maj"
		frontBias := false
		if e >= 10 {
			group = "min"
			frontBias = true
		}
		copies := 3
		for c := 0; c < copies; c++ {
			n := []byte(name)
			if c > 0 {
				pos := 1 + r.Intn(len(n)-1)
				if frontBias {
					pos = r.Intn(2) // perturb the first characters
				}
				n[pos] = byte('a' + r.Intn(26))
			}
			d.MustAppendRow(dataset.Cat(fmt.Sprintf("e%02d", e)), dataset.Cat(string(n)), dataset.Cat(group))
		}
	}
	return d
}
