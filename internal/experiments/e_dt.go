package experiments

import (
	"redi/internal/dt"
	"redi/internal/rng"
)

// dtSources builds m two-group sources: most are majority-heavy, one is a
// "minority specialist" whose minority share is boosted — the structure of
// the VLDB'21 DT experiments.
func dtSources(m int, minorityFrac float64, r *rng.RNG) (probs [][]float64, costs []float64) {
	for i := 0; i < m; i++ {
		f := minorityFrac * (0.5 + r.Float64())
		if i == m-1 {
			// Specialist source.
			f = 0.3 + 0.4*r.Float64()
		}
		if f > 0.95 {
			f = 0.95
		}
		probs = append(probs, []float64{1 - f, f})
		costs = append(costs, 1+r.Float64())
	}
	return probs, costs
}

func meanCost(probs [][]float64, costs []float64, need []int, mk func(trial uint64) dt.Strategy, trials int, seed uint64) float64 {
	var sources []dt.Source
	for i := range probs {
		sources = append(sources, dt.NewDistSource(probs[i], costs[i]))
	}
	e := &dt.Engine{Sources: sources, MaxDraws: 5_000_000}
	total := 0.0
	for t := 0; t < trials; t++ {
		res, err := e.Run(mk(uint64(t)), need, rng.New(seed+uint64(t)))
		if err != nil {
			panic(err)
		}
		total += res.TotalCost
	}
	return total / float64(trials)
}

// E1DTKnown reproduces the known-distribution DT experiment: expected cost
// of fulfilling a balanced requirement as the population minority fraction
// shrinks, for RatioColl / CouponColl vs the RandomColl baseline, with the
// exact DP optimum as the floor.
func E1DTKnown(seed uint64) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "DT with known distributions: mean cost vs minority fraction (5 sources, need 30+30)",
		Columns: []string{"minority", "Optimal(DP)", "RatioColl", "CouponColl", "RandomColl", "random/ratio"},
		Notes:   "RatioColl tracks the DP optimum and beats RandomColl; the gap widens as the minority thins",
	}
	need := []int{30, 30}
	const trials = 30
	for _, f := range []float64{0.20, 0.10, 0.05, 0.02, 0.01} {
		r := rng.New(seed)
		probs, costs := dtSources(5, f, r)
		opt := dt.ExactDP(probs, costs, need)
		ratio := meanCost(probs, costs, need, func(uint64) dt.Strategy {
			return dt.NewRatioColl(probs, costs)
		}, trials, seed+1)
		coupon := meanCost(probs, costs, need, func(uint64) dt.Strategy {
			return dt.NewCouponColl(probs)
		}, trials, seed+2)
		random := meanCost(probs, costs, need, func(i uint64) dt.Strategy {
			return dt.NewRandomColl(len(probs), rng.New(seed+100+i))
		}, trials, seed+3)
		t.AddRow(f3(f), f2(opt), f2(ratio), f2(coupon), f2(random), f2(random/ratio))
	}
	return t
}

// E2DTUnknown reproduces the unknown-distribution DT experiment: mean cost
// vs the number of sources for the learning strategies against the
// known-distribution oracle and the random baseline.
func E2DTUnknown(seed uint64) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "DT with unknown distributions: mean cost vs #sources (minority 5%, need 20+60)",
		Columns: []string{"sources", "RatioColl(oracle)", "UCBColl", "EpsGreedy", "RandomColl"},
		Notes:   "UCB approaches the oracle and beats random; more sources make learning harder but also offer better specialists",
	}
	need := []int{20, 60}
	const trials = 20
	for _, m := range []int{2, 4, 8, 16, 32} {
		r := rng.New(seed + uint64(m))
		probs, costs := dtSources(m, 0.05, r)
		oracle := meanCost(probs, costs, need, func(uint64) dt.Strategy {
			return dt.NewRatioColl(probs, costs)
		}, trials, seed+4)
		ucb := meanCost(probs, costs, need, func(uint64) dt.Strategy {
			return dt.NewUCBColl(costs, 2)
		}, trials, seed+5)
		eps := meanCost(probs, costs, need, func(i uint64) dt.Strategy {
			return dt.NewEpsilonGreedy(costs, 2, 0.1, rng.New(seed+200+i))
		}, trials, seed+6)
		random := meanCost(probs, costs, need, func(i uint64) dt.Strategy {
			return dt.NewRandomColl(len(probs), rng.New(seed+300+i))
		}, trials, seed+7)
		t.AddRow(d0(m), f2(oracle), f2(ucb), f2(eps), f2(random))
	}
	return t
}
