package experiments

import (
	"redi/internal/dt"
	"redi/internal/rng"
)

// E15Overlap evaluates the overlap-aware DT extension (tutorial §5): total
// cost of meeting group counts from overlapping sources, for the
// overlap-aware policy vs the overlap-blind RatioColl, as the fraction of
// shared tuples grows. With deduplication, tuples already collected from
// one source are worthless from every other.
func E15Overlap(seed uint64) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "Overlap-aware DT: mean cost vs source overlap (4 sources of 400, need 100+40, dedup)",
		Columns: []string{"overlap", "OverlapAware", "RatioColl(blind)", "blind/aware"},
		Notes:   "the aware policy rotates to sources with fresh tuples as pools deplete, while blind RatioColl keeps hammering its favorite; as overlap approaches 1 the sources become near-copies, no policy can dodge duplicates, and the gap closes",
	}
	groupOf := func(id int) int {
		if id%5 == 0 {
			return 1
		}
		return 0
	}
	build := func(rho float64, r *rng.RNG) []*dt.UniverseSource {
		const m, perSource = 4, 400
		universe := m*perSource + 1000
		coreSize := int(rho * perSource)
		core := r.Perm(universe)[:coreSize]
		var sources []*dt.UniverseSource
		for s := 0; s < m; s++ {
			members := append([]int(nil), core...)
			start := coreSize + s*(perSource-coreSize)
			for i := 0; i < perSource-coreSize; i++ {
				members = append(members, start+i)
			}
			src, err := dt.NewUniverseSource(members, groupOf, 2, 1)
			if err != nil {
				panic(err)
			}
			sources = append(sources, src)
		}
		return sources
	}
	need := []int{100, 40}
	mean := func(aware bool, rho float64) float64 {
		const trials = 15
		total := 0.0
		for s := uint64(0); s < trials; s++ {
			r := rng.New(seed + 31*s)
			sources := build(rho, r)
			var ifaces []dt.Source
			var probs [][]float64
			var costs []float64
			for _, src := range sources {
				ifaces = append(ifaces, src)
				probs = append(probs, src.Probs())
				costs = append(costs, src.Cost())
			}
			e := &dt.Engine{Sources: ifaces, MaxDraws: 2_000_000}
			var strat dt.DedupStrategy
			if aware {
				strat = dt.NewOverlapAwareColl(sources)
			} else {
				strat = dt.BlindAdapter{S: dt.NewRatioColl(probs, costs)}
			}
			res, err := e.RunDedup(strat, need, rng.New(seed+77+s))
			if err != nil {
				panic(err)
			}
			if !res.Fulfilled {
				panic("E15: unfulfilled run")
			}
			total += res.TotalCost
		}
		return total / trials
	}
	for _, rho := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		aware := mean(true, rho)
		blind := mean(false, rho)
		t.AddRow(f2(rho), f2(aware), f2(blind), f2(blind/aware))
	}
	return t
}
