package experiments

import (
	"fmt"
	"time"

	"redi/internal/coverage"
	"redi/internal/dataset"
	"redi/internal/rng"
)

// E18JoinCoverage reproduces the multi-relation coverage result (Lin et
// al., VLDB 2020): time to enumerate MUPs over patients ⋈ facilities when
// the join is factorized per key versus materialized first, as the join
// fan-out (and thus the join size) grows. The factorized space never builds
// the join, so its cost tracks the base relations, not the result.
func E18JoinCoverage(seed uint64) *Table {
	t := &Table{
		ID:      "E18",
		Title:   "Multi-relation coverage: MUP time, factorized join-space vs materialize-then-scan",
		Columns: []string{"fanout", "join_rows", "MUPs", "factorized_ms", "materialized_ms", "mat/fact"},
		Notes:   "materialization cost grows with the join size; the factorized space stays near-flat",
	}
	const nLeft, keys = 4000, 40
	races := []string{"white", "black", "hispanic"}
	regions := []string{"north", "south", "west"}
	for _, fanout := range []int{1, 5, 10, 25, 50} {
		r := rng.New(seed + uint64(fanout))
		left := dataset.New(dataset.NewSchema(
			dataset.Attribute{Name: "zip", Kind: dataset.Categorical},
			dataset.Attribute{Name: "race", Kind: dataset.Categorical, Role: dataset.Sensitive},
		))
		raceCat := rng.NewCategorical([]float64{0.75, 0.18, 0.07})
		for i := 0; i < nLeft; i++ {
			left.MustAppendRow(
				dataset.Cat(fmt.Sprintf("z%03d", r.Intn(keys))),
				dataset.Cat(races[raceCat.Draw(r)]))
		}
		right := dataset.New(dataset.NewSchema(
			dataset.Attribute{Name: "zipcode", Kind: dataset.Categorical},
			dataset.Attribute{Name: "region", Kind: dataset.Categorical, Role: dataset.Sensitive},
		))
		for z := 0; z < keys; z++ {
			for f := 0; f < fanout; f++ {
				right.MustAppendRow(
					dataset.Cat(fmt.Sprintf("z%03d", z)),
					dataset.Cat(regions[r.Intn(3)]))
			}
		}

		// Threshold at 5% of the join size: the 7% minority race stays
		// covered alone but its intersections with regions fall below,
		// so real MUPs exist at every fan-out.
		threshold := nLeft * fanout / 20

		start := time.Now()
		js := coverage.NewJoinSpace(left, "zip", []string{"race"}, right, "zipcode", []string{"region"}, threshold)
		fastMUPs := js.MUPs()
		fast := time.Since(start)

		start = time.Now()
		joined, err := left.Join(right, "zip", "zipcode")
		if err != nil {
			panic(err)
		}
		ms := coverage.NewSpace(joined, []string{"race", "region"}, threshold)
		slowMUPs := ms.MUPs()
		slow := time.Since(start)

		if len(fastMUPs) != len(slowMUPs) {
			panic("E18: factorized and materialized MUPs disagree")
		}
		t.AddRow(d0(fanout), d0(joined.NumRows()), d0(len(fastMUPs)),
			f3(float64(fast.Microseconds())/1000), f3(float64(slow.Microseconds())/1000),
			f2(float64(slow)/float64(fast)))
	}
	return t
}
