package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// fmtSscanf parses "mean±std" cells from E17.
func fmtSscanf(cell string, mean, std *float64) (int, error) {
	return fmt.Sscanf(cell, "%f±%f", mean, std)
}

func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registered experiments = %d, want 18", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "EX", Title: "demo", Columns: []string{"a", "bb"}, Notes: "n"}
	tb.AddRow("1", "2")
	s := tb.String()
	for _, want := range []string{"EX", "demo", "bb", "note:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

// Each experiment runs and produces a well-formed table; shape assertions
// below pin the qualitative results EXPERIMENTS.md claims.

func TestE1Shape(t *testing.T) {
	tb := E1DTKnown(1)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		opt := parse(t, row[1])
		ratio := parse(t, row[2])
		random := parse(t, row[4])
		if ratio < opt*0.8 {
			t.Fatalf("RatioColl %v implausibly below optimum %v", ratio, opt)
		}
		if random < ratio {
			t.Fatalf("random %v beat RatioColl %v", random, ratio)
		}
	}
	// The random/ratio gap must widen as the minority thins.
	first := parse(t, tb.Rows[0][5])
	last := parse(t, tb.Rows[len(tb.Rows)-1][5])
	if last <= first {
		t.Fatalf("gap did not widen: %v -> %v", first, last)
	}
}

func TestE2Shape(t *testing.T) {
	tb := E2DTUnknown(2)
	for _, row := range tb.Rows {
		oracle := parse(t, row[1])
		ucb := parse(t, row[2])
		random := parse(t, row[4])
		if ucb >= random {
			t.Fatalf("UCB %v did not beat random %v (row %v)", ucb, random, row)
		}
		if ucb < oracle*0.5 {
			t.Fatalf("UCB %v implausibly below oracle %v", ucb, oracle)
		}
	}
}

func TestE3Shape(t *testing.T) {
	tb := E3Coverage(3)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Speedup at the largest dimensionality must exceed 1.
	last := tb.Rows[len(tb.Rows)-1]
	if sp := parse(t, last[5]); sp <= 1 {
		t.Fatalf("pattern-breaker speedup = %v at d=7", sp)
	}
}

func TestE4Shape(t *testing.T) {
	tb := E4JoinSampling(4)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	naive := parse(t, tb.Rows[0][1])
	ar := parse(t, tb.Rows[1][1])
	exact := parse(t, tb.Rows[2][1])
	if naive < 2*ar || naive < 2*exact {
		t.Fatalf("naive TV %v should far exceed uniform samplers (%v, %v)", naive, ar, exact)
	}
}

func TestE5Shape(t *testing.T) {
	tb := E5OnlineAgg(5)
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	// Error shrinks with samples for every estimator.
	for col := 1; col <= 3; col++ {
		if parse(t, last[col]) > parse(t, first[col])+0.02 {
			t.Fatalf("estimator %d error grew: %v -> %v", col, first[col], last[col])
		}
	}
}

func TestE6Shape(t *testing.T) {
	tb := E6Discovery(6)
	var lshRows, sketchRows int
	for _, row := range tb.Rows {
		switch row[0] {
		case "lsh-ensemble":
			lshRows++
			if rec := parse(t, row[3]); rec < 0.8 {
				t.Fatalf("LSH recall = %v (%v)", rec, row)
			}
		case "corr-sketch":
			sketchRows++
		}
	}
	if lshRows != 3 || sketchRows != 4 {
		t.Fatalf("row mix = %d/%d", lshRows, sketchRows)
	}
	// Largest sketch must beat the smallest.
	small := parse(t, tb.Rows[3][4])
	large := parse(t, tb.Rows[6][4])
	if large > small+0.02 {
		t.Fatalf("sketch error did not shrink: %v -> %v", small, large)
	}
}

func TestE7Shape(t *testing.T) {
	tb := E7Imputation(7)
	// Under every mechanism, group-mean parity <= mean parity.
	parity := map[string]map[string]float64{}
	for _, row := range tb.Rows {
		if parity[row[0]] == nil {
			parity[row[0]] = map[string]float64{}
		}
		parity[row[0]][row[1]] = parse(t, row[3])
	}
	for mech, m := range parity {
		if m["group-mean"] > m["mean"] {
			t.Fatalf("%s: group-mean parity %v exceeds mean %v", mech, m["group-mean"], m["mean"])
		}
	}
}

func TestE8Shape(t *testing.T) {
	tb := E8FairRange(8)
	prevSim := 2.0
	for _, row := range tb.Rows {
		newDisp := parse(t, row[2])
		eps := parse(t, row[0])
		if newDisp > eps {
			t.Fatalf("rewrite violated bound: %v > %v", newDisp, eps)
		}
		sim := parse(t, row[3])
		if sim > prevSim+1e-9 {
			t.Fatalf("similarity increased as eps tightened: %v", tb.Rows)
		}
		prevSim = sim
	}
}

func TestE9Shape(t *testing.T) {
	tb := E9SliceTuner(9)
	for _, row := range tb.Rows {
		tuner := parse(t, row[1])
		uniform := parse(t, row[3])
		if tuner > uniform*1.15 {
			t.Fatalf("SliceTuner %v clearly worse than uniform %v", tuner, uniform)
		}
	}
}

func TestE10Shape(t *testing.T) {
	tb := E10Crowd(10)
	last := tb.Rows[len(tb.Rows)-1]
	if ad, rd := parse(t, last[1]), parse(t, last[2]); ad >= rd {
		t.Fatalf("adaptive KL %v did not beat random %v", ad, rd)
	}
}

func TestE11Shape(t *testing.T) {
	tb := E11Market(11)
	// At the first checkpoint the novelty-guided consumer should already
	// be at least as good as random (it jumps straight to the missing
	// slice).
	nov := parse(t, tb.Rows[0][1])
	rnd := parse(t, tb.Rows[0][2])
	if nov+0.05 < rnd {
		t.Fatalf("novelty %v below random %v at round 1", nov, rnd)
	}
}

func TestE12Shape(t *testing.T) {
	tb := E12EndToEnd(12)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	inWorst := parse(t, tb.Rows[0][4])
	tailWorst := parse(t, tb.Rows[1][4])
	if tailWorst <= inWorst {
		t.Fatalf("tailoring did not improve worst-group accuracy: %v -> %v", inWorst, tailWorst)
	}
}

func TestE13Shape(t *testing.T) {
	tb := E13Remedy(13)
	for _, row := range tb.Rows {
		greedy := parse(t, row[2])
		random := parse(t, row[3])
		if greedy > 0 && random < greedy {
			t.Fatalf("random remedy %v beat greedy %v", random, greedy)
		}
	}
}

func TestE15Shape(t *testing.T) {
	tb := E15Overlap(15)
	for _, row := range tb.Rows {
		aware := parse(t, row[1])
		blind := parse(t, row[2])
		if aware > blind*1.02 {
			t.Fatalf("overlap-aware %v worse than blind %v (row %v)", aware, blind, row)
		}
	}
	// The advantage is largest at low overlap (fresh pools to rotate to)
	// and closes as sources become near-copies.
	first := parse(t, tb.Rows[0][3])
	last := parse(t, tb.Rows[len(tb.Rows)-1][3])
	if last > first {
		t.Fatalf("gap did not close with overlap: %v -> %v", first, last)
	}
}

func TestE18Shape(t *testing.T) {
	tb := E18JoinCoverage(18)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// At the largest fan-out the materialized path must clearly lose.
	last := tb.Rows[len(tb.Rows)-1]
	if ratio := parse(t, last[5]); ratio < 2 {
		t.Fatalf("materialized/factorized ratio = %v at max fan-out, want > 2", ratio)
	}
	// Join size grows with fan-out.
	if parse(t, tb.Rows[0][1]) >= parse(t, last[1]) {
		t.Fatal("join size did not grow")
	}
}

func TestE17Shape(t *testing.T) {
	tb := E17FairPrep(17)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	parseMS := func(cell string) float64 {
		var mean, std float64
		if _, err := fmtSscanf(cell, &mean, &std); err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		return mean
	}
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	baseDP := parseMS(byName["baseline"][2])
	parityDP := parseMS(byName["parity-threshold"][2])
	if parityDP >= baseDP {
		t.Fatalf("parity post-process DP %v did not beat baseline %v", parityDP, baseDP)
	}
}

func TestE16Shape(t *testing.T) {
	tb := E16Debias(16)
	for _, row := range tb.Rows {
		naive := parse(t, row[1])
		post := parse(t, row[2])
		raked := parse(t, row[3])
		if post > 0.05 || raked > 0.05 {
			t.Fatalf("reweighted estimators drifted: %v", row)
		}
		_ = naive
	}
	// Naive error grows with skew and dwarfs the corrected estimators at
	// the extreme.
	first := parse(t, tb.Rows[0][1])
	last := parse(t, tb.Rows[len(tb.Rows)-1][1])
	if last <= first {
		t.Fatalf("naive error did not grow with skew: %v -> %v", first, last)
	}
	if last < 5*parse(t, tb.Rows[len(tb.Rows)-1][2]) {
		t.Fatalf("naive (%v) should dwarf post-stratified at extreme skew", last)
	}
}

func TestE14Shape(t *testing.T) {
	tb := E14ER(14)
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	if parse(t, last[1]) >= parse(t, first[1]) {
		t.Fatal("aggressive blocking should compare fewer pairs")
	}
	// Minority recall at the most aggressive blocking must fall below
	// its no-blocking value.
	if parse(t, last[5]) >= parse(t, first[5]) {
		t.Fatalf("minority recall did not degrade: %v -> %v", first[5], last[5])
	}
}
