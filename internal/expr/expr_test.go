package expr

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
)

func testSchema() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Attribute{Name: "race", Kind: dataset.Categorical},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical},
		dataset.Attribute{Name: "age", Kind: dataset.Numeric},
		dataset.Attribute{Name: "income", Kind: dataset.Numeric},
	)
}

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New(testSchema())
	rows := [][]dataset.Value{
		{dataset.Cat("white"), dataset.Cat("F"), dataset.Num(34), dataset.Num(50)},
		{dataset.Cat("black"), dataset.Cat("M"), dataset.Num(28), dataset.Num(40)},
		{dataset.Cat("white"), dataset.Cat("M"), dataset.Num(45), dataset.NullValue(dataset.Numeric)},
		{dataset.Cat("asian"), dataset.Cat("F"), dataset.NullValue(dataset.Numeric), dataset.Num(70)},
		{dataset.NullValue(dataset.Categorical), dataset.Cat("F"), dataset.Num(61), dataset.Num(20)},
	}
	for _, r := range rows {
		d.MustAppendRow(r...)
	}
	return d
}

// TestParseGolden pins the parser's shape via the AST's s-expression form.
func TestParseGolden(t *testing.T) {
	cases := map[string]string{
		`race = 'black'`:                     `(= race 'black')`,
		`race != 'it''s'`:                    `(!= race 'it''s')`,
		`age = 40`:                           `(= age 40)`,
		`age != 40`:                          `(!= age 40)`,
		`age < 40`:                           `(< age 40)`,
		`age <= -1.5`:                        `(<= age -1.5)`,
		`age > 1e3`:                          `(> age 1000)`,
		`age >= .5`:                          `(>= age 0.5)`,
		`race in ('a')`:                      `(in race 'a')`,
		`race IN ('a', 'b')`:                 `(in race 'a' 'b')`,
		`race not in ('a','b')`:              `(notin race 'a' 'b')`,
		`age between 20 and 40`:              `(between age 20 40)`,
		`age is null`:                        `(isnull age)`,
		`age IS NOT NULL`:                    `(notnull age)`,
		`not age < 5`:                        `(not (< age 5))`,
		`a = 'x' and b = 'y'`:                `(and (= a 'x') (= b 'y'))`,
		`a = 'x' or b = 'y' and c = 'z'`:     `(or (= a 'x') (and (= b 'y') (= c 'z')))`,
		`(a = 'x' or b = 'y') and c = 'z'`:   `(and (or (= a 'x') (= b 'y')) (= c 'z'))`,
		`a = 'x' and b = 'y' and c = 'z'`:    `(and (and (= a 'x') (= b 'y')) (= c 'z'))`,
		`not a = 'x' and b = 'y'`:            `(and (not (= a 'x')) (= b 'y'))`,
		`not (a = 'x' and b = 'y')`:          `(not (and (= a 'x') (= b 'y')))`,
		`age between 20 and 40 and sex='F'`:  `(and (between age 20 40) (= sex 'F'))`,
		`x is null or x is not null`:         `(or (isnull x) (notnull x))`,
		`not not age < 5`:                    `(not (not (< age 5)))`,
		`AGE < 5 AND race = 'b' OR t = 'u'`:  `(or (and (< AGE 5) (= race 'b')) (= t 'u'))`,
		`race not in ('a') or age between 0 and 1`: `(or (notin race 'a') (between age 0 1))`,
	}
	for src, want := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := n.String(); got != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}

// TestParseErrors pins both the message and the byte offset of scan/parse
// errors.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		src      string
		off      int
		fragment string
	}{
		{`race = `, 7, "expected string or number"},
		{`race <`, 6, "expected number"},
		{`race < 'a'`, 7, "expected number"},
		{``, 0, "expected attribute"},
		{`and`, 0, "expected attribute"},
		{`race = 'a' and`, 14, "expected attribute"},
		{`race = 'a' race = 'b'`, 11, "after expression"},
		{`(race = 'a'`, 11, "expected ')'"},
		{`race in 'a'`, 8, "expected '('"},
		{`race in ()`, 9, "expected string"},
		{`race in ('a' 'b')`, 13, "expected ',' or ')'"},
		{`race not null`, 9, "expected 'in' after 'not'"},
		{`age between 20 40`, 15, "expected 'and'"},
		{`age between 20 and`, 18, "expected number"},
		{`age is 40`, 7, "expected 'null'"},
		{`age is not 40`, 11, "expected 'null'"},
		{`race = 'unterminated`, 7, "unterminated string"},
		{`race ! 'a'`, 5, "unexpected '!'"},
		{`race = #`, 7, "unexpected character"},
		{`age < 1.2.3`, 6, "bad number"},
		{`race race`, 5, "expected comparison"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded", c.src)
		}
		var e *Error
		if !errors.As(err, &e) {
			t.Fatalf("Parse(%q) error is %T, not *Error", c.src, err)
		}
		if e.Off != c.off {
			t.Errorf("Parse(%q) error at offset %d, want %d (%s)", c.src, e.Off, c.off, e.Msg)
		}
		if !strings.Contains(e.Msg, c.fragment) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.src, e.Msg, c.fragment)
		}
	}
}

// TestLowerErrors pins name/kind errors produced when binding an expression
// to a schema, with their offsets pointing at the attribute.
func TestLowerErrors(t *testing.T) {
	s := testSchema()
	cases := []struct {
		src      string
		off      int
		fragment string
	}{
		{`nope = 'a'`, 0, `unknown attribute "nope"`},
		{`race = 'a' and nope < 5`, 15, `unknown attribute "nope"`},
		{`age = 'a'`, 0, "is numeric"},
		{`race < 5`, 0, "is categorical"},
		{`age in ('a')`, 0, "is numeric"},
		{`race between 1 and 2`, 0, "is categorical"},
		{`sex = 'F' or race = 3`, 13, "is categorical"},
	}
	for _, c := range cases {
		_, err := CompilePredicate(c.src, s)
		if err == nil {
			t.Fatalf("CompilePredicate(%q) succeeded", c.src)
		}
		var e *Error
		if !errors.As(err, &e) {
			t.Fatalf("CompilePredicate(%q) error is %T", c.src, err)
		}
		if e.Off != c.off || !strings.Contains(e.Msg, c.fragment) {
			t.Errorf("CompilePredicate(%q) = offset %d %q, want offset %d mentioning %q",
				c.src, e.Off, e.Msg, c.off, c.fragment)
		}
	}
}

// TestCompileGolden pins the full pipeline: source through scanner, parser,
// lowering, and bytecode compiler to a stable disassembly.
func TestCompileGolden(t *testing.T) {
	d := testData(t)
	cp, err := Compile(`(race = 'white' or race in ('black','missing')) and not age between 30 and 50 and income is not null`, d)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`00 eq race #0 ; "white"`,
		`01 in race [#1="black"]`,
		`02 or`,
		`03 range age [30, 50]`,
		`04 not`,
		`05 and`,
		`06 notnull income`,
		`07 and`,
		``,
	}, "\n")
	if got := cp.Disassemble(); got != want {
		t.Fatalf("disassembly:\n%s\nwant:\n%s", got, want)
	}
	if got := cp.CountFast(); got != 1 { // only row 1 (black, 28, 40)
		t.Fatalf("CountFast = %d, want 1", got)
	}
}

// TestNullSemantics pins the documented asymmetry: != and not-in are
// attribute predicates (never match nulls), bare not is boolean negation
// (does match nulls).
func TestNullSemantics(t *testing.T) {
	d := testData(t) // row 4 has null race
	counts := map[string]int{
		`race != 'white'`:       2, // black, asian
		`not race = 'white'`:    3, // black, asian, null
		`race not in ('white')`: 2,
		`not race in ('white')`: 3,
		`age != 34`:             3, // 28, 45, 61 (row 3 is null)
		`not age = 34`:          4,
	}
	for src, want := range counts {
		cp, err := Compile(src, d)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		if got := cp.CountFast(); got != want {
			t.Errorf("count(%q) = %d, want %d", src, got, want)
		}
	}
}

// randomExprData builds a random dataset over the test schema with nulls and
// word-boundary row counts.
func randomExprData(r *rng.RNG) *dataset.Dataset {
	d := dataset.New(testSchema())
	cats := []string{"white", "black", "asian", "x"}
	sexes := []string{"F", "M"}
	nrows := r.Intn(140)
	for i := 0; i < nrows; i++ {
		row := make([]dataset.Value, 4)
		if r.Float64() < 0.2 {
			row[0] = dataset.NullValue(dataset.Categorical)
		} else {
			row[0] = dataset.Cat(cats[r.Intn(len(cats))])
		}
		if r.Float64() < 0.1 {
			row[1] = dataset.NullValue(dataset.Categorical)
		} else {
			row[1] = dataset.Cat(sexes[r.Intn(2)])
		}
		for c := 2; c < 4; c++ {
			if r.Float64() < 0.2 {
				row[c] = dataset.NullValue(dataset.Numeric)
			} else {
				row[c] = dataset.Num(float64(r.Intn(90)))
			}
		}
		d.MustAppendRow(row...)
	}
	return d
}

// randomExprSrc emits a random well-formed expression over the test schema,
// including literals absent from any dictionary.
func randomExprSrc(r *rng.RNG, depth int) string {
	if depth <= 0 || r.Float64() < 0.4 {
		lits := []string{"white", "black", "asian", "x", "absent"}
		catAttr := []string{"race", "sex"}[r.Intn(2)]
		numAttr := []string{"age", "income"}[r.Intn(2)]
		switch r.Intn(8) {
		case 0:
			return fmt.Sprintf("%s = '%s'", catAttr, lits[r.Intn(len(lits))])
		case 1:
			return fmt.Sprintf("%s != '%s'", catAttr, lits[r.Intn(len(lits))])
		case 2:
			neg := ""
			if r.Intn(2) == 0 {
				neg = "not "
			}
			return fmt.Sprintf("%s %sin ('%s', '%s')", catAttr, neg,
				lits[r.Intn(len(lits))], lits[r.Intn(len(lits))])
		case 3:
			lo := r.Intn(100) - 5
			return fmt.Sprintf("%s between %d and %d", numAttr, lo, lo+r.Intn(60)-10)
		case 4:
			op := []string{"<", "<=", ">", ">=", "=", "!="}[r.Intn(6)]
			return fmt.Sprintf("%s %s %d", numAttr, op, r.Intn(90))
		case 5:
			return fmt.Sprintf("%s is null", []string{"race", "sex", "age", "income"}[r.Intn(4)])
		case 6:
			return fmt.Sprintf("%s is not null", []string{"race", "sex", "age", "income"}[r.Intn(4)])
		default:
			return fmt.Sprintf("%s = '%s'", catAttr, lits[r.Intn(len(lits))])
		}
	}
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s and %s)", randomExprSrc(r, depth-1), randomExprSrc(r, depth-1))
	case 1:
		return fmt.Sprintf("(%s or %s)", randomExprSrc(r, depth-1), randomExprSrc(r, depth-1))
	default:
		return fmt.Sprintf("not %s", randomExprSrc(r, depth-1))
	}
}

// TestExprEquivalenceProperty is the end-to-end oracle: random expressions
// compiled through the full pipeline must agree with the lowered predicate's
// interpreted Match on random adversarial datasets.
func TestExprEquivalenceProperty(t *testing.T) {
	r := rng.New(11)
	s := testSchema()
	for round := 0; round < 150; round++ {
		d := randomExprData(r)
		src := randomExprSrc(r, 3)
		p, err := CompilePredicate(src, s)
		if err != nil {
			t.Fatalf("round %d: CompilePredicate(%q): %v", round, src, err)
		}
		cp, err := Compile(src, d)
		if err != nil {
			t.Fatalf("round %d: Compile(%q): %v", round, src, err)
		}
		mask := cp.SelectBitmap()
		for row := 0; row < d.NumRows(); row++ {
			want := p.Match(d, row)
			if got := cp.Match(row); got != want {
				t.Fatalf("round %d row %d: %q VM %v, interpreted %v\nprogram:\n%s",
					round, row, src, got, want, cp.Disassemble())
			}
			if got := mask.Get(row); got != want {
				t.Fatalf("round %d row %d: %q bitmap %v, interpreted %v", round, row, src, got, want)
			}
		}
	}
}

// TestDeterministicAcrossCompiles pins byte-identical selection output from
// repeated independent compiles of the same source.
func TestDeterministicAcrossCompiles(t *testing.T) {
	d := testData(t)
	src := `race in ('white','black') and (age < 50 or income is null)`
	var first string
	for i := 0; i < 5; i++ {
		cp, err := Compile(src, d)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := cp.Select().WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		out := cp.Disassemble() + sb.String()
		if i == 0 {
			first = out
		} else if out != first {
			t.Fatalf("compile %d output differs", i)
		}
	}
}
