package expr

import "redi/internal/dataset"

// lower maps an AST onto dataset predicate IR, checking attribute names and
// kinds against the schema. Negated forms preserve the language's null
// semantics: `!=` and `not in` are attribute predicates and so require the
// cell to be non-null, while the bare `not` operator is plain negation.
func lower(n Node, s *dataset.Schema) (dataset.Predicate, error) {
	switch n := n.(type) {
	case *CmpNode:
		a, err := attrOf(s, n.Attr)
		if err != nil {
			return dataset.Predicate{}, err
		}
		if n.Str != nil {
			if a.Kind != dataset.Categorical {
				return dataset.Predicate{}, errAt(n.Attr.Off,
					"attribute %q is numeric; compare it with a number, not a string", a.Name)
			}
			eq := dataset.Eq(a.Name, n.Str.V)
			if n.Op == "!=" {
				return dataset.And(dataset.NotNull(a.Name), dataset.Not(eq)), nil
			}
			return eq, nil
		}
		if a.Kind != dataset.Numeric {
			return dataset.Predicate{}, errAt(n.Attr.Off,
				"attribute %q is categorical; compare it with a string, not a number", a.Name)
		}
		var op dataset.CompareOp
		switch n.Op {
		case "=":
			op = dataset.CmpEQ
		case "!=":
			op = dataset.CmpNE
		case "<":
			op = dataset.CmpLT
		case "<=":
			op = dataset.CmpLE
		case ">":
			op = dataset.CmpGT
		case ">=":
			op = dataset.CmpGE
		}
		return dataset.Compare(a.Name, op, n.Num.V), nil
	case *InNode:
		a, err := attrOf(s, n.Attr)
		if err != nil {
			return dataset.Predicate{}, err
		}
		if a.Kind != dataset.Categorical {
			return dataset.Predicate{}, errAt(n.Attr.Off,
				"attribute %q is numeric; 'in' lists are for categorical attributes", a.Name)
		}
		vals := make([]string, len(n.Vals))
		for i, v := range n.Vals {
			vals[i] = v.V
		}
		in := dataset.In(a.Name, vals...)
		if n.Neg {
			return dataset.And(dataset.NotNull(a.Name), dataset.Not(in)), nil
		}
		return in, nil
	case *BetweenNode:
		a, err := attrOf(s, n.Attr)
		if err != nil {
			return dataset.Predicate{}, err
		}
		if a.Kind != dataset.Numeric {
			return dataset.Predicate{}, errAt(n.Attr.Off,
				"attribute %q is categorical; 'between' is for numeric attributes", a.Name)
		}
		return dataset.Range(a.Name, n.Lo.V, n.Hi.V), nil
	case *NullNode:
		a, err := attrOf(s, n.Attr)
		if err != nil {
			return dataset.Predicate{}, err
		}
		if n.Not {
			return dataset.NotNull(a.Name), nil
		}
		return dataset.IsNull(a.Name), nil
	case *BinNode:
		l, err := lower(n.L, s)
		if err != nil {
			return dataset.Predicate{}, err
		}
		r, err := lower(n.R, s)
		if err != nil {
			return dataset.Predicate{}, err
		}
		if n.Op == "and" {
			return dataset.And(l, r), nil
		}
		return dataset.Or(l, r), nil
	case *NotNode:
		x, err := lower(n.X, s)
		if err != nil {
			return dataset.Predicate{}, err
		}
		return dataset.Not(x), nil
	default:
		return dataset.Predicate{}, errAt(n.Pos(), "internal: unknown node %T", n)
	}
}

func attrOf(s *dataset.Schema, id Ident) (dataset.Attribute, error) {
	i, ok := s.Index(id.Name)
	if !ok {
		return dataset.Attribute{}, errAt(id.Off, "unknown attribute %q", id.Name)
	}
	return s.Attr(i), nil
}
