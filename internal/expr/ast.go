package expr

import (
	"strconv"
	"strings"
)

// Node is an expression AST node. String renders the canonical s-expression
// form used by the golden parse tests; Pos is the byte offset of the
// node's anchor token.
type Node interface {
	String() string
	Pos() int
}

// Ident is an attribute reference.
type Ident struct {
	Name string
	Off  int
}

// StrVal is a string literal.
type StrVal struct {
	V   string
	Off int
}

// NumVal is a numeric literal.
type NumVal struct {
	V   float64
	Off int
}

func quoteStr(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

func fmtNum(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// CmpNode is attr <op> literal, with Op one of = != < <= > >=. Exactly one
// of Str and Num is set.
type CmpNode struct {
	Attr Ident
	Op   string
	Str  *StrVal
	Num  *NumVal
}

func (n *CmpNode) Pos() int { return n.Attr.Off }
func (n *CmpNode) String() string {
	if n.Str != nil {
		return "(" + n.Op + " " + n.Attr.Name + " " + quoteStr(n.Str.V) + ")"
	}
	return "(" + n.Op + " " + n.Attr.Name + " " + fmtNum(n.Num.V) + ")"
}

// InNode is attr [not] in ('a', 'b', ...).
type InNode struct {
	Attr Ident
	Vals []StrVal
	Neg  bool
}

func (n *InNode) Pos() int { return n.Attr.Off }
func (n *InNode) String() string {
	op := "in"
	if n.Neg {
		op = "notin"
	}
	var sb strings.Builder
	sb.WriteString("(" + op + " " + n.Attr.Name)
	for _, v := range n.Vals {
		sb.WriteString(" " + quoteStr(v.V))
	}
	sb.WriteString(")")
	return sb.String()
}

// BetweenNode is attr between lo and hi (inclusive bounds).
type BetweenNode struct {
	Attr   Ident
	Lo, Hi NumVal
}

func (n *BetweenNode) Pos() int { return n.Attr.Off }
func (n *BetweenNode) String() string {
	return "(between " + n.Attr.Name + " " + fmtNum(n.Lo.V) + " " + fmtNum(n.Hi.V) + ")"
}

// NullNode is attr is [not] null.
type NullNode struct {
	Attr Ident
	Not  bool // true for "is not null"
}

func (n *NullNode) Pos() int { return n.Attr.Off }
func (n *NullNode) String() string {
	if n.Not {
		return "(notnull " + n.Attr.Name + ")"
	}
	return "(isnull " + n.Attr.Name + ")"
}

// BinNode is a conjunction or disjunction; Op is "and" or "or".
type BinNode struct {
	Op   string
	L, R Node
}

func (n *BinNode) Pos() int       { return n.L.Pos() }
func (n *BinNode) String() string { return "(" + n.Op + " " + n.L.String() + " " + n.R.String() + ")" }

// NotNode is boolean negation.
type NotNode struct {
	X   Node
	Off int
}

func (n *NotNode) Pos() int       { return n.Off }
func (n *NotNode) String() string { return "(not " + n.X.String() + ")" }
