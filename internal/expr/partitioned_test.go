package expr

import (
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// TestCompilePartitionedMatchesCompile: the same expression selects the
// identical row set whether compiled against the in-memory dataset or a
// partitioned view of the same rows, at every worker count.
func TestCompilePartitionedMatchesCompile(t *testing.T) {
	d := dataset.New(testSchema())
	r := rng.New(17)
	races := []string{"white", "black", "asian", "other"}
	sexes := []string{"F", "M"}
	for i := 0; i < 700; i++ {
		race := dataset.Cat(races[r.Intn(len(races))])
		if r.Float64() < 0.05 {
			race = dataset.NullValue(dataset.Categorical)
		}
		age := dataset.Num(float64(18 + r.Intn(70)))
		if r.Float64() < 0.05 {
			age = dataset.NullValue(dataset.Numeric)
		}
		d.MustAppendRow(race, dataset.Cat(sexes[r.Intn(2)]),
			age, dataset.Num(r.Normal(50, 20)))
	}
	exprs := []string{
		`race = 'black'`,
		`race = 'missing'`, // absent from every dictionary
		`race in ('white', 'asian') and age >= 40`,
		`age between 30 and 50 or income < 20`,
		`race is null or age is null`,
		`not (race = 'white') and sex = 'F'`,
		`race is not null and income >= 50`,
	}
	for _, partRows := range []int{64, 256} {
		pd := d.Partitions(partRows)
		for _, src := range exprs {
			cp, err := Compile(src, d)
			if err != nil {
				t.Fatalf("Compile(%q): %v", src, err)
			}
			pp, err := CompilePartitioned(src, pd)
			if err != nil {
				t.Fatalf("CompilePartitioned(%q): %v", src, err)
			}
			want := cp.SelectBitmap()
			for _, workers := range []int{1, 2, 8} {
				got := pp.SelectBitmap(workers)
				if len(got) != len(want) {
					t.Fatalf("%q partRows=%d workers=%d: %d words, want %d", src, partRows, workers, len(got), len(want))
				}
				for w := range want {
					if got[w] != want[w] {
						t.Fatalf("%q partRows=%d workers=%d: word %d = %#x, want %#x", src, partRows, workers, w, got[w], want[w])
					}
				}
				if gc, wc := pp.Count(workers), cp.CountFast(); gc != wc {
					t.Fatalf("%q partRows=%d workers=%d: count %d, want %d", src, partRows, workers, gc, wc)
				}
			}
		}
	}
}

// TestCompilePartitionedErrors: scan/parse/lower errors surface identically
// to the in-memory path.
func TestCompilePartitionedErrors(t *testing.T) {
	d := testData(t)
	pd := d.Partitions(64)
	for _, src := range []string{
		`race = `, `nope = 'x'`, `race < 5`, `age = 'str'`,
	} {
		if _, err := CompilePartitioned(src, pd); err == nil {
			t.Fatalf("CompilePartitioned(%q) accepted", src)
		}
	}
}
