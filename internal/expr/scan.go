package expr

import (
	"strconv"
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tAnd
	tOr
	tNot
	tIn
	tBetween
	tIs
	tNull
	tEq     // =
	tNe     // !=
	tLt     // <
	tLe     // <=
	tGt     // >
	tGe     // >=
	tLParen // (
	tRParen // )
	tComma  // ,
)

type token struct {
	kind tokKind
	off  int
	text string  // ident text or operator spelling
	str  string  // decoded string literal
	num  float64 // decoded number
}

// describe renders the token for error messages.
func (t token) describe() string {
	switch t.kind {
	case tEOF:
		return "end of expression"
	case tIdent:
		return "identifier " + strconv.Quote(t.text)
	case tString:
		return "string '" + t.str + "'"
	case tNumber:
		return "number " + strconv.FormatFloat(t.num, 'g', -1, 64)
	default:
		return "'" + t.text + "'"
	}
}

var keywords = map[string]tokKind{
	"and": tAnd, "or": tOr, "not": tNot, "in": tIn,
	"between": tBetween, "is": tIs, "null": tNull,
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// scanAll tokenizes src, decoding string and number literals and folding
// case-insensitive keywords. Every token carries its byte offset.
func scanAll(src string) ([]token, *Error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			if k, ok := keywords[strings.ToLower(word)]; ok {
				toks = append(toks, token{kind: k, off: start, text: strings.ToLower(word)})
			} else {
				toks = append(toks, token{kind: tIdent, off: start, text: word})
			}
		case isDigit(c), c == '-' && i+1 < len(src) && (isDigit(src[i+1]) || src[i+1] == '.'),
			c == '.' && i+1 < len(src) && isDigit(src[i+1]):
			start := i
			if src[i] == '-' {
				i++
			}
			for i < len(src) && (isDigit(src[i]) || src[i] == '.' || src[i] == 'e' || src[i] == 'E') {
				// Exponent sign.
				if (src[i] == 'e' || src[i] == 'E') && i+1 < len(src) && (src[i+1] == '+' || src[i+1] == '-') {
					i++
				}
				i++
			}
			x, err := strconv.ParseFloat(src[start:i], 64)
			if err != nil {
				return nil, errAt(start, "bad number %q", src[start:i])
			}
			toks = append(toks, token{kind: tNumber, off: start, text: src[start:i], num: x})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, errAt(start, "unterminated string")
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' { // '' escapes a quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{kind: tString, off: start, str: sb.String()})
		case c == '=':
			toks = append(toks, token{kind: tEq, off: i, text: "="})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tNe, off: i, text: "!="})
				i += 2
			} else {
				return nil, errAt(i, "unexpected '!' (did you mean '!=')")
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tLe, off: i, text: "<="})
				i += 2
			} else {
				toks = append(toks, token{kind: tLt, off: i, text: "<"})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tGe, off: i, text: ">="})
				i += 2
			} else {
				toks = append(toks, token{kind: tGt, off: i, text: ">"})
				i++
			}
		case c == '(':
			toks = append(toks, token{kind: tLParen, off: i, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tRParen, off: i, text: ")"})
			i++
		case c == ',':
			toks = append(toks, token{kind: tComma, off: i, text: ","})
			i++
		default:
			return nil, errAt(i, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, token{kind: tEOF, off: len(src)})
	return toks, nil
}
