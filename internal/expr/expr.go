// Package expr is REDI's row-predicate expression language: a scanner, a
// Pratt parser, an AST, and a compiler that lowers expressions onto the
// dataset package's predicate bytecode, where evaluation runs over
// dictionary codes and bitmap row-sets (see dataset.CompilePredicate).
//
// Grammar (keywords case-insensitive, attribute names case-sensitive bare
// identifiers; keywords are reserved and cannot name attributes):
//
//	expr        = disjunction .
//	disjunction = conjunction { "or" conjunction } .
//	conjunction = unary { "and" unary } .
//	unary       = "not" unary | "(" expr ")" | predicate .
//	predicate   = attr ( ("=" | "!=") value
//	                   | ("<" | "<=" | ">" | ">=") number
//	                   | ["not"] "in" "(" string { "," string } ")"
//	                   | "between" number "and" number
//	                   | "is" ["not"] "null" ) .
//	value       = string | number .
//	string      = "'" chars "'" .       ('' escapes a quote)
//
// Null semantics: every attribute predicate (=, !=, <, in, between, …)
// matches only non-null rows — `age != 40` and `race not in ('x')` require
// the cell to be present. The bare `not` operator is plain boolean
// negation, so `not (race = 'x')` DOES match rows where race is null;
// use `race is not null and not (...)` to exclude them.
//
// Typing: string literals compare against categorical attributes, numbers
// against numeric ones; a mismatch is a compile error at the attribute's
// position. A string literal absent from a column's dictionary is legal
// and constant-folds to false at compile time (dataset.CompilePredicate).
//
// Compilation and evaluation are pure functions of the expression and the
// dataset: no clocks, no map iteration reaches any output, and the VM has
// no parallel path, so results are bit-identical across runs and worker
// counts (the determinism contract, DESIGN.md).
package expr

import (
	"fmt"

	"redi/internal/dataset"
)

// Error is a scan, parse, or compile error with the byte offset into the
// source it points at.
type Error struct {
	Off int
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("expr: offset %d: %s", e.Off, e.Msg) }

func errAt(off int, format string, args ...any) *Error {
	return &Error{Off: off, Msg: fmt.Sprintf(format, args...)}
}

// Parse scans and parses src into an AST.
func Parse(src string) (Node, error) {
	toks, err := scanAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, perr := p.parseExpr(0)
	if perr != nil {
		return nil, perr
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, errAt(t.off, "unexpected %s after expression", t.describe())
	}
	return n, nil
}

// CompilePredicate parses src and lowers it to a dataset predicate checked
// against the schema (names and kinds). The predicate is dataset-
// independent: it binds to dictionary codes when a selection compiles it
// against a concrete dataset, so one parse can serve many same-schema
// datasets.
func CompilePredicate(src string, s *dataset.Schema) (dataset.Predicate, error) {
	n, err := Parse(src)
	if err != nil {
		return dataset.Predicate{}, err
	}
	return lower(n, s)
}

// Compile parses src, lowers it against d's schema, and compiles it to
// bytecode bound to d's columns — the full scanner → parser → AST →
// compiler → bytecode pipeline in one call.
func Compile(src string, d *dataset.Dataset) (*dataset.CompiledPredicate, error) {
	p, err := CompilePredicate(src, d.Schema())
	if err != nil {
		return nil, err
	}
	cp, _ := dataset.CompilePredicate(d, p) // lowered predicates always compile
	return cp, nil
}

// CompilePartitioned parses src, lowers it against the view's schema, and
// compiles it to bytecode bound to the view's merged global dictionaries —
// the out-of-core counterpart of Compile. The returned predicate replays
// per partition (with present-code pruning) and selects bit-identically to
// Compile over the same rows at any worker count.
func CompilePartitioned(src string, pd *dataset.Partitioned) (*dataset.PartitionedPredicate, error) {
	p, err := CompilePredicate(src, pd.Schema())
	if err != nil {
		return nil, err
	}
	pp, _ := pd.CompilePredicate(p) // lowered predicates always compile
	return pp, nil
}
