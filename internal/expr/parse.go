package expr

// Pratt parser over the token stream. Binding powers: or < and < not;
// comparison predicates are parsed whole inside nud, so they bind tightest.

const (
	bpOr  = 1
	bpAnd = 2
	bpNot = 3
)

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, *Error) {
	t := p.next()
	if t.kind != k {
		return token{}, errAt(t.off, "expected %s, found %s", what, t.describe())
	}
	return t, nil
}

// parseExpr parses an expression whose operators all bind tighter than
// minBP, consuming "and"/"or" chains left-associatively.
func (p *parser) parseExpr(minBP int) (Node, *Error) {
	left, err := p.nud()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var bp int
		var op string
		switch t.kind {
		case tAnd:
			bp, op = bpAnd, "and"
		case tOr:
			bp, op = bpOr, "or"
		default:
			return left, nil
		}
		if bp <= minBP {
			return left, nil
		}
		p.next()
		right, err := p.parseExpr(bp)
		if err != nil {
			return nil, err
		}
		left = &BinNode{Op: op, L: left, R: right}
	}
}

// nud parses a prefix position: not, a parenthesized group, or a predicate.
func (p *parser) nud() (Node, *Error) {
	t := p.next()
	switch t.kind {
	case tNot:
		x, err := p.parseExpr(bpNot)
		if err != nil {
			return nil, err
		}
		return &NotNode{X: x, Off: t.off}, nil
	case tLParen:
		x, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	case tIdent:
		return p.parsePredicate(Ident{Name: t.text, Off: t.off})
	default:
		return nil, errAt(t.off, "expected attribute, 'not', or '(', found %s", t.describe())
	}
}

// parsePredicate parses the clause that follows an attribute name.
func (p *parser) parsePredicate(attr Ident) (Node, *Error) {
	t := p.next()
	switch t.kind {
	case tEq, tNe:
		v := p.next()
		switch v.kind {
		case tString:
			return &CmpNode{Attr: attr, Op: t.text, Str: &StrVal{V: v.str, Off: v.off}}, nil
		case tNumber:
			return &CmpNode{Attr: attr, Op: t.text, Num: &NumVal{V: v.num, Off: v.off}}, nil
		default:
			return nil, errAt(v.off, "expected string or number after '%s', found %s", t.text, v.describe())
		}
	case tLt, tLe, tGt, tGe:
		v, err := p.expect(tNumber, "number")
		if err != nil {
			return nil, err
		}
		return &CmpNode{Attr: attr, Op: t.text, Num: &NumVal{V: v.num, Off: v.off}}, nil
	case tIn:
		return p.parseInList(attr, false)
	case tNot:
		if _, err := p.expect(tIn, "'in' after 'not'"); err != nil {
			return nil, err
		}
		return p.parseInList(attr, true)
	case tBetween:
		lo, err := p.expect(tNumber, "number")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tAnd, "'and'"); err != nil {
			return nil, err
		}
		hi, err := p.expect(tNumber, "number")
		if err != nil {
			return nil, err
		}
		return &BetweenNode{Attr: attr,
			Lo: NumVal{V: lo.num, Off: lo.off},
			Hi: NumVal{V: hi.num, Off: hi.off}}, nil
	case tIs:
		neg := false
		if p.peek().kind == tNot {
			p.next()
			neg = true
		}
		if _, err := p.expect(tNull, "'null'"); err != nil {
			return nil, err
		}
		return &NullNode{Attr: attr, Not: neg}, nil
	default:
		return nil, errAt(t.off, "expected comparison, 'in', 'between', or 'is' after attribute %q, found %s",
			attr.Name, t.describe())
	}
}

func (p *parser) parseInList(attr Ident, neg bool) (Node, *Error) {
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	var vals []StrVal
	for {
		v, err := p.expect(tString, "string")
		if err != nil {
			return nil, err
		}
		vals = append(vals, StrVal{V: v.str, Off: v.off})
		t := p.next()
		if t.kind == tRParen {
			return &InNode{Attr: attr, Vals: vals, Neg: neg}, nil
		}
		if t.kind != tComma {
			return nil, errAt(t.off, "expected ',' or ')', found %s", t.describe())
		}
	}
}
