package synth

import (
	"redi/internal/dataset"
	"redi/internal/rng"
)

// SourceConfig parameterizes a collection of data sources over the same
// schema but with different group distributions — the setting of
// distribution tailoring (paper §4.2): "each data source is collected in
// some manner over some population [and] will have its own distribution".
type SourceConfig struct {
	// Population is the shared data-generating process.
	Population PopulationConfig
	// NumSources is the number of sources to generate.
	NumSources int
	// RowsPerSource is the size of each source.
	RowsPerSource int
	// SkewConcentration controls how much each source's group
	// distribution deviates from the population marginal: group weights
	// are drawn from Dirichlet(alpha * concentration). Small values
	// (e.g. 0.5) give highly skewed sources; large values (e.g. 50)
	// give sources close to the global distribution.
	SkewConcentration float64
	// Costs[i] is the per-sample cost of source i; if nil, all costs
	// are 1.
	Costs []float64
	// HoldoutRows reserves that many reference-population rows, never
	// handed to any source, as an i.i.d. test set from the same
	// data-generating process (SourceSet.Holdout). Default 0.
	HoldoutRows int
}

// SourceSet is a generated collection of sources.
type SourceSet struct {
	Sources []*dataset.Dataset
	Costs   []float64
	// GroupDists[i] is source i's realized group distribution aligned
	// with Groups.
	GroupDists [][]float64
	// Groups lists the intersectional group keys, sorted, aligned with
	// the columns of GroupDists.
	Groups []dataset.GroupKey
	// SensitiveNames lists the sensitive attributes defining the groups.
	SensitiveNames []string
	// Holdout is an i.i.d. sample of the reference population (same
	// hidden label model as every source), disjoint from all source
	// rows. Nil unless HoldoutRows was set.
	Holdout *dataset.Dataset
}

// GenerateSources builds a source collection. Each source draws its own
// group mixture from a Dirichlet centered on the population marginal, then
// samples rows with group-conditional features/labels from the shared
// population process.
func GenerateSources(cfg SourceConfig, r *rng.RNG) *SourceSet {
	if cfg.NumSources <= 0 || cfg.RowsPerSource < 0 {
		panic("synth: GenerateSources requires NumSources > 0 and RowsPerSource >= 0")
	}
	if cfg.SkewConcentration <= 0 {
		cfg.SkewConcentration = 1
	}

	// A big reference population provides group-conditional row pools:
	// we generate one large population and partition rows by group, then
	// each source samples group indices from its own mixture and rows
	// from the pools (with replacement).
	popRows := cfg.NumSources*cfg.RowsPerSource*2 + cfg.HoldoutRows + 1000
	pop := Generate(PopulationConfig{
		Rows:        popRows,
		Sensitive:   cfg.Population.Sensitive,
		Features:    cfg.Population.Features,
		GroupEffect: cfg.Population.GroupEffect,
		LabelNoise:  cfg.Population.LabelNoise,
	}, r.Split())

	// Rows are generated i.i.d., so a prefix is an unbiased holdout.
	var holdoutIdx []int
	sourceData := pop.Data
	if cfg.HoldoutRows > 0 {
		holdoutIdx = make([]int, cfg.HoldoutRows)
		srcIdx := make([]int, 0, popRows-cfg.HoldoutRows)
		for i := 0; i < popRows; i++ {
			if i < cfg.HoldoutRows {
				holdoutIdx[i] = i
			} else {
				srcIdx = append(srcIdx, i)
			}
		}
		sourceData = pop.Data.Gather(srcIdx)
	}

	groups := sourceData.GroupBy(pop.SensitiveNames...)
	set := &SourceSet{
		Groups:         groups.Keys(),
		SensitiveNames: pop.SensitiveNames,
		Costs:          make([]float64, cfg.NumSources),
	}
	marginal := groups.Distribution()

	alpha := make([]float64, len(marginal))
	for i, m := range marginal {
		// Keep every group reachable even if it is absent from the
		// realized reference marginal.
		alpha[i] = (m + 1e-3) * cfg.SkewConcentration
	}

	for s := 0; s < cfg.NumSources; s++ {
		mix := r.Dirichlet(alpha)
		cat := rng.NewCategorical(mix)
		src := dataset.New(sourceData.Schema())
		realized := make([]float64, groups.NumGroups())
		for i := 0; i < cfg.RowsPerSource; i++ {
			g := cat.Draw(r)
			rows := groups.Rows(g)
			if len(rows) == 0 {
				// Extremely rare: the group never appeared in the
				// reference population. Redraw.
				i--
				continue
			}
			src.MustAppendRow(sourceData.Row(rows[r.Intn(len(rows))])...)
			realized[g]++
		}
		if cfg.RowsPerSource > 0 {
			for i := range realized {
				realized[i] /= float64(cfg.RowsPerSource)
			}
		}
		set.Sources = append(set.Sources, src)
		set.GroupDists = append(set.GroupDists, realized)
		if cfg.Costs != nil {
			set.Costs[s] = cfg.Costs[s]
		} else {
			set.Costs[s] = 1
		}
	}
	if cfg.HoldoutRows > 0 {
		set.Holdout = pop.Data.Gather(holdoutIdx)
	}
	return set
}
