// Package synth generates the synthetic data that stands in for the data
// sources REDI's experiments cannot ship: skewed health-record style
// populations with sensitive attributes, multi-source collections with
// per-source group skew, missing-value injection under MCAR/MAR/MNAR, error
// injection, and table corpora with controlled overlap for dataset
// discovery. See DESIGN.md ("Substitutions") for how each generator maps to
// the data used by the papers the tutorial surveys.
package synth

import (
	"fmt"
	"math"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// SensitiveAttr describes one sensitive attribute of a synthetic
// population: its name, domain, and marginal distribution.
type SensitiveAttr struct {
	Name    string
	Values  []string
	Weights []float64 // unnormalized; len must equal len(Values)
}

// PopulationConfig parameterizes a synthetic population. The generated
// schema is: id (ID), one categorical column per sensitive attribute
// (Sensitive), Features numeric columns f0..f{m-1} (Feature), and a binary
// categorical label column "label" with values "pos"/"neg" (Target).
//
// The data-generating process makes group membership matter: each
// intersectional group gets a mean shift on every feature drawn from
// N(0, GroupEffect²), and the label is a logistic function of the features
// plus a per-group intercept. Models trained on data that under-represents
// a group therefore lose accuracy on that group — the phenomenon Example 1
// of the paper is about.
type PopulationConfig struct {
	Rows        int
	Sensitive   []SensitiveAttr
	Features    int
	GroupEffect float64 // stddev of per-group feature mean shifts
	LabelNoise  float64 // probability of flipping each label
}

// DefaultPopulation returns the configuration used throughout the examples:
// a two-attribute population (race with a skewed 4-value marginal, sex
// balanced), 4 features, and a moderate group effect.
func DefaultPopulation(rows int) PopulationConfig {
	return PopulationConfig{
		Rows: rows,
		Sensitive: []SensitiveAttr{
			{Name: "race", Values: []string{"white", "black", "hispanic", "asian"}, Weights: []float64{0.64, 0.18, 0.12, 0.06}},
			{Name: "sex", Values: []string{"F", "M"}, Weights: []float64{0.5, 0.5}},
		},
		Features:    4,
		GroupEffect: 1.0,
		LabelNoise:  0.05,
	}
}

// Population holds a generated dataset together with the hidden parameters
// of its data-generating process, so experiments can compare estimates
// against ground truth.
type Population struct {
	Data *dataset.Dataset
	// GroupMeans maps each intersectional group to its feature mean
	// vector.
	GroupMeans map[dataset.GroupKey][]float64
	// GroupBias maps each intersectional group to its label intercept.
	GroupBias map[dataset.GroupKey]float64
	// FeatureWeights are the logistic coefficients of the label model.
	FeatureWeights []float64
	// SensitiveNames lists the sensitive attribute names in schema order.
	SensitiveNames []string
}

// Generate samples a population. Generation is deterministic in r.
func Generate(cfg PopulationConfig, r *rng.RNG) *Population {
	if cfg.Rows < 0 {
		panic("synth: negative row count")
	}
	if len(cfg.Sensitive) == 0 {
		panic("synth: population needs at least one sensitive attribute")
	}

	attrs := []dataset.Attribute{{Name: "id", Kind: dataset.Categorical, Role: dataset.ID}}
	var sensNames []string
	for _, s := range cfg.Sensitive {
		attrs = append(attrs, dataset.Attribute{Name: s.Name, Kind: dataset.Categorical, Role: dataset.Sensitive})
		sensNames = append(sensNames, s.Name)
	}
	for f := 0; f < cfg.Features; f++ {
		attrs = append(attrs, dataset.Attribute{Name: featureName(f), Kind: dataset.Numeric, Role: dataset.Feature})
	}
	attrs = append(attrs, dataset.Attribute{Name: "label", Kind: dataset.Categorical, Role: dataset.Target})
	d := dataset.New(dataset.NewSchema(attrs...))

	samplers := make([]*rng.Categorical, len(cfg.Sensitive))
	for i, s := range cfg.Sensitive {
		samplers[i] = rng.NewCategorical(s.Weights)
	}

	p := &Population{
		Data:           d,
		GroupMeans:     map[dataset.GroupKey][]float64{},
		GroupBias:      map[dataset.GroupKey]float64{},
		FeatureWeights: make([]float64, cfg.Features),
		SensitiveNames: sensNames,
	}
	// Hidden label model. A dedicated child generator keeps the model
	// parameters stable regardless of Rows.
	mr := r.Split()
	for f := range p.FeatureWeights {
		p.FeatureWeights[f] = mr.Normal(0, 1)
	}
	// Enumerate all intersectional groups and fix their parameters.
	var assign func(i int, vals []string)
	assign = func(i int, vals []string) {
		if i == len(cfg.Sensitive) {
			k := dataset.MakeGroupKey(sensNames, vals)
			means := make([]float64, cfg.Features)
			for f := range means {
				means[f] = mr.Normal(0, cfg.GroupEffect)
			}
			p.GroupMeans[k] = means
			p.GroupBias[k] = mr.Normal(0, cfg.GroupEffect)
			return
		}
		for _, v := range cfg.Sensitive[i].Values {
			assign(i+1, append(vals, v))
		}
	}
	assign(0, nil)

	vals := make([]string, len(cfg.Sensitive))
	row := make([]dataset.Value, len(attrs))
	for i := 0; i < cfg.Rows; i++ {
		row[0] = dataset.Cat(fmt.Sprintf("p%06d", i))
		for j, s := range samplers {
			vals[j] = cfg.Sensitive[j].Values[s.Draw(r)]
			row[1+j] = dataset.Cat(vals[j])
		}
		k := dataset.MakeGroupKey(sensNames, vals)
		means := p.GroupMeans[k]
		z := p.GroupBias[k]
		for f := 0; f < cfg.Features; f++ {
			x := r.Normal(means[f], 1)
			row[1+len(samplers)+f] = dataset.Num(x)
			z += p.FeatureWeights[f] * x
		}
		label := sigmoid(z) > 0.5
		if r.Bool(cfg.LabelNoise) {
			label = !label
		}
		if label {
			row[len(row)-1] = dataset.Cat("pos")
		} else {
			row[len(row)-1] = dataset.Cat("neg")
		}
		d.MustAppendRow(row...)
	}
	return p
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func featureName(i int) string { return fmt.Sprintf("f%d", i) }

// FeatureNames returns the feature column names of a population generated
// with n features.
func FeatureNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = featureName(i)
	}
	return out
}

// SkewedWeights returns a k-group weight vector where the last group holds
// fraction minority of the mass and the remaining mass is split evenly. It
// is the canonical majority/minority skew used by the experiments. It panics
// unless k >= 2 and 0 < minority < 1.
func SkewedWeights(k int, minority float64) []float64 {
	if k < 2 || minority <= 0 || minority >= 1 {
		panic("synth: SkewedWeights requires k >= 2 and 0 < minority < 1")
	}
	w := make([]float64, k)
	for i := 0; i < k-1; i++ {
		w[i] = (1 - minority) / float64(k-1)
	}
	w[k-1] = minority
	return w
}
