package synth

import (
	"math"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
	"redi/internal/stats"
)

func TestGenerateShape(t *testing.T) {
	p := Generate(DefaultPopulation(500), rng.New(1))
	d := p.Data
	if d.NumRows() != 500 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	// id + race + sex + 4 features + label = 8 columns.
	if d.NumCols() != 8 {
		t.Fatalf("cols = %d", d.NumCols())
	}
	if got := d.Schema().ByRole(dataset.Sensitive); len(got) != 2 {
		t.Fatalf("sensitive attrs = %v", got)
	}
	if got := d.Schema().ByRole(dataset.Target); len(got) != 1 || got[0] != "label" {
		t.Fatalf("target attrs = %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultPopulation(100), rng.New(7)).Data
	b := Generate(DefaultPopulation(100), rng.New(7)).Data
	for r := 0; r < 100; r++ {
		for c := 0; c < a.NumCols(); c++ {
			if !a.ValueAt(r, c).Equal(b.ValueAt(r, c)) {
				t.Fatalf("row %d col %d differs", r, c)
			}
		}
	}
}

func TestGenerateMarginals(t *testing.T) {
	cfg := DefaultPopulation(20000)
	p := Generate(cfg, rng.New(3))
	g := p.Data.GroupBy("race")
	dist := g.Distribution()
	// race marginal should approximate the configured weights.
	want := map[dataset.GroupKey]float64{
		"race=white": 0.64, "race=black": 0.18, "race=hispanic": 0.12, "race=asian": 0.06,
	}
	for i, k := range g.Keys() {
		if math.Abs(dist[i]-want[k]) > 0.02 {
			t.Fatalf("marginal %s = %v, want %v", k, dist[i], want[k])
		}
	}
}

func TestGroupEffectSeparatesGroups(t *testing.T) {
	cfg := DefaultPopulation(5000)
	cfg.GroupEffect = 3
	p := Generate(cfg, rng.New(5))
	// Feature means per group should differ noticeably from each other.
	g := p.Data.GroupBy(p.SensitiveNames...)
	var means []float64
	for gid := 0; gid < g.NumGroups(); gid++ {
		sub := p.Data.Gather(g.Rows(gid))
		vals, _ := sub.Numeric("f0")
		if len(vals) == 0 {
			continue
		}
		means = append(means, stats.Mean(vals))
	}
	min, max := stats.MinMax(means)
	if max-min < 1 {
		t.Fatalf("group means too close: spread %v", max-min)
	}
}

func TestGenerateLabelsBothClasses(t *testing.T) {
	p := Generate(DefaultPopulation(1000), rng.New(9))
	pos := p.Data.Count(dataset.Eq("label", "pos"))
	if pos == 0 || pos == 1000 {
		t.Fatalf("degenerate label distribution: %d/1000 positive", pos)
	}
}

func TestSkewedWeights(t *testing.T) {
	w := SkewedWeights(5, 0.05)
	if len(w) != 5 || math.Abs(w[4]-0.05) > 1e-12 {
		t.Fatalf("SkewedWeights = %v", w)
	}
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum = %v", sum)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SkewedWeights(1, .5) did not panic")
		}
	}()
	SkewedWeights(1, 0.5)
}

func TestGenerateSources(t *testing.T) {
	cfg := SourceConfig{
		Population:        DefaultPopulation(0),
		NumSources:        4,
		RowsPerSource:     300,
		SkewConcentration: 1,
	}
	set := GenerateSources(cfg, rng.New(11))
	if len(set.Sources) != 4 {
		t.Fatalf("sources = %d", len(set.Sources))
	}
	for i, s := range set.Sources {
		if s.NumRows() != 300 {
			t.Fatalf("source %d rows = %d", i, s.NumRows())
		}
		sum := 0.0
		for _, p := range set.GroupDists[i] {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("source %d dist sum = %v", i, sum)
		}
		if set.Costs[i] != 1 {
			t.Fatalf("default cost = %v", set.Costs[i])
		}
	}
	// With low concentration, sources should differ from each other.
	tv := stats.TotalVariation(set.GroupDists[0], set.GroupDists[1])
	if tv < 0.01 {
		t.Fatalf("sources suspiciously similar: TV = %v", tv)
	}
}

func TestGenerateSourcesHoldout(t *testing.T) {
	cfg := SourceConfig{
		Population:        DefaultPopulation(0),
		NumSources:        3,
		RowsPerSource:     400,
		SkewConcentration: 2,
		HoldoutRows:       800,
	}
	set := GenerateSources(cfg, rng.New(41))
	if set.Holdout == nil || set.Holdout.NumRows() != 800 {
		t.Fatalf("holdout = %v", set.Holdout)
	}
	// Holdout ids must be disjoint from every source's ids.
	held := map[string]bool{}
	for r := 0; r < set.Holdout.NumRows(); r++ {
		held[set.Holdout.Value(r, "id").Cat] = true
	}
	for si, s := range set.Sources {
		for r := 0; r < s.NumRows(); r++ {
			if held[s.Value(r, "id").Cat] {
				t.Fatalf("source %d shares row %s with the holdout", si, s.Value(r, "id").Cat)
			}
		}
	}
	// No holdout requested -> nil.
	cfg.HoldoutRows = 0
	if set := GenerateSources(cfg, rng.New(42)); set.Holdout != nil {
		t.Fatal("unexpected holdout")
	}
}

func TestGenerateSourcesCustomCosts(t *testing.T) {
	cfg := SourceConfig{
		Population:    DefaultPopulation(0),
		NumSources:    2,
		RowsPerSource: 50,
		Costs:         []float64{2, 5},
	}
	set := GenerateSources(cfg, rng.New(13))
	if set.Costs[0] != 2 || set.Costs[1] != 5 {
		t.Fatalf("costs = %v", set.Costs)
	}
}

func TestInjectMissingMCAR(t *testing.T) {
	p := Generate(DefaultPopulation(5000), rng.New(17))
	out := InjectMissing(p.Data, MissingConfig{Attr: "f0", Rate: 0.2, Mech: MCAR}, rng.New(18))
	miss := 0
	for r := 0; r < out.NumRows(); r++ {
		if out.IsNull(r, "f0") {
			miss++
		}
	}
	rate := float64(miss) / float64(out.NumRows())
	if math.Abs(rate-0.2) > 0.03 {
		t.Fatalf("MCAR rate = %v, want ~0.2", rate)
	}
	// Original untouched.
	if p.Data.IsNull(0, "f0") && p.Data.IsNull(1, "f0") && p.Data.IsNull(2, "f0") {
		t.Fatal("InjectMissing mutated its input")
	}
}

func TestInjectMissingMARSkew(t *testing.T) {
	p := Generate(DefaultPopulation(8000), rng.New(19))
	cfg := MissingConfig{Attr: "f0", Rate: 0.2, Mech: MAR, CondAttr: "race", CondValue: "black"}
	out := InjectMissing(p.Data, cfg, rng.New(20))
	missBlack, nBlack, missOther, nOther := 0, 0, 0, 0
	for r := 0; r < out.NumRows(); r++ {
		isBlack := out.Value(r, "race").Cat == "black"
		isMiss := out.IsNull(r, "f0")
		if isBlack {
			nBlack++
			if isMiss {
				missBlack++
			}
		} else {
			nOther++
			if isMiss {
				missOther++
			}
		}
	}
	rb := float64(missBlack) / float64(nBlack)
	ro := float64(missOther) / float64(nOther)
	if rb < 2*ro {
		t.Fatalf("MAR missingness not skewed: black=%v other=%v", rb, ro)
	}
}

func TestInjectMissingMNARSkew(t *testing.T) {
	p := Generate(DefaultPopulation(8000), rng.New(21))
	vals, _ := p.Data.Numeric("f0")
	med := stats.Median(vals)
	out := InjectMissing(p.Data, MissingConfig{Attr: "f0", Rate: 0.2, Mech: MNAR}, rng.New(22))
	// Missing cells should disproportionately be those whose (original)
	// value exceeded the median.
	origVals, origNulls := p.Data.NumericFull("f0")
	missHigh, missLow := 0, 0
	for r := 0; r < out.NumRows(); r++ {
		if !origNulls[r] && out.IsNull(r, "f0") {
			if origVals[r] > med {
				missHigh++
			} else {
				missLow++
			}
		}
	}
	if missHigh < 2*missLow {
		t.Fatalf("MNAR not value-dependent: high=%d low=%d", missHigh, missLow)
	}
}

func TestInjectOutliers(t *testing.T) {
	p := Generate(DefaultPopulation(2000), rng.New(23))
	out, corrupted := InjectOutliers(p.Data, "f1", 0.05, 8, rng.New(24))
	if len(corrupted) == 0 {
		t.Fatal("no outliers injected")
	}
	for _, row := range corrupted {
		orig := p.Data.Value(row, "f1").Num
		got := out.Value(row, "f1").Num
		if math.Abs(got-orig) < 3 {
			t.Fatalf("outlier at row %d barely moved: %v -> %v", row, orig, got)
		}
	}
}

func TestInjectTypos(t *testing.T) {
	p := Generate(DefaultPopulation(2000), rng.New(25))
	out, corrupted := InjectTypos(p.Data, "id", 0.1, rng.New(26))
	if len(corrupted) < 100 {
		t.Fatalf("too few typos: %d", len(corrupted))
	}
	changed := 0
	for _, row := range corrupted {
		if out.Value(row, "id").Cat != p.Data.Value(row, "id").Cat {
			changed++
		}
	}
	// A substitution can occasionally reproduce the original character;
	// nearly all corruptions must actually change the string.
	if float64(changed) < 0.9*float64(len(corrupted)) {
		t.Fatalf("only %d/%d typos changed the value", changed, len(corrupted))
	}
}

func TestGenerateCorpus(t *testing.T) {
	c := GenerateCorpus(CorpusConfig{NumTables: 5, RowsPerTable: 100, KeyUniverse: 1000, QueryKeys: 100}, rng.New(27))
	if c.Query.NumRows() != 100 {
		t.Fatalf("query rows = %d", c.Query.NumRows())
	}
	if len(c.Tables) != 5 {
		t.Fatalf("tables = %d", len(c.Tables))
	}
	// Containment sweeps from 0 to 1.
	if c.Tables[0].Containment != 0 {
		t.Fatalf("first containment = %v", c.Tables[0].Containment)
	}
	if c.Tables[4].Containment != 1 {
		t.Fatalf("last containment = %v", c.Tables[4].Containment)
	}
	// Verify ground truth by brute force on table 2.
	qKeys := map[string]bool{}
	for r := 0; r < c.Query.NumRows(); r++ {
		qKeys[c.Query.Value(r, "key").Cat] = true
	}
	tbl := c.Tables[2]
	got := 0
	seen := map[string]bool{}
	for r := 0; r < tbl.Data.NumRows(); r++ {
		k := tbl.Data.Value(r, "key").Cat
		if qKeys[k] && !seen[k] {
			seen[k] = true
			got++
		}
	}
	if got != tbl.Overlap {
		t.Fatalf("table 2 overlap = %d, claimed %d", got, tbl.Overlap)
	}
}
