package synth

import (
	"fmt"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// CorpusConfig parameterizes a synthetic table corpus for dataset-discovery
// experiments. The corpus consists of a query table plus NumTables
// candidate tables whose join columns overlap the query's key domain by a
// controlled amount, so containment/Jaccard ground truth is known exactly.
type CorpusConfig struct {
	NumTables    int
	RowsPerTable int
	// KeyUniverse is the size of the global key domain.
	KeyUniverse int
	// QueryKeys is the number of distinct keys in the query table.
	QueryKeys int
}

// CorpusTable is one candidate table plus its ground-truth overlap with the
// query table.
type CorpusTable struct {
	Name        string
	Data        *dataset.Dataset
	Overlap     int     // distinct keys shared with the query table
	Jaccard     float64 // |Q ∩ T| / |Q ∪ T| on the key columns
	Containment float64 // |Q ∩ T| / |Q| — the joinability measure
}

// Corpus holds a query table and its candidates.
type Corpus struct {
	Query  *dataset.Dataset
	Tables []CorpusTable
}

// GenerateCorpus builds the corpus. Candidate i's key set overlaps the
// query's keys by roughly i/(NumTables-1) of the query's key count, sweeping
// containment from ~0 to ~1 across the corpus. Each table also carries a
// numeric "val" column correlated with the key rank so that join-correlation
// experiments have signal, plus per-table noise.
func GenerateCorpus(cfg CorpusConfig, r *rng.RNG) *Corpus {
	if cfg.QueryKeys > cfg.KeyUniverse {
		panic("synth: QueryKeys exceeds KeyUniverse")
	}
	if cfg.NumTables < 1 {
		panic("synth: corpus needs at least one table")
	}

	universe := r.Perm(cfg.KeyUniverse)
	queryKeys := universe[:cfg.QueryKeys]
	nonQuery := universe[cfg.QueryKeys:]

	schema := dataset.NewSchema(
		dataset.Attribute{Name: "key", Kind: dataset.Categorical, Role: dataset.ID},
		dataset.Attribute{Name: "val", Kind: dataset.Numeric, Role: dataset.Feature},
	)
	keyName := func(k int) string { return fmt.Sprintf("k%05d", k) }

	query := dataset.New(schema)
	for _, k := range queryKeys {
		query.MustAppendRow(dataset.Cat(keyName(k)), dataset.Num(float64(k)+r.Normal(0, 1)))
	}

	c := &Corpus{Query: query}
	for t := 0; t < cfg.NumTables; t++ {
		frac := 0.0
		if cfg.NumTables > 1 {
			frac = float64(t) / float64(cfg.NumTables-1)
		}
		overlap := int(frac * float64(cfg.QueryKeys))
		fresh := cfg.RowsPerTable - overlap
		if fresh < 0 {
			fresh = 0
		}
		var keys []int
		perm := r.Perm(cfg.QueryKeys)
		for i := 0; i < overlap; i++ {
			keys = append(keys, queryKeys[perm[i]])
		}
		if len(nonQuery) > 0 {
			permN := r.Perm(len(nonQuery))
			for i := 0; i < fresh && i < len(nonQuery); i++ {
				keys = append(keys, nonQuery[permN[i]])
			}
		}
		tbl := dataset.New(schema)
		for _, k := range keys {
			tbl.MustAppendRow(dataset.Cat(keyName(k)), dataset.Num(float64(k)+r.Normal(0, 1)))
		}
		union := cfg.QueryKeys + len(keys) - overlap
		ct := CorpusTable{
			Name:        fmt.Sprintf("table%03d", t),
			Data:        tbl,
			Overlap:     overlap,
			Containment: float64(overlap) / float64(cfg.QueryKeys),
		}
		if union > 0 {
			ct.Jaccard = float64(overlap) / float64(union)
		}
		c.Tables = append(c.Tables, ct)
	}
	return c
}
