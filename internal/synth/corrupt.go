package synth

import (
	"math"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// Mechanism is a missing-data mechanism, the standard taxonomy used when
// auditing imputation fairness (Zhang & Long, NeurIPS'21).
type Mechanism int

const (
	// MCAR: missing completely at random — every cell is erased with
	// equal probability.
	MCAR Mechanism = iota
	// MAR: missing at random — the erasure probability depends on an
	// observed conditioning attribute (here: the row's group), so
	// missingness correlates with group membership but not with the
	// erased value itself.
	MAR
	// MNAR: missing not at random — the erasure probability depends on
	// the value being erased (here: larger values are more likely to go
	// missing).
	MNAR
)

// String returns the mechanism's conventional acronym.
func (m Mechanism) String() string {
	switch m {
	case MCAR:
		return "MCAR"
	case MAR:
		return "MAR"
	case MNAR:
		return "MNAR"
	default:
		return "Mechanism(?)"
	}
}

// MissingConfig parameterizes missing-value injection on one numeric
// attribute.
type MissingConfig struct {
	Attr string
	Rate float64 // overall target missing rate in (0, 1)
	Mech Mechanism
	// CondAttr is the categorical conditioning attribute for MAR; rows
	// whose CondAttr equals CondValue get boosted missingness
	// (3x the base rate), others get reduced missingness.
	CondAttr  string
	CondValue string
}

// InjectMissing returns a copy of d with nulls injected into cfg.Attr
// according to the mechanism. For MNAR, cells above the attribute's median
// are erased at 3x the rate of cells below it. The overall expected missing
// rate is cfg.Rate under every mechanism.
func InjectMissing(d *dataset.Dataset, cfg MissingConfig, r *rng.RNG) *dataset.Dataset {
	out := d.Clone()
	vals, nulls := d.NumericFull(cfg.Attr)

	// Split the rate so that E[missing] = Rate with the 3:1 odds split
	// used by MAR and MNAR. With fraction fHigh of rows in the boosted
	// class: 3p*fHigh + p*(1-fHigh) = Rate.
	erase := func(row int, boosted func(int) bool, fHigh float64) {
		p := cfg.Rate / (1 + 2*fHigh)
		prob := p
		if boosted(row) {
			prob = 3 * p
		}
		if prob > 1 {
			prob = 1
		}
		if r.Bool(prob) {
			if err := out.SetValue(row, cfg.Attr, dataset.NullValue(dataset.Numeric)); err != nil {
				panic(err)
			}
		}
	}

	switch cfg.Mech {
	case MCAR:
		for row := range vals {
			if nulls[row] {
				continue
			}
			if r.Bool(cfg.Rate) {
				if err := out.SetValue(row, cfg.Attr, dataset.NullValue(dataset.Numeric)); err != nil {
					panic(err)
				}
			}
		}
	case MAR:
		match := 0
		for row := 0; row < d.NumRows(); row++ {
			v := d.Value(row, cfg.CondAttr)
			if !v.Null && v.Cat == cfg.CondValue {
				match++
			}
		}
		fHigh := float64(match) / float64(max(1, d.NumRows()))
		boosted := func(row int) bool {
			v := d.Value(row, cfg.CondAttr)
			return !v.Null && v.Cat == cfg.CondValue
		}
		for row := range vals {
			if !nulls[row] {
				erase(row, boosted, fHigh)
			}
		}
	case MNAR:
		present := make([]float64, 0, len(vals))
		for row, v := range vals {
			if !nulls[row] {
				present = append(present, v)
			}
		}
		med := median(present)
		boosted := func(row int) bool { return vals[row] > med }
		for row := range vals {
			if !nulls[row] {
				erase(row, boosted, 0.5)
			}
		}
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	// Simple selection by sorting; inputs here are small-to-medium.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	return tmp[len(tmp)/2]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// InjectOutliers returns a copy of d where a fraction rate of the non-null
// cells of the numeric attribute are replaced by extreme values (the cell
// value shifted by scale standard deviations). The returned row indices
// identify the corrupted cells, serving as ground truth for error-detection
// experiments.
func InjectOutliers(d *dataset.Dataset, attr string, rate, scale float64, r *rng.RNG) (*dataset.Dataset, []int) {
	out := d.Clone()
	vals, rows := d.Numeric(attr)
	sd := stddev(vals)
	if sd == 0 {
		sd = 1
	}
	var corrupted []int
	for i, row := range rows {
		if r.Bool(rate) {
			sign := 1.0
			if r.Bool(0.5) {
				sign = -1
			}
			if err := out.SetValue(row, attr, dataset.Num(vals[i]+sign*scale*sd)); err != nil {
				panic(err)
			}
			corrupted = append(corrupted, row)
		}
	}
	return out, corrupted
}

func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	v /= float64(len(xs))
	return math.Sqrt(v)
}

// InjectTypos returns a copy of d where a fraction rate of the non-null
// cells of the categorical attribute are perturbed by a single-character
// edit, emulating entry errors for entity-resolution experiments. The
// returned row indices are the corrupted cells.
func InjectTypos(d *dataset.Dataset, attr string, rate float64, r *rng.RNG) (*dataset.Dataset, []int) {
	out := d.Clone()
	var corrupted []int
	for row := 0; row < d.NumRows(); row++ {
		v := d.Value(row, attr)
		if v.Null || v.Cat == "" || !r.Bool(rate) {
			continue
		}
		s := []byte(v.Cat)
		pos := r.Intn(len(s))
		switch r.Intn(3) {
		case 0: // substitute
			s[pos] = byte('a' + r.Intn(26))
		case 1: // delete
			s = append(s[:pos], s[pos+1:]...)
		default: // insert
			c := byte('a' + r.Intn(26))
			s = append(s[:pos], append([]byte{c}, s[pos:]...)...)
		}
		if err := out.SetValue(row, attr, dataset.Cat(string(s))); err != nil {
			panic(err)
		}
		corrupted = append(corrupted, row)
	}
	return out, corrupted
}
