package rng

// Categorical samples indices from a fixed discrete distribution in O(1)
// time per draw using Vose's alias method. It is the workhorse behind the
// synthetic source generators: each data source's group distribution is one
// Categorical.
type Categorical struct {
	prob  []float64
	alias []int
	p     []float64 // normalized input probabilities, for inspection
}

// NewCategorical builds an alias table for the given non-negative weights.
// Weights need not sum to one; they are normalized. It panics if weights is
// empty, contains a negative entry, or sums to zero.
func NewCategorical(weights []float64) *Categorical {
	n := len(weights)
	if n == 0 {
		panic("rng: NewCategorical requires at least one weight")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: NewCategorical weight is negative")
		}
		sum += w
	}
	if sum == 0 {
		panic("rng: NewCategorical weights sum to zero")
	}

	c := &Categorical{
		prob:  make([]float64, n),
		alias: make([]int, n),
		p:     make([]float64, n),
	}
	// Scaled probabilities: mean 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		c.p[i] = w / sum
		scaled[i] = c.p[i] * float64(n)
	}

	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]

		c.prob[l] = scaled[l]
		c.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		c.prob[g] = 1
	}
	for _, l := range small {
		// Only reachable through floating-point round-off.
		c.prob[l] = 1
	}
	return c
}

// Draw returns an index distributed according to the table's weights.
func (c *Categorical) Draw(r *RNG) int {
	i := r.Intn(len(c.prob))
	if r.Float64() < c.prob[i] {
		return i
	}
	return c.alias[i]
}

// K returns the number of categories.
func (c *Categorical) K() int { return len(c.prob) }

// P returns the normalized probability of category i.
func (c *Categorical) P(i int) float64 { return c.p[i] }

// Probs returns a copy of the normalized probability vector.
func (c *Categorical) Probs() []float64 {
	out := make([]float64, len(c.p))
	copy(out, c.p)
	return out
}
