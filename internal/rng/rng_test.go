package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values out of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical streams")
	}
}

func TestShardSplitReproducible(t *testing.T) {
	for shard := 0; shard < 8; shard++ {
		a, b := Split(42, shard), Split(42, shard)
		for i := 0; i < 100; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("shard %d: identical (seed, shard) diverged at step %d", shard, i)
			}
		}
	}
}

func TestShardSplitDecorrelated(t *testing.T) {
	const shards, steps = 64, 64
	// No two shards of the same seed may collide anywhere in their first
	// `steps` outputs, and no shard may alias the unsharded stream.
	seen := map[uint64]int{}
	base := New(9)
	for i := 0; i < steps; i++ {
		seen[base.Uint64()] = -1
	}
	for s := 0; s < shards; s++ {
		r := Split(9, s)
		for i := 0; i < steps; i++ {
			v := r.Uint64()
			if prev, ok := seen[v]; ok {
				t.Fatalf("shard %d output collides with shard %d", s, prev)
			}
			seen[v] = s
		}
	}
	// Adjacent shards must not produce correlated uniforms: the sample
	// correlation of their Float64 streams should be near zero.
	a, b := Split(9, 0), Split(9, 1)
	const n = 4096
	var sa, sb, saa, sbb, sab float64
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	if corr := cov / math.Sqrt(va*vb); math.Abs(corr) > 0.08 {
		t.Fatalf("adjacent shard streams correlate: r = %v", corr)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const k, n = 10, 100000
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[r.Intn(k)]++
	}
	want := float64(n) / k
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(4)
	for _, n := range []int{0, 1, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("Normal variance = %v, want ~4", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean = %v, want ~0.5", mean)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(17)
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 1}, {2, 3}, {9, 0.5}} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(tc.shape, tc.scale)
		}
		want := tc.shape * tc.scale
		if mean := sum / n; math.Abs(mean-want) > 0.05*want+0.02 {
			t.Fatalf("Gamma(%v,%v) mean = %v, want ~%v", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestDirichletSimplex(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		v := r.Dirichlet([]float64{0.5, 1, 2, 4})
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				t.Fatalf("Dirichlet produced negative coordinate %v", v)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sum = %v, want 1", sum)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 1.5, 1, 999)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Uint64()]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[4] {
		t.Fatalf("Zipf counts not decreasing: c0=%d c1=%d c4=%d", counts[0], counts[1], counts[4])
	}
	// P(0)/P(1) should be about 2^1.5 ≈ 2.83 for v=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.2 || ratio > 3.6 {
		t.Fatalf("Zipf head ratio = %v, want ~2.83", ratio)
	}
}

func TestZipfWeightsNormalized(t *testing.T) {
	w := ZipfWeights(10, 2)
	sum := 0.0
	for i, x := range w {
		if i > 0 && x >= w[i-1] {
			t.Fatalf("ZipfWeights not decreasing at %d: %v", i, w)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("ZipfWeights sum = %v", sum)
	}
}

func TestCategoricalMatchesWeights(t *testing.T) {
	r := New(29)
	weights := []float64{1, 2, 3, 4}
	c := NewCategorical(weights)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[c.Draw(r)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Fatalf("category %d count %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestCategoricalSingle(t *testing.T) {
	r := New(31)
	c := NewCategorical([]float64{5})
	for i := 0; i < 10; i++ {
		if c.Draw(r) != 0 {
			t.Fatal("single-category draw returned nonzero index")
		}
	}
}

func TestCategoricalZeroWeightNeverDrawn(t *testing.T) {
	r := New(37)
	c := NewCategorical([]float64{1, 0, 1})
	for i := 0; i < 10000; i++ {
		if c.Draw(r) == 1 {
			t.Fatal("zero-weight category was drawn")
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"zero-sum": {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewCategorical(%s) did not panic", name)
				}
			}()
			NewCategorical(weights)
		}()
	}
}

func TestCategoricalProbs(t *testing.T) {
	c := NewCategorical([]float64{2, 6})
	if p := c.P(0); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("P(0) = %v, want 0.25", p)
	}
	probs := c.Probs()
	probs[0] = 99
	if c.P(0) == 99 {
		t.Fatal("Probs did not return a copy")
	}
	if c.K() != 2 {
		t.Fatalf("K = %d, want 2", c.K())
	}
}

// Property: Uint64n(n) is always < n, for arbitrary nonzero n.
func TestUint64nProperty(t *testing.T) {
	r := New(41)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: seeding is stable — the first value of New(s) is a pure
// function of s.
func TestSeedStabilityProperty(t *testing.T) {
	f := func(s uint64) bool {
		return New(s).Uint64() == New(s).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkCategoricalDraw(b *testing.B) {
	r := New(1)
	c := NewCategorical(ZipfWeights(1000, 1.2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Draw(r)
	}
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1.3, 1, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Uint64()
	}
}
