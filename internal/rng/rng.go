// Package rng provides a deterministic, splittable pseudo-random number
// generator together with the sampling distributions used throughout REDI.
//
// All randomized components of the library accept a *rng.RNG rather than
// relying on global randomness, so every experiment, test, and benchmark in
// the repository is exactly reproducible from a seed. The generator is a
// PCG-XSL-RR 128/64 variant (the same family used by math/rand/v2), chosen
// for its speed, statistical quality, and cheap splitting.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; use Split to derive independent generators for concurrent
// or logically separate consumers.
type RNG struct {
	hi, lo uint64
}

// New returns a generator seeded from seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.seed(seed, seed*0x9e3779b97f4a7c15+0x243f6a8885a308d3)
	return r
}

func (r *RNG) seed(hi, lo uint64) {
	// Scramble the seed through SplitMix64 so that small or correlated
	// seeds still yield well-distributed internal state.
	r.hi = splitmix64(&hi)
	r.lo = splitmix64(&lo)
	// Avoid the all-zero state, which is a fixed point of the transition.
	if r.hi == 0 && r.lo == 0 {
		r.lo = 0x9e3779b97f4a7c15
	}
}

func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's. The receiver's own stream advances by one step, so the set
// of generators produced by a sequence of Split calls is itself
// deterministic.
func (r *RNG) Split() *RNG {
	child := &RNG{}
	child.seed(r.Uint64(), r.Uint64())
	return child
}

// Split returns the generator for one shard of a deterministic parallel
// computation: the stream is a pure function of (seed, shard), so any
// worker can recreate its shard's stream regardless of scheduling, and
// distinct shards get decorrelated streams. Shard 0 is intentionally not
// the same stream as New(seed), so sharded and unsharded consumers of the
// same seed do not accidentally alias.
func Split(seed uint64, shard int) *RNG {
	r := &RNG{}
	// Mix the shard into both state halves with distinct odd constants;
	// seed() then scrambles each half through SplitMix64, which maps the
	// (seed, shard) lattice onto well-separated internal states.
	s := uint64(shard) + 1
	r.seed(seed+s*0x632be59bd9b4e019, seed^(s*0xd1342543de82ef95))
	return r
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	// PCG-XSL-RR 128/64: a 128-bit LCG step followed by an
	// xorshift-rotate output permutation.
	const mulHi, mulLo = 2549297995355413924, 4865540595714422341
	const incHi, incLo = 6364136223846793005, 1442695040888963407

	hi, lo := r.hi, r.lo
	// 128-bit multiply-add: (hi,lo) = (hi,lo)*mul + inc.
	h := hi*mulLo + lo*mulHi
	l0, carry := mul64(lo, mulLo)
	h += l0
	lo = carry + incLo
	if lo < carry {
		h++
	}
	hi = h + incHi
	r.hi, r.lo = hi, lo

	// Output permutation.
	x := hi ^ lo
	rot := uint(hi >> 58)
	return x>>rot | x<<((64-rot)&63)
}

// mul64 returns the high and low 64-bit halves of a*b. The high half is
// returned first to mirror math/bits.Mul64.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n) using Lemire's
// nearly-divisionless rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, as in math/rand.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Normal returns a sample from the normal distribution with the given mean
// and standard deviation, via the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exponential returns a sample from the exponential distribution with the
// given rate parameter lambda. It panics if lambda <= 0.
func (r *RNG) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exponential called with lambda <= 0")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Gamma returns a sample from the gamma distribution with the given shape
// and scale, using the Marsaglia–Tsang method. It panics if shape <= 0 or
// scale <= 0.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Dirichlet returns a sample from the Dirichlet distribution with the given
// concentration parameters. The result sums to 1. It panics if alpha is
// empty or contains a non-positive entry.
func (r *RNG) Dirichlet(alpha []float64) []float64 {
	if len(alpha) == 0 {
		panic("rng: Dirichlet requires at least one parameter")
	}
	out := make([]float64, len(alpha))
	sum := 0.0
	for i, a := range alpha {
		out[i] = r.Gamma(a, 1)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw (possible only for tiny alphas); fall back to
		// a uniform point on the simplex.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
