package rng

import "math"

// Zipf samples from a Zipf (zeta) distribution over {0, 1, ..., imax} with
// skew s > 1 and offset v >= 1, matching the parameterization of
// math/rand.Zipf: P(k) is proportional to ((v + k) ** -s).
//
// Sampling uses rejection-inversion (Hörmann & Derflinger), which is O(1)
// per draw regardless of imax.
type Zipf struct {
	r            *RNG
	imax         float64
	v            float64
	q            float64
	oneminusQ    float64
	oneminusQinv float64
	hxm          float64
	hx0minusHxm  float64
	s            float64
}

// NewZipf returns a Zipf sampler. It panics if s <= 1, v < 1, or imax < 0.
func NewZipf(r *RNG, s, v float64, imax uint64) *Zipf {
	if s <= 1 || v < 1 {
		panic("rng: NewZipf requires s > 1 and v >= 1")
	}
	z := &Zipf{
		r:    r,
		imax: float64(imax),
		v:    v,
		q:    s,
	}
	z.oneminusQ = 1 - z.q
	z.oneminusQinv = 1 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1)))
	return z
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// Uint64 returns a Zipf-distributed value in [0, imax].
func (z *Zipf) Uint64() uint64 {
	for {
		r := z.r.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}

// ZipfWeights returns the normalized probability mass of a Zipf distribution
// with skew s over n ranks (rank 1 most probable). It is used to construct
// ground-truth distributions against which samplers are validated.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
