package coverage

import (
	"fmt"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
)

func covPartData(r *rng.RNG, rows int) *dataset.Dataset {
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "race", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "sex", Kind: dataset.Categorical, Role: dataset.Sensitive},
		dataset.Attribute{Name: "region", Kind: dataset.Categorical, Role: dataset.Feature},
	)
	d := dataset.New(schema)
	for i := 0; i < rows; i++ {
		race := dataset.Cat(fmt.Sprintf("r%d", r.Intn(4)))
		if r.Float64() < 0.04 {
			race = dataset.NullValue(dataset.Categorical)
		}
		// Skew so some patterns fall under the threshold.
		sex := "m"
		if r.Float64() < 0.3 {
			sex = "f"
		}
		d.MustAppendRow(race, dataset.Cat(sex), dataset.Cat(fmt.Sprintf("z%d", r.Intn(3))))
	}
	return d
}

func checkMUPsEqual(t *testing.T, ctx string, got, want []MUP) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d MUPs, want %d\n got: %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Count != want[i].Count || !got[i].Pattern.Dominates(want[i].Pattern) || !want[i].Pattern.Dominates(got[i].Pattern) {
			t.Fatalf("%s: MUP %d = %v(%d), want %v(%d)", ctx, i, got[i].Pattern, got[i].Count, want[i].Pattern, want[i].Count)
		}
	}
}

// TestSpacePartitionedMatchesInMemory: a space built partition-at-a-time
// yields exactly the counts and MUPs of the in-memory build, at any worker
// count for both the build and the walk.
func TestSpacePartitionedMatchesInMemory(t *testing.T) {
	r := rng.New(31)
	attrs := []string{"race", "sex", "region"}
	for _, rows := range []int{0, 40, 500} {
		d := covPartData(r, rows)
		threshold := 1 + rows/30
		want := NewSpace(d, attrs, threshold)
		wantMUPs := want.MUPs()
		for _, partRows := range []int{64, 256} {
			pd := d.Partitions(partRows)
			for _, workers := range []int{1, 2, 8} {
				s := NewSpacePartitioned(pd, attrs, threshold, workers)
				ctx := fmt.Sprintf("rows=%d partRows=%d workers=%d", rows, partRows, workers)
				if len(s.Domains) != len(want.Domains) {
					t.Fatalf("%s: domain count mismatch", ctx)
				}
				for i := range want.Domains {
					if fmt.Sprint(s.Domains[i]) != fmt.Sprint(want.Domains[i]) {
						t.Fatalf("%s: domain %d = %v, want %v", ctx, i, s.Domains[i], want.Domains[i])
					}
				}
				// Spot-check counts over random patterns against the
				// in-memory space.
				for trial := 0; trial < 50; trial++ {
					p := s.Root()
					for i := range p {
						if r.Float64() < 0.5 && len(s.Domains[i]) > 0 {
							p[i] = r.Intn(len(s.Domains[i]))
						}
					}
					if got, w := s.Count(p), want.Count(p); got != w {
						t.Fatalf("%s: Count(%v) = %d, want %d", ctx, p, got, w)
					}
				}
				checkMUPsEqual(t, ctx, s.MUPsParallel(workers), wantMUPs)
			}
		}
	}
}

// TestJoinSpacePartitionedMatchesInMemory: the factorized join space built
// from partitioned views matches the in-memory build exactly.
func TestJoinSpacePartitionedMatchesInMemory(t *testing.T) {
	r := rng.New(32)
	mkSide := func(rows, nkeys int, prefix string) *dataset.Dataset {
		schema := dataset.NewSchema(
			dataset.Attribute{Name: "k", Kind: dataset.Categorical, Role: dataset.ID},
			dataset.Attribute{Name: prefix + "a", Kind: dataset.Categorical, Role: dataset.Sensitive},
		)
		d := dataset.New(schema)
		for i := 0; i < rows; i++ {
			k := dataset.Cat(fmt.Sprintf("k%d", r.Intn(nkeys)))
			if r.Float64() < 0.05 {
				k = dataset.NullValue(dataset.Categorical)
			}
			d.MustAppendRow(k, dataset.Cat(fmt.Sprintf("%s%d", prefix, r.Intn(3))))
		}
		return d
	}
	left := mkSide(300, 12, "l")
	right := mkSide(260, 16, "r")
	threshold := 25
	want := NewJoinSpace(left, "k", []string{"la"}, right, "k", []string{"ra"}, threshold)
	wantMUPs := want.MUPs()

	pl := left.Partitions(64)
	pr := right.Partitions(128)
	js := NewJoinSpacePartitioned(pl, "k", []string{"la"}, pr, "k", []string{"ra"}, threshold)
	if js.totalJoin != want.totalJoin {
		t.Fatalf("totalJoin = %d, want %d", js.totalJoin, want.totalJoin)
	}
	for trial := 0; trial < 80; trial++ {
		p := js.Root()
		for i := range p {
			if r.Float64() < 0.5 {
				p[i] = r.Intn(len(js.Domains[i]))
			}
		}
		if got, w := js.Count(p), want.Count(p); got != w {
			t.Fatalf("Count(%v) = %d, want %d", p, got, w)
		}
		if got, w := js.Count(p), js.countScan(p); got != w {
			t.Fatalf("Count(%v) = %d, oracle %d", p, got, w)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		checkMUPsEqual(t, fmt.Sprintf("workers=%d", workers), js.MUPsParallel(workers), wantMUPs)
	}
}
