package coverage

import (
	"fmt"

	"redi/internal/bitmap"
	"redi/internal/obs"
	"redi/internal/parallel"
	"redi/internal/trace"
)

// MUP is a maximal uncovered pattern with its observed count.
type MUP struct {
	Pattern Pattern
	Count   int
}

// rowSet is the per-node state the threaded DFS hands from parent to
// child: the bitmap(s) of rows matching the node's pattern plus the match
// count. Space uses only a; JoinSpace carries one bitmap per side (a =
// left, b = right). A nil bitmap means "all rows" — the root and any side
// with no constraints yet. ownedA/ownedB record whether the bitmap came
// from the space's scratch pool (and must go back) or is a borrowed
// precomputed value bitmap.
type rowSet struct {
	a, b           bitmap.Bitmap
	count          int
	ownedA, ownedB bool
}

// patternSpace is the lattice interface the pattern-breaker walker runs
// over; Space (single relation) and JoinSpace (coverage over a join)
// implement it. Alongside the pattern-level queries, a space provides the
// threaded-walk hooks: rootSet yields the root's row set, and childSet
// refines a parent's row set into the child that specializes position pos
// to value val — one fused AND+popcount instead of re-intersecting (or
// re-scanning) from scratch. releaseSet returns pooled scratch.
type patternSpace interface {
	Root() Pattern
	Count(p Pattern) int
	Covered(p Pattern) bool
	Parents(p Pattern) []Pattern

	threshold() int
	numValues(pos int) int
	rootSet() rowSet
	childSet(parent rowSet, pos, val int, st *walkStats) rowSet
	releaseSet(rs rowSet)
	observer() *obs.Registry
}

// maxLevelBuckets bounds the per-level MUP tally; deeper levels fold into
// the last bucket. A fixed array keeps per-shard stats allocation-free.
const maxLevelBuckets = 16

// walkStats tallies the algorithmic work of one pattern-breaker subtree.
// Each shard owns its stats privately during the walk; shards are merged in
// shard (root-child) order after the parallel section joins — the same
// discipline as rng.Split — so the totals are bit-identical at any worker
// count. Everything here is an integer count of lattice work, never a
// schedule- or chunking-dependent quantity.
type walkStats struct {
	nodes        int64 // lattice nodes visited (including the root)
	ands         int64 // fused bitmap refinements paid by childSet
	parentChecks int64 // Covered(parent) probes from MUP confirmation
	mups         int64
	mupsByLevel  [maxLevelBuckets]int64
}

// merge folds o into st; callers must invoke it in shard order.
func (st *walkStats) merge(o *walkStats) {
	st.nodes += o.nodes
	st.ands += o.ands
	st.parentChecks += o.parentChecks
	st.mups += o.mups
	for i := range o.mupsByLevel {
		st.mupsByLevel[i] += o.mupsByLevel[i]
	}
}

// recordMUP tallies one MUP at the given lattice level.
func (st *walkStats) recordMUP(level int) {
	st.mups++
	if level >= maxLevelBuckets {
		level = maxLevelBuckets - 1
	}
	st.mupsByLevel[level]++
}

// foldWalkStats publishes one finished walk's totals as coverage counters.
func foldWalkStats(reg *obs.Registry, st *walkStats) {
	if reg == nil {
		return
	}
	reg.Counter("coverage.walks").Inc()
	reg.Counter("coverage.dfs_nodes").Add(st.nodes)
	reg.Counter("coverage.bitmap_ands").Add(st.ands)
	reg.Counter("coverage.parent_checks").Add(st.parentChecks)
	reg.Counter("coverage.mups").Add(st.mups)
	for lvl, n := range st.mupsByLevel {
		if n != 0 {
			reg.Counter(fmt.Sprintf("coverage.mups.level_%d", lvl)).Add(n)
		}
	}
}

// patternBreaker enumerates MUPs over any patternSpace: a top-down
// traversal of the canonical pattern tree that stops descending at the
// first uncovered pattern on each path. An uncovered pattern is reported as
// a MUP iff all of its immediate generalizations are covered; its
// descendants cannot be MUPs (they have an uncovered parent), so the
// subtree is pruned. Patterns are visited at most once thanks to the
// canonical child rule, and each visit costs one bitmap refinement of its
// parent's row set — the prefix-intersection DFS.
func patternBreaker(s patternSpace) []MUP {
	return patternBreakerTraced(s, 0, nil)
}

// rootChild names one canonical child of the root: position pos
// specialized to value val.
type rootChild struct{ pos, val int }

// patternBreakerWorkers runs the pattern-breaker search with the given
// worker count (parallel.Workers semantics; 0 = serial). The lattice is
// sharded by the root's canonical children: each subtree is walked
// independently and the per-subtree MUP lists are concatenated in child
// order, which is exactly the order the serial DFS visits them — so the
// output is bit-identical at any worker count. Workers share only the
// precomputed value bitmaps (read-only) and the scratch pool (internally
// synchronized), so no pruning state leaks between subtrees.
func patternBreakerWorkers(s patternSpace, workers int) []MUP {
	return patternBreakerTraced(s, workers, nil)
}

// patternBreakerTraced additionally records one "coverage.mup_walk"
// span under sp (nil = untraced) whose attributes are the walk's
// deterministic tallies — the same shard-order-merged walkStats that
// feed the coverage counters, including the per-level MUP histogram.
// The span is created and closed on the serial control path, so trace
// structure stays bit-identical at any worker count.
func patternBreakerTraced(s patternSpace, workers int, sp *trace.Span) []MUP {
	ws := sp.Child("coverage.mup_walk")
	reg := s.observer()
	root := s.Root()
	rs := s.rootSet()
	var total walkStats
	total.nodes++ // the root itself
	if rs.count < s.threshold() {
		// The whole dataset is smaller than the threshold: the root is
		// the single MUP.
		s.releaseSet(rs)
		total.recordMUP(0)
		foldWalkStats(reg, &total)
		setWalkAttrs(ws, &total)
		return []MUP{{Pattern: root, Count: rs.count}}
	}
	var kids []rootChild
	for i := range root {
		for v := 0; v < s.numValues(i); v++ {
			kids = append(kids, rootChild{pos: i, val: v})
		}
	}
	// Each shard carries its MUPs and its work tallies; both merge in
	// root-child order below, keeping output and counters bit-identical
	// at any worker count.
	type subtree struct {
		mups  []MUP
		stats walkStats
	}
	parts := parallel.Map(workers, kids, func(_ int, k rootChild) subtree {
		var sub subtree
		p := root.Clone()
		p[k.pos] = k.val
		crs := s.childSet(rs, k.pos, k.val, &sub.stats)
		walkSubtree(s, p, k.pos, crs, &sub.mups, &sub.stats)
		s.releaseSet(crs)
		return sub
	})
	s.releaseSet(rs)
	var out []MUP
	for i := range parts {
		out = append(out, parts[i].mups...)
		total.merge(&parts[i].stats)
	}
	foldWalkStats(reg, &total)
	setWalkAttrs(ws, &total)
	return out
}

// setWalkAttrs closes the walk span with the merged tallies as
// deterministic attributes (mirroring foldWalkStats' counters).
func setWalkAttrs(ws *trace.Span, st *walkStats) {
	if ws == nil {
		return
	}
	ws.SetAttr("dfs_nodes", st.nodes)
	ws.SetAttr("bitmap_ands", st.ands)
	ws.SetAttr("parent_checks", st.parentChecks)
	ws.SetAttr("mups", st.mups)
	for lvl, n := range st.mupsByLevel {
		if n != 0 {
			ws.SetAttr(fmt.Sprintf("mups_level_%d", lvl), n)
		}
	}
	ws.End()
}

// walkSubtree appends, in DFS order, the MUPs found under the pattern p
// (inclusive), whose rightmost constrained position is `rightmost` and
// whose row set is rs. The pattern is refined in place: children extend p
// strictly to the right of `rightmost` (the canonical child rule), each
// paying a single intersection against its parent's row set.
func walkSubtree(s patternSpace, p Pattern, rightmost int, rs rowSet, out *[]MUP, st *walkStats) {
	st.nodes++
	if rs.count < s.threshold() {
		if allParentsCovered(s, p, st) {
			st.recordMUP(p.Level())
			*out = append(*out, MUP{Pattern: p.Clone(), Count: rs.count})
		}
		return
	}
	for i := rightmost + 1; i < len(p); i++ {
		for v := 0; v < s.numValues(i); v++ {
			p[i] = v
			crs := s.childSet(rs, i, v, st)
			walkSubtree(s, p, i, crs, out, st)
			s.releaseSet(crs)
			p[i] = Wildcard
		}
	}
}

// MUPs enumerates the maximal uncovered patterns of the space with the
// pattern-breaker strategy.
func (s *Space) MUPs() []MUP { return patternBreaker(s) }

// MUPsParallel enumerates the same MUPs as MUPs, sharding the top-down
// search across workers (parallel.Workers semantics). The result is
// bit-identical to MUPs at any worker count.
func (s *Space) MUPsParallel(workers int) []MUP { return patternBreakerWorkers(s, workers) }

// MUPsTraced is MUPsParallel plus a "coverage.mup_walk" span under sp
// carrying the walk's deterministic tallies (per-level MUP counts,
// DFS nodes, bitmap refinements). A nil span is the untraced path.
func (s *Space) MUPsTraced(workers int, sp *trace.Span) []MUP {
	return patternBreakerTraced(s, workers, sp)
}

func allParentsCovered(s patternSpace, p Pattern, st *walkStats) bool {
	for _, parent := range s.Parents(p) {
		st.parentChecks++
		if !s.Covered(parent) {
			return false
		}
	}
	return true
}

// NaiveMUPs enumerates MUPs by materializing the full pattern lattice and
// checking the MUP condition on every pattern. It is exponentially more
// expensive than MUPs and exists as the correctness oracle and ablation
// baseline (experiment E3).
func (s *Space) NaiveMUPs() []MUP {
	var out []MUP
	var st walkStats // oracle path: tallies discarded
	var all func(p Pattern, from int)
	all = func(p Pattern, from int) {
		if !s.Covered(p) && allParentsCovered(s, p, &st) {
			out = append(out, MUP{Pattern: p.Clone(), Count: s.Count(p)})
		}
		for i := from; i < len(p); i++ {
			for v := range s.Domains[i] {
				p[i] = v
				all(p, i+1)
				p[i] = Wildcard
			}
		}
	}
	all(s.Root(), 0)
	return out
}

// UncoveredCombinations returns the fully-specified patterns (value
// combinations) dominated by at least one of the given MUPs — the concrete
// uncovered region the MUPs summarize.
func (s *Space) UncoveredCombinations(mups []MUP) []Pattern {
	var out []Pattern
	var gen func(p Pattern, i int)
	gen = func(p Pattern, i int) {
		if i == len(p) {
			for _, m := range mups {
				if m.Pattern.Dominates(p) {
					out = append(out, p.Clone())
					return
				}
			}
			return
		}
		for v := range s.Domains[i] {
			p[i] = v
			gen(p, i+1)
		}
		p[i] = Wildcard
	}
	gen(s.Root(), 0)
	return out
}

// CoveragePercent returns the fraction of fully-specified value
// combinations that are covered.
func (s *Space) CoveragePercent() float64 {
	total, covered := 0, 0
	var gen func(p Pattern, i int)
	gen = func(p Pattern, i int) {
		if i == len(p) {
			total++
			if s.Covered(p) {
				covered++
			}
			return
		}
		for v := range s.Domains[i] {
			p[i] = v
			gen(p, i+1)
		}
		p[i] = Wildcard
	}
	gen(s.Root(), 0)
	if total == 0 {
		return 1
	}
	return float64(covered) / float64(total)
}
