package coverage

// MUP is a maximal uncovered pattern with its observed count.
type MUP struct {
	Pattern Pattern
	Count   int
}

// patternSpace is the lattice interface the pattern-breaker walker runs
// over; Space (single relation) and JoinSpace (coverage over a join)
// implement it.
type patternSpace interface {
	Root() Pattern
	Count(p Pattern) int
	Covered(p Pattern) bool
	Children(p Pattern) []Pattern
	Parents(p Pattern) []Pattern
}

// patternBreaker enumerates MUPs over any patternSpace: a top-down
// traversal of the canonical pattern tree that stops descending at the
// first uncovered pattern on each path. An uncovered pattern is reported as
// a MUP iff all of its immediate generalizations are covered; its
// descendants cannot be MUPs (they have an uncovered parent), so the
// subtree is pruned. Patterns are visited at most once thanks to the
// canonical child rule.
func patternBreaker(s patternSpace) []MUP {
	var out []MUP
	var walk func(p Pattern)
	walk = func(p Pattern) {
		if !s.Covered(p) {
			if allParentsCovered(s, p) {
				out = append(out, MUP{Pattern: p, Count: s.Count(p)})
			}
			return
		}
		for _, c := range s.Children(p) {
			walk(c)
		}
	}
	root := s.Root()
	if !s.Covered(root) {
		// The whole dataset is smaller than the threshold: the root is
		// the single MUP.
		return []MUP{{Pattern: root, Count: s.Count(root)}}
	}
	for _, c := range s.Children(root) {
		walk(c)
	}
	return out
}

// MUPs enumerates the maximal uncovered patterns of the space with the
// pattern-breaker strategy.
func (s *Space) MUPs() []MUP { return patternBreaker(s) }

func allParentsCovered(s patternSpace, p Pattern) bool {
	for _, parent := range s.Parents(p) {
		if !s.Covered(parent) {
			return false
		}
	}
	return true
}

// NaiveMUPs enumerates MUPs by materializing the full pattern lattice and
// checking the MUP condition on every pattern. It is exponentially more
// expensive than MUPs and exists as the correctness oracle and ablation
// baseline (experiment E3).
func (s *Space) NaiveMUPs() []MUP {
	var out []MUP
	var all func(p Pattern, from int)
	all = func(p Pattern, from int) {
		if !s.Covered(p) && allParentsCovered(s, p) {
			out = append(out, MUP{Pattern: p.Clone(), Count: s.Count(p)})
		}
		for i := from; i < len(p); i++ {
			for v := range s.Domains[i] {
				p[i] = v
				all(p, i+1)
				p[i] = Wildcard
			}
		}
	}
	all(s.Root(), 0)
	return out
}

// UncoveredCombinations returns the fully-specified patterns (value
// combinations) dominated by at least one of the given MUPs — the concrete
// uncovered region the MUPs summarize.
func (s *Space) UncoveredCombinations(mups []MUP) []Pattern {
	var out []Pattern
	var gen func(p Pattern, i int)
	gen = func(p Pattern, i int) {
		if i == len(p) {
			for _, m := range mups {
				if m.Pattern.Dominates(p) {
					out = append(out, p.Clone())
					return
				}
			}
			return
		}
		for v := range s.Domains[i] {
			p[i] = v
			gen(p, i+1)
		}
		p[i] = Wildcard
	}
	gen(s.Root(), 0)
	return out
}

// CoveragePercent returns the fraction of fully-specified value
// combinations that are covered.
func (s *Space) CoveragePercent() float64 {
	total, covered := 0, 0
	var gen func(p Pattern, i int)
	gen = func(p Pattern, i int) {
		if i == len(p) {
			total++
			if s.Covered(p) {
				covered++
			}
			return
		}
		for v := range s.Domains[i] {
			p[i] = v
			gen(p, i+1)
		}
		p[i] = Wildcard
	}
	gen(s.Root(), 0)
	if total == 0 {
		return 1
	}
	return float64(covered) / float64(total)
}
