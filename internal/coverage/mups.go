package coverage

import "redi/internal/parallel"

// MUP is a maximal uncovered pattern with its observed count.
type MUP struct {
	Pattern Pattern
	Count   int
}

// patternSpace is the lattice interface the pattern-breaker walker runs
// over; Space (single relation) and JoinSpace (coverage over a join)
// implement it.
type patternSpace interface {
	Root() Pattern
	Count(p Pattern) int
	Covered(p Pattern) bool
	Children(p Pattern) []Pattern
	Parents(p Pattern) []Pattern
}

// patternBreaker enumerates MUPs over any patternSpace: a top-down
// traversal of the canonical pattern tree that stops descending at the
// first uncovered pattern on each path. An uncovered pattern is reported as
// a MUP iff all of its immediate generalizations are covered; its
// descendants cannot be MUPs (they have an uncovered parent), so the
// subtree is pruned. Patterns are visited at most once thanks to the
// canonical child rule.
func patternBreaker(s patternSpace) []MUP {
	return patternBreakerWorkers(s, 0)
}

// patternBreakerWorkers runs the pattern-breaker search with the given
// worker count (parallel.Workers semantics; 0 = serial). The lattice is
// sharded by the root's canonical children: each subtree is walked
// independently and the per-subtree MUP lists are concatenated in child
// order, which is exactly the order the serial DFS visits them — so the
// output is bit-identical at any worker count. Count memoization in the
// space is concurrency-safe but shared, so the pruning each subtree does is
// unaffected by what the other workers discover.
func patternBreakerWorkers(s patternSpace, workers int) []MUP {
	root := s.Root()
	if !s.Covered(root) {
		// The whole dataset is smaller than the threshold: the root is
		// the single MUP.
		return []MUP{{Pattern: root, Count: s.Count(root)}}
	}
	parts := parallel.Map(workers, s.Children(root), func(_ int, c Pattern) []MUP {
		var out []MUP
		walkSubtree(s, c, &out)
		return out
	})
	var out []MUP
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// walkSubtree appends, in DFS order, the MUPs found under p (inclusive).
func walkSubtree(s patternSpace, p Pattern, out *[]MUP) {
	if !s.Covered(p) {
		if allParentsCovered(s, p) {
			*out = append(*out, MUP{Pattern: p, Count: s.Count(p)})
		}
		return
	}
	for _, c := range s.Children(p) {
		walkSubtree(s, c, out)
	}
}

// MUPs enumerates the maximal uncovered patterns of the space with the
// pattern-breaker strategy.
func (s *Space) MUPs() []MUP { return patternBreaker(s) }

// MUPsParallel enumerates the same MUPs as MUPs, sharding the top-down
// search across workers (parallel.Workers semantics). The result is
// bit-identical to MUPs at any worker count.
func (s *Space) MUPsParallel(workers int) []MUP { return patternBreakerWorkers(s, workers) }

func allParentsCovered(s patternSpace, p Pattern) bool {
	for _, parent := range s.Parents(p) {
		if !s.Covered(parent) {
			return false
		}
	}
	return true
}

// NaiveMUPs enumerates MUPs by materializing the full pattern lattice and
// checking the MUP condition on every pattern. It is exponentially more
// expensive than MUPs and exists as the correctness oracle and ablation
// baseline (experiment E3).
func (s *Space) NaiveMUPs() []MUP {
	var out []MUP
	var all func(p Pattern, from int)
	all = func(p Pattern, from int) {
		if !s.Covered(p) && allParentsCovered(s, p) {
			out = append(out, MUP{Pattern: p.Clone(), Count: s.Count(p)})
		}
		for i := from; i < len(p); i++ {
			for v := range s.Domains[i] {
				p[i] = v
				all(p, i+1)
				p[i] = Wildcard
			}
		}
	}
	all(s.Root(), 0)
	return out
}

// UncoveredCombinations returns the fully-specified patterns (value
// combinations) dominated by at least one of the given MUPs — the concrete
// uncovered region the MUPs summarize.
func (s *Space) UncoveredCombinations(mups []MUP) []Pattern {
	var out []Pattern
	var gen func(p Pattern, i int)
	gen = func(p Pattern, i int) {
		if i == len(p) {
			for _, m := range mups {
				if m.Pattern.Dominates(p) {
					out = append(out, p.Clone())
					return
				}
			}
			return
		}
		for v := range s.Domains[i] {
			p[i] = v
			gen(p, i+1)
		}
		p[i] = Wildcard
	}
	gen(s.Root(), 0)
	return out
}

// CoveragePercent returns the fraction of fully-specified value
// combinations that are covered.
func (s *Space) CoveragePercent() float64 {
	total, covered := 0, 0
	var gen func(p Pattern, i int)
	gen = func(p Pattern, i int) {
		if i == len(p) {
			total++
			if s.Covered(p) {
				covered++
			}
			return
		}
		for v := range s.Domains[i] {
			p[i] = v
			gen(p, i+1)
		}
		p[i] = Wildcard
	}
	gen(s.Root(), 0)
	if total == 0 {
		return 1
	}
	return float64(covered) / float64(total)
}
