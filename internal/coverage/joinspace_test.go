package coverage

import (
	"fmt"
	"sort"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// joinFixture: patients(zip, race) ⋈ zips(zip, region) — coverage over
// (race, region).
func joinFixture(t *testing.T, seed uint64, n int) (left, right *dataset.Dataset) {
	t.Helper()
	r := rng.New(seed)
	left = dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "zip", Kind: dataset.Categorical},
		dataset.Attribute{Name: "race", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	races := []string{"white", "black", "asian"}
	raceCat := rng.NewCategorical([]float64{0.7, 0.2, 0.1})
	for i := 0; i < n; i++ {
		zip := fmt.Sprintf("z%02d", r.Intn(12))
		left.MustAppendRow(dataset.Cat(zip), dataset.Cat(races[raceCat.Draw(r)]))
	}
	right = dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "zipcode", Kind: dataset.Categorical},
		dataset.Attribute{Name: "region", Kind: dataset.Categorical, Role: dataset.Sensitive},
	))
	for z := 0; z < 12; z++ {
		region := "north"
		if z >= 8 {
			region = "south"
		}
		right.MustAppendRow(dataset.Cat(fmt.Sprintf("z%02d", z)), dataset.Cat(region))
	}
	return left, right
}

func TestJoinSpaceCountMatchesMaterialized(t *testing.T) {
	left, right := joinFixture(t, 1, 600)
	js := NewJoinSpace(left, "zip", []string{"race"}, right, "zipcode", []string{"region"}, 10)

	joined, err := left.Join(right, "zip", "zipcode")
	if err != nil {
		t.Fatal(err)
	}
	ms := NewSpace(joined, []string{"race", "region"}, 10)

	// Every pattern in the (small) lattice must agree. Dictionary codes
	// differ between the two spaces, so translate patterns by value name.
	translate := func(p Pattern) Pattern {
		q := ms.Root()
		for i, v := range p {
			if v == Wildcard {
				continue
			}
			name := js.Domains[i][v]
			q[i] = -2 // poison: fails loudly if the value is absent
			for mv, mname := range ms.Domains[i] {
				if mname == name {
					q[i] = mv
					break
				}
			}
		}
		return q
	}
	var check func(p Pattern, i int)
	check = func(p Pattern, i int) {
		mp := translate(p)
		want := 0
		poisoned := false
		for _, v := range mp {
			if v == -2 {
				poisoned = true
			}
		}
		if !poisoned {
			want = ms.Count(mp)
		}
		if got := js.Count(p); got != want {
			t.Fatalf("pattern %s: factorized %d, materialized %d", js.Describe(p), got, want)
		}
		for j := i; j < len(p); j++ {
			for v := range js.Domains[j] {
				p[j] = v
				check(p, j+1)
				p[j] = Wildcard
			}
		}
	}
	check(js.Root(), 0)
}

func TestJoinSpaceMUPsMatchMaterialized(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		left, right := joinFixture(t, seed, 400)
		js := NewJoinSpace(left, "zip", []string{"race"}, right, "zipcode", []string{"region"}, 25)
		joined, err := left.Join(right, "zip", "zipcode")
		if err != nil {
			t.Fatal(err)
		}
		ms := NewSpace(joined, []string{"race", "region"}, 25)

		describe := func(mups []MUP, d func(Pattern) string) []string {
			var out []string
			for _, m := range mups {
				out = append(out, d(m.Pattern))
			}
			sort.Strings(out)
			return out
		}
		got := describe(js.MUPs(), js.Describe)
		want := describe(ms.MUPs(), ms.Describe)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %v vs %v", seed, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: MUP mismatch %q vs %q", seed, got[i], want[i])
			}
		}
	}
}

func TestJoinSpaceSkipsNullKeys(t *testing.T) {
	left := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "a", Kind: dataset.Categorical},
	))
	left.MustAppendRow(dataset.Cat("x"), dataset.Cat("v"))
	left.MustAppendRow(dataset.NullValue(dataset.Categorical), dataset.Cat("v"))
	right := dataset.New(dataset.NewSchema(
		dataset.Attribute{Name: "k", Kind: dataset.Categorical},
		dataset.Attribute{Name: "b", Kind: dataset.Categorical},
	))
	right.MustAppendRow(dataset.Cat("x"), dataset.Cat("w"))
	js := NewJoinSpace(left, "k", []string{"a"}, right, "k", []string{"b"}, 1)
	if got := js.Count(js.Root()); got != 1 {
		t.Fatalf("join count = %d, want 1 (null key skipped)", got)
	}
}

func TestJoinSpacePanicsWithoutAttrs(t *testing.T) {
	left, right := joinFixture(t, 9, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("no pattern attrs did not panic")
		}
	}()
	NewJoinSpace(left, "zip", nil, right, "zipcode", nil, 1)
}
