package coverage

import "sort"

// RemedyStep is one acquisition decision of a coverage remedy: collect
// Count additional rows matching the fully-specified Combination.
type RemedyStep struct {
	Combination Pattern
	Count       int
}

// Remedy computes an acquisition plan that covers every given MUP: a list
// of fully-specified value combinations and how many rows of each to
// collect. A collected row matching combination c raises the count of every
// pattern dominating c, so one combination can repair several MUPs at once.
// The greedy policy repeatedly picks the combination compatible with the
// largest total remaining deficiency, matching the heuristic of Asudeh et
// al. (ICDE'19, "coverage enhancement"). The returned plan covers all MUPs
// exactly (never overshooting any single MUP's deficiency by more than
// necessary for the chosen combinations).
func (s *Space) Remedy(mups []MUP) []RemedyStep {
	if len(mups) == 0 {
		return nil
	}
	deficiency := make([]int, len(mups))
	for i, m := range mups {
		deficiency[i] = s.Threshold - m.Count
		if deficiency[i] < 0 {
			deficiency[i] = 0
		}
	}
	combos := s.UncoveredCombinations(mups)
	// compat[c] lists the MUPs that combination c repairs.
	compat := make([][]int, len(combos))
	for ci, c := range combos {
		for mi, m := range mups {
			if m.Pattern.Dominates(c) {
				compat[ci] = append(compat[ci], mi)
			}
		}
	}

	var plan []RemedyStep
	for {
		// Pick the combination with the largest remaining total
		// deficiency across its compatible MUPs.
		best, bestScore := -1, 0
		for ci := range combos {
			score := 0
			for _, mi := range compat[ci] {
				score += deficiency[mi]
			}
			if score > bestScore {
				best, bestScore = ci, score
			}
		}
		if best < 0 {
			break // all deficiencies are zero
		}
		// Add enough rows to fully repair the smallest positive
		// deficiency among the compatible MUPs; this keeps steps
		// maximal without overshooting.
		add := 0
		for _, mi := range compat[best] {
			if deficiency[mi] > 0 && (add == 0 || deficiency[mi] < add) {
				add = deficiency[mi]
			}
		}
		for _, mi := range compat[best] {
			deficiency[mi] -= add
			if deficiency[mi] < 0 {
				deficiency[mi] = 0
			}
		}
		plan = append(plan, RemedyStep{Combination: combos[best].Clone(), Count: add})
	}
	// Merge steps on the same combination (possible when deficiencies
	// interleave) and sort for determinism.
	merged := map[string]int{}
	byKey := map[string]Pattern{}
	for _, st := range plan {
		k := st.Combination.key()
		merged[k] += st.Count
		byKey[k] = st.Combination
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]RemedyStep, 0, len(keys))
	for _, k := range keys {
		out = append(out, RemedyStep{Combination: byKey[k], Count: merged[k]})
	}
	return out
}

// RemedyCost returns the total number of rows a plan acquires.
func RemedyCost(plan []RemedyStep) int {
	n := 0
	for _, st := range plan {
		n += st.Count
	}
	return n
}

// RandomRemedyCost simulates the naive alternative to Remedy used as the E13
// baseline: acquire rows of uniformly random uncovered combinations until
// all MUP deficiencies reach zero, and report how many rows that took.
// next(n) must return a uniform index in [0, n); deficiencies are repaired
// in draw order.
func (s *Space) RandomRemedyCost(mups []MUP, next func(n int) int) int {
	if len(mups) == 0 {
		return 0
	}
	deficiency := make([]int, len(mups))
	remaining := 0
	for i, m := range mups {
		deficiency[i] = s.Threshold - m.Count
		if deficiency[i] < 0 {
			deficiency[i] = 0
		}
		remaining += deficiency[i]
	}
	combos := s.UncoveredCombinations(mups)
	compat := make([][]int, len(combos))
	for ci, c := range combos {
		for mi, m := range mups {
			if m.Pattern.Dominates(c) {
				compat[ci] = append(compat[ci], mi)
			}
		}
	}
	cost := 0
	for remaining > 0 {
		ci := next(len(combos))
		cost++
		for _, mi := range compat[ci] {
			if deficiency[mi] > 0 {
				deficiency[mi]--
				remaining--
			}
		}
	}
	return cost
}
