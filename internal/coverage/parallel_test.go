package coverage

import (
	"fmt"
	"reflect"
	"testing"

	"redi/internal/dataset"
	"redi/internal/rng"
)

// skewedTable builds a d-attribute categorical table with a skewed joint
// distribution so that real MUPs exist.
func skewedTable(t *testing.T, d, rows int, seed uint64) *dataset.Dataset {
	t.Helper()
	attrs := make([]dataset.Attribute, d)
	for i := range attrs {
		attrs[i] = dataset.Attribute{Name: fmt.Sprintf("a%d", i), Kind: dataset.Categorical, Role: dataset.Sensitive}
	}
	ds := dataset.New(dataset.NewSchema(attrs...))
	vals := []string{"x", "y", "z"}
	cat := rng.NewCategorical([]float64{0.7, 0.25, 0.05})
	r := rng.New(seed)
	row := make([]dataset.Value, d)
	for i := 0; i < rows; i++ {
		for j := 0; j < d; j++ {
			row[j] = dataset.Cat(vals[cat.Draw(r)])
		}
		ds.MustAppendRow(row...)
	}
	return ds
}

// TestMUPsParallelDeterminism pins the determinism contract for the sharded
// pattern-breaker: MUPsParallel returns the exact slice MUPs returns, in
// the same order, at workers ∈ {1, 8}.
func TestMUPsParallelDeterminism(t *testing.T) {
	for _, d := range []int{3, 5, 6} {
		data := skewedTable(t, d, 3000, uint64(d))
		attrs := data.Schema().Names()
		serial := NewSpace(data, attrs, 25).MUPs()
		if len(serial) == 0 {
			t.Fatalf("d=%d: no MUPs; determinism check is vacuous", d)
		}
		for _, w := range []int{1, 8} {
			got := NewSpace(data, attrs, 25).MUPsParallel(w)
			if !reflect.DeepEqual(got, serial) {
				t.Fatalf("d=%d workers=%d: parallel MUPs diverge from serial\nserial: %v\ngot:    %v", d, w, serial, got)
			}
		}
	}
}

// TestMUPsParallelRootUncovered covers the degenerate single-MUP path.
func TestMUPsParallelRootUncovered(t *testing.T) {
	data := skewedTable(t, 3, 10, 1)
	s := NewSpace(data, data.Schema().Names(), 1000)
	got := s.MUPsParallel(8)
	if len(got) != 1 || got[0].Pattern.Level() != 0 {
		t.Fatalf("root-uncovered MUPs = %v", got)
	}
}

// TestJoinSpaceMUPsParallelDeterminism pins the contract over the
// factorized join space.
func TestJoinSpaceMUPsParallelDeterminism(t *testing.T) {
	left, right := joinFixture(t, 3, 800)
	serial := NewJoinSpace(left, "zip", []string{"race"}, right, "zipcode", []string{"region"}, 15).MUPs()
	for _, w := range []int{1, 8} {
		js := NewJoinSpace(left, "zip", []string{"race"}, right, "zipcode", []string{"region"}, 15)
		if got := js.MUPsParallel(w); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: join-space parallel MUPs diverge\nserial: %v\ngot:    %v", w, serial, got)
		}
	}
}
