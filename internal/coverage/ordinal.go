package coverage

import (
	"math"

	"redi/internal/dataset"
)

// OrdinalCoverage answers neighborhood-coverage queries over continuous
// attributes (Asudeh et al., SIGMOD 2021): a query point q is covered when
// at least K data points lie within L2 distance Radius of q. A uniform grid
// with cell side Radius limits each query to the 3^d adjacent cells.
type OrdinalCoverage struct {
	Attrs  []string
	Radius float64
	K      int

	dim    int
	points [][]float64
	grid   map[string][]int // cell key -> point indices
}

// NewOrdinalCoverage indexes the non-null rows of the given numeric
// attributes of d. Rows with a null in any attribute are ignored. It panics
// if radius <= 0, k <= 0, or attrs is empty.
func NewOrdinalCoverage(d *dataset.Dataset, attrs []string, radius float64, k int) *OrdinalCoverage {
	if radius <= 0 || k <= 0 || len(attrs) == 0 {
		panic("coverage: NewOrdinalCoverage requires radius > 0, k > 0, attrs non-empty")
	}
	oc := &OrdinalCoverage{
		Attrs:  append([]string(nil), attrs...),
		Radius: radius,
		K:      k,
		dim:    len(attrs),
		grid:   map[string][]int{},
	}
	cols := make([][]float64, len(attrs))
	nulls := make([][]bool, len(attrs))
	for i, a := range attrs {
		cols[i], nulls[i] = d.NumericFull(a)
	}
	for r := 0; r < d.NumRows(); r++ {
		ok := true
		pt := make([]float64, oc.dim)
		for i := range attrs {
			if nulls[i][r] {
				ok = false
				break
			}
			pt[i] = cols[i][r]
		}
		if !ok {
			continue
		}
		idx := len(oc.points)
		oc.points = append(oc.points, pt)
		oc.grid[oc.cellKey(pt)] = append(oc.grid[oc.cellKey(pt)], idx)
	}
	return oc
}

// NumPoints returns the number of indexed points.
func (oc *OrdinalCoverage) NumPoints() int { return len(oc.points) }

func (oc *OrdinalCoverage) cellKey(pt []float64) string {
	key := make([]byte, 0, oc.dim*6)
	for _, x := range pt {
		c := int64(math.Floor(x / oc.Radius))
		key = appendInt(key, c)
		key = append(key, ';')
	}
	return string(key)
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// NeighborCount returns the number of indexed points within Radius of q.
// It panics if q's dimensionality differs from the index's.
func (oc *OrdinalCoverage) NeighborCount(q []float64) int {
	if len(q) != oc.dim {
		panic("coverage: query dimensionality mismatch")
	}
	cells := make([]int64, oc.dim)
	for i, x := range q {
		cells[i] = int64(math.Floor(x / oc.Radius))
	}
	count := 0
	offsets := make([]int64, oc.dim)
	var visit func(i int)
	visit = func(i int) {
		if i == oc.dim {
			key := make([]byte, 0, oc.dim*6)
			for j := range cells {
				key = appendInt(key, cells[j]+offsets[j])
				key = append(key, ';')
			}
			for _, idx := range oc.grid[string(key)] {
				if l2(q, oc.points[idx]) <= oc.Radius {
					count++
				}
			}
			return
		}
		for _, o := range []int64{-1, 0, 1} {
			offsets[i] = o
			visit(i + 1)
		}
	}
	visit(0)
	return count
}

func l2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Covered reports whether query point q has at least K neighbors within
// Radius.
func (oc *OrdinalCoverage) Covered(q []float64) bool {
	return oc.NeighborCount(q) >= oc.K
}

// UncoveredFraction returns the fraction of the given query points that are
// uncovered. It returns 0 for an empty query set.
func (oc *OrdinalCoverage) UncoveredFraction(queries [][]float64) float64 {
	if len(queries) == 0 {
		return 0
	}
	n := 0
	for _, q := range queries {
		if !oc.Covered(q) {
			n++
		}
	}
	return float64(n) / float64(len(queries))
}
