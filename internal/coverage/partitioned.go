package coverage

import (
	"sort"

	"redi/internal/bitmap"
	"redi/internal/dataset"
	"redi/internal/parallel"
)

// NewSpacePartitioned prepares a pattern space over a partitioned view,
// building the per-(attribute, value) bitmaps partition-at-a-time with the
// given worker count (parallel.Workers semantics; 0 = serial). Codes in
// every partition index the view's global dictionaries, so the resulting
// space — domains, bitmaps, counts, and therefore every MUP enumeration —
// is identical to NewSpace on the materialized rows, at any worker count:
// partition row ranges are disjoint bitmap word ranges (PartRows is a
// multiple of 64), so shards fill the shared bitmaps lock-free, and the
// per-value counts merge in shard order.
//
// Only the bitmaps are materialized (one bit per row per value); the
// underlying pages are scanned once and not retained, which is what makes
// MUP enumeration work on datasets that never fit in memory as rows.
func NewSpacePartitioned(pd *dataset.Partitioned, attrs []string, threshold int, workers int) *Space {
	if len(attrs) == 0 {
		panic("coverage: NewSpacePartitioned requires at least one attribute")
	}
	schema := pd.Schema()
	s := &Space{
		Attrs:     append([]string(nil), attrs...),
		Threshold: threshold,
		numRows:   pd.NumRows(),
		pool:      bitmap.NewPool(pd.NumRows()),
	}
	cols := make([]int, len(attrs))
	s.bits = make([][]bitmap.Bitmap, len(attrs))
	s.valCounts = make([][]int, len(attrs))
	for i, a := range attrs {
		cols[i] = schema.MustIndex(a)
		dict := pd.Dict(a)
		s.Domains = append(s.Domains, dict)
		s.bits[i] = make([]bitmap.Bitmap, len(dict))
		s.valCounts[i] = make([]int, len(dict))
		for v := range dict {
			s.bits[i][v] = bitmap.New(s.numRows)
		}
	}
	// s.cols stays nil: the row-scan oracle (countScan) is a test aid for
	// in-memory spaces; partitioned builds do not retain per-row codes.

	src := pd.Source()
	partRows := pd.PartRows()
	type tally struct{ counts [][]int }
	shards := parallel.MapChunks(workers, pd.NumPartitions(), func(_, plo, phi int) tally {
		t := tally{counts: make([][]int, len(attrs))}
		for i := range attrs {
			t.counts[i] = make([]int, len(s.Domains[i]))
		}
		for p := plo; p < phi; p++ {
			base := p * partRows
			for i, ci := range cols {
				codes := src.PartitionCatCodes(p, ci)
				bits := s.bits[i]
				for r, c := range codes {
					if c >= 0 {
						//redi:allow parcapture partition row ranges are disjoint word ranges of each shared bitmap (PartRows is a multiple of 64), so shards never touch the same word
						bits[c][(base+r)/64] |= 1 << (uint(base+r) % 64)
						t.counts[i][c]++
					}
				}
			}
		}
		return t
	})
	for _, t := range shards {
		for i := range attrs {
			for v, n := range t.counts[i] {
				s.valCounts[i][v] += n
			}
		}
	}
	return s
}

// NewJoinSpacePartitioned prepares coverage over the equi-join of two
// partitioned views without materializing either side's rows or the join:
// each side is scanned partition-at-a-time to group its rows by join key,
// then the flat per-key layouts and value bitmaps are filled from the
// partitions' code pages. Join keys must be categorical on both sides; rows
// with a null or empty key are excluded, as in NewJoinSpace. The resulting
// space is identical to NewJoinSpace on the materialized rows.
func NewJoinSpacePartitioned(left *dataset.Partitioned, leftKey string, leftAttrs []string,
	right *dataset.Partitioned, rightKey string, rightAttrs []string, threshold int) *JoinSpace {
	if len(leftAttrs)+len(rightAttrs) == 0 {
		panic("coverage: NewJoinSpacePartitioned requires at least one pattern attribute")
	}
	js := &JoinSpace{
		Threshold: threshold,
		numLeft:   len(leftAttrs),
	}
	collect := func(pd *dataset.Partitioned, key string, attrs []string) (cols []int, byKey map[string][]int) {
		schema := pd.Schema()
		keyCol := schema.MustIndex(key)
		keyDict := pd.Dict(key) // panics if the key is not categorical
		cols = make([]int, len(attrs))
		for i, a := range attrs {
			cols[i] = schema.MustIndex(a)
			js.Domains = append(js.Domains, pd.Dict(a))
			js.Attrs = append(js.Attrs, a)
		}
		byKey = map[string][]int{}
		src := pd.Source()
		partRows := pd.PartRows()
		for p := 0; p < pd.NumPartitions(); p++ {
			base := p * partRows
			for r, c := range src.PartitionCatCodes(p, keyCol) {
				if c < 0 || keyDict[c] == "" {
					continue
				}
				byKey[keyDict[c]] = append(byKey[keyDict[c]], base+r)
			}
		}
		return cols, byKey
	}
	lCols, lByKey := collect(left, leftKey, leftAttrs)
	rCols, rByKey := collect(right, rightKey, rightAttrs)

	for k := range lByKey {
		if _, ok := rByKey[k]; ok {
			js.keys = append(js.keys, k) //redi:allow maporder collected keys are sorted immediately below
		}
	}
	sort.Strings(js.keys)

	// Flatten one side: global row indices grouped by key become the flat
	// layout, with codes pulled partition-at-a-time (each partition's code
	// page is fetched once per attribute and sliced for every row in it).
	flatten := func(pd *dataset.Partitioned, byKey map[string][]int, cols []int, domOff int) (off []int, flat [][]int32, bits [][]bitmap.Bitmap) {
		src := pd.Source()
		partRows := pd.PartRows()
		nAttrs := len(cols)
		off = make([]int, len(js.keys)+1)
		n := 0
		for ki, k := range js.keys {
			off[ki] = n
			n += len(byKey[k])
		}
		off[len(js.keys)] = n
		flat = make([][]int32, nAttrs)
		for a := 0; a < nAttrs; a++ {
			flat[a] = make([]int32, n)
		}
		pageCache := make(map[int][]int32, 1)
		at := 0
		for _, k := range js.keys {
			rows := byKey[k]
			for a, ci := range cols {
				clear(pageCache)
				for i, r := range rows {
					p := r / partRows
					page, ok := pageCache[p]
					if !ok {
						page = src.PartitionCatCodes(p, ci)
						pageCache[p] = page
					}
					flat[a][at+i] = page[r%partRows]
				}
			}
			at += len(rows)
		}
		bits = make([][]bitmap.Bitmap, nAttrs)
		for a := 0; a < nAttrs; a++ {
			bits[a] = make([]bitmap.Bitmap, len(js.Domains[domOff+a]))
			for v := range bits[a] {
				bits[a][v] = bitmap.New(n)
			}
			for i, c := range flat[a] {
				if c >= 0 {
					bits[a][c].Set(i)
				}
			}
		}
		return off, flat, bits
	}
	js.offL, js.leftCols, js.leftBits = flatten(left, lByKey, lCols, 0)
	js.offR, js.rightCols, js.rightBits = flatten(right, rByKey, rCols, js.numLeft)
	js.poolL = bitmap.NewPool(js.offL[len(js.keys)])
	js.poolR = bitmap.NewPool(js.offR[len(js.keys)])
	js.totalJoin = js.factorCount(nil, nil)
	return js
}
