package coverage

import (
	"fmt"

	"redi/internal/bitmap"
	"redi/internal/dataset"
)

// AppendRows extends the space over rows [fromRow, d.NumRows()) of d, which
// must be the dataset the space was built from. Instead of rebuilding every
// per-(attribute, value) bitmap, each bitmap grows in place (bitmap.Grow's
// amortized-O(1) word extension) and only the freshly appended rows are
// scanned; values never seen before get new bitmaps and domain entries, in
// dictionary (first-appearance) order, exactly as a cold NewSpace would
// order them. fromRow must equal the rows already indexed — the serving
// layer passes the pre-ingest row count; it panics on a mismatch.
//
// Equivalence contract: after any schedule of AppendRows calls the space is
// bit-identical to NewSpace(d, attrs, threshold) — same Domains, same
// bitmap words, same value counts — so Count, MUPs, and MUPsParallel return
// identical results at any worker count.
//
// AppendRows requires exclusive access: it swaps the scratch pool when the
// word length grows, so no Count/MUPs call may run concurrently. The
// serving layer serializes it under the ingest write lock.
func (s *Space) AppendRows(d *dataset.Dataset, fromRow int) {
	if fromRow != s.numRows {
		panic(fmt.Sprintf("coverage: AppendRows from row %d, space covers %d", fromRow, s.numRows))
	}
	n := d.NumRows()
	for i, a := range s.Attrs {
		codes, dict := d.CodesRange(a, fromRow, n)
		// New dictionary entries extend the domain in dictionary order —
		// the same order NewSpace copies, keeping value indexes stable.
		for v := len(s.Domains[i]); v < len(dict); v++ {
			s.Domains[i] = append(s.Domains[i], dict[v])
			s.bits[i] = append(s.bits[i], bitmap.New(n))
			s.valCounts[i] = append(s.valCounts[i], 0)
		}
		// Every bitmap must stay exactly WordsFor(n) words: the fused
		// kernels iterate len(a), and pooled scratch must match.
		for v := range s.bits[i] {
			s.bits[i][v] = s.bits[i][v].Grow(n)
		}
		for j, c := range codes {
			if c >= 0 {
				s.bits[i][c].Set(fromRow + j)
				s.valCounts[i][c]++
			}
		}
		s.cols[i] = append(s.cols[i], codes...)
	}
	if bitmap.WordsFor(n) != bitmap.WordsFor(s.numRows) {
		s.pool = bitmap.NewPool(n)
	}
	s.numRows = n
}
