package coverage

import (
	"fmt"
	"sync"

	"redi/internal/dataset"
)

// JoinSpace answers coverage queries over the equi-join of two relations
// WITHOUT materializing the join (Lin, Guan, Asudeh, Jagadish, VLDB 2020:
// "Identifying insufficient data coverage in databases with multiple
// relations"). A pattern constrains attributes drawn from both sides; its
// join support factorizes per join-key:
//
//	count(p) = Σ_key  countLeft(key, p_left) × countRight(key, p_right)
//
// so each Count is one pass over per-key pattern-conditioned counts rather
// than a scan of the (possibly huge) join result.
type JoinSpace struct {
	// Attrs lists the pattern attributes: the left relation's first,
	// then the right's.
	Attrs     []string
	Domains   [][]string
	Threshold int

	numLeft int
	// Per-side rows grouped by join key: rows[key] -> coded attribute
	// rows for that key.
	leftByKey  map[string][][]int
	rightByKey map[string][][]int
	mu         sync.Mutex
	counts     map[string]int
}

// NewJoinSpace prepares coverage over left ⋈ right on the given join keys,
// with pattern attributes leftAttrs from the left relation and rightAttrs
// from the right. It panics if no pattern attributes are given or an
// attribute is not categorical.
func NewJoinSpace(left *dataset.Dataset, leftKey string, leftAttrs []string,
	right *dataset.Dataset, rightKey string, rightAttrs []string, threshold int) *JoinSpace {
	if len(leftAttrs)+len(rightAttrs) == 0 {
		panic("coverage: NewJoinSpace requires at least one pattern attribute")
	}
	js := &JoinSpace{
		Threshold:  threshold,
		numLeft:    len(leftAttrs),
		leftByKey:  map[string][][]int{},
		rightByKey: map[string][][]int{},
		counts:     map[string]int{},
	}
	index := func(d *dataset.Dataset, key string, attrs []string, out map[string][][]int) {
		keys := d.Strings(key)
		cols := make([][]int32, len(attrs))
		for i, a := range attrs {
			codes, dict := d.Codes(a)
			cols[i] = codes
			js.Domains = append(js.Domains, dict)
			js.Attrs = append(js.Attrs, a)
		}
		for r := 0; r < d.NumRows(); r++ {
			if keys[r] == "" {
				continue
			}
			row := make([]int, len(attrs))
			for i := range attrs {
				row[i] = int(cols[i][r])
			}
			out[keys[r]] = append(out[keys[r]], row)
		}
	}
	index(left, leftKey, leftAttrs, js.leftByKey)
	index(right, rightKey, rightAttrs, js.rightByKey)
	return js
}

// Root returns the all-wildcard pattern.
func (js *JoinSpace) Root() Pattern {
	p := make(Pattern, len(js.Attrs))
	for i := range p {
		p[i] = Wildcard
	}
	return p
}

// split separates a pattern into its left and right halves.
func (js *JoinSpace) split(p Pattern) (Pattern, Pattern) {
	return Pattern(p[:js.numLeft]), Pattern(p[js.numLeft:])
}

// Count returns the number of join results matching p, memoized. Safe for
// concurrent use; only the memo map is guarded (see Space.Count).
func (js *JoinSpace) Count(p Pattern) int {
	k := p.key()
	js.mu.Lock()
	c, ok := js.counts[k]
	js.mu.Unlock()
	if ok {
		return c
	}
	pl, pr := js.split(p)
	total := 0
	// Iterate the smaller key set.
	for key, lrows := range js.leftByKey {
		rrows, ok := js.rightByKey[key]
		if !ok {
			continue
		}
		nl := 0
		for _, row := range lrows {
			if pl.Matches(row) {
				nl++
			}
		}
		if nl == 0 {
			continue
		}
		nr := 0
		for _, row := range rrows {
			if pr.Matches(row) {
				nr++
			}
		}
		total += nl * nr
	}
	js.mu.Lock()
	js.counts[k] = total
	js.mu.Unlock()
	return total
}

// Covered reports whether p meets the threshold.
func (js *JoinSpace) Covered(p Pattern) bool { return js.Count(p) >= js.Threshold }

// Parents returns the immediate generalizations of p.
func (js *JoinSpace) Parents(p Pattern) []Pattern {
	var out []Pattern
	for i, v := range p {
		if v != Wildcard {
			q := p.Clone()
			q[i] = Wildcard
			out = append(out, q)
		}
	}
	return out
}

// Children returns p's canonical children (see Space.Children).
func (js *JoinSpace) Children(p Pattern) []Pattern {
	start := 0
	for i, v := range p {
		if v != Wildcard {
			start = i + 1
		}
	}
	var out []Pattern
	for i := start; i < len(p); i++ {
		for v := range js.Domains[i] {
			q := p.Clone()
			q[i] = v
			out = append(out, q)
		}
	}
	return out
}

// MUPs enumerates the maximal uncovered patterns of the join.
func (js *JoinSpace) MUPs() []MUP { return patternBreaker(js) }

// MUPsParallel enumerates the same MUPs as MUPs with the search sharded
// across workers; the result is bit-identical at any worker count.
func (js *JoinSpace) MUPsParallel(workers int) []MUP { return patternBreakerWorkers(js, workers) }

// Describe renders p with attribute names.
func (js *JoinSpace) Describe(p Pattern) string {
	s := ""
	for i, v := range p {
		if i > 0 {
			s += ", "
		}
		s += js.Attrs[i] + "="
		if v == Wildcard {
			s += "*"
		} else {
			s += js.Domains[i][v]
		}
	}
	return s
}

// Check that JoinSpace satisfies the walker interface.
var _ patternSpace = (*JoinSpace)(nil)

// String summarizes the space.
func (js *JoinSpace) String() string {
	return fmt.Sprintf("JoinSpace(%d attrs, threshold %d)", len(js.Attrs), js.Threshold)
}
